(* The benchmark harness: regenerates every table/figure-shaped result in
   the paper and measures this repository's constructions.

   The paper (PODC 1988) is a theory paper; its one data figure is the
   consensus hierarchy (Figure 1-1), and its "evaluation" is the set of
   theorems.  Accordingly each section below either regenerates a
   figure/theorem as machine-checked data, or measures the cost of the
   constructions the paper only proves exist.  Experiment ids match
   DESIGN.md and EXPERIMENTS.md.

   NOTE on hardware: this container exposes a SINGLE CPU core, so the
   multi-domain sections measure interleaved concurrency (OS
   timesharing), not parallelism.  Shapes — who wins, how costs grow —
   are meaningful; absolute scaling with cores is not measurable here. *)

open Wfs
open Bechamel
open Toolkit

(* ---------- BENCH_results.json accumulation ----------

   Every bechamel row and hand-timed series lands in these refs; the
   harness writes them as [BENCH_results.json] on exit so the perf
   trajectory is machine-trackable PR over PR (schema in
   EXPERIMENTS.md). *)

let ols_rows : (string * float * float) list ref = ref []
let series_rows : (string * Obs.Json.t) list ref = ref []

(* Wall-clock duration + monotonic start stamp of every section run, so
   perf trajectories in [series]/[ns_per_op] can be correlated with a
   [--profile] trace of the same process (both clocks are Clock.now_ns). *)
let section_timings : (string * Obs.Json.t) list ref = ref []

let record_ns name ns r2 = ols_rows := (name, ns, r2) :: !ols_rows
let record_series name json = series_rows := (name, json) :: !series_rows

(* HEAD commit without shelling out: find the checkout by walking up
   from the executable (the harness may run from any working
   directory), then follow [.git/HEAD] through loose and packed refs.
   "unknown" outside a checkout — the stamp is a provenance aid, never
   a failure. *)
let git_dir () =
  let rec up dir =
    let candidate = Filename.concat dir ".git" in
    if Sys.file_exists candidate && Sys.is_directory candidate then
      Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  match up (Filename.dirname (Unix.realpath Sys.executable_name)) with
  | Some d -> Some d
  | None | (exception Unix.Unix_error _) -> up (Sys.getcwd ())

let git_rev () =
  let first_line path =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
        let line = try Some (input_line ic) with End_of_file -> None in
        close_in ic;
        line
  in
  match git_dir () with
  | None -> "unknown"
  | Some git -> (
      match first_line (Filename.concat git "HEAD") with
      | None -> "unknown"
      | Some head
        when String.length head >= 5 && String.sub head 0 5 = "ref: " -> (
          let r = String.trim (String.sub head 5 (String.length head - 5)) in
          match first_line (Filename.concat git r) with
          | Some sha -> String.trim sha
          | None -> (
              match open_in (Filename.concat git "packed-refs") with
              | exception Sys_error _ -> "unknown"
              | ic ->
                  let rec scan acc =
                    match input_line ic with
                    | exception End_of_file -> acc
                    | line ->
                        if
                          String.length line > 41
                          && line.[0] <> '#'
                          && line.[40] = ' '
                          && String.sub line 41 (String.length line - 41) = r
                        then scan (Some (String.sub line 0 40))
                        else scan acc
                  in
                  let found = scan None in
                  close_in ic;
                  (match found with Some sha -> sha | None -> "unknown")))
      | Some head -> String.trim head)

let write_results path sections_run =
  let sorted_obj rows =
    Obs.Json.obj (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
  in
  let json =
    Obs.Json.obj
      [
        (* /8 adds the obs-causal/* series (sampled causal tracing
           overhead on the universal service, target <=5%); /7 adds the
           tt/* series (transposition + no-good census grid); /6 adds
           the universal-service/* series (batched vs un-batched
           wait-free, plus the closed-loop load harness) and the
           profile/wait-free-metrics overhead pair; /5 switches the
           perf estimators from min-of-k to median-of-k, adds
           solver_nodes / explorer_states accounting to the perf and
           perf-par series, and adds the por/* reduction series; /4
           added shard_states / shard_imbalance / stripe_contention to
           the perf-par series; /3 added section_timings; /2 the
           provenance stamps; /1 fields unchanged. *)
        ("schema", Obs.Json.str "wfs-bench/8");
        ("generated_unix_time", Obs.Json.float (Unix.time ()));
        ("domains_used", Obs.Json.int (Domain.recommended_domain_count ()));
        ("git_rev", Obs.Json.str (git_rev ()));
        ("ocaml_version", Obs.Json.str Sys.ocaml_version);
        ( "sections",
          Obs.Json.list (List.map Obs.Json.str sections_run) );
        ( "ns_per_op",
          sorted_obj
            (List.map
               (fun (name, ns, r2) ->
                 ( name,
                   Obs.Json.obj
                     [ ("ns", Obs.Json.float ns); ("r2", Obs.Json.float r2) ]
                 ))
               !ols_rows) );
        ("series", sorted_obj !series_rows);
        ("section_timings", sorted_obj !section_timings);
        ("metrics", Obs.Metrics.snapshot ());
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.results written to %s@." path

(* ---------- bechamel plumbing ---------- *)

let benchmark_and_print tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
      record_ns name estimate r2;
      Fmt.pr "  %-46s %12.0f ns/op   (r² %.3f)@." name estimate r2)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let section title = Fmt.pr "@.=== %s ===@.@." title

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Median of [reps] wall-clock samples of [f].  The median resists
   outliers in both directions — a page-cache-warm fluke as much as a
   noisy neighbour — so the PR-over-PR series only moves when the
   workload does.  (The minimum, used through wfs-bench/4, tracks the
   fastest co-scheduling ever observed instead.) *)
let median_time ~reps f =
  let samples =
    Array.init reps (fun _ ->
        Gc.minor ();
        snd (time_once f))
  in
  Array.sort Float.compare samples;
  if reps land 1 = 1 then samples.(reps / 2)
  else (samples.((reps / 2) - 1) +. samples.(reps / 2)) /. 2.

let counter_now name =
  Option.value ~default:0 (Obs.Metrics.counter_value name)

(* ---------- F1.1: the hierarchy table ---------- *)

let fig_1_1 () =
  section "F1.1  Figure 1-1, regenerated with machine-checked evidence";
  let table, dt = time_once (fun () -> Table.generate ()) in
  Fmt.pr "%a@." Table.pp table;
  Fmt.pr "@.consistent with the paper: %b   (generated in %.2fs)@."
    (Table.consistent table) dt;
  record_series "fig1.1"
    (Obs.Json.obj
       [
         ("consistent", Obs.Json.bool (Table.consistent table));
         ("seconds", Obs.Json.float dt);
       ])

(* ---------- T2/T6/T11: impossibility proofs by the solver ---------- *)

let impossibility_proofs () =
  section "T2/T6/T11  bounded impossibility proofs (solver, exhaustive)";
  let prove ?max_nodes name inst =
    let (verdict, nodes), dt =
      time_once (fun () -> Solver.solve_with_stats ?max_nodes inst)
    in
    let verdict_str =
      match verdict with
      | Solver.Unsolvable -> "UNSOLVABLE"
      | Solver.Solvable _ -> "solvable"
      | Solver.Out_of_budget _ -> "budget!"
    in
    record_series ("impossibility/" ^ name)
      (Obs.Json.obj
         [
           ("verdict", Obs.Json.str verdict_str);
           ("nodes", Obs.Json.int nodes);
           ("seconds", Obs.Json.float dt);
         ]);
    Fmt.pr "  %-52s %-12s %9d nodes  %6.2fs@." name verdict_str nodes dt
  in
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  let queue =
    Queues.fifo ~name:"q"
      ~initial:[ Value.str "a"; Value.str "b" ]
      ~items:[ Value.str "a"; Value.str "b" ]
      ()
  in
  prove "Thm 2: register, n=2, ≤2 ops/proc" (Solver.of_spec ~n:2 ~depth:2 reg);
  prove "Thm 2: register, n=2, ≤3 ops/proc" (Solver.of_spec ~n:2 ~depth:3 reg);
  prove "Thm 6: test-and-set, n=3, ≤1 op/proc"
    (Solver.of_spec ~n:3 ~depth:1 (Registers.test_and_set ()));
  prove "Thm 6: test-and-set, n=3, ≤2 ops/proc"
    (Solver.of_spec ~n:3 ~depth:2 (Registers.test_and_set ()));
  prove "Thm 11: queue, n=3, ≤1 op/proc" (Solver.of_spec ~n:3 ~depth:1 queue);
  prove ~max_nodes:80_000_000 "Thm 11: queue, n=3, ≤2 ops/proc"
    (Solver.of_spec ~n:3 ~depth:2 queue);
  prove "DDS: fifo channel, n=2, ≤2 ops/proc"
    (Solver.of_spec ~n:2 ~depth:2
       (Channels.fifo_point_to_point ~name:"ch" ~processes:2
          ~messages:[ Value.pid 0; Value.pid 1 ] ()))

(* ---------- ablation: agreement pruning in the solver ---------- *)

let solver_ablation () =
  section "ABL-1  solver ablation: decide-time agreement pruning";
  let compare_counts name inst =
    let (v1, with_prune) =
      Solver.solve_with_stats ~prune_agreement:true inst
    in
    let (v2, without) =
      Solver.solve_with_stats ~prune_agreement:false inst
    in
    let verdict = function
      | Solver.Unsolvable -> "unsolvable"
      | Solver.Solvable _ -> "solvable"
      | Solver.Out_of_budget _ -> "budget"
    in
    record_series ("solver-ablation/" ^ name)
      (Obs.Json.obj
         [
           ("pruned_nodes", Obs.Json.int with_prune);
           ("unpruned_nodes", Obs.Json.int without);
         ]);
    Fmt.pr "  %-44s pruned: %9d nodes (%s)   unpruned: %9d nodes (%s)@." name
      with_prune (verdict v1) without (verdict v2)
  in
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  compare_counts "register n=2 d=2" (Solver.of_spec ~n:2 ~depth:2 reg);
  compare_counts "test-and-set n=2 d=2"
    (Solver.of_spec ~n:2 ~depth:2 (Registers.test_and_set ()));
  compare_counts "test-and-set n=3 d=1"
    (Solver.of_spec ~n:3 ~depth:1 (Registers.test_and_set ()))

(* ---------- T4..T20: protocol verification cost (explorer) ---------- *)

let verification_benches () =
  section "T4/T7/T9/T12/T15/T16/T19  exhaustive protocol verification cost";
  let verify_test name protocol =
    Test.make ~name (Staged.stage (fun () -> Protocol.verify protocol))
  in
  benchmark_and_print
    (Test.make_grouped ~name:"verify"
       [
         verify_test "thm4-test-and-set-n2" (Rmw_consensus.test_and_set ());
         verify_test "thm4-fetch-and-add-n2" (Rmw_consensus.fetch_and_add ());
         verify_test "thm7-cas-n3" (Cas_consensus.protocol ~n:3 ());
         verify_test "thm9-queue-n2" (Queue_consensus.protocol ());
         verify_test "thm12-aug-queue-n3" (Aug_queue_consensus.protocol ~n:3 ());
         verify_test "thm15-move-n3" (Move_consensus.n_proc_protocol ~n:3 ());
         verify_test "thm16-mem-swap-n3" (Swap_consensus.protocol ~n:3 ());
         verify_test "thm19-assignment-n2" (Assign_consensus.protocol ~n:2 ());
         verify_test "thm20-two-phase-n2" (Assign_consensus.two_phase ~n:2 ());
       ])

(* ---------- T4/T7 on hardware: consensus primitives ---------- *)

let primitive_benches () =
  section "T4/T7-HW  runtime consensus and primitives (single domain)";
  let tas = Runtime.Primitives.Test_and_set.make () in
  let faa = Runtime.Primitives.Fetch_and_add.make 0 in
  let swap = Runtime.Primitives.Swap.make 0 in
  let cas = Runtime.Primitives.Cas.make 0 in
  benchmark_and_print
    (Test.make_grouped ~name:"primitive"
       [
         Test.make ~name:"test-and-set"
           (Staged.stage (fun () ->
                ignore (Runtime.Primitives.Test_and_set.test_and_set tas)));
         Test.make ~name:"fetch-and-add"
           (Staged.stage (fun () ->
                ignore (Runtime.Primitives.Fetch_and_add.fetch_and_add faa 1)));
         Test.make ~name:"swap"
           (Staged.stage (fun () ->
                ignore (Runtime.Primitives.Swap.swap swap 1)));
         Test.make ~name:"compare-and-swap"
           (Staged.stage (fun () ->
                ignore
                  (Runtime.Primitives.Cas.compare_and_swap cas ~expected:0
                     ~replacement:0)));
         Test.make ~name:"one-shot-consensus-decide"
           (Staged.stage (fun () ->
                let c = Runtime.Consensus.One_shot.make () in
                ignore (Runtime.Consensus.One_shot.decide c 1)));
         Test.make ~name:"tas-2-consensus-decide"
           (Staged.stage (fun () ->
                let c = Runtime.Consensus.Tas_two.make () in
                ignore (Runtime.Consensus.Tas_two.decide c ~pid:0 42)));
       ])

(* ---------- U3: fetch-and-cons implementations ---------- *)

let fac_benches () =
  section "U3  fetch-and-cons implementations (single domain, amortized)";
  benchmark_and_print
    (Test.make_grouped ~name:"fac"
       [
         Test.make_with_resource ~name:"cas-based" Test.multiple
           ~allocate:(fun () -> Runtime.Fetch_and_cons.Cas_based.make ())
           ~free:ignore
           (Staged.stage (fun t ->
                ignore (Runtime.Fetch_and_cons.Cas_based.fetch_and_cons t 1)));
         Test.make_with_resource ~name:"swap-based-O(1)" Test.multiple
           ~allocate:(fun () -> Runtime.Fetch_and_cons.Swap_based.make ())
           ~free:ignore
           (Staged.stage (fun t ->
                ignore
                  (Runtime.Fetch_and_cons.Swap_based.fetch_and_cons_cells t 1)));
       ]);
  (* the rounds-based construction needs distinct items and per-process
     handles; measure it by hand *)
  let n = 2 in
  let t =
    Runtime.Fetch_and_cons.Rounds.make ~n ~equal:(fun (a, b) (c, d) ->
        a = c && b = d)
  in
  let h = Runtime.Fetch_and_cons.Rounds.handle t ~pid:0 in
  let ops = 20_000 in
  let (), dt =
    time_once (fun () ->
        for i = 0 to ops - 1 do
          ignore (Runtime.Fetch_and_cons.Rounds.fetch_and_cons h (0, i))
        done)
  in
  Fmt.pr "  %-46s %12.0f ns/op   (hand-timed, %d ops)@."
    "fac/rounds-based-(Fig 4-5)"
    (dt /. float_of_int ops *. 1e9)
    ops;
  record_ns "fac/rounds-based-(Fig 4-5)"
    (dt /. float_of_int ops *. 1e9)
    Float.nan

(* ---------- U1: universal-object throughput ---------- *)

let universal_throughput () =
  section "U1  shared queue throughput, 4 domains (single-core timesharing)";
  let domains = 4 in
  let per_domain = 20_000 in
  let measure name enq deq =
    let (), dt =
      time_once (fun () ->
          ignore
            (Runtime.Primitives.run_domains domains (fun pid ->
                 for i = 0 to per_domain - 1 do
                   enq ((pid * per_domain) + i);
                   ignore (deq ())
                 done)))
    in
    let ops = 2 * domains * per_domain in
    record_series ("universal-throughput/" ^ name)
      (Obs.Json.obj
         [
           ("ops_per_ms", Obs.Json.float (float_of_int ops /. dt /. 1000.0));
           ("ops", Obs.Json.int ops);
           ("seconds", Obs.Json.float dt);
         ]);
    Fmt.pr "  %-42s %9.0f ops/ms   (%d ops in %.3fs)@." name
      (float_of_int ops /. dt /. 1000.0)
      ops dt
  in
  let module QU = Runtime.Universal.Lock_free (Runtime.Seq_objects.Queue_of_int) in
  let module QW = Runtime.Universal.Wait_free (Runtime.Seq_objects.Queue_of_int) in
  let module QL = Runtime.Universal.Locked (Runtime.Seq_objects.Queue_of_int) in
  let open Runtime.Seq_objects.Queue_of_int in
  let qu = QU.create () in
  measure "universal lock-free (this paper, from CAS)"
    (fun x -> ignore (QU.apply qu (Enq x)))
    (fun () -> QU.apply qu Deq);
  let qw = QW.create ~n:domains () in
  let pids = Atomic.make 0 in
  let pid_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add pids 1 mod domains) in
  measure "universal wait-free (announce + helping)"
    (fun x -> ignore (QW.apply qw ~pid:(Domain.DLS.get pid_key) (Enq x)))
    (fun () -> QW.apply qw ~pid:(Domain.DLS.get pid_key) Deq);
  let ql = QL.create () in
  measure "mutex-guarded"
    (fun x -> ignore (QL.apply ql (Enq x)))
    (fun () -> QL.apply ql Deq);
  let ms = Runtime.Baselines.Michael_scott_queue.make () in
  measure "michael-scott (hand-crafted lock-free)"
    (fun x -> Runtime.Baselines.Michael_scott_queue.enqueue ms x)
    (fun () ->
      match Runtime.Baselines.Michael_scott_queue.dequeue ms with
      | Some x -> Deqd x
      | None -> Empty)

(* ---------- U1-SVC: universal object service ---------- *)

(* The acceptance pair for operation batching: the batched construction
   (one consensus round threads every announced invocation) must be at
   least as fast as the per-op un-batched one on the same workload, and
   the closed-loop load harness behind [wfs load] must pass its
   differential check with truncation active. *)
let universal_service () =
  section "U1-SVC  universal object service: batched vs un-batched wait-free";
  let domains = 4 in
  let per_domain = 10_000 in
  let total = domains * per_domain in
  let reps =
    match Sys.getenv_opt "WFS_PERF_REPS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 5)
    | None -> 5
  in
  let hist name =
    match List.assoc_opt name (Obs.Metrics.dump ()) with
    | Some (Obs.Metrics.D_histogram { d_count; d_sum; _ }) -> (d_count, d_sum)
    | _ -> (0, 0)
  in
  let module C = Runtime.Seq_objects.Counter in
  let module WB = Runtime.Universal.Wait_free (C) in
  let module WU = Runtime.Universal.Wait_free_unbatched (C) in
  let module LF = Runtime.Universal.Lock_free (C) in
  (* Each rep times the three constructions back to back over fresh
     objects, metrics cold (this compares the constructions, not their
     instrumentation), and each construction's figure is the median of
     its reps.  Interleaving the reps — rather than timing all reps of
     one construction, then all of the next — exposes every
     construction to the same slow drift of the box (frequency
     scaling, background load), which otherwise dominates the
     batched/unbatched ratio on a shared single-core machine. *)
  let time_rep apply =
    let t0 = Obs.Clock.now_ns () in
    ignore
      (Runtime.Primitives.run_domains domains (fun pid ->
           for _ = 1 to per_domain do
             apply ~pid
           done));
    float_of_int (Obs.Clock.now_ns () - t0) *. 1e-9
  in
  let names = [| "batched-wait-free"; "unbatched-wait-free"; "lock-free" |] in
  let fresh i =
    match i with
    | 0 ->
        let w = WB.create ~n:domains () in
        fun ~pid -> ignore (WB.apply w ~pid C.Incr)
    | 1 ->
        let w = WU.create ~n:domains in
        fun ~pid -> ignore (WU.apply w ~pid C.Incr)
    | _ ->
        let w = LF.create () in
        fun ~pid:_ -> ignore (LF.apply w C.Incr)
  in
  let times = Array.make_matrix 3 reps infinity in
  for rep = 0 to reps - 1 do
    for i = 0 to 2 do
      times.(i).(rep) <- time_rep (fresh i)
    done
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let rate_of i =
    let dt = median times.(i) in
    let rate = float_of_int total /. dt /. 1000.0 in
    Fmt.pr
      "  %-42s %9.0f ops/ms   (%d ops in %.3fs, median of %d interleaved)@."
      names.(i) rate total dt reps;
    record_series
      ("universal-service/" ^ names.(i))
      (Obs.Json.obj
         [
           ("ops_per_ms", Obs.Json.float rate);
           ("ops", Obs.Json.int total);
           ("seconds", Obs.Json.float dt);
           ("reps", Obs.Json.int reps);
         ]);
    rate
  in
  let batched_rate = rate_of 0 in
  let unbatched_rate = rate_of 1 in
  ignore (rate_of 2);
  let speedup =
    if unbatched_rate > 0. then batched_rate /. unbatched_rate else 1.0
  in
  (* batch-size / truncation telemetry from a short metrics-hot pass *)
  let wb = WB.create ~n:domains () in
  Obs.Metrics.with_hot (fun () ->
      let nodes0, riders0 = hist "universal_rt.wait_free.batch_size" in
      ignore
        (Runtime.Primitives.run_domains domains (fun pid ->
             for _ = 1 to 2_000 do
               ignore (WB.apply wb ~pid C.Incr)
             done));
      let nodes1, riders1 = hist "universal_rt.wait_free.batch_size" in
      let nodes = nodes1 - nodes0 in
      let avg_batch =
        if nodes = 0 then 1.0
        else float_of_int (riders1 - riders0) /. float_of_int nodes
      in
      Fmt.pr
        "  batched speedup %.2fx   avg batch %.2f   retained %d (window %d)@."
        speedup avg_batch (WB.retained wb) (WB.window wb);
      record_series "universal-service/summary"
        (Obs.Json.obj
           [
             ("batched_speedup", Obs.Json.float speedup);
             ("avg_batch", Obs.Json.float avg_batch);
             ("retained", Obs.Json.int (WB.retained wb));
             ("window", Obs.Json.int (WB.window wb));
             ("watermark", Obs.Json.int (WB.watermark wb));
           ]));
  (* The full service path: closed-loop clients through the registry
     handle, differentially checked against the sequential fold. *)
  let r =
    Runtime.Service.Load.run ~seed:1 ~clients:domains
      ~ops_per_client:per_domain ()
  in
  Fmt.pr "  %a@." Runtime.Service.Load.pp_report r;
  record_series "universal-service/load-harness"
    (Obs.Json.obj
       [
         ("ops_per_ms", Obs.Json.float (r.Runtime.Service.Load.throughput /. 1000.));
         ("ops", Obs.Json.int r.Runtime.Service.Load.total_ops);
         ("lat_p50_ns", Obs.Json.int r.Runtime.Service.Load.lat_p50_ns);
         ("lat_p99_ns", Obs.Json.int r.Runtime.Service.Load.lat_p99_ns);
         ("max_retained", Obs.Json.int r.Runtime.Service.Load.max_retained);
         ("watermark", Obs.Json.int r.Runtime.Service.Load.final_watermark);
         ( "differential_ok",
           Obs.Json.bool (r.Runtime.Service.Load.differential_ok = Some true) );
         ("passed", Obs.Json.bool (Runtime.Service.Load.passed r));
       ])

(* ---------- T7 scaling series ---------- *)

let consensus_scaling () =
  section "T7-HW  one-shot CAS consensus, contending domains";
  List.iter
    (fun domains ->
      let rounds = 20_000 in
      let cells =
        Array.init rounds (fun _ -> Runtime.Consensus.One_shot.make ())
      in
      let (), dt =
        time_once (fun () ->
            ignore
              (Runtime.Primitives.run_domains domains (fun pid ->
                   for i = 0 to rounds - 1 do
                     ignore (Runtime.Consensus.One_shot.decide cells.(i) pid)
                   done)))
      in
      record_series
        (Fmt.str "consensus-scaling/%d-domains" domains)
        (Obs.Json.obj
           [
             ( "consensus_per_ms",
               Obs.Json.float (float_of_int rounds /. dt /. 1000.0) );
             ("instances", Obs.Json.int rounds);
           ]);
      Fmt.pr "  %d domains: %7.0f consensus/ms   (%d instances)@." domains
        (float_of_int rounds /. dt /. 1000.0)
        rounds)
    [ 1; 2; 4 ]

(* ---------- U2: replay-cost series ---------- *)

let replay_cost_series () =
  section
    "U2  replay cost of the k-th operation: plain log vs truncating (§4.1)";
  Fmt.pr "  %6s %18s %22s@." "k" "plain log (ops)" "truncating (ops, n=2)";
  let target = Collections.counter ~name:"c" () in
  List.iter
    (fun k ->
      (* plain: cost of k-th op = k-1 by construction; measure it *)
      let script = List.init k (fun _ -> Collections.incr) in
      let cfg = Log_universal.config ~target ~scripts:[| script |] in
      let outcome =
        Wfs_sim.Runner.run ~procs:cfg.Wfs_sim.Explorer.procs
          ~env:cfg.Wfs_sim.Explorer.env
          ~schedule:Wfs_sim.Scheduler.round_robin ()
      in
      let plain_cost =
        match List.rev outcome.Wfs_sim.Runner.trace with
        | last :: _ -> List.length (Value.as_list last.Wfs_sim.Runner.res)
        | [] -> 0
      in
      (* truncating: run the same script against a second process *)
      let outcome =
        Truncating_universal.run ~target
          ~scripts:[| script; [ Collections.incr ] |]
          ~schedule:Wfs_sim.Scheduler.round_robin ()
      in
      let trunc_max =
        List.fold_left
          (fun acc (_, d) ->
            match d with
            | Value.List entries ->
                List.fold_left
                  (fun acc e ->
                    max acc (Value.as_int (snd (Value.as_pair e))))
                  acc entries
            | _ -> acc)
          0 outcome.Wfs_sim.Runner.decisions
      in
      record_series
        (Fmt.str "replay-cost/k-%d" k)
        (Obs.Json.obj
           [
             ("plain_log_ops", Obs.Json.int plain_cost);
             ("truncating_ops", Obs.Json.int trunc_max);
           ]);
      Fmt.pr "  %6d %18d %22d@." k plain_cost trunc_max)
    [ 1; 2; 4; 8; 16; 32 ]

(* ---------- U4: consensus rounds per fetch-and-cons ---------- *)

let fac_rounds_series () =
  section "U4  consensus rounds per fetch-and-cons (Fig 4-5 bound: ≤ n+1)";
  List.iter
    (fun n ->
      let scripts =
        Array.init n (fun _ -> [ Queues.enq (Value.int 1) ])
      in
      let outcome =
        Consensus_fac.run ~scripts
          ~schedule:(Wfs_sim.Scheduler.random ~seed:42) ()
      in
      (* rounds used = number of decided consensus cells in the array *)
      let env = (Consensus_fac.config ~scripts).Wfs_sim.Explorer.env in
      ignore env;
      let cons_steps =
        List.length
          (List.filter
             (fun (s : Wfs_sim.Runner.step) -> String.equal s.Wfs_sim.Runner.obj "cons")
             outcome.Wfs_sim.Runner.trace)
      in
      record_series
        (Fmt.str "fac-rounds/n-%d" n)
        (Obs.Json.obj
           [
             ("consensus_ops", Obs.Json.int cons_steps);
             ("bound", Obs.Json.int (n * (n + 1)));
           ]);
      Fmt.pr
        "  n = %d: %2d consensus-object operations for %d operations (≤ %d \
         per op allowed)@."
        n cons_steps n (n + 1))
    [ 2; 3; 4 ]

(* ---------- U1-sim: exhaustive universal-construction checks ---------- *)

let universal_verification () =
  section "U1-sim  universal construction verified over all interleavings";
  let target = Queues.fifo ~name:"q" ~items:[ Value.int 1; Value.int 2 ] () in
  let scripts =
    [|
      [ Queues.enq (Value.int 1); Queues.deq ];
      [ Queues.enq (Value.int 2); Queues.deq ];
    |]
  in
  let v, dt = time_once (fun () -> Log_universal.verify ~target ~scripts ()) in
  Fmt.pr "  plain log:   ok=%b  %6d states  %5d terminals  (%.2fs)@."
    v.Log_universal.ok v.Log_universal.states v.Log_universal.terminals dt;
  let v, dt =
    time_once (fun () -> Truncating_universal.verify ~target ~scripts ())
  in
  Fmt.pr
    "  truncating:  ok=%b  %6d states  max replay %d (bound n=2)  (%.2fs)@."
    v.Truncating_universal.ok v.Truncating_universal.states
    v.Truncating_universal.max_replay dt;
  let v, dt =
    time_once (fun () ->
        Consensus_fac.verify
          ~scripts:[| [ Queues.enq (Value.int 1) ]; [ Queues.enq (Value.int 2) ] |]
          ())
  in
  Fmt.pr "  Fig 4-5 fac: ok=%b  %6d states  %5d terminals  (%.2fs)@."
    v.Consensus_fac.ok v.Consensus_fac.states v.Consensus_fac.terminals dt;
  (* Theorem 26 composed end to end: consensus -> fac -> queue *)
  let v, dt =
    time_once (fun () ->
        Composed.verify ~target
          ~scripts:[| [ Queues.enq (Value.int 1) ]; [ Queues.deq ] |]
          ())
  in
  Fmt.pr "  Thm 26 composed (consensus→fac→queue): ok=%b  %6d states  (%.2fs)@."
    v.Composed.ok v.Composed.states dt;
  record_series "universal-verify/thm26-composed"
    (Obs.Json.obj
       [
         ("ok", Obs.Json.bool v.Composed.ok);
         ("states", Obs.Json.int v.Composed.states);
         ("seconds", Obs.Json.float dt);
       ])

(* ---------- F1.1-census: the solver-only hierarchy ---------- *)

let census () =
  section
    "F1.1-census  consensus numbers measured by the solver alone \
     (bounded: n=2 ≤2 ops, n=3 ≤1 op; quantified over reachable inits)";
  let results, dt = time_once (fun () -> Census.run ~max_nodes:30_000_000 ()) in
  Fmt.pr "%a@." Census.pp results;
  Fmt.pr "  (census in %.1fs)@." dt;
  record_series "census" (Obs.Json.obj [ ("seconds", Obs.Json.float dt) ])

(* ---------- EXT-1: randomized consensus (§5) ---------- *)

let randomized_series () =
  section
    "EXT-1  randomized register consensus: abort probability and flips";
  Fmt.pr
    "  exhaustive safety: all schedules x all coin assignments x all inputs@.";
  List.iter
    (fun flips ->
      let v, dt =
        time_once (fun () -> Randomized.verify_all_coins ~flips ())
      in
      Fmt.pr
        "    flips=%d: ok=%b  %4d configurations  %7d states  aborts \
         possible=%b  (%.2fs)@."
        flips v.Randomized.ok v.Randomized.configurations
        v.Randomized.states v.Randomized.aborts_possible dt)
    [ 1; 2; 3 ];
  (* expected coin flips on hardware: conflicts resolve in O(1) expected *)
  let trials = 2_000 in
  let total_flips = ref 0 in
  let agreements = ref 0 in
  for trial = 1 to trials do
    let t = Runtime.Randomized.create () in
    let results =
      Runtime.Primitives.run_domains 2 (fun pid ->
          let rng = Random.State.make [| trial; pid; 77 |] in
          Runtime.Randomized.decide t ~pid ~rng (pid = 0))
    in
    match results with
    | [ (d0, f0); (d1, f1) ] ->
        total_flips := !total_flips + f0 + f1;
        if d0 = d1 then incr agreements
    | _ -> ()
  done;
  record_series "randomized/runtime"
    (Obs.Json.obj
       [
         ("trials", Obs.Json.int trials);
         ("agreements", Obs.Json.int !agreements);
         ( "mean_flips",
           Obs.Json.float (float_of_int !total_flips /. float_of_int trials) );
       ]);
  Fmt.pr
    "  runtime (opposite inputs, %d trials): agreement %d/%d, mean flips \
     per run %.2f@."
    trials !agreements trials
    (float_of_int !total_flips /. float_of_int trials)

(* ---------- PERF: engine old-vs-new, same run ---------- *)

let perf () =
  section
    "PERF  state-space engine: interned keys + fused DP vs legacy two-pass";
  (* Reps are overridable so CI can smoke-test this section at a tiny
     budget (WFS_PERF_REPS=1) while local runs keep enough samples for a
     stable minimum. *)
  let reps =
    match Sys.getenv_opt "WFS_PERF_REPS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 5)
    | None -> 5
  in
  let time_pair name ~iters ~legacy ~fresh =
    (* Warm both paths once, then keep the median over [reps] samples.
       Each sample runs the workload [iters] times so the
       sub-millisecond workloads are measurable with gettimeofday. *)
    ignore (legacy ());
    ignore (fresh ());
    let sample f =
      median_time ~reps (fun () ->
          for _ = 1 to iters do
            ignore (f ())
          done)
      /. float_of_int iters
    in
    let t_old = sample legacy in
    (* search-size accounting for the new path: counter deltas across
       the timed samples, normalized back to one call, so the json
       carries work alongside seconds *)
    let n0 = counter_now "solver.nodes" and s0 = counter_now "explorer.states" in
    let t_new = sample fresh in
    let calls = reps * iters in
    let per_call d = (counter_now d - (if d = "solver.nodes" then n0 else s0)) / calls in
    let nodes = per_call "solver.nodes" and states = per_call "explorer.states" in
    let speedup = t_old /. t_new in
    record_series ("perf/" ^ name)
      (Obs.Json.obj
         [
           ("legacy_seconds", Obs.Json.float t_old);
           ("new_seconds", Obs.Json.float t_new);
           ("speedup", Obs.Json.float speedup);
           ("reps", Obs.Json.int reps);
           ("iters_per_rep", Obs.Json.int iters);
           ("solver_nodes", Obs.Json.int nodes);
           ("explorer_states", Obs.Json.int states);
         ]);
    Fmt.pr "  %-34s legacy %9.2f ms   new %9.2f ms   speedup %5.2fx@." name
      (t_old *. 1e3) (t_new *. 1e3) speedup
  in
  (* Exhaustive verification: the explorer engines (interning + fused
     DP vs the recursive two-pass reference). *)
  let cas3 = Cas_consensus.protocol ~n:3 () in
  let cas4 = Cas_consensus.protocol ~n:4 () in
  let swap3 = Swap_consensus.protocol ~n:3 () in
  time_pair "verify-cas-n3" ~iters:200
    ~legacy:(fun () -> Protocol.verify ~legacy:true cas3)
    ~fresh:(fun () -> Protocol.verify cas3);
  time_pair "verify-cas-n4" ~iters:20
    ~legacy:(fun () -> Protocol.verify ~legacy:true cas4)
    ~fresh:(fun () -> Protocol.verify cas4);
  time_pair "verify-mem-swap-n3" ~iters:2
    ~legacy:(fun () -> Protocol.verify ~legacy:true swap3)
    ~fresh:(fun () -> Protocol.verify swap3);
  (* Strategy synthesis: interned view table vs raw (pid, view) keys on
     the Theorem 11 instance. *)
  let queue =
    Queues.fifo ~name:"q"
      ~initial:[ Value.str "a"; Value.str "b" ]
      ~items:[ Value.str "a"; Value.str "b" ]
      ()
  in
  let t11 = Solver.of_spec ~n:3 ~depth:1 queue in
  time_pair "solver-queue-n3-d1" ~iters:1
    ~legacy:(fun () -> Solver.solve_with_stats ~intern_views:false t11)
    ~fresh:(fun () -> Solver.solve_with_stats t11);
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  let t2 = Solver.of_spec ~n:2 ~depth:3 reg in
  time_pair "solver-register-n2-d3" ~iters:1
    ~legacy:(fun () -> Solver.solve_with_stats ~intern_views:false t2)
    ~fresh:(fun () -> Solver.solve_with_stats t2);
  (* A census slice: two zoo objects through the full
     initialization-quantified measurement, bounded so both paths do the
     same work. *)
  let census_slice ~intern_views () =
    List.iter
      (fun spec -> ignore (Census.measure ~max_nodes:200_000 ~intern_views spec))
      [
        Registers.test_and_set ();
        Registers.atomic ~name:"r" ~init:(Value.int 0)
          [ Value.int 0; Value.int 1 ];
      ]
  in
  time_pair "census-slice" ~iters:1
    ~legacy:(census_slice ~intern_views:false)
    ~fresh:(census_slice ~intern_views:true)

(* ---------- PERF-PAR: multicore verification speedup curves ---------- *)

(* Largest domain count the curves exercise; the harness's [-j N] flag
   overrides it (CI's 2-core job passes [-j 2]). *)
let par_max_j = ref 8

let perf_par () =
  section
    "PERF-PAR  multicore verification: domain-pool speedup curves \
     (j = domains; j=1 is the sequential engine)";
  let max_j = max 1 !par_max_j in
  let js =
    let base = List.filter (fun j -> j <= max_j) [ 1; 2; 4; 8 ] in
    if List.mem max_j base then base else base @ [ max_j ]
  in
  (* Wall-clock curves need far fewer samples than the ns-level PERF
     pairs; cap the reps so the default run stays affordable. *)
  let reps =
    match Sys.getenv_opt "WFS_PERF_REPS" with
    | Some s -> ( try max 1 (min 3 (int_of_string s)) with Failure _ -> 3)
    | None -> 3
  in
  let census_budget =
    match Sys.getenv_opt "WFS_PAR_CENSUS_BUDGET" with
    | Some s -> ( try max 10_000 (int_of_string s) with Failure _ -> 1_000_000)
    | None -> 1_000_000
  in
  let best f = median_time ~reps f in
  (* Load-balance accounting around the timed reps: per-shard states
     claimed (from the pool.shard.states series the engines feed) and
     interner stripe try_lock contention, as before/after deltas. *)
  let shard_states j =
    List.init (max 1 j) (fun i ->
        Option.value ~default:0
          (Obs.Metrics.gauge_value
             (Obs.Metrics.labeled "pool.shard.states"
                [ ("shard", string_of_int i) ])))
  in
  let contention () =
    Option.value ~default:0 (Obs.Metrics.counter_value "intern.contention")
  in
  (* One speedup curve: run [work pool] at each j, j=1 without a pool
     (the untouched sequential path), and record seconds + speedup
     relative to j=1. *)
  let curve name work =
    let t1 = ref Float.nan in
    List.iter
      (fun j ->
        let with_p f =
          if j <= 1 then f None
          else Pool.with_pool ~domains:j (fun p -> f (Some p))
        in
        with_p (fun pool ->
            let run () = work pool in
            run () (* warm *);
            let states0 = shard_states j and cont0 = contention () in
            let nodes0 = counter_now "solver.nodes" in
            let explored0 = counter_now "explorer.states" in
            let t = best run in
            let per_rep c0 name = (counter_now name - c0) / reps in
            let nodes = per_rep nodes0 "solver.nodes" in
            let explored = per_rep explored0 "explorer.states" in
            let deltas =
              List.map2 (fun b a -> a - b) states0 (shard_states j)
            in
            let total = List.fold_left ( + ) 0 deltas in
            let mean =
              float_of_int total /. float_of_int (List.length deltas)
            in
            (* max/mean states per shard over the timed reps: 1.0 is a
               perfect split, j is one shard doing all the work *)
            let imbalance =
              if mean > 0. then float_of_int (List.fold_left max 0 deltas) /. mean
              else 1.
            in
            if j = 1 then t1 := t;
            let speedup = !t1 /. t in
            record_series
              (Fmt.str "perf-par/%s-j%d" name j)
              (Obs.Json.obj
                 [
                   ("seconds", Obs.Json.float t);
                   ("speedup_vs_j1", Obs.Json.float speedup);
                   ("domains", Obs.Json.int j);
                   ("reps", Obs.Json.int reps);
                   ("shard_states", Obs.Json.list (List.map Obs.Json.int deltas));
                   ("shard_imbalance", Obs.Json.float imbalance);
                   ("stripe_contention", Obs.Json.int (contention () - cont0));
                   ("solver_nodes", Obs.Json.int nodes);
                   ("explorer_states", Obs.Json.int explored);
                 ]);
            Fmt.pr
              "  %-28s j=%d  %8.3f s   speedup %5.2fx   imbalance %.2f@."
              name j t speedup imbalance))
      js
  in
  (* Registry-wide sharding: the solver-only census (the acceptance
     workload) and the Figure 1-1 evidence table. *)
  curve "census" (fun pool ->
      ignore (Census.run ~max_nodes:census_budget ?pool ()));
  curve "hierarchy" (fun pool -> ignore (Table.generate ?pool ()));
  (* Intra-exploration sharding: one big state space split across
     workers by schedule prefix.  The augmented queue at n = 5 is the
     largest exploration in the registry (~40k interned states). *)
  let aq5 = Aug_queue_consensus.protocol ~n:5 () in
  curve "explore-aug-queue-n5" (fun pool ->
      ignore (Protocol.verify ?pool aq5))

(* ---------- PERF-POR: partial-order reduction, same verdicts ---------- *)

let perf_por () =
  section
    "PERF-POR  partial-order reduction: search-size before/after at \
     identical verdicts (solver sleep-set cutoffs + explorer sleep sets)";
  let budget =
    match Sys.getenv_opt "WFS_POR_BUDGET" with
    | Some s -> ( try max 10_000 (int_of_string s) with Failure _ -> 2_000_000)
    | None -> 2_000_000
  in
  (* The acceptance workload: the full solver census, unreduced vs
     reduced, at the same node budget.  Verdicts, winning inits and the
     printed table must match row for row; only node counts change. *)
  let off, t_off = time_once (fun () -> Census.run ~max_nodes:budget ~por:false ()) in
  let on_, t_on = time_once (fun () -> Census.run ~max_nodes:budget ~por:true ()) in
  let outcome o = Fmt.str "%a" Census.pp_outcome o in
  let total_off = ref 0 and total_on = ref 0 in
  let all_match = ref true in
  List.iter2
    (fun (a : Census.measurement) (b : Census.measurement) ->
      let (o2a, n2a) = a.Census.two_proc and (o3a, n3a) = a.Census.three_proc in
      let (o2b, n2b) = b.Census.two_proc and (o3b, n3b) = b.Census.three_proc in
      let verdicts_match =
        outcome o2a = outcome o2b && outcome o3a = outcome o3b
        && Option.equal Value.equal a.Census.winning_init2 b.Census.winning_init2
        && Option.equal Value.equal a.Census.winning_init3 b.Census.winning_init3
      in
      (* At small budgets the unreduced search can hit the node cap
         where the reduced one concludes — a budget-boundary artifact,
         not a soundness difference (per-verdict results are identical
         whenever both searches complete).  Only an uncapped mismatch
         is alarming. *)
      let budget_capped =
        List.exists (fun o -> o = Census.Budget) [ o2a; o3a; o2b; o3b ]
      in
      if not (verdicts_match || budget_capped) then all_match := false;
      total_off := !total_off + n2a + n3a;
      total_on := !total_on + n2b + n3b;
      let reduction =
        if n2b + n3b > 0 then float_of_int (n2a + n3a) /. float_of_int (n2b + n3b)
        else 1.
      in
      record_series ("por/census/" ^ a.Census.object_name)
        (Obs.Json.obj
           [
             ("outcome2", Obs.Json.str (outcome o2b));
             ("outcome3", Obs.Json.str (outcome o3b));
             ("nodes2_nopor", Obs.Json.int n2a);
             ("nodes2_por", Obs.Json.int n2b);
             ("nodes3_nopor", Obs.Json.int n3a);
             ("nodes3_por", Obs.Json.int n3b);
             ("reduction", Obs.Json.float reduction);
             ("verdicts_match", Obs.Json.bool verdicts_match);
             ("budget_capped", Obs.Json.bool budget_capped);
           ]);
      Fmt.pr "  %-22s %-11s nodes %10d -> %10d  (%5.2fx)%s@."
        a.Census.object_name
        (outcome o2b ^ "/" ^ outcome o3b)
        (n2a + n3a) (n2b + n3b) reduction
        (if verdicts_match then ""
         else if budget_capped then "  (budget-capped; not comparable)"
         else "  VERDICT MISMATCH"))
    off on_;
  let total_reduction =
    if !total_on > 0 then float_of_int !total_off /. float_of_int !total_on
    else 1.
  in
  record_series "por/census-total"
    (Obs.Json.obj
       [
         ("budget", Obs.Json.int budget);
         ("nodes_nopor", Obs.Json.int !total_off);
         ("nodes_por", Obs.Json.int !total_on);
         ("reduction", Obs.Json.float total_reduction);
         ("seconds_nopor", Obs.Json.float t_off);
         ("seconds_por", Obs.Json.float t_on);
         ("verdicts_match", Obs.Json.bool !all_match);
       ]);
  Fmt.pr "  census total: %d -> %d solver nodes (%.2fx), %.1fs -> %.1fs, \
          verdicts %s@."
    !total_off !total_on total_reduction t_off t_on
    (if !all_match then "identical (where both searches complete)"
     else "MISMATCH");
  (* Explorer side: sleep-set pruning on the protocol verifications.
     [explorer.por.pruned] counts edges never generated; all states are
     still visited, so the stats structs stay byte-identical (the
     engine.por suite asserts that — here we record the rates). *)
  let pruned () =
    Option.value ~default:0 (Obs.Metrics.counter_value "explorer.por.pruned")
  in
  let explore name protocol =
    let r_off, t0 = time_once (fun () -> Protocol.verify ~por:false protocol) in
    let p0 = pruned () in
    let r_on, t1 = time_once (fun () -> Protocol.verify protocol) in
    let edges_pruned = pruned () - p0 in
    let same = r_off.Protocol.states = r_on.Protocol.states in
    record_series ("por/explore/" ^ name)
      (Obs.Json.obj
         [
           ("states", Obs.Json.int r_on.Protocol.states);
           ("edges_pruned", Obs.Json.int edges_pruned);
           ("seconds_nopor", Obs.Json.float t0);
           ("seconds_por", Obs.Json.float t1);
           ("states_match", Obs.Json.bool same);
         ]);
    Fmt.pr "  explore %-22s states %8d  pruned edges %8d  %.2fs -> %.2fs%s@."
      name r_on.Protocol.states edges_pruned t0 t1
      (if same then "" else "  STATE-COUNT MISMATCH")
  in
  explore "cas-n3" (Cas_consensus.protocol ~n:3 ());
  explore "mem-swap-n3" (Swap_consensus.protocol ~n:3 ());
  explore "aug-queue-n4" (Aug_queue_consensus.protocol ~n:4 ())

(* ---------- PERF-TT: transposition caching + no-good learning ---------- *)

let perf_tt () =
  section
    "PERF-TT  transposition table + σ-footprint no-good learning: census \
     node counts across the {por, tt} grid at identical verdicts";
  let budget =
    match Sys.getenv_opt "WFS_TT_BUDGET" with
    | Some s -> ( try max 10_000 (int_of_string s) with Failure _ -> 2_000_000)
    | None -> 2_000_000
  in
  let tt_counters () =
    ( counter_now "solver.tt.hits",
      counter_now "solver.tt.misses",
      counter_now "solver.tt.footprint_rejects",
      counter_now "solver.tt.backjumps" )
  in
  let run ~por ~tt =
    let h0, m0, r0, b0 = tt_counters () in
    let ms, dt =
      time_once (fun () -> Census.run ~max_nodes:budget ~por ~tt ())
    in
    let h1, m1, r1, b1 = tt_counters () in
    (ms, dt, (h1 - h0, m1 - m0, r1 - r0, b1 - b0))
  in
  let total ms =
    List.fold_left
      (fun acc (m : Census.measurement) ->
        acc + snd m.Census.two_proc + snd m.Census.three_proc)
      0 ms
  in
  let outcome o = Fmt.str "%a" Census.pp_outcome o in
  (* Verdict identity vs the chronological baseline, with the same
     budget-boundary caveat as PERF-POR: a search that concludes under
     the cap where a bigger one ran out is a budget artifact, not a
     soundness difference. *)
  let verdicts_vs_baseline base ms =
    List.for_all2
      (fun (a : Census.measurement) (b : Census.measurement) ->
        let o2a, _ = a.Census.two_proc and o3a, _ = a.Census.three_proc in
        let o2b, _ = b.Census.two_proc and o3b, _ = b.Census.three_proc in
        let same =
          outcome o2a = outcome o2b
          && outcome o3a = outcome o3b
          && Option.equal Value.equal a.Census.winning_init2
               b.Census.winning_init2
          && Option.equal Value.equal a.Census.winning_init3
               b.Census.winning_init3
        in
        let capped =
          List.exists (fun o -> o = Census.Budget) [ o2a; o3a; o2b; o3b ]
        in
        same || capped)
      base ms
  in
  let base, t_base, _ = run ~por:false ~tt:false in
  let n_base = total base in
  let grid =
    List.map
      (fun (name, por, tt) ->
        let ms, dt, deltas = run ~por ~tt in
        (name, ms, dt, deltas))
      [ ("por", true, false); ("tt", false, true); ("por+tt", true, true) ]
  in
  Fmt.pr "  %-10s %12s %8s %9s  verdicts@." "combo" "nodes" "sec"
    "reduction";
  Fmt.pr "  %-10s %12d %8.1f %8.2fx  -@." "baseline" n_base t_base 1.0;
  record_series "tt/census/baseline"
    (Obs.Json.obj
       [
         ("nodes", Obs.Json.int n_base);
         ("seconds", Obs.Json.float t_base);
       ]);
  let all_match = ref true in
  List.iter
    (fun (name, ms, dt, (h, m, r, b)) ->
      let n = total ms in
      let ok = verdicts_vs_baseline base ms in
      if not ok then all_match := false;
      let reduction =
        if n > 0 then float_of_int n_base /. float_of_int n else 1.
      in
      let hit_rate =
        if h + m > 0 then float_of_int h /. float_of_int (h + m) else 0.
      in
      record_series ("tt/census/" ^ name)
        (Obs.Json.obj
           [
             ("nodes", Obs.Json.int n);
             ("seconds", Obs.Json.float dt);
             ("reduction", Obs.Json.float reduction);
             ("verdicts_match", Obs.Json.bool ok);
             ("tt_hits", Obs.Json.int h);
             ("tt_misses", Obs.Json.int m);
             ("tt_hit_rate", Obs.Json.float hit_rate);
             ("tt_footprint_rejects", Obs.Json.int r);
             ("tt_backjumps", Obs.Json.int b);
           ]);
      Fmt.pr "  %-10s %12d %8.1f %8.2fx  %s%s@." name n dt reduction
        (if ok then "identical (where both searches complete)"
         else "MISMATCH")
        (if h + m > 0 then
           Fmt.str "  [tt hit %.1f%%, rejects %d, backjumps %d]"
             (hit_rate *. 100.) r b
         else ""))
    grid;
  (* Per-object breakdown of the headline comparison (por vs por+tt):
     this is where the dominant conclusive rows — n-assignment n=3
     above all — show the learning paying off. *)
  (match
     ( List.find_opt (fun (n, _, _, _) -> n = "por") grid,
       List.find_opt (fun (n, _, _, _) -> n = "por+tt") grid )
   with
  | Some (_, por_ms, _, _), Some (_, both_ms, _, _) ->
      List.iter2
        (fun (a : Census.measurement) (b : Census.measurement) ->
          let na = snd a.Census.two_proc + snd a.Census.three_proc in
          let nb = snd b.Census.two_proc + snd b.Census.three_proc in
          let reduction =
            if nb > 0 then float_of_int na /. float_of_int nb else 1.
          in
          record_series ("tt/census-row/" ^ a.Census.object_name)
            (Obs.Json.obj
               [
                 ("nodes_por", Obs.Json.int na);
                 ("nodes_por_tt", Obs.Json.int nb);
                 ("reduction", Obs.Json.float reduction);
               ]);
          Fmt.pr "  row %-22s nodes %10d -> %10d  (%5.2fx)@."
            a.Census.object_name na nb reduction)
        por_ms both_ms
  | _ -> ());
  record_series "tt/census-grid"
    (Obs.Json.obj
       [
         ("budget", Obs.Json.int budget);
         ("verdicts_match", Obs.Json.bool !all_match);
       ]);
  Fmt.pr "  verdicts across the grid: %s@."
    (if !all_match then "identical (where both searches complete)"
     else "MISMATCH")

(* ---------- EXT-2: Lamport 1P/1C queue (§3.3) ---------- *)

let lamport_queue_bench () =
  section "EXT-2  Lamport 1P/1C queue (registers only) vs CAS-based queues";
  let items = 200_000 in
  let run_1p1c name enq deq =
    let (), dt =
      time_once (fun () ->
          ignore
            (Runtime.Primitives.run_domains 2 (fun pid ->
                 if pid = 0 then begin
                   let sent = ref 0 in
                   while !sent < items do
                     if enq !sent then incr sent else Domain.cpu_relax ()
                   done
                 end
                 else begin
                   let got = ref 0 in
                   while !got < items do
                     match deq () with
                     | Some _ -> incr got
                     | None -> Domain.cpu_relax ()
                   done
                 end)))
    in
    record_series ("lamport/" ^ name)
      (Obs.Json.obj
         [
           ( "transfers_per_ms",
             Obs.Json.float (float_of_int items /. dt /. 1000.0) );
           ("items", Obs.Json.int items);
         ]);
    Fmt.pr "  %-44s %8.0f transfers/ms@." name
      (float_of_int items /. dt /. 1000.0)
  in
  let lq = Runtime.Lamport_queue.create ~capacity:1024 in
  run_1p1c "lamport ring (read/write registers only)"
    (fun x -> Runtime.Lamport_queue.enqueue lq x)
    (fun () -> Runtime.Lamport_queue.dequeue lq);
  let ms = Runtime.Baselines.Michael_scott_queue.make () in
  run_1p1c "michael-scott (CAS)"
    (fun x ->
      Runtime.Baselines.Michael_scott_queue.enqueue ms x;
      true)
    (fun () -> Runtime.Baselines.Michael_scott_queue.dequeue ms);
  Fmt.pr
    "  (the register-only queue is legal here because there is exactly@.\
  \   one enqueuer and one dequeuer — the boundary drawn by §3.3)@."

(* ---------- FAULT: the crash-stop adversary, sim and runtime ----------

   Sim side: verification cost and verdict under a crash budget — the
   state space grows (every placement of up to k halts is explored), and
   every sound registry protocol must keep passing, while the naive
   register protocol must fail with a crash-bearing schedule.  Runtime
   side: halt k of n domains mid-operation against the wait-free
   universal queue; survivors must complete and the recorded history
   (crashed operations left pending) must linearize. *)

let fault_bench () =
  section "FAULT  crash-stop adversary: sim crash budgets + runtime halts";
  List.iter
    (fun (key, n, crashes) ->
      match (Registry.find key).Registry.build ~n with
      | None -> ()
      | Some p ->
          let report, dt =
            time_once (fun () -> Protocol.verify ~crashes p)
          in
          let name = Fmt.str "fault/verify/%s-n%d-c%d" key n crashes in
          record_series name
            (Obs.Json.obj
               [
                 ("ms", Obs.Json.float (dt *. 1e3));
                 ("states", Obs.Json.int report.Protocol.states);
                 ("crashes", Obs.Json.int crashes);
                 ("passed", Obs.Json.bool (Protocol.passed report));
               ]);
          Fmt.pr "  %-44s %8.1f ms %8d states  passed=%b@." name (dt *. 1e3)
            report.Protocol.states
            (Protocol.passed report))
    [
      ("cas", 2, 1); ("cas", 3, 2); ("test-and-set", 2, 1);
      ("queue", 2, 1); ("fetch-and-add", 2, 1);
    ];
  (* the impossibility side: the naive register protocol must fail, and
     the extracted schedule should exercise a crash *)
  (match (Registry.find "register-naive").Registry.build ~n:3 with
  | None -> ()
  | Some p ->
      let v, dt = time_once (fun () -> Protocol.find_violation ~crashes:1 p) in
      let crashing =
        match v with
        | Some v ->
            List.exists
              (function Protocol.Crash _ -> true | Protocol.Step _ -> false)
              v.Protocol.schedule
        | None -> false
      in
      record_series "fault/counterexample/register-naive-n3-c1"
        (Obs.Json.obj
           [
             ("ms", Obs.Json.float (dt *. 1e3));
             ("found", Obs.Json.bool (v <> None));
             ("schedule_has_crash", Obs.Json.bool crashing);
           ]);
      Fmt.pr "  %-44s %8.1f ms  found=%b crash-in-schedule=%b@."
        "fault/counterexample/register-naive-n3-c1" (dt *. 1e3) (v <> None)
        crashing);
  List.iter
    (fun (n, halts) ->
      let s, dt =
        time_once (fun () -> Runtime.Fault.stress_queue ~n ~halts ())
      in
      let name = Fmt.str "fault/stress/n%d-h%d" n halts in
      record_series name
        (Obs.Json.obj
           [
             ("ms", Obs.Json.float (dt *. 1e3));
             ("survivor_ops", Obs.Json.int s.Runtime.Fault.survivor_ops);
             ("crashed_ops", Obs.Json.int s.Runtime.Fault.crashed_ops);
             ("passed", Obs.Json.bool (Runtime.Fault.stress_passed s));
           ]);
      Fmt.pr "  %-44s %8.1f ms  crashed-ops=%d passed=%b@." name (dt *. 1e3)
        s.Runtime.Fault.crashed_ops
        (Runtime.Fault.stress_passed s))
    [ (2, 1); (4, 1); (4, 2); (4, 3) ]

(* ---------- profile: span profiler overhead ----------

   The Profile contract (DESIGN 5.9): one predictable branch when
   disabled, <= 5% on an exploration workload when enabled.  Three
   measurements pin it down:

     profile/overhead          Protocol.verify aug-queue n=4, profiling
                               off vs enabled (coarse spans: shards,
                               solver verdicts)
     profile/recorder-op       recorder-dense loop — rt.op spans at the
                               recorder's 1-in-64 sampling rate, the
                               fine-grained worst case
     profile/disabled-span-ns  Profile.span around a trivial thunk vs
                               the bare thunk, per call, profiler off

   The profiler is disabled and its rings reset before the section
   returns so later sections (and write_results) see a quiet state. *)

let profile_overhead () =
  section "PROFILE  span profiler overhead: off vs enabled (target <=5%)";
  let reps =
    match Sys.getenv_opt "WFS_PERF_REPS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 5)
    | None -> 5
  in
  let best ~iters f =
    ignore (f ());
    let t = ref infinity in
    for _ = 1 to reps do
      Gc.minor ();
      let (), dt =
        time_once (fun () ->
            for _ = 1 to iters do
              ignore (f ())
            done)
      in
      let per_call = dt /. float_of_int iters in
      if per_call < !t then t := per_call
    done;
    !t
  in
  let measure_pair name ~iters work =
    let off = best ~iters work in
    Obs.Profile.enable ();
    let on_ = best ~iters work in
    Obs.Profile.disable ();
    Obs.Profile.reset ();
    let pct = if off > 0. then (on_ -. off) /. off *. 100. else 0. in
    (off, on_, pct, name)
  in
  (* Exploration workload: spans here are coarse (per shard, per solver
     verdict), so the enabled tax must stay well inside the 5% budget. *)
  let aq4 = Aug_queue_consensus.protocol ~n:4 () in
  let off, on_, pct, _ =
    measure_pair "verify-aug-queue-n4" ~iters:1 (fun () ->
        Protocol.verify aq4)
  in
  record_series "profile/overhead"
    (Obs.Json.obj
       [
         ("off_seconds", Obs.Json.float off);
         ("on_seconds", Obs.Json.float on_);
         ("overhead_pct", Obs.Json.float pct);
         ("reps", Obs.Json.int reps);
       ]);
  Fmt.pr "  %-34s off %9.2f ms   on %9.2f ms   overhead %+5.1f%%@."
    "verify-aug-queue-n4" (off *. 1e3) (on_ *. 1e3) pct;
  (* Recorder-dense workload: with profiling enabled the recorder opens
     an rt.op span for 1 op in 64 (sampled — a span per op multiplied
     sub-microsecond ops several-fold), so this measures the amortized
     enabled cost in its least flattering setting (ops that do almost
     nothing). *)
  let ops = 20_000 in
  let off, on_, pct, _ =
    measure_pair "recorder-op" ~iters:1 (fun () ->
        let r = Runtime.Recorder.create ~capacity:(2 * ops) in
        for pid = 0 to ops - 1 do
          ignore
            (Runtime.Recorder.around r ~pid:(pid land 7) ~obj:"q"
               ~op:Queues.deq ~encode_res:Value.int (fun () -> 0))
        done)
  in
  record_series "profile/recorder-op"
    (Obs.Json.obj
       [
         ("off_ns_per_op", Obs.Json.float (off /. float_of_int ops *. 1e9));
         ("on_ns_per_op", Obs.Json.float (on_ /. float_of_int ops *. 1e9));
         ("overhead_pct", Obs.Json.float pct);
         ("ops", Obs.Json.int ops);
         ("reps", Obs.Json.int reps);
       ]);
  Fmt.pr "  %-34s off %9.1f ns/op on %9.1f ns/op overhead %+5.1f%%@."
    "recorder-op"
    (off /. float_of_int ops *. 1e9)
    (on_ /. float_of_int ops *. 1e9)
    pct;
  (* Disabled micro-cost: Profile.span around a trivial thunk vs the
     bare thunk.  The delta is the price every instrumented seam pays
     when nobody is profiling — it should be a branch, i.e. ~0 ns. *)
  let iters = 2_000_000 in
  let sink = ref 0 in
  let thunk () = incr sink in
  let bare = best ~iters (fun () -> thunk ()) in
  let spanned = best ~iters (fun () -> Obs.Profile.span "bench.noop" thunk) in
  let delta_ns = (spanned -. bare) *. 1e9 in
  record_series "profile/disabled-span-ns"
    (Obs.Json.obj
       [
         ("bare_ns", Obs.Json.float (bare *. 1e9));
         ("span_ns", Obs.Json.float (spanned *. 1e9));
         ("delta_ns", Obs.Json.float delta_ns);
         ("iters_per_rep", Obs.Json.int iters);
         ("reps", Obs.Json.int reps);
       ]);
  Fmt.pr "  %-34s bare %8.2f ns   span %8.2f ns   delta %+6.2f ns@."
    "disabled-span" (bare *. 1e9) (spanned *. 1e9) delta_ns;
  (* Metrics-hot tax on the wait-free apply path (target <=5%): the
     batched construction's per-op instrumentation — the ops counter,
     help-round and batch-size histograms, log-length gauge — measured
     cold vs hot on the same single-domain workload. *)
  let module WC = Runtime.Universal.Wait_free (Runtime.Seq_objects.Counter) in
  (* ~10ms per timed window: small enough to keep the section quick,
     large enough that a scheduler blip on the shared box doesn't
     swallow the few-percent signal *)
  let wf_ops = 100_000 in
  let wf_run () =
    let w = WC.create ~n:1 () in
    for _ = 1 to wf_ops do
      ignore (WC.apply w ~pid:0 Runtime.Seq_objects.Counter.Incr)
    done
  in
  let was_hot = Obs.Metrics.hot () in
  (* interleaved min-of-reps — each rep times metrics-off and
     metrics-on back to back, so both sides face the same machine
     drift; sequential off-block-then-on-block measurement let a slow
     phase of the shared box masquerade as tens of percent of
     (anti-)overhead *)
  Obs.Metrics.set_hot false;
  wf_run ();
  Obs.Metrics.set_hot true;
  wf_run ();
  let off = ref infinity and on_ = ref infinity in
  let timed hot =
    Obs.Metrics.set_hot hot;
    Gc.minor ();
    let (), dt = time_once wf_run in
    let cell = if hot then on_ else off in
    if dt < !cell then cell := dt
  in
  (* alternate the within-pair order rep to rep: the second run of a
     pair tends to be faster (warmer caches), and a fixed order would
     book that as (anti-)overhead *)
  for rep = 1 to reps do
    if rep land 1 = 0 then begin
      timed false;
      timed true
    end
    else begin
      timed true;
      timed false
    end
  done;
  Obs.Metrics.set_hot was_hot;
  let off = !off and on_ = !on_ in
  let pct = if off > 0. then (on_ -. off) /. off *. 100. else 0. in
  record_series "profile/wait-free-metrics"
    (Obs.Json.obj
       [
         ("off_ns_per_op", Obs.Json.float (off /. float_of_int wf_ops *. 1e9));
         ("on_ns_per_op", Obs.Json.float (on_ /. float_of_int wf_ops *. 1e9));
         ("overhead_pct", Obs.Json.float pct);
         ("ops", Obs.Json.int wf_ops);
         ("reps", Obs.Json.int reps);
       ]);
  Fmt.pr "  %-34s off %9.1f ns/op on %9.1f ns/op overhead %+5.1f%%@."
    "wait-free-apply-metrics"
    (off /. float_of_int wf_ops *. 1e9)
    (on_ /. float_of_int wf_ops *. 1e9)
    pct

(* ---------- obs-causal: sampled causal tracing overhead ----------

   The Causal contract (ISSUE 10): 1-in-64 sampled tracing on the
   universal-service hot path costs <= 5%.  Same discipline as
   profile/wait-free-metrics: interleaved min-of-reps with the
   within-pair order alternated rep to rep, so machine drift and cache
   warmth cancel instead of masquerading as (anti-)overhead.  The help
   canary stays off — it deliberately parks invocations, so it belongs
   to trace-quality runs, not to the overhead budget. *)

let obs_causal () =
  section "OBS-CAUSAL  sampled causal tracing: off vs on (target <=5%)";
  let reps =
    match Sys.getenv_opt "WFS_PERF_REPS" with
    | Some s -> ( try max 1 (int_of_string s) with Failure _ -> 5)
    | None -> 5
  in
  let module WC = Runtime.Universal.Wait_free (Runtime.Seq_objects.Counter) in
  let ops = 100_000 in
  let run () =
    let w = WC.create ~label:"bench-counter" ~n:1 () in
    for _ = 1 to ops do
      ignore (WC.apply w ~pid:0 Runtime.Seq_objects.Counter.Incr)
    done
  in
  let set_traced t =
    if t then Obs.Causal.enable ~sample:64 ()
    else begin
      Obs.Causal.disable ();
      Obs.Causal.reset ()
    end
  in
  (* warm both modes before timing anything *)
  set_traced false;
  run ();
  set_traced true;
  run ();
  let off = ref infinity and on_ = ref infinity in
  let timed traced =
    set_traced traced;
    Gc.minor ();
    let (), dt = time_once run in
    let cell = if traced then on_ else off in
    if dt < !cell then cell := dt
  in
  for rep = 1 to reps do
    if rep land 1 = 0 then begin
      timed false;
      timed true
    end
    else begin
      timed true;
      timed false
    end
  done;
  set_traced false;
  let off = !off and on_ = !on_ in
  let pct = if off > 0. then (on_ -. off) /. off *. 100. else 0. in
  record_series "obs-causal/universal-service"
    (Obs.Json.obj
       [
         ("off_ns_per_op", Obs.Json.float (off /. float_of_int ops *. 1e9));
         ("on_ns_per_op", Obs.Json.float (on_ /. float_of_int ops *. 1e9));
         ("overhead_pct", Obs.Json.float pct);
         ("sample_every", Obs.Json.int 64);
         ("ops", Obs.Json.int ops);
         ("reps", Obs.Json.int reps);
         ("budget_ok", Obs.Json.bool (pct <= 5.0));
       ]);
  Fmt.pr "  %-34s off %9.1f ns/op on %9.1f ns/op overhead %+5.1f%%@."
    "universal-apply-traced"
    (off /. float_of_int ops *. 1e9)
    (on_ /. float_of_int ops *. 1e9)
    pct

(* ---------- entry point ----------

   With no arguments every section runs; positional arguments select a
   subset (useful in CI and when iterating on one construction).  Either
   way the harness finishes by writing BENCH_results.json. *)

let sections : (string * (unit -> unit)) list =
  [
    ("fig1.1", fig_1_1);
    ("impossibility", impossibility_proofs);
    ("solver-ablation", solver_ablation);
    ("verify", verification_benches);
    ("primitives", primitive_benches);
    ("fac", fac_benches);
    ("universal-throughput", universal_throughput);
    ("universal-service", universal_service);
    ("consensus-scaling", consensus_scaling);
    ("replay-cost", replay_cost_series);
    ("fac-rounds", fac_rounds_series);
    ("universal-verify", universal_verification);
    ("census", census);
    ("randomized", randomized_series);
    ("lamport", lamport_queue_bench);
    ("fault", fault_bench);
    ("perf", perf);
    ("perf-par", perf_par);
    ("perf-por", perf_por);
    ("perf-tt", perf_tt);
    ("profile", profile_overhead);
    ("obs-causal", obs_causal);
  ]

let () =
  let argv =
    match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest
  in
  (* [-j N] caps the domain counts the perf-par curves exercise. *)
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "-j" :: [] ->
        Fmt.epr "-j expects a domain count@.";
        exit 2
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            par_max_j := v;
            parse_args acc rest
        | Some _ | None ->
            Fmt.epr "-j expects a positive integer (got %s)@." n;
            exit 2)
    | s :: rest -> parse_args (s :: acc) rest
  in
  let requested = parse_args [] argv in
  let unknown =
    List.filter (fun s -> not (List.mem_assoc s sections)) requested
  in
  if unknown <> [] then begin
    Fmt.epr "unknown section(s): %a@.available: %a@."
      Fmt.(list ~sep:comma string)
      unknown
      Fmt.(list ~sep:comma string)
      (List.map fst sections);
    exit 2
  end;
  let to_run =
    if requested = [] then sections
    else List.filter (fun (name, _) -> List.mem name requested) sections
  in
  Fmt.pr
    "wfs benchmark harness — reproducing Herlihy (PODC 1988)@.\
     hardware note: %d CPU core(s) visible; multi-domain numbers are@.\
     interleaved concurrency, not parallel speedup.@."
    (Domain.recommended_domain_count ());
  List.iter
    (fun (name, run) ->
      let started_ns = Obs.Clock.now_ns () in
      let (), dt = time_once run in
      section_timings :=
        ( name,
          Obs.Json.obj
            [
              ("seconds", Obs.Json.float dt);
              ("started_ns", Obs.Json.int started_ns);
            ] )
        :: !section_timings)
    to_run;
  write_results "BENCH_results.json" (List.map fst to_run);
  Fmt.pr "@.done.@."
