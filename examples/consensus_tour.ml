(* A tour of every consensus protocol in the paper, executed step by
   step in the simulator so the mechanics are visible.

   For each protocol in the registry: build it for two processes, run it
   under an adversarial-ish random schedule, and print the trace of
   atomic operations with the final election result.  Then verify it
   exhaustively.

   Run with:  dune exec examples/consensus_tour.exe *)

open Wfs

let () =
  Fmt.pr "== every consensus protocol in the paper, on one schedule ==@.";
  List.iter
    (fun entry ->
      match entry.Registry.build ~n:2 with
      | None -> ()
      | Some protocol ->
          Fmt.pr "@.-- %s (%s) --@." protocol.Protocol.name
            protocol.Protocol.theorem;
          let outcome =
            Protocol.run_once ~schedule:(Scheduler.random ~seed:2024) protocol
          in
          List.iter
            (fun step -> Fmt.pr "  %a@." Runner.pp_step step)
            outcome.Runner.trace;
          (match outcome.Runner.decisions with
          | (p, v) :: _ ->
              Fmt.pr "  => all processes decide %a (first decider P%d)@."
                Value.pp v p
          | [] -> Fmt.pr "  => no decision?!@.");
          let report = Protocol.verify protocol in
          Fmt.pr "  exhaustive check: %s (%d states)@."
            (if Protocol.passed report then "PASSED over all schedules"
             else "FAILED")
            report.Protocol.states)
    Registry.entries

let () =
  Fmt.pr
    "@.== and the ones that need more processes: CAS at n = 4 ==@.@.";
  let protocol = Cas_consensus.protocol ~n:4 () in
  let outcome = Protocol.run_once ~schedule:(Scheduler.random ~seed:7) protocol in
  List.iter (fun step -> Fmt.pr "  %a@." Runner.pp_step step) outcome.Runner.trace;
  let report = Protocol.verify protocol in
  Fmt.pr "  exhaustive check at n=4: %s (%d states)@."
    (if Protocol.passed report then "PASSED" else "FAILED")
    report.Protocol.states
