(* A guided tour of the consensus hierarchy (Figure 1-1).

   Walks the object zoo and shows, for each family, the machine-checked
   evidence for its level:

   - verified consensus protocols (the constructive side),
   - the Theorem 6 interference classification,
   - bounded-protocol solver verdicts (the impossibility side), and
   - for test-and-set, the protocol the solver *synthesizes* by itself.

   Run with:  dune exec examples/hierarchy_survey.exe *)

open Wfs

let section title = Fmt.pr "@.== %s ==@.@." title

let () =
  section "Figure 1-1, regenerated";
  let table = Table.generate () in
  Fmt.pr "%a@." Table.pp table;
  Fmt.pr "@.consistent with the paper: %b@." (Table.consistent table)

let () =
  section "Theorem 6's case analysis, on concrete semantics";
  let domain = [ Value.int 0; Value.int 1; Value.int 2 ] in
  let pairs =
    [
      ("test-and-set vs fetch-and-add", Registers.test_and_set_op,
       Registers.fetch_and_add_op [ 1 ]);
      ("write(1) vs write(2)",
       Registers.write_ops [ Value.int 1 ],
       Registers.write_ops [ Value.int 2 ]);
      ("cas vs cas", Registers.compare_and_swap_op domain,
       Registers.compare_and_swap_op domain);
    ]
  in
  List.iter
    (fun (name, a, b) ->
      let ca = Interference.concretize [ a ] and cb = Interference.concretize [ b ] in
      let interfering =
        List.for_all
          (fun x ->
            List.for_all
              (fun y ->
                Interference.classify_pair ~domain x y
                <> Interference.Interfering_not)
              cb)
          ca
      in
      Fmt.pr "%-32s %s@." name
        (if interfering then "interfering (Thm 6 applies: level <= 2)"
         else "NOT interfering (escapes Thm 6)"))
    pairs

let () =
  section "The solver synthesizes Theorem 4's protocol";
  match
    Solver.solve (Solver.of_spec ~n:2 ~depth:1 (Registers.test_and_set ()))
  with
  | Solver.Solvable strategy ->
      Fmt.pr
        "asked: is there a 2-process consensus protocol using one@.\
         test-and-set register, at most 1 operation per process?@.@.";
      Fmt.pr "%a@."
        Fmt.(vbox (list ~sep:cut Solver.pp_assignment))
        strategy;
      Fmt.pr
        "@.— which is exactly the paper's Decide_P / Decide_Q protocol.@."
  | v -> Fmt.pr "unexpected: %a@." Solver.pp_verdict v

let () =
  section "And proves Theorem 2 for bounded protocols";
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  List.iter
    (fun depth ->
      let verdict = Solver.solve (Solver.of_spec ~n:2 ~depth reg) in
      Fmt.pr
        "2 processes, binary read/write register, <= %d ops/process: %a@."
        depth Solver.pp_verdict verdict)
    [ 1; 2 ]

let () =
  section "Critical states: the engine of every impossibility proof";
  (* the verified test-and-set protocol has a critical state where both
     pending operations decide the election *)
  let p = Rmw_consensus.test_and_set () in
  match Valency.find_critical p.Protocol.config with
  | Some crit ->
      Fmt.pr
        "found a bivalent state of the test-and-set protocol where every@.\
         successor is univalent:@.";
      List.iter
        (fun (pid, _, v) ->
          Fmt.pr "  if P%d moves next the outcome is pinned to %a@." pid
            Valency.pp_valency v)
        crit.Valency.branches;
      Fmt.pr
        "The paper's proofs work by showing the object cannot tell these@.\
         futures apart — here the test-and-set can, so consensus works.@."
  | None -> Fmt.pr "no critical state (unexpected)@."
