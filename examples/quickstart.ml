(* Quickstart: build a wait-free FIFO queue out of compare-and-swap.

   The paper's Corollary 10 proves you cannot build a wait-free queue
   from read/write registers; Theorem 7 + Theorem 26 say you CAN build
   one from compare-and-swap, because CAS solves n-process consensus and
   any consensus object is universal.  This example does exactly that,
   twice:

   1. in the simulator, exhaustively verifying the construction over
      every interleaving of two processes;
   2. on real multicore OCaml, sharing the queue between four domains.

   Run with:  dune exec examples/quickstart.exe *)

open Wfs

let () = Fmt.pr "== wait-free queue from CAS: the universal construction ==@.@."

(* --- 1. simulated, exhaustively verified --- *)

let () =
  let target = Queues.fifo ~name:"queue" ~items:[ Value.int 1; Value.int 2 ] () in
  let scripts =
    [|
      [ Queues.enq (Value.int 1); Queues.deq ];
      [ Queues.enq (Value.int 2); Queues.deq ];
    |]
  in
  let v = Log_universal.verify ~target ~scripts () in
  Fmt.pr
    "simulator: 2 front-ends, 2 operations each, every interleaving explored@.";
  Fmt.pr "  joint states: %d, terminal schedules: %d, linearizable: %b@.@."
    v.Log_universal.states v.Log_universal.terminals v.Log_universal.ok;
  assert v.Log_universal.ok

(* --- 2. real multicore --- *)

module Q = Runtime.Universal.Lock_free (Runtime.Seq_objects.Queue_of_int)

let () =
  let open Runtime.Seq_objects.Queue_of_int in
  let queue = Q.create () in
  let domains = 4 in
  let per_domain = 10_000 in
  let t0 = Unix.gettimeofday () in
  let dequeued =
    Runtime.Primitives.run_domains domains (fun pid ->
        let mine = ref 0 in
        for i = 0 to per_domain - 1 do
          (match Q.apply queue (Enq ((pid * per_domain) + i)) with
          | Enqueued -> ()
          | Deqd _ | Empty -> assert false);
          match Q.apply queue Deq with
          | Deqd _ -> incr mine
          | Empty -> ()
          | Enqueued -> assert false
        done;
        !mine)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let total_ops = 2 * domains * per_domain in
  Fmt.pr "multicore: %d domains x %d enq/deq pairs through one shared queue@."
    domains per_domain;
  Fmt.pr "  dequeued per domain: %a@." Fmt.(list ~sep:sp int) dequeued;
  Fmt.pr "  %d operations in %.3fs (%.0f ops/s)@." total_ops elapsed
    (float_of_int total_ops /. elapsed);
  Fmt.pr "  leftover in queue: %d@."
    (total_ops / 2 - List.fold_left ( + ) 0 dequeued);
  Fmt.pr "@.No locks were taken; every operation completed in a finite@.";
  Fmt.pr "number of its own steps, per the paper's wait-free condition.@."
