(* Multicore work distribution over three shared queues:

   - the wait-free universal queue (this library, from CAS),
   - the hand-crafted Michael-Scott lock-free queue (also from CAS —
     Theorem 7 says CAS suffices for anything),
   - a mutex-guarded queue.

   Workers pull tasks (leibniz-series slices) from the shared queue and
   push results to a shared counter.  The point is not that the
   universal construction wins races — hand-crafted structures are
   faster — but that a *generic* construction derived mechanically from
   a sequential specification keeps up within a small factor and keeps
   all the wait-free guarantees.

   Run with:  dune exec examples/task_scheduler.exe *)

open Wfs

let tasks = 2_000
let slice = 2_000

(* the work item: sum a slice of the Leibniz series for pi *)
let work k =
  let acc = ref 0.0 in
  for i = k * slice to ((k + 1) * slice) - 1 do
    let t = 1.0 /. float_of_int ((2 * i) + 1) in
    acc := !acc +. (if i mod 2 = 0 then t else -.t)
  done;
  !acc

type queue_impl = {
  name : string;
  enqueue : int -> unit;
  dequeue : unit -> int option;
}

let universal_queue () =
  let module Q = Runtime.Universal.Lock_free (Runtime.Seq_objects.Queue_of_int) in
  let q = Q.create () in
  {
    name = "universal (wait-free, generic)";
    enqueue = (fun x -> ignore (Q.apply q (Runtime.Seq_objects.Queue_of_int.Enq x)));
    dequeue =
      (fun () ->
        match Q.apply q Runtime.Seq_objects.Queue_of_int.Deq with
        | Runtime.Seq_objects.Queue_of_int.Deqd x -> Some x
        | _ -> None);
  }

let michael_scott_queue () =
  let q = Runtime.Baselines.Michael_scott_queue.make () in
  {
    name = "michael-scott (lock-free, hand-crafted)";
    enqueue = Runtime.Baselines.Michael_scott_queue.enqueue q;
    dequeue = (fun () -> Runtime.Baselines.Michael_scott_queue.dequeue q);
  }

let locked_queue () =
  let module Q = Runtime.Universal.Locked (Runtime.Seq_objects.Queue_of_int) in
  let q = Q.create () in
  {
    name = "mutex-guarded";
    enqueue = (fun x -> ignore (Q.apply q (Runtime.Seq_objects.Queue_of_int.Enq x)));
    dequeue =
      (fun () ->
        match Q.apply q Runtime.Seq_objects.Queue_of_int.Deq with
        | Runtime.Seq_objects.Queue_of_int.Deqd x -> Some x
        | _ -> None);
  }

let run_with impl ~workers =
  for k = 0 to tasks - 1 do
    impl.enqueue k
  done;
  let sum = Atomic.make 0.0 in
  let add x =
    let rec go () =
      let old = Atomic.get sum in
      if not (Atomic.compare_and_set sum old (old +. x)) then go ()
    in
    go ()
  in
  let t0 = Unix.gettimeofday () in
  let completed =
    Runtime.Primitives.run_domains workers (fun _ ->
        let mine = ref 0 in
        let rec loop () =
          match impl.dequeue () with
          | Some k ->
              add (work k);
              incr mine;
              loop ()
          | None -> ()
        in
        loop ();
        !mine)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let pi = 4.0 *. Atomic.get sum in
  (List.fold_left ( + ) 0 completed, elapsed, pi)

let () =
  Fmt.pr "== task scheduling over shared queues ==@.@.";
  Fmt.pr "%d tasks of %d series terms each, 4 worker domains@.@." tasks slice;
  List.iter
    (fun make_impl ->
      let impl = make_impl () in
      let completed, elapsed, pi = run_with impl ~workers:4 in
      Fmt.pr "%-40s %4d tasks in %.3fs   pi ~ %.9f@." impl.name completed
        elapsed pi;
      assert (completed = tasks))
    [ universal_queue; michael_scott_queue; locked_queue ];
  Fmt.pr
    "@.All three agree on the result; the generic universal queue pays a@.";
  Fmt.pr
    "constant factor over the hand-crafted one for its mechanical origin.@."
