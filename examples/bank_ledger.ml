(* A wait-free bank ledger, and why the paper's introduction matters.

   The ledger supports atomic multi-account transfers — a shape of
   "database synchronization" beyond fetch-and-add's power (the paper
   disproves Gottlieb et al.'s conjecture that fetch-and-add is
   universal).  We build it with the universal construction and contrast
   it against the critical-section version under exactly the failure
   mode the introduction describes: a process that stalls at an
   inopportune moment.

   With a mutex, a stalled process *inside* the critical section stalls
   everyone.  With the universal construction, a stalled process stalls
   only itself: its peers' operations still complete in a finite number
   of their own steps.

   We simulate the "page fault / preemption" with an artificially slow
   audit operation (it walks the ledger many times).  Under the locked
   object the audit holds the lock; under the lock-free object the
   audit merely retries and nobody else waits.

   Run with:  dune exec examples/bank_ledger.exe *)

open Wfs
module L = Runtime.Seq_objects.Ledger

(* A ledger whose Balance("AUDIT") operation stalls mid-operation — the
   stand-in for the paper's page fault / exhausted quantum / swap-out.
   The stall is a sleep, so it yields the CPU and the demonstration is
   meaningful even on a single-core machine: whoever is *logically*
   blocked stays blocked, whoever is wait-free gets the core. *)
module Slow_ledger = struct
  type state = L.state
  type op = L.op
  type res = L.res

  let init = L.init

  let apply state op =
    (match op with
    | L.Balance "AUDIT" -> Unix.sleepf 0.02 (* the "page fault" *)
    | _ -> ());
    L.apply state op
end

module Wait_free_ledger = Runtime.Universal.Lock_free (Slow_ledger)
module Locked_ledger = Runtime.Universal.Locked (Slow_ledger)

let accounts = [ "alice"; "bob"; "carol"; "dave" ]
let opening = 10_000

let run_workload ~name ~apply ~read_total =
  List.iter
    (fun a -> ignore (apply (L.Open (a, opening)))) accounts;
  let domains = 4 in
  let duration = 0.5 in
  let stop = Atomic.make false in
  let outcomes =
    Runtime.Primitives.run_domains (domains + 1) (fun pid ->
        if pid = domains then begin
          (* the auditor: issues stalling audits until told to stop.  In
             the lock-free run it may starve (its CAS keeps losing while
             it sleeps) — lock-freedom guarantees system progress, not
             individual progress; the locked run completes audits at the
             cost of stalling everyone else. *)
          let audits = ref 0 in
          while not (Atomic.get stop) do
            ignore (apply (L.Balance "AUDIT"));
            incr audits
          done;
          (!audits, 0.0)
        end
        else begin
          let ops = ref 0 in
          let worst = ref 0.0 in
          let i = ref 0 in
          let started = Unix.gettimeofday () in
          while not (Atomic.get stop) do
            (* domain 0 is the timekeeper *)
            if pid = 0 && Unix.gettimeofday () -. started > duration then
              Atomic.set stop true
            else begin
              let src = List.nth accounts (!i mod 4) in
              let dst = List.nth accounts ((!i + 1) mod 4) in
              let t0 = Unix.gettimeofday () in
              ignore (apply (L.Transfer { src; dst; amount = 1 }));
              let dt = Unix.gettimeofday () -. t0 in
              if dt > !worst then worst := dt;
              incr ops;
              incr i
            end
          done;
          (!ops, !worst)
        end)
  in
  let transfers = List.filteri (fun i _ -> i < domains) outcomes in
  let audits = fst (List.nth outcomes domains) in
  let worst_latency =
    List.fold_left (fun acc (_, w) -> Float.max acc w) 0.0 transfers
  in
  let total = read_total () in
  Fmt.pr
    "%-12s transfers: %7d   worst transfer latency: %6.2f ms   audits: %d   \
     money conserved: %b@."
    name
    (List.fold_left (fun acc (o, _) -> acc + o) 0 transfers)
    (worst_latency *. 1000.0)
    audits
    (total = List.length accounts * opening);
  worst_latency

let () =
  Fmt.pr "== wait-free bank ledger vs critical sections ==@.@.";
  Fmt.pr
    "4 domains transfer money while 1 domain runs slow audits for 0.5s.@.";
  Fmt.pr
    "The interesting number is the WORST latency of a single transfer:@.";
  Fmt.pr
    "with a lock it inflates to the length of an audit's critical section;@.";
  Fmt.pr "wait-free, nobody ever waits for the slow auditor.@.@.";
  let wf = Wait_free_ledger.create () in
  let wf_worst =
    run_workload ~name:"wait-free"
      ~apply:(fun op -> Wait_free_ledger.apply wf op)
      ~read_total:(fun () -> L.total (Wait_free_ledger.read wf))
  in
  let lk = Locked_ledger.create () in
  let lk_worst =
    run_workload ~name:"locked"
      ~apply:(fun op -> Locked_ledger.apply lk op)
      ~read_total:(fun () -> L.total (Locked_ledger.read lk))
  in
  Fmt.pr "@.worst-latency ratio (locked / wait-free): %.0fx@."
    (lk_worst /. Float.max wf_worst 1e-9);
  Fmt.pr
    "— exactly the paper's introduction: \"if a process executing in a@.";
  Fmt.pr
    "critical region takes a page fault ... other processes needing that@.";
  Fmt.pr "resource will also be delayed.\"@."
