(* On-disk form of a violating schedule; see the .mli for the schema. *)

open Wfs_spec

type kind = Disagreement | Invalid_decision

(* A schedule entry: either process [pid] takes its next atomic step, or
   the crash-stop adversary halts [pid] permanently at this point. *)
type step = Step of int | Crash of int

type t = {
  protocol : string;
  n : int;
  kind : kind;
  schedule : step list;
  decisions : (int * Value.t) list;
}

(* Version 1 schedules are plain pid arrays; version 2 adds crash
   entries.  Files without crashes are still written as /1, so every
   pre-crash consumer keeps working and crash-free exports are
   byte-identical to what the repo produced before the fault layer. *)
let schema_v1 = "wfs-counterexample/1"
let schema_v2 = "wfs-counterexample/2"

let has_crash schedule =
  List.exists (function Crash _ -> true | Step _ -> false) schedule

let schema_of t = if has_crash t.schedule then schema_v2 else schema_v1

let step_pid = function Step p | Crash p -> p

let kind_to_string = function
  | Disagreement -> "disagreement"
  | Invalid_decision -> "invalid-decision"

let kind_of_string = function
  | "disagreement" -> Disagreement
  | "invalid-decision" -> Invalid_decision
  | s -> invalid_arg (Printf.sprintf "Counterexample: unknown kind %S" s)

(* --- value encoding --- *)

let rec value_to_json (v : Value.t) =
  match v with
  | Value.Unit -> Json.list [ Json.str "u" ]
  | Value.Bool b -> Json.list [ Json.str "b"; Json.bool b ]
  | Value.Int n -> Json.list [ Json.str "i"; Json.int n ]
  | Value.Str s -> Json.list [ Json.str "s"; Json.str s ]
  | Value.Pair (a, b) ->
      Json.list [ Json.str "p"; value_to_json a; value_to_json b ]
  | Value.List items ->
      Json.list [ Json.str "l"; Json.list (List.map value_to_json items) ]

let rec value_of_json j =
  match j with
  | Json.List [ Json.Str "u" ] -> Value.unit
  | Json.List [ Json.Str "b"; Json.Bool b ] -> Value.bool b
  | Json.List [ Json.Str "i"; Json.Int n ] -> Value.int n
  | Json.List [ Json.Str "s"; Json.Str s ] -> Value.str s
  | Json.List [ Json.Str "p"; a; b ] ->
      Value.pair (value_of_json a) (value_of_json b)
  | Json.List [ Json.Str "l"; Json.List items ] ->
      Value.list (List.map value_of_json items)
  | _ ->
      invalid_arg
        (Printf.sprintf "Counterexample: malformed value %s" (Json.to_string j))

(* --- record serialization --- *)

let step_to_json = function
  | Step pid -> Json.int pid
  | Crash pid -> Json.obj [ ("crash", Json.int pid) ]

let to_json t =
  Json.obj
    [
      ("schema", Json.str (schema_of t));
      ("protocol", Json.str t.protocol);
      ("n", Json.int t.n);
      ("kind", Json.str (kind_to_string t.kind));
      ("schedule", Json.list (List.map step_to_json t.schedule));
      ( "decisions",
        Json.list
          (List.map
             (fun (pid, v) ->
               Json.obj
                 [ ("pid", Json.int pid); ("value", value_to_json v) ])
             t.decisions) );
    ]

let field name j =
  match Json.member name j with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "Counterexample: missing field %S" name)

let as_int name j =
  match Json.to_int j with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Counterexample: field %S: not an int" name)

let as_str name j =
  match Json.to_str j with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Counterexample: field %S: not a string" name)

let step_of_json j =
  match j with
  | Json.Int pid -> Step pid
  | Json.Obj _ -> (
      match Json.member "crash" j with
      | Some v -> Crash (as_int "crash" v)
      | None ->
          invalid_arg "Counterexample: schedule entry object without \"crash\"")
  | _ ->
      invalid_arg
        (Printf.sprintf "Counterexample: malformed schedule entry %s"
           (Json.to_string j))

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.Str s) when s = schema_v1 || s = schema_v2 -> ()
  | Some (Json.Str s) ->
      invalid_arg (Printf.sprintf "Counterexample: unsupported schema %S" s)
  | _ -> invalid_arg "Counterexample: missing schema field");
  let schedule =
    match Json.to_list (field "schedule" j) with
    | Some steps -> List.map step_of_json steps
    | None -> invalid_arg "Counterexample: field \"schedule\": not a list"
  in
  let decisions =
    match Json.to_list (field "decisions" j) with
    | Some ds ->
        List.map
          (fun d ->
            (as_int "pid" (field "pid" d), value_of_json (field "value" d)))
          ds
    | None -> invalid_arg "Counterexample: field \"decisions\": not a list"
  in
  {
    protocol = as_str "protocol" (field "protocol" j);
    n = as_int "n" (field "n" j);
    kind = kind_of_string (as_str "kind" (field "kind" j));
    schedule;
    decisions;
  }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json t));
      output_char oc '\n')

let load path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Json.of_string content)

let pp_step ppf = function
  | Step pid -> Fmt.int ppf pid
  | Crash pid -> Fmt.pf ppf "crash(%d)" pid

let pp ppf t =
  Fmt.pf ppf "@[<v>%s (n=%d): %s@ schedule: [%a]@ decisions: %a@]" t.protocol
    t.n (kind_to_string t.kind)
    Fmt.(list ~sep:(any "; ") pp_step)
    t.schedule
    Fmt.(
      list ~sep:(any ", ") (fun ppf (p, v) -> Fmt.pf ppf "P%d=%a" p Value.pp v))
    t.decisions
