(* Wall time clamped to be non-decreasing: wall clocks can step
   backwards (NTP), and the trace format promises monotonic timestamps. *)

let last = Atomic.make 0

let now_ns () =
  let raw = int_of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last in
    if raw <= prev then prev
    else if Atomic.compare_and_set last prev raw then raw
    else clamp ()
  in
  clamp ()

let elapsed_ns f =
  let t0 = now_ns () in
  let r = f () in
  (r, now_ns () - t0)
