(* Wall time clamped to be non-decreasing: wall clocks can step
   backwards (NTP), and the trace format promises monotonic timestamps.

   Nanoseconds are computed from the whole-second and fractional parts
   separately.  The obvious [int_of_float (gettimeofday () *. 1e9)] is
   wrong: epoch nanoseconds (~1.75e18) exceed the 53-bit double
   mantissa, so the product quantizes to multiples of ~512 ns and
   sub-microsecond spans collapse to zero or garbage.  Splitting first
   keeps the fractional part small enough that every microsecond the
   underlying clock can express survives the conversion. *)

let last = Atomic.make 0

let of_gettimeofday s =
  let whole = int_of_float s in
  (* [frac] is in [0, 1): multiplying by 1e9 stays far inside the
     mantissa, so the microsecond resolution of [gettimeofday] is
     preserved exactly. *)
  let frac = s -. float_of_int whole in
  (whole * 1_000_000_000) + int_of_float (frac *. 1e9)

let now_ns () =
  let raw = of_gettimeofday (Unix.gettimeofday ()) in
  let rec clamp () =
    let prev = Atomic.get last in
    if raw <= prev then prev
    else if Atomic.compare_and_set last prev raw then raw
    else clamp ()
  in
  clamp ()

let elapsed_ns f =
  let t0 = now_ns () in
  let r = f () in
  (r, now_ns () - t0)
