(** Per-domain span profiler with Chrome [trace_event] output.

    {!span}/{!begin_}/{!end_} record named, timestamped spans into a
    {e per-domain ring buffer}; {!write} serializes everything recorded
    so far as Chrome trace-event JSON ([{"traceEvents": [...]}]) that
    loads directly in Perfetto ([ui.perfetto.dev]) or
    [chrome://tracing], with [pid] = the OS process and one [tid] row
    per OCaml domain.

    Cost model:

    - disabled (the default), every entry point is one branch on a
      plain [bool ref] — argument thunks are not forced, no clock is
      read, nothing allocates beyond the closure at the call site;
    - enabled, a span costs two {!Clock.now_ns} reads and one ring
      slot.  No lock is taken on the record path: each domain writes
      only its own ring.

    Ring semantics: a completed span occupies exactly {e one} ring
    entry (written at [end_] time), so wraparound drops whole spans,
    oldest first — it can never tear a span into an unbalanced
    begin/end pair.  Spans still open when the profile is written are
    dropped for the same reason.

    Concurrency contract: {!span}, {!begin_}, {!end_}, {!complete},
    {!instant} and {!counter} are safe from any domain concurrently.
    {!enable}, {!reset}, {!to_json} and {!write} must run at
    {e quiescence} — no other domain inside an instrumented region —
    which is why the CLI and pool flush only after the pool has
    joined. *)

type args = (string * Json.t) list

(** True between {!enable} and {!disable}.  The one-branch gate. *)
val enabled : unit -> bool

(** [enable ?ring_capacity ()] clears any previous recording and turns
    recording on.  [ring_capacity] (default 65536) is the per-domain
    span budget; when a domain overflows it, its oldest entries are
    dropped (see {!dropped}). *)
val enable : ?ring_capacity:int -> unit -> unit

(** Stop recording.  Recorded data is retained until {!reset} or the
    next {!enable}, so it can still be written out. *)
val disable : unit -> unit

(** Drop everything recorded, in every domain's ring.  Quiescence
    required. *)
val reset : unit -> unit

(** [span ?cat ?args name f] runs [f] inside a span.  The [args] thunk
    is forced only when profiling is enabled.  Exceptions close the
    span and propagate. *)
val span : ?cat:string -> ?args:(unit -> args) -> string -> (unit -> 'a) -> 'a

(** Open a span on the calling domain's stack.  Every [begin_] must be
    matched by an {!end_} on the same domain ([span] does this for
    you). *)
val begin_ : ?cat:string -> ?args:(unit -> args) -> string -> unit

(** Close the most recent open span on the calling domain.  No-op when
    the stack is empty (e.g. profiling was enabled mid-span). *)
val end_ : unit -> unit

(** [complete ?cat ?args name ~t0_ns] records a span that started at
    [t0_ns] and ends now, bypassing the begin/end stack — for waits
    whose start predates knowing whether they are interesting (pool
    idle time).  [t0_ns] must not predate any event already recorded
    by this domain, or the exported timeline clamps it. *)
val complete : ?cat:string -> ?args:(unit -> args) -> string -> t0_ns:int -> unit

(** A zero-duration instant event on the calling domain's row. *)
val instant : ?cat:string -> ?args:(unit -> args) -> string -> unit

(** [counter name values] records a trace counter sample (rendered by
    Perfetto as a track of stacked series). *)
val counter : string -> (string * float) list -> unit

(** Entries currently buffered across all domains. *)
val recorded : unit -> int

(** Entries lost to ring wraparound across all domains. *)
val dropped : unit -> int

(** The whole recording as one Chrome trace-event JSON object:
    [traceEvents] holds [M] (process/thread name) metadata, balanced
    [B]/[E] span pairs, [i] instants and [C] counters.  Per-[tid]
    timestamps are non-decreasing and spans are properly nested.

    [extra_min_ns] folds a co-exported event source's earliest raw
    timestamp into the rebase (timestamps are exported as microseconds
    relative to the earliest event, keeping ns precision inside the
    float mantissa), and [extra] — called with the resulting
    ns-to-rebased-µs renderer — appends that source's already-rendered
    events to [traceEvents].  {!Causal.to_trace_json} uses both to
    merge help-edge flow events into the same timeline. *)
val to_json :
  ?extra_min_ns:int -> ?extra:((int -> Json.t) -> Json.t list) -> unit -> Json.t

(** [write path] = {!to_json} pretty-printed to [path]. *)
val write : string -> unit

(** [with_profile ?ring_capacity ~out f]: enable, run [f], then always
    disable and write the profile to [out]. *)
val with_profile : ?ring_capacity:int -> out:string -> (unit -> 'a) -> 'a
