(* OpenMetrics text exposition over [Metrics.dump], plus the inverse
   parser that `wfs top` uses to turn scraped text back into samples.

   Registry names map to metric families as [a.b.c] -> [wfs_a_b_c];
   a canonical [Metrics.labeled] suffix ("name{k=v,...}") is split back
   into OpenMetrics labels.  Counters expose a [_total] sample,
   histograms expand into cumulative [_bucket{le=...}] samples ending
   with [le="+Inf"] equal to [_count]. *)

type sample = {
  s_name : string;  (* full sample name, e.g. "wfs_explorer_states_total" *)
  s_labels : (string * string) list;
  s_value : float;
}

(* --- name/label encoding --- *)

let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let family_of_registry_name base = "wfs_" ^ sanitize_name base

let escape_label_value v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Split a registry name into its base and the labels encoded by
   [Metrics.labeled]: "pool.shard.states{shard=3}" ->
   ("pool.shard.states", [("shard", "3")]). *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}'
    ->
      let base = String.sub name 0 i in
      let inner = String.sub name (i + 1) (String.length name - i - 2) in
      let labels =
        if inner = "" then []
        else
          String.split_on_char ',' inner
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | Some j ->
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) )
                 | None -> (kv, ""))
      in
      (base, labels)
  | Some _ -> (name, [])

let render_labels = function
  | [] -> ""
  | labels ->
      let buf = Buffer.create 32 in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (sanitize_name k);
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_label_value v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}';
      Buffer.contents buf

let render_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(* --- exposition --- *)

type family = {
  f_name : string;
  f_kind : string;  (* "counter" | "gauge" | "histogram" *)
  mutable f_entries : (string * (string * string) list * Metrics.dumped) list;
      (* reversed order of appearance *)
}

let kind_of = function
  | Metrics.D_counter _ -> "counter"
  | Metrics.D_gauge _ | Metrics.D_fgauge _ -> "gauge"
  | Metrics.D_histogram _ -> "histogram"

let emit_entry buf fam (_, labels, dumped) =
  let lbl = render_labels labels in
  match dumped with
  | Metrics.D_counter n ->
      Buffer.add_string buf
        (Printf.sprintf "%s_total%s %d\n" fam.f_name lbl n)
  | Metrics.D_gauge n ->
      Buffer.add_string buf (Printf.sprintf "%s%s %d\n" fam.f_name lbl n)
  | Metrics.D_fgauge f ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" fam.f_name lbl (render_float f))
  | Metrics.D_histogram { d_count; d_sum; d_buckets; _ } ->
      (* cumulative buckets, [le] monotone; the final [+Inf] bucket
         equals [_count] by construction *)
      let cum = ref 0 in
      List.iter
        (fun (le, c) ->
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" fam.f_name
               (render_labels (labels @ [ ("le", string_of_int le) ]))
               !cum))
        d_buckets;
      let total = max d_count !cum in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" fam.f_name
           (render_labels (labels @ [ ("le", "+Inf") ]))
           total);
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" fam.f_name lbl total);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %d\n" fam.f_name lbl d_sum)

let of_dump dump =
  (* group the (already name-sorted) dump into families, preserving
     first-appearance order so output is deterministic *)
  let by_family = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (name, dumped) ->
      let base, labels = split_labels name in
      let f_name = family_of_registry_name base in
      let fam =
        match Hashtbl.find_opt by_family f_name with
        | Some fam -> fam
        | None ->
            let fam = { f_name; f_kind = kind_of dumped; f_entries = [] } in
            Hashtbl.add by_family f_name fam;
            order := fam :: !order;
            fam
      in
      (* a kind clash within one family would emit unparseable text;
         keep the first kind and drop the stray entry *)
      if kind_of dumped = fam.f_kind then
        fam.f_entries <- (name, labels, dumped) :: fam.f_entries)
    dump;
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" fam.f_name fam.f_kind);
      List.iter (emit_entry buf fam) (List.rev fam.f_entries))
    (List.rev !order);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_openmetrics ?registry () = of_dump (Metrics.dump ?registry ())

(* --- parsing ---

   Enough of the exposition grammar to round-trip our own output and
   any well-formed scrape: comment lines skipped, label values with
   escapes, one sample per line. *)

exception Parse_error of string

let unescape_label_value v =
  let buf = Buffer.create (String.length v) in
  let n = String.length v in
  let i = ref 0 in
  while !i < n do
    (if v.[!i] = '\\' && !i + 1 < n then begin
       (match v.[!i + 1] with
       | '\\' -> Buffer.add_char buf '\\'
       | '"' -> Buffer.add_char buf '"'
       | 'n' -> Buffer.add_char buf '\n'
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf v.[!i]);
    incr i
  done;
  Buffer.contents buf

let parse_labels line i0 =
  (* [i0] points at '{'; returns labels and the index past '}' *)
  let n = String.length line in
  let labels = ref [] in
  let i = ref (i0 + 1) in
  let fail msg = raise (Parse_error (msg ^ ": " ^ line)) in
  let rec loop () =
    if !i >= n then fail "unterminated label set"
    else if line.[!i] = '}' then incr i
    else begin
      let eq =
        match String.index_from_opt line !i '=' with
        | Some j when j < n -> j
        | _ -> fail "missing '=' in label"
      in
      let key = String.trim (String.sub line !i (eq - !i)) in
      if eq + 1 >= n || line.[eq + 1] <> '"' then fail "unquoted label value";
      (* find the closing quote, tracking escape parity so a value
         ending in an escaped backslash still terminates *)
      let j = ref (eq + 2) in
      let esc = ref false in
      while !j < n && (!esc || line.[!j] <> '"') do
        esc := (not !esc) && line.[!j] = '\\';
        incr j
      done;
      if !j >= n then fail "unterminated label value";
      let raw = String.sub line (eq + 2) (!j - eq - 2) in
      labels := (key, unescape_label_value raw) :: !labels;
      i := !j + 1;
      if !i < n && line.[!i] = ',' then incr i;
      loop ()
    end
  in
  loop ();
  (List.rev !labels, !i)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    let name_end =
      let rec go i =
        if i >= String.length line then i
        else match line.[i] with '{' | ' ' | '\t' -> i | _ -> go (i + 1)
      in
      go 0
    in
    let s_name = String.sub line 0 name_end in
    if s_name = "" then raise (Parse_error ("empty sample name: " ^ line));
    let s_labels, rest_at =
      if name_end < String.length line && line.[name_end] = '{' then
        parse_labels line name_end
      else ([], name_end)
    in
    let rest =
      String.trim
        (String.sub line rest_at (String.length line - rest_at))
    in
    (* a timestamp after the value is legal exposition; take field 1 *)
    let value_str =
      match String.index_opt rest ' ' with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    let s_value =
      match float_of_string_opt value_str with
      | Some f -> f
      | None -> raise (Parse_error ("bad sample value: " ^ line))
    in
    Some { s_name; s_labels; s_value }
  end

let parse text =
  String.split_on_char '\n' text |> List.filter_map parse_line

let find samples name labels =
  List.find_opt
    (fun s -> s.s_name = name && s.s_labels = labels)
    samples
  |> Option.map (fun s -> s.s_value)
