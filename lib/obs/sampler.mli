(** Periodic registry sampling from a dedicated domain.

    Every [interval_ms] the sampler takes a lock-free {!Metrics.dump}
    and publishes it by atomically swapping a fresh immutable ring
    (newest-first, capacity-truncated) into an [Atomic.t] — see DESIGN
    §5.10 for the memory model.  Optional sinks: an atomically-rewritten
    exposition file and a minimal blocking HTTP [/metrics] endpoint
    (stdlib [Unix] only, loopback). *)

(** A timestamped snapshot: {!Clock.now_ns} at sample time plus the
    dumped instrument values. *)
type snap = { at_ns : int; values : (string * Metrics.dumped) list }

type t

(** [start ()] spawns the sampler domain and seeds the ring with one
    immediate snapshot.  [out_file] is rewritten atomically (tmp +
    rename) with the OpenMetrics exposition each interval; [port]
    additionally serves the newest exposition over HTTP on loopback
    from a second domain.  Raises [Invalid_argument] on a non-positive
    interval or capacity, and [Unix.Unix_error] if the port cannot be
    bound. *)
val start :
  ?registry:Metrics.registry ->
  ?interval_ms:int ->
  ?capacity:int ->
  ?out_file:string ->
  ?port:int ->
  unit ->
  t

(** All retained snapshots, newest first. *)
val ring : t -> snap list

val latest : t -> snap option

(** Stop and join the sampler (and HTTP) domains, then take one final
    snapshot so short runs still leave complete end-of-run values in
    the ring and the file sink.  Idempotence is not required of
    callers; call once. *)
val stop : t -> unit

(** {1 HTTP response framing} — pure, exposed for the unit tests. *)

(** The full [/metrics] response for [body]: status line, content type,
    an explicit [Content-Length] and [Connection: close], a blank line,
    then the body verbatim — so scrapers know exactly where the body
    ends and never wait on keep-alive. *)
val http_response_of_body : string -> string

(** Whether a received request prefix contains the header-block
    terminator (CRLFCRLF) — the point at which the endpoint may safely
    respond and half-close. *)
val request_complete : string -> bool
