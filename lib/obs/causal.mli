(** Causal invocation tracing for the universal construction, the
    wait-freedom auditor, and the crash flight recorder.

    Every traced invocation gets a process-global {e trace id}
    ({!issue}); the construction records its phase events —
    invoke/announce/claim/complete — and explicit {e help edges}
    (helper invocation → helped invocation, attributed through the
    recording domain's {!current} register) into per-domain bounded
    rings modeled on {!Profile}'s.  The recording exports three ways:

    - {!to_trace_json} / {!write}: a Chrome/Perfetto trace merged with
      {!Profile}'s spans under one timestamp rebase, where completed
      invocations are ["X"] slices and help edges are ["s"]/["f"] flow
      events (arrows between domain tracks);
    - {!dump_jsonl}: the flight recorder — the rings' recent events as
      a JSONL post-mortem, written when a load check fails or the
      harness crashes;
    - {!Audit}: per-invocation own-step accounting checked against the
      construction's theoretical bound, help-chain statistics, and a
      DAG check over the (orientation-filtered) help edges — from the
      live recording or parsed back from a trace file.

    Tracing is sampled 1-in-[sample] by the operation's own sequence
    number (ticket or op counter), decided {e before} a trace id is
    issued — unsampled operations never touch the global id counter or
    domain-local state, so trace ids are dense over the traced
    operations.  The construction force-samples help-canary operations
    so cross-client edges are recorded even on boxes where domains
    rarely overlap.  A help edge performed outside any traced
    invocation of the recording domain carries helper [-1] (anonymous:
    counted and drawn, never chained).  When disabled, every entry
    point is a single load-and-branch.

    Concurrency contract: the record path ({!issue}, {!invoke},
    {!announce}, {!claim}, {!help}, {!complete}, {!meta}) is safe from
    any domain; {!enable}, {!reset}, {!to_trace_json}, {!write} and
    {!dump_jsonl} should run at quiescence (the flight-recorder dump
    tolerates stragglers — a torn read costs at most one event). *)

(** {1 Lifecycle} *)

(** Start recording into fresh rings of [ring_capacity] events per
    domain, sampling one invocation in [sample] (rounded up to a power
    of two).  Implies {!reset}. *)
val enable : ?ring_capacity:int -> ?sample:int -> unit -> unit

(** Stop recording; the rings keep their contents for export. *)
val disable : unit -> unit

val enabled : unit -> bool

(** Drop all recorded events, registered objects and issued ids. *)
val reset : unit -> unit

(** The effective sampling period (power of two). *)
val sample_every : unit -> int

(** {1 Recording} (called by the construction) *)

(** Fresh trace id for a new invocation, also set as this domain's
    {!current}; [-1] when disabled.  Call only for operations that
    will actually be traced — decide with {!sampled} on the op's
    sequence number first. *)
val issue : unit -> int

(** Whether sequence number [seq] (a ticket or op counter, not a trace
    id) falls in the 1-in-k sample.  Test this {e before} {!issue}. *)
val sampled : int -> bool

(** The fused hot-path gate: the sampling mask while tracing, [-1]
    when disabled — [!trace_gate >= 0 && seq land !trace_gate = 0] is
    {!enabled} [&&] {!sampled} in one load, for per-operation sites
    where even two small calls are measurable. *)
val trace_gate : int ref

(** The trace id of the invocation this domain is currently executing
    ([-1] if none) — read by the help-edge recording sites to attribute
    the helper.  Retired (back to [-1]) when the domain records a
    {!complete}, so later help from this domain is anonymous. *)
val current : unit -> int

(** Register a served object: [n] processes, audited own-step
    [bound].  Kept outside the rings so it survives wraparound. *)
val meta : obj:string -> n:int -> bound:int -> unit

val invoke : obj:string -> trace:int -> pid:int -> unit
val announce : obj:string -> trace:int -> pid:int -> born:int -> unit

(** Claim consensus decided: [node] threads this invocation at
    linearization position [pos]. *)
val claim : obj:string -> trace:int -> node:int -> pos:int -> unit

(** The recording domain's invocation [helper] applied pending
    invocation [helped] (which linearizes at [pos]); [helper] is [-1]
    when the filler is not itself a traced invocation. *)
val help : obj:string -> helper:int -> helped:int -> pos:int -> unit

val complete :
  obj:string -> trace:int -> pos:int -> own_steps:int -> help_rounds:int -> unit

(** The construction's audited own-step bound for [n] processes
    ([2n+8]; see the derivation in the implementation).  Exposed so the
    construction, the auditor and the tests agree on one number. *)
val step_bound : n:int -> int

(** One short sleep (a real syscall, so the domain is descheduled even
    on a single core) — the help canary's parking primitive. *)
val backoff : unit -> unit

(** {1 Introspection and export} *)

type kind = Invoke | Announce | Claim | Help | Complete

type event = {
  kind : kind;
  ts : int;
  dom : int;
  obj : string;
  trace : int;
  a : int;
  b : int;
  c : int;
}

type meta_entry = { m_obj : string; m_n : int; m_bound : int }

(** Registered objects (creation order) and all ring events (grouped by
    domain, oldest first within each). *)
val snapshot : unit -> meta_entry list * event list

(** [(total events, help edges)] currently recorded. *)
val counts : unit -> int * int

(** Events lost to ring wraparound. *)
val dropped : unit -> int

(** The merged Perfetto trace (Profile spans + causal events). *)
val to_trace_json : unit -> Json.t

(** {!to_trace_json} pretty-printed to a file. *)
val write : string -> unit

(** Flight recorder: object registrations then ring events
    (time-sorted), one JSON object per line.  Returns the number of
    lines written. *)
val dump_jsonl : string -> int

(** {1 Wait-freedom auditor} *)

module Audit : sig
  type violation = {
    v_trace : int;
    v_obj : string;
    v_pid : int;
    v_steps : int;
    v_bound : int;
  }

  type report = {
    objects : (string * int * int) list; (* name, n, audited bound *)
    invocations : int;
    completed : int;
    announces : int;
    claims : int;
    edges_seen : int;
    edges_kept : int; (* after the orientation filter *)
    edges_stale : int; (* lagging-replay echoes, dropped *)
    max_own_steps : int;
    max_help_rounds : int;
    depth_hist : (int * int) list; (* help-chain depth -> invocations *)
    max_depth : int;
    top_helpers : (int * int) list; (* helper trace id, out-edges;
                                       anonymous helpers excluded *)
    violations : violation list;
    dag_ok : bool;
  }

  (** Audit a raw recording (e.g. {!snapshot}). *)
  val of_events : meta_entry list * event list -> report

  (** Audit the live recording. *)
  val of_recording : unit -> report

  (** Audit a trace file written by {!write}, parsed back from its
      JSON.  Raises [Invalid_argument] when the value is not a trace. *)
  val of_trace_json : Json.t -> report

  (** No bound violations and the kept help edges form a DAG. *)
  val ok : report -> bool

  val pp : report Fmt.t
end
