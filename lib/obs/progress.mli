(** Heartbeat progress reporting for long explorations.

    A rate-limited stderr reporter: exploration engines call {!tick}
    from their hot loops (masked, e.g. every 1024 states) and a line
    like

    {v [wfs verify cas n=3] states=412310 frontier~1982 183k states/s elapsed=2.3s v}

    appears at most once per interval.  When {!Profile} is recording,
    every emitted heartbeat also lands in the trace as
    [progress.states] / [progress.rate] counter tracks, so Perfetto
    shows throughput over time next to the span rows.

    {!tick} is safe from any domain; the rate limit is a CAS on an
    atomic so concurrent shard workers elect one emitter per
    interval. *)

(** True between {!start} and {!finish}.  Call sites should gate their
    (cheap, masked) tick computation on this. *)
val enabled : unit -> bool

(** [start ?interval_ms ?crashes label] arms the reporter.
    [interval_ms] defaults to 1000; [crashes] (the crash-budget bound
    of the run, when faults are being explored) is echoed in each
    line. *)
val start : ?interval_ms:int -> ?crashes:int -> string -> unit

(** [tick ~states ~frontier] reports progress; emits at most once per
    interval.  [states] is cumulative states visited/interned,
    [frontier] a cheap estimate of outstanding work (stack or queue
    length; pass 0 when unknown). *)
val tick : states:int -> frontier:int -> unit

(** Emit one final line (largest state count any tick reported, overall
    rate, elapsed) and disarm the reporter.  No-op when not started. *)
val finish : unit -> unit
