(* JSONL trace sink.  Everything funnels through [emit]; when the
   installed sink is [null] (the default) instrumentation costs exactly
   one branch. *)

type sink =
  | Null
  | Lines of { write : string -> unit; close : unit -> unit }

let null = Null

let buffer () =
  let lines = ref [] in
  ( Lines
      { write = (fun l -> lines := l :: !lines); close = (fun () -> ()) },
    fun () -> List.rev !lines )

let channel oc =
  Lines
    {
      write =
        (fun l ->
          output_string oc l;
          output_char oc '\n';
          flush oc);
      close = (fun () -> flush oc);
    }

let to_file path =
  let oc = open_out path in
  Lines
    {
      write =
        (fun l ->
          output_string oc l;
          output_char oc '\n');
      close = (fun () -> close_out oc);
    }

let current = ref Null
let lock = Mutex.create ()

let set_sink s = current := s
let enabled () = !current != Null

let close () =
  (match !current with Null -> () | Lines { close; _ } -> close ());
  current := Null

let emit ~kind ?pid ?(tags = []) name extra =
  match !current with
  | Null -> ()
  | Lines { write; _ } ->
      let record =
        Json.obj
          (("ts", Json.int (Clock.now_ns ()))
           :: ("kind", Json.str kind)
           :: ("name", Json.str name)
           :: ((match pid with
               | Some p -> [ ("pid", Json.int p) ]
               | None -> [])
              @ extra @ tags))
      in
      let line = Json.to_string record in
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () -> write line)

let event ?pid ?tags name = emit ~kind:"event" ?pid ?tags name []

let with_span ?pid ?tags name f =
  match !current with
  | Null -> f ()
  | Lines _ ->
      let t0 = Clock.now_ns () in
      let record ?(raised = false) () =
        emit ~kind:"span" ?pid ?tags name
          (("dur_ns", Json.int (Clock.now_ns () - t0))
           :: (if raised then [ ("raised", Json.bool true) ] else []))
      in
      (match f () with
      | r ->
          record ();
          r
      | exception e ->
          record ~raised:true ();
          raise e)
