(* Rate-limited heartbeat on stderr + Profile counter tracks.

   [tick] runs on exploration hot paths (masked by the caller), so the
   fast path is: one bool load, one clock read, one atomic load, one
   compare.  Emission is elected by compare_and_set on [last_emit], so
   under parallel exploration exactly one shard worker wins each
   interval; the stderr write itself is serialized by [emit_lock] only
   on the (rare) winning path. *)

let on = ref false
let label = ref ""
let crash_budget = ref 0
let interval_ns = ref 1_000_000_000
let started = Atomic.make 0
let last_emit = Atomic.make 0
let last_states = Atomic.make 0
let emit_lock = Mutex.create ()

let enabled () = !on

let start ?(interval_ms = 1000) ?(crashes = 0) lbl =
  label := lbl;
  crash_budget := crashes;
  interval_ns := max 1 interval_ms * 1_000_000;
  let now = Clock.now_ns () in
  Atomic.set started now;
  Atomic.set last_emit now;
  Atomic.set last_states 0;
  on := true

let rate_str r =
  if r >= 1_000_000. then Fmt.str "%.1fM" (r /. 1e6)
  else if r >= 1_000. then Fmt.str "%.0fk" (r /. 1e3)
  else Fmt.str "%.0f" r

let emit ~states ~frontier ~now ~final =
  let t0 = Atomic.get started in
  let elapsed = float_of_int (now - t0) /. 1e9 in
  let rate = if elapsed > 0. then float_of_int states /. elapsed else 0. in
  (* sleep-set reduction progress, read from the (batch-flushed) shared
     counters — approximate mid-run, exact on the final line *)
  let pruned =
    Option.value ~default:0 (Metrics.counter_value "explorer.por.pruned")
    + Option.value ~default:0 (Metrics.counter_value "solver.cutoff.sleep")
  in
  Mutex.lock emit_lock;
  Fmt.epr "[wfs %s] states=%d%s %s states/s%s elapsed=%.1fs%s%s@."
    !label states
    (if final then "" else Fmt.str " frontier~%d" frontier)
    (rate_str rate)
    (if pruned > 0 then Fmt.str " pruned~%d" pruned else "")
    elapsed
    (if !crash_budget > 0 then Fmt.str " crashes<=%d" !crash_budget else "")
    (if final then " done" else "");
  Mutex.unlock emit_lock;
  Profile.counter "progress.states" [ ("states", float_of_int states) ];
  Profile.counter "progress.rate" [ ("states_per_s", rate) ];
  if pruned > 0 then
    Profile.counter "progress.pruned" [ ("edges", float_of_int pruned) ]

let tick ~states ~frontier =
  if !on then begin
    (* a plain max: ticks arrive from many domains and [states] is a
       shared cumulative count, so keeping the largest seen is exact *)
    if states > Atomic.get last_states then Atomic.set last_states states;
    let now = Clock.now_ns () in
    let last = Atomic.get last_emit in
    if now - last >= !interval_ns
       && Atomic.compare_and_set last_emit last now
    then emit ~states ~frontier ~now ~final:false
  end

let finish () =
  if !on then begin
    on := false;
    emit
      ~states:(Atomic.get last_states)
      ~frontier:0
      ~now:(Clock.now_ns ())
      ~final:true
  end
