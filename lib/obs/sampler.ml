(* Periodic registry sampling from a dedicated domain.

   The sampler domain wakes every [interval_ms], takes a lock-free
   [Metrics.dump] and publishes it by atomically swapping a fresh
   immutable ring (newest-first list, capacity-truncated) into an
   [Atomic.t].  Readers — `wfs top`, the HTTP endpoint, `wfs stats
   --watch` — just [Atomic.get] the ring: no locks, no tearing, and a
   reader holding an old ring keeps a consistent (if stale) view.

   Sinks, both optional:
   - a file sink rewrites [out_file] atomically (write tmp + rename)
     with the OpenMetrics exposition of the newest snapshot;
   - a minimal blocking HTTP server (stdlib [Unix] only) serves the
     newest exposition at GET /metrics from its own domain. *)

type snap = { at_ns : int; values : (string * Metrics.dumped) list }

(* everything both domains and the API need; the domain handles live in
   the outer [t] so [core] can be built before spawning *)
type core = {
  registry : Metrics.registry option;
  interval_ms : int;
  capacity : int;
  ring : snap list Atomic.t;  (* newest first *)
  stopping : bool Atomic.t;
  out_file : string option;
}

type t = {
  core : core;
  sampler_domain : unit Domain.t;
  http : (Unix.file_descr * unit Domain.t) option;
}

let take_snap registry =
  { at_ns = Clock.now_ns (); values = Metrics.dump ?registry () }

let push_snap core snap =
  let rec truncate n = function
    | [] -> []
    | _ when n = 0 -> []
    | s :: rest -> s :: truncate (n - 1) rest
  in
  (* single writer: a plain read-modify-set is race-free *)
  let old = Atomic.get core.ring in
  Atomic.set core.ring (snap :: truncate (core.capacity - 1) old)

let write_file_atomically path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  (* rename is atomic on POSIX: readers see the old file or the new
     one, never a partial write *)
  Unix.rename tmp path

let sink core snap =
  match core.out_file with
  | None -> ()
  | Some path -> (
      try write_file_atomically path (Export.of_dump snap.values)
      with Sys_error _ | Unix.Unix_error _ -> ())

let sample_once core =
  let snap = take_snap core.registry in
  push_snap core snap;
  sink core snap

let sampler_main core () =
  (* sleep in short slices so [stop] takes effect promptly *)
  let slice_s = 0.05 in
  let slices =
    max 1 (int_of_float (ceil (float_of_int core.interval_ms /. 50.0)))
  in
  while not (Atomic.get core.stopping) do
    let k = ref 0 in
    while (not (Atomic.get core.stopping)) && !k < slices do
      Unix.sleepf slice_s;
      incr k
    done;
    if not (Atomic.get core.stopping) then sample_once core
  done

(* --- HTTP endpoint --- *)

(* Response framing is a pure function of the body so the tests can
   check it byte-for-byte: an explicit Content-Length (the exposition
   contains no length hint of its own) plus Connection: close tells
   curl/Prometheus exactly where the body ends and that no keep-alive
   follows — the two things a scraper needs to not hang. *)
let http_response_of_body body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: application/openmetrics-text; version=1.0.0; \
     charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

let http_response core =
  http_response_of_body
    (match Atomic.get core.ring with
    | snap :: _ -> Export.of_dump snap.values
    | [] -> Export.of_dump (take_snap core.registry).values)

(* a request is complete once the header block terminator arrives (this
   endpoint only ever serves bodyless GETs) *)
let request_complete req =
  let n = String.length req in
  let rec go i =
    i + 4 <= n && (String.sub req i 4 = "\r\n\r\n" || go (i + 1))
  in
  go 0

let serve_client core client =
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      (* drain the request up to the header terminator before replying:
         responding while the peer is still sending — then closing —
         can turn the close into a RST that discards our response
         mid-flight on the client side *)
      let buf = Bytes.create 4096 in
      let got = Buffer.create 256 in
      let rec slurp () =
        if
          (not (request_complete (Buffer.contents got)))
          && Buffer.length got < 65536
        then
          match Unix.read client buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes got buf 0 n;
              slurp ()
          | exception Unix.Unix_error _ -> ()
      in
      slurp ();
      let resp = http_response core in
      let n = String.length resp in
      let sent = ref 0 in
      (try
         while !sent < n do
           sent := !sent + Unix.write_substring client resp !sent (n - !sent)
         done
       with Unix.Unix_error _ -> ());
      (* half-close the send side so the client gets a clean FIN (and
         therefore end-of-body) before the descriptor goes away *)
      try Unix.shutdown client Unix.SHUTDOWN_SEND
      with Unix.Unix_error _ -> ())

let http_main core listen_fd () =
  let continue = ref true in
  while !continue do
    match Unix.accept listen_fd with
    | client, _ ->
        if Atomic.get core.stopping then begin
          (try Unix.close client with Unix.Unix_error _ -> ());
          continue := false
        end
        else serve_client core client
    | exception Unix.Unix_error _ ->
        (* [stop] closed the listen socket *)
        continue := false
  done

let listen_on port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 8;
  fd

(* --- lifecycle --- *)

let start ?registry ?(interval_ms = 1000) ?(capacity = 120) ?out_file
    ?port () =
  if interval_ms <= 0 then invalid_arg "Sampler.start: interval_ms <= 0";
  if capacity <= 0 then invalid_arg "Sampler.start: capacity <= 0";
  let core =
    {
      registry;
      interval_ms;
      capacity;
      ring = Atomic.make [];
      stopping = Atomic.make false;
      out_file;
    }
  in
  (* seed the ring so the endpoint and `wfs top` have a baseline before
     the first interval elapses *)
  sample_once core;
  let http =
    Option.map
      (fun p ->
        let fd = listen_on p in
        (fd, Domain.spawn (http_main core fd)))
      port
  in
  { core; sampler_domain = Domain.spawn (sampler_main core); http }

let ring t = Atomic.get t.core.ring

let latest t =
  match Atomic.get t.core.ring with s :: _ -> Some s | [] -> None

let stop t =
  Atomic.set t.core.stopping true;
  (match t.http with
  | Some (fd, _) ->
      (* shutdown BEFORE close: closing a listening socket from another
         thread does not wake a blocked accept(2) on Linux — the join
         below would deadlock.  shutdown makes the pending (and any
         future) accept fail immediately. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Domain.join t.sampler_domain;
  (match t.http with Some (_, d) -> Domain.join d | None -> ());
  (* final sample so short runs still leave complete end-of-run values
     in the ring and the file sink *)
  sample_once t.core
