(** Humanized units for terminal output, shared by [wfs stats] and
    [wfs top]. *)

(** [si 12_300_000.] is ["12.3M"]; magnitudes below 1000 keep at most
    one decimal. *)
val si : float -> string

val si_int : int -> string

(** [rate f] is [si f ^ "/s"]. *)
val rate : float -> string

(** Humanize a nanosecond duration: ["842ns"], ["1.5us"], ["12.0ms"],
    ["1.25s"]. *)
val ns : int -> string

(** [percent 0.123] is ["12.3%"]. *)
val percent : float -> string
