(** Replayable counterexample schedules.

    When verification finds a violating execution — two processes
    deciding differently, or a decision naming a process that never
    stepped — the schedule that produced it is the whole story: the
    joint-state graph is deterministic given "who steps next".  This
    module gives that schedule a stable on-disk JSON form so
    [wfs verify --out] can export it and [wfs replay] can re-execute it
    deterministically.

    Schema ([wfs-counterexample/1]):

    {v
    { "schema": "wfs-counterexample/1",
      "protocol": "<registry key>",
      "n": 2,
      "kind": "disagreement" | "invalid-decision",
      "schedule": [0, 1, 1, 0],
      "decisions": [{"pid": 0, "value": <value>}, ...] }
    v}

    Simulator values are encoded as tagged arrays: [["u"]] (unit),
    [["b", bool]], [["i", int]], [["s", str]], [["p", a, b]] (pair),
    [["l", [...]]] (list). *)

open Wfs_spec

type kind = Disagreement | Invalid_decision

type t = {
  protocol : string;  (** protocol registry key *)
  n : int;  (** process count the protocol was built with *)
  kind : kind;
  schedule : int list;  (** pids, in step order from the initial state *)
  decisions : (int * Value.t) list;
      (** decisions observed at the violating state *)
}

val kind_to_string : kind -> string

(** Raises [Invalid_argument] on an unknown kind. *)
val kind_of_string : string -> kind

(** {1 Value encoding} *)

val value_to_json : Value.t -> Json.t

(** Raises [Invalid_argument] on a malformed encoding. *)
val value_of_json : Json.t -> Value.t

(** {1 Serialization} *)

val to_json : t -> Json.t

(** Raises [Invalid_argument] on schema violations. *)
val of_json : Json.t -> t

val save : string -> t -> unit

(** Raises [Sys_error], {!Json.Parse_error} or [Invalid_argument]. *)
val load : string -> t

val pp : t Fmt.t
