(** Replayable counterexample schedules.

    When verification finds a violating execution — two processes
    deciding differently, or a decision naming a process that never
    stepped — the schedule that produced it is the whole story: the
    joint-state graph is deterministic given "who steps next".  This
    module gives that schedule a stable on-disk JSON form so
    [wfs verify --out] can export it and [wfs replay] can re-execute it
    deterministically.

    Schema ([wfs-counterexample/1], crash-free; [/2] once the schedule
    contains crash events):

    {v
    { "schema": "wfs-counterexample/1" | "wfs-counterexample/2",
      "protocol": "<registry key>",
      "n": 2,
      "kind": "disagreement" | "invalid-decision",
      "schedule": [0, {"crash": 1}, 1, 0],
      "decisions": [{"pid": 0, "value": <value>}, ...] }
    v}

    A plain integer schedule entry is an atomic step of that process; an
    [{"crash": p}] object is the crash-stop adversary halting process
    [p] permanently at that point (version 2 only).  Files whose
    schedule has no crash entries are always written under schema /1, so
    crash-free exports are byte-compatible with pre-fault-layer readers.

    Simulator values are encoded as tagged arrays: [["u"]] (unit),
    [["b", bool]], [["i", int]], [["s", str]], [["p", a, b]] (pair),
    [["l", [...]]] (list). *)

open Wfs_spec

type kind = Disagreement | Invalid_decision

(** One schedule entry: a step of process [pid], or the adversary
    crashing [pid]. *)
type step = Step of int | Crash of int

type t = {
  protocol : string;  (** protocol registry key *)
  n : int;  (** process count the protocol was built with *)
  kind : kind;
  schedule : step list;  (** in order from the initial state *)
  decisions : (int * Value.t) list;
      (** decisions observed at the violating state *)
}

val kind_to_string : kind -> string

(** Raises [Invalid_argument] on an unknown kind. *)
val kind_of_string : string -> kind

(** The process a step concerns. *)
val step_pid : step -> int

(** Does the schedule contain any [Crash] entry? *)
val has_crash : step list -> bool

(** The two accepted schema strings: [wfs-counterexample/1]
    (crash-free) and [wfs-counterexample/2] (crash-bearing). *)
val schema_v1 : string

val schema_v2 : string

(** The schema string {!to_json} will stamp: /2 iff {!has_crash}. *)
val schema_of : t -> string

val pp_step : step Fmt.t

(** {1 Value encoding} *)

val value_to_json : Value.t -> Json.t

(** Raises [Invalid_argument] on a malformed encoding. *)
val value_of_json : Json.t -> Value.t

(** {1 Serialization} *)

val to_json : t -> Json.t

(** Raises [Invalid_argument] on schema violations. *)
val of_json : Json.t -> t

val save : string -> t -> unit

(** Raises [Sys_error], {!Json.Parse_error} or [Invalid_argument]. *)
val load : string -> t

val pp : t Fmt.t
