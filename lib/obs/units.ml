(* Humanized units for terminal output: "12.3M states", "1.2 Gops/s",
   "842 µs".  Shared by `wfs stats` and `wfs top`. *)

let si f =
  let a = Float.abs f in
  let scaled, suffix =
    if a >= 1e12 then (f /. 1e12, "T")
    else if a >= 1e9 then (f /. 1e9, "G")
    else if a >= 1e6 then (f /. 1e6, "M")
    else if a >= 1e3 then (f /. 1e3, "k")
    else (f, "")
  in
  if suffix = "" then
    if Float.is_integer scaled then Printf.sprintf "%.0f" scaled
    else Printf.sprintf "%.1f" scaled
  else if Float.abs scaled >= 100.0 then
    Printf.sprintf "%.0f%s" scaled suffix
  else Printf.sprintf "%.1f%s" scaled suffix

let si_int n = si (float_of_int n)
let rate f = si f ^ "/s"

let ns n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.1fms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fus" (f /. 1e3)
  else Printf.sprintf "%dns" n

let percent f = Printf.sprintf "%.1f%%" (f *. 100.0)
