(* Per-domain ring-buffered span profiler; Chrome trace_event export.

   Record path: each domain owns a [dstate] (reached through
   [Domain.DLS], registered once in the global list under [reg_lock])
   and writes only to it, so recording takes no lock and contends with
   nobody.  A completed span is ONE ring entry, written at end time:
   wraparound therefore drops whole spans (oldest first) and can never
   leave an unbalanced begin without its end.

   Ordering: [Clock.now_ns] is gettimeofday-based and can return equal
   values for adjacent events, so timestamps alone cannot reconstruct
   nesting.  Every event endpoint instead takes a per-domain sequence
   number at the moment it happens; the exporter orders each tid's
   events by sequence and clamps timestamps non-decreasing, which
   yields a properly nested, monotone timeline even under ties. *)

type args = (string * Json.t) list

type entry =
  | E_span of {
      name : string;
      cat : string option;
      t0 : int;
      t1 : int;
      bseq : int;
      eseq : int;
      args : args;
    }
  | E_instant of {
      name : string;
      cat : string option;
      ts : int;
      seq : int;
      args : args;
    }
  | E_counter of {
      name : string;
      ts : int;
      seq : int;
      values : (string * float) list;
    }

(* A begin_ whose end_ has not happened yet lives on the domain's
   stack, not in the ring; it enters the ring only once completed. *)
type open_span = {
  o_name : string;
  o_cat : string option;
  o_t0 : int;
  o_bseq : int;
  o_args : args;
}

type dstate = {
  tid : int;
  mutable ring : entry array; (* allocated on first push *)
  mutable pos : int; (* next write index *)
  mutable filled : int; (* live entries, <= capacity *)
  mutable dropped : int;
  mutable stack_ : open_span list;
  mutable seq : int;
}

let dummy = E_counter { name = ""; ts = 0; seq = -1; values = [] }
let on = ref false
let ring_capacity = ref 65536
let set_capacity c = ring_capacity := c
let reg_lock = Mutex.create ()
let all : dstate list ref = ref []

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let d =
        {
          tid = (Domain.self () :> int);
          ring = [||];
          pos = 0;
          filled = 0;
          dropped = 0;
          stack_ = [];
          seq = 0;
        }
      in
      Mutex.lock reg_lock;
      all := d :: !all;
      Mutex.unlock reg_lock;
      d)

let enabled () = !on

let clear_dstate d =
  d.ring <- [||];
  d.pos <- 0;
  d.filled <- 0;
  d.dropped <- 0;
  d.stack_ <- [];
  d.seq <- 0

let reset () =
  Mutex.lock reg_lock;
  List.iter clear_dstate !all;
  Mutex.unlock reg_lock

let enable ?(ring_capacity = 65536) () =
  Mutex.lock reg_lock;
  (* stale capacity would survive in already-allocated rings: clear
     everything so every domain re-allocates at the new size *)
  List.iter clear_dstate !all;
  Mutex.unlock reg_lock;
  set_capacity (max 1 ring_capacity);
  on := true

let disable () = on := false

let push d e =
  let cap = Array.length d.ring in
  let cap =
    if cap = 0 then (
      let c = !ring_capacity in
      d.ring <- Array.make c dummy;
      c)
    else cap
  in
  d.ring.(d.pos) <- e;
  d.pos <- (d.pos + 1) mod cap;
  if d.filled < cap then d.filled <- d.filled + 1
  else d.dropped <- d.dropped + 1

let force_args = function None -> [] | Some f -> f ()

let begin_ ?cat ?args name =
  if !on then begin
    let d = Domain.DLS.get dls in
    let bseq = d.seq in
    d.seq <- bseq + 1;
    let o_t0 = Clock.now_ns () in
    d.stack_ <-
      { o_name = name; o_cat = cat; o_t0; o_bseq = bseq; o_args = force_args args }
      :: d.stack_
  end

let end_ () =
  if !on then
    let d = Domain.DLS.get dls in
    match d.stack_ with
    | [] -> () (* enabled mid-span, or an unmatched end_: ignore *)
    | o :: rest ->
        d.stack_ <- rest;
        let t1 = Clock.now_ns () in
        let eseq = d.seq in
        d.seq <- eseq + 1;
        push d
          (E_span
             {
               name = o.o_name;
               cat = o.o_cat;
               t0 = o.o_t0;
               t1;
               bseq = o.o_bseq;
               eseq;
               args = o.o_args;
             })

let span ?cat ?args name f =
  if not !on then f ()
  else begin
    begin_ ?cat ?args name;
    match f () with
    | v ->
        end_ ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        end_ ();
        Printexc.raise_with_backtrace e bt
  end

let complete ?cat ?args name ~t0_ns =
  if !on then begin
    let d = Domain.DLS.get dls in
    let t1 = Clock.now_ns () in
    let bseq = d.seq in
    d.seq <- bseq + 2;
    push d
      (E_span
         {
           name;
           cat;
           t0 = t0_ns;
           t1;
           bseq;
           eseq = bseq + 1;
           args = force_args args;
         })
  end

let instant ?cat ?args name =
  if !on then begin
    let d = Domain.DLS.get dls in
    let seq = d.seq in
    d.seq <- seq + 1;
    push d
      (E_instant
         { name; cat; ts = Clock.now_ns (); seq; args = force_args args })
  end

let counter name values =
  if !on then begin
    let d = Domain.DLS.get dls in
    let seq = d.seq in
    d.seq <- seq + 1;
    push d (E_counter { name; ts = Clock.now_ns (); seq; values })
  end

let snapshot () =
  Mutex.lock reg_lock;
  let ds = List.sort (fun a b -> compare a.tid b.tid) !all in
  let r =
    List.map
      (fun d ->
        let cap = Array.length d.ring in
        let entries =
          if cap = 0 then []
          else
            let n = d.filled in
            let start = ((d.pos - n) mod cap + cap) mod cap in
            List.init n (fun i -> d.ring.((start + i) mod cap))
        in
        (d, entries))
      ds
  in
  Mutex.unlock reg_lock;
  r

let recorded () = List.fold_left (fun acc (d, _) -> acc + d.filled) 0 (snapshot ())
let dropped () = List.fold_left (fun acc (d, _) -> acc + d.dropped) 0 (snapshot ())

(* One exporter event: [seq] orders it within its tid; [ts] is clamped
   non-decreasing per tid before rendering. *)
type ev = {
  v_seq : int;
  v_ts : int;
  v_ph : char;
  v_name : string;
  v_cat : string option;
  v_args : args;
  v_values : (string * float) list;
}

let events_of_entry = function
  | E_span { name; cat; t0; t1; bseq; eseq; args } ->
      [
        {
          v_seq = bseq;
          v_ts = t0;
          v_ph = 'B';
          v_name = name;
          v_cat = cat;
          v_args = args;
          v_values = [];
        };
        {
          v_seq = eseq;
          v_ts = t1;
          v_ph = 'E';
          v_name = name;
          v_cat = cat;
          v_args = [];
          v_values = [];
        };
      ]
  | E_instant { name; cat; ts; seq; args } ->
      [
        {
          v_seq = seq;
          v_ts = ts;
          v_ph = 'i';
          v_name = name;
          v_cat = cat;
          v_args = args;
          v_values = [];
        };
      ]
  | E_counter { name; ts; seq; values } ->
      [
        {
          v_seq = seq;
          v_ts = ts;
          v_ph = 'C';
          v_name = name;
          v_cat = None;
          v_args = [];
          v_values = values;
        };
      ]

let to_json ?(extra_min_ns = max_int) ?extra () =
  let snap = snapshot () in
  let pid = Unix.getpid () in
  (* rebase on the earliest timestamp so microsecond floats keep
     nanosecond precision (epoch-ns / 1000 exceeds the mantissa);
     [extra_min_ns] lets a co-exported event source (Causal) share the
     rebase so both sets of timestamps stay aligned *)
  let t_base =
    List.fold_left
      (fun acc (_, entries) ->
        List.fold_left
          (fun acc e ->
            List.fold_left (fun acc v -> min acc v.v_ts) acc (events_of_entry e))
          acc entries)
      extra_min_ns snap
  in
  let t_base = if t_base = max_int then 0 else t_base in
  let ts_us ns = Json.float (float_of_int (ns - t_base) /. 1_000.) in
  let meta =
    Json.obj
      [
        ("name", Json.str "process_name");
        ("ph", Json.str "M");
        ("pid", Json.int pid);
        ("tid", Json.int 0);
        ("args", Json.obj [ ("name", Json.str "wfs") ]);
      ]
    :: List.map
         (fun (d, _) ->
           Json.obj
             [
               ("name", Json.str "thread_name");
               ("ph", Json.str "M");
               ("pid", Json.int pid);
               ("tid", Json.int d.tid);
               ("args", Json.obj [ ("name", Json.str (Fmt.str "domain-%d" d.tid)) ]);
             ])
         snap
  in
  let row (d, entries) =
    let evs =
      List.concat_map events_of_entry entries
      |> List.sort (fun a b -> compare a.v_seq b.v_seq)
    in
    let last = ref min_int in
    List.map
      (fun v ->
        let ts = if v.v_ts < !last then !last else v.v_ts in
        last := ts;
        let base =
          [
            ("name", Json.str v.v_name);
            ("ph", Json.str (String.make 1 v.v_ph));
            ("ts", ts_us ts);
            ("pid", Json.int pid);
            ("tid", Json.int d.tid);
          ]
        in
        let base =
          match v.v_cat with
          | None -> base
          | Some c -> base @ [ ("cat", Json.str c) ]
        in
        let base = if v.v_ph = 'i' then base @ [ ("s", Json.str "t") ] else base in
        let base =
          match (v.v_ph, v.v_args, v.v_values) with
          | 'C', _, values ->
              base
              @ [
                  ( "args",
                    Json.obj (List.map (fun (k, x) -> (k, Json.float x)) values)
                  );
                ]
          | _, [], _ -> base
          | _, args, _ -> base @ [ ("args", Json.obj args) ]
        in
        Json.obj base)
      evs
  in
  let extra_events =
    match extra with None -> [] | Some f -> f (fun ns -> ts_us ns)
  in
  Json.obj
    [
      ("traceEvents", Json.list (meta @ List.concat_map row snap @ extra_events));
      ("displayTimeUnit", Json.str "ms");
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json ()));
      output_char oc '\n')

let with_profile ?ring_capacity ~out f =
  enable ?ring_capacity ();
  Fun.protect
    ~finally:(fun () ->
      disable ();
      write out)
    f
