(* Counters, gauges and log-scale histograms over [Atomic.t], registered
   by name so one [snapshot] call can serialize everything the process
   has measured.  No dependencies beyond the stdlib. *)

type histo = {
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array;  (* bucket k: 2^k <= v < 2^(k+1) *)
}

type metric =
  | M_counter of int Atomic.t
  | M_gauge of int Atomic.t
  | M_fgauge of float Atomic.t
  | M_histogram of histo

type registry = {
  lock : Mutex.t;
  table : (string, metric) Hashtbl.t;
}

let create () = { lock = Mutex.create (); table = Hashtbl.create 64 }
let default = create ()

(* Labelled series are plain registry names with a canonical suffix:
   [labeled "pool.shard.states" [("shard", "3")]] is the single string
   "pool.shard.states{shard=3}".  The registry itself is label-blind —
   each label combination is its own instrument — and [Export] splits
   the suffix back out when it builds OpenMetrics families. *)
let labeled name = function
  | [] -> name
  | labels ->
      let buf = Buffer.create (String.length name + 16) in
      Buffer.add_string buf name;
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          Buffer.add_string buf v)
        labels;
      Buffer.add_char buf '}';
      Buffer.contents buf

(* --- hot-path sampling flag --- *)

(* A plain ref: hot paths read it with a single load; writers are rare
   (startup, tests) and a torn read is impossible for an immediate. *)
let hot_flag = ref false
let set_hot b = hot_flag := b
let hot () = !hot_flag

let with_hot f =
  let prev = !hot_flag in
  hot_flag := true;
  Fun.protect ~finally:(fun () -> hot_flag := prev) f

(* --- registration --- *)

let register registry name build match_existing =
  let registry = Option.value ~default registry in
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some m -> (
          match match_existing m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Metrics: %S already registered as a different kind" name))
      | None ->
          let m, v = build () in
          Hashtbl.replace registry.table name m;
          v)

module Counter = struct
  type t = int Atomic.t

  let make ?registry name =
    register registry name
      (fun () ->
        let c = Atomic.make 0 in
        (M_counter c, c))
      (function M_counter c -> Some c | _ -> None)

  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let value = Atomic.get
end

let atomic_set_max a v =
  let rec go () =
    let cur = Atomic.get a in
    if v <= cur then ()
    else if Atomic.compare_and_set a cur v then ()
    else go ()
  in
  go ()

module Gauge = struct
  type t = int Atomic.t

  let make ?registry name =
    register registry name
      (fun () ->
        let g = Atomic.make 0 in
        (M_gauge g, g))
      (function M_gauge g -> Some g | _ -> None)

  let set = Atomic.set
  let add t n = ignore (Atomic.fetch_and_add t n)
  let set_max = atomic_set_max
  let value = Atomic.get
end

module Fgauge = struct
  type t = float Atomic.t

  let make ?registry name =
    register registry name
      (fun () ->
        let g = Atomic.make 0.0 in
        (M_fgauge g, g))
      (function M_fgauge g -> Some g | _ -> None)

  let set = Atomic.set
  let value = Atomic.get
end

module Histogram = struct
  type t = histo

  let n_buckets = 63

  let make ?registry name =
    register registry name
      (fun () ->
        let h =
          {
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_max = Atomic.make 0;
            h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          }
        in
        (M_histogram h, h))
      (function M_histogram h -> Some h | _ -> None)

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 1 do
        incr b;
        v := !v lsr 1
      done;
      min !b (n_buckets - 1)
    end

  let observe t v =
    ignore (Atomic.fetch_and_add t.h_count 1);
    ignore (Atomic.fetch_and_add t.h_sum (max v 0));
    atomic_set_max t.h_max v;
    ignore (Atomic.fetch_and_add t.h_buckets.(bucket_of v) 1)

  let count t = Atomic.get t.h_count
  let sum t = Atomic.get t.h_sum
  let max_value t = Atomic.get t.h_max

  let buckets t =
    let acc = ref [] in
    for k = n_buckets - 1 downto 0 do
      let c = Atomic.get t.h_buckets.(k) in
      if c > 0 then
        (* inclusive upper bound of bucket k is 2^(k+1) - 1 *)
        acc := (((1 lsl (k + 1)) - 1), c) :: !acc
    done;
    !acc
end

(* --- snapshots ---

   Two phases, so a slow consumer can never stall registration on a hot
   path: the registry mutex is held only long enough to copy the
   (name, instrument) list — a few hundred cons cells — and every value
   is then read lock-free from its [Atomic.t].  The values of one dump
   are therefore individually atomic but not mutually consistent (a
   counter incremented between two reads lands in one and not the
   other), which is the standard scrape semantics of every metrics
   system and exactly what the sampler ring wants. *)

type dumped =
  | D_counter of int
  | D_gauge of int
  | D_fgauge of float
  | D_histogram of {
      d_count : int;
      d_sum : int;
      d_max : int;
      d_buckets : (int * int) list;
    }

let read_metric = function
  | M_counter c -> D_counter (Atomic.get c)
  | M_gauge g -> D_gauge (Atomic.get g)
  | M_fgauge g -> D_fgauge (Atomic.get g)
  | M_histogram h ->
      D_histogram
        {
          d_count = Atomic.get h.h_count;
          d_sum = Atomic.get h.h_sum;
          d_max = Atomic.get h.h_max;
          d_buckets = Histogram.buckets h;
        }

let dump ?registry () =
  let registry = Option.value ~default registry in
  Mutex.lock registry.lock;
  let instruments =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry.table []
  in
  Mutex.unlock registry.lock;
  (* atomics are read outside the lock: slow serialization downstream
     never blocks [Counter.make] or a concurrent [dump] *)
  List.map (fun (name, m) -> (name, read_metric m)) instruments
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dumped_json = function
  | D_counter n | D_gauge n -> Json.int n
  | D_fgauge f -> Json.float f
  | D_histogram { d_count; d_sum; d_max; d_buckets } ->
      Json.obj
        [
          ("count", Json.int d_count);
          ("sum", Json.int d_sum);
          ( "mean",
            if d_count = 0 then Json.null
            else Json.float (float_of_int d_sum /. float_of_int d_count) );
          ("max", Json.int d_max);
          ( "buckets",
            Json.list
              (List.map
                 (fun (le, c) -> Json.list [ Json.int le; Json.int c ])
                 d_buckets) );
        ]

let snapshot ?registry () =
  Json.obj (List.map (fun (name, d) -> (name, dumped_json d)) (dump ?registry ()))

let snapshot_string ?registry () = Json.to_string_pretty (snapshot ?registry ())

let reset ?registry () =
  let registry = Option.value ~default registry in
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter a | M_gauge a ->
              Atomic.set a 0
          | M_fgauge g -> Atomic.set g 0.0
          | M_histogram h ->
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum 0;
              Atomic.set h.h_max 0;
              Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        registry.table)

let find ?registry name =
  let registry = Option.value ~default registry in
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () -> Hashtbl.find_opt registry.table name)

let counter_value ?registry name =
  match find ?registry name with
  | Some (M_counter c) -> Some (Atomic.get c)
  | _ -> None

let gauge_value ?registry name =
  match find ?registry name with
  | Some (M_gauge g) -> Some (Atomic.get g)
  | _ -> None

let fgauge_value ?registry name =
  match find ?registry name with
  | Some (M_fgauge g) -> Some (Atomic.get g)
  | _ -> None
