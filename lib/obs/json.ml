(* Minimal JSON: just enough to emit metric snapshots / traces and to
   read counterexample files back — the container has no Yojson, and the
   observability layer must stay dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let null = Null
let bool b = Bool b
let int n = Int n
let float f = Float f
let str s = Str s
let list l = List l
let obj fields = Obj fields

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_finite f then begin
    (* %.17g round-trips but is noisy; try shorter forms first *)
    let s =
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f
    in
    Buffer.add_string buf s;
    (* "1e+06" and "1.5" are valid JSON; bare "1" from %g is too, but
       keep the value re-readable as a float *)
    if
      String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s
    then Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec emit ~indent ~level buf j =
  let nl lvl =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * lvl) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          emit ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          if indent then Buffer.add_char buf ' ';
          emit ~indent ~level:(level + 1) buf v)
        fields;
      nl level;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit ~indent:false ~level:0 buf j;
  Buffer.contents buf

let to_string_pretty j =
  let buf = Buffer.create 256 in
  emit ~indent:true ~level:0 buf j;
  Buffer.contents buf

let pp ppf j = Fmt.string ppf (to_string j)

(* --- parsing --- *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= len then fail !pos "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail !pos "bad \\u escape"
                   in
                   (* escaped control characters are all we ever emit;
                      decode the Latin-1 subset, pass the rest through *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
                   pos := !pos + 4
               | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < len
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail start "malformed number"
    else
      match int_of_string_opt text with
      | Some n -> Int n
      | None -> fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail !pos "trailing garbage";
  v

(* --- accessors --- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_number = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
