(** OpenMetrics/Prometheus text exposition of a {!Metrics} registry,
    and the inverse parser used by [wfs top] to consume scrapes.

    Registry names map to families as [a.b.c] -> [wfs_a_b_c]; the
    canonical {!Metrics.labeled} suffix ([name{k=v,...}]) becomes
    OpenMetrics labels.  Counters expose a [_total] sample; histograms
    expand into cumulative [_bucket{le="..."}] samples whose final
    [le="+Inf"] bucket equals [_count].  Output ends with [# EOF] and
    is deterministic (families in sorted first-appearance order). *)

(** One sample line: full sample name (e.g.
    ["wfs_explorer_states_total"]), labels, value. *)
type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

(** Serialize the registry (default: {!Metrics.default}). *)
val to_openmetrics : ?registry:Metrics.registry -> unit -> string

(** Serialize an already-taken {!Metrics.dump} — what the sampler ring
    stores. *)
val of_dump : (string * Metrics.dumped) list -> string

exception Parse_error of string

(** Parse exposition text into samples.  Comment ([#]) and blank lines
    are skipped; raises {!Parse_error} on a malformed sample line. *)
val parse : string -> sample list

(** [find samples name labels] is the value of the sample with exactly
    these labels, if present. *)
val find : sample list -> string -> (string * string) list -> float option

(** {1 Encoding helpers (exposed for tests)} *)

(** Replace every character outside [[a-zA-Z0-9_:]] with ['_']. *)
val sanitize_name : string -> string

(** ["a.b.c"] -> ["wfs_a_b_c"]. *)
val family_of_registry_name : string -> string

(** Escape backslash, double-quote and newline for use inside a quoted
    label value. *)
val escape_label_value : string -> string

(** Inverse of {!escape_label_value}. *)
val unescape_label_value : string -> string

(** Split a canonical {!Metrics.labeled} registry name back into base
    name and labels. *)
val split_labels : string -> string * (string * string) list
