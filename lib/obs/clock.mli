(** A monotonically non-decreasing nanosecond clock.

    The container's OCaml switch has no [mtime]; this wraps
    [Unix.gettimeofday] and clamps it so successive reads never go
    backwards (wall clocks may), which is all the trace sink and the
    latency histograms need. *)

(** Nanoseconds since an arbitrary epoch; non-decreasing across calls,
    including calls from different domains. *)
val now_ns : unit -> int

(** [elapsed_ns f] runs [f] and returns its result with the elapsed
    nanoseconds. *)
val elapsed_ns : (unit -> 'a) -> 'a * int
