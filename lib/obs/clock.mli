(** A monotonically non-decreasing nanosecond clock.

    The container's OCaml switch has no [mtime]; this wraps
    [Unix.gettimeofday] and clamps it so successive reads never go
    backwards (wall clocks may), which is all the trace sink and the
    latency histograms need. *)

(** Nanoseconds since an arbitrary epoch; non-decreasing across calls,
    including calls from different domains. *)
val now_ns : unit -> int

(** Epoch seconds (as returned by [Unix.gettimeofday]) to integer
    nanoseconds.  Computed from the whole-second and fractional parts
    separately: epoch nanoseconds exceed the 53-bit double mantissa, so
    a single [*. 1e9] multiplication would quantize timestamps to
    ~512 ns and corrupt sub-microsecond spans.  Exposed for the
    precision regression tests. *)
val of_gettimeofday : float -> int

(** [elapsed_ns f] runs [f] and returns its result with the elapsed
    nanoseconds. *)
val elapsed_ns : (unit -> 'a) -> 'a * int
