(* Causal invocation tracing, the wait-freedom auditor, and the crash
   flight recorder.

   Record path mirrors {!Profile}: each domain owns a [dstate] reached
   through [Domain.DLS] (registered once under [reg_lock]) and writes
   events only to its own bounded ring, so recording takes no lock and
   contends with nobody.  Wraparound drops oldest events — the ring IS
   the flight recorder: at any moment it holds the most recent causal
   context, which {!dump_jsonl} turns into a JSONL post-mortem when a
   load check fails or a crash-mode assertion fires.

   Events name invocations by a process-global trace id issued at
   invocation time ({!issue}).  Sampling is decided BEFORE issuing,
   from the operation's own sequence number (ticket or op counter):
   unsampled operations never touch the global id counter or the DLS,
   which is what keeps the traced-path overhead inside the <=5%
   budget.  Helper attribution rides on a per-domain "current
   invocation" register set by [issue] and retired when the domain
   pushes a [Complete]: when a domain, inside its own traced
   invocation [h], applies a pending invocation [x] announced by
   somebody else, the recording site reads the domain's current id and
   emits the help edge [h -> x].  A domain helping outside any traced
   invocation of its own records the edge with helper [-1] — an
   anonymous edge, counted and drawn but never part of a chain.  Raw
   edges can point "backwards" in linearization order when a lagging
   filler replays an already-decided round, so the auditor keeps an
   edge only when the helper is anonymous, still pending, or known to
   linearize strictly after the invocation it helped; under that
   orientation every participant of a would-be cycle has a known
   position, so the kept traced subgraph is acyclic by construction —
   matching the construction's helping discipline, where help always
   flows to operations that linearize earlier. *)

type kind = Invoke | Announce | Claim | Help | Complete

(* One flat ring slot.  [a]/[b]/[c] are kind-specific:
     Invoke    a=pid
     Announce  a=pid, b=born (frontier seq at announce)
     Claim     a=winning node id, b=linearization position
     Help      trace=helped id, a=helper id, b=helped's position
     Complete  a=position, b=own steps, c=help rounds *)
type event = {
  kind : kind;
  ts : int;
  dom : int;
  obj : string;
  trace : int;
  a : int;
  b : int;
  c : int;
}

(* Registered served objects live outside the rings so they survive
   wraparound: the auditor needs [n] and the step bound even when the
   creation moment scrolled out of the flight recorder. *)
type meta_entry = { m_obj : string; m_n : int; m_bound : int }

(* Ring slots are flat unboxed int octets in a [Bigarray], not [event]
   records in an OCaml array: pushing allocates nothing and triggers
   no write barrier, and — decisive on the traced universal-service
   bench — the ring's storage lives outside the OCaml heap, so the
   major GC never scans it.  A boxed-record ring cost ~35% (per-event
   allocation + re-marking tens of thousands of pointers every cycle);
   even an unboxed [int array] ring cost ~20% just from the GC sweeping
   4 MB of live immediates.  Slot layout, stride 8 (one cache line on
   64-bit):
     [0] kind code   [1] ts (ns)   [2] interned obj id   [3] trace
     [4] a           [5] b         [6] c                 [7] pad *)
type ring_arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let stride = 8
let empty_ring : ring_arr = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0
let kc_invoke = 0
let kc_announce = 1
let kc_claim = 2
let kc_help = 3
let kc_complete = 4

let kind_of_code = function
  | 0 -> Invoke
  | 1 -> Announce
  | 2 -> Claim
  | 3 -> Help
  | _ -> Complete

type dstate = {
  tid : int;
  mutable ring : ring_arr; (* stride-8 flat slots, allocated on first push *)
  mutable pos : int; (* next slot index (not word index) *)
  mutable filled : int;
  mutable dropped : int;
  mutable current : int; (* trace id of this domain's in-flight invocation *)
  mutable objs : (string * int) list; (* physical-equality intern cache *)
}

let on = ref false
let ring_capacity = ref 65536
let set_capacity c = ring_capacity := c
let sample_mask = ref 63

(* [trace_gate] fuses "enabled" and the sampling mask into one word
   for the per-operation hot path: the mask while tracing, [-1] when
   off.  One load + sign test + mask replaces two cross-module calls
   on every untraced operation. *)
let trace_gate = ref (-1)
let ids = Atomic.make 0
let reg_lock = Mutex.create ()
let all : dstate list ref = ref []
let metas : meta_entry list ref = ref [] (* guarded by reg_lock *)

(* object-name interning, both directions, guarded by [reg_lock] *)
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 16
let intern_rev : (int, string) Hashtbl.t = Hashtbl.create 16

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let d =
        {
          tid = (Domain.self () :> int);
          ring = empty_ring;
          pos = 0;
          filled = 0;
          dropped = 0;
          current = -1;
          objs = [];
        }
      in
      Mutex.lock reg_lock;
      all := d :: !all;
      Mutex.unlock reg_lock;
      d)

let enabled () = !on

(* The ring itself survives a reset: [filled = 0] already makes stale
   contents undecodable, and re-allocating megabytes of custom-block
   storage on every enable both thrashes the allocator and — through
   the GC's dependent-memory accounting — speeds up major collections
   for the rest of the run, a real tax on enable/disable benchmark
   loops.  A capacity change is picked up by [push], which reallocates
   on size mismatch. *)
let clear_dstate d =
  d.pos <- 0;
  d.filled <- 0;
  d.dropped <- 0;
  d.current <- -1;
  d.objs <- []

let reset () =
  Mutex.lock reg_lock;
  List.iter clear_dstate !all;
  metas := [];
  Hashtbl.reset intern_tbl;
  Hashtbl.reset intern_rev;
  Mutex.unlock reg_lock;
  Atomic.set ids 0

let enable ?(ring_capacity = 65536) ?(sample = 64) () =
  (* round the sampling period up to a power of two so the per-op
     sampledness check is a single mask *)
  let rec pow2 k = if k >= sample then k else pow2 (k * 2) in
  let k = pow2 1 in
  reset ();
  set_capacity (max 1 ring_capacity);
  sample_mask := k - 1;
  trace_gate := k - 1;
  on := true

let disable () =
  on := false;
  trace_gate := -1
let sample_every () = !sample_mask + 1

let issue () =
  if not !on then -1
  else begin
    let tr = Atomic.fetch_and_add ids 1 in
    (Domain.DLS.get dls).current <- tr;
    tr
  end

let sampled seq = seq >= 0 && seq land !sample_mask = 0
let current () = if !on then (Domain.DLS.get dls).current else -1

(* Object names intern to small ints so ring slots stay unboxed.  The
   per-domain cache is a physical-equality assoc list: recording sites
   pass the same label string on every call, so the common case is a
   pointer compare on the list head; a miss takes [reg_lock] once per
   (domain, name). *)
let obj_id d obj =
  let rec find = function
    | (s, id) :: tl -> if s == obj then id else find tl
    | [] ->
        Mutex.lock reg_lock;
        let id =
          match Hashtbl.find_opt intern_tbl obj with
          | Some id -> id
          | None ->
              let id = Hashtbl.length intern_tbl in
              Hashtbl.add intern_tbl obj id;
              Hashtbl.add intern_rev id obj;
              id
        in
        Mutex.unlock reg_lock;
        d.objs <- (obj, id) :: d.objs;
        id
  in
  find d.objs

let push kc ~obj ~trace a b c =
  let d = Domain.DLS.get dls in
  let ring =
    let r = d.ring in
    if Bigarray.Array1.dim r = !ring_capacity * stride then r
    else begin
      (* no zero-fill: [filled] bounds exactly which slots decode, so
         fresh memory is never read — and eagerly touching a multi-MB
         ring here would bill megabytes of page faults to whichever
         operation happened to record first *)
      let r =
        Bigarray.Array1.create Bigarray.int Bigarray.c_layout
          (!ring_capacity * stride)
      in
      d.ring <- r;
      r
    end
  in
  let cap = Bigarray.Array1.dim ring / stride in
  let base = d.pos * stride in
  Bigarray.Array1.unsafe_set ring base kc;
  Bigarray.Array1.unsafe_set ring (base + 1) (Clock.now_ns ());
  Bigarray.Array1.unsafe_set ring (base + 2) (obj_id d obj);
  Bigarray.Array1.unsafe_set ring (base + 3) trace;
  Bigarray.Array1.unsafe_set ring (base + 4) a;
  Bigarray.Array1.unsafe_set ring (base + 5) b;
  Bigarray.Array1.unsafe_set ring (base + 6) c;
  let p = d.pos + 1 in
  d.pos <- (if p = cap then 0 else p);
  if d.filled < cap then d.filled <- d.filled + 1
  else d.dropped <- d.dropped + 1;
  (* completion retires this domain's in-flight register, so help the
     domain performs afterwards (outside any traced invocation of its
     own) attributes to anonymous (-1), not to a finished invocation *)
  if kc = kc_complete then d.current <- -1

let invoke ~obj ~trace ~pid = if !on then push kc_invoke ~obj ~trace pid 0 0

let announce ~obj ~trace ~pid ~born =
  if !on then push kc_announce ~obj ~trace pid born 0

let claim ~obj ~trace ~node ~pos =
  if !on then push kc_claim ~obj ~trace node pos 0

let help ~obj ~helper ~helped ~pos =
  if !on then push kc_help ~obj ~trace:helped helper pos 0

let complete ~obj ~trace ~pos ~own_steps ~help_rounds =
  if !on then push kc_complete ~obj ~trace pos own_steps help_rounds

let meta ~obj ~n ~bound =
  if !on then begin
    Mutex.lock reg_lock;
    metas :=
      { m_obj = obj; m_n = n; m_bound = bound }
      :: List.filter (fun m -> m.m_obj <> obj) !metas;
    Mutex.unlock reg_lock
  end

(* The audited own-step bound for the batched construction on [n]
   processes.  An own step is one iteration of the proposer's work
   loop (a consensus proposal + fill), counting the lost fast-path
   attempt and the announce.  After the announce lands with the
   frontier at [s0], every helper whose round starts later sees the
   announced invocation; the starving check trips at most [n+2]
   positions past [born], priority helping cycles to this process
   within a further [n+2] positions, and each of the proposer's own
   rounds advances the frontier it observes by at least one — so the
   invocation is threaded within [2n+4] own rounds of the announce.
   With the fast-path attempt, the announce itself, and the final
   result check, [2n+8] dominates every schedule. *)
let step_bound ~n = (2 * n) + 8

(* The help canary parks the proposer between announce and self-help so
   concurrently scheduled clients get a chance to collect and thread
   the announced invocation.  A real sleep (not cpu_relax) matters on
   few-core boxes: domains time-slice, and only a syscall deschedules
   the canary long enough for another client's collect to run. *)
let backoff () = Unix.sleepf 5e-5

let snapshot () =
  Mutex.lock reg_lock;
  let ds = List.sort (fun a b -> compare a.tid b.tid) !all in
  let ms = List.rev !metas in
  let name_of id =
    match Hashtbl.find_opt intern_rev id with Some s -> s | None -> "?"
  in
  let evs =
    List.concat_map
      (fun d ->
        let ring = d.ring in
        if Bigarray.Array1.dim ring = 0 then []
        else
          let cap = Bigarray.Array1.dim ring / stride in
          let n = d.filled in
          let start = ((d.pos - n) mod cap + cap) mod cap in
          let get = Bigarray.Array1.get ring in
          List.init n (fun i ->
              let base = (start + i) mod cap * stride in
              {
                kind = kind_of_code (get base);
                ts = get (base + 1);
                dom = d.tid;
                obj = name_of (get (base + 2));
                trace = get (base + 3);
                a = get (base + 4);
                b = get (base + 5);
                c = get (base + 6);
              }))
      ds
  in
  Mutex.unlock reg_lock;
  (ms, evs)

let counts () =
  let _, evs = snapshot () in
  ( List.length evs,
    List.length (List.filter (fun e -> e.kind = Help) evs) )

let dropped () =
  Mutex.lock reg_lock;
  let n = List.fold_left (fun acc d -> acc + d.dropped) 0 !all in
  Mutex.unlock reg_lock;
  n

(* ---------- flight recorder (JSONL post-mortem) ---------- *)

let json_of_event e =
  let common k fields =
    Json.obj
      (("kind", Json.str k)
      :: ("ts", Json.int e.ts)
      :: ("dom", Json.int e.dom)
      :: ("obj", Json.str e.obj)
      :: ("trace", Json.int e.trace)
      :: fields)
  in
  match e.kind with
  | Invoke -> common "invoke" [ ("pid", Json.int e.a) ]
  | Announce -> common "announce" [ ("pid", Json.int e.a); ("born", Json.int e.b) ]
  | Claim -> common "claim" [ ("node", Json.int e.a); ("pos", Json.int e.b) ]
  | Help -> common "help" [ ("helper", Json.int e.a); ("pos", Json.int e.b) ]
  | Complete ->
      common "complete"
        [
          ("pos", Json.int e.a);
          ("own_steps", Json.int e.b);
          ("help_rounds", Json.int e.c);
        ]

let dump_jsonl path =
  let ms, evs = snapshot () in
  let evs = List.stable_sort (fun x y -> compare (x.ts, x.dom) (y.ts, y.dom)) evs in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun m ->
          output_string oc
            (Json.to_string
               (Json.obj
                  [
                    ("kind", Json.str "meta");
                    ("obj", Json.str m.m_obj);
                    ("n", Json.int m.m_n);
                    ("bound", Json.int m.m_bound);
                  ]));
          output_char oc '\n')
        ms;
      List.iter
        (fun e ->
          output_string oc (Json.to_string (json_of_event e));
          output_char oc '\n')
        evs;
      List.length ms + List.length evs)

(* ---------- Perfetto export ---------- *)

(* Causal events render into the same Chrome trace as {!Profile}'s
   spans (joint timestamp rebase via [Profile.to_json ~extra]):
     - each sampled completed invocation is a "X" complete slice on its
       owner's domain track (cat "causal.op", args trace/pos/own_steps/
       help_rounds/obj),
     - each help edge is a flow-event pair: "s" on the helper's track
       at the moment of the help, "f" (bp "e") on the helped
       invocation's track at its completion — Perfetto draws these as
       arrows between domain tracks,
     - announce/claim phase events are "i" instants, and per-object
       registrations are "causal.meta" instants whose args carry [n]
       and the audited bound (this is what [wfs trace] reads back). *)
let to_trace_json () =
  let ms, evs = snapshot () in
  let t_min = List.fold_left (fun acc e -> min acc e.ts) max_int evs in
  Profile.to_json ~extra_min_ns:t_min
    ~extra:(fun ts_us ->
      let pid = Unix.getpid () in
      let evs = List.stable_sort (fun x y -> compare x.ts y.ts) evs in
      let invoke_of = Hashtbl.create 256 in
      let complete_of = Hashtbl.create 256 in
      List.iter
        (fun e ->
          match e.kind with
          | Invoke ->
              if not (Hashtbl.mem invoke_of e.trace) then
                Hashtbl.add invoke_of e.trace e
          | Complete ->
              if not (Hashtbl.mem complete_of e.trace) then
                Hashtbl.add complete_of e.trace e
          | _ -> ())
        evs;
      let tids = List.sort_uniq compare (List.map (fun e -> e.dom) evs) in
      let thread_meta =
        List.map
          (fun tid ->
            Json.obj
              [
                ("name", Json.str "thread_name");
                ("ph", Json.str "M");
                ("pid", Json.int pid);
                ("tid", Json.int tid);
                ("args", Json.obj [ ("name", Json.str (Fmt.str "domain-%d" tid)) ]);
              ])
          tids
      in
      let meta_events =
        List.map
          (fun m ->
            Json.obj
              [
                ("name", Json.str "causal.meta");
                ("ph", Json.str "i");
                ("ts", Json.float 0.);
                ("pid", Json.int pid);
                ("tid", Json.int 0);
                ("s", Json.str "g");
                ("cat", Json.str "causal");
                ( "args",
                  Json.obj
                    [
                      ("obj", Json.str m.m_obj);
                      ("n", Json.int m.m_n);
                      ("bound", Json.int m.m_bound);
                      ("sample", Json.int (sample_every ()));
                    ] );
              ])
          ms
      in
      let flow_id = ref 0 in
      let out = ref [] in
      let emit j = out := j :: !out in
      let base name ph ~tid ts =
        [
          ("name", Json.str name);
          ("ph", Json.str ph);
          ("ts", ts_us ts);
          ("pid", Json.int pid);
          ("tid", Json.int tid);
        ]
      in
      let instant name e fields =
        emit
          (Json.obj
             (base name "i" ~tid:e.dom e.ts
             @ [
                 ("s", Json.str "t");
                 ("cat", Json.str "causal");
                 ("args", Json.obj (fields @ [ ("obj", Json.str e.obj) ]));
               ]))
      in
      List.iter
        (fun e ->
          match e.kind with
          | Invoke ->
              (* completed invocations render as their X slice; an
                 invoke without a completion is a crash-interrupted (or
                 wraparound-torn) op and stays visible as an instant *)
              if not (Hashtbl.mem complete_of e.trace) then
                instant "causal.pending" e
                  [ ("trace", Json.int e.trace); ("pid", Json.int e.a) ]
          | Announce ->
              instant "causal.announce" e
                [
                  ("trace", Json.int e.trace);
                  ("pid", Json.int e.a);
                  ("born", Json.int e.b);
                ]
          | Claim ->
              instant "causal.claim" e
                [
                  ("trace", Json.int e.trace);
                  ("node", Json.int e.a);
                  ("pos", Json.int e.b);
                ]
          | Complete ->
              let t0, inv_pid =
                match Hashtbl.find_opt invoke_of e.trace with
                | Some i -> (min i.ts e.ts, i.a)
                | None -> (e.ts, -1)
              in
              emit
                (Json.obj
                   (base e.obj "X" ~tid:e.dom t0
                   @ [
                       ("dur", Json.float (float_of_int (e.ts - t0) /. 1_000.));
                       ("cat", Json.str "causal.op");
                       ( "args",
                         Json.obj
                           [
                             ("trace", Json.int e.trace);
                             ("pid", Json.int inv_pid);
                             ("pos", Json.int e.a);
                             ("own_steps", Json.int e.b);
                             ("help_rounds", Json.int e.c);
                             ("obj", Json.str e.obj);
                           ] );
                     ]))
          | Help ->
              let id = !flow_id in
              incr flow_id;
              let args =
                Json.obj
                  [
                    ("helper", Json.int e.a);
                    ("helped", Json.int e.trace);
                    ("pos", Json.int e.b);
                    ("obj", Json.str e.obj);
                  ]
              in
              emit
                (Json.obj
                   (base "help" "s" ~tid:e.dom e.ts
                   @ [
                       ("cat", Json.str "causal");
                       ("id", Json.int id);
                       ("args", args);
                     ]));
              (* bind the arrow head to the helped invocation's
                 completion on its owner's track when we have it; an
                 unterminated flow start is still a countable edge *)
              (match Hashtbl.find_opt complete_of e.trace with
              | Some c ->
                  emit
                    (Json.obj
                       (base "help" "f" ~tid:c.dom (max c.ts e.ts)
                       @ [
                           ("bp", Json.str "e");
                           ("cat", Json.str "causal");
                           ("id", Json.int id);
                           ("args", args);
                         ]))
              | None -> ()))
        evs;
      thread_meta @ meta_events @ List.rev !out)
    ()

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_trace_json ()));
      output_char oc '\n')

(* ---------- wait-freedom auditor ---------- *)

module Audit = struct
  type inv = {
    i_trace : int;
    i_obj : string;
    i_pid : int;
    i_pos : int; (* -1 when pending *)
    i_steps : int; (* -1 when pending *)
    i_rounds : int;
    i_completed : bool;
  }

  type edge = { e_helper : int; e_helped : int; e_pos : int; e_obj : string }

  type violation = {
    v_trace : int;
    v_obj : string;
    v_pid : int;
    v_steps : int;
    v_bound : int;
  }

  type report = {
    objects : (string * int * int) list; (* name, n, audited bound *)
    invocations : int;
    completed : int;
    announces : int;
    claims : int;
    edges_seen : int;
    edges_kept : int;
    edges_stale : int;
    max_own_steps : int;
    max_help_rounds : int;
    depth_hist : (int * int) list; (* help-chain depth -> invocations *)
    max_depth : int;
    top_helpers : (int * int) list; (* helper trace id, out-edges *)
    violations : violation list;
    dag_ok : bool;
  }

  let build ~objects ~invs ~edges ~announces ~claims =
    let pos_of = Hashtbl.create 256 in
    List.iter
      (fun i -> if i.i_pos >= 0 then Hashtbl.replace pos_of i.i_trace i.i_pos)
      invs;
    List.iter
      (fun e ->
        if e.e_pos >= 0 && not (Hashtbl.mem pos_of e.e_helped) then
          Hashtbl.replace pos_of e.e_helped e.e_pos)
      edges;
    let edges_seen = List.length edges in
    (* orientation filter: a genuine help edge has the helper linearize
       strictly after the invocation it helped (a still-pending helper
       trivially qualifies, as does an anonymous helper — an untraced
       filler, recorded as -1); anything else is a lagging replay
       echo *)
    let kept, stale =
      List.partition
        (fun e ->
          e.e_helper <> e.e_helped
          && (e.e_helper < 0
             ||
             match Hashtbl.find_opt pos_of e.e_helper with
             | None -> true
             | Some p -> p > e.e_pos))
        edges
    in
    (* chain depth (how many links of helpers-of-helpers end at each
       invocation) with cycle detection over the kept edges *)
    let in_edges = Hashtbl.create 256 in
    List.iter
      (fun e ->
        let prev =
          match Hashtbl.find_opt in_edges e.e_helped with
          | None -> []
          | Some l -> l
        in
        Hashtbl.replace in_edges e.e_helped (e :: prev))
      kept;
    let dag_ok = ref true in
    let visiting = Hashtbl.create 256 in
    let depth = Hashtbl.create 256 in
    let rec chain tr =
      match Hashtbl.find_opt depth tr with
      | Some d -> d
      | None ->
          if Hashtbl.mem visiting tr then begin
            dag_ok := false;
            0
          end
          else begin
            Hashtbl.replace visiting tr ();
            (* an anonymous helper contributes one link but no further
               ancestry — there is no trace id to chase *)
            let d =
              List.fold_left
                (fun acc e ->
                  max acc (if e.e_helper < 0 then 1 else 1 + chain e.e_helper))
                0
                (match Hashtbl.find_opt in_edges tr with
                | None -> []
                | Some l -> l)
            in
            Hashtbl.remove visiting tr;
            Hashtbl.replace depth tr d;
            d
          end
    in
    let hist = Hashtbl.create 16 in
    let max_depth = ref 0 in
    List.iter
      (fun i ->
        let d = chain i.i_trace in
        if d > !max_depth then max_depth := d;
        Hashtbl.replace hist d
          (1 + Option.value ~default:0 (Hashtbl.find_opt hist d)))
      invs;
    let depth_hist =
      Hashtbl.fold (fun d c acc -> (d, c) :: acc) hist []
      |> List.sort compare
    in
    let helpers = Hashtbl.create 64 in
    List.iter
      (fun e ->
        if e.e_helper >= 0 then
          Hashtbl.replace helpers e.e_helper
            (1 + Option.value ~default:0 (Hashtbl.find_opt helpers e.e_helper)))
      kept;
    let top_helpers =
      Hashtbl.fold (fun t c acc -> (t, c) :: acc) helpers []
      |> List.sort (fun (t1, c1) (t2, c2) -> compare (-c1, t1) (-c2, t2))
      |> List.filteri (fun i _ -> i < 5)
    in
    let bound_of obj =
      List.find_map (fun (o, _, b) -> if o = obj then Some b else None) objects
    in
    let violations =
      List.filter_map
        (fun i ->
          if not i.i_completed then None
          else
            match bound_of i.i_obj with
            | Some b when i.i_steps > b ->
                Some
                  {
                    v_trace = i.i_trace;
                    v_obj = i.i_obj;
                    v_pid = i.i_pid;
                    v_steps = i.i_steps;
                    v_bound = b;
                  }
            | _ -> None)
        invs
      |> List.sort (fun a b -> compare (-a.v_steps, a.v_trace) (-b.v_steps, b.v_trace))
    in
    let completed = List.filter (fun i -> i.i_completed) invs in
    {
      objects;
      invocations = List.length invs;
      completed = List.length completed;
      announces;
      claims;
      edges_seen;
      edges_kept = List.length kept;
      edges_stale = List.length stale;
      max_own_steps =
        List.fold_left (fun acc i -> max acc i.i_steps) 0 completed;
      max_help_rounds =
        List.fold_left (fun acc i -> max acc i.i_rounds) 0 completed;
      depth_hist;
      max_depth = !max_depth;
      top_helpers;
      violations;
      dag_ok = !dag_ok;
    }

  let ok r = r.violations = [] && r.dag_ok

  (* partial invocation assembled from phase events *)
  type partial = {
    mutable p_obj : string;
    mutable p_pid : int;
    mutable p_pos : int;
    mutable p_steps : int;
    mutable p_rounds : int;
    mutable p_completed : bool;
  }

  let assemble tbl edges_tbl announces claims =
    let invs =
      Hashtbl.fold
        (fun tr p acc ->
          {
            i_trace = tr;
            i_obj = p.p_obj;
            i_pid = p.p_pid;
            i_pos = p.p_pos;
            i_steps = p.p_steps;
            i_rounds = p.p_rounds;
            i_completed = p.p_completed;
          }
          :: acc)
        tbl []
      |> List.sort (fun a b -> compare a.i_trace b.i_trace)
    in
    let edges =
      Hashtbl.fold (fun _ e acc -> e :: acc) edges_tbl []
      |> List.sort (fun a b ->
             compare (a.e_helped, a.e_helper) (b.e_helped, b.e_helper))
    in
    (invs, edges, announces, claims)

  let partial_of tbl tr obj =
    match Hashtbl.find_opt tbl tr with
    | Some p -> p
    | None ->
        let p =
          {
            p_obj = obj;
            p_pid = -1;
            p_pos = -1;
            p_steps = -1;
            p_rounds = 0;
            p_completed = false;
          }
        in
        Hashtbl.add tbl tr p;
        p

  let of_events (ms, evs) =
    let tbl = Hashtbl.create 256 in
    let edges_tbl = Hashtbl.create 256 in
    let announces = ref 0 and claims = ref 0 in
    List.iter
      (fun e ->
        match e.kind with
        | Invoke ->
            let p = partial_of tbl e.trace e.obj in
            p.p_pid <- e.a
        | Announce ->
            incr announces;
            let p = partial_of tbl e.trace e.obj in
            if p.p_pid < 0 then p.p_pid <- e.a
        | Claim ->
            incr claims;
            let p = partial_of tbl e.trace e.obj in
            if p.p_pos < 0 then p.p_pos <- e.b
        | Complete ->
            let p = partial_of tbl e.trace e.obj in
            p.p_pos <- e.a;
            p.p_steps <- e.b;
            p.p_rounds <- e.c;
            p.p_completed <- true
        | Help ->
            Hashtbl.replace edges_tbl (e.a, e.trace)
              { e_helper = e.a; e_helped = e.trace; e_pos = e.b; e_obj = e.obj })
      evs;
    let invs, edges, announces, claims =
      assemble tbl edges_tbl !announces !claims
    in
    build
      ~objects:(List.map (fun m -> (m.m_obj, m.m_n, m.m_bound)) ms)
      ~invs ~edges ~announces ~claims

  let of_recording () = of_events (snapshot ())

  (* read a trace file written by {!write} back into a report; raises
     [Invalid_argument] when the JSON is not a causal trace *)
  let of_trace_json j =
    let evs =
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | Some l -> l
      | None -> invalid_arg "trace: missing traceEvents array"
    in
    let geti k o = Option.bind (Json.member k o) Json.to_int in
    let gets k o = Option.bind (Json.member k o) Json.to_str in
    let tbl = Hashtbl.create 256 in
    let edges_tbl = Hashtbl.create 256 in
    let objects = ref [] in
    let announces = ref 0 and claims = ref 0 in
    List.iter
      (fun e ->
        let name = gets "name" e and ph = gets "ph" e and cat = gets "cat" e in
        let args = Option.value ~default:Json.null (Json.member "args" e) in
        let argi k = Option.value ~default:(-1) (geti k args) in
        let arg_obj () = Option.value ~default:"" (gets "obj" args) in
        match (name, ph) with
        | Some "causal.meta", _ ->
            let o = arg_obj () in
            if not (List.exists (fun (o', _, _) -> o' = o) !objects) then
              objects := (o, argi "n", argi "bound") :: !objects
        | _, Some "X" when cat = Some "causal.op" ->
            let p = partial_of tbl (argi "trace") (arg_obj ()) in
            p.p_pid <- argi "pid";
            p.p_pos <- argi "pos";
            p.p_steps <- argi "own_steps";
            p.p_rounds <- argi "help_rounds";
            p.p_completed <- true
        | Some "causal.pending", _ ->
            let p = partial_of tbl (argi "trace") (arg_obj ()) in
            p.p_pid <- argi "pid"
        | Some "help", Some "s" ->
            let helper = argi "helper" and helped = argi "helped" in
            Hashtbl.replace edges_tbl (helper, helped)
              {
                e_helper = helper;
                e_helped = helped;
                e_pos = argi "pos";
                e_obj = arg_obj ();
              }
        | Some "causal.announce", _ -> incr announces
        | Some "causal.claim", _ -> incr claims
        | _ -> ())
      evs;
    let invs, edges, announces, claims =
      assemble tbl edges_tbl !announces !claims
    in
    build ~objects:(List.rev !objects) ~invs ~edges ~announces ~claims

  let pp ppf r =
    Fmt.pf ppf "@[<v>";
    Fmt.pf ppf
      "invocations %d (%d completed, %d pending)   announces %d   claims %d@,"
      r.invocations r.completed
      (r.invocations - r.completed)
      r.announces r.claims;
    Fmt.pf ppf "help edges   %d kept (%d recorded, %d stale replay echoes)@,"
      r.edges_kept r.edges_seen r.edges_stale;
    Fmt.pf ppf "help chains  ";
    if r.depth_hist = [] then Fmt.pf ppf "none"
    else
      List.iter (fun (d, c) -> Fmt.pf ppf "depth %d: %d  " d c) r.depth_hist;
    Fmt.pf ppf "(max depth %d, dag %s)@," r.max_depth
      (if r.dag_ok then "ok" else "CYCLIC");
    (match r.top_helpers with
    | [] -> Fmt.pf ppf "top helpers  none@,"
    | hs ->
        Fmt.pf ppf "top helpers  ";
        List.iter (fun (t, c) -> Fmt.pf ppf "#%d (x%d)  " t c) hs;
        Fmt.pf ppf "@,");
    List.iter
      (fun (obj, n, bound) ->
        Fmt.pf ppf "object %-16s n=%d  audited own-step bound %d@," obj n bound)
      r.objects;
    Fmt.pf ppf "own steps    max %d   help rounds max %d@," r.max_own_steps
      r.max_help_rounds;
    (match r.violations with
    | [] ->
        Fmt.pf ppf
          "wait-freedom audit: ok — every invocation within its bound"
    | vs ->
        Fmt.pf ppf "wait-freedom audit: %d VIOLATION%s" (List.length vs)
          (if List.length vs = 1 then "" else "S");
        List.iter
          (fun v ->
            Fmt.pf ppf "@,  trace=%d obj=%s pid=%d own_steps=%d > bound=%d"
              v.v_trace v.v_obj v.v_pid v.v_steps v.v_bound)
          vs);
    Fmt.pf ppf "@]"
end
