(** Structured JSONL tracing: events and spans with monotonic
    timestamps and per-pid tags.

    One line per record, each a JSON object:

    {v
    {"ts":<ns>,"kind":"event","name":"...","pid":0,...tags}
    {"ts":<ns>,"kind":"span","name":"...","dur_ns":123,...tags}
    v}

    The default sink is {!null}: an instrumented call sites costs a
    single branch until a sink is installed.  Sinks serialize writes
    internally, so events may be emitted from any domain. *)

type sink

(** Discards everything — the default. *)
val null : sink

(** In-memory sink for tests: returns the sink and a function yielding
    the captured lines, oldest first. *)
val buffer : unit -> sink * (unit -> string list)

(** Writes JSONL to a channel; lines are flushed per record. *)
val channel : out_channel -> sink

(** Opens (truncates) [path] and writes JSONL there; {!close} closes
    the file. *)
val to_file : string -> sink

(** Install a sink globally.  Installing {!null} turns tracing off. *)
val set_sink : sink -> unit

(** Whether a real (non-null) sink is installed. *)
val enabled : unit -> bool

(** [event name ~pid ~tags] appends one event record.  No-op when
    tracing is off. *)
val event : ?pid:int -> ?tags:(string * Json.t) list -> string -> unit

(** [with_span name f] runs [f], then appends a span record carrying
    the elapsed nanoseconds.  [f]'s exceptions pass through (the span
    is still recorded, tagged ["raised": true]). *)
val with_span : ?pid:int -> ?tags:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Flush and close the current sink (closing files) and reinstall
    {!null}. *)
val close : unit -> unit
