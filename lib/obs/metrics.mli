(** Metrics registry: counters, gauges and log-scale histograms.

    Zero external dependencies; every primitive is safe to touch from
    concurrent domains (all state lives in [Atomic.t]).  Metrics are
    registered by name in a {!registry} — usually {!default} — and
    {!snapshot} serializes the whole registry as JSON.

    Two cost classes, by convention:

    - cold-path metrics (the simulator, the solver) are recorded
      unconditionally: one atomic add against work that is dominated by
      hashtable traffic anyway;
    - hot-path metrics (the multicore runtime's per-operation counters
      and latency histograms) are guarded by {!hot}: when sampling is
      off — the default — an instrumented operation pays exactly one
      branch on a plain [bool ref]. *)

type registry

val create : unit -> registry

(** The process-wide registry every instrumentation point uses. *)
val default : registry

(** [labeled name labels] is the canonical registry name for a labelled
    series: [labeled "pool.shard.states" [("shard", "3")]] is
    ["pool.shard.states{shard=3}"].  Each label combination is its own
    instrument; {!Export} splits the suffix back into OpenMetrics
    labels.  Label values must not contain [',' '=' '}']. *)
val labeled : string -> (string * string) list -> string

(** {1 Hot-path sampling} *)

(** Enable/disable hot-path sampling (default: off). *)
val set_hot : bool -> unit

val hot : unit -> bool

(** [with_hot f] runs [f] with sampling enabled, restoring the previous
    state afterwards. *)
val with_hot : (unit -> 'a) -> 'a

(** {1 Instruments}

    [make] is idempotent per name: a second [make] with the same name
    returns the already-registered instrument.  Registering the same
    name as two different instrument kinds raises [Invalid_argument]. *)

module Counter : sig
  type t

  val make : ?registry:registry -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?registry:registry -> string -> t
  val set : t -> int -> unit
  val add : t -> int -> unit

  (** [set_max g v] raises the gauge to [v] if larger (high-water
      mark). *)
  val set_max : t -> int -> unit

  val value : t -> int
end

(** Float-valued gauge, for derived rates and ratios. *)
module Fgauge : sig
  type t

  val make : ?registry:registry -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

(** Power-of-two-bucketed histogram for latencies (ns) and sizes:
    bucket [k] counts observations [v] with [2^k <= v < 2^(k+1)]
    ([v <= 0] lands in bucket 0). *)
module Histogram : sig
  type t

  val make : ?registry:registry -> string -> t
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val max_value : t -> int

  (** Non-empty buckets as [(inclusive upper bound, count)]. *)
  val buckets : t -> (int * int) list
end

(** {1 Snapshots} *)

(** One instrument's value as read at dump time.  Histogram buckets are
    the non-empty [(inclusive upper bound, count)] pairs of
    {!Histogram.buckets}. *)
type dumped =
  | D_counter of int
  | D_gauge of int
  | D_fgauge of float
  | D_histogram of {
      d_count : int;
      d_sum : int;
      d_max : int;
      d_buckets : (int * int) list;
    }

(** Every instrument with its current value, sorted by name.  The
    registry lock is held only while copying the instrument list; the
    values themselves are read lock-free from their [Atomic.t]s, so a
    slow consumer never stalls registration on a hot path.  Values are
    individually atomic but not mutually consistent — standard scrape
    semantics. *)
val dump : ?registry:registry -> unit -> (string * dumped) list

(** The registry as one JSON object, keys sorted: counters and gauges
    are numbers; histograms are objects with [count]/[sum]/[mean]/
    [max]/[buckets] fields.  Built on {!dump}. *)
val snapshot : ?registry:registry -> unit -> Json.t

val snapshot_string : ?registry:registry -> unit -> string

(** Zero every instrument, keeping registrations. *)
val reset : ?registry:registry -> unit -> unit

(** {1 Test/assertion lookups} *)

val counter_value : ?registry:registry -> string -> int option
val gauge_value : ?registry:registry -> string -> int option
val fgauge_value : ?registry:registry -> string -> float option
