(** Minimal JSON — emitted and parsed without external dependencies.

    The observability layer ([Wfs_obs]) speaks JSON everywhere: metric
    snapshots, JSONL trace lines, replayable counterexample files and
    [BENCH_results.json].  The container deliberately carries no Yojson,
    so this module is the whole story: a value type, a compact printer,
    and a strict recursive-descent parser (the subset of RFC 8259 the
    layer itself emits: no unicode escapes beyond [\uXXXX], no
    tolerance for trailing commas). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** {1 Constructors} *)

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val list : t list -> t
val obj : (string * t) list -> t

(** {1 Printing} *)

(** Compact, single-line rendering.  Non-finite floats become [null]
    (JSON has no NaN/infinity). *)
val to_string : t -> string

(** Multi-line rendering with two-space indentation. *)
val to_string_pretty : t -> string

val pp : t Fmt.t

(** {1 Parsing} *)

exception Parse_error of string

(** [of_string s] parses one JSON value; raises {!Parse_error} on
    malformed input or trailing garbage. *)
val of_string : string -> t

(** {1 Accessors} — total ([option]-returning) lookups. *)

(** [member k j] is the value under key [k] when [j] is an object. *)
val member : string -> t -> t option

val to_int : t -> int option

(** [to_number j] is the float value of an [Int] or [Float]. *)
val to_number : t -> float option

val to_str : t -> string option
val to_list : t -> t list option
