(** Theorem 6's interference analysis, mechanized.

    A set F of unary functions is interfering if every pair commutes or
    overwrites on the whole domain; Theorem 6 shows no read-modify-write
    operations from an interfering set solve 3-process consensus.
    Together with Theorems 2 and 4, classifying a family's operations
    reproduces the bottom of Figure 1-1 from operation semantics
    alone. *)

open Wfs_spec

(** An RMW family applied to a single concrete argument. *)
type concrete = { label : string; fn : Value.t -> Value.t; observes : bool }

val concretize : Registers.rmw_op list -> concrete list

type pair_class =
  | Commute
  | First_overwrites
  | Second_overwrites
  | Interfering_not

val classify_pair : domain:Value.t list -> concrete -> concrete -> pair_class
val interfering : domain:Value.t list -> concrete list -> bool

val non_interfering_pairs :
  domain:Value.t list -> concrete list -> (concrete * concrete) list

(** Non-trivial on the domain and returns the old value — Theorem 4's
    hypothesis.  (A plain write is non-trivial but blind.) *)
val observable_nontrivial : domain:Value.t list -> concrete -> bool

type verdict = {
  family : string;
  interfering_set : bool;
  has_observable_nontrivial : bool;
  level : [ `Level_1 | `Level_2 | `Above_2 ];
  witnesses : (string * string) list;
}

(** Classify an RMW family: level 1 (registers), exactly level 2
    (interfering with an observable non-trivial op), or above 2 (escapes
    Theorem 6 — e.g. compare-and-swap). *)
val classify :
  family:string -> domain:Value.t list -> Registers.rmw_op list -> verdict

val pp_level : [ `Level_1 | `Level_2 | `Above_2 ] Fmt.t
val pp_verdict : verdict Fmt.t
