(* The interference analysis of Theorem 6, mechanized.

   Let F be a set of unary functions over register values.  F is
   *interfering* if for every f_i, f_j in F and every value v, either

   - they commute:  f_i (f_j v) = f_j (f_i v), or
   - one overwrites the other:  f_i (f_j v) = f_i v  (or symmetrically).

   Theorem 6: no combination of read-modify-write operations drawn from
   an interfering set solves 3-process consensus.  Combined with
   Theorem 4 (any non-trivial RMW that returns the old value solves
   2-process consensus) and Theorem 2 (no observable non-trivial RMW
   means not even 2), the classification below reproduces the bottom
   levels of Figure 1-1 from operation semantics alone. *)

open Wfs_spec

(* A concrete unary function: an RMW family applied to one argument. *)
type concrete = { label : string; fn : Value.t -> Value.t; observes : bool }

let concretize (ops : Registers.rmw_op list) : concrete list =
  List.concat_map
    (fun (r : Registers.rmw_op) ->
      List.map
        (fun arg ->
          {
            label = Op.show (Op.make r.Registers.rmw_name arg);
            fn = (fun v -> r.Registers.f ~arg v);
            observes = r.Registers.returns_old;
          })
        r.Registers.args)
    ops

type pair_class =
  | Commute
  | First_overwrites  (* f_i (f_j v) = f_i v for all v *)
  | Second_overwrites
  | Interfering_not  (* neither — the pair escapes Theorem 6 *)

(* Apply f, treating an [Invalid_argument] (e.g. fetch-and-add on a
   non-integer) as "v outside f's domain". *)
let safe_apply f v =
  match f v with w -> Some w | exception Invalid_argument _ -> None

let forall_domain domain p =
  List.for_all
    (fun v -> match p v with Some b -> b | None -> true (* outside domain *))
    domain

let classify_pair ~domain a b =
  let commute =
    forall_domain domain (fun v ->
        match (safe_apply a.fn v, safe_apply b.fn v) with
        | Some av, Some bv -> (
            match (safe_apply a.fn bv, safe_apply b.fn av) with
            | Some abv, Some bav -> Some (Value.equal abv bav)
            | _ -> None)
        | _ -> None)
  in
  let overwrites f g =
    (* f (g v) = f v *)
    forall_domain domain (fun v ->
        match safe_apply g.fn v with
        | Some gv -> (
            match (safe_apply f.fn gv, safe_apply f.fn v) with
            | Some fgv, Some fv -> Some (Value.equal fgv fv)
            | _ -> None)
        | None -> None)
  in
  if commute then Commute
  else if overwrites a b then First_overwrites
  else if overwrites b a then Second_overwrites
  else Interfering_not

(* A set is interfering if every pair (including an op with itself)
   commutes or overwrites. *)
let interfering ~domain (ops : concrete list) =
  List.for_all
    (fun a ->
      List.for_all
        (fun b -> classify_pair ~domain a b <> Interfering_not)
        ops)
    ops

let non_interfering_pairs ~domain (ops : concrete list) =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if classify_pair ~domain a b = Interfering_not then Some (a, b)
          else None)
        ops)
    ops

(* Non-trivial and observable: f moves some domain value AND the caller
   sees the old contents (Theorem 4's hypothesis).  A plain write is
   non-trivial but blind, which is why registers stay at level 1. *)
let observable_nontrivial ~domain (c : concrete) =
  c.observes
  && List.exists
       (fun v ->
         match safe_apply c.fn v with
         | Some v' -> not (Value.equal v v')
         | None -> false)
       domain

type verdict = {
  family : string;
  interfering_set : bool;
  has_observable_nontrivial : bool;
  level : [ `Level_1 | `Level_2 | `Above_2 ];
  witnesses : (string * string) list;
      (** non-interfering pairs, when the set escapes Theorem 6 *)
}

(* Classify an RMW family per Figure 1-1:
   - interfering + no observable non-trivial op  -> level 1 (registers);
   - interfering + some observable non-trivial   -> level 2 exactly
     (Theorem 4 gives ≥ 2, Theorem 6 gives < 3);
   - non-interfering                             -> above 2 (Theorem 6
     does not apply; a protocol must witness the actual level). *)
let classify ~family ~domain ops =
  let concrete = concretize ops in
  let interfering_set = interfering ~domain concrete in
  let has_observable_nontrivial =
    List.exists (observable_nontrivial ~domain) concrete
  in
  let level =
    if not interfering_set then `Above_2
    else if has_observable_nontrivial then `Level_2
    else `Level_1
  in
  let witnesses =
    List.map
      (fun (a, b) -> (a.label, b.label))
      (non_interfering_pairs ~domain concrete)
  in
  { family; interfering_set; has_observable_nontrivial; level; witnesses }

let pp_level ppf = function
  | `Level_1 -> Fmt.string ppf "1"
  | `Level_2 -> Fmt.string ppf "2"
  | `Above_2 -> Fmt.string ppf ">2"

let pp_verdict ppf v =
  Fmt.pf ppf "%s: interfering=%b observable-nontrivial=%b level=%a" v.family
    v.interfering_set v.has_observable_nontrivial pp_level v.level
