(** A solver-measured census of the object zoo: consensus solvability at
    n = 2 and n = 3 within a bounded number of operations per process,
    decided directly by strategy synthesis — Figure 1-1 re-derived with
    no protocol-specific knowledge.

    Implementations may initialize their objects, so the census
    quantifies over initial states reachable within two menu operations
    — it is the solver that discovers the paper's queue pre-loading
    trick.  Negative verdicts are bounded ("no ≤ d-op protocol from any
    tried initialization"); the protocol-verified {!Table} complements
    them for objects whose canonical protocols need more operations. *)

open Wfs_spec

type outcome = Solvable | Unsolvable | Budget

type measurement = {
  object_name : string;
  menu_size : int;
  inits_tried : int;
  two_proc : outcome * int;  (** verdict, total search nodes *)
  three_proc : outcome * int;
  winning_init2 : Value.t option;
  winning_init3 : Value.t option;
  depth2 : int;
  depth3 : int;
  interpretation : string;
}

(** Initial states reachable within two menu operations (capped). *)
val candidate_inits : ?max_candidates:int -> Object_spec.t -> Value.t list

(** [intern_views] (default true) is forwarded to
    {!Solver.solve_with_stats} — identical verdicts either way; the
    PERF bench section measures the difference.  [por] (default true)
    likewise forwards the solver's sleep-set cutoffs: verdicts and
    winning initializations are identical either way, only the
    per-verdict node counts shrink ([por:false] reproduces the
    unreduced counts). *)
val measure :
  ?depth2:int -> ?depth3:int -> ?max_nodes:int -> ?max_candidates:int ->
  ?intern_views:bool -> ?por:bool -> Object_spec.t -> measurement

(** [pool] shards the census across a domain pool: each (object, n)
    solver instance is an independent job, issued heaviest-first so a
    big instance never straggles behind an otherwise-drained batch, and
    measurements are reassembled in zoo order — the output is
    byte-identical to the sequential census. *)
val run :
  ?depth2:int -> ?depth3:int -> ?max_nodes:int -> ?intern_views:bool ->
  ?por:bool -> ?pool:Wfs_sim.Pool.t -> unit -> measurement list

val pp_outcome : outcome Fmt.t
val pp_measurement : measurement Fmt.t
val pp : measurement list Fmt.t
