(** A solver-measured census of the object zoo: consensus solvability at
    n = 2 and n = 3 within a bounded number of operations per process,
    decided directly by strategy synthesis — Figure 1-1 re-derived with
    no protocol-specific knowledge.

    Implementations may initialize their objects, so the census
    quantifies over initial states reachable within two menu operations
    — it is the solver that discovers the paper's queue pre-loading
    trick.  Negative verdicts are bounded ("no ≤ d-op protocol from any
    tried initialization"); the protocol-verified {!Table} complements
    them for objects whose canonical protocols need more operations. *)

open Wfs_spec

type outcome = Solvable | Unsolvable | Budget

type measurement = {
  object_name : string;
  menu_size : int;
  inits_tried : int;
  two_proc : outcome * int;  (** verdict, total search nodes *)
  three_proc : outcome * int;
  winning_init2 : Value.t option;
  winning_init3 : Value.t option;
  depth2 : int;
  depth3 : int;
  interpretation : string;
}

(** Initial states reachable within two menu operations (capped). *)
val candidate_inits : ?max_candidates:int -> Object_spec.t -> Value.t list

(** [intern_views] (default true) is forwarded to
    {!Solver.solve_with_stats} — identical verdicts either way; the
    PERF bench section measures the difference.  [por] (default true)
    likewise forwards the solver's sleep-set cutoffs: verdicts and
    winning initializations are identical either way, only the
    per-verdict node counts shrink.  [tt] (default true) forwards the
    transposition/no-good layer; all candidate initializations of an
    (object, n) row share one {!Solver.Ctx}, so later candidates
    replay subgames the earlier ones classified.  [por:false] with
    [tt:false] reproduces the unreduced historical node counts. *)
val measure :
  ?depth2:int -> ?depth3:int -> ?max_nodes:int -> ?max_candidates:int ->
  ?intern_views:bool -> ?por:bool -> ?tt:bool -> Object_spec.t -> measurement

(** [pool] shards the census across a domain pool: each (object, n)
    solver instance is an independent job, issued heaviest-first so a
    big instance never straggles behind an otherwise-drained batch, and
    measurements are reassembled in zoo order — the output is
    byte-identical to the sequential census. *)
val run :
  ?depth2:int -> ?depth3:int -> ?max_nodes:int -> ?intern_views:bool ->
  ?por:bool -> ?tt:bool -> ?pool:Wfs_sim.Pool.t -> unit -> measurement list

(** {1 Critical depth}

    The least step bound at which an (object, n) row becomes solvable.
    Solvability is monotone in the bound (a depth-d protocol is a
    depth-d' protocol for every d' ≥ d), so the row is a step function
    of depth and the threshold is found by binary search — O(log
    max_depth) solver probes, all sharing one {!Solver.Ctx} (positions
    are keyed by remaining step budget, so subgames classified at one
    probe depth replay at the others). *)

type depth_probe = {
  probe_depth : int;
  probe_outcome : outcome;
  probe_nodes : int;
}

type critical = {
  critical : int option;
      (** least solvable depth ≤ [max_depth]; [None] if unsolvable (or
          inconclusive) throughout *)
  exact : bool;
      (** [false] when a budget-exhausted probe forced a conservative
          bracket: [critical] is then only an upper bound *)
  probes : depth_probe list;  (** in probe order *)
  total_nodes : int;
}

val critical_depth :
  ?max_nodes:int -> ?max_candidates:int -> ?intern_views:bool -> ?por:bool ->
  ?tt:bool -> n:int -> max_depth:int -> Object_spec.t -> critical

val pp_outcome : outcome Fmt.t
val pp_measurement : measurement Fmt.t
val pp : measurement list Fmt.t
val pp_critical : critical Fmt.t
