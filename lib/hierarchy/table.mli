(** Regenerating Figure 1-1 with machine-checked evidence: verified
    protocols for the positive levels, interference classifications and
    solver impossibility verdicts for the negative ones. *)

type solver_outcome = [ `Solvable | `Unsolvable | `Budget ]

type evidence =
  | Protocol_verified of { n : int; states : int; protocol : string }
  | Protocol_failed of { n : int; protocol : string }
  | Classified of Interference.verdict
  | Solver_verdict of { n : int; depth : int; outcome : solver_outcome }

type row = {
  object_family : string;
  paper_level : string;
  evidence : evidence list;
}

type t = row list

(** Verify one protocol over all schedules and package the verdict as
    table evidence; [pool] and [por] forward to
    {!Wfs_consensus.Protocol.verify} (intra-exploration parallel run;
    sleep-set reduction, on by default, identical report either way). *)
val verify_protocol :
  ?max_states:int -> ?pool:Wfs_sim.Pool.t -> ?por:bool ->
  Wfs_consensus.Protocol.t -> evidence

(** Build the table; [full] adds the expensive solver instances
    (Theorem 11's queue impossibility at n = 3, deeper register
    bounds).  [por] (default true) forwards the sleep-set reductions to
    every explorer and solver run — all evidence is identical either
    way.  [tt] (default true) forwards the solver's transposition /
    no-good layer — identical verdicts, fewer nodes; [por:false] with
    [tt:false] reproduces the unreduced searches.  [pool] shards
    the registry-wide evidence plan — one job per protocol
    verification, classification or solver run, issued heaviest-first —
    across a domain pool, reassembling rows in plan order: the table is
    byte-identical to a sequential [generate]. *)
val generate :
  ?pool:Wfs_sim.Pool.t -> ?full:bool -> ?por:bool -> ?tt:bool -> unit -> t

(** Every piece of evidence agrees with the paper's claimed level. *)
val consistent : t -> bool

val row_consistent : row -> bool
val pp_evidence : evidence Fmt.t
val pp : t Fmt.t
