(* Regenerating Figure 1-1: the impossibility and universality hierarchy.

   Every row of the paper's table is backed by machine-checked evidence:

   - positive levels: the corresponding consensus protocol verified over
     all schedules by the exhaustive explorer ([Wfs_consensus]);
   - negative levels: the interference classification of Theorem 6
     and/or an [Unsolvable] verdict from the bounded-protocol solver —
     a finite proof that no protocol with the given step bound exists. *)

open Wfs_spec
open Wfs_consensus

type solver_outcome = [ `Solvable | `Unsolvable | `Budget ]

type evidence =
  | Protocol_verified of { n : int; states : int; protocol : string }
  | Protocol_failed of { n : int; protocol : string }
  | Classified of Interference.verdict
  | Solver_verdict of { n : int; depth : int; outcome : solver_outcome }

type row = {
  object_family : string;
  paper_level : string;  (* what Figure 1-1 claims *)
  evidence : evidence list;
}

type t = row list

(* --- evidence builders --- *)

let verify_protocol ?(max_states = 2_000_000) (p : Protocol.t) =
  let report = Protocol.verify ~max_states p in
  if Protocol.passed report then
    Protocol_verified
      { n = p.Protocol.processes; states = report.Protocol.states;
        protocol = p.Protocol.name }
  else Protocol_failed { n = p.Protocol.processes; protocol = p.Protocol.name }

let registry_evidence ~key ~ns =
  let entry = Registry.find key in
  List.filter_map
    (fun n ->
      Option.map (fun p -> verify_protocol p) (entry.Registry.build ~n))
    ns

let run_solver ?(max_nodes = 20_000_000) ~n ~depth spec =
  let outcome =
    match Solver.solve ~max_nodes (Solver.of_spec ~n ~depth spec) with
    | Solver.Solvable _ -> `Solvable
    | Solver.Unsolvable -> `Unsolvable
    | Solver.Out_of_budget _ -> `Budget
  in
  Solver_verdict { n; depth; outcome }

let binary_register () =
  Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]

let two_item_queue () =
  Queues.fifo ~name:"q"
    ~initial:[ Value.str "first"; Value.str "second" ]
    ~items:[ Value.str "first"; Value.str "second" ]
    ()

(* --- the table --- *)

let int_domain = [ Value.int 0; Value.int 1; Value.int 2 ]

let classify_registers () =
  Interference.classify ~family:"read/write" ~domain:int_domain
    [ Registers.read_op; Registers.write_ops int_domain ]

let classify_classical () =
  Interference.classify ~family:"classical RMW" ~domain:int_domain
    [
      Registers.read_op;
      Registers.write_ops int_domain;
      Registers.test_and_set_op;
      Registers.swap_op int_domain;
      Registers.fetch_and_add_op [ 1 ];
    ]

let classify_cas () =
  Interference.classify ~family:"compare-and-swap" ~domain:int_domain
    [ Registers.read_op; Registers.compare_and_swap_op int_domain ]

(* [generate ()] builds the table.  [full] additionally runs the more
   expensive solver instances (minutes rather than seconds). *)
let generate ?(full = false) () : t =
  let solver_rows_cheap =
    [
      run_solver ~n:2 ~depth:2 (binary_register ());
      run_solver ~n:3 ~depth:1 (Registers.test_and_set ());
    ]
  in
  let solver_rows_full =
    if full then
      [
        run_solver ~n:2 ~depth:3 (binary_register ());
        run_solver ~n:3 ~depth:2 (Registers.test_and_set ());
        run_solver ~max_nodes:60_000_000 ~n:3 ~depth:2 (two_item_queue ());
      ]
    else []
  in
  [
    {
      object_family = "atomic read/write registers";
      paper_level = "1";
      evidence =
        [ Classified (classify_registers ()) ]
        @ solver_rows_cheap @ solver_rows_full;
    };
    {
      object_family = "test-and-set";
      paper_level = "2";
      evidence =
        registry_evidence ~key:"test-and-set" ~ns:[ 2 ]
        @ [
            Classified
              (Interference.classify ~family:"test-and-set"
                 ~domain:int_domain
                 [ Registers.read_op; Registers.test_and_set_op ]);
            run_solver ~n:3 ~depth:1 (Registers.test_and_set ());
          ];
    };
    {
      object_family = "swap (read-modify-write)";
      paper_level = "2";
      evidence =
        registry_evidence ~key:"rmw-swap" ~ns:[ 2 ]
        @ [
            Classified
              (Interference.classify ~family:"swap" ~domain:int_domain
                 [ Registers.read_op; Registers.swap_op int_domain ]);
          ];
    };
    {
      object_family = "fetch-and-add";
      paper_level = "2";
      evidence =
        registry_evidence ~key:"fetch-and-add" ~ns:[ 2 ]
        @ [ Classified (classify_classical ()) ];
    };
    {
      object_family = "FIFO queue";
      paper_level = "2";
      evidence =
        registry_evidence ~key:"queue" ~ns:[ 2 ]
        @ [ run_solver ~n:3 ~depth:1 (two_item_queue ()) ]
        @
        if full then
          [ run_solver ~max_nodes:60_000_000 ~n:3 ~depth:2 (two_item_queue ()) ]
        else [];
    };
    {
      object_family = "stack";
      paper_level = "2";
      evidence = registry_evidence ~key:"stack" ~ns:[ 2 ];
    };
    {
      object_family = "priority queue";
      paper_level = "2";
      evidence = registry_evidence ~key:"priority-queue" ~ns:[ 2 ];
    };
    {
      object_family = "set";
      paper_level = "2";
      evidence = registry_evidence ~key:"set" ~ns:[ 2 ];
    };
    {
      object_family = "FIFO message channels";
      paper_level = "1 (point-to-point, DDS)";
      evidence =
        [
          run_solver ~n:2 ~depth:2
            (Channels.fifo_point_to_point ~name:"ch" ~processes:2
               ~messages:[ Value.pid 0; Value.pid 1 ]
               ());
        ];
    };
    {
      object_family = "n-register assignment";
      paper_level = "2n-2";
      evidence =
        registry_evidence ~key:"n-assignment" ~ns:[ 2 ]
        @ registry_evidence ~key:"n-assignment-2n-2" ~ns:[ 2 ]
        @ if full then registry_evidence ~key:"n-assignment" ~ns:[ 3 ] else [];
    };
    {
      object_family = "memory-to-memory move";
      paper_level = "unbounded";
      evidence = registry_evidence ~key:"move" ~ns:[ 2; 3 ];
    };
    {
      object_family = "memory-to-memory swap";
      paper_level = "unbounded";
      evidence = registry_evidence ~key:"memory-swap" ~ns:[ 2; 3 ];
    };
    {
      object_family = "augmented queue (peek)";
      paper_level = "unbounded";
      evidence = registry_evidence ~key:"augmented-queue" ~ns:[ 2; 3; 4 ];
    };
    {
      object_family = "compare-and-swap";
      paper_level = "unbounded";
      evidence =
        registry_evidence ~key:"cas" ~ns:[ 2; 3; 4 ]
        @ [ Classified (classify_cas ()) ];
    };
    {
      object_family = "fetch-and-cons";
      paper_level = "unbounded";
      evidence = registry_evidence ~key:"fetch-and-cons" ~ns:[ 2; 3 ];
    };
    {
      object_family = "broadcast with ordered delivery";
      paper_level = "unbounded (DDS)";
      evidence = registry_evidence ~key:"ordered-broadcast" ~ns:[ 2; 3 ];
    };
  ]

(* --- consistency with the paper --- *)

(* A row is consistent if every protocol at or below the claimed level
   verified, no protocol failed, classifications agree with the level,
   and no solver verdict contradicts the claim. *)
let row_consistent row =
  List.for_all
    (function
      | Protocol_verified _ -> true
      | Protocol_failed _ -> false
      | Classified v -> (
          match (row.paper_level, v.Interference.level) with
          | "1", `Level_1 -> true
          | "1 (point-to-point, DDS)", `Level_1 -> true
          | "2", `Level_2 -> true
          | _, `Above_2 -> true (* classifier places it above Thm 6's reach *)
          | _, _ -> false)
      | Solver_verdict { outcome; _ } -> (
          (* the solver may prove impossibility (levels "1"/"2") or find
             protocols; a budget exhaustion is inconclusive, not a
             contradiction *)
          match (row.paper_level, outcome) with
          | ("1" | "1 (point-to-point, DDS)"), `Unsolvable -> true
          | "2", `Unsolvable -> true (* at n = 3 *)
          | _, `Solvable -> true
          | _, `Budget -> true
          | _, _ -> false))
    row.evidence

let consistent table = List.for_all row_consistent table

(* --- printing --- *)

let pp_outcome ppf = function
  | `Solvable -> Fmt.string ppf "solvable"
  | `Unsolvable -> Fmt.string ppf "UNSOLVABLE"
  | `Budget -> Fmt.string ppf "budget exhausted"

let pp_evidence ppf = function
  | Protocol_verified { n; states; protocol } ->
      Fmt.pf ppf "protocol %s verified for n=%d (%d states, all schedules)"
        protocol n states
  | Protocol_failed { n; protocol } ->
      Fmt.pf ppf "protocol %s FAILED for n=%d" protocol n
  | Classified v ->
      Fmt.pf ppf "Thm 6 classifier: interfering=%b, level %a"
        v.Interference.interfering_set Interference.pp_level
        v.Interference.level
  | Solver_verdict { n; depth; outcome } ->
      Fmt.pf ppf "solver (n=%d, ≤%d ops/process): %a" n depth pp_outcome
        outcome

let pp ppf (table : t) =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf row ->
         Fmt.pf ppf "@[<v 2>%-34s level %s  %s@ %a@]" row.object_family
           row.paper_level
           (if row_consistent row then "[consistent]" else "[INCONSISTENT]")
           (Fmt.list ~sep:Fmt.cut pp_evidence)
           row.evidence))
    table
