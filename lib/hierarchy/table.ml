(* Regenerating Figure 1-1: the impossibility and universality hierarchy.

   Every row of the paper's table is backed by machine-checked evidence:

   - positive levels: the corresponding consensus protocol verified over
     all schedules by the exhaustive explorer ([Wfs_consensus]);
   - negative levels: the interference classification of Theorem 6
     and/or an [Unsolvable] verdict from the bounded-protocol solver —
     a finite proof that no protocol with the given step bound exists. *)

open Wfs_spec
open Wfs_consensus

type solver_outcome = [ `Solvable | `Unsolvable | `Budget ]

type evidence =
  | Protocol_verified of { n : int; states : int; protocol : string }
  | Protocol_failed of { n : int; protocol : string }
  | Classified of Interference.verdict
  | Solver_verdict of { n : int; depth : int; outcome : solver_outcome }

type row = {
  object_family : string;
  paper_level : string;  (* what Figure 1-1 claims *)
  evidence : evidence list;
}

type t = row list

(* --- evidence builders --- *)

let verify_protocol ?(max_states = 2_000_000) ?pool ?por (p : Protocol.t) =
  let report = Protocol.verify ~max_states ?pool ?por p in
  if Protocol.passed report then
    Protocol_verified
      { n = p.Protocol.processes; states = report.Protocol.states;
        protocol = p.Protocol.name }
  else Protocol_failed { n = p.Protocol.processes; protocol = p.Protocol.name }

let run_solver ?(max_nodes = 20_000_000) ?por ?tt ~n ~depth spec =
  let outcome =
    match Solver.solve ~max_nodes ?por ?tt (Solver.of_spec ~n ~depth spec) with
    | Solver.Solvable _ -> `Solvable
    | Solver.Unsolvable -> `Unsolvable
    | Solver.Out_of_budget _ -> `Budget
  in
  Solver_verdict { n; depth; outcome }

let binary_register () =
  Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]

let two_item_queue () =
  Queues.fifo ~name:"q"
    ~initial:[ Value.str "first"; Value.str "second" ]
    ~items:[ Value.str "first"; Value.str "second" ]
    ()

(* --- the table --- *)

let int_domain = [ Value.int 0; Value.int 1; Value.int 2 ]

let classify_registers () =
  Interference.classify ~family:"read/write" ~domain:int_domain
    [ Registers.read_op; Registers.write_ops int_domain ]

let classify_classical () =
  Interference.classify ~family:"classical RMW" ~domain:int_domain
    [
      Registers.read_op;
      Registers.write_ops int_domain;
      Registers.test_and_set_op;
      Registers.swap_op int_domain;
      Registers.fetch_and_add_op [ 1 ];
    ]

let classify_cas () =
  Interference.classify ~family:"compare-and-swap" ~domain:int_domain
    [ Registers.read_op; Registers.compare_and_swap_op int_domain ]

(* [generate ()] builds the table.  [full] additionally runs the more
   expensive solver instances (minutes rather than seconds).

   Each row is planned as a list of evidence thunks — one per protocol
   verification, classification or solver run.  Sequentially the thunks
   are forced in place; with [pool] they flatten into one registry-wide
   job array (each verification is an independent job with its own
   explorer/solver state), issued heaviest-first by a static cost rank
   so the big verifications never straggle behind a drained batch, and
   the rows are reassembled in plan order — the table is byte-identical
   either way. *)
let plan ~full ~por ~tt :
    (string * string * (int * (unit -> evidence list)) list) list =
  let run_solver ?max_nodes ~n ~depth spec =
    run_solver ?max_nodes ~por ~tt ~n ~depth spec
  in
  (* One thunk per (protocol, n) of a registry key, skipping sizes the
     registry cannot build.  The weight is a scheduling rank only —
     verification cost climbs steeply with n. *)
  let reg key ns =
    List.map
      (fun n ->
        ( 1 lsl (3 * n),
          fun () ->
            let entry = Registry.find key in
            match entry.Registry.build ~n with
            | Some p -> [ verify_protocol ~por p ]
            | None -> [] ))
      ns
  in
  let one ?(w = 1) th = (w, fun () -> [ th () ]) in
  let when_full thunks = if full then thunks else [] in
  [
    ( "atomic read/write registers",
      "1",
      [
        one (fun () -> Classified (classify_registers ()));
        one ~w:4 (fun () -> run_solver ~n:2 ~depth:2 (binary_register ()));
        one ~w:64 (fun () ->
            run_solver ~n:3 ~depth:1 (Registers.test_and_set ()));
      ]
      @ when_full
          [
            one ~w:512 (fun () ->
                run_solver ~n:2 ~depth:3 (binary_register ()));
            one ~w:50_000 (fun () ->
                run_solver ~n:3 ~depth:2 (Registers.test_and_set ()));
            one ~w:100_000 (fun () ->
                run_solver ~max_nodes:60_000_000 ~n:3 ~depth:2
                  (two_item_queue ()));
          ] );
    ( "test-and-set",
      "2",
      reg "test-and-set" [ 2 ]
      @ [
          one (fun () ->
              Classified
                (Interference.classify ~family:"test-and-set"
                   ~domain:int_domain
                   [ Registers.read_op; Registers.test_and_set_op ]));
          one ~w:64 (fun () ->
              run_solver ~n:3 ~depth:1 (Registers.test_and_set ()));
        ] );
    ( "swap (read-modify-write)",
      "2",
      reg "rmw-swap" [ 2 ]
      @ [
          one (fun () ->
              Classified
                (Interference.classify ~family:"swap" ~domain:int_domain
                   [ Registers.read_op; Registers.swap_op int_domain ]));
        ] );
    ( "fetch-and-add",
      "2",
      reg "fetch-and-add" [ 2 ]
      @ [ one (fun () -> Classified (classify_classical ())) ] );
    ( "FIFO queue",
      "2",
      reg "queue" [ 2 ]
      @ [ one ~w:128 (fun () -> run_solver ~n:3 ~depth:1 (two_item_queue ())) ]
      @ when_full
          [
            one ~w:100_000 (fun () ->
                run_solver ~max_nodes:60_000_000 ~n:3 ~depth:2
                  (two_item_queue ()));
          ] );
    ("stack", "2", reg "stack" [ 2 ]);
    ("priority queue", "2", reg "priority-queue" [ 2 ]);
    ("set", "2", reg "set" [ 2 ]);
    ( "FIFO message channels",
      "1 (point-to-point, DDS)",
      [
        one ~w:16 (fun () ->
            run_solver ~n:2 ~depth:2
              (Channels.fifo_point_to_point ~name:"ch" ~processes:2
                 ~messages:[ Value.pid 0; Value.pid 1 ]
                 ()));
      ] );
    ( "n-register assignment",
      "2n-2",
      reg "n-assignment" [ 2 ]
      @ reg "n-assignment-2n-2" [ 2 ]
      @ when_full (reg "n-assignment" [ 3 ]) );
    ("memory-to-memory move", "unbounded", reg "move" [ 2; 3 ]);
    ("memory-to-memory swap", "unbounded", reg "memory-swap" [ 2; 3 ]);
    ("augmented queue (peek)", "unbounded", reg "augmented-queue" [ 2; 3; 4 ]);
    ( "compare-and-swap",
      "unbounded",
      reg "cas" [ 2; 3; 4 ] @ [ one (fun () -> Classified (classify_cas ())) ]
    );
    ("fetch-and-cons", "unbounded", reg "fetch-and-cons" [ 2; 3 ]);
    ( "broadcast with ordered delivery",
      "unbounded (DDS)",
      reg "ordered-broadcast" [ 2; 3 ] );
  ]

let generate ?pool ?(full = false) ?(por = true) ?(tt = true) () : t =
  let rows = plan ~full ~por ~tt in
  let force_evidence family th =
    Wfs_obs.Profile.span ~cat:"table"
      ~args:(fun () -> [ ("family", Wfs_obs.Json.str family) ])
      "table.evidence" th
  in
  match pool with
  | Some p when Wfs_sim.Pool.size p > 1 ->
      let jobs =
        Array.of_list
          (List.concat_map
             (fun (family, _, ts) ->
               List.map (fun (w, th) -> (family, w, th)) ts)
             rows)
      in
      let order = Array.init (Array.length jobs) (fun i -> i) in
      Array.sort
        (fun i j ->
          let _, wi, _ = jobs.(i) and _, wj, _ = jobs.(j) in
          match compare wj wi with 0 -> compare i j | c -> c)
        order;
      let permuted =
        Wfs_sim.Pool.parallel_map p
          (fun i ->
            let family, _, th = jobs.(i) in
            force_evidence family th)
          order
      in
      let results = Array.make (Array.length jobs) [] in
      Array.iteri (fun k i -> results.(i) <- permuted.(k)) order;
      let idx = ref 0 in
      List.map
        (fun (object_family, paper_level, ts) ->
          let evidence =
            List.concat_map
              (fun _ ->
                let r = results.(!idx) in
                incr idx;
                r)
              ts
          in
          { object_family; paper_level; evidence })
        rows
  | _ ->
      List.map
        (fun (object_family, paper_level, ts) ->
          {
            object_family;
            paper_level;
            evidence =
              List.concat_map (fun (_, t) -> force_evidence object_family t) ts;
          })
        rows

(* --- consistency with the paper --- *)

(* A row is consistent if every protocol at or below the claimed level
   verified, no protocol failed, classifications agree with the level,
   and no solver verdict contradicts the claim. *)
let row_consistent row =
  List.for_all
    (function
      | Protocol_verified _ -> true
      | Protocol_failed _ -> false
      | Classified v -> (
          match (row.paper_level, v.Interference.level) with
          | "1", `Level_1 -> true
          | "1 (point-to-point, DDS)", `Level_1 -> true
          | "2", `Level_2 -> true
          | _, `Above_2 -> true (* classifier places it above Thm 6's reach *)
          | _, _ -> false)
      | Solver_verdict { outcome; _ } -> (
          (* the solver may prove impossibility (levels "1"/"2") or find
             protocols; a budget exhaustion is inconclusive, not a
             contradiction *)
          match (row.paper_level, outcome) with
          | ("1" | "1 (point-to-point, DDS)"), `Unsolvable -> true
          | "2", `Unsolvable -> true (* at n = 3 *)
          | _, `Solvable -> true
          | _, `Budget -> true
          | _, _ -> false))
    row.evidence

let consistent table = List.for_all row_consistent table

(* --- printing --- *)

let pp_outcome ppf = function
  | `Solvable -> Fmt.string ppf "solvable"
  | `Unsolvable -> Fmt.string ppf "UNSOLVABLE"
  | `Budget -> Fmt.string ppf "budget exhausted"

let pp_evidence ppf = function
  | Protocol_verified { n; states; protocol } ->
      Fmt.pf ppf "protocol %s verified for n=%d (%d states, all schedules)"
        protocol n states
  | Protocol_failed { n; protocol } ->
      Fmt.pf ppf "protocol %s FAILED for n=%d" protocol n
  | Classified v ->
      Fmt.pf ppf "Thm 6 classifier: interfering=%b, level %a"
        v.Interference.interfering_set Interference.pp_level
        v.Interference.level
  | Solver_verdict { n; depth; outcome } ->
      Fmt.pf ppf "solver (n=%d, ≤%d ops/process): %a" n depth pp_outcome
        outcome

let pp ppf (table : t) =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf row ->
         Fmt.pf ppf "@[<v 2>%-34s level %s  %s@ %a@]" row.object_family
           row.paper_level
           (if row_consistent row then "[consistent]" else "[INCONSISTENT]")
           (Fmt.list ~sep:Fmt.cut pp_evidence)
           row.evidence))
    table
