(* Bounded-protocol consensus solvability: strategy synthesis against the
   adversarial scheduler.

   Question: for a given shared-object environment, n processes and a
   step bound d, does there exist a wait-free consensus protocol in
   which every process decides after at most d operations?

   A protocol is exactly a *strategy*: a function from (process, local
   view) to the next action, where the local view is the sequence of
   responses the process has received — all a deterministic process can
   ever condition on.  The search is therefore an exists/forall game:

   - existential: the protocol picks an action for each unassigned
     (process, view) pair it encounters;
   - universal: the scheduler picks which undecided process moves.

   We explore the obligation tree depth-first in continuation-passing
   style with chronological backtracking over the partial strategy — the
   same shape as a QBF search.  [Unsolvable] is a machine-checked proof
   that NO protocol in the bounded class exists: the finite analogue of
   Theorem 2 / Theorem 11; [Solvable] carries the synthesized protocol.

   The paper's correctness conditions are enforced exactly as in
   [Wfs_consensus.Protocol]: agreement along every schedule, validity at
   every decide event (the named process must have stepped, or be the
   decider), and decision within the bound (wait-freedom is built into
   the bounded-depth game).

   On top of the chronological search sit two QBF-style learning layers
   (default on, [tt:false] reproduces the bare search node for node):

   - a TRANSPOSITION TABLE over canonicalized positions.  A position is
     the full forall-node game state — interned environment state, each
     undecided process's σ-key (= its view) and REMAINING step budget
     (so entries transpose across different total depths), the decision
     vector and the stepped mask — flattened to a small int array and
     hash-consed to a dense id ([Intern.Ints]).  Because σ is shared
     and mutable, a cached verdict is only valid relative to the σ
     entries its subproof consulted: each entry carries that σ-footprint
     and replays only when the current σ agrees with it ([Tt], which
     documents the full soundness argument — pure refutations vs. clean
     successes, a-fortiori dropping of unassigned reads, the exactness
     condition that makes success replay commute with later
     continuation failures, and sleep-mask subsumption).

   - NO-GOOD driven backjumping.  A propagating [false] carries the
     conflict that caused it (footprint + the serials of the choice
     frames that formed the refuted structure); an existential choice
     point outside that set whose σ-support is still intact skips its
     remaining candidates, because re-exploring them provably re-derives
     the same refutation. *)

open Wfs_spec
open Wfs_sim

type action = Do of string * Op.t | Decide of int

type instance = {
  env : Env.t;
  n : int;
  depth : int;
  candidates : int -> (string * Op.t) list;
      (** operation menu per process, honouring per-process ownership *)
}

type assignment = { pid : int; view : Value.t; chosen : action }

type verdict =
  | Solvable of assignment list
  | Unsolvable
  | Out_of_budget of { nodes : int }

(* Persistent game state.  Each scheduler branch must be explored from
   the same state, while the partial strategy is shared globally across
   branches — so the state is copied on update and passed explicitly,
   and only the strategy table is mutated (with undo on backtrack).

   ['k] is the σ-key type of the strategy-table backend: each process's
   key for its current view is computed once, when the view is built,
   and carried in [skeys] — σ lookups (the memo probe in [step], the
   dominance peeks of the sleep-set reduction) then skip re-hashing the
   view.  Keys are pure functions of (pid, view), so the caching is
   semantically invisible.

   [env_id] and [chain] exist for the transposition layer only (-1/[]
   with [tt:false]): [env_id] is the interned [Env.encode] of
   [env_state], kept incrementally so position keys cost no
   re-encoding; [chain] lists the serials of the choice frames whose
   candidates formed this state — for σ-hit moves, the serial of the
   frame that wrote the hit entry — which is what lets a conflict tell
   "flipping this choice reshapes the refuted structure" apart from
   "this choice is unrelated, skip it" (see [Tt]). *)
type 'k state = {
  views : Value.t array;  (* response history per process, latest first *)
  skeys : 'k array;  (* σ-key of each process's current view *)
  steps : int array;  (* operations taken per process *)
  decisions : int array;  (* decision per process, -1 if undecided *)
  env_state : Env.state;
  stepped : int;
  undecided : int;
  env_id : int;
  chain : int list;
}

let set arr i v =
  let arr' = Array.copy arr in
  arr'.(i) <- v;
  arr'

let of_spec ?(extra_candidates = []) ~n ~depth (spec : Object_spec.t) =
  let obj = spec.Object_spec.name in
  {
    env = Env.make [ (obj, spec) ];
    n;
    depth;
    candidates =
      (fun pid ->
        List.map (fun op -> (obj, op)) (Object_spec.menu_for spec pid)
        @ extra_candidates);
  }

exception Budget

(* Strategy-table metrics, mirroring the explorer's interning
   instrumentation. *)
module M = struct
  open Wfs_obs.Metrics

  let runs = Counter.make "solver.runs"
  let nodes_total = Counter.make "solver.nodes"
  let view_intern_hits = Counter.make "solver.view_intern.hits"
  let view_intern_lookups = Counter.make "solver.view_intern.lookups"
  let view_arena_size = Gauge.make "solver.view_intern.arena_size"

  (* σ-table memoization: a hit replays an already-chosen action, a miss
     opens an existential choice point *)
  let memo_hits = Counter.make "solver.memo.hits"
  let memo_misses = Counter.make "solver.memo.misses"

  (* game-tree pruning: scheduler branches skipped because they are
     independence-dominated by an already-explored sibling (sleep
     sets over the forall player's choices) *)
  let cutoff_sleep = Counter.make "solver.cutoff.sleep"

  (* transposition layer: a hit replays a cached subgame verdict whose
     σ-footprint still holds; a footprint_reject found entries at the
     position but none valid under the current σ; a backjump skipped
     the remaining candidates of a choice point a conflict proved
     irrelevant *)
  let tt_hits = Counter.make "solver.tt.hits"
  let tt_misses = Counter.make "solver.tt.misses"
  let tt_rejects = Counter.make "solver.tt.footprint_rejects"
  let tt_backjumps = Counter.make "solver.tt.backjumps"

  (* the process-wide states-explored counter shared with the explorer
     (same registry name, hence the same instrument): solver schedule
     nodes are the states of its search tree, so census/hierarchy runs
     report live progress through the same series *)
  let states = Counter.make "explorer.states"
end

(* Shared solver context: the view/env/position intern arenas and the
   transposition store, shareable across solves of the same arity —
   the census threads one context through every cell of an
   (object, n) row, so later cells replay subgames classified by
   earlier ones (positions encode REMAINING depth, so entries
   transpose across depth bounds; σ-footprints keep reuse sound even
   though every solve grows a fresh σ).  Only meaningful on the
   interned-σ path: σ-keys must be stable across solves for recorded
   footprints to keep their meaning, which is exactly what sharing the
   view interner provides. *)
module Ctx = struct
  type t = {
    n : int;
    views : Intern.t;
    envs : Intern.t;
    positions : Intern.Ints.t;
    store : (int, action) Tt.store;
    mutable vh_flushed : int;
    mutable vl_flushed : int;
  }

  let create ~n () =
    {
      n;
      views = Intern.create ~size_hint:4096 ();
      envs = Intern.create ~size_hint:512 ();
      positions = Intern.Ints.create ~size_hint:8192 ();
      store = Tt.create ();
      vh_flushed = 0;
      vl_flushed = 0;
    }

  let tt_entries t = Tt.entries t.store
end

(* The strategy table σ maps (pid, local view) to the chosen action.
   Views are response lists that deepen with every operation, so the
   generic-hash [Hashtbl] keying of the original engine degrades as
   views grow; the default keying interns views to dense ids
   ([Wfs_sim.Intern], full-depth hashing) and keys σ by the single int
   [view_id * n + pid].  [intern_views:false] keeps the original
   (pid, view)-keyed table as the reference path for differential
   tests and the PERF benchmarks. *)
type 'k sigma_ops = {
  sigma_key : int -> Value.t -> 'k;
  sigma_find : 'k -> action option;
  sigma_set : 'k -> action -> unit;
  sigma_remove : 'k -> unit;
  sigma_extract : unit -> assignment list;
  sigma_flush_metrics : unit -> unit;
}

let interned_sigma ?ctx n =
  let views =
    match ctx with
    | Some c -> c.Ctx.views
    | None -> Intern.create ~size_hint:1024 ()
  in
  let sigma : (int, action) Hashtbl.t = Hashtbl.create 1024 in
  {
    sigma_key = (fun pid view -> (Intern.intern views view * n) + pid);
    sigma_find = (fun k -> Hashtbl.find_opt sigma k);
    sigma_set = (fun k a -> Hashtbl.replace sigma k a);
    sigma_remove = (fun k -> Hashtbl.remove sigma k);
    sigma_extract =
      (fun () ->
        Hashtbl.fold
          (fun k chosen acc ->
            { pid = k mod n; view = Intern.value views (k / n); chosen }
            :: acc)
          sigma []);
    sigma_flush_metrics =
      (fun () ->
        let open Wfs_obs.Metrics in
        (* with a shared context the interner outlives the solve: flush
           deltas since the last flush, not cumulative totals *)
        let hb, lb =
          match ctx with
          | Some c ->
              let r = (c.Ctx.vh_flushed, c.Ctx.vl_flushed) in
              c.Ctx.vh_flushed <- Intern.hits views;
              c.Ctx.vl_flushed <- Intern.lookups views;
              r
          | None -> (0, 0)
        in
        Counter.add M.view_intern_hits (Intern.hits views - hb);
        Counter.add M.view_intern_lookups (Intern.lookups views - lb);
        Gauge.set_max M.view_arena_size (Intern.size views));
  }

let legacy_sigma () =
  let sigma : (int * Value.t, action) Hashtbl.t = Hashtbl.create 256 in
  {
    sigma_key = (fun pid view -> (pid, view));
    sigma_find = (fun k -> Hashtbl.find_opt sigma k);
    sigma_set = (fun k a -> Hashtbl.replace sigma k a);
    sigma_remove = (fun k -> Hashtbl.remove sigma k);
    sigma_extract =
      (fun () ->
        Hashtbl.fold
          (fun (pid, view) chosen acc -> { pid; view; chosen } :: acc)
          sigma []);
    sigma_flush_metrics = ignore;
  }

(* Transposition glue, abstracting over the σ-key backend: an env-state
   interner, a position canonicalizer, and the entry store. *)
type 'k tt_glue = {
  g_env_id : Env.state -> int;
  g_pos : 'k state -> int;
  g_store : ('k, action) Tt.store;
}

(* Canonical position key: [env_id; stepped; decisions; then for each
   UNDECIDED process its σ-token and remaining step budget].  Decided
   processes' views and step counts are dead state — nothing in the
   subgame ever reads them — so dropping them canonicalizes more
   positions together.  Remaining (not consumed) steps make entries
   depth-transposable: the subgame below a position depends only on how
   many operations each process may still take. *)
let position_key ~depth ~n ~token positions st =
  let buf = Array.make (2 + n + (2 * st.undecided)) 0 in
  buf.(0) <- st.env_id;
  buf.(1) <- st.stepped;
  let j = ref (2 + n) in
  for pid = 0 to n - 1 do
    buf.(2 + pid) <- st.decisions.(pid);
    if st.decisions.(pid) < 0 then begin
      buf.(!j) <- token st.skeys.(pid);
      buf.(!j + 1) <- depth - st.steps.(pid);
      j := !j + 2
    end
  done;
  Intern.Ints.intern positions buf

let interned_glue (ctx : Ctx.t) inst =
  {
    g_env_id = (fun s -> Intern.intern ctx.Ctx.envs (Env.encode s));
    g_pos =
      (fun st ->
        position_key ~depth:inst.depth ~n:inst.n
          ~token:(fun (k : int) -> k)
          ctx.Ctx.positions st);
    g_store = ctx.Ctx.store;
  }

(* Reference-path glue: σ-keys are raw (pid, view) pairs, so position
   tokens come from a private view interner (first-seen dense ids, the
   same injective tokenization as the interned path — position equality
   and hence the node counts are identical across backends). *)
let legacy_glue inst =
  let pv = Intern.create ~size_hint:1024 () in
  let envs = Intern.create ~size_hint:256 () in
  let positions = Intern.Ints.create ~size_hint:1024 () in
  {
    g_env_id = (fun s -> Intern.intern envs (Env.encode s));
    g_pos =
      (fun st ->
        position_key ~depth:inst.depth ~n:inst.n
          ~token:(fun ((pid, view) : int * Value.t) ->
            (Intern.intern pv view * inst.n) + pid)
          positions st);
    g_store = Tt.create ();
  }

let solve_with_ops (type k) ~max_nodes ~prune_agreement ~indep
    ~(tt : k tt_glue option) (ops : k sigma_ops) inst =
  let nodes = ref 0 in
  let memo_h = ref 0 and memo_m = ref 0 in
  let sleep_cut = ref 0 in
  let tt_h = ref 0 and tt_m = ref 0 and tt_r = ref 0 and tt_b = ref 0 in
  (* live flush, batched: all counters below are plain refs on the
     search path; every 8192 nodes the deltas go to the registry (and
     the running pool member's shard series), so a mid-run scrape sees
     progress at a cost of one masked test per node *)
  let nodes_flushed = ref 0 and memo_h_flushed = ref 0
  and memo_m_flushed = ref 0 and sleep_cut_flushed = ref 0
  and tt_h_flushed = ref 0 and tt_m_flushed = ref 0
  and tt_r_flushed = ref 0 and tt_b_flushed = ref 0 in
  let live_flush () =
    let d = !nodes - !nodes_flushed in
    let open Wfs_obs.Metrics in
    Counter.add M.nodes_total d;
    Counter.add M.states d;
    Pool.note_states d;
    Counter.add M.memo_hits (!memo_h - !memo_h_flushed);
    Counter.add M.memo_misses (!memo_m - !memo_m_flushed);
    Counter.add M.cutoff_sleep (!sleep_cut - !sleep_cut_flushed);
    Counter.add M.tt_hits (!tt_h - !tt_h_flushed);
    Counter.add M.tt_misses (!tt_m - !tt_m_flushed);
    Counter.add M.tt_rejects (!tt_r - !tt_r_flushed);
    Counter.add M.tt_backjumps (!tt_b - !tt_b_flushed);
    nodes_flushed := !nodes;
    memo_h_flushed := !memo_h;
    memo_m_flushed := !memo_m;
    sleep_cut_flushed := !sleep_cut;
    tt_h_flushed := !tt_h;
    tt_m_flushed := !tt_m;
    tt_r_flushed := !tt_r;
    tt_b_flushed := !tt_b
  in
  let tt_on = tt <> None in
  (* Transposition bookkeeping, all per-solve: the footprint-frame
     stack mirroring the open subproofs, the conflict carried by a
     propagating [false], a serial supply for choice frames, and the
     serial of the live frame that wrote each currently-assigned σ-key
     (hit moves extend their child's [chain] with it). *)
  let stack : (k, action) Tt.frame list ref = ref [] in
  let conflict : (k, action) Tt.conflict option ref = ref None in
  let serial = ref 0 in
  let writer : (k, int) Hashtbl.t = Hashtbl.create (if tt_on then 512 else 1) in
  let log_read key seen =
    match !stack with fr :: _ -> Tt.log_read fr key seen | [] -> ()
  in
  let env0 = Env.init inst.env in
  let initial =
    {
      views = Array.make inst.n (Value.list []);
      skeys = Array.init inst.n (fun pid -> ops.sigma_key pid (Value.list []));
      steps = Array.make inst.n 0;
      decisions = Array.make inst.n (-1);
      env_state = env0;
      stepped = 0;
      undecided = inst.n;
      env_id = (match tt with Some g -> g.g_env_id env0 | None -> -1);
      chain = [];
    }
  in
  let decide_candidates = List.init inst.n (fun j -> Decide j) in
  let agreement_ok st =
    let d0 = st.decisions.(0) in
    Array.for_all (fun d -> d = d0) st.decisions
  in
  (* any decision already output along the current schedule *)
  let pinned st =
    let rec go i =
      if i >= inst.n then None
      else if st.decisions.(i) >= 0 then Some st.decisions.(i)
      else go (i + 1)
    in
    go 0
  in
  (* A position- (and candidate-)determined refutation: no σ-support at
     all, so the conflict footprint is empty and its chain is the full
     derivation of the refuted structure, including the choice that
     produced the failing action. *)
  let refuted chain =
    if tt_on then conflict := Some { Tt.c_fp = Some [||]; c_chain = chain };
    false
  in
  (* [schedules st sleep k]: every schedule from [st] succeeds under the
     current strategy (extending it existentially where unassigned), and
     then the remaining obligations [k] hold.

     [sleep] is a bitmask of undecided processes whose next branch is
     *dominated*: the process's σ-assigned action is independent of
     every move taken since the ancestor node at which its branch was
     explored, so any schedule moving it here is a transposition of an
     already-verified sibling schedule — same joint states, same views,
     same σ lookups, same game value.  Skipping it is the sleep-set
     reduction over the universal player's choices; with [indep = None]
     the mask is always 0 and the search is the original one, node for
     node. *)
  let rec schedules st sleep (k : unit -> bool) : bool =
    incr nodes;
    if !nodes land 8191 = 0 then live_flush ();
    if !nodes > max_nodes then raise Budget;
    if st.undecided = 0 then begin
      if agreement_ok st then k ()
      else begin
        (* terminal disagreement is position-determined *)
        if tt_on then
          conflict := Some { Tt.c_fp = Some [||]; c_chain = st.chain };
        false
      end
    end
    else
      match tt with
      | None -> explore st sleep k
      | Some g -> (
          let pos = g.g_pos st in
          match Tt.lookup g.g_store ~find:ops.sigma_find ~pos ~mask:sleep with
          | Tt.Replay e ->
              incr tt_h;
              (* the replayed verdict depends on these σ values: they
                 join the enclosing subproof's footprint *)
              Array.iter (fun (fk, fv) -> log_read fk fv) e.Tt.e_fp;
              if e.Tt.e_true then k ()
              else begin
                conflict :=
                  Some { Tt.c_fp = Some e.Tt.e_fp; c_chain = st.chain };
                false
              end
          | Tt.Miss rejected ->
              incr tt_m;
              tt_r := !tt_r + rejected;
              let fr = Tt.frame () in
              stack := fr :: !stack;
              let kran = ref 0 in
              let ok =
                explore st sleep (fun () ->
                    incr kran;
                    k ())
              in
              stack := List.tl !stack;
              (match !stack with
              | parent :: _ -> Tt.merge ~child:fr ~parent
              | [] -> ());
              (if (not ok) && !kran = 0 then begin
                 (* pure refutation: [k] never ran, so the false is a
                    self-contained subgame impossibility — unless the
                    frame is tainted/overflowed, in which case the
                    inner conflict (still sound, possibly skip-derived)
                    keeps propagating as-is *)
                 match Tt.refutation_fp fr with
                 | Some e_fp ->
                     Tt.record g.g_store ~pos
                       { Tt.e_true = false; e_mask = sleep; e_fp };
                     conflict :=
                       Some { Tt.c_fp = Some e_fp; c_chain = st.chain }
                 | None -> ()
               end
               else if ok && !kran = 1 then
                 (* clean success: the subproof completed every schedule
                    and handed off exactly once *)
                 match Tt.success_fp ~find:ops.sigma_find fr with
                 | Some e_fp ->
                     Tt.record g.g_store ~pos
                       { Tt.e_true = true; e_mask = sleep; e_fp }
                 | None -> ());
              ok)
  and explore st sleep k =
    let rec obligations pid =
      if pid >= inst.n then k ()
      else if st.decisions.(pid) >= 0 then obligations (pid + 1)
      else if sleep land (1 lsl pid) <> 0 then begin
        incr sleep_cut;
        obligations (pid + 1)
      end
      else step st sleep pid (fun () -> obligations (pid + 1))
    in
    obligations 0
  (* the σ-assigned action of [pid] at its current view, if any — used
     only to decide dominance, so it must not perturb the memo-hit
     accounting (it does join the footprint: sleep decisions are
     σ-dependent) *)
  and peek st pid =
    let r = ops.sigma_find st.skeys.(pid) in
    if tt_on then log_read st.skeys.(pid) r;
    r
  (* May the actions [aq] (by [q]) and [a] (by [pid]) be transposed at
     [st]?  Do/Do pairs consult the semantic diamond; a Decide naming a
     process that has not yet stepped is dependent on that process's
     moves, because transposing them flips the decide's validity.
     [stepped] bits only grow along a schedule, so independence here is
     stable at every descendant — the monotonicity sleep sets need. *)
  and indep_action st q aq pid a =
    let unstepped j = st.stepped land (1 lsl j) = 0 in
    let decide_indep decider j mover =
      not (j <> decider && j = mover && unstepped j)
    in
    match (aq, a) with
    | Do (o1, op1), Do (o2, op2) -> (
        match indep with
        | Some ind ->
            Independence.independent_at ind st.env_state o1 op1 o2 op2
        | None -> false)
    | Decide j, Do _ -> decide_indep q j pid
    | Do _, Decide j -> decide_indep pid j q
    | Decide j, Decide j' -> decide_indep q j pid && decide_indep pid j' q
  (* Sleep mask for the subtree entered by [pid] doing [a]: an
     undecided [q] is dominated there when its branch was already
     covered at this node (explored as an earlier sibling, or itself
     asleep on arrival), its next action is σ-determined, and that
     action is independent of [a].  σ entries consulted here were
     necessarily set at or above this node's choice points, so they
     survive for the lifetime of the subtree. *)
  and child_sleep st sleep pid a =
    match indep with
    | None -> 0
    | Some _ ->
        let m = ref 0 in
        for q = 0 to inst.n - 1 do
          if
            q <> pid
            && st.decisions.(q) < 0
            && (sleep land (1 lsl q) <> 0 || q < pid)
          then
            match peek st q with
            | Some aq when indep_action st q aq pid a ->
                m := !m lor (1 lsl q)
            | _ -> ()
        done;
        !m
  and step st sleep pid k =
    let skey = st.skeys.(pid) in
    match ops.sigma_find skey with
    | Some a ->
        incr memo_h;
        if tt_on then begin
          log_read skey (Some a);
          (* the move is σ-determined: the state about to be built
             hangs off the choice frame that wrote this entry *)
          let chain' =
            match Hashtbl.find_opt writer skey with
            | Some ws -> ws :: st.chain
            | None -> st.chain
          in
          apply st sleep pid a chain' k
        end
        else apply st sleep pid a st.chain k
    | None -> (
        incr memo_m;
        let ops_allowed = st.steps.(pid) < inst.depth in
        let cands =
          (if ops_allowed then
             List.map (fun (obj, op) -> Do (obj, op)) (inst.candidates pid)
           else [])
          @ decide_candidates
        in
        match tt with
        | None ->
            List.exists
              (fun a ->
                ops.sigma_set skey a;
                let ok = apply st sleep pid a st.chain k in
                if not ok then ops.sigma_remove skey;
                ok)
              cands
        | Some _ ->
            (* the choice point observed σ(skey) unassigned: that is a
               constraint of the ENCLOSING subproof (logged before the
               step frame opens) *)
            log_read skey None;
            let fr = Tt.frame () in
            stack := fr :: !stack;
            let sn = !serial in
            incr serial;
            let chain' = sn :: st.chain in
            (* purity per candidate: a candidate's [false] is a
               self-contained subgame refutation exactly when the
               step's continuation never ran during it — if [k] ran,
               the failure involved obligations beyond this subgame
               and the exhaustion below is context-dependent *)
            let kran = ref 0 in
            let kw () =
              incr kran;
              k ()
            in
            let all_pure = ref true in
            let rec try_cands = function
              | [] ->
                  (* natural exhaustion (conflict is clear here: every
                     continue-branch below resets it).  If every
                     candidate failed purely within its own subgame and
                     the frame is clean, that is a position-determined
                     no-good: (this position, this mover) exhausts
                     under the frame's σ-support. *)
                  (if !all_pure then
                     match Tt.refutation_fp fr with
                     | Some _ as fp ->
                         conflict := Some { Tt.c_fp = fp; c_chain = st.chain }
                     | None -> ());
                  false
              | a :: rest -> (
                  ops.sigma_set skey a;
                  Tt.log_write fr skey;
                  Hashtbl.replace writer skey sn;
                  let kb = !kran in
                  if apply st sleep pid a chain' kw then true
                  else begin
                    ops.sigma_remove skey;
                    if !kran > kb then all_pure := false;
                    match !conflict with
                    | Some { Tt.c_fp = Some fp; c_chain }
                      when not (List.mem sn c_chain) ->
                        (* this choice does not form the refuted
                           structure; if its σ-support is intact, any
                           completed search through the remaining
                           candidates would re-demand and re-derive the
                           same refutation — backjump past them,
                           propagating the conflict unchanged (its
                           global argument does not depend on this
                           frame).  The skip proves global failure
                           only, so the subproof is tainted against
                           refutation caching. *)
                        if Tt.fp_valid ~find:ops.sigma_find fp then begin
                          incr tt_b;
                          Tt.taint fr;
                          false
                        end
                        else begin
                          conflict := None;
                          try_cands rest
                        end
                    | Some _ | None ->
                        (* our choice formed the refuted structure, or
                           the support is unknown/invalidated: flipping
                           the candidate genuinely reshapes the search
                           — explore on *)
                        conflict := None;
                        try_cands rest
                  end)
            in
            let ok = try_cands cands in
            stack := List.tl !stack;
            (match !stack with
            | parent :: _ -> Tt.merge ~child:fr ~parent
            | [] -> ());
            ok)
  and apply st sleep pid a chain k =
    match a with
    | Decide j ->
        (* validity: j must have stepped, or be the decider *)
        if j <> pid && st.stepped land (1 lsl j) = 0 then refuted chain
        else if
          (* with pruning on, conflicting decisions fail immediately;
             otherwise the conflict is caught by the terminal agreement
             check (the ablation measured in the benchmarks) *)
          prune_agreement
          && (match pinned st with Some v -> v <> j | None -> false)
        then refuted chain
        else
          schedules
            {
              st with
              decisions = set st.decisions pid j;
              undecided = st.undecided - 1;
              stepped = st.stepped lor (1 lsl pid);
              chain;
            }
            (child_sleep st sleep pid a)
            k
    | Do (obj, op) -> (
        if st.steps.(pid) >= inst.depth then refuted chain
        else
          match Env.apply inst.env st.env_state obj op with
          | exception Object_spec.Unknown_operation _ -> refuted chain
          | env_state, res ->
              let view' = Value.list (res :: Value.as_list st.views.(pid)) in
              schedules
                {
                  views = set st.views pid view';
                  skeys = set st.skeys pid (ops.sigma_key pid view');
                  steps = set st.steps pid (st.steps.(pid) + 1);
                  decisions = st.decisions;
                  env_state;
                  stepped = st.stepped lor (1 lsl pid);
                  undecided = st.undecided;
                  env_id =
                    (match tt with
                    | Some g -> g.g_env_id env_state
                    | None -> -1);
                  chain;
                }
                (child_sleep st sleep pid a)
                k)
  in
  Fun.protect ~finally:(fun () ->
      Wfs_obs.Metrics.Counter.incr M.runs;
      live_flush ();
      ops.sigma_flush_metrics ())
  @@ fun () ->
  let verdict =
    match schedules initial 0 (fun () -> true) with
    | true ->
        Solvable
          (List.sort
             (fun a b ->
               match Int.compare a.pid b.pid with
               | 0 -> Value.compare a.view b.view
               | c -> c)
             (ops.sigma_extract ()))
    | false -> Unsolvable
    | exception Budget -> Out_of_budget { nodes = !nodes }
  in
  (verdict, !nodes)

let solve_with_stats ?(max_nodes = 20_000_000) ?(prune_agreement = true)
    ?(intern_views = true) ?(por = true) ?(tt = true) ?ctx inst =
  Wfs_obs.Profile.span ~cat:"solver"
    ~args:(fun () -> [ ("n", Wfs_obs.Json.int inst.n) ])
    "solver.solve"
    (fun () ->
      let indep =
        if por then
          Some
            (Wfs_obs.Profile.span ~cat:"solver" "solver.independence"
               (fun () -> Independence.of_env inst.env))
        else None
      in
      if intern_views then
        if tt then begin
          let c =
            match ctx with
            | Some c ->
                if c.Ctx.n <> inst.n then
                  invalid_arg
                    (Fmt.str
                       "Solver.solve: shared ctx built for n=%d, instance \
                        has n=%d"
                       c.Ctx.n inst.n);
                c
            | None -> Ctx.create ~n:inst.n ()
          in
          solve_with_ops ~max_nodes ~prune_agreement ~indep
            ~tt:(Some (interned_glue c inst))
            (interned_sigma ~ctx:c inst.n)
            inst
        end
        else
          solve_with_ops ~max_nodes ~prune_agreement ~indep ~tt:None
            (interned_sigma inst.n) inst
      else
        solve_with_ops ~max_nodes ~prune_agreement ~indep
          ~tt:(if tt then Some (legacy_glue inst) else None)
          (legacy_sigma ()) inst)

let solve ?max_nodes ?prune_agreement ?intern_views ?por ?tt ?ctx inst =
  fst
    (solve_with_stats ?max_nodes ?prune_agreement ?intern_views ?por ?tt ?ctx
       inst)

let pp_action ppf = function
  | Do (obj, op) -> Fmt.pf ppf "%s.%a" obj Op.pp op
  | Decide j -> Fmt.pf ppf "decide P%d" j

let pp_assignment ppf a =
  Fmt.pf ppf "P%d %a -> %a" a.pid Value.pp a.view pp_action a.chosen

let pp_verdict ppf = function
  | Solvable strategy ->
      Fmt.pf ppf "@[<v 2>SOLVABLE:@ %a@]"
        Fmt.(list ~sep:cut pp_assignment)
        strategy
  | Unsolvable -> Fmt.string ppf "UNSOLVABLE (no bounded protocol exists)"
  | Out_of_budget { nodes } -> Fmt.pf ppf "OUT OF BUDGET after %d nodes" nodes
