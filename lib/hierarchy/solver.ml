(* Bounded-protocol consensus solvability: strategy synthesis against the
   adversarial scheduler.

   Question: for a given shared-object environment, n processes and a
   step bound d, does there exist a wait-free consensus protocol in
   which every process decides after at most d operations?

   A protocol is exactly a *strategy*: a function from (process, local
   view) to the next action, where the local view is the sequence of
   responses the process has received — all a deterministic process can
   ever condition on.  The search is therefore an exists/forall game:

   - existential: the protocol picks an action for each unassigned
     (process, view) pair it encounters;
   - universal: the scheduler picks which undecided process moves.

   We explore the obligation tree depth-first in continuation-passing
   style with chronological backtracking over the partial strategy — the
   same shape as a QBF search.  [Unsolvable] is a machine-checked proof
   that NO protocol in the bounded class exists: the finite analogue of
   Theorem 2 / Theorem 11; [Solvable] carries the synthesized protocol.

   The paper's correctness conditions are enforced exactly as in
   [Wfs_consensus.Protocol]: agreement along every schedule, validity at
   every decide event (the named process must have stepped, or be the
   decider), and decision within the bound (wait-freedom is built into
   the bounded-depth game). *)

open Wfs_spec
open Wfs_sim

type action = Do of string * Op.t | Decide of int

type instance = {
  env : Env.t;
  n : int;
  depth : int;
  candidates : int -> (string * Op.t) list;
      (** operation menu per process, honouring per-process ownership *)
}

type assignment = { pid : int; view : Value.t; chosen : action }

type verdict =
  | Solvable of assignment list
  | Unsolvable
  | Out_of_budget of { nodes : int }

(* Persistent game state.  Each scheduler branch must be explored from
   the same state, while the partial strategy is shared globally across
   branches — so the state is copied on update and passed explicitly,
   and only the strategy table is mutated (with undo on backtrack). *)
type state = {
  views : Value.t array;  (* response history per process, latest first *)
  steps : int array;  (* operations taken per process *)
  decisions : int array;  (* decision per process, -1 if undecided *)
  env_state : Env.state;
  stepped : int;
  undecided : int;
}

let set arr i v =
  let arr' = Array.copy arr in
  arr'.(i) <- v;
  arr'

let of_spec ?(extra_candidates = []) ~n ~depth (spec : Object_spec.t) =
  let obj = spec.Object_spec.name in
  {
    env = Env.make [ (obj, spec) ];
    n;
    depth;
    candidates =
      (fun pid ->
        List.map (fun op -> (obj, op)) (Object_spec.menu_for spec pid)
        @ extra_candidates);
  }

exception Budget

(* Strategy-table metrics, mirroring the explorer's interning
   instrumentation. *)
module M = struct
  open Wfs_obs.Metrics

  let runs = Counter.make "solver.runs"
  let nodes_total = Counter.make "solver.nodes"
  let view_intern_hits = Counter.make "solver.view_intern.hits"
  let view_intern_lookups = Counter.make "solver.view_intern.lookups"
  let view_arena_size = Gauge.make "solver.view_intern.arena_size"

  (* σ-table memoization: a hit replays an already-chosen action, a miss
     opens an existential choice point *)
  let memo_hits = Counter.make "solver.memo.hits"
  let memo_misses = Counter.make "solver.memo.misses"

  (* the process-wide states-explored counter shared with the explorer
     (same registry name, hence the same instrument): solver schedule
     nodes are the states of its search tree, so census/hierarchy runs
     report live progress through the same series *)
  let states = Counter.make "explorer.states"
end

(* The strategy table σ maps (pid, local view) to the chosen action.
   Views are response lists that deepen with every operation, so the
   generic-hash [Hashtbl] keying of the original engine degrades as
   views grow; the default keying interns views to dense ids
   ([Wfs_sim.Intern], full-depth hashing) and keys σ by the single int
   [view_id * n + pid].  [intern_views:false] keeps the original
   (pid, view)-keyed table as the reference path for differential
   tests and the PERF benchmarks. *)
type 'k sigma_ops = {
  sigma_key : int -> Value.t -> 'k;
  sigma_find : 'k -> action option;
  sigma_set : 'k -> action -> unit;
  sigma_remove : 'k -> unit;
  sigma_extract : unit -> assignment list;
  sigma_flush_metrics : unit -> unit;
}

let interned_sigma n =
  let views = Intern.create ~size_hint:1024 () in
  let sigma : (int, action) Hashtbl.t = Hashtbl.create 1024 in
  {
    sigma_key = (fun pid view -> (Intern.intern views view * n) + pid);
    sigma_find = (fun k -> Hashtbl.find_opt sigma k);
    sigma_set = (fun k a -> Hashtbl.replace sigma k a);
    sigma_remove = (fun k -> Hashtbl.remove sigma k);
    sigma_extract =
      (fun () ->
        Hashtbl.fold
          (fun k chosen acc ->
            { pid = k mod n; view = Intern.value views (k / n); chosen }
            :: acc)
          sigma []);
    sigma_flush_metrics =
      (fun () ->
        let open Wfs_obs.Metrics in
        Counter.add M.view_intern_hits (Intern.hits views);
        Counter.add M.view_intern_lookups (Intern.lookups views);
        Gauge.set_max M.view_arena_size (Intern.size views));
  }

let legacy_sigma () =
  let sigma : (int * Value.t, action) Hashtbl.t = Hashtbl.create 256 in
  {
    sigma_key = (fun pid view -> (pid, view));
    sigma_find = (fun k -> Hashtbl.find_opt sigma k);
    sigma_set = (fun k a -> Hashtbl.replace sigma k a);
    sigma_remove = (fun k -> Hashtbl.remove sigma k);
    sigma_extract =
      (fun () ->
        Hashtbl.fold
          (fun (pid, view) chosen acc -> { pid; view; chosen } :: acc)
          sigma []);
    sigma_flush_metrics = ignore;
  }

let solve_with_ops (type k) ~max_nodes ~prune_agreement (ops : k sigma_ops)
    inst =
  let nodes = ref 0 in
  let memo_h = ref 0 and memo_m = ref 0 in
  (* live flush, batched: all counters below are plain refs on the
     search path; every 8192 nodes the deltas go to the registry (and
     the running pool member's shard series), so a mid-run scrape sees
     progress at a cost of one masked test per node *)
  let nodes_flushed = ref 0 and memo_h_flushed = ref 0
  and memo_m_flushed = ref 0 in
  let live_flush () =
    let d = !nodes - !nodes_flushed in
    let open Wfs_obs.Metrics in
    Counter.add M.nodes_total d;
    Counter.add M.states d;
    Pool.note_states d;
    Counter.add M.memo_hits (!memo_h - !memo_h_flushed);
    Counter.add M.memo_misses (!memo_m - !memo_m_flushed);
    nodes_flushed := !nodes;
    memo_h_flushed := !memo_h;
    memo_m_flushed := !memo_m
  in
  let initial =
    {
      views = Array.make inst.n (Value.list []);
      steps = Array.make inst.n 0;
      decisions = Array.make inst.n (-1);
      env_state = Env.init inst.env;
      stepped = 0;
      undecided = inst.n;
    }
  in
  let decide_candidates = List.init inst.n (fun j -> Decide j) in
  let agreement_ok st =
    let d0 = st.decisions.(0) in
    Array.for_all (fun d -> d = d0) st.decisions
  in
  (* any decision already output along the current schedule *)
  let pinned st =
    let rec go i =
      if i >= inst.n then None
      else if st.decisions.(i) >= 0 then Some st.decisions.(i)
      else go (i + 1)
    in
    go 0
  in
  (* [schedules st k]: every schedule from [st] succeeds under the
     current strategy (extending it existentially where unassigned), and
     then the remaining obligations [k] hold. *)
  let rec schedules st (k : unit -> bool) : bool =
    incr nodes;
    if !nodes land 8191 = 0 then live_flush ();
    if !nodes > max_nodes then raise Budget;
    if st.undecided = 0 then agreement_ok st && k ()
    else begin
      let rec obligations pid =
        if pid >= inst.n then k ()
        else if st.decisions.(pid) >= 0 then obligations (pid + 1)
        else step st pid (fun () -> obligations (pid + 1))
      in
      obligations 0
    end
  and step st pid k =
    let view = st.views.(pid) in
    let skey = ops.sigma_key pid view in
    match ops.sigma_find skey with
    | Some a ->
        incr memo_h;
        apply st pid a k
    | None ->
        incr memo_m;
        let ops_allowed = st.steps.(pid) < inst.depth in
        let cands =
          (if ops_allowed then
             List.map (fun (obj, op) -> Do (obj, op)) (inst.candidates pid)
           else [])
          @ decide_candidates
        in
        List.exists
          (fun a ->
            ops.sigma_set skey a;
            let ok = apply st pid a k in
            if not ok then ops.sigma_remove skey;
            ok)
          cands
  and apply st pid a k =
    match a with
    | Decide j ->
        (* validity: j must have stepped, or be the decider *)
        if j <> pid && st.stepped land (1 lsl j) = 0 then false
        else if
          (* with pruning on, conflicting decisions fail immediately;
             otherwise the conflict is caught by the terminal agreement
             check (the ablation measured in the benchmarks) *)
          prune_agreement
          && (match pinned st with Some v -> v <> j | None -> false)
        then false
        else
          schedules
            {
              st with
              decisions = set st.decisions pid j;
              undecided = st.undecided - 1;
              stepped = st.stepped lor (1 lsl pid);
            }
            k
    | Do (obj, op) ->
        if st.steps.(pid) >= inst.depth then false
        else begin
          match Env.apply inst.env st.env_state obj op with
          | exception Object_spec.Unknown_operation _ -> false
          | env_state, res ->
              schedules
                {
                  views =
                    set st.views pid
                      (Value.list (res :: Value.as_list st.views.(pid)));
                  steps = set st.steps pid (st.steps.(pid) + 1);
                  decisions = st.decisions;
                  env_state;
                  stepped = st.stepped lor (1 lsl pid);
                  undecided = st.undecided;
                }
                k
        end
  in
  let verdict =
    match schedules initial (fun () -> true) with
    | true ->
        Solvable
          (List.sort
             (fun a b ->
               match Int.compare a.pid b.pid with
               | 0 -> Value.compare a.view b.view
               | c -> c)
             (ops.sigma_extract ()))
    | false -> Unsolvable
    | exception Budget -> Out_of_budget { nodes = !nodes }
  in
  let open Wfs_obs.Metrics in
  Counter.incr M.runs;
  live_flush ();
  ops.sigma_flush_metrics ();
  (verdict, !nodes)

let solve_with_stats ?(max_nodes = 20_000_000) ?(prune_agreement = true)
    ?(intern_views = true) inst =
  Wfs_obs.Profile.span ~cat:"solver"
    ~args:(fun () -> [ ("n", Wfs_obs.Json.int inst.n) ])
    "solver.solve"
    (fun () ->
      if intern_views then
        solve_with_ops ~max_nodes ~prune_agreement (interned_sigma inst.n) inst
      else solve_with_ops ~max_nodes ~prune_agreement (legacy_sigma ()) inst)

let solve ?max_nodes ?prune_agreement ?intern_views inst =
  fst (solve_with_stats ?max_nodes ?prune_agreement ?intern_views inst)

let pp_action ppf = function
  | Do (obj, op) -> Fmt.pf ppf "%s.%a" obj Op.pp op
  | Decide j -> Fmt.pf ppf "decide P%d" j

let pp_assignment ppf a =
  Fmt.pf ppf "P%d %a -> %a" a.pid Value.pp a.view pp_action a.chosen

let pp_verdict ppf = function
  | Solvable strategy ->
      Fmt.pf ppf "@[<v 2>SOLVABLE:@ %a@]"
        Fmt.(list ~sep:cut pp_assignment)
        strategy
  | Unsolvable -> Fmt.string ppf "UNSOLVABLE (no bounded protocol exists)"
  | Out_of_budget { nodes } -> Fmt.pf ppf "OUT OF BUDGET after %d nodes" nodes
