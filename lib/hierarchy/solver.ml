(* Bounded-protocol consensus solvability: strategy synthesis against the
   adversarial scheduler.

   Question: for a given shared-object environment, n processes and a
   step bound d, does there exist a wait-free consensus protocol in
   which every process decides after at most d operations?

   A protocol is exactly a *strategy*: a function from (process, local
   view) to the next action, where the local view is the sequence of
   responses the process has received — all a deterministic process can
   ever condition on.  The search is therefore an exists/forall game:

   - existential: the protocol picks an action for each unassigned
     (process, view) pair it encounters;
   - universal: the scheduler picks which undecided process moves.

   We explore the obligation tree depth-first in continuation-passing
   style with chronological backtracking over the partial strategy — the
   same shape as a QBF search.  [Unsolvable] is a machine-checked proof
   that NO protocol in the bounded class exists: the finite analogue of
   Theorem 2 / Theorem 11; [Solvable] carries the synthesized protocol.

   The paper's correctness conditions are enforced exactly as in
   [Wfs_consensus.Protocol]: agreement along every schedule, validity at
   every decide event (the named process must have stepped, or be the
   decider), and decision within the bound (wait-freedom is built into
   the bounded-depth game). *)

open Wfs_spec
open Wfs_sim

type action = Do of string * Op.t | Decide of int

type instance = {
  env : Env.t;
  n : int;
  depth : int;
  candidates : int -> (string * Op.t) list;
      (** operation menu per process, honouring per-process ownership *)
}

type assignment = { pid : int; view : Value.t; chosen : action }

type verdict =
  | Solvable of assignment list
  | Unsolvable
  | Out_of_budget of { nodes : int }

(* Persistent game state.  Each scheduler branch must be explored from
   the same state, while the partial strategy is shared globally across
   branches — so the state is copied on update and passed explicitly,
   and only the strategy table is mutated (with undo on backtrack).

   ['k] is the σ-key type of the strategy-table backend: each process's
   key for its current view is computed once, when the view is built,
   and carried in [skeys] — σ lookups (the memo probe in [step], the
   dominance peeks of the sleep-set reduction) then skip re-hashing the
   view.  Keys are pure functions of (pid, view), so the caching is
   semantically invisible. *)
type 'k state = {
  views : Value.t array;  (* response history per process, latest first *)
  skeys : 'k array;  (* σ-key of each process's current view *)
  steps : int array;  (* operations taken per process *)
  decisions : int array;  (* decision per process, -1 if undecided *)
  env_state : Env.state;
  stepped : int;
  undecided : int;
}

let set arr i v =
  let arr' = Array.copy arr in
  arr'.(i) <- v;
  arr'

let of_spec ?(extra_candidates = []) ~n ~depth (spec : Object_spec.t) =
  let obj = spec.Object_spec.name in
  {
    env = Env.make [ (obj, spec) ];
    n;
    depth;
    candidates =
      (fun pid ->
        List.map (fun op -> (obj, op)) (Object_spec.menu_for spec pid)
        @ extra_candidates);
  }

exception Budget

(* Strategy-table metrics, mirroring the explorer's interning
   instrumentation. *)
module M = struct
  open Wfs_obs.Metrics

  let runs = Counter.make "solver.runs"
  let nodes_total = Counter.make "solver.nodes"
  let view_intern_hits = Counter.make "solver.view_intern.hits"
  let view_intern_lookups = Counter.make "solver.view_intern.lookups"
  let view_arena_size = Gauge.make "solver.view_intern.arena_size"

  (* σ-table memoization: a hit replays an already-chosen action, a miss
     opens an existential choice point *)
  let memo_hits = Counter.make "solver.memo.hits"
  let memo_misses = Counter.make "solver.memo.misses"

  (* game-tree pruning: scheduler branches skipped because they are
     independence-dominated by an already-explored sibling (sleep
     sets over the forall player's choices) *)
  let cutoff_sleep = Counter.make "solver.cutoff.sleep"

  (* the process-wide states-explored counter shared with the explorer
     (same registry name, hence the same instrument): solver schedule
     nodes are the states of its search tree, so census/hierarchy runs
     report live progress through the same series *)
  let states = Counter.make "explorer.states"
end

(* The strategy table σ maps (pid, local view) to the chosen action.
   Views are response lists that deepen with every operation, so the
   generic-hash [Hashtbl] keying of the original engine degrades as
   views grow; the default keying interns views to dense ids
   ([Wfs_sim.Intern], full-depth hashing) and keys σ by the single int
   [view_id * n + pid].  [intern_views:false] keeps the original
   (pid, view)-keyed table as the reference path for differential
   tests and the PERF benchmarks. *)
type 'k sigma_ops = {
  sigma_key : int -> Value.t -> 'k;
  sigma_find : 'k -> action option;
  sigma_set : 'k -> action -> unit;
  sigma_remove : 'k -> unit;
  sigma_extract : unit -> assignment list;
  sigma_flush_metrics : unit -> unit;
}

let interned_sigma n =
  let views = Intern.create ~size_hint:1024 () in
  let sigma : (int, action) Hashtbl.t = Hashtbl.create 1024 in
  {
    sigma_key = (fun pid view -> (Intern.intern views view * n) + pid);
    sigma_find = (fun k -> Hashtbl.find_opt sigma k);
    sigma_set = (fun k a -> Hashtbl.replace sigma k a);
    sigma_remove = (fun k -> Hashtbl.remove sigma k);
    sigma_extract =
      (fun () ->
        Hashtbl.fold
          (fun k chosen acc ->
            { pid = k mod n; view = Intern.value views (k / n); chosen }
            :: acc)
          sigma []);
    sigma_flush_metrics =
      (fun () ->
        let open Wfs_obs.Metrics in
        Counter.add M.view_intern_hits (Intern.hits views);
        Counter.add M.view_intern_lookups (Intern.lookups views);
        Gauge.set_max M.view_arena_size (Intern.size views));
  }

let legacy_sigma () =
  let sigma : (int * Value.t, action) Hashtbl.t = Hashtbl.create 256 in
  {
    sigma_key = (fun pid view -> (pid, view));
    sigma_find = (fun k -> Hashtbl.find_opt sigma k);
    sigma_set = (fun k a -> Hashtbl.replace sigma k a);
    sigma_remove = (fun k -> Hashtbl.remove sigma k);
    sigma_extract =
      (fun () ->
        Hashtbl.fold
          (fun (pid, view) chosen acc -> { pid; view; chosen } :: acc)
          sigma []);
    sigma_flush_metrics = ignore;
  }

let solve_with_ops (type k) ~max_nodes ~prune_agreement ~indep
    (ops : k sigma_ops) inst =
  let nodes = ref 0 in
  let memo_h = ref 0 and memo_m = ref 0 in
  let sleep_cut = ref 0 in
  (* live flush, batched: all counters below are plain refs on the
     search path; every 8192 nodes the deltas go to the registry (and
     the running pool member's shard series), so a mid-run scrape sees
     progress at a cost of one masked test per node *)
  let nodes_flushed = ref 0 and memo_h_flushed = ref 0
  and memo_m_flushed = ref 0 and sleep_cut_flushed = ref 0 in
  let live_flush () =
    let d = !nodes - !nodes_flushed in
    let open Wfs_obs.Metrics in
    Counter.add M.nodes_total d;
    Counter.add M.states d;
    Pool.note_states d;
    Counter.add M.memo_hits (!memo_h - !memo_h_flushed);
    Counter.add M.memo_misses (!memo_m - !memo_m_flushed);
    Counter.add M.cutoff_sleep (!sleep_cut - !sleep_cut_flushed);
    nodes_flushed := !nodes;
    memo_h_flushed := !memo_h;
    memo_m_flushed := !memo_m;
    sleep_cut_flushed := !sleep_cut
  in
  let initial =
    {
      views = Array.make inst.n (Value.list []);
      skeys = Array.init inst.n (fun pid -> ops.sigma_key pid (Value.list []));
      steps = Array.make inst.n 0;
      decisions = Array.make inst.n (-1);
      env_state = Env.init inst.env;
      stepped = 0;
      undecided = inst.n;
    }
  in
  let decide_candidates = List.init inst.n (fun j -> Decide j) in
  let agreement_ok st =
    let d0 = st.decisions.(0) in
    Array.for_all (fun d -> d = d0) st.decisions
  in
  (* any decision already output along the current schedule *)
  let pinned st =
    let rec go i =
      if i >= inst.n then None
      else if st.decisions.(i) >= 0 then Some st.decisions.(i)
      else go (i + 1)
    in
    go 0
  in
  (* [schedules st sleep k]: every schedule from [st] succeeds under the
     current strategy (extending it existentially where unassigned), and
     then the remaining obligations [k] hold.

     [sleep] is a bitmask of undecided processes whose next branch is
     *dominated*: the process's σ-assigned action is independent of
     every move taken since the ancestor node at which its branch was
     explored, so any schedule moving it here is a transposition of an
     already-verified sibling schedule — same joint states, same views,
     same σ lookups, same game value.  Skipping it is the sleep-set
     reduction over the universal player's choices; with [indep = None]
     the mask is always 0 and the search is the original one, node for
     node. *)
  let rec schedules st sleep (k : unit -> bool) : bool =
    incr nodes;
    if !nodes land 8191 = 0 then live_flush ();
    if !nodes > max_nodes then raise Budget;
    if st.undecided = 0 then agreement_ok st && k ()
    else
      let rec obligations pid =
        if pid >= inst.n then k ()
        else if st.decisions.(pid) >= 0 then obligations (pid + 1)
        else if sleep land (1 lsl pid) <> 0 then begin
          incr sleep_cut;
          obligations (pid + 1)
        end
        else step st sleep pid (fun () -> obligations (pid + 1))
      in
      obligations 0
  (* the σ-assigned action of [pid] at its current view, if any — used
     only to decide dominance, so it must not perturb the memo-hit
     accounting *)
  and peek st pid = ops.sigma_find st.skeys.(pid)
  (* May the actions [aq] (by [q]) and [a] (by [pid]) be transposed at
     [st]?  Do/Do pairs consult the semantic diamond; a Decide naming a
     process that has not yet stepped is dependent on that process's
     moves, because transposing them flips the decide's validity.
     [stepped] bits only grow along a schedule, so independence here is
     stable at every descendant — the monotonicity sleep sets need. *)
  and indep_action st q aq pid a =
    let unstepped j = st.stepped land (1 lsl j) = 0 in
    let decide_indep decider j mover =
      not (j <> decider && j = mover && unstepped j)
    in
    match (aq, a) with
    | Do (o1, op1), Do (o2, op2) -> (
        match indep with
        | Some ind ->
            Independence.independent_at ind st.env_state o1 op1 o2 op2
        | None -> false)
    | Decide j, Do _ -> decide_indep q j pid
    | Do _, Decide j -> decide_indep pid j q
    | Decide j, Decide j' -> decide_indep q j pid && decide_indep pid j' q
  (* Sleep mask for the subtree entered by [pid] doing [a]: an
     undecided [q] is dominated there when its branch was already
     covered at this node (explored as an earlier sibling, or itself
     asleep on arrival), its next action is σ-determined, and that
     action is independent of [a].  σ entries consulted here were
     necessarily set at or above this node's choice points, so they
     survive for the lifetime of the subtree. *)
  and child_sleep st sleep pid a =
    match indep with
    | None -> 0
    | Some _ ->
      begin
      let m = ref 0 in
      for q = 0 to inst.n - 1 do
        if
          q <> pid
          && st.decisions.(q) < 0
          && (sleep land (1 lsl q) <> 0 || q < pid)
        then
          match peek st q with
          | Some aq when indep_action st q aq pid a ->
              m := !m lor (1 lsl q)
          | _ -> ()
      done;
      !m
      end
  and step st sleep pid k =
    let skey = st.skeys.(pid) in
    match ops.sigma_find skey with
    | Some a ->
        incr memo_h;
        apply st sleep pid a k
    | None ->
        incr memo_m;
        let ops_allowed = st.steps.(pid) < inst.depth in
        let cands =
          (if ops_allowed then
             List.map (fun (obj, op) -> Do (obj, op)) (inst.candidates pid)
           else [])
          @ decide_candidates
        in
        List.exists
          (fun a ->
            ops.sigma_set skey a;
            let ok = apply st sleep pid a k in
            if not ok then ops.sigma_remove skey;
            ok)
          cands
  and apply st sleep pid a k =
    match a with
    | Decide j ->
        (* validity: j must have stepped, or be the decider *)
        if j <> pid && st.stepped land (1 lsl j) = 0 then false
        else if
          (* with pruning on, conflicting decisions fail immediately;
             otherwise the conflict is caught by the terminal agreement
             check (the ablation measured in the benchmarks) *)
          prune_agreement
          && (match pinned st with Some v -> v <> j | None -> false)
        then false
        else
          schedules
            {
              st with
              decisions = set st.decisions pid j;
              undecided = st.undecided - 1;
              stepped = st.stepped lor (1 lsl pid);
            }
            (child_sleep st sleep pid a)
            k
    | Do (obj, op) ->
        if st.steps.(pid) >= inst.depth then false
        else begin
          match Env.apply inst.env st.env_state obj op with
          | exception Object_spec.Unknown_operation _ -> false
          | env_state, res ->
              let view' =
                Value.list (res :: Value.as_list st.views.(pid))
              in
              schedules
                {
                  views = set st.views pid view';
                  skeys = set st.skeys pid (ops.sigma_key pid view');
                  steps = set st.steps pid (st.steps.(pid) + 1);
                  decisions = st.decisions;
                  env_state;
                  stepped = st.stepped lor (1 lsl pid);
                  undecided = st.undecided;
                }
                (child_sleep st sleep pid a)
                k
        end
  in
  let verdict =
    match schedules initial 0 (fun () -> true) with
    | true ->
        Solvable
          (List.sort
             (fun a b ->
               match Int.compare a.pid b.pid with
               | 0 -> Value.compare a.view b.view
               | c -> c)
             (ops.sigma_extract ()))
    | false -> Unsolvable
    | exception Budget -> Out_of_budget { nodes = !nodes }
  in
  let open Wfs_obs.Metrics in
  Counter.incr M.runs;
  live_flush ();
  ops.sigma_flush_metrics ();
  (verdict, !nodes)

let solve_with_stats ?(max_nodes = 20_000_000) ?(prune_agreement = true)
    ?(intern_views = true) ?(por = true) inst =
  Wfs_obs.Profile.span ~cat:"solver"
    ~args:(fun () -> [ ("n", Wfs_obs.Json.int inst.n) ])
    "solver.solve"
    (fun () ->
      let indep =
        if por then
          Some
            (Wfs_obs.Profile.span ~cat:"solver" "solver.independence"
               (fun () -> Independence.of_env inst.env))
        else None
      in
      if intern_views then
        solve_with_ops ~max_nodes ~prune_agreement ~indep
          (interned_sigma inst.n) inst
      else
        solve_with_ops ~max_nodes ~prune_agreement ~indep (legacy_sigma ())
          inst)

let solve ?max_nodes ?prune_agreement ?intern_views ?por inst =
  fst (solve_with_stats ?max_nodes ?prune_agreement ?intern_views ?por inst)

let pp_action ppf = function
  | Do (obj, op) -> Fmt.pf ppf "%s.%a" obj Op.pp op
  | Decide j -> Fmt.pf ppf "decide P%d" j

let pp_assignment ppf a =
  Fmt.pf ppf "P%d %a -> %a" a.pid Value.pp a.view pp_action a.chosen

let pp_verdict ppf = function
  | Solvable strategy ->
      Fmt.pf ppf "@[<v 2>SOLVABLE:@ %a@]"
        Fmt.(list ~sep:cut pp_assignment)
        strategy
  | Unsolvable -> Fmt.string ppf "UNSOLVABLE (no bounded protocol exists)"
  | Out_of_budget { nodes } -> Fmt.pf ppf "OUT OF BUDGET after %d nodes" nodes
