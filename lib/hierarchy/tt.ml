(* Footprint-validated transposition entries for the bounded solver.

   The solver's search is an exists/forall game over a SHARED MUTABLE
   strategy table σ: the game value of a position is only defined
   relative to the σ entries the subproof consults.  A verdict cached at
   a position is therefore replayable only under a side condition — the
   current σ must agree with the σ the subproof actually observed.  This
   module holds the machinery for that side condition:

   - a [frame] accumulates the σ-FOOTPRINT of one subproof: every σ-key
     read (with the value first seen) and every σ-key written inside it.
     Frames nest with the search; on exit a child's footprint merges
     into its parent, so an enclosing subproof's footprint covers
     everything its descendants consulted.  Footprints are capped at
     {!fp_cap} items — an oversized subproof simply is not cached
     (sound: caching is only ever an optimization).

   - an [entry] is a cached verdict [(position, e_true, e_mask, e_fp)].

     A REFUTATION entry ([e_true = false]) is recorded only for *pure*
     subgame refutations — the continuation was never invoked, so the
     [false] says "this subgame has no winning strategy extension", not
     "some later obligation failed".  Its footprint keeps only the keys
     read but never written inside the subproof, and among those only
     the ones seen ASSIGNED: keys written inside net out to unassigned
     by the backtracking discipline (every internal [sigma_set] is
     undone before a pure [false] returns), and keys seen unassigned
     were enumerated exhaustively, so the refutation holds a fortiori
     under any later assignment to them (pinning σ only restricts the
     exists player — game falsity is antitone in σ).  Replay condition:
     σ currently assigns exactly the recorded action to every footprint
     key.  The sleep mask is irrelevant: a refutation is a statement
     about the game value under σ|footprint, and sleep-set reduction
     preserves game values.

     A VERIFIED entry ([e_true = true]) is recorded only when the
     continuation was invoked exactly once — the subproof completed
     every schedule and handed off cleanly, so its σ-effects are
     exactly its recorded writes.  Its footprint is exact: every key
     read or written, at its final σ value (reads at the value first
     seen, writes at the value they hold when the subproof succeeds).
     Replay requires exact agreement, INCLUDING keys required to be
     unassigned.  That exactness is what makes success replay sound in
     CPS: when every footprint key already holds its recorded value, a
     re-exploration of the subtree would be fully σ-determined (every
     choice point on a surviving path is a memo hit), so it would
     rebuild no live choice points — invoking the continuation directly
     is observationally identical, including the case where the
     continuation later fails and unwinds straight through.  Success
     replay additionally requires [e_mask ⊆ current mask]: the recorded
     proof verified only the scheduler branches outside [e_mask]
     (branches inside it were covered by the recording context's
     ancestors), so the replay context must dominate at least as many
     branches itself.

   - a [conflict] is the no-good driving a [false] currently unwinding
     the search: the footprint its refutation depends on, plus the
     serials of the choice frames that FORMED the refuted structure
     (its position, and the candidate set under it).  While the
     conflict's footprint stays σ-valid, any existential choice point
     the failure crosses whose serial is outside [c_chain] — and whose
     flipped candidates therefore cannot reshape the refuted structure
     nor touch its σ-support — can skip its remaining candidates: the
     re-exploration they would trigger demonstrably re-derives the same
     refutation.  That is dependency-directed backjumping lifted to the
     exists/forall game.  [c_fp = None] marks a conflict whose support
     is unknown (footprint overflow, or a mixed failure): it never
     justifies a skip, but keeps the invariant that every propagating
     [false] carries an explicit conflict state. *)

type ('k, 'v) item = {
  ik : 'k;
  mutable iseen : 'v option;  (* value at first external read *)
  mutable iwrote : bool;  (* written inside the subproof *)
}

type ('k, 'v) frame = {
  mutable items : ('k, 'v) item list;
  mutable nitems : int;
  mutable over : bool;  (* footprint exceeded [fp_cap]: not cacheable *)
  mutable tainted : bool;
      (* a backjump fired inside this subproof.  A skip is justified by
         a GLOBAL argument — any completed search would re-demand the
         conflict's refuted structure and fail — which is weaker than a
         subgame refutation: the skipped candidates might have won
         their subgames and failed only in the continuation.  A [false]
         that rests on a skip therefore must not be recorded as a
         subgame refutation, nor compose into pure-exhaustion no-goods;
         success verdicts are unaffected ([true] is never
         skip-derived). *)
}

type ('k, 'v) entry = {
  e_true : bool;
  e_mask : int;  (* sleep mask at recording; checked for successes only *)
  e_fp : ('k * 'v option) array;
}

type ('k, 'v) conflict = {
  c_fp : ('k * 'v option) array option;  (* None: support unknown, no skips *)
  c_chain : int list;  (* serials of the choice frames forming the structure *)
}

type ('k, 'v) store = {
  tbl : (int, ('k, 'v) entry list) Hashtbl.t;
  mutable entries : int;
}

(* Footprint cap: subproofs consulting more distinct σ-keys than this
   are not cached and never serve as conflicts.  Deliberately small —
   per-read bookkeeping scans the open frame linearly, so the cap
   bounds the constant factor on the search hot path; big subproofs
   overflow early and their frames degrade to a cheap one-bit check. *)
let fp_cap = 48

(* Cached entries per position: the same position can recur under
   incompatible σ contexts, each deserving its own entry; newest-first,
   oldest evicted. *)
let entry_cap = 4

let frame () = { items = []; nitems = 0; over = false; tainted = false }
let taint fr = fr.tainted <- true

let rec find_item k = function
  | [] -> None
  | it :: rest -> if it.ik = k then Some it else find_item k rest

let add_item fr it =
  if fr.nitems >= fp_cap then fr.over <- true
  else begin
    fr.items <- it :: fr.items;
    fr.nitems <- fr.nitems + 1
  end

(* [log_read fr k seen]: the subproof consulted σ(k) and saw [seen].
   Keys already written inside the subproof are internal — their reads
   carry no external constraint.  External keys are single-writer
   within a subproof's lifetime (all writes are logged), so the
   first-seen value is THE value. *)
let log_read fr k seen =
  if not fr.over then
    match find_item k fr.items with
    | Some _ -> ()
    | None -> add_item fr { ik = k; iseen = seen; iwrote = false }

let log_write fr k =
  if not fr.over then
    match find_item k fr.items with
    | Some it -> it.iwrote <- true
    | None -> add_item fr { ik = k; iseen = None; iwrote = true }

(* Child subproof exits: everything it consulted, its parent's subproof
   consulted too.  A key the parent already wrote stays internal to the
   parent regardless of what the child did with it. *)
let merge ~child ~parent =
  if child.tainted then parent.tainted <- true;
  if child.over then parent.over <- true
  else if not parent.over then
    List.iter
      (fun it ->
        if it.iwrote then log_write parent it.ik
        else log_read parent it.ik it.iseen)
      child.items

(* Footprint of a pure refutation: external reads seen assigned.  The
   rest is dropped soundly (see the header).  Tainted frames yield
   nothing: their [false] rests on a backjump, which only proves global
   failure, not subgame falsity. *)
let refutation_fp fr =
  if fr.over || fr.tainted then None
  else
    Some
      (Array.of_list
         (List.filter_map
            (fun it ->
              match (it.iwrote, it.iseen) with
              | false, Some _ -> Some (it.ik, it.iseen)
              | _ -> None)
            fr.items))

(* Footprint of a clean success: exact, every key at its final value —
   writes re-read from the live σ at recording time. *)
let success_fp ~find fr =
  if fr.over then None
  else
    Some
      (Array.of_list
         (List.map
            (fun it ->
              if it.iwrote then (it.ik, find it.ik) else (it.ik, it.iseen))
            fr.items))

let fp_valid ~find fp =
  let n = Array.length fp in
  let rec go i =
    i >= n
    ||
    let k, expect = fp.(i) in
    find k = expect && go (i + 1)
  in
  go 0

type ('k, 'v) outcome =
  | Replay of ('k, 'v) entry
  | Miss of int  (* entries present but footprint/mask-rejected *)

(* First entry whose side condition holds under the current σ and sleep
   mask wins; [Miss r] reports how many candidates were rejected, for
   the [solver.tt.footprint_rejects] accounting. *)
let lookup store ~find ~pos ~mask =
  match Hashtbl.find_opt store.tbl pos with
  | None -> Miss 0
  | Some entries ->
      let rec scan rejected = function
        | [] -> Miss rejected
        | e :: rest ->
            if
              (if e.e_true then e.e_mask land lnot mask = 0 else true)
              && fp_valid ~find e.e_fp
            then Replay e
            else scan (rejected + 1) rest
      in
      scan 0 entries

let record store ~pos entry =
  let cur = Option.value ~default:[] (Hashtbl.find_opt store.tbl pos) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  let kept = take (entry_cap - 1) cur in
  store.entries <- store.entries + 1 + List.length kept - List.length cur;
  Hashtbl.replace store.tbl pos (entry :: kept)

let create () = { tbl = Hashtbl.create 4096; entries = 0 }
let entries store = store.entries
