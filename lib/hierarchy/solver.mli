(** Bounded-protocol consensus solvability by strategy synthesis.

    Decides the exists-protocol / forall-schedules game exactly, for
    protocols in which every process performs at most [depth] operations
    before deciding.  [Unsolvable] is a machine-checked proof that no
    such bounded wait-free consensus protocol exists — the finite
    analogue of the paper's Theorem 2 and Theorem 11 impossibility
    arguments; [Solvable] carries a synthesized protocol. *)

open Wfs_spec
open Wfs_sim

type action = Do of string * Op.t | Decide of int

type instance = {
  env : Env.t;
  n : int;
  depth : int;
  candidates : int -> (string * Op.t) list;
      (** the operation menu per process, honouring per-process
          ownership (channel endpoints, etc.) *)
}

(** One strategy entry: at local view [view] (latest response first),
    process [pid] performs [chosen]. *)
type assignment = { pid : int; view : Value.t; chosen : action }

type verdict =
  | Solvable of assignment list
  | Unsolvable
  | Out_of_budget of { nodes : int }

(** Build an instance over a single object, with the object's menu as the
    candidate set. *)
val of_spec :
  ?extra_candidates:(string * Op.t) list ->
  n:int -> depth:int -> Object_spec.t -> instance

(** Shared solver context: the view/env/position intern arenas and the
    transposition store, reusable across solves of the SAME arity [n] —
    the census threads one context through every depth cell (and every
    candidate initial state) of an (object, n) row, so later solves
    replay subgames classified by earlier ones.  Positions encode
    remaining (not consumed) step budget, which is what makes entries
    transpose across different depth bounds; σ-footprints keep reuse
    sound even though each solve grows a fresh strategy table.  Only
    consulted on the default interned-σ path with [tt] on. *)
module Ctx : sig
  type t

  val create : n:int -> unit -> t

  (** Transposition entries currently held. *)
  val tt_entries : t -> int
end

(** [solve inst] runs the search.  [prune_agreement] (default true) fails
    conflicting decisions at decide time instead of at terminal states —
    the ablation measured in the benchmarks.  [intern_views] (default
    true) keys the strategy table by interned view ids
    ([Wfs_sim.Intern], full-depth hashing) instead of raw
    [(pid, view)] values — identical verdicts and synthesized
    strategies, faster lookups on deep views; [false] is the reference
    path used by differential tests and the PERF benchmarks.

    [por] (default true) enables sleep-set pruning of scheduler
    branches dominated under the semantic independence relation
    ({!Wfs_sim.Independence}): a schedule moving a slept process is a
    transposition of an already-verified sibling schedule, so the game
    value is unchanged — identical verdicts and synthesized strategies,
    far fewer nodes.

    [tt] (default true) enables the transposition table with
    σ-footprint-validated no-good learning ({!Tt}): subgame verdicts
    are cached at canonicalized positions and replayed when the current
    partial strategy agrees with the σ-entries the recorded subproof
    actually consulted, and conflict analysis backjumps past
    existential choice points a refutation never touched — identical
    verdicts and synthesized strategies, far fewer nodes.  [ctx]
    (requires [tt] and the default [intern_views]; must match the
    instance's [n]) shares arenas and the transposition store across
    solves, as the census does per row.

    Node counts differ across [por]/[tt] settings, so [Out_of_budget]
    instances may become conclusive; [por:false] with [tt:false]
    reproduces the historical search node for node.

    Each run feeds [solver.runs], [solver.nodes],
    [solver.cutoff.sleep], the [solver.tt.hits] /
    [solver.tt.misses] / [solver.tt.footprint_rejects] /
    [solver.tt.backjumps] family and (interned path)
    [solver.view_intern.hits] / [solver.view_intern.lookups] /
    [solver.view_intern.arena_size] in the default [Wfs_obs.Metrics]
    registry. *)
val solve :
  ?max_nodes:int ->
  ?prune_agreement:bool ->
  ?intern_views:bool ->
  ?por:bool ->
  ?tt:bool ->
  ?ctx:Ctx.t ->
  instance ->
  verdict

(** As {!solve}, also returning the number of search nodes explored. *)
val solve_with_stats :
  ?max_nodes:int ->
  ?prune_agreement:bool ->
  ?intern_views:bool ->
  ?por:bool ->
  ?tt:bool ->
  ?ctx:Ctx.t ->
  instance ->
  verdict * int

val pp_action : action Fmt.t
val pp_assignment : assignment Fmt.t
val pp_verdict : verdict Fmt.t
