(* A measured census of the object zoo: for every object, ask the
   bounded-protocol solver directly — "is 2-process consensus solvable
   within d operations per process?  3-process?" — and combine the
   verdicts into a bounded estimate of the object's consensus number.

   This is Figure 1-1 *derived from the solver alone*, with no
   protocol-specific knowledge: solvable instances come with synthesized
   protocols, unsolvable ones with exhaustive-search proofs.  Bounded
   depth means a negative verdict is "no ≤ d-op protocol", not a full
   impossibility — the [interpretation] field is explicit about which
   claims are bounded.

   An implementation is free to INITIALIZE its objects: the paper's
   queue protocol pre-loads two items.  The census therefore quantifies
   over initial states reachable within two menu operations — an empty
   queue admits no 2-op 2-process protocol, but the state [a; b] does,
   and it is the census that discovers the pre-loading trick. *)

open Wfs_spec

type outcome = Solvable | Unsolvable | Budget

let outcome_of = function
  | Solver.Solvable _ -> Solvable
  | Solver.Unsolvable -> Unsolvable
  | Solver.Out_of_budget _ -> Budget

type measurement = {
  object_name : string;
  menu_size : int;
  inits_tried : int;  (** candidate initial states examined *)
  two_proc : outcome * int;  (** verdict and total nodes at n = 2 *)
  three_proc : outcome * int;  (** verdict and total nodes at n = 3 *)
  winning_init2 : Value.t option;  (** an initialization that solves n = 2 *)
  winning_init3 : Value.t option;
  depth2 : int;
  depth3 : int;
  interpretation : string;
}

let interpret ~depth2 ~depth3 two three =
  match (two, three) with
  | Unsolvable, Unsolvable ->
      Fmt.str "consensus number 1 (no ≤%d-op protocol even for 2)" depth2
  | Solvable, Unsolvable ->
      Fmt.str "consensus number ≥2; no ≤%d-op protocol for 3" depth3
  | Solvable, Solvable -> "consensus number ≥3"
  | Unsolvable, Solvable -> "inconsistent (impossible)"
  | Budget, _ | _, Budget -> "inconclusive (search budget)"

(* Initial states reachable within two menu operations, the object's own
   initial state first. *)
let candidate_inits ?(max_candidates = 16) (spec : Object_spec.t) =
  let seen = Hashtbl.create 32 in
  Hashtbl.replace seen spec.Object_spec.init ();
  let frontier = ref [ spec.Object_spec.init ] in
  let acc = ref [ spec.Object_spec.init ] in
  for _ = 1 to 2 do
    let next = ref [] in
    List.iter
      (fun state ->
        List.iter
          (fun op ->
            match Object_spec.apply spec state op with
            | state', _ ->
                if not (Hashtbl.mem seen state') then begin
                  Hashtbl.replace seen state' ();
                  next := state' :: !next;
                  acc := state' :: !acc
                end
            | exception Object_spec.Unknown_operation _ -> ())
          spec.Object_spec.menu)
      !frontier;
    frontier := !next
  done;
  let all = List.rev !acc in
  List.filteri (fun i _ -> i < max_candidates) all

(* Solve for one process count, trying each candidate initialization
   until one admits a protocol.  All initializations of a row share one
   solver context (when the transposition layer is on): the initial
   environment state differs per candidate, but deeper subgames
   transpose heavily across them, so later candidates replay verdicts
   the earlier ones paid for. *)
let solve_any_init ?ctx ~n ~depth ~max_nodes ~intern_views ~por ~tt
    (spec : Object_spec.t) inits =
  Wfs_obs.Profile.span ~cat:"census"
    ~args:(fun () ->
      [
        ("object", Wfs_obs.Json.str spec.Object_spec.name);
        ("n", Wfs_obs.Json.int n);
      ])
    "census.solve"
  @@ fun () ->
  let ctx =
    match ctx with
    | Some _ as c -> c
    | None -> if tt && intern_views then Some (Solver.Ctx.create ~n ()) else None
  in
  let rec go total_nodes budget_hit winning = function
    | [] ->
        if budget_hit then ((Budget, total_nodes), winning)
        else ((Unsolvable, total_nodes), winning)
    | init :: rest -> (
        let spec' = { spec with Object_spec.init } in
        let verdict, nodes =
          Solver.solve_with_stats ~max_nodes ~intern_views ~por ~tt ?ctx
            (Solver.of_spec ~n ~depth spec')
        in
        let total_nodes = total_nodes + nodes in
        match outcome_of verdict with
        | Solvable -> ((Solvable, total_nodes), Some init)
        | Unsolvable -> go total_nodes budget_hit winning rest
        | Budget -> go total_nodes true winning rest)
  in
  go 0 false None inits

let assemble ~depth2 ~depth3 (spec : Object_spec.t) inits
    (two_proc, winning_init2) (three_proc, winning_init3) =
  {
    object_name = spec.Object_spec.name;
    menu_size = List.length spec.Object_spec.menu;
    inits_tried = List.length inits;
    two_proc;
    three_proc;
    winning_init2;
    winning_init3;
    depth2;
    depth3;
    interpretation = interpret ~depth2 ~depth3 (fst two_proc) (fst three_proc);
  }

let measure ?(depth2 = 2) ?(depth3 = 1) ?(max_nodes = 20_000_000)
    ?(max_candidates = 16) ?(intern_views = true) ?(por = true) ?(tt = true)
    (spec : Object_spec.t) =
  let inits = candidate_inits ~max_candidates spec in
  let two =
    solve_any_init ~n:2 ~depth:depth2 ~max_nodes ~intern_views ~por ~tt spec
      inits
  in
  let three =
    solve_any_init ~n:3 ~depth:depth3 ~max_nodes ~intern_views ~por ~tt spec
      inits
  in
  assemble ~depth2 ~depth3 spec inits two three

(* The census over the whole zoo.  Objects whose 2-process protocols
   need more than [depth2] operations even from the best initialization
   (e.g. memory-to-memory swap's swap-then-scan) report a bounded
   negative; the protocol-verified table covers those — the census is
   the solver-only view.

   With [pool], the (object, n) solver instances — two per zoo entry —
   become independent pool jobs; every instance allocates its own
   solver tables, so jobs share nothing.  Jobs are issued to the pool
   heaviest-first — instance cost grows steeply with the process count
   and the branching factor (menu × candidate initializations), and a
   heavy job dispatched last leaves every other domain idle behind it —
   then results are inverse-permuted so measurements are reassembled in
   zoo order, making the census output byte-identical to the sequential
   one. *)

(* A cheap static cost proxy for scheduling only: the game tree
   branches on roughly (menu + decide) moves per ply over n·depth
   plies, once per candidate initialization.  Only the relative order
   matters. *)
let job_weight (spec, inits, n, depth) =
  let branch = float_of_int (List.length spec.Object_spec.menu + 1) in
  float_of_int (List.length inits) *. (branch ** float_of_int (n * depth))

let run ?(depth2 = 2) ?(depth3 = 1) ?(max_nodes = 20_000_000)
    ?(intern_views = true) ?(por = true) ?(tt = true) ?pool () =
  let specs = Zoo.all () in
  match pool with
  | Some p when Wfs_sim.Pool.size p > 1 ->
      let jobs =
        Array.of_list
          (List.concat_map
             (fun spec ->
               let inits = candidate_inits spec in
               [ (spec, inits, 2, depth2); (spec, inits, 3, depth3) ])
             specs)
      in
      let order = Array.init (Array.length jobs) (fun i -> i) in
      Array.sort
        (fun i j ->
          match compare (job_weight jobs.(j)) (job_weight jobs.(i)) with
          | 0 -> compare i j
          | c -> c)
        order;
      let results =
        Wfs_sim.Pool.parallel_map p
          (fun i ->
            let spec, inits, n, depth = jobs.(i) in
            (* each job builds its own context inside [solve_any_init]:
               the transposition store is single-domain state *)
            solve_any_init ~n ~depth ~max_nodes ~intern_views ~por ~tt spec
              inits)
          order
      in
      let halves = Array.make (Array.length jobs) results.(0) in
      Array.iteri (fun k i -> halves.(i) <- results.(k)) order;
      List.mapi
        (fun i spec ->
          let spec', inits, _, _ = jobs.(2 * i) in
          assert (spec' == spec);
          assemble ~depth2 ~depth3 spec inits halves.(2 * i)
            halves.((2 * i) + 1))
        specs
  | _ ->
      List.map
        (fun spec ->
          measure ~depth2 ~depth3 ~max_nodes ~intern_views ~por ~tt spec)
        specs

(* Critical depth of an (object, n) row: the least step bound d at
   which n-process consensus is solvable from some candidate
   initialization.  Solvability is MONOTONE in the bound — a protocol
   deciding within d operations per process decides within d' ≥ d — so
   the row is a step function of d and binary search over [1,
   max_depth] finds the threshold in ⌈log₂ max_depth⌉ probes instead
   of max_depth.  All probes share one solver context: positions are
   keyed by REMAINING step budget, so a subgame classified at one
   probe depth replays verbatim at every other. *)

type depth_probe = { probe_depth : int; probe_outcome : outcome; probe_nodes : int }

type critical = {
  critical : int option;
      (* least solvable depth ≤ max_depth, None if the row is
         unsolvable (or inconclusive) throughout *)
  exact : bool;  (* false if a budget-exhausted probe widened the bracket *)
  probes : depth_probe list;  (* in probe order *)
  total_nodes : int;
}

let critical_depth ?(max_nodes = 20_000_000) ?(max_candidates = 16)
    ?(intern_views = true) ?(por = true) ?(tt = true) ~n ~max_depth
    (spec : Object_spec.t) =
  if max_depth < 1 then invalid_arg "Census.critical_depth: max_depth < 1";
  let inits = candidate_inits ~max_candidates spec in
  let ctx =
    if tt && intern_views then Some (Solver.Ctx.create ~n ()) else None
  in
  let probes = ref [] in
  let total = ref 0 in
  let exact = ref true in
  let probe depth =
    let (outcome, nodes), _ =
      solve_any_init ?ctx ~n ~depth ~max_nodes ~intern_views ~por ~tt spec
        inits
    in
    probes := { probe_depth = depth; probe_outcome = outcome; probe_nodes = nodes } :: !probes;
    total := !total + nodes;
    outcome
  in
  let result =
    match probe max_depth with
    | Unsolvable -> None  (* monotone: unsolvable at the cap ⇒ everywhere *)
    | Budget ->
        exact := false;
        None
    | Solvable ->
        (* invariant: solvable at [hi], unsolvable below [lo] *)
        let lo = ref 1 and hi = ref max_depth in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          match probe mid with
          | Solvable -> hi := mid
          | Unsolvable -> lo := mid + 1
          | Budget ->
              (* treat as unsolvable to keep the bracket sound from
                 above; the reported threshold is then only an upper
                 bound *)
              exact := false;
              lo := mid + 1
        done;
        Some !hi
  in
  {
    critical = result;
    exact = !exact;
    probes = List.rev !probes;
    total_nodes = !total;
  }

let pp_outcome ppf = function
  | Solvable -> Fmt.string ppf "solvable"
  | Unsolvable -> Fmt.string ppf "UNSOLVABLE"
  | Budget -> Fmt.string ppf "budget"

let outcome_label = function
  | Solvable -> "solvable"
  | Unsolvable -> "UNSOLVABLE"
  | Budget -> "budget"

let pp_measurement ppf m =
  Fmt.pf ppf
    "%-22s %2d inits   n=2,d=%d: %-10s (%9d nodes)   n=3,d=%d: %-10s (%9d \
     nodes)   %s"
    m.object_name m.inits_tried m.depth2
    (outcome_label (fst m.two_proc))
    (snd m.two_proc) m.depth3
    (outcome_label (fst m.three_proc))
    (snd m.three_proc) m.interpretation

let pp ppf census =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_measurement) census

let pp_probe ppf p =
  Fmt.pf ppf "d=%d: %s (%d nodes)" p.probe_depth
    (outcome_label p.probe_outcome)
    p.probe_nodes

let pp_critical ppf c =
  Fmt.pf ppf "@[<v 2>critical depth: %a%s  (%d nodes total)@ %a@]"
    Fmt.(option ~none:(any "none") int)
    c.critical
    (if c.exact then "" else " (upper bound: budget hit)")
    c.total_nodes
    Fmt.(list ~sep:cut pp_probe)
    c.probes
