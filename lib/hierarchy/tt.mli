(** Footprint-validated transposition entries for the bounded solver.

    The solver caches subgame verdicts at canonicalized positions, but
    the game value of a position is only defined relative to the shared
    mutable strategy table σ.  Each cached entry therefore carries the
    σ-FOOTPRINT its subproof actually consulted, and replays only when
    the current σ agrees with it — dependency-directed memoization, the
    no-good/clause-learning idea of QBF solvers lifted to the
    exists-strategy/forall-schedule game.  See [tt.ml] for the full
    soundness argument (refutation vs. verified entries, the CPS
    success-replay condition, sleep-mask subsumption, and backjumping
    via conflicts).

    The module is generic in the σ-key type ['k] and the action type
    ['v]; both are compared structurally.  It is purely sequential —
    one store per solve (or per shared {!Solver.Ctx}), accessed by one
    domain. *)

(** Footprint accumulator for one open subproof.  Frames mirror the
    search stack: reads/writes log into the innermost open frame, and
    {!merge} folds a completed child into its parent. *)
type ('k, 'v) frame

(** A cached verdict.  [e_fp] maps each consulted σ-key to the value
    the subproof requires ([None] = required unassigned — success
    entries only); [e_mask] is the sleep mask at recording, checked
    (for subsumption) on success replays only. *)
type ('k, 'v) entry = {
  e_true : bool;
  e_mask : int;
  e_fp : ('k * 'v option) array;
}

(** The no-good carried by a [false] currently unwinding the search:
    σ-support of the refutation ([None] = unknown, never skips) plus
    the serials of the choice frames that formed the refuted
    structure. *)
type ('k, 'v) conflict = {
  c_fp : ('k * 'v option) array option;
  c_chain : int list;
}

type ('k, 'v) store

val fp_cap : int
val entry_cap : int

val create : unit -> ('k, 'v) store

(** Total entries currently held (across all positions). *)
val entries : ('k, 'v) store -> int

val frame : unit -> ('k, 'v) frame

(** Mark the open subproof as resting on a backjump: its [false] proves
    global failure only, so {!refutation_fp} will refuse to produce a
    subgame-refutation footprint for it (or for any ancestor it merges
    into).  Successes are unaffected. *)
val taint : ('k, 'v) frame -> unit

(** [log_read fr k seen] / [log_write fr k]: record one σ access in the
    open frame.  Cheap after overflow (single flag test). *)
val log_read : ('k, 'v) frame -> 'k -> 'v option -> unit

val log_write : ('k, 'v) frame -> 'k -> unit

(** Fold a completed child subproof's footprint into its parent's. *)
val merge : child:('k, 'v) frame -> parent:('k, 'v) frame -> unit

(** Footprint of a pure refutation (external assigned reads only), or
    [None] if the frame overflowed. *)
val refutation_fp : ('k, 'v) frame -> ('k * 'v option) array option

(** Exact footprint of a clean success: every consulted key at its
    final value, written keys re-read through [find]. *)
val success_fp :
  find:('k -> 'v option) -> ('k, 'v) frame -> ('k * 'v option) array option

(** Does the current σ still agree with a recorded footprint? *)
val fp_valid : find:('k -> 'v option) -> ('k * 'v option) array -> bool

type ('k, 'v) outcome =
  | Replay of ('k, 'v) entry
  | Miss of int  (** entries present but footprint/mask-rejected *)

val lookup :
  ('k, 'v) store ->
  find:('k -> 'v option) ->
  pos:int ->
  mask:int ->
  ('k, 'v) outcome

(** Record a verdict at a position; keeps the newest {!entry_cap}
    entries per position. *)
val record : ('k, 'v) store -> pos:int -> ('k, 'v) entry -> unit
