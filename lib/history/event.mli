(** Events of a concurrent history (§2.1–§2.3): the object-side
    INVOKE/RESPOND pairs at which linearizability is defined. *)

open Wfs_spec

type t =
  | Invoke of { pid : int; obj : string; op : Op.t }
  | Respond of { pid : int; obj : string; res : Value.t }

val invoke : pid:int -> obj:string -> Op.t -> t
val respond : pid:int -> obj:string -> Value.t -> t
val pid : t -> int
val obj : t -> string
val is_invoke : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t
val show : t -> string
