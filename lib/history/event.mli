(** Events of a concurrent history (§2.1–§2.3): the object-side
    INVOKE/RESPOND pairs at which linearizability is defined. *)

open Wfs_spec

type t =
  | Invoke of { pid : int; obj : string; op : Op.t }
  | Respond of { pid : int; obj : string; res : Value.t }

val invoke : pid:int -> obj:string -> Op.t -> t
val respond : pid:int -> obj:string -> Value.t -> t

(** Distinguished response value recorded for an operation whose
    executor crashed or raised mid-flight (see
    [Wfs_runtime.Recorder.around]).  [History.operations] treats an
    operation completed by this marker as {e pending}: a linearization
    may order it anywhere consistent with its invocation, or drop it —
    the §2 semantics of an operation with no response. *)
val crashed_res : Value.t

(** [is_crashed e] is true iff [e] is a RESPOND carrying
    {!crashed_res}. *)
val is_crashed : t -> bool
val pid : t -> int
val obj : t -> string
val is_invoke : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t
val show : t -> string
