(* Sequential consistency (Lamport 1979), the weaker cousin §2.3
   contrasts with linearizability.

   A history is sequentially consistent w.r.t. a specification if some
   legal sequential history contains the same operations in the same
   PER-PROCESS order — the real-time order between different processes
   is NOT required to be preserved.  The checker below is the
   linearizability search with the precedence relation weakened to
   program order.

   The paper's point — "unlike sequential consistency ... linearizability
   is a local property" — is demonstrated in the test suite: a two-queue
   history can be sequentially consistent per object yet have no global
   witness, whereas per-object linearizability always composes. *)

open Wfs_spec

type verdict = { consistent : bool; witness : History.operation list option }

exception Too_many_operations of int

let max_ops = 62

(* program order: same process, earlier invocation *)
let program_precedes (a : History.operation) (b : History.operation) =
  a.History.pid = b.History.pid && a.History.invoke_at < b.History.invoke_at

let check_object (spec : Object_spec.t) (h : History.t) : verdict =
  let ops = Array.of_list (History.operations h) in
  let n = Array.length ops in
  if n > max_ops then raise (Too_many_operations n);
  let full_mask = if n = 0 then 0 else (1 lsl n) - 1 in
  let failed = Hashtbl.create 251 in
  let minimal mask i =
    let rec go j =
      j >= n
      || ((j = i || mask land (1 lsl j) <> 0
          || not (program_precedes ops.(j) ops.(i)))
         && go (j + 1))
    in
    go 0
  in
  let rec search state mask acc =
    if mask = full_mask then Some (List.rev acc)
    else if Hashtbl.mem failed (state, mask) then None
    else begin
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < n do
        let idx = !i in
        incr i;
        if mask land (1 lsl idx) = 0 && minimal mask idx then begin
          let o = ops.(idx) in
          let state', res = Object_spec.apply spec state o.History.op in
          let ok =
            match o.History.res with
            | Some expected -> Value.equal res expected
            | None -> true
          in
          if ok then
            match search state' (mask lor (1 lsl idx)) (o :: acc) with
            | Some w -> result := Some w
            | None -> ()
        end
      done;
      (if !result = None then
         let rec all_pending j =
           j >= n
           || ((mask land (1 lsl j) <> 0 || History.is_pending ops.(j))
              && all_pending (j + 1))
         in
         if all_pending 0 then result := Some (List.rev acc));
      if !result = None then Hashtbl.replace failed (state, mask) ();
      !result
    end
  in
  match search spec.Object_spec.init 0 [] with
  | Some witness -> { consistent = true; witness = Some witness }
  | None -> { consistent = false; witness = None }

(* Global sequential consistency over several objects: ONE witness
   ordering all operations, program order preserved, each object's spec
   respected.  Not local: per-object success does not imply this. *)
let check_global (env : (string * Object_spec.t) list) (h : History.t) : verdict
    =
  if not (History.well_formed h) then { consistent = false; witness = None }
  else begin
    let ops = Array.of_list (History.operations h) in
    let n = Array.length ops in
    if n > max_ops then raise (Too_many_operations n);
    let full_mask = if n = 0 then 0 else (1 lsl n) - 1 in
    let spec_of obj =
      match List.assoc_opt obj env with
      | Some spec -> spec
      | None ->
          invalid_arg
            (Fmt.str "Sequential_consistency.check_global: no spec for %S" obj)
    in
    let objects = History.objects h in
    let failed = Hashtbl.create 251 in
    let minimal mask i =
      let rec go j =
        j >= n
        || ((j = i || mask land (1 lsl j) <> 0
            || not (program_precedes ops.(j) ops.(i)))
           && go (j + 1))
      in
      go 0
    in
    let encode_states states =
      Value.list (List.map (fun obj -> List.assoc obj states) objects)
    in
    let rec search states mask acc =
      if mask = full_mask then Some (List.rev acc)
      else if Hashtbl.mem failed (encode_states states, mask) then None
      else begin
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let idx = !i in
          incr i;
          if mask land (1 lsl idx) = 0 && minimal mask idx then begin
            let o = ops.(idx) in
            let spec = spec_of o.History.obj in
            let state = List.assoc o.History.obj states in
            let state', res = Object_spec.apply spec state o.History.op in
            let ok =
              match o.History.res with
              | Some expected -> Value.equal res expected
              | None -> true
            in
            if ok then begin
              let states' =
                List.map
                  (fun (obj, s) ->
                    if String.equal obj o.History.obj then (obj, state')
                    else (obj, s))
                  states
              in
              match search states' (mask lor (1 lsl idx)) (o :: acc) with
              | Some w -> result := Some w
              | None -> ()
            end
          end
        done;
        (if !result = None then
           let rec all_pending j =
             j >= n
             || ((mask land (1 lsl j) <> 0 || History.is_pending ops.(j))
                && all_pending (j + 1))
           in
           if all_pending 0 then result := Some (List.rev acc));
        if !result = None then
          Hashtbl.replace failed (encode_states states, mask) ();
        !result
      end
    in
    let initial_states =
      List.map (fun obj -> (obj, (spec_of obj).Object_spec.init)) objects
    in
    match search initial_states 0 [] with
    | Some witness -> { consistent = true; witness = Some witness }
    | None -> { consistent = false; witness = None }
  end

let is_sequentially_consistent spec h = (check_object spec h).consistent
