(** Concurrent histories (§2): event sequences, well-formedness, and the
    operation-interval decomposition used by the linearizability
    checker. *)

open Wfs_spec

type t = Event.t list

(** One operation interval: an invocation, its matching response if any.
    Pending operations have [res = None] and [respond_at = max_int]. *)
type operation = {
  pid : int;
  obj : string;
  op : Op.t;
  res : Value.t option;
  invoke_at : int;
  respond_at : int;
}

val pp : t Fmt.t

(** [project_pid p h] is H | P — the subhistory of process [p]. *)
val project_pid : int -> t -> t

(** [project_obj x h] is H | X — the subhistory of object [x]. *)
val project_obj : string -> t -> t

val objects : t -> string list
val pids : t -> int list

(** A history is well-formed if every process subhistory alternates
    matching INVOKE/RESPOND events starting with an INVOKE (§2.2). *)
val well_formed : t -> bool

val well_formed_for : int -> t -> bool

(** Decompose a well-formed history into operation intervals, in
    invocation order. *)
val operations : t -> operation list

(** [precedes a b] iff [a] responded before [b] was invoked — the
    real-time order every linearization must extend. *)
val precedes : operation -> operation -> bool

val is_pending : operation -> bool

(** [check_sequential spec ops] replays [ops] in order against [spec] and
    checks every completed response. *)
val check_sequential : Object_spec.t -> operation list -> bool
