(* Events of a concurrent history (§2.1-§2.3).

   We record the object-side events — INVOKE(P, op, X) and
   RESPOND(P, res, X) — which is the granularity at which linearizability
   is defined.  The process-side CALL/RETURN pair is symmetric and adds
   nothing to the checker. *)

open Wfs_spec

type t =
  | Invoke of { pid : int; obj : string; op : Op.t }
  | Respond of { pid : int; obj : string; res : Value.t }

let invoke ~pid ~obj op = Invoke { pid; obj; op }
let respond ~pid ~obj res = Respond { pid; obj; res }

(* Distinguished response recorded when the operation's executor died
   (crash-stop) or raised instead of returning.  The linearizability
   decomposition treats an operation that "responded" with this marker
   as pending: it may have taken effect or not, exactly like an
   operation whose response was never recorded. *)
let crashed_res = Value.pair (Value.str "\xe2\x80\xa0") (Value.str "crashed")

let is_crashed = function
  | Respond { res; _ } -> Value.equal res crashed_res
  | Invoke _ -> false

let pid = function Invoke { pid; _ } | Respond { pid; _ } -> pid
let obj = function Invoke { obj; _ } | Respond { obj; _ } -> obj
let is_invoke = function Invoke _ -> true | Respond _ -> false

let equal a b =
  match (a, b) with
  | Invoke a, Invoke b ->
      a.pid = b.pid && String.equal a.obj b.obj && Op.equal a.op b.op
  | Respond a, Respond b ->
      a.pid = b.pid && String.equal a.obj b.obj && Value.equal a.res b.res
  | Invoke _, Respond _ | Respond _, Invoke _ -> false

let pp ppf = function
  | Invoke { pid; obj; op } -> Fmt.pf ppf "P%d INVOKE %s.%a" pid obj Op.pp op
  | Respond { pid; obj; res } ->
      Fmt.pf ppf "P%d RESPOND %s -> %a" pid obj Value.pp res

let show e = Fmt.str "%a" pp e
