(* Linearizability checking (§2.3), in the style of Wing & Gong.

   Given the subhistory of a single object and that object's sequential
   specification, search for a legal sequential history S that (a) extends
   the real-time precedence order of the concurrent history and (b) agrees
   with every completed response.  Pending invocations may be linearized
   (with whatever result the spec gives) or dropped.

   The search is a DFS over "which operation is linearized next", with
   memoization on (specification state, set of already-linearized
   operations).  Linearizability is a local property (the paper cites
   [10]), so a multi-object history is checked object by object. *)

open Wfs_spec

type verdict = { linearizable : bool; witness : History.operation list option }

exception Too_many_operations of int

let max_ops = 62 (* operations per object history tracked in one bitmask *)

let check_object (spec : Object_spec.t) (h : History.t) : verdict =
  let ops = Array.of_list (History.operations h) in
  let n = Array.length ops in
  if n > max_ops then raise (Too_many_operations n);
  let full_mask = if n = 0 then 0 else (1 lsl n) - 1 in
  (* memo: (state, done-mask) -> known failure.  Successes short-circuit
     out of the search, so only failures are cached. *)
  let failed = Hashtbl.create 251 in
  (* [minimal mask i]: no not-yet-linearized operation responded before
     operation [i] was invoked. *)
  let minimal mask i =
    let rec go j =
      j >= n
      || ((j = i || mask land (1 lsl j) <> 0
          || not (History.precedes ops.(j) ops.(i)))
         && go (j + 1))
    in
    go 0
  in
  let rec search state mask acc =
    if mask = full_mask then Some (List.rev acc)
    else if Hashtbl.mem failed (state, mask) then None
    else begin
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < n do
        let idx = !i in
        incr i;
        if mask land (1 lsl idx) = 0 && minimal mask idx then begin
          let o = ops.(idx) in
          let state', res = Object_spec.apply spec state o.History.op in
          let ok =
            match o.History.res with
            | Some expected -> Value.equal res expected
            | None -> true
          in
          if ok then
            match search state' (mask lor (1 lsl idx)) (o :: acc) with
            | Some w -> result := Some w
            | None -> ()
        end
      done;
      (* Alternatively, every remaining operation may be a dropped pending
         invocation. *)
      (if !result = None then
         let rec all_pending j =
           j >= n
           || ((mask land (1 lsl j) <> 0 || History.is_pending ops.(j))
              && all_pending (j + 1))
         in
         if all_pending 0 then result := Some (List.rev acc));
      if !result = None then Hashtbl.replace failed (state, mask) ();
      !result
    end
  in
  match search spec.Object_spec.init 0 [] with
  | Some witness -> { linearizable = true; witness = Some witness }
  | None -> { linearizable = false; witness = None }

(* Check a multi-object history against an environment of specifications,
   object by object (locality). *)
let check (env : (string * Object_spec.t) list) (h : History.t) : verdict =
  if not (History.well_formed h) then { linearizable = false; witness = None }
  else
    let verdicts =
      List.map
        (fun obj ->
          match List.assoc_opt obj env with
          | Some spec -> check_object spec (History.project_obj obj h)
          | None -> invalid_arg (Fmt.str "Linearizability.check: no spec for %S" obj))
        (History.objects h)
    in
    if List.for_all (fun v -> v.linearizable) verdicts then
      { linearizable = true; witness = None }
    else { linearizable = false; witness = None }

let is_linearizable env h = (check env h).linearizable
