(** Sequential consistency — the weaker condition §2.3 contrasts with
    linearizability: a legal sequential witness need only preserve
    per-process program order, not real time.  Unlike linearizability it
    is not a local property (see the test suite's two-queue example). *)

open Wfs_spec

type verdict = { consistent : bool; witness : History.operation list option }

exception Too_many_operations of int

val max_ops : int

(** SC of a single object's subhistory. *)
val check_object : Object_spec.t -> History.t -> verdict

(** Global SC over several objects: one witness for all operations.
    Per-object success does NOT imply this. *)
val check_global : (string * Object_spec.t) list -> History.t -> verdict

val is_sequentially_consistent : Object_spec.t -> History.t -> bool
