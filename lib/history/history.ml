(* Concurrent histories (§2): finite sequences of INVOKE/RESPOND events,
   well-formedness, and the decomposition into operation intervals used by
   the linearizability checker. *)

open Wfs_spec

type t = Event.t list

(* One operation interval extracted from a history: an invocation, its
   matching response if any, and the positions of both events.  A pending
   operation has [res = None] and [respond_at = max_int], so precedence
   comparisons work uniformly. *)
type operation = {
  pid : int;
  obj : string;
  op : Op.t;
  res : Value.t option;
  invoke_at : int;
  respond_at : int;
}

let pp ppf (h : t) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Event.pp) h

let project_pid pid (h : t) = List.filter (fun e -> Event.pid e = pid) h
let project_obj obj (h : t) =
  List.filter (fun e -> String.equal (Event.obj e) obj) h

let objects (h : t) =
  List.sort_uniq String.compare (List.map Event.obj h)

let pids (h : t) = List.sort_uniq Int.compare (List.map Event.pid h)

(* A process subhistory is well-formed if it alternates INVOKE and
   matching RESPOND events, beginning with an INVOKE (§2.2). *)
let well_formed_for pid (h : t) =
  let rec go pending = function
    | [] -> true
    | Event.Invoke { obj; _ } :: rest -> (
        match pending with None -> go (Some obj) rest | Some _ -> false)
    | Event.Respond { obj; _ } :: rest -> (
        match pending with
        | Some pending_obj when String.equal pending_obj obj -> go None rest
        | Some _ | None -> false)
  in
  go None (project_pid pid h)

let well_formed (h : t) = List.for_all (fun p -> well_formed_for p h) (pids h)

(* Decompose a well-formed history into operation intervals, in invocation
   order. *)
let operations (h : t) : operation list =
  let arr = Array.of_list h in
  let n = Array.length arr in
  let ops = ref [] in
  for i = 0 to n - 1 do
    match arr.(i) with
    | Event.Invoke { pid; obj; op } ->
        (* Find the matching response: the first later response by the
           same process on the same object. *)
        let rec find j =
          if j >= n then None
          else
            match arr.(j) with
            | Event.Respond { pid = rpid; obj = robj; res }
              when rpid = pid && String.equal robj obj ->
                Some (j, res)
            | Event.Respond _ | Event.Invoke _ -> find (j + 1)
        in
        let res, respond_at =
          match find (i + 1) with
          (* A crashed-marker response closes the process subhistory
             (well-formedness) but carries no return value: the
             operation may or may not have taken effect, so the checker
             must treat it exactly like one with no response at all. *)
          | Some (_, res) when Value.equal res Event.crashed_res ->
              (None, max_int)
          | Some (j, res) -> (Some res, j)
          | None -> (None, max_int)
        in
        ops := { pid; obj; op; res; invoke_at = i; respond_at } :: !ops
    | Event.Respond _ -> ()
  done;
  List.rev !ops

(* [precedes a b]: operation [a] completed before [b] was invoked — the
   "real-time" order that a linearization must respect. *)
let precedes a b = a.respond_at < b.invoke_at

let is_pending op = Option.is_none op.res

(* A complete (pending-free) sequential witness: apply operations in the
   given order against a spec and check each completed result. *)
let check_sequential (spec : Object_spec.t) (ops : operation list) =
  let rec go state = function
    | [] -> true
    | o :: rest -> (
        let state', result = Object_spec.apply spec state o.op in
        match o.res with
        | Some expected when not (Value.equal result expected) -> false
        | Some _ | None -> go state' rest)
  in
  go spec.Object_spec.init ops
