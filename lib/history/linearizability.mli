(** Linearizability checking (§2.3), Wing-&-Gong style: exhaustive search
    for a legal sequential witness extending the real-time order, with
    memoization on (specification state, linearized set).

    Linearizability is a local property, so multi-object histories are
    checked one object at a time. *)

open Wfs_spec

type verdict = {
  linearizable : bool;
  witness : History.operation list option;
      (** a legal linearization order, when one was produced *)
}

(** Raised when a single object's history has more operations than the
    checker's bitmask can track. *)
exception Too_many_operations of int

val max_ops : int

(** Check the subhistory of a single object against its specification. *)
val check_object : Object_spec.t -> History.t -> verdict

(** Check a multi-object history against an environment of
    specifications.  Ill-formed histories are not linearizable. *)
val check : (string * Object_spec.t) list -> History.t -> verdict

val is_linearizable : (string * Object_spec.t) list -> History.t -> bool
