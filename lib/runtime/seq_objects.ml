(* Ready-made sequential objects for the runtime universal construction:
   the data types the paper proves registers canNOT implement wait-free
   (Corollary 10), here made wait-free via consensus primitives. *)

module Counter = struct
  type state = int
  type op = Incr | Decr | Read
  type res = int

  let init = 0

  let apply state = function
    | Incr -> (state + 1, state + 1)
    | Decr -> (state - 1, state - 1)
    | Read -> (state, state)
end

module Queue_of_int = struct
  (* Batched FIFO queue (front list, reversed back list) so that enq and
     deq are O(1) amortized even through the universal construction. *)
  type state = { front : int list; back : int list }
  type op = Enq of int | Deq
  type res = Enqueued | Deqd of int | Empty

  let init = { front = []; back = [] }

  let apply state = function
    | Enq x -> ({ state with back = x :: state.back }, Enqueued)
    | Deq -> (
        match state.front with
        | x :: front -> ({ state with front }, Deqd x)
        | [] -> (
            match List.rev state.back with
            | [] -> (state, Empty)
            | x :: front -> ({ front; back = [] }, Deqd x)))
end

module Stack_of_int = struct
  type state = int list
  type op = Push of int | Pop
  type res = Pushed | Popped of int | Empty

  let init = []

  let apply state = function
    | Push x -> (x :: state, Pushed)
    | Pop -> (
        match state with
        | x :: rest -> (rest, Popped x)
        | [] -> (state, Empty))
end

module Ledger = struct
  (* A bank ledger: the motivating "database synchronization" shape the
     paper cites for fetch-and-add (Stone), here with multi-account
     transfers that fetch-and-add cannot express atomically. *)
  module Accounts = Map.Make (String)

  type state = int Accounts.t
  type op =
    | Open of string * int  (* account, opening balance *)
    | Deposit of string * int
    | Withdraw of string * int
    | Transfer of { src : string; dst : string; amount : int }
    | Balance of string

  type res =
    | Ok_balance of int
    | Insufficient
    | No_such_account
    | Already_exists

  let init = Accounts.empty

  let apply state = function
    | Open (name, opening) ->
        if Accounts.mem name state then (state, Already_exists)
        else (Accounts.add name opening state, Ok_balance opening)
    | Deposit (name, amount) -> (
        match Accounts.find_opt name state with
        | None -> (state, No_such_account)
        | Some bal ->
            let bal = bal + amount in
            (Accounts.add name bal state, Ok_balance bal))
    | Withdraw (name, amount) -> (
        match Accounts.find_opt name state with
        | None -> (state, No_such_account)
        | Some bal ->
            if bal < amount then (state, Insufficient)
            else (Accounts.add name (bal - amount) state, Ok_balance (bal - amount)))
    | Transfer { src; dst; amount } -> (
        match (Accounts.find_opt src state, Accounts.find_opt dst state) with
        | None, _ | _, None -> (state, No_such_account)
        | Some s, Some d ->
            if s < amount then (state, Insufficient)
            else
              let state =
                Accounts.add src (s - amount) (Accounts.add dst (d + amount) state)
              in
              (state, Ok_balance (s - amount)))
    | Balance name -> (
        match Accounts.find_opt name state with
        | None -> (state, No_such_account)
        | Some bal -> (state, Ok_balance bal))

  let total state = Accounts.fold (fun _ v acc -> acc + v) state 0
end
