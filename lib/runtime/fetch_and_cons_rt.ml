(* Fetch-and-cons on real multicore OCaml, three ways:

   - [Cas_based]: a persistent list under a CAS retry loop.  Lock-free:
     simple and fast, but a loser retries.

   - [Swap_based]: the constant-time construction of Figures 4-3/4-4.
     One atomic exchange threads the new cell; the old head — returned
     by the very same exchange — IS the caller's result, so the
     operation is wait-free in O(1).  Linking the new cell's cdr happens
     right after the swap; a concurrent traverser that arrives in that
     instant spins briefly on the unlinked cdr.

   - [Rounds]: the §4.2 construction — fetch-and-cons from at most n+1
     rounds of consensus per operation (Figure 4-5), the runtime port of
     [Wfs_universal.Consensus_fac].  Wait-free with a bound that depends
     only on n. *)

(* Hot-path metrics, gated by [Wfs_obs.Metrics.hot] (default off: one
   branch per sample point). *)
module M = struct
  open Wfs_obs.Metrics

  let cas_retries = Counter.make "fetch_and_cons_rt.cas.retries"
  let cas_ops = Counter.make "fetch_and_cons_rt.cas.ops"
  let cas_log_length = Gauge.make "fetch_and_cons_rt.cas.log_length"
  let rounds_per_op = Histogram.make "fetch_and_cons_rt.rounds.rounds_per_op"
end

module Cas_based = struct
  type 'a t = 'a list Atomic.t

  let make () = Atomic.make []

  let rec fetch_and_cons t x =
    let old = Atomic.get t in
    if Atomic.compare_and_set t old (x :: old) then begin
      if Wfs_obs.Metrics.hot () then begin
        Wfs_obs.Metrics.Counter.incr M.cas_ops;
        Wfs_obs.Metrics.Gauge.set_max M.cas_log_length (List.length old + 1)
      end;
      old
    end
    else begin
      if Wfs_obs.Metrics.hot () then
        Wfs_obs.Metrics.Counter.incr M.cas_retries;
      fetch_and_cons t x
    end

  let contents = Atomic.get
end

module Swap_based = struct
  type 'a link = Unlinked | Linked of 'a cell option
  and 'a cell = { value : 'a; next : 'a link Atomic.t }

  type 'a t = { anchor : 'a cell option Atomic.t }

  let make () = { anchor = Atomic.make None }

  (* One exchange; the previous head is the result. *)
  let fetch_and_cons_cells t x =
    let cell = { value = x; next = Atomic.make Unlinked } in
    let old = Atomic.exchange t.anchor (Some cell) in
    Atomic.set cell.next (Linked old);
    old

  (* Traverse a chain; a momentarily unlinked cdr means its creator is
     between its exchange and its link — wait for it. *)
  let rec to_list = function
    | None -> []
    | Some cell ->
        let rec follow () =
          match Atomic.get cell.next with
          | Linked rest -> rest
          | Unlinked ->
              Domain.cpu_relax ();
              follow ()
        in
        cell.value :: to_list (follow ())

  let fetch_and_cons t x = to_list (fetch_and_cons_cells t x)
  let contents t = to_list (Atomic.get t.anchor)
end

module Rounds = struct
  type 'a t = {
    n : int;
    equal : 'a -> 'a -> bool;
    announce : 'a option Atomic.t array;
    round : int Atomic.t array;
    prefer : 'a list Atomic.t array;
    cons : int Consensus_rt.Unbounded.t;
  }

  let make ~n ~equal =
    {
      n;
      equal;
      announce = Array.init n (fun _ -> Atomic.make None);
      round = Array.init n (fun _ -> Atomic.make 0);
      prefer = Array.init n (fun _ -> Atomic.make []);
      cons = Consensus_rt.Unbounded.make ();
    }

  (* Per-process handle carrying the local [winner]/[my_round] state the
     Figure 4-5 pseudo-code keeps between calls. *)
  type 'a handle = {
    shared : 'a t;
    pid : int;
    mutable my_round : int;
    mutable winner : int;
  }

  let handle shared ~pid =
    if pid < 0 || pid >= shared.n then
      invalid_arg "Rounds.handle: pid out of range";
    { shared; pid; my_round = 0; winner = pid }

  let mem equal x l = List.exists (equal x) l

  let merge equal ~prefix ~suffix =
    let rec go = function
      | [] -> suffix
      | p :: g -> if mem equal p suffix then go g else p :: go g
    in
    go prefix

  let rec trim equal list x =
    match list with
    | [] -> None
    | y :: rest -> if equal y x then Some rest else trim equal rest x

  (* Figure 4-5, line for line. *)
  let fetch_and_cons h x =
    let t = h.shared in
    Atomic.set t.announce.(h.pid) (Some x);
    (* scan: goal and lastRound *)
    let goal = ref [] and last_round = ref 0 in
    for p = 0 to t.n - 1 do
      (match Atomic.get t.announce.(p) with
      | Some item -> goal := item :: !goal
      | None -> ());
      last_round := max !last_round (Atomic.get t.round.(p))
    done;
    let goal = !goal in
    (* catch-up *)
    if !last_round > h.my_round then
      h.winner <- Consensus_rt.Unbounded.decide t.cons ~round:!last_round h.pid;
    let base = max !last_round h.my_round in
    let result = ref None in
    let r = ref base and iter = ref 1 in
    while !result = None do
      incr r;
      let merged =
        merge t.equal ~prefix:goal ~suffix:(Atomic.get t.prefer.(h.winner))
      in
      Atomic.set t.prefer.(h.pid) merged;
      h.winner <- Consensus_rt.Unbounded.decide t.cons ~round:!r h.pid;
      let adopted = Atomic.get t.prefer.(h.winner) in
      Atomic.set t.prefer.(h.pid) adopted;
      Atomic.set t.round.(h.pid) !r;
      h.my_round <- !r;
      if h.winner = h.pid || !iter >= t.n then
        result :=
          Some
            (match trim t.equal adopted x with
            | Some tail -> tail
            | None ->
                (* Lemma 24: after n rounds x is in the winner's
                   preference; reaching here indicates a broken
                   environment *)
                assert false)
      else incr iter
    done;
    if Wfs_obs.Metrics.hot () then
      (* consensus rounds consumed by this operation (Fig 4-5 bound:
         at most n+1) *)
      Wfs_obs.Metrics.Histogram.observe M.rounds_per_op (!r - base);
    Option.get !result
end
