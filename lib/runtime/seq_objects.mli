(** Ready-made sequential objects for the runtime universal construction
    — the data types Corollary 10 proves registers cannot implement
    wait-free. *)

module Counter : sig
  type state = int
  type op = Incr | Decr | Read
  type res = int

  val init : state
  val apply : state -> op -> state * res
end

(** Batched (front/back) FIFO queue with O(1) amortized operations. *)
module Queue_of_int : sig
  type state = { front : int list; back : int list }
  type op = Enq of int | Deq
  type res = Enqueued | Deqd of int | Empty

  val init : state
  val apply : state -> op -> state * res
end

module Stack_of_int : sig
  type state = int list
  type op = Push of int | Pop
  type res = Pushed | Popped of int | Empty

  val init : state
  val apply : state -> op -> state * res
end

(** A bank ledger with atomic multi-account transfers — the shape of
    "database synchronization" the paper cites for fetch-and-add, but
    beyond fetch-and-add's power. *)
module Ledger : sig
  module Accounts : Map.S with type key = string

  type state = int Accounts.t

  type op =
    | Open of string * int
    | Deposit of string * int
    | Withdraw of string * int
    | Transfer of { src : string; dst : string; amount : int }
    | Balance of string

  type res =
    | Ok_balance of int
    | Insufficient
    | No_such_account
    | Already_exists

  val init : state
  val apply : state -> op -> state * res

  (** Sum of all balances — conserved by transfers. *)
  val total : state -> int
end
