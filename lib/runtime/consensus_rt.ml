(* Consensus objects on real multicore OCaml.

   [One_shot] is the compare-and-swap election of Theorem 7: the first
   process to install its proposal wins and every participant returns
   the winning value.  Wait-free in a handful of instructions.

   [Tas_two] is the Theorem 4 election for two processes from
   test-and-set plus two announcement registers — the hardware analogue
   of the protocol the simulator verifies (and that the bounded solver
   synthesizes). *)

module One_shot = struct
  type 'a t = 'a option Atomic.t

  (* Hot-gated, like every runtime counter: one branch on a plain ref
     when sampling is off.  A retry means the CAS lost to a concurrent
     decider — consensus-round pressure in the universal construction. *)
  let retries = Wfs_obs.Metrics.Counter.make "consensus_rt.one_shot.retries"

  let make () = Atomic.make None

  let rec decide t v =
    match Atomic.get t with
    | Some winner -> winner
    | None ->
        if Atomic.compare_and_set t None (Some v) then v
        else begin
          if Wfs_obs.Metrics.hot () then
            Wfs_obs.Metrics.Counter.incr retries;
          decide t v
        end

  let peek t = Atomic.get t
end

module Tas_two = struct
  type 'a t = {
    flag : Primitives.Test_and_set.t;
    proposals : 'a option Atomic.t array;
  }

  let make () =
    {
      flag = Primitives.Test_and_set.make ();
      proposals = [| Atomic.make None; Atomic.make None |];
    }

  (* [decide t ~pid v] for pid in {0, 1}.  Announce, then race on the
     flag: the winner's proposal is the decision.  The loser may have to
     wait for the winner's announcement to become visible — it already
     happened before the winner's test-and-set, so the read below never
     actually spins; the option forces totality. *)
  let decide t ~pid v =
    if pid < 0 || pid > 1 then invalid_arg "Tas_two.decide: pid must be 0 or 1";
    Atomic.set t.proposals.(pid) (Some v);
    let won = not (Primitives.Test_and_set.test_and_set t.flag) in
    let winner_pid = if won then pid else 1 - pid in
    match Atomic.get t.proposals.(winner_pid) with
    | Some w -> w
    | None ->
        (* unreachable: the winner announced before setting the flag *)
        assert false
end

(* An unbounded array of one-shot consensus objects (the paper's
   [consensus[k]]), grown lock-free in fixed-size chunks. *)
module Unbounded = struct
  let chunk_size = 64

  type 'a chunk = { cells : 'a One_shot.t array; next : 'a chunk option Atomic.t }

  type 'a t = 'a chunk

  let new_chunk () =
    {
      cells = Array.init chunk_size (fun _ -> One_shot.make ());
      next = Atomic.make None;
    }

  let make () = new_chunk ()

  let rec chunk_at t i =
    if i = 0 then t
    else
      let next =
        match Atomic.get t.next with
        | Some c -> c
        | None ->
            let fresh = new_chunk () in
            if Atomic.compare_and_set t.next None (Some fresh) then fresh
            else Option.get (Atomic.get t.next)
      in
      chunk_at next (i - 1)

  let round t k =
    if k < 0 then invalid_arg "Unbounded.round: negative round";
    (chunk_at t (k / chunk_size)).cells.(k mod chunk_size)

  let decide t ~round:k v = One_shot.decide (round t k) v
end
