(** Fetch-and-cons on multicore OCaml: CAS retry loop (lock-free),
    single atomic exchange (Figures 4-3/4-4, wait-free O(1)), and
    consensus rounds (Figure 4-5, wait-free O(n)). *)

(** Persistent list under a CAS loop. *)
module Cas_based : sig
  type 'a t

  val make : unit -> 'a t

  (** Returns the previous contents (the items following the new one). *)
  val fetch_and_cons : 'a t -> 'a -> 'a list

  val contents : 'a t -> 'a list
end

(** The paper's constant-time construction: one [Atomic.exchange] on an
    anchor; the swapped-out head is the result. *)
module Swap_based : sig
  type 'a cell
  type 'a t

  val make : unit -> 'a t

  (** O(1): the exchange itself yields the result chain. *)
  val fetch_and_cons_cells : 'a t -> 'a -> 'a cell option

  (** Materialize a chain (waits out momentarily-unlinked cdrs). *)
  val to_list : 'a cell option -> 'a list

  val fetch_and_cons : 'a t -> 'a -> 'a list
  val contents : 'a t -> 'a list
end

(** Fetch-and-cons from at most n+1 consensus rounds per operation —
    the runtime port of {!Wfs_universal.Consensus_fac}. *)
module Rounds : sig
  type 'a t
  type 'a handle

  (** Items must be pairwise distinct under [equal] (tag them). *)
  val make : n:int -> equal:('a -> 'a -> bool) -> 'a t

  val handle : 'a t -> pid:int -> 'a handle
  val fetch_and_cons : 'a handle -> 'a -> 'a list
end
