(** Deterministic crash-stop fault injection for the multicore runtime.

    Wait-freedom is tolerance of up to [n-1] undetected halting failures
    (§2); the simulator checks that exhaustively
    ([Wfs_sim.Explorer ~crashes]), and this module injects the same
    adversary into real domains: a plan places stalls and permanent
    halts at {e operation boundaries} — the points just before and just
    after a shared-object operation, where a crash-stop failure is
    observable.  Everything is plan-driven and deterministic, so a
    failing stress run replays exactly. *)

(** A fault at the [boundary]-th boundary crossing of process [pid]
    (crossings are numbered from 0; an operation run under {!protect}
    crosses two).  [Stall] delays for [spins] backoff iterations — the
    adversary's "slow process"; [Halt] makes the process permanently
    down: the crossing raises {!Halted}, and so does every later one. *)
type rule =
  | Stall of { pid : int; boundary : int; spins : int }
  | Halt of { pid : int; boundary : int }

(** Raised at a boundary crossing of a halted process; carries the pid.
    Unwind the domain: the process must never take another step.
    [Wfs_runtime.Recorder.around] turns the unwind into a distinguished
    crashed response, leaving the operation pending for the
    linearizability checker. *)
exception Halted of int

(** The injector: per-process boundary counters plus the plan. *)
type t

(** [create ~n plan] validates that every rule names a pid in
    [0..n-1].  Raises [Invalid_argument] otherwise. *)
val create : n:int -> rule list -> t

(** Announce a boundary crossing of [pid]: applies any matching rule.
    Feeds the [fault.boundaries] (hot-gated), [fault.stalls] and
    [fault.halts] metrics.  Raises {!Halted} if [pid] halts here or
    already halted. *)
val boundary : t -> pid:int -> unit

(** [protect t ~pid f] runs [f] bracketed by two {!boundary}
    crossings: a halt at the first models a crash before the
    operation's effect, at the second a crash after the effect but
    before the response — the two faces of a pending operation. *)
val protect : t -> pid:int -> (unit -> 'a) -> 'a

val is_halted : t -> pid:int -> bool

(** Pids halted so far, ascending. *)
val halted : t -> int list

(** {1 Fault-injecting primitive wrappers}

    The operations of {!Primitives}, each bracketed by two boundary
    crossings of the calling process. *)

(** Alias for the injector, for the wrapped-object records. *)
type injector = t

module Register : sig
  type 'a t

  val make : injector -> 'a -> 'a t
  val read : 'a t -> pid:int -> 'a
  val write : 'a t -> pid:int -> 'a -> unit
end

module Test_and_set : sig
  type t

  val make : injector -> t
  val test_and_set : t -> pid:int -> bool
  val read : t -> pid:int -> bool
end

module Fetch_and_add : sig
  type t

  val make : injector -> int -> t
  val fetch_and_add : t -> pid:int -> int -> int
  val read : t -> pid:int -> int
end

module Swap : sig
  type 'a t

  val make : injector -> 'a -> 'a t
  val swap : 'a t -> pid:int -> 'a -> 'a
  val read : 'a t -> pid:int -> 'a
end

module Cas : sig
  type 'a t

  val make : injector -> 'a -> 'a t
  val compare_and_swap : 'a t -> pid:int -> expected:'a -> replacement:'a -> 'a
  val compare_and_set : 'a t -> pid:int -> 'a -> 'a -> bool
  val read : 'a t -> pid:int -> 'a
end

(** {1 Crash-stop stress harness} *)

type stress = {
  n : int;
  halts : int;  (** requested halt count *)
  down : int list;  (** pids actually halted, ascending *)
  survivor_ops : int;  (** operations completed by surviving domains *)
  crashed_ops : int;  (** operations left pending by halted domains *)
  survivors_completed : bool;
      (** every surviving domain ran its full workload *)
  well_formed : bool;  (** the recorded history is well-formed *)
  linearizable : bool;
      (** completed + crashed-pending operations linearize against the
          sequential FIFO spec *)
}

(** Run [n] domains against the wait-free (announce-and-help) universal
    queue, halting domains [0..halts-1] mid-operation — each inside its
    own operation, after the operation's effect but before its response
    (the hardest case for the checker).  Survivors must complete
    [ops_per_proc] operations each (default 7; the total is validated
    against {!Wfs_history.Linearizability.max_ops}).  Raises
    [Invalid_argument] unless [0 <= halts < n]. *)
val stress_queue : ?ops_per_proc:int -> n:int -> halts:int -> unit -> stress

(** All halts landed, survivors completed, history well-formed and
    linearizable. *)
val stress_passed : stress -> bool

val pp_stress : stress Fmt.t
