(* The universal object service: named `lib/spec` objects served by the
   batched + truncating wait-free construction, plus a closed-loop load
   harness.

   This is the "long-lived service" shape of §4's universality theorem:
   a registry of sequential object specifications ([Object_spec.t] —
   queue, counter, map out of the box), each lifted to a linearizable
   wait-free shared object over [Universal_rt.Wait_free].  Because the
   specs speak [Value.t]/[Op.t], one service layer serves every object
   type, and a recorded execution can be fed straight to the
   linearizability checker.

   The load harness drives a service object from many client domains in
   a closed loop (each client issues its next operation as soon as the
   previous one returns) and then *proves* the run linearizable:

   - crash-free runs use the differential check — every operation's
     linearization position is returned by the construction itself
     ([apply_pos]), so sorting the (op, result, position) triples by
     position and replaying them through the sequential [apply] must
     reproduce every result, and the positions must be exactly
     0..total-1;

   - crash runs (halt k of n mid-operation) keep the workload within
     the exhaustive checker's capacity and verify the recorded history
     — crashed operations left pending — with
     [Wfs_history.Linearizability]. *)

open Wfs_spec

module M = struct
  open Wfs_obs.Metrics

  let ops = Counter.make "service.ops"
  let latency_ns = Histogram.make "service.latency_ns"
end

type handle = {
  spec : Object_spec.t;
  apply : pid:int -> Op.t -> Value.t;
  apply_pos : pid:int -> Op.t -> Value.t * int;
  length : unit -> int;
  retained : unit -> int;
  watermark : unit -> int;
  tickets : unit -> int;
  obj_window : int;
}

let seq_of_spec (spec : Object_spec.t) =
  (module struct
    type state = Value.t
    type op = Op.t
    type res = Value.t

    let init = spec.Object_spec.init
    let apply s o = Object_spec.apply spec s o
  end : Universal_rt.SEQ
    with type state = Value.t
     and type op = Op.t
     and type res = Value.t)

let make_handle ?window ?canary ~n spec =
  let module S = (val seq_of_spec spec) in
  let module U = Universal_rt.Wait_free (S) in
  let t = U.create ~label:spec.Object_spec.name ?canary ?window ~n () in
  {
    spec;
    apply = (fun ~pid op -> U.apply t ~pid op);
    apply_pos = (fun ~pid op -> U.apply_pos t ~pid op);
    length = (fun () -> U.length t);
    retained = (fun () -> U.retained t);
    watermark = (fun () -> U.watermark t);
    tickets = (fun () -> U.tickets_issued t);
    obj_window = U.window t;
  }

let default_specs () =
  [ Zoo.queue (); Collections.counter (); Collections.kv_map () ]

type t = { n : int; handles : (string * handle) list }

let create ?window ?canary ~n ?(specs = default_specs ()) () =
  if n <= 0 then invalid_arg "Service.create: n";
  let handles =
    List.map (fun s -> (s.Object_spec.name, make_handle ?window ?canary ~n s)) specs
  in
  (match
     List.find_opt
       (fun (name, _) ->
         List.length (List.filter (fun (n', _) -> n' = name) handles) > 1)
       handles
   with
  | Some (name, _) -> invalid_arg ("Service.create: duplicate object " ^ name)
  | None -> ());
  { n; handles }

let names t = List.map fst t.handles

let find t name =
  match List.assoc_opt name t.handles with
  | Some h -> h
  | None ->
      invalid_arg
        (Fmt.str "Service.find: unknown object %S (have %a)" name
           Fmt.(list ~sep:comma string)
           (names t))

(* --- seeded operation scripts ------------------------------------- *)

(* Deterministic per-client operation streams: client [pid] of a run
   seeded with [seed] always issues the same script, so load runs (and
   their differential verdicts) reproduce exactly. *)
let op_stream ~seed ~pid menu =
  let menu = Array.of_list menu in
  if Array.length menu = 0 then invalid_arg "Service: empty operation menu";
  let rng = Random.State.make [| 0x5eed; seed; pid |] in
  fun () -> menu.(Random.State.int rng (Array.length menu))

(* --- closed-loop load harness ------------------------------------- *)

module Load = struct
  type report = {
    spec_name : string;
    clients : int;
    ops_per_client : int;
    total_ops : int;  (* operations that completed (survivors') *)
    window : int;
    duration_ns : int;
    throughput : float;  (* completed operations per wall second *)
    lat_p50_ns : int;
    lat_p95_ns : int;
    lat_p99_ns : int;
    lat_max_ns : int;
    log_length : int;
    max_retained : int;  (* high-water mark of the sampled window *)
    final_watermark : int;
    halted : int list;
    differential_ok : bool option;  (* crash-free runs *)
    linearizable : bool option;  (* crash runs *)
  }

  let quantile sorted q =
    let len = Array.length sorted in
    if len = 0 then 0
    else sorted.(min (len - 1) (int_of_float (q *. float_of_int len)))

  (* How often each client samples [retained] (a window-bounded walk)
     into its local high-water mark. *)
  let retained_sample_period = 128

  let run_crash_free ~seed ~window ?canary ~clients ~ops_per_client ~spec () =
    let h = make_handle ~window ?canary ~n:clients spec in
    let next_op = Array.init clients (fun pid -> op_stream ~seed ~pid spec.Object_spec.menu) in
    let client pid =
      let ops = Array.make ops_per_client (Op.nullary "nop") in
      let results = Array.make ops_per_client Value.unit in
      let poss = Array.make ops_per_client (-1) in
      let lats = Array.make ops_per_client 0 in
      let max_retained = ref 0 in
      for i = 0 to ops_per_client - 1 do
        let op = next_op.(pid) () in
        let t0 = Wfs_obs.Clock.now_ns () in
        let res, pos = h.apply_pos ~pid op in
        let t1 = Wfs_obs.Clock.now_ns () in
        ops.(i) <- op;
        results.(i) <- res;
        poss.(i) <- pos;
        lats.(i) <- t1 - t0;
        if Wfs_obs.Metrics.hot () then begin
          Wfs_obs.Metrics.Counter.incr M.ops;
          Wfs_obs.Metrics.Histogram.observe M.latency_ns (t1 - t0)
        end;
        if i mod retained_sample_period = 0 then begin
          let r = h.retained () in
          if r > !max_retained then max_retained := r
        end
      done;
      (ops, results, poss, lats, !max_retained)
    in
    let t0 = Wfs_obs.Clock.now_ns () in
    let per_client = Primitives.run_domains clients client in
    let duration_ns = Wfs_obs.Clock.now_ns () - t0 in
    let total = clients * ops_per_client in
    (* differential check: replay in linearization order *)
    let seq = Array.make total None in
    let positions_ok = ref true in
    List.iter
      (fun (ops, results, poss, _, _) ->
        Array.iteri
          (fun i op ->
            let p = poss.(i) in
            if p < 0 || p >= total || seq.(p) <> None then
              positions_ok := false
            else seq.(p) <- Some (op, results.(i)))
          ops)
      per_client;
    let differential_ok =
      !positions_ok
      && begin
           let state = ref spec.Object_spec.init and ok = ref true in
           Array.iter
             (function
               | None -> ok := false
               | Some (op, recorded) ->
                   let state', expected = Object_spec.apply spec !state op in
                   state := state';
                   if not (Value.equal recorded expected) then ok := false)
             seq;
           !ok
         end
    in
    let lats =
      Array.concat (List.map (fun (_, _, _, l, _) -> l) per_client)
    in
    Array.sort compare lats;
    let max_retained =
      List.fold_left (fun acc (_, _, _, _, r) -> max acc r) 0 per_client
    in
    {
      spec_name = spec.Object_spec.name;
      clients;
      ops_per_client;
      total_ops = total;
      window;
      duration_ns;
      throughput =
        (if duration_ns = 0 then 0.
         else float_of_int total /. (float_of_int duration_ns *. 1e-9));
      lat_p50_ns = quantile lats 0.50;
      lat_p95_ns = quantile lats 0.95;
      lat_p99_ns = quantile lats 0.99;
      lat_max_ns = (if Array.length lats = 0 then 0 else lats.(Array.length lats - 1));
      log_length = h.length ();
      max_retained;
      final_watermark = h.watermark ();
      halted = [];
      differential_ok = Some differential_ok;
      linearizable = None;
    }

  (* Crash mode: halt [halts] of the clients mid-operation (after the
     effect boundary — the hard case: a pending operation that DID
     happen) and verify the recorded history exhaustively.  The
     workload must fit the checker ([Linearizability.max_ops]). *)
  let run_with_halts ~seed ~window ?canary ~clients ~ops_per_client ~spec ~halts () =
    if halts >= clients then invalid_arg "Load.run: halts must be < clients";
    if clients * ops_per_client > Wfs_history.Linearizability.max_ops then
      invalid_arg
        (Fmt.str
           "Load.run: crash-mode workload %d exceeds checker capacity %d"
           (clients * ops_per_client)
           Wfs_history.Linearizability.max_ops);
    let h = make_handle ~window ?canary ~n:clients spec in
    let obj = spec.Object_spec.name in
    let next_op = Array.init clients (fun pid -> op_stream ~seed ~pid spec.Object_spec.menu) in
    let inj =
      Fault.create ~n:clients
        (List.init halts (fun k ->
             Fault.Halt { pid = k; boundary = (2 * k) + 1 }))
    in
    let recorder =
      Recorder.create ~capacity:(4 * clients * ops_per_client)
    in
    let client pid =
      let completed = ref 0 and max_retained = ref 0 in
      (try
         for _ = 1 to ops_per_client do
           let op = next_op.(pid) () in
           ignore
             (Recorder.around recorder ~pid ~obj ~op ~encode_res:Fun.id
                (fun () ->
                  Fault.protect inj ~pid (fun () -> h.apply ~pid op)));
           incr completed;
           let r = h.retained () in
           if r > !max_retained then max_retained := r
         done
       with Fault.Halted _ -> ());
      (!completed, !max_retained)
    in
    let t0 = Wfs_obs.Clock.now_ns () in
    let per_client = Primitives.run_domains clients client in
    let duration_ns = Wfs_obs.Clock.now_ns () - t0 in
    let halted = Fault.halted inj in
    let history = Recorder.history recorder in
    let linearizable =
      Wfs_history.History.well_formed history
      && Wfs_history.Linearizability.is_linearizable [ (obj, spec) ] history
    in
    let total_ops =
      List.fold_left (fun acc (c, _) -> acc + c) 0 per_client
    in
    {
      spec_name = obj;
      clients;
      ops_per_client;
      total_ops;
      window;
      duration_ns;
      throughput =
        (if duration_ns = 0 then 0.
         else float_of_int total_ops /. (float_of_int duration_ns *. 1e-9));
      lat_p50_ns = 0;
      lat_p95_ns = 0;
      lat_p99_ns = 0;
      lat_max_ns = 0;
      log_length = h.length ();
      max_retained = List.fold_left (fun acc (_, r) -> max acc r) 0 per_client;
      final_watermark = h.watermark ();
      halted;
      differential_ok = None;
      linearizable = Some linearizable;
    }

  let run ?(seed = 1) ?(window = 32) ?(halts = 0) ?spec ?canary ~clients
      ~ops_per_client () =
    if clients <= 0 then invalid_arg "Load.run: clients";
    if ops_per_client < 0 then invalid_arg "Load.run: ops_per_client";
    (* default to the counter: its state is O(1), so million-op runs
       measure the construction rather than the spec's list churn (the
       queue's Value-list state makes enq-biased random streams
       quadratic) *)
    let spec = match spec with Some s -> s | None -> Collections.counter () in
    if halts = 0 then
      run_crash_free ~seed ~window ?canary ~clients ~ops_per_client ~spec ()
    else
      run_with_halts ~seed ~window ?canary ~clients ~ops_per_client ~spec
        ~halts ()

  (* The checks a run must pass: results replay sequentially (or the
     recorded crash history linearizes), truncation keeps the retained
     window bounded (the transient factor-2 covers an in-flight
     snapshot fill; +1 for the snapshot node itself), and — unless
     nothing ran — the watermark advanced off the origin. *)
  let passed r =
    Option.value ~default:true r.differential_ok
    && Option.value ~default:true r.linearizable
    && r.max_retained <= (2 * r.window) + 1
    && (r.total_ops = 0 || r.final_watermark > 0)

  let pp_report ppf r =
    Fmt.pf ppf
      "@[<v>object=%s clients=%d ops/client=%d total=%d window=%d@ \
       duration=%.3fs throughput=%s ops/s@ \
       latency p50=%s p95=%s p99=%s max=%s@ \
       log length=%d retained<=%d watermark=%d@ halted=[%a]@ \
       differential=%s linearizable=%s@]"
      r.spec_name r.clients r.ops_per_client r.total_ops r.window
      (float_of_int r.duration_ns *. 1e-9)
      (Wfs_obs.Units.rate r.throughput)
      (Wfs_obs.Units.ns r.lat_p50_ns)
      (Wfs_obs.Units.ns r.lat_p95_ns)
      (Wfs_obs.Units.ns r.lat_p99_ns)
      (Wfs_obs.Units.ns r.lat_max_ns)
      r.log_length r.max_retained r.final_watermark
      Fmt.(list ~sep:(any "; ") int)
      r.halted
      (match r.differential_ok with
      | None -> "n/a"
      | Some true -> "ok"
      | Some false -> "FAILED")
      (match r.linearizable with
      | None -> "n/a"
      | Some true -> "ok"
      | Some false -> "FAILED")
end

(* --- open-ended serving ------------------------------------------- *)

type serve_report = {
  served_ops : int;
  serve_duration_ns : int;
  per_object : (string * int) list;  (* final log length per object *)
}

(* Drive every object of a fresh service round-robin from [clients]
   domains until the deadline; the point is to hold the service under
   load while the sampler exports live metrics (`wfs serve` + `wfs
   top`), so nothing is recorded per-operation beyond the metrics. *)
let serve ?(seed = 1) ?window ?canary ?specs ~clients ~duration_s () =
  if clients <= 0 then invalid_arg "Service.serve: clients";
  let t = create ?window ?canary ~n:clients ?specs () in
  let handles = Array.of_list (List.map snd t.handles) in
  let deadline =
    Wfs_obs.Clock.now_ns () + int_of_float (duration_s *. 1e9)
  in
  let client pid =
    let streams =
      Array.map (fun h -> op_stream ~seed ~pid h.spec.Object_spec.menu) handles
    in
    let count = ref 0 in
    while Wfs_obs.Clock.now_ns () < deadline do
      let k = !count mod Array.length handles in
      let op = streams.(k) () in
      let t0 = Wfs_obs.Clock.now_ns () in
      ignore (handles.(k).apply ~pid op);
      if Wfs_obs.Metrics.hot () then begin
        Wfs_obs.Metrics.Counter.incr M.ops;
        Wfs_obs.Metrics.Histogram.observe M.latency_ns
          (Wfs_obs.Clock.now_ns () - t0)
      end;
      incr count
    done;
    !count
  in
  let t0 = Wfs_obs.Clock.now_ns () in
  let counts = Primitives.run_domains clients client in
  {
    served_ops = List.fold_left ( + ) 0 counts;
    serve_duration_ns = Wfs_obs.Clock.now_ns () - t0;
    per_object = List.map (fun (name, h) -> (name, h.length ())) t.handles;
  }
