(** Consensus objects on multicore OCaml. *)

(** Single-shot n-process consensus from compare-and-swap (Theorem 7):
    first proposal installed wins; every caller returns the winner. *)
module One_shot : sig
  type 'a t

  val make : unit -> 'a t
  val decide : 'a t -> 'a -> 'a
  val peek : 'a t -> 'a option
end

(** Two-process consensus from test-and-set (Theorem 4). *)
module Tas_two : sig
  type 'a t

  val make : unit -> 'a t

  (** [decide t ~pid v] with [pid] in [{0, 1}]. *)
  val decide : 'a t -> pid:int -> 'a -> 'a
end

(** The paper's unbounded [consensus[k]] array, grown lock-free in
    chunks. *)
module Unbounded : sig
  type 'a t

  val make : unit -> 'a t
  val round : 'a t -> int -> 'a One_shot.t
  val decide : 'a t -> round:int -> 'a -> 'a
end
