(* Lamport's single-enqueuer / single-dequeuer wait-free queue (§3.3).

   The paper's Corollary 10 forbids a wait-free MULTI-consumer queue
   from read/write registers; §3.3 points out the positive boundary:
   Lamport's queue supports ONE enqueuing process concurrent with ONE
   dequeuing process, from registers alone.  This is that construction:
   a bounded ring with two counters, [head] written only by the
   dequeuer, [tail] written only by the enqueuer — single-writer
   registers, the weakest rung of Figure 1-1.

   Theorem 2 implies this cannot be extended to two concurrent dequeuers
   without stronger primitives; [test_runtime] exercises the legal
   1P/1C regime. *)

type 'a t = {
  buffer : 'a option Atomic.t array;
  head : int Atomic.t;  (* next slot to read; written by the dequeuer *)
  tail : int Atomic.t;  (* next slot to write; written by the enqueuer *)
  mask : int;
}

(* Largest supported capacity.  Above the largest representable power
   of two, the doubling loop below would wrap negative and never
   terminate; 2^30 slots is already far beyond anything the harnesses
   allocate, so we refuse rather than round. *)
let max_capacity = 1 lsl 30

let create ~capacity =
  if capacity <= 0 || capacity > max_capacity then
    invalid_arg
      (Printf.sprintf "Lamport_queue.create: capacity %d not in [1, %d]"
         capacity max_capacity);
  (* round up to a power of two for cheap wrap-around *)
  let rec pow2 c = if c >= capacity then c else pow2 (c * 2) in
  let size = pow2 1 in
  {
    buffer = Array.init size (fun _ -> Atomic.make None);
    head = Atomic.make 0;
    tail = Atomic.make 0;
    mask = size - 1;
  }

let capacity t = t.mask + 1

(* Read [head] before [tail] (OCaml evaluates the subtraction's
   operands right to left).  For the enqueuer this is exact: it owns
   [tail], and [head] only grows, so the difference is a lower bound on
   free space.  Symmetrically it is exact for the dequeuer.  A
   third-party observer may see a stale [head] against a fresh [tail]
   and over-estimate the length, but never sees a negative value:
   reading [head] first means any concurrent dequeues completed after
   the read only make the true length smaller than reported. *)
let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
let is_full t = length t > t.mask

(* Enqueuer side only.  Returns false when full (total, never blocks). *)
let enqueue t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    Atomic.set t.buffer.(tail land t.mask) (Some x);
    Atomic.set t.tail (tail + 1);
    true
  end

(* Dequeuer side only.  Returns None when empty. *)
let dequeue t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None
  else begin
    let slot = t.buffer.(head land t.mask) in
    let x = Atomic.get slot in
    Atomic.set slot None;
    Atomic.set t.head (head + 1);
    x
  end
