(* Deterministic crash-stop fault injection for the multicore runtime.

   Wait-freedom is, by definition, tolerance of up to n-1 undetected
   halting failures (§2); the simulator quantifies over those crashes
   exhaustively ([Wfs_sim.Explorer ~crashes]), and this module injects
   the same adversary into real domains.  A *plan* places faults at
   *operation boundaries* — the instants just before and just after a
   shared-object operation executes, which are exactly the points where
   a crash-stop failure is observable: halting strictly inside an atomic
   primitive is indistinguishable from halting at one of its boundaries.

   Faults are plan-driven and deterministic: the k-th boundary crossing
   of process [pid] either stalls (a long but finite delay, the
   "slow process" the adversary uses in the paper's proofs) or halts
   permanently (the process never takes another step — [Halted] unwinds
   its domain).  Nothing here is randomized, so stress failures replay
   exactly. *)

type rule =
  | Stall of { pid : int; boundary : int; spins : int }
  | Halt of { pid : int; boundary : int }

exception Halted of int

type t = {
  counters : int Atomic.t array;  (* boundary crossings, per pid *)
  down : bool Atomic.t array;  (* permanently halted? *)
  plan : rule list array;  (* rules, indexed by pid *)
}

module M = struct
  open Wfs_obs.Metrics

  let boundaries = Counter.make "fault.boundaries"
  let stalls = Counter.make "fault.stalls"
  let halts = Counter.make "fault.halts"
end

let rule_pid = function Stall { pid; _ } | Halt { pid; _ } -> pid

let create ~n plan =
  if n <= 0 then invalid_arg "Fault.create: n";
  List.iter
    (fun r ->
      let pid = rule_pid r in
      if pid < 0 || pid >= n then
        invalid_arg (Printf.sprintf "Fault.create: rule names pid %d" pid))
    plan;
  {
    counters = Array.init n (fun _ -> Atomic.make 0);
    down = Array.init n (fun _ -> Atomic.make false);
    plan = Array.init n (fun pid -> List.filter (fun r -> rule_pid r = pid) plan);
  }

let is_halted t ~pid = Atomic.get t.down.(pid)

let halted t =
  Array.to_list t.down
  |> List.mapi (fun pid d -> (pid, Atomic.get d))
  |> List.filter_map (fun (pid, d) -> if d then Some pid else None)

let boundary t ~pid =
  (* once down, always down: a crashed process re-entering is a bug in
     the harness, not a second chance *)
  if Atomic.get t.down.(pid) then raise (Halted pid);
  let b = Atomic.fetch_and_add t.counters.(pid) 1 in
  if Wfs_obs.Metrics.hot () then Wfs_obs.Metrics.Counter.incr M.boundaries;
  List.iter
    (function
      | Stall { boundary; spins; _ } when boundary = b ->
          Wfs_obs.Metrics.Counter.incr M.stalls;
          for _ = 1 to spins do
            Domain.cpu_relax ()
          done
      | Halt { boundary; _ } when boundary = b ->
          Wfs_obs.Metrics.Counter.incr M.halts;
          Atomic.set t.down.(pid) true;
          raise (Halted pid)
      | Stall _ | Halt _ -> ())
    t.plan.(pid)

(* Two boundaries per operation: a halt at the first models a crash
   before the operation took effect, at the second a crash after the
   effect but before the response was delivered — the two faces of a
   pending operation in the crash-stop model. *)
let protect t ~pid f =
  boundary t ~pid;
  let r = f () in
  boundary t ~pid;
  r

(* --- fault-injecting wrappers over the primitives ---

   Same operations as [Primitives], with every operation bracketed by
   {!boundary} crossings of the calling process.  The underlying
   hardware operation itself stays the plain [Atomic] one. *)

type injector = t

module Register = struct
  type 'a t = { p : 'a Primitives.Register.t; inj : injector }

  let make inj v = { p = Primitives.Register.make v; inj }
  let read t ~pid = protect t.inj ~pid (fun () -> Primitives.Register.read t.p)

  let write t ~pid v =
    protect t.inj ~pid (fun () -> Primitives.Register.write t.p v)
end

module Test_and_set = struct
  type t = { p : Primitives.Test_and_set.t; inj : injector }

  let make inj = { p = Primitives.Test_and_set.make (); inj }

  let test_and_set t ~pid =
    protect t.inj ~pid (fun () -> Primitives.Test_and_set.test_and_set t.p)

  let read t ~pid =
    protect t.inj ~pid (fun () -> Primitives.Test_and_set.read t.p)
end

module Fetch_and_add = struct
  type t = { p : Primitives.Fetch_and_add.t; inj : injector }

  let make inj init = { p = Primitives.Fetch_and_add.make init; inj }

  let fetch_and_add t ~pid k =
    protect t.inj ~pid (fun () -> Primitives.Fetch_and_add.fetch_and_add t.p k)

  let read t ~pid =
    protect t.inj ~pid (fun () -> Primitives.Fetch_and_add.read t.p)
end

module Swap = struct
  type 'a t = { p : 'a Primitives.Swap.t; inj : injector }

  let make inj v = { p = Primitives.Swap.make v; inj }
  let swap t ~pid v = protect t.inj ~pid (fun () -> Primitives.Swap.swap t.p v)
  let read t ~pid = protect t.inj ~pid (fun () -> Primitives.Swap.read t.p)
end

module Cas = struct
  type 'a t = { p : 'a Primitives.Cas.t; inj : injector }

  let make inj v = { p = Primitives.Cas.make v; inj }

  let compare_and_swap t ~pid ~expected ~replacement =
    protect t.inj ~pid (fun () ->
        Primitives.Cas.compare_and_swap t.p ~expected ~replacement)

  let compare_and_set t ~pid expected replacement =
    protect t.inj ~pid (fun () ->
        Primitives.Cas.compare_and_set t.p expected replacement)

  let read t ~pid = protect t.inj ~pid (fun () -> Primitives.Cas.read t.p)
end

(* --- crash-stop stress harness ---

   [k] of [n] domains halt mid-operation against the wait-free
   (announce-and-help) universal queue; the survivors must complete
   every operation, and the recorded history — completed operations
   plus the crashed ones left pending by [Recorder.around] — must still
   linearize against the sequential FIFO spec. *)

module WQ = Universal_rt.Wait_free (Seq_objects.Queue_of_int)

type stress = {
  n : int;
  halts : int;  (* requested halt count *)
  down : int list;  (* pids actually halted, ascending *)
  survivor_ops : int;  (* operations completed by surviving domains *)
  crashed_ops : int;  (* operations left pending by halted domains *)
  survivors_completed : bool;  (* every survivor ran its full workload *)
  well_formed : bool;
  linearizable : bool;
}

let stress_queue ?(ops_per_proc = 7) ~n ~halts () =
  if halts < 0 || halts >= n then invalid_arg "Fault.stress_queue: halts";
  if n * ops_per_proc > Wfs_history.Linearizability.max_ops then
    invalid_arg "Fault.stress_queue: workload exceeds checker capacity";
  let open Wfs_spec in
  (* halt pid h inside its (h+1)-th operation, after the operation's
     effect (odd boundary): the hardest case for the checker, a pending
     operation that DID happen *)
  let inj =
    create ~n
      (List.init halts (fun h -> Halt { pid = h; boundary = (2 * h) + 1 }))
  in
  let q = WQ.create ~n () in
  let recorder = Recorder.create ~capacity:(4 * n * ops_per_proc) in
  let run pid =
    let completed = ref 0 in
    (try
       for i = 0 to ops_per_proc - 1 do
         let enq = i land 1 = 0 in
         let item = (pid * 100) + i in
         let op, seq_op, encode_res =
           if enq then
             ( Queues.enq (Value.int item),
               Seq_objects.Queue_of_int.Enq item,
               fun _ -> Value.unit )
           else
             ( Queues.deq,
               Seq_objects.Queue_of_int.Deq,
               function
               | Seq_objects.Queue_of_int.Deqd x -> Value.int x
               | _ -> Queues.empty_result )
         in
         ignore
           (Recorder.around recorder ~pid ~obj:"q" ~op ~encode_res (fun () ->
                protect inj ~pid (fun () -> WQ.apply q ~pid seq_op)));
         incr completed
       done
     with Halted _ -> ());
    !completed
  in
  let completed = Primitives.run_domains n run in
  let down = halted inj in
  let history = Recorder.history recorder in
  let ops = Wfs_history.History.operations history in
  let crashed_ops =
    List.length (List.filter Wfs_history.History.is_pending ops)
  in
  let survivors_completed =
    List.mapi (fun pid c -> (pid, c)) completed
    |> List.for_all (fun (pid, c) ->
           List.mem pid down || c = ops_per_proc)
  in
  let spec = Queues.fifo ~name:"q" ~items:[] () in
  {
    n;
    halts;
    down;
    survivor_ops =
      List.fold_left ( + ) 0
        (List.filteri (fun pid _ -> not (List.mem pid down)) completed);
    crashed_ops;
    survivors_completed;
    well_formed = Wfs_history.History.well_formed history;
    linearizable =
      Wfs_history.Linearizability.is_linearizable [ ("q", spec) ] history;
  }

let stress_passed s =
  s.survivors_completed && s.well_formed && s.linearizable
  && List.length s.down = s.halts

let pp_stress ppf s =
  Fmt.pf ppf
    "@[<v>n=%d halts=%d down=[%a]@ survivor ops=%d crashed ops=%d@ \
     survivors-completed=%b well-formed=%b linearizable=%b@]"
    s.n s.halts
    Fmt.(list ~sep:(any "; ") int)
    s.down s.survivor_ops s.crashed_ops s.survivors_completed s.well_formed
    s.linearizable
