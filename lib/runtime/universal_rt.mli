(** The universal construction on multicore OCaml: any sequential object
    made linearizable and lock-free / wait-free from compare-and-swap
    (§4, Theorem 26's practical payoff). *)

module type SEQ = sig
  type state
  type op
  type res

  val init : state
  val apply : state -> op -> state * res
end

module type S = sig
  type t
  type op
  type res

  val create : unit -> t
  val apply : t -> op -> res
end

(** Snapshot-node CAS log: zero replay, lock-free. *)
module Lock_free (Seq : SEQ) : sig
  type t
  type op = Seq.op
  type res = Seq.res

  val create : unit -> t
  val apply : t -> op -> res

  (** Number of operations applied so far. *)
  val length : t -> int

  (** Current abstract state (linearizes at the read of the head). *)
  val read : t -> Seq.state
end

(** Announce-and-help universal object (Herlihy), upgraded for sustained
    service traffic: every consensus round threads a {e batch} node
    carrying all currently-announced invocations (helping amortizes
    across clients; a per-invocation claim consensus guarantees
    exactly-once application), and the log is truncated behind periodic
    state snapshots — the paper's §4.1 strongly-wait-free variant — so
    at most [window] nodes stay reachable.  Every operation still
    completes within a bounded number of rounds even if its process
    stalls: Herlihy's deterministic helping remains as the fallback for
    starving invocations. *)
module Wait_free (Seq : SEQ) : sig
  type t
  type op = Seq.op
  type res = Seq.res

  (** [create ?label ?canary ?window ~n ()] builds an object for
      processes [0..n-1]; every [window]-th log node (default 32)
      carries a state snapshot and severs the log behind it.

      [label] names the object in causal trace events (default
      ["universal"]); when {!Wfs_obs.Causal} is enabled at creation the
      object registers its [n] and audited own-step bound
      ({!Wfs_obs.Causal.step_bound}) for the wait-freedom auditor.

      [canary > 0] (meaningful only while causal tracing is enabled)
      routes every [canary]-th ticket through the announce + help slow
      path with a short bounded park after announcing, so a concurrent
      client's collect threads it — guaranteeing recorded cross-client
      help edges even on machines where domains time-slice and the
      fast path never loses a race.  Canary invocations are
      force-sampled; [0] (the default) disables the canary and leaves
      the hot path untouched. *)
  val create : ?label:string -> ?canary:int -> ?window:int -> n:int -> unit -> t

  (** [apply t ~pid op]; [pid] must be in [0..n-1] and unique per
      concurrent caller. *)
  val apply : t -> pid:int -> op -> res

  (** Like {!apply}, also returning the operation's position in the
      linearization order (0-based); feeding every completed
      operation's [(op, res, pos)] to a sequential replay is the
      differential check used by the tests and the load harness. *)
  val apply_pos : t -> pid:int -> op -> res * int

  (** Operations threaded so far (= {!Lock_free.length} for the same
      history). *)
  val length : t -> int

  (** Current abstract state (linearizes at the read of the frontier). *)
  val read : t -> Seq.state

  (** Log nodes still reachable behind the frontier — stays within the
      truncation window (transiently up to twice that while a snapshot
      fill is in flight). *)
  val retained : t -> int

  (** §4.1 reclamation watermark: the oldest log position an in-flight
      operation announced at (the frontier position when idle).  No
      process can still reference a node below it. *)
  val watermark : t -> int

  (** Announce tickets issued by this object (a per-object counter —
      two objects issue independent tickets). *)
  val tickets_issued : t -> int

  val window : t -> int
end

(** Herlihy's original one-invocation-per-node algorithm, kept as the
    measured baseline for the batched {!Wait_free}. *)
module Wait_free_unbatched (Seq : SEQ) : sig
  type t
  type op = Seq.op
  type res = Seq.res

  val create : n:int -> t
  val apply : t -> pid:int -> op -> res

  (** Operations threaded so far (highest published node position). *)
  val length : t -> int

  val tickets_issued : t -> int
end

(** Mutex baseline — the locking discipline the paper's introduction
    argues against. *)
module Locked (Seq : SEQ) : sig
  type t
  type op = Seq.op
  type res = Seq.res

  val create : unit -> t
  val apply : t -> op -> res
  val read : t -> Seq.state
end
