(** The universal construction on multicore OCaml: any sequential object
    made linearizable and lock-free / wait-free from compare-and-swap
    (§4, Theorem 26's practical payoff). *)

module type SEQ = sig
  type state
  type op
  type res

  val init : state
  val apply : state -> op -> state * res
end

module type S = sig
  type t
  type op
  type res

  val create : unit -> t
  val apply : t -> op -> res
end

(** Snapshot-node CAS log: zero replay, lock-free. *)
module Lock_free (Seq : SEQ) : sig
  type t
  type op = Seq.op
  type res = Seq.res

  val create : unit -> t
  val apply : t -> op -> res

  (** Number of operations applied so far. *)
  val length : t -> int

  (** Current abstract state (linearizes at the read of the head). *)
  val read : t -> Seq.state
end

(** Announce-and-help universal object (Herlihy): every operation
    completes within a bounded number of rounds even if its process
    stalls — strongly wait-free. *)
module Wait_free (Seq : SEQ) : sig
  type t
  type op = Seq.op
  type res = Seq.res

  val create : n:int -> t

  (** [apply t ~pid op]; [pid] must be in [0..n-1] and unique per
      concurrent caller. *)
  val apply : t -> pid:int -> op -> res
end

(** Mutex baseline — the locking discipline the paper's introduction
    argues against. *)
module Locked (Seq : SEQ) : sig
  type t
  type op = Seq.op
  type res = Seq.res

  val create : unit -> t
  val apply : t -> op -> res
  val read : t -> Seq.state
end
