(* The universal construction on real multicore OCaml.

   Given any sequential object (pure [apply] on an immutable state), we
   build linearizable wait-free/lock-free shared versions of it — the
   practical payoff of §4: "a machine architecture is powerful enough to
   support arbitrary wait-free synchronization iff it provides a
   universal object".  OCaml's [Atomic] provides compare-and-swap, which
   Theorem 7 places at the top of the hierarchy, so everything below is
   built from it.

   Four constructions over the same signature:

   - [Lock_free]: the log head is a snapshot node (state + result); an
     operation replays nothing — it CASes a fresh node carrying the new
     state.  Lock-free: a loser retries, but some operation always
     completes.  (This is the paper's fetch-and-cons log with the
     truncation of §4.1 taken to its limit: every node carries its
     state, so replay cost is 0.)

   - [Wait_free]: the service-grade construction.  Announce-and-help as
     in Herlihy's universal algorithm, with two §4-motivated upgrades:
     each consensus round threads a *batch* node carrying every
     currently-announced invocation (helping amortizes across clients),
     and the log is *truncated* behind periodic state snapshots (§4.1's
     strongly-wait-free variant) so memory stays bounded under
     sustained traffic.

   - [Wait_free_unbatched]: Herlihy's original one-invocation-per-node
     algorithm, kept as the comparison point for the batched version
     (and as the reference implementation of the helping argument).

   - [Locked]: the mutex baseline the introduction argues against: a
     page fault / preemption inside the critical section stalls
     everyone.  Used by the benchmarks as the comparison point. *)

module type SEQ = sig
  type state
  type op
  type res

  val init : state
  val apply : state -> op -> state * res
end

module type S = sig
  type t
  type op
  type res

  val create : unit -> t
  val apply : t -> op -> res
end

(* Hot-path metrics.  Every sample sits behind [Metrics.hot ()] — one
   branch on a plain ref when sampling is off — so benchmark numbers
   stay comparable with uninstrumented builds.  None of the wait-free
   samples below does work proportional to [n] per *operation*, and
   none costs even a fetch-and-add per operation when hot: counters and
   stats are published at sampled log positions by the unique frontier
   advancer (see [fill]), the O(n)/O(window) scans (watermark,
   retained) only every 16th snapshot, and announce occupancy
   piggybacks on the collect scan the slow path performs anyway.  The
   `profile/wait-free-metrics` bench pair patrols the total hot tax
   (budget ≤5%). *)
module M = struct
  open Wfs_obs.Metrics

  let lf_ops = Counter.make "universal_rt.lock_free.ops"
  let lf_cas_retries = Counter.make "universal_rt.lock_free.cas_retries"
  let lf_apply_ns = Histogram.make "universal_rt.lock_free.apply_ns"
  let lf_log_length = Gauge.make "universal_rt.lock_free.log_length"
  let wf_ops = Counter.make "universal_rt.wait_free.ops"
  let wf_help_rounds = Counter.make "universal_rt.wait_free.help_rounds"

  (* per-operation distribution of help rounds: the p50/p99 `wfs top`
     renders as the live health of the helping protocol *)
  let wf_help_rounds_hist =
    Histogram.make "universal_rt.wait_free.help_rounds_hist"

  let wf_apply_ns = Histogram.make "universal_rt.wait_free.apply_ns"
  let wf_log_length = Gauge.make "universal_rt.wait_free.log_length"

  (* announce slots whose invocation is still unthreaded — the paper's
     "announce-list pressure"; sampled per consensus round, during the
     collect scan *)
  let wf_announce_occupancy =
    Gauge.make "universal_rt.wait_free.announce_occupancy"

  (* operations threaded per winning consensus round *)
  let wf_batch_size = Histogram.make "universal_rt.wait_free.batch_size"

  (* §4.1 truncation telemetry: snapshots taken, nodes retained behind
     the frontier, and the reclamation watermark (min announced
     position over the processes) *)
  let wf_snapshots = Counter.make "universal_rt.wait_free.snapshots"
  let wf_retained = Gauge.make "universal_rt.wait_free.retained"
  let wf_watermark = Gauge.make "universal_rt.wait_free.watermark"
  let wfu_ops = Counter.make "universal_rt.wait_free_unbatched.ops"

  let wfu_help_rounds_hist =
    Histogram.make "universal_rt.wait_free_unbatched.help_rounds_hist"

  let wfu_apply_ns = Histogram.make "universal_rt.wait_free_unbatched.apply_ns"
end

module Lock_free (Seq : SEQ) = struct
  type op = Seq.op
  type res = Seq.res

  type node = { state : Seq.state; result : Seq.res option; length : int }

  type t = node Atomic.t

  let create () =
    Atomic.make { state = Seq.init; result = None; length = 0 }

  let rec apply_node t op =
    let head = Atomic.get t in
    let state, result = Seq.apply head.state op in
    let node = { state; result = Some result; length = head.length + 1 } in
    if Atomic.compare_and_set t head node then node
    else begin
      if Wfs_obs.Metrics.hot () then
        Wfs_obs.Metrics.Counter.incr M.lf_cas_retries;
      apply_node t op
    end

  let apply t op =
    if not (Wfs_obs.Metrics.hot ()) then
      Option.get (apply_node t op).result
    else begin
      let node, dur = Wfs_obs.Clock.elapsed_ns (fun () -> apply_node t op) in
      Wfs_obs.Metrics.Counter.incr M.lf_ops;
      Wfs_obs.Metrics.Histogram.observe M.lf_apply_ns dur;
      Wfs_obs.Metrics.Gauge.set_max M.lf_log_length node.length;
      Option.get node.result
    end

  let length t = (Atomic.get t).length
  let read t = (Atomic.get t).state
end

(* Batching + truncating wait-free universal object.

   Structure of a round: a client (or helper) reads the frontier — the
   latest threaded node — collects every announced-but-unapplied
   invocation into a fresh *batch node*, and runs one-shot consensus on
   the frontier's successor.  Whichever node wins, every helper then
   *fills* it deterministically: a per-invocation one-shot *claim*
   consensus (decided by node id) picks the unique node that threads
   each invocation, so an invocation collected into several competing
   batches is applied exactly once no matter which nodes win; claimed
   invocations are applied in batch order to the predecessor's state,
   and their results and linearization positions are written back.

   Wait-freedom: batching alone can starve a slow announcer (a winning
   batch may have been collected before it announced), so Herlihy's
   deterministic helping survives as the fallback — position p's
   contenders all compute the same priority process j = p mod n, and if
   j's invocation has been pending for more than n+1 positions they all
   propose the *same* canonical singleton node (carried by the
   invocation itself), which therefore wins.  The original argument
   then bounds completion by ~2n rounds.  Under steady load the age
   check never trips and full batches thread.

   Truncation (§4.1): every [window]-th node is a snapshot node — its
   fill memoizes the post-state and then severs its back-pointer.
   State reconstruction replays forward from the nearest snapshot (at
   most [window] nodes); the per-node memo makes the common case O(1).
   Nothing durable points backwards past a snapshot: announce
   slots are cleared by their owners, clients re-read the frontier
   every round, and the claim objects hold node *ids* (ints), so the
   GC reclaims everything behind the last snapshot.  The reclamation
   watermark of §4.1 — min over the processes' announced positions — is
   exported as telemetry ([watermark]); in a GC runtime it gates
   nothing, but it is exactly the bound below which no process can
   still reference a node. *)
module Wait_free (Seq : SEQ) = struct
  type op = Seq.op
  type res = Seq.res

  type invoc = {
    ticket : int;
    iop : Seq.op;
    claim : int Consensus_rt.One_shot.t;
        (* id of the unique node that threads this invocation — an
           announced invocation can be collected into several competing
           batches and must be applied exactly once *)
    mutable pos : int;
        (* global linearization index; a plain field published by the
           [result] store — every filler writes the same value before
           its (atomic, release) result write, so a client that
           observes its result also observes its position *)
    result : Seq.res option Atomic.t;
    born : int;  (* frontier seq at announce time, for the age check *)
    help : node option Atomic.t;
        (* canonical singleton node all helpers propose when this
           invocation is starving, made canonical by the CAS in
           [help_node_of] *)
    trace : int;  (* causal trace id; -1 when tracing is off *)
    traced : bool;  (* in the 1-in-k sample (or a forced canary) *)
    mutable edge_done : bool;
        (* one claim/help event per invocation; benign race — two
           fillers may both record, the auditor dedups *)
  }

  and node = {
    id : int;
        (* claims are decided on ids.  0 for nodes with an empty batch:
           they decide no claims, so they skip the id counter and may
           share the id. *)
    batch : invoc array;  (* announced invocations riding along *)
    own_op : Seq.op option;
        (* the proposer's un-announced invocation (fast path).  It
           lives in exactly this node, so it needs no claim consensus;
           its result and position are the inline fields below rather
           than a shared [invoc]. *)
    mutable own_pos : int;
    mutable own_res : Seq.res option;
        (* plain, unlike an [invoc]'s result: only the proposer reads
           its own invocation's result, and the proposer is itself a
           filler of the winning node, so it always observes its own
           program-order write (racing fillers write identical
           values — a racy read of another filler's block is
           well-defined and equal under the OCaml memory model) *)
    decide_next : node Consensus_rt.One_shot.t;
    seq : int Atomic.t;  (* log position; 0 until threaded *)
    mutable opcount : int;
        (* operations threaded up to this node; every filler writes the
           same value before its [seq] store publishes the node *)
    mutable prev : node;
        (* back-pointer: [t.unlinked] until the first filler links it,
           the node itself once a snapshot fill severs it.  Plain —
           racing fillers write the same predecessor, and all reads
           happen through nodes published by the frontier. *)
    mutable post : Seq.state option;
        (* memoized post-state; every filler writes the same
           deterministic value before its [seq] store, so any process
           that sees the node threaded can read its state in O(1).  A
           stale [None] read just falls back to the bounded replay. *)
    own_trace : int;  (* causal trace id of [own_op]; -1 untraced *)
    own_traced : bool;
    mutable own_edge_done : bool;
  }

  type t = {
    n : int;
    label : string;  (* object name in causal events *)
    canary : int;
        (* when > 0, every [canary]-th ticket skips the fast path,
           announces, and parks briefly so another client's collect
           threads it — deterministic cross-client help edges even on
           boxes where domains time-slice and never naturally race *)
    window : int;  (* log positions between state snapshots *)
    tickets : int Atomic.t;  (* per-object: see the regression test *)
    node_ids : int Atomic.t;
    counted : int Atomic.t;
        (* opcount last published to the ops counter (sampled, see
           [fill]) *)
    unlinked : node;  (* distinguished not-yet-linked marker *)
    announce : invoc option Atomic.t array;
    progress : int Atomic.t array;
        (* per-process announced-at position; max_int when idle *)
    frontier : node Atomic.t;  (* latest threaded node *)
  }

  let make_node t ?(own_trace = -1) ?(own_traced = false) ~own_op batch =
    {
      id =
        (if Array.length batch = 0 then 0
         else Atomic.fetch_and_add t.node_ids 1);
      batch;
      own_op;
      own_pos = -1;
      own_res = None;
      decide_next = Consensus_rt.One_shot.make ();
      seq = Atomic.make 0;
      opcount = 0;
      prev = t.unlinked;
      post = None;
      own_trace;
      own_traced;
      own_edge_done = false;
    }

  (* a self-severed node with no batch: the sentinel and the
     [unlinked] marker *)
  let blank_node ~post =
    let rec node =
      {
        id = 0;
        batch = [||];
        own_op = None;
        own_pos = -1;
        own_res = None;
        decide_next = Consensus_rt.One_shot.make ();
        seq = Atomic.make 0;
        opcount = 0;
        prev = node;
        post;
        own_trace = -1;
        own_traced = false;
        own_edge_done = false;
      }
    in
    node

  let create ?(label = "universal") ?(canary = 0) ?(window = 32) ~n () =
    if n <= 0 then invalid_arg "Wait_free.create: n";
    if window <= 0 then invalid_arg "Wait_free.create: window";
    if canary < 0 then invalid_arg "Wait_free.create: canary";
    if Wfs_obs.Causal.enabled () then
      Wfs_obs.Causal.meta ~obj:label ~n ~bound:(Wfs_obs.Causal.step_bound ~n);
    (* the sentinel is born severed: the log starts truncated at its
       initial snapshot *)
    let sentinel = blank_node ~post:(Some Seq.init) in
    {
      n;
      label;
      canary;
      window;
      tickets = Atomic.make 0;
      node_ids = Atomic.make 1;
      counted = Atomic.make 0;
      unlinked = blank_node ~post:None;
      announce = Array.init n (fun _ -> Atomic.make None);
      progress = Array.init n (fun _ -> Atomic.make max_int);
      frontier = Atomic.make sentinel;
    }

  (* Causal recording, off the hot path: called at most once per traced
     invocation (the [edge_done] flags), and only when the invocation
     was sampled at issue time.  The helper attribution reads the
     recording domain's current trace id — when a filler applies
     somebody else's invocation, that is a help edge. *)
  let note_claim t inv node pos =
    if Wfs_obs.Causal.enabled () then begin
      Wfs_obs.Causal.claim ~obj:t.label ~trace:inv.trace ~node:node.id ~pos;
      let helper = Wfs_obs.Causal.current () in
      if helper <> inv.trace then
        Wfs_obs.Causal.help ~obj:t.label ~helper ~helped:inv.trace ~pos
    end

  let note_own_help t node pos =
    if Wfs_obs.Causal.enabled () then begin
      let helper = Wfs_obs.Causal.current () in
      if helper <> node.own_trace then
        Wfs_obs.Causal.help ~obj:t.label ~helper ~helped:node.own_trace ~pos
    end

  (* State after a threaded [node]: its memoized post-state, or a
     replay from the predecessor — bounded by [window] since
     back-pointers are severed at snapshot nodes.  The memo is
     published by the [seq] store that threads the node, so the replay
     only runs on formally-racy stale reads; the relax-spin covers the
     severed-before-memo-visible corner, where the filler's own memo
     write is imminent. *)
  let rec state_after t node =
    match node.post with
    | Some s -> s
    | None ->
        let p = node.prev in
        if p == node || p == t.unlinked then begin
          Domain.cpu_relax ();
          state_after t node
        end
        else apply_batch t ~base:(state_after t p) ~base_ops:p.opcount node

  (* Fold [node]'s invocations over [base]: claimed batch entries
     first, then the proposer's own (claim-free) invocation.
     Deterministic for every helper — claims are consensus-decided and
     batch order is fixed at collect time — so the value writes below
     are idempotent.  [pos], [own_pos] and [opcount] are plain writes
     published by the atomic result / [seq] stores. *)
  and apply_batch t ~base ~base_ops node =
    let st = ref base and k = ref 0 in
    (* a for loop, not [Array.iter]: the iter closure would allocate on
       every fill, which is the per-operation hot path *)
    for i = 0 to Array.length node.batch - 1 do
      let inv = Array.unsafe_get node.batch i in
      if Consensus_rt.One_shot.decide inv.claim node.id = node.id then begin
        let st', r = Seq.apply !st inv.iop in
        st := st';
        inv.pos <- base_ops + !k;
        (* claim consensus just decided where this invocation threads:
           record the claim and, when the filler is somebody else's
           invocation, the help edge (untraced invocations pay one
           immediate-false branch here) *)
        if inv.traced && not inv.edge_done then begin
          inv.edge_done <- true;
          note_claim t inv node (base_ops + !k)
        end;
        Atomic.set inv.result (Some r);
        incr k
      end
    done;
    (match node.own_op with
    | Some op ->
        let st', r = Seq.apply !st op in
        st := st';
        node.own_pos <- base_ops + !k;
        if node.own_traced && not node.own_edge_done then begin
          node.own_edge_done <- true;
          note_own_help t node (base_ops + !k)
        end;
        node.own_res <- Some r;
        incr k
    | None -> ());
    node.opcount <- base_ops + !k;
    !st

  (* nodes reachable backwards from the frontier before the truncation
     cut — the retained window the bounded-memory test patrols *)
  let retained t =
    let rec go node acc =
      let p = node.prev in
      if p == node || p == t.unlinked then acc else go p (acc + 1)
    in
    go (Atomic.get t.frontier) 1

  (* §4.1 reclamation watermark: the oldest position any in-flight
     operation announced at; the frontier itself when all are idle *)
  let watermark t =
    let w = ref max_int in
    for i = 0 to t.n - 1 do
      let p = Atomic.get t.progress.(i) in
      if p < !w then w := p
    done;
    if !w = max_int then Atomic.get (Atomic.get t.frontier).seq else !w

  let length t = (Atomic.get t.frontier).opcount
  let tickets_issued t = Atomic.get t.tickets
  let window t = t.window
  let read t = state_after t (Atomic.get t.frontier)

  let rec advance t node seq =
    let cur = Atomic.get t.frontier in
    if Atomic.get cur.seq >= seq then false
    else if Atomic.compare_and_set t.frontier cur node then true
    else advance t node seq

  (* Thread [after] behind [before]: all helpers run this idempotently.
     Write order matters for the no-double-threading argument — claims,
     results and [seq] are all set before the frontier advances past
     this node, so any process that later reads a frontier at or beyond
     it must also see it threaded. *)
  let fill t ~before after =
    let seq = Atomic.get before.seq + 1 in
    if after.prev == t.unlinked then after.prev <- before;
    let base = state_after t before in
    let base_ops = before.opcount in
    let st = apply_batch t ~base ~base_ops after in
    if seq mod t.window = 0 then begin
      (* snapshot node: the post-state memo below is the snapshot;
         severing the back-pointer is what lets the GC reclaim
         everything behind it *)
      after.prev <- after;
      if Wfs_obs.Metrics.hot () then begin
        Wfs_obs.Metrics.Counter.incr M.wf_snapshots;
        (* the retained walk is O(window) and the watermark scan O(n);
           patrol them on every 16th snapshot, not every one *)
        if (seq / t.window) land 15 = 0 then begin
          Wfs_obs.Metrics.Gauge.set M.wf_retained (retained t);
          Wfs_obs.Metrics.Gauge.set M.wf_watermark (watermark t)
        end
      end
    end;
    after.post <- Some st;
    Atomic.set after.seq seq;
    (* Telemetry is published by the unique [advance] winner, sampled 1
       position in 32.  The ops counter stays *eventually exact* without
       a per-node fetch-and-add: [opcount] is the monotone running
       total, so at each sampled position the winner publishes the delta
       since the last sample ([t.counted] telescopes — concurrent
       winners may publish out of order, but the sums cancel and the
       counter converges to the last exchanged opcount, lagging the log
       by at most 31 positions). *)
    if advance t after seq && seq land 31 = 0 && Wfs_obs.Metrics.hot ()
    then begin
      let c = after.opcount in
      Wfs_obs.Metrics.Counter.add M.wf_ops (c - Atomic.exchange t.counted c);
      Wfs_obs.Metrics.Histogram.observe M.wf_batch_size (after.opcount - base_ops);
      Wfs_obs.Metrics.Gauge.set_max M.wf_log_length c
    end

  (* every announced invocation not yet applied, in announce-slot
     order; allocation-free when nothing is pending *)
  let collect t =
    let rec go i acc =
      if i < 0 then acc
      else
        match Atomic.get t.announce.(i) with
        | Some inv when Atomic.get inv.result = None -> go (i - 1) (inv :: acc)
        | _ -> go (i - 1) acc
    in
    go (t.n - 1) []

  let starving t ~head_seq inv = head_seq - inv.born > t.n + 1

  (* The canonical singleton node for a starving invocation: first CAS
     wins, every helper proposes the winner.  Allocated only when the
     age check trips. *)
  let rec help_node_of t inv =
    match Atomic.get inv.help with
    | Some hn -> hn
    | None ->
        let hn = make_node t ~own_op:None [| inv |] in
        if Atomic.compare_and_set inv.help None (Some hn) then hn
        else help_node_of t inv

  let round t =
    let head = Atomic.get t.frontier in
    let head_seq = Atomic.get head.seq in
    let j = (head_seq + 1) mod t.n in
    let help =
      match Atomic.get t.announce.(j) with
      | Some jinv
        when starving t ~head_seq jinv && Atomic.get jinv.result = None -> (
          (* the [seq = 0] re-check (after the frontier read above) is
             what prevents an already-threaded help node from being
             threaded twice *)
          match help_node_of t jinv with
          | hn when Atomic.get hn.seq = 0 -> Some hn
          | _ -> None)
      | _ -> None
    in
    let prefer =
      match help with
      | Some hn -> hn
      | None ->
          let pending = collect t in
          if Wfs_obs.Metrics.hot () then
            Wfs_obs.Metrics.Gauge.set M.wf_announce_occupancy
              (List.length pending);
          make_node t ~own_op:None (Array.of_list pending)
    in
    let after = Consensus_rt.One_shot.decide head.decide_next prefer in
    fill t ~before:head after

  let announce t ~pid ~trace ~traced op =
    let born = Atomic.get (Atomic.get t.frontier).seq in
    let inv =
      {
        ticket = Atomic.fetch_and_add t.tickets 1;
        iop = op;
        claim = Consensus_rt.One_shot.make ();
        pos = -1;
        result = Atomic.make None;
        born;
        help = Atomic.make None;
        trace;
        traced;
        edge_done = false;
      }
    in
    Atomic.set t.progress.(pid) born;
    Atomic.set t.announce.(pid) (Some inv);
    if traced && Wfs_obs.Causal.enabled () then
      Wfs_obs.Causal.announce ~obj:t.label ~trace ~pid ~born;
    inv

  (* bounded park between announce and self-help for canary
     invocations: up to 20 short sleeps, then Herlihy as usual *)
  let canary_grace = 20

  (* The announce + help path: announce, (optionally) park so another
     client can collect us, then run helping rounds until some filler
     publishes our result.  [steps0] counts own steps already spent
     before announcing (the lost fast-path attempt). *)
  let apply_announced t ~pid ~trace ~traced ~steps0 ~grace op =
    let inv = announce t ~pid ~trace ~traced op in
    if grace > 0 then begin
      let patience = ref grace in
      while !patience > 0 && Atomic.get inv.result = None do
        decr patience;
        Wfs_obs.Causal.backoff ()
      done
    end;
    let rounds = ref 1 in
    while Atomic.get inv.result = None do
      incr rounds;
      round t
    done;
    Atomic.set t.announce.(pid) None;
    Atomic.set t.progress.(pid) max_int;
    (* help-round telemetry is recorded here, for the operations
       that actually fell back to announce + help (fast-path wins
       are trivially one round), sampled 1 ticket in 64 *)
    if Wfs_obs.Metrics.hot () && inv.ticket land 63 = 0 then begin
      Wfs_obs.Metrics.Counter.add M.wf_help_rounds !rounds;
      Wfs_obs.Metrics.Histogram.observe M.wf_help_rounds_hist !rounds
    end;
    if traced && Wfs_obs.Causal.enabled () then
      Wfs_obs.Causal.complete ~obj:t.label ~trace ~pos:inv.pos
        ~own_steps:(steps0 + !rounds) ~help_rounds:!rounds;
    (Option.get (Atomic.get inv.result), inv.pos)

  (* One direct attempt, then Herlihy.  The fast path races a batch
     node straight at the frontier's successor without touching the
     announce slots: its own invocation is carried inline by the node
     (so it needs no claim consensus and no helping machinery), while
     every pending announced invocation still rides along, so helping
     and batching are not weakened.  If the consensus is lost the
     invocation is re-issued through announce + help, which restores
     the original wait-freedom bound. *)
  let apply_own t ~pid op =
    let ticket = Atomic.fetch_and_add t.tickets 1 in
    (* sampling is decided from the ticket BEFORE a trace id is issued:
       the unsampled common case costs one gate load and a mask — no
       global id counter, no DLS — which is what holds the traced
       service inside its <=5% overhead budget *)
    let gate = !Wfs_obs.Causal.trace_gate in
    let trace, traced, canary_op =
      if gate >= 0 then begin
        let canary_op = t.canary > 0 && (ticket + 1) mod t.canary = 0 in
        if canary_op || ticket land gate = 0 then
          (Wfs_obs.Causal.issue (), true, canary_op)
        else (-1, false, false)
      end
      else (-1, false, false)
    in
    if traced then Wfs_obs.Causal.invoke ~obj:t.label ~trace ~pid;
    if canary_op then
      (* forced slow path: announce first and linger so a concurrent
         client's collect (not our own round) threads the invocation *)
      apply_announced t ~pid ~trace ~traced ~steps0:0 ~grace:canary_grace op
    else begin
      let head = Atomic.get t.frontier in
      let batch =
        match collect t with
        | [] -> [||]
        | pending ->
            if Wfs_obs.Metrics.hot () && ticket land 63 = 0 then
              Wfs_obs.Metrics.Gauge.set M.wf_announce_occupancy
                (List.length pending);
            Array.of_list pending
      in
      let node =
        make_node t ~own_trace:trace ~own_traced:traced ~own_op:(Some op)
          batch
      in
      let after = Consensus_rt.One_shot.decide head.decide_next node in
      fill t ~before:head after;
      if after != node then
        apply_announced t ~pid ~trace ~traced ~steps0:1 ~grace:0 op
      else begin
        if traced && Wfs_obs.Causal.enabled () then
          Wfs_obs.Causal.complete ~obj:t.label ~trace ~pos:node.own_pos
            ~own_steps:1 ~help_rounds:0;
        (Option.get node.own_res, node.own_pos)
      end
    end

  (* The per-operation hot path pays two branches: the ops counter
     lives in [fill] (per node, exact), and the latency sample is
     taken for 1 ticket in 64 so the clock reads and histogram
     updates stay off the common path — that is what keeps the
     metrics-hot tax inside the <=5% budget the profile bench
     patrols. *)
  let apply_pos t ~pid op =
    if Wfs_obs.Metrics.hot () && Atomic.get t.tickets land 63 = 0 then begin
      let rp, dur = Wfs_obs.Clock.elapsed_ns (fun () -> apply_own t ~pid op) in
      Wfs_obs.Metrics.Histogram.observe M.wf_apply_ns dur;
      rp
    end
    else apply_own t ~pid op

  let apply t ~pid op = fst (apply_own t ~pid op)
end

(* Herlihy's original universal algorithm — one invocation per node,
   full log retained, per-process heads.  Kept verbatim (modulo the
   per-object ticket fix) as the baseline the batched construction is
   measured against. *)
module Wait_free_unbatched (Seq : SEQ) = struct
  type op = Seq.op
  type res = Seq.res

  (* A log node.  [decide_next] is a one-shot consensus object on the
     successor: whoever wins threads their invocation after this node.
     [seq] is 0 until the node is threaded; helpers then fill [seq],
     [state] and [result] with identical values (wrapped in Atomic to
     stay race-free under the OCaml memory model). *)
  type node = {
    invoc : (int * int * Seq.op) option; (* pid, ticket, op; None = sentinel *)
    decide_next : node Consensus_rt.One_shot.t;
    seq : int Atomic.t;
    state : Seq.state Atomic.t;
    result : Seq.res option Atomic.t;
  }

  type t = {
    n : int;
    tickets : int Atomic.t;  (* per-object: a functor-level counter
                                would be shared by every object from
                                one instantiation *)
    announce : node Atomic.t array;
    head : node Atomic.t array;  (* per-process view of the latest node *)
    sentinel : node;
  }

  let fresh_node invoc =
    {
      invoc;
      decide_next = Consensus_rt.One_shot.make ();
      seq = Atomic.make 0;
      state = Atomic.make Seq.init;
      result = Atomic.make None;
    }

  let create ~n =
    let sentinel = fresh_node None in
    Atomic.set sentinel.seq 1;
    {
      n;
      tickets = Atomic.make 0;
      announce = Array.init n (fun _ -> Atomic.make sentinel);
      head = Array.init n (fun _ -> Atomic.make sentinel);
      sentinel;
    }

  (* the highest-sequence node any process has published *)
  let max_head t =
    let best = ref (Atomic.get t.head.(0)) in
    for i = 1 to t.n - 1 do
      let h = Atomic.get t.head.(i) in
      if Atomic.get h.seq > Atomic.get !best.seq then best := h
    done;
    !best

  let tickets_issued t = Atomic.get t.tickets
  let length t = Atomic.get (max_head t).seq - 1

  (* Herlihy's wait-free universal algorithm: announce, then repeatedly
     thread the preferred node after the current head — helping the
     announced operation of process (seq mod n) first — until our own
     node is threaded. *)
  let apply_inner t ~pid op =
    let ticket = Atomic.fetch_and_add t.tickets 1 in
    let mine = fresh_node (Some (pid, ticket, op)) in
    Atomic.set t.announce.(pid) mine;
    Atomic.set t.head.(pid) (max_head t);
    let rounds = ref 0 in
    while Atomic.get mine.seq = 0 do
      incr rounds;
      let before = Atomic.get t.head.(pid) in
      let help = Atomic.get t.announce.(Atomic.get before.seq mod t.n) in
      let prefer = if Atomic.get help.seq = 0 then help else mine in
      let after = Consensus_rt.One_shot.decide before.decide_next prefer in
      (* fill in the threaded node's fields (idempotent: every helper
         computes the same values) *)
      (match after.invoc with
      | Some (_, _, threaded_op) ->
          let state', res = Seq.apply (Atomic.get before.state) threaded_op in
          Atomic.set after.state state';
          Atomic.set after.result (Some res)
      | None -> ());
      Atomic.set after.seq (Atomic.get before.seq + 1);
      Atomic.set t.head.(pid) after
    done;
    (!rounds, Option.get (Atomic.get mine.result))

  let apply t ~pid op =
    if not (Wfs_obs.Metrics.hot ()) then begin
      let _, res = apply_inner t ~pid op in
      res
    end
    else begin
      let (rounds, res), dur =
        Wfs_obs.Clock.elapsed_ns (fun () -> apply_inner t ~pid op)
      in
      Wfs_obs.Metrics.Counter.incr M.wfu_ops;
      Wfs_obs.Metrics.Histogram.observe M.wfu_help_rounds_hist rounds;
      Wfs_obs.Metrics.Histogram.observe M.wfu_apply_ns dur;
      res
    end
end

module Locked (Seq : SEQ) = struct
  type op = Seq.op
  type res = Seq.res

  type t = { mutex : Mutex.t; mutable state : Seq.state }

  let create () = { mutex = Mutex.create (); state = Seq.init }

  let apply t op =
    Mutex.lock t.mutex;
    let state, result = Seq.apply t.state op in
    t.state <- state;
    Mutex.unlock t.mutex;
    result

  let read t =
    Mutex.lock t.mutex;
    let state = t.state in
    Mutex.unlock t.mutex;
    state
end
