(* The universal construction on real multicore OCaml.

   Given any sequential object (pure [apply] on an immutable state), we
   build linearizable wait-free/lock-free shared versions of it — the
   practical payoff of §4: "a machine architecture is powerful enough to
   support arbitrary wait-free synchronization iff it provides a
   universal object".  OCaml's [Atomic] provides compare-and-swap, which
   Theorem 7 places at the top of the hierarchy, so everything below is
   built from it.

   Three constructions over the same signature:

   - [Lock_free]: the log head is a snapshot node (state + result); an
     operation replays nothing — it CASes a fresh node carrying the new
     state.  Lock-free: a loser retries, but some operation always
     completes.  (This is the paper's fetch-and-cons log with the
     truncation of §4.1 taken to its limit: every node carries its
     state, so replay cost is 0.)

   - [Wait_free]: adds announcing and helping: each operation announces
     its invocation, and every thread helps thread the announced
     invocation of process (seq mod n) before its own, so a stalled
     process's operation is completed by its peers within n rounds —
     strong wait-freedom, following Herlihy's universal construction
     with per-node one-shot consensus on the successor.

   - [Locked]: the mutex baseline the introduction argues against: a
     page fault / preemption inside the critical section stalls
     everyone.  Used by the benchmarks as the comparison point. *)

module type SEQ = sig
  type state
  type op
  type res

  val init : state
  val apply : state -> op -> state * res
end

module type S = sig
  type t
  type op
  type res

  val create : unit -> t
  val apply : t -> op -> res
end

(* Hot-path metrics.  Every sample sits behind [Metrics.hot ()] — one
   branch on a plain ref when sampling is off — so benchmark numbers
   stay comparable with uninstrumented builds. *)
module M = struct
  open Wfs_obs.Metrics

  let lf_ops = Counter.make "universal_rt.lock_free.ops"
  let lf_cas_retries = Counter.make "universal_rt.lock_free.cas_retries"
  let lf_apply_ns = Histogram.make "universal_rt.lock_free.apply_ns"
  let lf_log_length = Gauge.make "universal_rt.lock_free.log_length"
  let wf_ops = Counter.make "universal_rt.wait_free.ops"
  let wf_help_rounds = Counter.make "universal_rt.wait_free.help_rounds"

  (* per-operation distribution of help rounds: the p50/p99 `wfs top`
     renders as the live health of the helping protocol *)
  let wf_help_rounds_hist =
    Histogram.make "universal_rt.wait_free.help_rounds_hist"

  let wf_apply_ns = Histogram.make "universal_rt.wait_free.apply_ns"
  let wf_log_length = Gauge.make "universal_rt.wait_free.log_length"

  (* announce slots whose invocation is still unthreaded — the paper's
     "announce-list pressure" *)
  let wf_announce_occupancy =
    Gauge.make "universal_rt.wait_free.announce_occupancy"
end

module Lock_free (Seq : SEQ) = struct
  type op = Seq.op
  type res = Seq.res

  type node = { state : Seq.state; result : Seq.res option; length : int }

  type t = node Atomic.t

  let create () =
    Atomic.make { state = Seq.init; result = None; length = 0 }

  let rec apply_node t op =
    let head = Atomic.get t in
    let state, result = Seq.apply head.state op in
    let node = { state; result = Some result; length = head.length + 1 } in
    if Atomic.compare_and_set t head node then node
    else begin
      if Wfs_obs.Metrics.hot () then
        Wfs_obs.Metrics.Counter.incr M.lf_cas_retries;
      apply_node t op
    end

  let apply t op =
    if not (Wfs_obs.Metrics.hot ()) then
      Option.get (apply_node t op).result
    else begin
      let node, dur = Wfs_obs.Clock.elapsed_ns (fun () -> apply_node t op) in
      Wfs_obs.Metrics.Counter.incr M.lf_ops;
      Wfs_obs.Metrics.Histogram.observe M.lf_apply_ns dur;
      Wfs_obs.Metrics.Gauge.set_max M.lf_log_length node.length;
      Option.get node.result
    end

  let length t = (Atomic.get t).length
  let read t = (Atomic.get t).state
end

module Wait_free (Seq : SEQ) = struct
  type op = Seq.op
  type res = Seq.res

  (* A log node.  [decide_next] is a one-shot consensus object on the
     successor: whoever wins threads their invocation after this node.
     [seq] is 0 until the node is threaded; helpers then fill [seq],
     [state] and [result] with identical values (wrapped in Atomic to
     stay race-free under the OCaml memory model). *)
  type node = {
    invoc : (int * int * Seq.op) option; (* pid, ticket, op; None = sentinel *)
    decide_next : node Consensus_rt.One_shot.t;
    seq : int Atomic.t;
    state : Seq.state Atomic.t;
    result : Seq.res option Atomic.t;
  }

  type t = {
    n : int;
    announce : node Atomic.t array;
    head : node Atomic.t array;  (* per-process view of the latest node *)
    sentinel : node;
  }

  let fresh_node invoc =
    {
      invoc;
      decide_next = Consensus_rt.One_shot.make ();
      seq = Atomic.make 0;
      state = Atomic.make Seq.init;
      result = Atomic.make None;
    }

  let create ~n =
    let sentinel = fresh_node None in
    Atomic.set sentinel.seq 1;
    {
      n;
      announce = Array.init n (fun _ -> Atomic.make sentinel);
      head = Array.init n (fun _ -> Atomic.make sentinel);
      sentinel;
    }

  (* the highest-sequence node any process has published *)
  let max_head t =
    let best = ref (Atomic.get t.head.(0)) in
    for i = 1 to t.n - 1 do
      let h = Atomic.get t.head.(i) in
      if Atomic.get h.seq > Atomic.get !best.seq then best := h
    done;
    !best

  let tickets = Atomic.make 0

  (* Herlihy's wait-free universal algorithm: announce, then repeatedly
     thread the preferred node after the current head — helping the
     announced operation of process (seq mod n) first — until our own
     node is threaded. *)
  let apply_inner t ~pid op =
    let ticket = Atomic.fetch_and_add tickets 1 in
    let mine = fresh_node (Some (pid, ticket, op)) in
    Atomic.set t.announce.(pid) mine;
    Atomic.set t.head.(pid) (max_head t);
    let rounds = ref 0 in
    while Atomic.get mine.seq = 0 do
      incr rounds;
      let before = Atomic.get t.head.(pid) in
      let help = Atomic.get t.announce.(Atomic.get before.seq mod t.n) in
      let prefer = if Atomic.get help.seq = 0 then help else mine in
      let after = Consensus_rt.One_shot.decide before.decide_next prefer in
      (* fill in the threaded node's fields (idempotent: every helper
         computes the same values) *)
      (match after.invoc with
      | Some (_, _, threaded_op) ->
          let state', res = Seq.apply (Atomic.get before.state) threaded_op in
          Atomic.set after.state state';
          Atomic.set after.result (Some res)
      | None -> ());
      Atomic.set after.seq (Atomic.get before.seq + 1);
      Atomic.set t.head.(pid) after
    done;
    (!rounds, Atomic.get mine.seq, Option.get (Atomic.get mine.result))

  let apply t ~pid op =
    if not (Wfs_obs.Metrics.hot ()) then begin
      let _, _, res = apply_inner t ~pid op in
      res
    end
    else begin
      let (rounds, seq, res), dur =
        Wfs_obs.Clock.elapsed_ns (fun () -> apply_inner t ~pid op)
      in
      Wfs_obs.Metrics.Counter.incr M.wf_ops;
      Wfs_obs.Metrics.Counter.add M.wf_help_rounds rounds;
      Wfs_obs.Metrics.Histogram.observe M.wf_help_rounds_hist rounds;
      Wfs_obs.Metrics.Histogram.observe M.wf_apply_ns dur;
      (* seq counts from the sentinel's 1, so seq - 1 ops are threaded *)
      Wfs_obs.Metrics.Gauge.set_max M.wf_log_length (seq - 1);
      let pending = ref 0 in
      for i = 0 to t.n - 1 do
        if Atomic.get (Atomic.get t.announce.(i)).seq = 0 then incr pending
      done;
      Wfs_obs.Metrics.Gauge.set M.wf_announce_occupancy !pending;
      res
    end
end

module Locked (Seq : SEQ) = struct
  type op = Seq.op
  type res = Seq.res

  type t = { mutex : Mutex.t; mutable state : Seq.state }

  let create () = { mutex = Mutex.create (); state = Seq.init }

  let apply t op =
    Mutex.lock t.mutex;
    let state, result = Seq.apply t.state op in
    t.state <- state;
    Mutex.unlock t.mutex;
    result

  let read t =
    Mutex.lock t.mutex;
    let state = t.state in
    Mutex.unlock t.mutex;
    state
end
