(** Lamport's single-enqueuer / single-dequeuer wait-free queue from
    read/write registers (§3.3) — the positive boundary of
    Corollary 10.  Exactly one thread may enqueue and exactly one may
    dequeue, concurrently. *)

type 'a t

(** Largest accepted [capacity] (2{^30}); {!create} rounds requests up
    to a power of two, and anything above this would overflow the
    rounding. *)
val max_capacity : int

(** @raise Invalid_argument if [capacity] is outside
    [\[1, max_capacity\]]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Snapshot of [tail - head], reading [head] first.  Exact when called
    from the enqueuer or the dequeuer; a third-party observer may see a
    stale over-estimate, but never a negative value. *)
val length : 'a t -> int

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** Enqueuer only; [false] when full.  Never blocks. *)
val enqueue : 'a t -> 'a -> bool

(** Dequeuer only; [None] when empty.  Never blocks. *)
val dequeue : 'a t -> 'a option
