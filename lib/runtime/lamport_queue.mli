(** Lamport's single-enqueuer / single-dequeuer wait-free queue from
    read/write registers (§3.3) — the positive boundary of
    Corollary 10.  Exactly one thread may enqueue and exactly one may
    dequeue, concurrently. *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** Enqueuer only; [false] when full.  Never blocks. *)
val enqueue : 'a t -> 'a -> bool

(** Dequeuer only; [None] when empty.  Never blocks. *)
val dequeue : 'a t -> 'a option
