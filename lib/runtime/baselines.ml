(* Hand-crafted lock-free structures used as benchmark comparators for
   the universal construction: the Treiber stack and the Michael–Scott
   queue, both built (as Theorem 7 predicts everything can be) from
   compare-and-swap. *)

module Treiber_stack = struct
  type 'a t = 'a list Atomic.t

  let make () = Atomic.make []

  let rec push t x =
    let old = Atomic.get t in
    if not (Atomic.compare_and_set t old (x :: old)) then push t x

  let rec pop t =
    match Atomic.get t with
    | [] -> None
    | x :: rest as old ->
        if Atomic.compare_and_set t old rest then Some x else pop t

  let peek t = match Atomic.get t with [] -> None | x :: _ -> Some x
end

module Michael_scott_queue = struct
  type 'a node = { value : 'a option; next : 'a node option Atomic.t }

  type 'a t = { head : 'a node Atomic.t; tail : 'a node Atomic.t }

  let make () =
    let dummy = { value = None; next = Atomic.make None } in
    { head = Atomic.make dummy; tail = Atomic.make dummy }

  let rec enqueue t x =
    let node = { value = Some x; next = Atomic.make None } in
    let tail = Atomic.get t.tail in
    match Atomic.get tail.next with
    | Some next ->
        (* tail is lagging: help advance it and retry *)
        ignore (Atomic.compare_and_set t.tail tail next);
        enqueue t x
    | None ->
        if Atomic.compare_and_set tail.next None (Some node) then
          (* linearized; advancing tail is cooperative *)
          ignore (Atomic.compare_and_set t.tail tail node)
        else enqueue t x

  let rec dequeue t =
    let head = Atomic.get t.head in
    match Atomic.get head.next with
    | None -> None
    | Some next ->
        if Atomic.compare_and_set t.head head next then next.value
        else dequeue t

  let is_empty t = Atomic.get (Atomic.get t.head).next = None
end
