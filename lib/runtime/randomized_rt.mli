(** Randomized 2-process binary consensus from registers on real
    domains: always safe, terminates with probability 1 (the §5
    extension; contrast Theorem 2). *)

type t

val create : unit -> t

(** [decide t ~pid ~rng input] is [(decision, coin flips used)]; [pid]
    must be 0 or 1, each used by one domain. *)
val decide : t -> pid:int -> rng:Random.State.t -> bool -> bool * int
