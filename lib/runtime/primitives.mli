(** The classical synchronization primitives of §3.2 on multicore OCaml —
    thin wrappers over [Atomic], mirroring the simulated object zoo. *)

module Register : sig
  type 'a t

  val make : 'a -> 'a t
  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit
end

module Test_and_set : sig
  type t

  val make : unit -> t

  (** Returns the old value: [false] means the caller won. *)
  val test_and_set : t -> bool

  val read : t -> bool
  val reset : t -> unit
end

module Fetch_and_add : sig
  type t

  val make : int -> t
  val fetch_and_add : t -> int -> int
  val read : t -> int
end

module Swap : sig
  type 'a t

  val make : 'a -> 'a t

  (** Exchange contents with a private value, returning the old
      contents (the read-modify-write swap, §3.2). *)
  val swap : 'a t -> 'a -> 'a

  val read : 'a t -> 'a
end

module Cas : sig
  type 'a t

  val make : 'a -> 'a t

  (** The paper's compare-and-swap: install [replacement] iff the
      contents are physically equal to [expected]; always return the old
      contents. *)
  val compare_and_swap : 'a t -> expected:'a -> replacement:'a -> 'a

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val read : 'a t -> 'a
end

module Barrier : sig
  type t

  val make : int -> t
  val wait : t -> unit
end

(** [run_domains n f] runs [f pid] on [n] fresh domains released by a
    common barrier, returning results in pid order. *)
val run_domains : int -> (int -> 'a) -> 'a list
