(** The universal object service: named {!Wfs_spec.Object_spec} objects
    (queue, counter, map by default) served by the batched + truncating
    wait-free construction, with a closed-loop load harness whose runs
    are checked — differentially against the sequential specification
    when crash-free, with the exhaustive linearizability checker when
    crashes are injected. *)

open Wfs_spec

(** One served object: a sequential specification lifted to a
    linearizable wait-free shared object.  All accessors are
    thread-safe. *)
type handle = {
  spec : Object_spec.t;
  apply : pid:int -> Op.t -> Value.t;
  apply_pos : pid:int -> Op.t -> Value.t * int;
      (** result plus linearization position *)
  length : unit -> int;  (** operations threaded so far *)
  retained : unit -> int;  (** log nodes reachable behind the frontier *)
  watermark : unit -> int;  (** §4.1 reclamation watermark *)
  tickets : unit -> int;
  obj_window : int;
}

(** Lift one specification (processes [0..n-1]).  [canary] is forwarded
    to the construction's help canary (see
    {!Runtime.Universal_rt.Wait_free.create}); the object is labelled
    with its spec name in causal trace events. *)
val make_handle : ?window:int -> ?canary:int -> n:int -> Object_spec.t -> handle

(** The default registry contents: FIFO queue, counter, kv-map. *)
val default_specs : unit -> Object_spec.t list

type t

(** [create ?window ?canary ~n ?specs ()] builds a registry of served
    objects; object names must be distinct. *)
val create :
  ?window:int -> ?canary:int -> n:int -> ?specs:Object_spec.t list -> unit -> t

val names : t -> string list

(** Raises [Invalid_argument] for unknown names. *)
val find : t -> string -> handle

module Load : sig
  type report = {
    spec_name : string;
    clients : int;
    ops_per_client : int;
    total_ops : int;
    window : int;
    duration_ns : int;
    throughput : float;
    lat_p50_ns : int;
    lat_p95_ns : int;
    lat_p99_ns : int;
    lat_max_ns : int;
    log_length : int;
    max_retained : int;
    final_watermark : int;
    halted : int list;
    differential_ok : bool option;  (** crash-free runs *)
    linearizable : bool option;  (** crash runs *)
  }

  (** [run ~clients ~ops_per_client ()] drives one object (default: the
      counter) from [clients] closed-loop client domains.  With
      [halts = 0] every operation's result and linearization position
      are recorded and replayed against the sequential spec; with
      [halts = k > 0] clients [0..k-1] halt mid-operation and the
      recorded history is checked for linearizability instead (the
      workload must fit {!Wfs_history.Linearizability.max_ops}).
      Deterministic for a fixed [seed].  [canary] routes every
      [canary]-th announce ticket through the helped slow path while
      causal tracing is enabled (for recording help edges on machines
      that time-slice domains); it does not change results. *)
  val run :
    ?seed:int ->
    ?window:int ->
    ?halts:int ->
    ?spec:Object_spec.t ->
    ?canary:int ->
    clients:int ->
    ops_per_client:int ->
    unit ->
    report

  (** Differential / linearizability verdicts hold, the retained window
      stayed within its bound, and the watermark advanced. *)
  val passed : report -> bool

  val pp_report : report Fmt.t
end

type serve_report = {
  served_ops : int;
  serve_duration_ns : int;
  per_object : (string * int) list;
}

(** [serve ~clients ~duration_s ()] drives a fresh service's objects
    round-robin from [clients] domains until the deadline — the
    open-ended mode behind [wfs serve], meant to be watched live via
    the metrics sampler. *)
val serve :
  ?seed:int ->
  ?window:int ->
  ?canary:int ->
  ?specs:Object_spec.t list ->
  clients:int ->
  duration_s:float ->
  unit ->
  serve_report
