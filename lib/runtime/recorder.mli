(** Concurrent history recorder: ticketed event slots whose order is a
    real-time-consistent interleaving, for feeding runtime executions to
    the exhaustive linearizability checker. *)

open Wfs_spec

type t

exception Capacity_exceeded

val create : capacity:int -> t

(** Slot-array size fixed at {!create}. *)
val capacity : t -> int

(** Tickets taken so far (clamped to {!capacity}). *)
val used : t -> int

(** [capacity - used]; when hot-path metric sampling is on, [record]
    also publishes this as the [recorder.headroom] gauge. *)
val headroom : t -> int

val record : t -> Wfs_history.Event.t -> unit
val invoke : t -> pid:int -> obj:string -> Op.t -> unit
val respond : t -> pid:int -> obj:string -> Value.t -> unit

(** The recorded history in ticket order; call at quiescence. *)
val history : t -> Wfs_history.History.t

(** [around t ~pid ~obj ~op ~encode_res f] records INVOKE, runs [f],
    records RESPOND with the encoded result.  If [f] raises, a
    [Wfs_history.Event.crashed_res] RESPOND is recorded before the
    exception is re-raised, so the subhistory stays well-formed and the
    linearizability checker sees the operation as pending rather than
    as a phantom dangling INVOKE. *)
val around :
  t -> pid:int -> obj:string -> op:Op.t -> encode_res:('a -> Value.t) ->
  (unit -> 'a) -> 'a

val pp : t Fmt.t
