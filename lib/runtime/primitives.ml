(* The classical synchronization primitives of §3.2 on real multicore
   OCaml, as thin disciplined wrappers over [Atomic].

   These mirror the simulated object zoo: the simulator proves what each
   primitive can and cannot do; this module is the same operation on
   hardware, used by the runtime constructions and the benchmarks. *)

module Register = struct
  type 'a t = 'a Atomic.t

  let make v = Atomic.make v
  let read = Atomic.get
  let write = Atomic.set
end

module Test_and_set = struct
  type t = bool Atomic.t

  let make () = Atomic.make false

  (* returns the OLD value: false means "you won" *)
  let test_and_set t = Atomic.exchange t true
  let read = Atomic.get
  let reset t = Atomic.set t false
end

module Fetch_and_add = struct
  type t = int Atomic.t

  let make init = Atomic.make init
  let fetch_and_add t k = Atomic.fetch_and_add t k
  let read = Atomic.get
end

module Swap = struct
  type 'a t = 'a Atomic.t

  let make v = Atomic.make v

  (* the read-modify-write swap: exchange register contents with a
     private value, returning the old contents *)
  let swap t v = Atomic.exchange t v
  let read = Atomic.get
end

module Cas = struct
  type 'a t = 'a Atomic.t

  let make v = Atomic.make v

  (* compare-and-swap in the paper's sense: returns the old contents,
     installing [replacement] iff the old contents were (physically
     equal to) [expected] *)
  let compare_and_swap t ~expected ~replacement =
    let rec loop () =
      let old = Atomic.get t in
      if old != expected then old
      else if Atomic.compare_and_set t expected replacement then old
      else loop ()
    in
    loop ()

  let compare_and_set = Atomic.compare_and_set
  let read = Atomic.get
end

(* A sense-reversing spin barrier for launching benchmark/test domains
   at the same instant. *)
module Barrier = struct
  type t = { parties : int; count : int Atomic.t; sense : bool Atomic.t }

  let make parties = { parties; count = Atomic.make 0; sense = Atomic.make false }

  let wait t =
    let my_sense = not (Atomic.get t.sense) in
    if Atomic.fetch_and_add t.count 1 = t.parties - 1 then begin
      Atomic.set t.count 0;
      Atomic.set t.sense my_sense
    end
    else
      while Atomic.get t.sense <> my_sense do
        Domain.cpu_relax ()
      done
end

(* Run [f 0 .. f (n-1)] on n fresh domains, collecting results in pid
   order.  All domains start after a common barrier. *)
let run_domains n f =
  let barrier = Barrier.make n in
  let domains =
    List.init n (fun pid ->
        Domain.spawn (fun () ->
            Barrier.wait barrier;
            f pid))
  in
  List.map Domain.join domains
