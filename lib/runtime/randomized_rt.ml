(* Randomized 2-process binary consensus from registers, on real
   domains — the runtime twin of [Wfs_consensus.Randomized].

   Deterministically impossible (Theorem 2); with coin flips, agreement
   and validity hold always and termination holds with probability 1.
   Expected flips per conflict round are constant, measured by the
   benchmark harness. *)

type t = { flags : int Atomic.t array }
(* flag encoding: -1 = ⊥, 0 = false, 1 = true *)

let create () = { flags = [| Atomic.make (-1); Atomic.make (-1) |] }

let bit b = if b then 1 else 0

(* [decide t ~pid ~rng input] returns (decision, flips used). *)
let decide t ~pid ~rng input =
  if pid < 0 || pid > 1 then invalid_arg "Randomized_rt.decide: pid";
  let rival = 1 - pid in
  let pref = ref (bit input) in
  let flips = ref 0 in
  Atomic.set t.flags.(pid) !pref;
  let rec loop () =
    let q = Atomic.get t.flags.(rival) in
    if q = -1 || q = !pref then !pref
    else begin
      incr flips;
      pref := bit (Random.State.bool rng);
      Atomic.set t.flags.(pid) !pref;
      loop ()
    end
  in
  let d = loop () in
  (d = 1, !flips)
