(** Hand-crafted lock-free comparators built from compare-and-swap. *)

module Treiber_stack : sig
  type 'a t

  val make : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val peek : 'a t -> 'a option
end

module Michael_scott_queue : sig
  type 'a t

  val make : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit
  val dequeue : 'a t -> 'a option
  val is_empty : 'a t -> bool
end
