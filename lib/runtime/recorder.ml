(* Concurrent history recording for runtime linearizability testing.

   Each INVOKE/RESPOND event takes a ticket from an atomic counter and
   writes itself into the corresponding slot of a preallocated array.
   Ticket acquisition is a single atomic instruction, so the recorded
   order is a legal interleaving consistent with real time: if operation
   A responded before operation B was invoked, A's RESPOND ticket is
   smaller than B's INVOKE ticket.  The resulting event sequence is fed
   to the exhaustive linearizability checker from [Wfs_history]. *)

type t = {
  slots : Wfs_history.Event.t option Atomic.t array;
  next : int Atomic.t;
  span_tick : int Atomic.t;
      (* profiling-only sampling counter for [rt.op] spans, see
         [around] *)
}

let create ~capacity =
  {
    slots = Array.init capacity (fun _ -> Atomic.make None);
    next = Atomic.make 0;
    span_tick = Atomic.make 0;
  }

exception Capacity_exceeded

let capacity t = Array.length t.slots
let used t = min (Atomic.get t.next) (Array.length t.slots)
let headroom t = max 0 (capacity t - used t)

(* remaining capacity after the most recent record, so a run can see
   how close it came to [Capacity_exceeded] *)
let headroom_gauge = Wfs_obs.Metrics.Gauge.make "recorder.headroom"

let record t event =
  let ticket = Atomic.fetch_and_add t.next 1 in
  if ticket >= Array.length t.slots then raise Capacity_exceeded;
  if Wfs_obs.Metrics.hot () then
    Wfs_obs.Metrics.Gauge.set headroom_gauge
      (Array.length t.slots - ticket - 1);
  Atomic.set t.slots.(ticket) (Some event)

let invoke t ~pid ~obj op = record t (Wfs_history.Event.invoke ~pid ~obj op)

let respond t ~pid ~obj res = record t (Wfs_history.Event.respond ~pid ~obj res)

(* The recorded history, in ticket order.  Call at quiescence: a [None]
   gap means some event's write is still in flight. *)
let history t : Wfs_history.History.t =
  let n = min (Atomic.get t.next) (Array.length t.slots) in
  let rec collect i acc =
    if i < 0 then acc
    else
      match Atomic.get t.slots.(i) with
      | Some e -> collect (i - 1) (e :: acc)
      | None -> collect (i - 1) acc
  in
  collect (n - 1) []

(* Convenience: record around an operation execution.  If [f] raises —
   a fault-injected halt, or any bug in the implementation under test —
   we must not leave the INVOKE dangling: a later operation by the same
   process would make its subhistory ill-formed, and the
   linearizability checker would silently see a phantom pending
   operation.  Record the distinguished crashed response (which
   [History.operations] maps back to "pending") and re-raise. *)
let around t ~pid ~obj ~op ~encode_res f =
  (* [Op.name] is one constant-time projection — cheap enough for the
     profiler's per-op span args, unlike a full [Op.pp] render.

     Runtime operations are sub-microsecond, so emitting a span per op
     multiplies their cost several-fold when profiling is on (the
     profile bench's recorder-op section measures it).  Sample 1 in 64:
     the trace keeps the op mix and the per-op duration distribution at
     1/64 the events, and the unprofiled path is untouched. *)
  let prof =
    Wfs_obs.Profile.enabled ()
    && Atomic.fetch_and_add t.span_tick 1 land 63 = 0
  in
  if prof then
    Wfs_obs.Profile.begin_ ~cat:"runtime"
      ~args:(fun () ->
        [
          ("op", Wfs_obs.Json.str (Wfs_spec.Op.name op));
          ("obj", Wfs_obs.Json.str obj);
          ("pid", Wfs_obs.Json.int pid);
        ])
      "rt.op";
  invoke t ~pid ~obj op;
  match f () with
  | res ->
      respond t ~pid ~obj (encode_res res);
      if prof then Wfs_obs.Profile.end_ ();
      res
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      respond t ~pid ~obj Wfs_history.Event.crashed_res;
      if prof then Wfs_obs.Profile.end_ ();
      Printexc.raise_with_backtrace e bt

let pp ppf t = Wfs_history.History.pp ppf (history t)
