(* Theorem 12: the augmented queue (FIFO queue + peek) solves n-process
   consensus for arbitrary n.

   The queue starts empty; each process enqueues its own identifier and
   decides on peek — the process whose enq was ordered first wins. *)

open Wfs_spec
open Wfs_sim

let obj = "q"

let proc ~pid =
  Process.make ~pid ~init:(Process.at 0) (fun local ->
      match Process.pc local with
      | 0 ->
          Process.invoke ~obj (Queues.enq (Value.pid pid)) (fun _ ->
              Process.at 1)
      | 1 -> Process.invoke ~obj Queues.peek (fun res -> Process.at 2 ~data:res)
      | 2 -> Process.decide (Process.data local)
      | pc -> invalid_arg (Fmt.str "aug-queue-consensus: pc %d" pc))

let protocol ?(name = "augmented-queue-consensus") ~n () =
  let env = Env.make [ (obj, Queues.augmented ~name:obj ~items:(Zoo.pids n) ()) ] in
  let procs = Array.init n (fun pid -> proc ~pid) in
  Protocol.make ~name ~theorem:"Theorem 12" ~procs ~env

(* The same one-shot election works for fetch-and-cons (level ∞ of
   Figure 1-1): cons your identifier, decide the last element of the list
   that follows yours — or yourself if nothing preceded you. *)
let fetch_and_cons ?(name = "fetch-and-cons-consensus") ~n () =
  let obj = "list" in
  let proc ~pid =
    Process.make ~pid ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj
              (Fetch_and_cons.fetch_and_cons (Value.pid pid))
              (fun res -> Process.at 1 ~data:res)
        | 1 -> (
            match List.rev (Value.as_list (Process.data local)) with
            | [] -> Process.decide (Value.pid pid)
            | earliest :: _ -> Process.decide earliest)
        | pc -> invalid_arg (Fmt.str "fetch-and-cons-consensus: pc %d" pc))
  in
  let env =
    Env.make [ (obj, Fetch_and_cons.list_object ~name:obj ~items:(Zoo.pids n) ()) ]
  in
  let procs = Array.init n (fun pid -> proc ~pid) in
  Protocol.make ~name ~theorem:"§4.1 (fetch-and-cons is universal)" ~procs ~env
