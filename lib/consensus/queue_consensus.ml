(* Theorem 9: two-process consensus from a FIFO queue.

   The queue is initialized to [first; second]; both processes dequeue;
   whoever receives [first] won the race and the election.  Trivial
   variations (per the paper) give protocols for stacks, priority
   queues and sets — all included here, since they populate level 2 of
   Figure 1-1. *)

open Wfs_spec
open Wfs_sim

let obj = "q"
let first = Value.str "first"
let second = Value.str "second"

let deq_and_decide ~remove ~winner_token ~pid ~rival =
  Process.make ~pid ~init:(Process.at 0) (fun local ->
      match Process.pc local with
      | 0 -> Process.invoke ~obj remove (fun res -> Process.at 1 ~data:res)
      | 1 ->
          let got = Process.data local in
          Process.decide
            (if Value.equal got winner_token then Value.pid pid
             else Value.pid rival)
      | pc -> invalid_arg (Fmt.str "queue-consensus: pc %d" pc))

let two_proc ~name ~theorem ~spec ~remove ~winner_token =
  let env = Env.make [ (obj, spec) ] in
  let procs =
    [|
      deq_and_decide ~remove ~winner_token ~pid:0 ~rival:1;
      deq_and_decide ~remove ~winner_token ~pid:1 ~rival:0;
    |]
  in
  Protocol.make ~name ~theorem ~procs ~env

let protocol ?(name = "queue-consensus") () =
  let spec =
    Queues.fifo ~name:obj ~initial:[ first; second ]
      ~items:[ first; second ] ()
  in
  two_proc ~name ~theorem:"Theorem 9" ~spec ~remove:Queues.deq
    ~winner_token:first

(* Stack variation: initialized [top; bottom]; the first popper takes
   [top]. *)
let stack ?(name = "stack-consensus") () =
  let top = Value.str "top" and bottom = Value.str "bottom" in
  let spec =
    Queues.stack ~name:obj ~initial:[ top; bottom ] ~items:[ top; bottom ] ()
  in
  two_proc ~name ~theorem:"Theorem 9 (stack variation)" ~spec
    ~remove:Queues.pop ~winner_token:top

(* Priority-queue variation: initialized {1, 2}; the first extract-min
   gets 1. *)
let priority_queue ?(name = "priority-queue-consensus") () =
  let spec =
    Queues.priority_queue ~name:obj
      ~initial:[ Value.int 1; Value.int 2 ]
      ~keys:[ 1; 2 ] ()
  in
  two_proc ~name ~theorem:"Theorem 9 (priority-queue variation)" ~spec
    ~remove:Queues.extract_min ~winner_token:(Value.int 1)

(* Set variation: initialized {1, 2}; deterministic remove returns the
   least element, so the first remover gets 1. *)
let set ?(name = "set-consensus") () =
  let spec =
    Collections.set ~name:obj
      ~initial:[ Value.int 1; Value.int 2 ]
      ~elements:[ Value.int 1; Value.int 2 ] ()
  in
  two_proc ~name ~theorem:"Theorem 9 (set variation)" ~spec
    ~remove:Collections.remove ~winner_token:(Value.int 1)

(* Counter variation: incr returns the new count, so the first
   incrementer sees 1 — "any deterministic object with operations that
   return different results if applied in different orders". *)
let counter ?(name = "counter-consensus") () =
  let spec = Collections.counter ~name:obj () in
  two_proc ~name ~theorem:"Theorem 9 (counter variation)" ~spec
    ~remove:Collections.incr ~winner_token:(Value.int 1)
