(** §3.1: broadcast with totally ordered delivery solves n-process
    consensus (the positive Dolev–Dwork–Stockmeyer case). *)

val protocol : ?name:string -> n:int -> unit -> Protocol.t
