(** Theorem 16: memory-to-memory swap solves n-process consensus. *)

val protocol : ?name:string -> n:int -> unit -> Protocol.t
