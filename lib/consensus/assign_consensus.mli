(** Theorems 19–20: consensus from atomic multi-register assignment. *)

open Wfs_spec
open Wfs_sim

(** A staged assign-then-scan step: one atomic assignment, a fixed list
    of register reads, and a conclusion carried to the next stage (the
    last stage's conclusion is the decision). *)
type stage = {
  assign_of : Value.t -> Op.t;
  reads : int list;
  conclude : Value.t -> Value.t list -> Value.t;
}

(** Build a process from stages; [input] is the initial carried value. *)
val staged_proc : pid:int -> input:Value.t -> stage list -> Process.t

(** Registers used by the Theorem 19 bank for [m] processes:
    [m] privates plus [m(m-1)/2] shared pair registers. *)
val bank_size : int -> int

(** The Theorem 19 "assign, scan, take the earliest assigner" stage for
    member [me] of a bank at [base]; [values.(i)] is what member [i]
    assigns (values must be distinct). *)
val thm19_stage :
  base:int -> m:int -> me:int -> values:Value.t array -> stage

(** Theorem 19: n-register assignment solves n-process consensus. *)
val protocol : ?name:string -> n:int -> unit -> Protocol.t

(** Theorem 20: n-register assignment solves (2n-2)-process consensus via
    two-phase group consensus. *)
val two_phase : ?name:string -> n:int -> unit -> Protocol.t
