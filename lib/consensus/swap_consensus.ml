(* Theorem 16: memory-to-memory swap solves n-process consensus.

   Registers p[0..n-1] start at 0 and a single register r starts at 1.
   Process P_i swaps p[i] with r, then scans p[0..n-1]: exactly one
   process ever holds the 1 (the first to swap takes it out of r), its
   slot never changes, and every scanner decides on that slot's owner. *)

open Wfs_spec
open Wfs_sim

let mem = "mem"

let slot i = i
let token_reg n = n

let ph_swap = 0
let ph_scan = 1 (* data = k: issue the read of slot k *)
let ph_check = 2 (* data = (k, res): decide on slot k or read slot k+1 *)

let proc ~n ~pid =
  let read_slot k next =
    Process.invoke ~obj:mem
      (Memory.read (slot k))
      (fun res -> next (Value.pair (Value.int k) res))
  in
  Process.make ~pid ~init:(Process.at ph_swap) (fun local ->
      let pc = Process.pc local in
      if pc = ph_swap then
        Process.invoke ~obj:mem
          (Memory.swap (slot pid) (token_reg n))
          (fun _ -> Process.at ph_scan ~data:(Value.int 0))
      else if pc = ph_scan then begin
        let k = Value.as_int (Process.data local) in
        read_slot k (fun data -> Process.at ph_check ~data)
      end
      else if pc = ph_check then begin
        let kv, res = Value.as_pair (Process.data local) in
        let k = Value.as_int kv in
        if Value.equal res (Value.int 1) then Process.decide (Value.pid k)
        else if k = n - 1 then
          (* Unreachable: the scanner itself swapped, so the token is in
             some slot by the time any scan begins; kept total. *)
          Process.decide (Value.pid pid)
        else read_slot (k + 1) (fun data -> Process.at ph_check ~data)
      end
      else invalid_arg (Fmt.str "swap-consensus P%d: pc %d" pid pc))

let protocol ?(name = "memory-swap-consensus") ~n () =
  let init = List.init (n + 1) (fun i -> Value.int (if i = n then 1 else 0)) in
  let spec =
    Memory.with_swap ~name:mem ~size:(n + 1) ~init [ Value.int 0; Value.int 1 ]
  in
  let procs = Array.init n (fun pid -> proc ~n ~pid) in
  Protocol.make ~name ~theorem:"Theorem 16" ~procs
    ~env:(Env.make [ (mem, spec) ])
