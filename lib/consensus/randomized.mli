(** Randomized wait-free 2-process binary consensus from read/write
    registers — the §5 open problem (Abrahamson's direction), escaping
    Theorem 2's deterministic impossibility.

    Agreement and validity hold on every execution; termination holds
    with probability 1.  In the simulator, coins are adversarial: each
    process carries a fixed finite coin sequence and safety is checked
    exhaustively over every schedule of every coin assignment. *)

open Wfs_spec
open Wfs_sim

(** Decision sentinel used when a simulated process exhausts its finite
    coin sequence while still in conflict. *)
val aborted : Value.t

val proc : pid:int -> input:bool -> coins:bool list -> Process.t
val config : inputs:bool array -> coins:bool list array -> Explorer.config

type verification = {
  ok : bool;
  configurations : int;
  states : int;
  aborts_possible : bool;
  failure : string option;
}

(** Exhaustive safety over all schedules × all coin sequences of length
    [flips] (default 3) × all four input combinations. *)
val verify_all_coins : ?flips:int -> unit -> verification

(** One seeded run with pseudo-random coins. *)
val run : ?flips:int -> inputs:bool array -> seed:int -> unit -> Runner.outcome
