(** Theorem 4: two-process consensus from any non-trivial
    read-modify-write operation. *)

open Wfs_spec

(** [witness ~rmw ~domain] finds an argument and a register value [v]
    with [f ~arg v ≠ v], if the family is non-trivial on [domain]. *)
val witness :
  rmw:Registers.rmw_op -> domain:Value.t list -> (Value.t * Value.t) option

(** Build the 2-process protocol; [None] if [rmw] is trivial on
    [domain]. *)
val protocol :
  ?name:string -> rmw:Registers.rmw_op -> domain:Value.t list -> unit ->
  Protocol.t option

(** Canonical instances. *)

val test_and_set : unit -> Protocol.t
val swap : unit -> Protocol.t
val fetch_and_add : unit -> Protocol.t
