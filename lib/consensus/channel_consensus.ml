(* §3.1 discussion (Dolev–Dwork–Stockmeyer): broadcast with totally
   ordered delivery solves n-process consensus.

   Each process broadcasts its identifier and decides on the first entry
   of the shared delivery order.  The cursor-based [next] of the
   ordered-broadcast object returns entries in global order, so the first
   [next] after one's own broadcast always yields the log's first
   entry. *)

open Wfs_spec
open Wfs_sim

let chan = "chan"

let proc ~pid =
  Process.make ~pid ~init:(Process.at 0) (fun local ->
      match Process.pc local with
      | 0 ->
          Process.invoke ~obj:chan
            (Channels.broadcast (Value.pid pid))
            (fun _ -> Process.at 1)
      | 1 ->
          Process.invoke ~obj:chan (Channels.next ~me:pid) (fun res ->
              Process.at 2 ~data:res)
      | 2 -> (
          match Value.to_option (Process.data local) with
          | Some first -> Process.decide first
          | None ->
              (* unreachable: this process broadcast before reading *)
              Process.decide (Value.pid pid))
      | pc -> invalid_arg (Fmt.str "broadcast-consensus P%d: pc %d" pid pc))

let protocol ?(name = "ordered-broadcast-consensus") ~n () =
  let env =
    Env.make
      [ (chan, Channels.ordered_broadcast ~name:chan ~processes:n
                 ~messages:(Zoo.pids n) ()) ]
  in
  let procs = Array.init n (fun pid -> proc ~pid) in
  Protocol.make ~name ~theorem:"§3.1 (DDS: ordered broadcast)" ~procs ~env
