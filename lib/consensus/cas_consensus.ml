(* Theorem 7: compare-and-swap solves n-process consensus for arbitrary n.

   The register starts at ⊥; process P_i executes
   [old := compare-and-swap(r, ⊥, i)] and decides its own identifier if
   [old = ⊥] (its CAS installed first), otherwise the identifier it
   found. *)

open Wfs_spec
open Wfs_sim

let reg = "r"

let proc ~pid =
  let mine = Value.pid pid in
  Process.make ~pid ~init:(Process.at 0) (fun local ->
      match Process.pc local with
      | 0 ->
          Process.invoke ~obj:reg
            (Registers.cas ~expected:Value.bottom ~replacement:mine)
            (fun res -> Process.at 1 ~data:res)
      | 1 ->
          let old = Process.data local in
          Process.decide (if Value.is_bottom old then mine else old)
      | pc -> invalid_arg (Fmt.str "cas-consensus: pc %d" pc))

let protocol ?(name = "cas-consensus") ~n () =
  let values = Value.bottom :: Zoo.pids n in
  let env =
    Env.make
      [ (reg, Registers.compare_and_swap ~name:"r" ~init:Value.bottom values) ]
  in
  let procs = Array.init n (fun pid -> proc ~pid) in
  Protocol.make ~name ~theorem:"Theorem 7" ~procs ~env
