(* Theorem 15: memory-to-memory move solves n-process consensus.

   Two-process protocol (paper's Decide_1/Decide_2, 0-indexed):
   register A starts with P0's name, register B with P1's name.
   P0 writes B := P0 and decides on A's contents; P1 moves B into A and
   decides on A's contents.  The protocol elects P1 iff P1's move is
   linearized before P0's write.

   n-process protocol: registers r[i,1], r[i,2] with r[i,1] = i and
   r[i,2] = i-1 (a non-name marker).  Process P_i first moves r[i,1]
   into r[i,2] (contending with lower-numbered processes), then spoils
   the first-round registers of all higher-numbered processes by writing
   r[j,1] := j-1, and finally scans r[j,2] from j = n-1 down, deciding on
   the first (highest) round winner it finds. *)

open Wfs_spec
open Wfs_sim

let mem = "mem"

(* --- two-process protocol --- *)

let two_proc_protocol ?(name = "move-consensus-2") () =
  let reg_a = 0 and reg_b = 1 in
  let values = [ Value.pid 0; Value.pid 1 ] in
  let spec =
    Memory.with_move ~name:mem ~size:2
      ~init:[ Value.pid 0; Value.pid 1 ]
      values
  in
  let p0 =
    Process.make ~pid:0 ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:mem
              (Memory.write reg_b (Value.pid 0))
              (fun _ -> Process.at 1)
        | 1 ->
            Process.invoke ~obj:mem (Memory.read reg_a) (fun res ->
                Process.at 2 ~data:res)
        | 2 -> Process.decide (Process.data local)
        | pc -> invalid_arg (Fmt.str "move-consensus P0: pc %d" pc))
  in
  let p1 =
    Process.make ~pid:1 ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:mem
              (Memory.move ~src:reg_b ~dst:reg_a)
              (fun _ -> Process.at 1)
        | 1 ->
            Process.invoke ~obj:mem (Memory.read reg_a) (fun res ->
                Process.at 2 ~data:res)
        | 2 -> Process.decide (Process.data local)
        | pc -> invalid_arg (Fmt.str "move-consensus P1: pc %d" pc))
  in
  Protocol.make ~name ~theorem:"Theorem 15 (two processes)"
    ~procs:[| p0; p1 |]
    ~env:(Env.make [ (mem, spec) ])

(* --- n-process protocol --- *)

(* Register layout: round i owns registers [fst_reg i] (contended) and
   [snd_reg i] (outcome). *)
let fst_reg i = 2 * i
let snd_reg i = (2 * i) + 1

(* Local-state phases. *)
let ph_move = 0 (* perform own move *)
let ph_spoil = 1 (* data = j: write r[j,1] := j-1 for higher rounds *)
let ph_check = 2 (* data = (j, res): decide on round j or scan round j-1 *)

let n_proc ~n ~pid =
  let marker j = Value.int (j - 1) in
  let read_round j next =
    Process.invoke ~obj:mem
      (Memory.read (snd_reg j))
      (fun res -> next (Value.pair (Value.int j) res))
  in
  Process.make ~pid ~init:(Process.at ph_move) (fun local ->
      let pc = Process.pc local in
      if pc = ph_move then
        Process.invoke ~obj:mem
          (Memory.move ~src:(fst_reg pid) ~dst:(snd_reg pid))
          (fun _ -> Process.at ph_spoil ~data:(Value.int (pid + 1)))
      else if pc = ph_spoil then begin
        let j = Value.as_int (Process.data local) in
        if j >= n then
          (* scanning starts at the highest round *)
          read_round (n - 1) (fun data -> Process.at ph_check ~data)
        else
          Process.invoke ~obj:mem
            (Memory.write (fst_reg j) (marker j))
            (fun _ -> Process.at ph_spoil ~data:(Value.int (j + 1)))
      end
      else if pc = ph_check then begin
        let jv, res = Value.as_pair (Process.data local) in
        let j = Value.as_int jv in
        if Value.equal res (Value.pid j) then Process.decide (Value.pid j)
        else if j = 0 then
          (* Unreachable: the induction in the module comment shows the
             scan always finds a winner; kept total for the explorer. *)
          Process.decide (Value.pid pid)
        else read_round (j - 1) (fun data -> Process.at ph_check ~data)
      end
      else invalid_arg (Fmt.str "move-consensus P%d: pc %d" pid pc))

let n_proc_protocol ?(name = "move-consensus-n") ~n () =
  let init =
    List.concat_map
      (fun i -> [ Value.pid i (* r[i,1] *); Value.int (i - 1) (* r[i,2] *) ])
      (List.init n Fun.id)
  in
  let values = Value.int (-1) :: Zoo.pids n in
  let spec = Memory.with_move ~name:mem ~size:(2 * n) ~init values in
  let procs = Array.init n (fun pid -> n_proc ~n ~pid) in
  Protocol.make ~name ~theorem:"Theorem 15 (n processes)" ~procs
    ~env:(Env.make [ (mem, spec) ])
