(* Theorems 19 and 20: atomic multi-register assignment.

   Theorem 19 — n-register assignment solves n-process consensus.
   Each process P_i has a private register r_i, and each pair {i, j}
   shares a register r_ij; all start at ⊥.  P_i atomically assigns its
   identifier to r_i and to its n-1 shared registers (n registers at
   once), then reads all private registers followed by all shared
   registers, and decides on the *earliest* assigner: the candidate [a]
   (private register non-⊥) such that for every other candidate [b] the
   shared register r_ab holds [b]'s value — i.e. [b] overwrote it later.

   Reading privates before shared registers matters: the first assigner F
   assigned before the reader's own assignment, so F's private register
   is set in every read; and any other candidate [b] observed in the
   private pass assigned before the shared pass, so r_Fb was last written
   by [b].  Hence F, and only F, appears minimal in every scan.

   Theorem 20 — n-register assignment solves (2n-2)-process consensus.
   The processes split into two groups of n-1.  Phase one: consensus
   within each group by the Theorem 19 protocol with (n-1)-register
   assignment.  Phase two: each process atomically assigns its group's
   decision to a phase-two private register plus the n-1 registers shared
   with the other group's members (n registers total), then reads all
   phase-two registers and decides on the value of a *source* of the
   cross-group precedence graph — a process with an outgoing but no
   incoming edge.  The paper's Theorem 21 argument shows every source
   lies in the globally-first assigner's group, so all processes decide
   that group's value. *)

open Wfs_spec
open Wfs_sim

let mem = "mem"

(* ---------- generic staged assign-then-scan processes ----------

   Each stage atomically assigns, then reads a fixed list of registers in
   order, then concludes with a value carried into the next stage; the
   last stage's conclusion is the decision.  Local state is the tuple
   (stage, k, carried, acc) where k = 0 means "assign next", k-1 reads
   have been issued otherwise. *)

type stage = {
  assign_of : Value.t -> Op.t;  (* carried value -> atomic assignment *)
  reads : int list;  (* registers to read, in order *)
  conclude : Value.t -> Value.t list -> Value.t;  (* carried -> reads -> out *)
}

let encode ~stage ~k ~carried ~acc =
  Value.pair (Value.int stage)
    (Value.pair (Value.int k) (Value.pair carried (Value.list acc)))

let decode local =
  let stage, rest = Value.as_pair local in
  let k, rest = Value.as_pair rest in
  let carried, acc = Value.as_pair rest in
  (Value.as_int stage, Value.as_int k, carried, Value.as_list acc)

let staged_proc ~pid ~input stages =
  let stages = Array.of_list stages in
  let rec step stage_idx k carried acc =
    let st = stages.(stage_idx) in
    let reads = Array.of_list st.reads in
    if k = 0 then
      Process.invoke ~obj:mem (st.assign_of carried) (fun _ ->
          encode ~stage:stage_idx ~k:1 ~carried ~acc:[])
    else if k - 1 < Array.length reads then
      Process.invoke ~obj:mem
        (Memory.read reads.(k - 1))
        (fun res ->
          encode ~stage:stage_idx ~k:(k + 1) ~carried ~acc:(res :: acc))
    else begin
      let out = st.conclude carried (List.rev acc) in
      if stage_idx = Array.length stages - 1 then Process.decide out
      else step (stage_idx + 1) 0 out []
    end
  in
  Process.make ~pid
    ~init:(encode ~stage:0 ~k:0 ~carried:input ~acc:[])
    (fun local ->
      let stage_idx, k, carried, acc = decode local in
      step stage_idx k carried acc)

(* ---------- Theorem 19 ---------- *)

(* Register layout relative to [base], for member list [ms] (global pids):
   privates base..base+m-1 in member order; then shared pair registers in
   lexicographic member-index order. *)
let pair_list m =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if a < b then Some (a, b) else None)
        (List.init m Fun.id))
    (List.init m Fun.id)

let bank_size m = m + (m * (m - 1) / 2)

let priv_reg ~base i = base + i

let shared_reg ~base ~m a b =
  let a, b = if a < b then (a, b) else (b, a) in
  let rec index k = function
    | [] -> invalid_arg "assign-consensus: bad pair"
    | (x, y) :: rest -> if x = a && y = b then k else index (k + 1) rest
  in
  base + m + index 0 (pair_list m)

(* The Theorem 19 stage for member [me] (index into [values]) of a bank of
   [m] single-shot assigners, where [values.(i)] is what member [i]
   assigns (distinct values required).  Concludes with the earliest
   assigner's value. *)
let thm19_stage ~base ~m ~me ~values =
  let pairs = pair_list m in
  let assignment _carried =
    Memory.assign
      ((priv_reg ~base me, values.(me))
      :: List.filter_map
           (fun j ->
             if j = me then None
             else Some (shared_reg ~base ~m me j, values.(me)))
           (List.init m Fun.id))
  in
  let reads =
    List.init m (fun i -> priv_reg ~base i)
    @ List.map (fun (a, b) -> shared_reg ~base ~m a b) pairs
  in
  let conclude _carried results =
    let results = Array.of_list results in
    let private_of i = results.(i) in
    let shared_of a b =
      let a, b = if a < b then (a, b) else (b, a) in
      let rec find k = function
        | [] -> invalid_arg "assign: missing pair"
        | (x, y) :: rest ->
            if x = a && y = b then results.(m + k) else find (k + 1) rest
      in
      find 0 pairs
    in
    let candidates =
      List.filter
        (fun j -> not (Value.is_bottom (private_of j)))
        (List.init m Fun.id)
    in
    (* a precedes b iff their shared register was last written by b *)
    let precedes a b = Value.equal (shared_of a b) values.(b) in
    let minimal a = List.for_all (fun b -> b = a || precedes a b) candidates in
    match List.find_opt minimal candidates with
    | Some a -> values.(a)
    | None -> values.(me) (* unreachable; kept total *)
  in
  { assign_of = assignment; reads; conclude }

let protocol ?(name = "n-assignment-consensus") ~n () =
  let size = bank_size n in
  let init = List.init size (fun _ -> Value.bottom) in
  let spec =
    Memory.n_assignment ~name:mem ~size ~init (Value.bottom :: Zoo.pids n)
  in
  let values = Array.init n Value.pid in
  let procs =
    Array.init n (fun pid ->
        staged_proc ~pid ~input:(Value.pid pid)
          [ thm19_stage ~base:0 ~m:n ~me:pid ~values ])
  in
  Protocol.make ~name ~theorem:"Theorem 19" ~procs
    ~env:(Env.make [ (mem, spec) ])

(* ---------- Theorem 20 ---------- *)

(* (2n-2)-process protocol from n-register assignment.  Groups
   A = {0..m-1}, B = {m..2m-1} with m = n-1.  Layout:
   - phase-1 bank for A at 0, for B at [bank_size m];
   - phase-2 privates (one per process) at [p2];
   - phase-2 cross registers w_(j,k) (j in A, k in B) at [cross]. *)
let two_phase ?(name = "n-assignment-2n-2-consensus") ~n () =
  let m = n - 1 in
  if m < 1 then invalid_arg "two_phase: n must be at least 2";
  let nprocs = 2 * m in
  let p2 = 2 * bank_size m in
  let cross = p2 + nprocs in
  let size = cross + (m * m) in
  let p2_priv p = p2 + p in
  let w j k = cross + ((j mod m) * m) + (k mod m) in
  (* phase-2 conclusion: find a source of the cross-group precedence
     graph among observed assigners.  [results] lists phase-2 privates in
     pid order, then cross registers in (j, k) row order. *)
  let conclude_phase2 my_value results =
    let results = Array.of_list results in
    let private_of p = results.(p) in
    let cross_of j k = results.(nprocs + ((j mod m) * m) + (k mod m)) in
    let assigned =
      List.filter
        (fun p -> not (Value.is_bottom (private_of p)))
        (List.init nprocs Fun.id)
    in
    let values_seen =
      List.sort_uniq Value.compare (List.map private_of assigned)
    in
    match values_seen with
    | [] -> my_value (* unreachable: the reader itself assigned *)
    | [ v ] -> v (* both groups agree (or only one group active) *)
    | _ ->
        (* distinct group values: the cross register w_jk was last written
           by whichever of j, k assigned later, distinguishable by value.
           Edge j -> k iff j's phase-2 assignment precedes k's. *)
        let group_a p = p < m in
        let edge p q =
          (* p and q observed assigners in different groups *)
          let j, k = if group_a p then (p, q) else (q, p) in
          let last = cross_of j k in
          if Value.equal last (private_of k) then
            (* k wrote later: j precedes k *)
            (if group_a p then `Forward else `Backward)
          else if Value.equal last (private_of j) then
            (if group_a p then `Backward else `Forward)
          else `Unknown
        in
        let outgoing p =
          List.exists
            (fun q -> group_a p <> group_a q && edge p q = `Forward)
            assigned
        in
        let incoming p =
          List.exists
            (fun q -> group_a p <> group_a q && edge q p = `Forward)
            assigned
        in
        let source p = outgoing p && not (incoming p) in
        (match List.find_opt source assigned with
        | Some p -> private_of p
        | None -> my_value (* unreachable; kept total *))
  in
  let proc pid =
    let group_base = if pid < m then 0 else bank_size m in
    let group_members =
      if pid < m then Array.init m Value.pid
      else Array.init m (fun i -> Value.pid (m + i))
    in
    let me = pid mod m in
    (* Theorem 19 within the group; for m = 1 this degenerates gracefully
       to "assign own value, read it back, decide it". *)
    let phase1 = thm19_stage ~base:group_base ~m ~me ~values:group_members in
    let phase2 =
      {
        assign_of =
          (fun group_value ->
            Memory.assign
              ((p2_priv pid, group_value)
              :: List.init m (fun k ->
                     let reg =
                       if pid < m then w pid (m + k) else w k pid
                     in
                     (reg, group_value))));
        reads =
          List.init nprocs p2_priv
          @ List.concat_map
              (fun j -> List.init m (fun k -> w j (m + k)))
              (List.init m Fun.id);
        conclude = conclude_phase2;
      }
    in
    staged_proc ~pid ~input:(Value.pid pid) [ phase1; phase2 ]
  in
  let init = List.init size (fun _ -> Value.bottom) in
  let spec =
    Memory.n_assignment ~name:mem ~size ~init (Value.bottom :: Zoo.pids nprocs)
  in
  Protocol.make ~name ~theorem:"Theorem 20" ~procs:(Array.init nprocs proc)
    ~env:(Env.make [ (mem, spec) ])
