(** Consensus-protocol framework (§3).

    A protocol is a system of processes over a shared-object environment,
    each using its own identifier as input (consensus as election).
    {!verify} machine-checks the paper's partial-correctness and
    wait-freedom conditions over every schedule, via the exhaustive
    explorer. *)

open Wfs_spec
open Wfs_sim

type t = {
  name : string;
  theorem : string;
  processes : int;
  config : Explorer.config;
}

type report = {
  agreement : bool;  (** no execution has two decision values *)
  validity : bool;
      (** every decision names a process that took at least one step *)
  wait_free : bool;
  states : int;
  step_bounds : int array option;
  decisions_seen : Value.t list;
  stuck : (int * string) option;
  truncated : bool;
  truncation : Explorer.truncation option;
      (** which budget cut exploration short, when [truncated] *)
  crashes : int;
      (** the crash-stop budget the run was checked under (0 = the
          original crash-free semantics) *)
}

(** All conditions hold and exploration was complete. *)
val passed : report -> bool

val make :
  name:string -> theorem:string -> procs:Process.t array -> env:Env.t -> t

(** [legacy] selects the reference two-pass explorer engine (see
    {!Explorer.explore}).

    [crashes] (default 0) grants the crash-stop adversary a budget of
    up to that many permanent halts, placed adversarially at any point
    of any schedule (see {!Explorer.explore}).  Agreement and validity
    are then checked over the processes that do decide, and
    wait-freedom demands every surviving process decide on every
    schedule — the paper's own failure model, checked literally.

    [por] (default true) is the explorer's sleep-set partial-order
    reduction (see {!Explorer.explore}): every report field is
    identical with it on or off — the reduction skips redundant
    interleaving *edges*, never states — so [por:false] is an escape
    hatch for differential runs and for reproducing the unreduced
    traversal byte for byte.

    [pool] runs the exploration across a domain pool (see
    {!Explorer.explore}); verdicts on untruncated runs are identical to
    the sequential engine's. *)
val verify :
  ?max_states:int ->
  ?max_depth:int ->
  ?legacy:bool ->
  ?crashes:int ->
  ?por:bool ->
  ?pool:Pool.t ->
  t ->
  report

(** Human-readable truncation cause ("no" when complete). *)
val truncation_label : Explorer.truncation option -> string

(** Run on one concrete schedule (demos, tests). *)
val run_once : ?max_steps:int -> schedule:Scheduler.t -> t -> Runner.outcome

(** Schedule entries of a violating execution: re-exported from
    {!Wfs_obs.Counterexample} so violations convert to on-disk
    counterexamples without translation. *)
type step = Wfs_obs.Counterexample.step = Step of int | Crash of int

(** A concrete failing schedule, extracted when verification would fail:
    feed it back through {!replay} to reproduce. *)
type violation = {
  kind : [ `Disagreement | `Invalid_decision ];
  schedule : step list;
  decisions : (int * Value.t) list;
}

(** [crashes] as in {!verify}; with a positive budget the returned
    schedule may contain [Crash] entries.

    [pool] shards the search over the root's successor branches and
    keeps the lowest-branch-index violation, which — the search being a
    pruned DFS in successor order — is exactly the schedule the
    sequential search returns. *)
val find_violation :
  ?max_states:int -> ?crashes:int -> ?pool:Pool.t -> t -> violation option

val pp_violation : violation Fmt.t

(** Package a violation as a replayable on-disk counterexample;
    [protocol] is the registry key and [n] the process count needed to
    rebuild the protocol. *)
val violation_to_counterexample :
  protocol:string -> n:int -> violation -> Wfs_obs.Counterexample.t

(** Re-execute a schedule deterministically through the explorer's
    successor relation, checking validity at each decide and agreement
    at the terminal state.  [Crash] entries re-apply the adversary's
    halts (the crash budget is the number of such entries).  Returns
    the violation the schedule exhibits, if any.  Raises
    [Invalid_argument] if some pid in the schedule cannot step (or
    crash) where the schedule says it does. *)
val replay : t -> schedule:step list -> violation option

(** [replay_counterexample t ce] re-executes [ce]'s schedule and checks
    that the same violation — kind and decisions — recurs; [Error]
    explains any divergence. *)
val replay_counterexample :
  t -> Wfs_obs.Counterexample.t -> (violation, string) result

val pp_report : report Fmt.t
