(** Consensus-protocol framework (§3).

    A protocol is a system of processes over a shared-object environment,
    each using its own identifier as input (consensus as election).
    {!verify} machine-checks the paper's partial-correctness and
    wait-freedom conditions over every schedule, via the exhaustive
    explorer. *)

open Wfs_spec
open Wfs_sim

type t = {
  name : string;
  theorem : string;
  processes : int;
  config : Explorer.config;
}

type report = {
  agreement : bool;  (** no execution has two decision values *)
  validity : bool;
      (** every decision names a process that took at least one step *)
  wait_free : bool;
  states : int;
  step_bounds : int array option;
  decisions_seen : Value.t list;
  stuck : (int * string) option;
  truncated : bool;
  truncation : Explorer.truncation option;
      (** which budget cut exploration short, when [truncated] *)
}

(** All conditions hold and exploration was complete. *)
val passed : report -> bool

val make :
  name:string -> theorem:string -> procs:Process.t array -> env:Env.t -> t

(** [legacy] selects the reference two-pass explorer engine (see
    {!Explorer.explore}). *)
val verify : ?max_states:int -> ?max_depth:int -> ?legacy:bool -> t -> report

(** Human-readable truncation cause ("no" when complete). *)
val truncation_label : Explorer.truncation option -> string

(** Run on one concrete schedule (demos, tests). *)
val run_once : ?max_steps:int -> schedule:Scheduler.t -> t -> Runner.outcome

(** A concrete failing schedule, extracted when verification would fail:
    replay it with [Scheduler.of_list] to reproduce. *)
type violation = {
  kind : [ `Disagreement | `Invalid_decision ];
  schedule : int list;
  decisions : (int * Value.t) list;
}

val find_violation : ?max_states:int -> t -> violation option
val pp_violation : violation Fmt.t

(** Package a violation as a replayable on-disk counterexample;
    [protocol] is the registry key and [n] the process count needed to
    rebuild the protocol. *)
val violation_to_counterexample :
  protocol:string -> n:int -> violation -> Wfs_obs.Counterexample.t

(** Re-execute a schedule deterministically through the explorer's
    successor relation, checking validity at each decide and agreement
    at the terminal state.  Returns the violation the schedule exhibits,
    if any.  Raises [Invalid_argument] if some pid in the schedule
    cannot step where the schedule says it does. *)
val replay : t -> schedule:int list -> violation option

(** [replay_counterexample t ce] re-executes [ce]'s schedule and checks
    that the same violation — kind and decisions — recurs; [Error]
    explains any divergence. *)
val replay_counterexample :
  t -> Wfs_obs.Counterexample.t -> (violation, string) result

val pp_report : report Fmt.t
