(** Consensus-protocol framework (§3).

    A protocol is a system of processes over a shared-object environment,
    each using its own identifier as input (consensus as election).
    {!verify} machine-checks the paper's partial-correctness and
    wait-freedom conditions over every schedule, via the exhaustive
    explorer. *)

open Wfs_spec
open Wfs_sim

type t = {
  name : string;
  theorem : string;
  processes : int;
  config : Explorer.config;
}

type report = {
  agreement : bool;  (** no execution has two decision values *)
  validity : bool;
      (** every decision names a process that took at least one step *)
  wait_free : bool;
  states : int;
  step_bounds : int array option;
  decisions_seen : Value.t list;
  stuck : (int * string) option;
  truncated : bool;
}

(** All conditions hold and exploration was complete. *)
val passed : report -> bool

val make :
  name:string -> theorem:string -> procs:Process.t array -> env:Env.t -> t

val verify : ?max_states:int -> t -> report

(** Run on one concrete schedule (demos, tests). *)
val run_once : ?max_steps:int -> schedule:Scheduler.t -> t -> Runner.outcome

(** A concrete failing schedule, extracted when verification would fail:
    replay it with [Scheduler.of_list] to reproduce. *)
type violation = {
  kind : [ `Disagreement | `Invalid_decision ];
  schedule : int list;
  decisions : (int * Value.t) list;
}

val find_violation : ?max_states:int -> t -> violation option
val pp_violation : violation Fmt.t

val pp_report : report Fmt.t
