(** Theorem 12: the augmented queue (peek) solves n-process consensus,
    plus the analogous election on a fetch-and-cons list. *)

val protocol : ?name:string -> n:int -> unit -> Protocol.t
val fetch_and_cons : ?name:string -> n:int -> unit -> Protocol.t
