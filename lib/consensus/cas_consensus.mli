(** Theorem 7: compare-and-swap solves n-process consensus for
    arbitrary n. *)

(** [protocol ~n ()] builds the n-process CAS election. *)
val protocol : ?name:string -> n:int -> unit -> Protocol.t
