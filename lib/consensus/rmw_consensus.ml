(* Theorem 4: two-process consensus from any non-trivial read-modify-write
   operation.

   Since f is not the identity there is a v with f(v) ≠ v.  Initialize the
   shared register to v; both processes apply RMW(r, f); whoever sees v
   went first and wins the election. *)

open Wfs_spec
open Wfs_sim

let reg = "r"

(* Find a witness value v with f(v) ≠ v, searching the given domain. *)
let witness ~(rmw : Registers.rmw_op) ~domain =
  let moved v =
    List.filter_map
      (fun arg ->
        let v' = rmw.Registers.f ~arg v in
        if Value.equal v v' then None else Some (arg, v))
      rmw.Registers.args
  in
  let rec search = function
    | [] -> None
    | v :: rest -> ( match moved v with [] -> search rest | w :: _ -> Some w)
  in
  search domain

let proc ~op ~v ~pid ~rival =
  Process.make ~pid ~init:(Process.at 0) (fun local ->
      match Process.pc local with
      | 0 -> Process.invoke ~obj:reg op (fun res -> Process.at 1 ~data:res)
      | 1 ->
          let old = Process.data local in
          Process.decide
            (if Value.equal old v then Value.pid pid else Value.pid rival)
      | pc -> invalid_arg (Fmt.str "rmw-consensus: pc %d" pc))

(* [protocol ~rmw ~domain ()] builds the 2-process protocol for the given
   RMW family, picking any witness value from [domain].  Returns [None]
   when the family is trivial on the whole domain (e.g. [read]). *)
let protocol ?(name = "rmw-consensus") ~(rmw : Registers.rmw_op) ~domain () =
  match witness ~rmw ~domain with
  | None -> None
  | Some (arg, v) ->
      let op = Op.make rmw.Registers.rmw_name arg in
      let env =
        Env.make [ (reg, Registers.rmw_register ~name:"r" ~init:v [ rmw ]) ]
      in
      let procs =
        [| proc ~op ~v ~pid:0 ~rival:1; proc ~op ~v ~pid:1 ~rival:0 |]
      in
      Some (Protocol.make ~name ~theorem:"Theorem 4" ~procs ~env)

let test_and_set () =
  Option.get
    (protocol ~name:"test-and-set-consensus" ~rmw:Registers.test_and_set_op
       ~domain:[ Value.int 0 ] ())

let swap () =
  Option.get
    (protocol ~name:"swap-consensus"
       ~rmw:(Registers.swap_op [ Value.int 1 ])
       ~domain:[ Value.int 0 ] ())

let fetch_and_add () =
  Option.get
    (protocol ~name:"fetch-and-add-consensus"
       ~rmw:(Registers.fetch_and_add_op [ 1 ])
       ~domain:[ Value.int 0 ] ())
