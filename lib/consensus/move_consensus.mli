(** Theorem 15: memory-to-memory move solves n-process consensus. *)

(** The paper's two-process Decide_1/Decide_2 protocol. *)
val two_proc_protocol : ?name:string -> unit -> Protocol.t

(** The iterated-round n-process protocol. *)
val n_proc_protocol : ?name:string -> n:int -> unit -> Protocol.t
