(* Randomized wait-free consensus from read/write registers — the open
   problem the paper's §5 points at ("the use of randomization [1] for
   wait-free concurrent objects remains unexplored"; [1] is Abrahamson,
   PODC 1988).

   Theorem 2 forbids DETERMINISTIC wait-free 2-process consensus from
   registers.  Randomization escapes it: agreement and validity hold on
   every execution, and termination holds with probability 1.

   Two-process algorithm ("racing flags"), one single-writer register
   per process, initially ⊥:

     write my preference to R_me
     loop:
       q := read R_other
       if q = ⊥          then decide my preference   (the rival started
                              after my write, so it will read my flag
                              and can only converge to it)
       if q = preference then decide it              (both flags equal:
                              neither can ever flip again)
       otherwise              flip a coin for a new preference,
                              write it, loop

   Safety sketch (machine-checked below): a decision freezes the
   decider's register; two conflicting decisions would need each
   register frozen at a different value *before* the other's deciding
   read, which contradicts whichever freeze came second.  The ⊥ case
   cannot fire for both processes because each writes before it reads.

   In the simulator, coins are modelled adversarially: each process is
   given a fixed finite coin sequence, and [verify_all_coins] checks
   agreement and validity over EVERY schedule of EVERY coin assignment
   of a given length.  A process that exhausts its coins while still in
   conflict "aborts" (decides a sentinel); safety quantifies over the
   real decisions, and the probability of aborting vanishes with the
   sequence length — that is exactly "terminates with probability 1"
   made finite. *)

open Wfs_spec
open Wfs_sim

let reg = "flags"

let aborted = Value.str "coins-exhausted"

(* local state: (pc, pref, coins) *)
let encode pc pref coins =
  Value.pair (Value.int pc) (Value.pair (Value.bool pref) (Value.list coins))

let decode local =
  let pc, rest = Value.as_pair local in
  let pref, coins = Value.as_pair rest in
  (Value.as_int pc, Value.truth pref, Value.as_list coins)

let ph_write = 0
let ph_read = 1

let proc ~pid ~input ~coins =
  let rival = 1 - pid in
  Process.make ~pid
    ~init:(encode ph_write input (List.map Value.bool coins))
    (fun local ->
      let pc, pref, coins = decode local in
      if pc = ph_write then
        Process.invoke ~obj:reg
          (Memory.write pid (Value.bool pref))
          (fun _ -> encode ph_read pref coins)
      else if pc = ph_read then
        Process.invoke ~obj:reg (Memory.read rival) (fun q ->
            if Value.is_bottom q then
              (* other not started: safe to decide; encode the decision
                 as a final pc so the next activation decides *)
              encode 2 pref coins
            else if Value.equal q (Value.bool pref) then encode 2 pref coins
            else begin
              match coins with
              | [] -> encode 3 pref [] (* abort *)
              | c :: rest -> encode ph_write (Value.truth c) rest
            end)
      else if pc = 2 then Process.decide (Value.bool pref)
      else Process.decide aborted)

let config ~inputs ~coins =
  let spec =
    Memory.memory ~name:reg ~ops:[ Memory.Read; Memory.Write ] ~size:2
      ~init:[ Value.bottom; Value.bottom ]
      [ Value.bool false; Value.bool true ]
  in
  let procs =
    Array.init 2 (fun pid ->
        proc ~pid ~input:inputs.(pid) ~coins:coins.(pid))
  in
  { Explorer.procs; env = Env.make [ (reg, spec) ] }

type verification = {
  ok : bool;
  configurations : int;  (** coin-assignment × input combinations checked *)
  states : int;  (** total joint states across configurations *)
  aborts_possible : bool;
      (** some schedule ran out of coins (expected for short sequences) *)
  failure : string option;
}

(* All coin lists of length [flips]. *)
let rec coin_lists flips =
  if flips = 0 then [ [] ]
  else
    let shorter = coin_lists (flips - 1) in
    List.map (fun l -> true :: l) shorter
    @ List.map (fun l -> false :: l) shorter

let check_terminal ~inputs (node : Explorer.node) =
  let decisions = Array.to_list node.Explorer.decided |> List.map Option.get in
  let real = List.filter (fun d -> not (Value.equal d aborted)) decisions in
  let valid v =
    Array.exists (fun input -> Value.equal (Value.bool input) v) inputs
  in
  match real with
  | [] -> Ok `Aborted
  | [ v ] -> if valid v then Ok `Decided else Error (Fmt.str "invalid %a" Value.pp v)
  | v :: rest ->
      if not (List.for_all (Value.equal v) rest) then
        Error
          (Fmt.str "disagreement: %a"
             Fmt.(list ~sep:comma Value.pp)
             decisions)
      else if valid v then Ok `Decided
      else Error (Fmt.str "invalid %a" Value.pp v)

(* Exhaustive safety check: all schedules x all coin assignments of the
   given length x all input combinations. *)
let verify_all_coins ?(flips = 3) () =
  let coin_choices = coin_lists flips in
  let states = ref 0 in
  let configurations = ref 0 in
  let aborts = ref false in
  let failure = ref None in
  List.iter
    (fun (i0, i1) ->
      let inputs = [| i0; i1 |] in
      List.iter
        (fun c0 ->
          List.iter
            (fun c1 ->
              incr configurations;
              let cfg = config ~inputs ~coins:[| c0; c1 |] in
              let seen : (Value.t, unit) Hashtbl.t = Hashtbl.create 256 in
              let rec dfs node =
                let k = Explorer.key node in
                if not (Hashtbl.mem seen k) then begin
                  Hashtbl.replace seen k ();
                  if Explorer.is_terminal node then begin
                    match check_terminal ~inputs node with
                    | Ok `Aborted -> aborts := true
                    | Ok `Decided -> ()
                    | Error e -> if !failure = None then failure := Some e
                  end
                  else
                    List.iter
                      (fun (_, succ) -> dfs succ)
                      (Explorer.successors cfg node)
                end
              in
              dfs (Explorer.initial cfg);
              states := !states + Hashtbl.length seen)
            coin_choices)
        coin_choices)
    [ (false, false); (false, true); (true, false); (true, true) ];
  {
    ok = !failure = None;
    configurations = !configurations;
    states = !states;
    aborts_possible = !aborts;
    failure = !failure;
  }

(* One run under a seeded schedule, for demos; abort probability decays
   with [flips]. *)
let run ?(flips = 20) ~inputs ~seed () =
  let state = ref (seed * 2654435761) in
  let coin () =
    state := (!state * 1103515245) + 12345;
    !state land 0x10000 <> 0
  in
  let coins = [| List.init flips (fun _ -> coin ()); List.init flips (fun _ -> coin ()) |] in
  let cfg = config ~inputs ~coins in
  Runner.run ~procs:cfg.Explorer.procs ~env:cfg.Explorer.env
    ~schedule:(Scheduler.random ~seed) ()
