(** Theorem 9: two-process consensus from a FIFO queue, plus the paper's
    "trivial variations" for stacks, priority queues, sets and any
    order-sensitive deterministic object. *)

val protocol : ?name:string -> unit -> Protocol.t
val stack : ?name:string -> unit -> Protocol.t
val priority_queue : ?name:string -> unit -> Protocol.t
val set : ?name:string -> unit -> Protocol.t
val counter : ?name:string -> unit -> Protocol.t
