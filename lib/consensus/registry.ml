(* A catalogue of every consensus protocol in the repository, keyed by
   the object family it runs on — the constructive half of Figure 1-1.
   The hierarchy table and the CLI both drive verification through this
   registry. *)

open Wfs_spec
open Wfs_sim

type entry = {
  key : string;  (** stable identifier, e.g. ["cas"] *)
  object_family : string;  (** what Figure 1-1 calls the object *)
  theorem : string;
  consensus_number : [ `Exactly of int | `At_least_any_n ];
      (** the paper's claim: level in Figure 1-1 *)
  build : n:int -> Protocol.t option;
      (** protocol for [n] processes, if the object supports it *)
}

(* The sticky consensus object trivially solves consensus at any n. *)
let sticky_protocol ~n =
  let obj = "c" in
  let proc ~pid =
    Process.make ~pid ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj
              (Consensus_object.decide (Value.pid pid))
              (fun res -> Process.at 1 ~data:res)
        | 1 -> Process.decide (Process.data local)
        | pc -> invalid_arg (Fmt.str "sticky-consensus: pc %d" pc))
  in
  let env =
    Env.make
      [ (obj, Consensus_object.single ~name:obj ~values:(Zoo.pids n) ()) ]
  in
  Protocol.make ~name:"consensus-object" ~theorem:"§4.2 (definition)"
    ~procs:(Array.init n (fun pid -> proc ~pid))
    ~env

let only_two build ~n = if n = 2 then Some (build ()) else None
let any_n build ~n = if n >= 2 then Some (build ~n ()) else None

let entries : entry list =
  [
    {
      key = "test-and-set";
      object_family = "test-and-set";
      theorem = "Theorem 4";
      consensus_number = `Exactly 2;
      build = only_two Rmw_consensus.test_and_set;
    };
    {
      key = "rmw-swap";
      object_family = "swap (read-modify-write)";
      theorem = "Theorem 4";
      consensus_number = `Exactly 2;
      build = only_two Rmw_consensus.swap;
    };
    {
      key = "fetch-and-add";
      object_family = "fetch-and-add";
      theorem = "Theorem 4";
      consensus_number = `Exactly 2;
      build = only_two Rmw_consensus.fetch_and_add;
    };
    {
      key = "queue";
      object_family = "FIFO queue";
      theorem = "Theorems 9, 11";
      consensus_number = `Exactly 2;
      build = only_two (fun () -> Queue_consensus.protocol ());
    };
    {
      key = "stack";
      object_family = "stack";
      theorem = "Theorem 9 (variation)";
      consensus_number = `Exactly 2;
      build = only_two (fun () -> Queue_consensus.stack ());
    };
    {
      key = "priority-queue";
      object_family = "priority queue";
      theorem = "Theorem 9 (variation)";
      consensus_number = `Exactly 2;
      build = only_two (fun () -> Queue_consensus.priority_queue ());
    };
    {
      key = "set";
      object_family = "set";
      theorem = "Theorem 9 (variation)";
      consensus_number = `Exactly 2;
      build = only_two (fun () -> Queue_consensus.set ());
    };
    {
      key = "counter";
      object_family = "counter";
      theorem = "Theorem 9 (variation)";
      consensus_number = `Exactly 2;
      build = only_two (fun () -> Queue_consensus.counter ());
    };
    {
      key = "cas";
      object_family = "compare-and-swap";
      theorem = "Theorem 7";
      consensus_number = `At_least_any_n;
      build = any_n (fun ~n () -> Cas_consensus.protocol ~n ());
    };
    {
      key = "augmented-queue";
      object_family = "augmented queue (peek)";
      theorem = "Theorem 12";
      consensus_number = `At_least_any_n;
      build = any_n (fun ~n () -> Aug_queue_consensus.protocol ~n ());
    };
    {
      key = "fetch-and-cons";
      object_family = "fetch-and-cons";
      theorem = "§4.1";
      consensus_number = `At_least_any_n;
      build = any_n (fun ~n () -> Aug_queue_consensus.fetch_and_cons ~n ());
    };
    {
      key = "move";
      object_family = "memory-to-memory move";
      theorem = "Theorem 15";
      consensus_number = `At_least_any_n;
      build =
        (fun ~n ->
          if n = 2 then Some (Move_consensus.two_proc_protocol ())
          else if n > 2 then Some (Move_consensus.n_proc_protocol ~n ())
          else None);
    };
    {
      key = "memory-swap";
      object_family = "memory-to-memory swap";
      theorem = "Theorem 16";
      consensus_number = `At_least_any_n;
      build = any_n (fun ~n () -> Swap_consensus.protocol ~n ());
    };
    {
      key = "n-assignment";
      object_family = "n-register assignment";
      theorem = "Theorems 19-22";
      consensus_number = `At_least_any_n (* 2n-2 for n-assignment *);
      build = any_n (fun ~n () -> Assign_consensus.protocol ~n ());
    };
    {
      key = "n-assignment-2n-2";
      object_family = "n-register assignment (two-phase)";
      theorem = "Theorem 20";
      consensus_number = `At_least_any_n;
      build =
        (fun ~n ->
          (* n here is the process count 2m; requires an (m+1)-register
             assignment object *)
          if n >= 2 && n mod 2 = 0 then
            Some (Assign_consensus.two_phase ~n:((n / 2) + 1) ())
          else None);
    };
    {
      key = "ordered-broadcast";
      object_family = "broadcast with ordered delivery";
      theorem = "§3.1 (DDS)";
      consensus_number = `At_least_any_n;
      build = any_n (fun ~n () -> Channel_consensus.protocol ~n ());
    };
    {
      key = "consensus-object";
      object_family = "consensus object";
      theorem = "§4.2";
      consensus_number = `At_least_any_n;
      build = any_n (fun ~n () -> sticky_protocol ~n);
    };
  ]

(* --- deliberately broken protocols ---

   Theorem 2 says registers cannot solve 2-process consensus, so any
   register-only attempt fails on some schedule.  This naive attempt
   (write your pid, read, decide what you read) is catalogued so
   [wfs verify] has a protocol whose counterexample schedule can be
   exported and replayed; it is kept out of {!entries} because the
   hierarchy table and the tests treat those as sound. *)

let naive_register_protocol ~n =
  let obj = "r" in
  let proc ~pid =
    Process.make ~pid ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj (Registers.write (Value.pid pid)) (fun _ ->
                Process.at 1)
        | 1 -> Process.invoke ~obj Registers.read (fun res -> Process.at 2 ~data:res)
        | 2 -> Process.decide (Process.data local)
        | pc -> invalid_arg (Fmt.str "naive-register: pc %d" pc))
  in
  Protocol.make ~name:"naive-register-consensus"
    ~theorem:"Theorem 2 (impossible — expected to fail)"
    ~procs:(Array.init n (fun pid -> proc ~pid))
    ~env:
      (Env.make
         [ (obj, Registers.atomic ~name:obj ~init:Value.bottom (Zoo.pids n)) ])

let broken : entry list =
  [
    {
      key = "register-naive";
      object_family = "read/write register (naive attempt)";
      theorem = "Theorem 2 (expected to fail)";
      consensus_number = `Exactly 1;
      build = (fun ~n -> if n >= 2 then Some (naive_register_protocol ~n) else None);
    };
  ]

let find key =
  match
    List.find_opt (fun e -> String.equal e.key key) (entries @ broken)
  with
  | Some e -> e
  | None -> invalid_arg (Fmt.str "Registry.find: unknown protocol %S" key)

let keys () = List.map (fun e -> e.key) (entries @ broken)
