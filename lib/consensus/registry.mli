(** Catalogue of every consensus protocol in the repository — the
    constructive half of Figure 1-1. *)

type entry = {
  key : string;
  object_family : string;
  theorem : string;
  consensus_number : [ `Exactly of int | `At_least_any_n ];
  build : n:int -> Protocol.t option;
}

(** Sound protocols only — every entry verifies over all schedules. *)
val entries : entry list

(** Deliberately broken protocols (e.g. the naive Theorem 2 register
    attempt), for exercising counterexample export and replay.  Not in
    {!entries}: the hierarchy table treats those as sound. *)
val broken : entry list

(** Looks up both {!entries} and {!broken}. *)
val find : string -> entry

(** Keys of {!entries} and {!broken}. *)
val keys : unit -> string list
