(** Catalogue of every consensus protocol in the repository — the
    constructive half of Figure 1-1. *)

type entry = {
  key : string;
  object_family : string;
  theorem : string;
  consensus_number : [ `Exactly of int | `At_least_any_n ];
  build : n:int -> Protocol.t option;
}

val entries : entry list
val find : string -> entry
val keys : unit -> string list
