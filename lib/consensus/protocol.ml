(* The consensus-protocol framework (§3).

   A protocol is a system of n processes over a shared-object
   environment; each process starts with its own identifier as input
   (consensus as election) and must decide.  [verify] checks the paper's
   conditions over *every* schedule, via the exhaustive explorer:

   - agreement: no execution has two decision values;
   - validity: if an execution decides P_j, then P_j took at least one
     step (rules out predefined choices);
   - wait-freedom: no process takes infinitely many steps without
     deciding (= joint-state graph acyclicity), and nothing gets stuck. *)

open Wfs_spec
open Wfs_sim

type t = {
  name : string;
  theorem : string;  (** which part of the paper this implements *)
  processes : int;
  config : Explorer.config;
}

type report = {
  agreement : bool;
  validity : bool;
  wait_free : bool;
  states : int;
  step_bounds : int array option;
  decisions_seen : Value.t list;  (** distinct decision values over all runs *)
  stuck : (int * string) option;
  truncated : bool;
  truncation : Explorer.truncation option;
      (** which budget cut exploration short, when [truncated] *)
  crashes : int;  (** crash-stop adversary budget the run was checked under *)
}

let passed r = r.agreement && r.validity && r.wait_free && not r.truncated

let make ~name ~theorem ~procs ~env =
  {
    name;
    theorem;
    processes = Array.length procs;
    config = { Explorer.procs; env };
  }

(* Agreement over the processes that decide: crashed processes have no
   decision slot to compare.  (Without crashes every slot is [Some].) *)
let terminal_agreement (t : Explorer.terminal) =
  match
    Array.to_list t.Explorer.decisions |> List.filter_map (fun d -> d)
  with
  | [] -> true
  | d0 :: rest -> List.for_all (Value.equal d0) rest

let verify ?(max_states = 2_000_000) ?max_depth ?legacy ?(crashes = 0) ?por
    ?pool t =
  let stats =
    Explorer.explore ~max_states ?max_depth ?legacy ~crashes ?por ?pool
      t.config
  in
  let agreement = List.for_all terminal_agreement stats.Explorer.terminals in
  (* Validity is checked at every decide event during exploration — the
     paper's condition applied to every history prefix. *)
  let validity = stats.Explorer.invalid_decisions = [] in
  let decisions_seen =
    List.sort_uniq Value.compare
      (List.concat_map
         (fun (term : Explorer.terminal) ->
           Array.to_list term.Explorer.decisions |> List.filter_map (fun d -> d))
         stats.Explorer.terminals)
  in
  {
    agreement;
    validity;
    (* Wait-freedom of the survivors: crash edges strictly grow the
       crashed mask, so any cycle lies among live processes — acyclicity
       plus terminality says every non-crashed process decides on every
       schedule, whatever the adversary crashes. *)
    wait_free = Explorer.wait_free stats;
    states = stats.Explorer.states;
    step_bounds = stats.Explorer.step_bounds;
    decisions_seen;
    stuck = stats.Explorer.stuck;
    truncated = stats.Explorer.truncated;
    truncation = stats.Explorer.truncation;
    crashes;
  }

(* Spot-check a protocol on a single schedule (used by tests and demos):
   returns the decisions, checking completion. *)
let run_once ?(max_steps = 100_000) ~schedule t =
  Runner.run ~max_steps ~procs:t.config.Explorer.procs
    ~env:t.config.Explorer.env ~schedule ()

(* --- counterexample extraction ---

   When verification fails, produce the concrete schedule that breaks
   the protocol: the sequence of process ids whose steps lead to a
   disagreeing terminal or an invalid decision.  Replaying it through
   {!run_once} with [Scheduler.of_list] reproduces the failure. *)

type step = Wfs_obs.Counterexample.step = Step of int | Crash of int

type violation = {
  kind : [ `Disagreement | `Invalid_decision ];
  schedule : step list;  (** steps and crash points, in order *)
  decisions : (int * Value.t) list;
}

(* The search is a DFS in successor order with visited-set pruning; the
   violation returned is therefore the one at the DFS-first violating
   node.  The parallel mode below shards the root's successor branches
   across the pool, each branch searched with its own visited set
   (seeded with the root), and keeps the lowest-branch-index result.
   That reproduces the sequential answer exactly: a branch's private
   search expands a superset of what the sequential search expands
   inside that branch, but every extra node was already expanded —
   violation-free — in an earlier branch of the sequential order, so
   the first violating node per branch, and the access path to it, are
   identical to the sequential search's; and the earliest violating
   branch wins in both. *)
let find_violation ?(max_states = 2_000_000) ?(crashes = 0) ?pool t =
  let cfg = t.config in
  let exception Found of violation in
  let violation_at node path kind =
    let decisions =
      Array.to_list node.Explorer.decided
      |> List.mapi (fun pid d -> (pid, d))
      |> List.filter_map (fun (pid, d) -> Option.map (fun v -> (pid, v)) d)
    in
    raise (Found { kind; schedule = List.rev path; decisions })
  in
  let rec dfs seen node path =
    let k = Explorer.key node in
    if (not (Value.Tbl.mem seen k)) && Value.Tbl.length seen < max_states
    then begin
      Value.Tbl.replace seen k ();
      if Explorer.is_terminal node then begin
        if not (terminal_agreement
                  {
                    Explorer.decisions = node.Explorer.decided;
                    who_stepped = node.Explorer.stepped;
                    who_crashed = node.Explorer.crashed;
                  })
        then violation_at node path `Disagreement
      end
      else
        List.iter
          (fun (pid, edge, succ) ->
            let entry =
              match edge with
              | Explorer.Crash_edge -> Crash pid
              | Explorer.Decide_edge _ | Explorer.Op_edge -> Step pid
            in
            (match edge with
            | Explorer.Decide_edge v
              when not (Explorer.decision_valid node ~pid v) ->
                violation_at succ (entry :: path) `Invalid_decision
            | Explorer.Decide_edge _ | Explorer.Op_edge
            | Explorer.Crash_edge ->
                ());
            dfs seen succ (entry :: path))
          (Explorer.successors_with_edges ~crashes cfg node)
    end
  in
  let sequential () =
    match dfs (Value.Tbl.create 4096) (Explorer.initial cfg) [] with
    | () -> None
    | exception Found v -> Some v
  in
  match pool with
  | Some p when Wfs_sim.Pool.size p > 1 -> (
      let root = Explorer.initial cfg in
      if Explorer.is_terminal root then sequential ()
      else
        match Explorer.successors_with_edges ~crashes cfg root with
        | [] -> None
        | succs ->
            let root_key = Explorer.key root in
            let results =
              Wfs_sim.Pool.parallel_map p
                (fun (pid, edge, succ) ->
                  let seen : unit Value.Tbl.t = Value.Tbl.create 4096 in
                  Value.Tbl.replace seen root_key ();
                  let entry =
                    match edge with
                    | Explorer.Crash_edge -> Crash pid
                    | Explorer.Decide_edge _ | Explorer.Op_edge -> Step pid
                  in
                  match
                    (match edge with
                    | Explorer.Decide_edge v
                      when not (Explorer.decision_valid root ~pid v) ->
                        violation_at succ [ entry ] `Invalid_decision
                    | Explorer.Decide_edge _ | Explorer.Op_edge
                    | Explorer.Crash_edge ->
                        ());
                    dfs seen succ [ entry ]
                  with
                  | () -> None
                  | exception Found v -> Some v)
                (Array.of_list succs)
            in
            Array.fold_left
              (fun acc r -> match acc with Some _ -> acc | None -> r)
              None results)
  | _ -> sequential ()

(* --- replayable export ---

   A violation plus the registry key and process count is everything
   needed to re-execute it: the joint-state graph is deterministic given
   "who steps next". *)

(* [violation.schedule] already uses [Counterexample.step], so this is a
   pure repackaging. *)
let violation_to_counterexample ~protocol ~n (v : violation) =
  {
    Wfs_obs.Counterexample.protocol;
    n;
    kind =
      (match v.kind with
      | `Disagreement -> Wfs_obs.Counterexample.Disagreement
      | `Invalid_decision -> Wfs_obs.Counterexample.Invalid_decision);
    schedule = v.schedule;
    decisions = v.decisions;
  }

(* Deterministic re-execution of a schedule through the explorer's
   successor relation, checking the paper's conditions at each step —
   the engine behind [wfs replay].  [Crash] entries re-apply the
   adversary's halts; the budget granted to the successor relation is
   exactly the number of crash entries in the schedule, so replays never
   invent crash freedom the original search did not have. *)
let replay t ~schedule =
  let cfg = t.config in
  let crashes =
    List.length (List.filter (function Crash _ -> true | Step _ -> false)
                   schedule)
  in
  let decisions_of (node : Explorer.node) =
    Array.to_list node.Explorer.decided
    |> List.mapi (fun pid d -> (pid, d))
    |> List.filter_map (fun (pid, d) -> Option.map (fun v -> (pid, v)) d)
  in
  let rec go node path = function
    | [] ->
        if
          Explorer.is_terminal node
          && not (terminal_agreement
                    {
                      Explorer.decisions = node.Explorer.decided;
                      who_stepped = node.Explorer.stepped;
                      who_crashed = node.Explorer.crashed;
                    })
        then
          Some
            {
              kind = `Disagreement;
              schedule = List.rev path;
              decisions = decisions_of node;
            }
        else None
    | entry :: rest -> (
        let pid = Wfs_obs.Counterexample.step_pid entry in
        let want_crash =
          match entry with Crash _ -> true | Step _ -> false
        in
        match
          List.find_opt
            (fun (p, e, _) ->
              p = pid && want_crash = (e = Explorer.Crash_edge))
            (Explorer.successors_with_edges ~crashes cfg node)
        with
        | None ->
            invalid_arg
              (Fmt.str
                 "Protocol.replay: process %d cannot %s at schedule \
                  position %d"
                 pid
                 (if want_crash then "crash" else "step")
                 (List.length path))
        | Some (_, edge, succ) -> (
            match edge with
            | Explorer.Decide_edge v
              when not (Explorer.decision_valid node ~pid v) ->
                Some
                  {
                    kind = `Invalid_decision;
                    schedule = List.rev (entry :: path);
                    decisions = decisions_of succ;
                  }
            | Explorer.Decide_edge _ | Explorer.Op_edge
            | Explorer.Crash_edge ->
                go succ (entry :: path) rest))
  in
  go (Explorer.initial cfg) [] schedule

(* [replay] against a loaded counterexample: does re-executing its
   schedule reproduce the recorded violation? *)
let replay_counterexample t (ce : Wfs_obs.Counterexample.t) =
  match replay t ~schedule:ce.Wfs_obs.Counterexample.schedule with
  | None -> Error "schedule re-executed without any violation"
  | Some v ->
      let kind_matches =
        match (v.kind, ce.Wfs_obs.Counterexample.kind) with
        | `Disagreement, Wfs_obs.Counterexample.Disagreement
        | `Invalid_decision, Wfs_obs.Counterexample.Invalid_decision ->
            true
        | _ -> false
      in
      let decisions_match =
        List.length v.decisions
          = List.length ce.Wfs_obs.Counterexample.decisions
        && List.for_all2
             (fun (p, d) (p', d') -> p = p' && Value.equal d d')
             v.decisions ce.Wfs_obs.Counterexample.decisions
      in
      if not kind_matches then
        Error
          (Fmt.str "reproduced a %s, but the file records a %s"
             (match v.kind with
             | `Disagreement -> "disagreement"
             | `Invalid_decision -> "invalid decision")
             (Wfs_obs.Counterexample.kind_to_string
                ce.Wfs_obs.Counterexample.kind))
      else if not decisions_match then
        Error "violation reproduced, but with different decisions"
      else Ok v

let pp_violation ppf v =
  Fmt.pf ppf "@[<v>%s on schedule [%a]@ decisions: %a@]"
    (match v.kind with
    | `Disagreement -> "DISAGREEMENT"
    | `Invalid_decision -> "INVALID DECISION")
    Fmt.(list ~sep:(any "; ") Wfs_obs.Counterexample.pp_step)
    v.schedule
    Fmt.(
      list ~sep:(any ", ") (fun ppf (p, d) -> Fmt.pf ppf "P%d=%a" p Value.pp d))
    v.decisions

let truncation_label = function
  | None -> "no"
  | Some Explorer.Budget_states -> "states-budget"
  | Some Explorer.Budget_depth -> "depth-budget"

(* [crashes=] appears only for crash-budget runs, so crash-free reports
   are byte-identical to what the repo printed before the fault layer. *)
let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>agreement=%b validity=%b wait-free=%b states=%d truncated=%s%s@ \
     decisions seen: %a%a%a@]"
    r.agreement r.validity r.wait_free r.states
    (truncation_label r.truncation)
    (if r.crashes > 0 then Printf.sprintf " crashes=%d" r.crashes else "")
    Fmt.(list ~sep:(any ", ") Value.pp)
    r.decisions_seen
    Fmt.(
      option (fun ppf b ->
          Fmt.pf ppf "@ step bounds: %a" (Fmt.array ~sep:(Fmt.any " ") Fmt.int) b))
    r.step_bounds
    Fmt.(
      option (fun ppf (p, reason) -> Fmt.pf ppf "@ STUCK P%d: %s" p reason))
    r.stuck
