(* Umbrella module: the public API of the wait-free synchronization
   library, re-exporting every sub-library under one namespace.

     Wfs.Value, Wfs.Op, Wfs.Object_spec, Wfs.Zoo    — specifications
     Wfs.Event, Wfs.History, Wfs.Linearizability   — histories
     Wfs.Process, Wfs.Env, Wfs.Scheduler,
     Wfs.Runner, Wfs.Explorer, Wfs.Valency         — simulation
     Wfs.Protocol, Wfs.Registry, ...               — consensus protocols
     Wfs.Interference, Wfs.Solver, Wfs.Table       — the hierarchy
     Wfs.Merge, Wfs.Replay, Wfs.Log_universal, ... — universal constructions
     Wfs.Runtime.*                                 — multicore runtime *)

(* specifications *)
module Value = Wfs_spec.Value
module Op = Wfs_spec.Op
module Object_spec = Wfs_spec.Object_spec
module Registers = Wfs_spec.Registers
module Queues = Wfs_spec.Queues
module Collections = Wfs_spec.Collections
module Memory = Wfs_spec.Memory
module Channels = Wfs_spec.Channels
module Fetch_and_cons = Wfs_spec.Fetch_and_cons
module Consensus_object = Wfs_spec.Consensus_object
module Zoo = Wfs_spec.Zoo

(* histories *)
module Event = Wfs_history.Event
module History = Wfs_history.History
module Linearizability = Wfs_history.Linearizability
module Sequential_consistency = Wfs_history.Sequential_consistency

(* simulation *)
module Process = Wfs_sim.Process
module Env = Wfs_sim.Env
module Scheduler = Wfs_sim.Scheduler
module Runner = Wfs_sim.Runner
module Explorer = Wfs_sim.Explorer
module Valency = Wfs_sim.Valency
module Intern = Wfs_sim.Intern
module Pool = Wfs_sim.Pool

(* consensus protocols *)
module Protocol = Wfs_consensus.Protocol
module Rmw_consensus = Wfs_consensus.Rmw_consensus
module Cas_consensus = Wfs_consensus.Cas_consensus
module Queue_consensus = Wfs_consensus.Queue_consensus
module Aug_queue_consensus = Wfs_consensus.Aug_queue_consensus
module Move_consensus = Wfs_consensus.Move_consensus
module Swap_consensus = Wfs_consensus.Swap_consensus
module Assign_consensus = Wfs_consensus.Assign_consensus
module Channel_consensus = Wfs_consensus.Channel_consensus
module Randomized = Wfs_consensus.Randomized
module Registry = Wfs_consensus.Registry

(* the hierarchy *)
module Interference = Wfs_hierarchy.Interference
module Solver = Wfs_hierarchy.Solver
module Table = Wfs_hierarchy.Table
module Census = Wfs_hierarchy.Census

(* universal constructions *)
module Merge = Wfs_universal.Merge
module Replay = Wfs_universal.Replay
module Log_universal = Wfs_universal.Log_universal
module Truncating_universal = Wfs_universal.Truncating_universal
module Consensus_fac = Wfs_universal.Consensus_fac
module Composed = Wfs_universal.Composed

(* observability: metrics, tracing, replayable counterexamples *)
module Obs = struct
  module Json = Wfs_obs.Json
  module Metrics = Wfs_obs.Metrics
  module Export = Wfs_obs.Export
  module Sampler = Wfs_obs.Sampler
  module Units = Wfs_obs.Units
  module Trace = Wfs_obs.Trace
  module Clock = Wfs_obs.Clock
  module Counterexample = Wfs_obs.Counterexample
  module Profile = Wfs_obs.Profile
  module Progress = Wfs_obs.Progress
  module Causal = Wfs_obs.Causal
end

(* multicore runtime *)
module Runtime = struct
  module Primitives = Wfs_runtime.Primitives
  module Consensus = Wfs_runtime.Consensus_rt
  module Fetch_and_cons = Wfs_runtime.Fetch_and_cons_rt
  module Universal = Wfs_runtime.Universal_rt
  module Seq_objects = Wfs_runtime.Seq_objects
  module Baselines = Wfs_runtime.Baselines
  module Lamport_queue = Wfs_runtime.Lamport_queue
  module Randomized = Wfs_runtime.Randomized_rt
  module Recorder = Wfs_runtime.Recorder
  module Fault = Wfs_runtime.Fault
  module Service = Wfs_runtime.Service
end
