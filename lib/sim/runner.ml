(* Single-schedule execution of a protocol: run the processes under a
   scheduling policy until every process has decided (or a step budget is
   exhausted), recording the trace, the induced event history, and the
   decisions. *)

open Wfs_spec

type step = { pid : int; obj : string; op : Op.t; res : Value.t }

type outcome = {
  decisions : (int * Value.t) list;  (** pid, decision — in decision order *)
  trace : step list;  (** atomic steps in execution order *)
  history : Wfs_history.History.t;  (** the same steps as INVOKE/RESPOND events *)
  steps_taken : int array;  (** per-process operation count *)
  completed : bool;  (** all processes decided within the budget *)
}

exception Stuck of { pid : int; reason : string }

let history_of_trace trace =
  List.concat_map
    (fun { pid; obj; op; res } ->
      [
        Wfs_history.Event.invoke ~pid ~obj op;
        Wfs_history.Event.respond ~pid ~obj res;
      ])
    trace

let run ?(max_steps = 100_000) ~procs ~env ~schedule () =
  let n = Array.length procs in
  let locals = Array.map (fun p -> p.Process.init) procs in
  let decided = Array.make n None in
  let steps_taken = Array.make n 0 in
  let env_state = ref (Env.init env) in
  let trace = ref [] in
  let decisions = ref [] in
  let step_no = ref 0 in
  let runnable () =
    List.filter (fun p -> decided.(p) = None) (List.init n Fun.id)
  in
  let completed = ref false in
  (try
     while not !completed do
       match runnable () with
       | [] -> completed := true
       | runnable_pids ->
           if !step_no >= max_steps then raise Exit;
           let pid = schedule ~step:!step_no ~runnable:runnable_pids in
           if not (List.mem pid runnable_pids) then
             raise (Stuck { pid; reason = "scheduler chose a decided process" });
           incr step_no;
           let proc = procs.(pid) in
           (match Process.action proc locals.(pid) with
           | Process.Decide v ->
               decided.(pid) <- Some v;
               decisions := (pid, v) :: !decisions
           | Process.Invoke { obj; op; next } ->
               let env_state', res = Env.apply env !env_state obj op in
               env_state := env_state';
               locals.(pid) <- next res;
               steps_taken.(pid) <- steps_taken.(pid) + 1;
               trace := { pid; obj; op; res } :: !trace)
     done
   with Exit -> ());
  let trace = List.rev !trace in
  {
    decisions = List.rev !decisions;
    trace;
    history = history_of_trace trace;
    steps_taken;
    completed = !completed;
  }

let pp_step ppf { pid; obj; op; res } =
  Fmt.pf ppf "P%d: %s.%a -> %a" pid obj Op.pp op Value.pp res

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>%a@ decisions: %a@]"
    Fmt.(list ~sep:cut pp_step)
    o.trace
    Fmt.(
      list ~sep:(any ", ") (fun ppf (p, v) -> Fmt.pf ppf "P%d=%a" p Value.pp v))
    o.decisions
