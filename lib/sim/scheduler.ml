(* Schedulers: policies for choosing which runnable process steps next.

   The concurrent scheduler of §2.3 relays invocations asynchronously but
   reliably; operationally, all its freedom is in the interleaving order,
   which is what a policy below picks.  The exhaustive explorer plays the
   full adversary instead and does not use these. *)

type t = step:int -> runnable:int list -> int

let round_robin : t =
 fun ~step ~runnable ->
  match runnable with
  | [] -> invalid_arg "Scheduler.round_robin: no runnable process"
  | _ -> List.nth runnable (step mod List.length runnable)

(* Deterministic splitmix-style PRNG so simulated "random" schedules are
   reproducible from a seed. *)
let random ~seed : t =
  let state = ref (Int64.of_int (seed lxor 0x9e3779b9)) in
  let next_int bound =
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    let x = Int64.to_int (Int64.shift_right_logical !state 17) in
    abs x mod bound
  in
  fun ~step:_ ~runnable ->
    match runnable with
    | [] -> invalid_arg "Scheduler.random: no runnable process"
    | _ -> List.nth runnable (next_int (List.length runnable))

(* Run one process as long as possible, then the next — the schedule that
   exhibits the worst case for lock-based objects and that wait-free
   protocols must survive: a process may be "paused" arbitrarily long. *)
let sequential : t =
 fun ~step:_ ~runnable ->
  match runnable with
  | [] -> invalid_arg "Scheduler.sequential: no runnable process"
  | p :: _ -> p

(* Follow an explicit list of pids; after the list is exhausted fall back
   to round-robin.  Used to replay counterexample schedules. *)
let of_list pids : t =
  let arr = Array.of_list pids in
  fun ~step ~runnable ->
    if step < Array.length arr && List.mem arr.(step) runnable then arr.(step)
    else round_robin ~step ~runnable
