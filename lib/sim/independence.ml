(* Semantic independence of operations, computed from sequential
   specifications.

   Two operations are *independent* when, from every reachable state in
   which both are enabled, executing them in either order reaches the
   same state AND each operation returns the same result in both orders
   — the full commuting diamond.  This is the relation a partial-order
   reduction needs: along any schedule, adjacent independent steps can
   be transposed without changing any process's observations, so one
   interleaving order stands for both.

   It generalizes the commute half of [Wfs_hierarchy.Interference]'s
   Theorem 6 analysis from unary register functions to arbitrary
   [Object_spec] semantics: where [Interference.classify_pair] checks
   f (g v) = g (f v) over a value domain, this checks the state diamond
   *and* result stability over the object's reachable state space.
   (Overwriting pairs — the other interfering class — are NOT
   independent: overwriting changes the loser's result.)

   Representation notes, because queries sit on the hot path of both
   reduced searches (one per sleeping candidate per edge):

   - The reductions consult only {!independent_at}, the conditional
     verdict at one concrete state, which is memoized per (object
     state, menu pair) in a flat tri-state [Bytes.t] row (0 unknown,
     1 independent, 2 dependent) — menu operations are indexed to
     dense ints once, so a warm query is two small hash lookups plus a
     byte read, with at most one full-depth state hash when the
     queried state changes (and the row of the most recently queried
     state is cached under physical equality, because one edge's
     sleeping candidates all query the same state).  Each diamond is
     computed lazily, at most once per (state, pair).

   - The *universal* relation ("commutes at every reachable state") is
     kept for diagnostics ({!independent}, {!verdict}) but computed
     lazily per object, because enumerating the state closure and all
     menu² diamonds up front costs millions of applies on wide menus —
     and the solver builds a fresh relation per solve call.  It is
     deliberately NOT a fast path for {!independent_at}: a universal
     verdict is established over the closure from the object's initial
     state, so applying it at a state outside that closure (reachable
     only through off-menu operations) would be unsound, and on
     closure states the memoized conditional check subsumes it.

   Everything unknown — off-menu operations, unclosed state spaces —
   is conservatively dependent in {!independent}; {!independent_at}
   needs no closure and simply checks the diamond at the given state.
   Operations on distinct objects always commute (an atomic apply
   touches one slot of the environment vector). *)

open Wfs_spec

type verdict = {
  objects : int;  (** objects in the environment *)
  closed_objects : int;  (** whose state space closed within the limit *)
  pairs : int;  (** same-object menu pairs examined *)
  independent_pairs : int;
}

type obj = {
  spec : Object_spec.t;
  op_idx : int Value.Tbl.t;  (* menu op -> dense index *)
  m : int;  (* menu size *)
  univ : bool array option Lazy.t;
      (* m×m universal relation; [None] = state space unclosed.  Forced
         only by {!independent} / {!verdict}, never on the hot path. *)
  rows : Bytes.t Value.Tbl.t;
      (* object state -> m×m tri-state row of conditional verdicts *)
  mutable last_state : Value.t;  (* phys-eq row cache *)
  mutable last_row : Bytes.t;
  off_menu : bool Value.Tbl.t;
      (* conditional verdicts involving an off-menu op, keyed
         [Value.pair state (Value.pair op_a op_b)] *)
}

type t = {
  env : Env.t;
  names : (string, int) Hashtbl.t;  (* object name -> index *)
  objs : obj array;  (* in declaration order, as [Env.state] *)
}

(* Enabledness: [apply] returns a value.  Unknown operations and
   domain errors (e.g. arithmetic on a non-integer) read as "not
   enabled here"; any other exception is treated the same way, which
   is conservative — a pair is independent only if the diamond closes
   on every state where both are enabled *and* enabledness itself is
   order-insensitive. *)
let try_apply spec state op =
  match Object_spec.apply spec state op with
  | res -> Some res
  | exception _ -> None

(* Breadth-first closure of the reachable state space, with an explicit
   completeness flag (unlike [Object_spec.reachable_states], which
   silently truncates). *)
let closure ~limit (spec : Object_spec.t) =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen spec.Object_spec.init ();
  Queue.add spec.Object_spec.init queue;
  let acc = ref [] in
  let complete = ref true in
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    acc := state :: !acc;
    List.iter
      (fun op ->
        match try_apply spec state op with
        | None -> ()
        | Some (state', _) ->
            if not (Hashtbl.mem seen state') then
              if Hashtbl.length seen >= limit then complete := false
              else begin
                Hashtbl.replace seen state' ();
                Queue.add state' queue
              end)
      spec.Object_spec.menu
  done;
  (List.rev !acc, !complete)

(* The diamond at one state: both orders defined, same final state,
   both results order-stable.  States where an op is disabled demand
   that the other op not enable or disable it. *)
let diamond_at spec a b state =
  match (try_apply spec state a, try_apply spec state b) with
  | Some (sa, ra), Some (sb, rb) -> (
      match (try_apply spec sa b, try_apply spec sb a) with
      | Some (sab, rb'), Some (sba, ra') ->
          Value.equal sab sba && Value.equal ra ra' && Value.equal rb rb'
      | _ -> false)
  | Some (sa, _), None -> try_apply spec sa b = None
  | None, Some (sb, _) -> try_apply spec sb a = None
  | None, None -> true

let commute_on ~states spec a b =
  List.for_all (diamond_at spec a b) states

let no_row = Bytes.create 0

let of_env ?(state_limit = 512) (env : Env.t) =
  let specs = Array.of_list (Env.specs env) in
  let names = Hashtbl.create (Array.length specs) in
  Array.iteri (fun i (name, _) -> Hashtbl.replace names name i) specs;
  let objs =
    Array.map
      (fun (_, spec) ->
        let menu = Array.of_list spec.Object_spec.menu in
        let m = Array.length menu in
        let op_idx = Value.Tbl.create (2 * m) in
        Array.iteri
          (fun i op ->
            if not (Value.Tbl.mem op_idx op) then Value.Tbl.replace op_idx op i)
          menu;
        {
          spec;
          op_idx;
          m;
          univ =
            lazy
              (let states, complete = closure ~limit:state_limit spec in
               if not complete then None
               else begin
                 let u = Array.make (m * m) false in
                 Array.iteri
                   (fun ia a ->
                     Array.iteri
                       (fun ib b -> u.((ia * m) + ib) <- commute_on ~states spec a b)
                       menu)
                   menu;
                 Some u
               end);
          rows = Value.Tbl.create 256;
          last_state = spec.Object_spec.init;
          last_row = no_row;
          off_menu = Value.Tbl.create 16;
        })
      specs
  in
  { env; names; objs }

let of_spec ?state_limit (spec : Object_spec.t) =
  of_env ?state_limit (Env.make [ (spec.Object_spec.name, spec) ])

(* [independent t obj_a op_a obj_b op_b]: operations on distinct
   objects always commute; same-object pairs consult the universal
   matrix (forced on first use), defaulting to dependent for unknown
   objects, unclosed state spaces, and off-menu operations. *)
let independent t obj_a op_a obj_b op_b =
  if not (String.equal obj_a obj_b) then true
  else
    match Hashtbl.find_opt t.names obj_a with
    | None -> false
    | Some i -> (
        let o = t.objs.(i) in
        match Lazy.force o.univ with
        | None -> false
        | Some u -> (
            match
              (Value.Tbl.find_opt o.op_idx op_a, Value.Tbl.find_opt o.op_idx op_b)
            with
            | Some ia, Some ib -> u.((ia * o.m) + ib)
            | _ -> false))

(* [independent_at t state obj_a op_a obj_b op_b]: the diamond at one
   specific environment state — conditional independence.  Sound for
   sleep-set reductions because each transposition in the equivalence
   chain is checked exactly at the state where the adjacent pair
   executes.  Strictly weaker demand than {!independent}: pairs that
   conflict somewhere may still commute here (two writes of the value
   already stored, a read against a no-op update), and no state-space
   closure is required. *)
let independent_at t (state : Env.state) obj_a op_a obj_b op_b =
  if not (String.equal obj_a obj_b) then true
  else
    match Hashtbl.find_opt t.names obj_a with
    | None -> false
    | Some i -> (
        let o = t.objs.(i) in
        let s = state.(i) in
        match
          (Value.Tbl.find_opt o.op_idx op_a, Value.Tbl.find_opt o.op_idx op_b)
        with
        | Some ia, Some ib -> (
            let row =
              (* [last_row != no_row] guards the fresh-object case:
                 [last_state] starts as [spec.init], which may be
                 physically the first state queried *)
              if o.last_row != no_row && o.last_state == s then o.last_row
              else
                let row =
                  match Value.Tbl.find_opt o.rows s with
                  | Some row -> row
                  | None ->
                      let row = Bytes.make (o.m * o.m) '\000' in
                      Value.Tbl.replace o.rows s row;
                      row
                in
                o.last_state <- s;
                o.last_row <- row;
                row
            in
            let cell = (ia * o.m) + ib in
            match Bytes.unsafe_get row cell with
            | '\001' -> true
            | '\002' -> false
            | _ ->
                let ok = diamond_at o.spec op_a op_b s in
                Bytes.unsafe_set row cell (if ok then '\001' else '\002');
                ok)
        | _ -> (
            (* off-menu operation: no dense index, value-keyed memo *)
            let key = Value.pair s (Value.pair op_a op_b) in
            match Value.Tbl.find_opt o.off_menu key with
            | Some ok -> ok
            | None ->
                let ok = diamond_at o.spec op_a op_b s in
                Value.Tbl.replace o.off_menu key ok;
                ok))

(* Forces every object's universal relation — a diagnostic summary, so
   the closure/matrix cost lands here, not on reduction hot paths. *)
let verdict t =
  let objects = Array.length t.objs in
  let closed = ref 0 and pairs = ref 0 and indep = ref 0 in
  Array.iter
    (fun o ->
      match Lazy.force o.univ with
      | None -> ()
      | Some u ->
          incr closed;
          pairs := !pairs + (o.m * o.m);
          Array.iter (fun ok -> if ok then incr indep) u)
    t.objs;
  {
    objects;
    closed_objects = !closed;
    pairs = !pairs;
    independent_pairs = !indep;
  }

let pp_verdict ppf v =
  Fmt.pf ppf
    "independence: %d/%d objects closed, %d/%d same-object pairs commute"
    v.closed_objects v.objects v.independent_pairs v.pairs
