(** Shared-object environments: a fixed set of named linearizable objects,
    each applied atomically from its sequential specification. *)

open Wfs_spec

type t

(** Environment state: the vector of object states in declaration order. *)
type state = Value.t array

(** [make bindings] builds an environment; raises [Invalid_argument] on
    duplicate names. *)
val make : (string * Object_spec.t) list -> t

val names : t -> string list
val specs : t -> (string * Object_spec.t) list
val spec : t -> string -> Object_spec.t
val init : t -> state
val get : state -> t -> string -> Value.t

(** [apply t state obj op] applies [op] to [obj] atomically; returns the
    new environment state (fresh array) and the operation's result. *)
val apply : t -> state -> string -> Op.t -> state * Value.t

(** Encode a state as a single hashable value. *)
val encode : state -> Value.t

val pp_state : t -> state Fmt.t
