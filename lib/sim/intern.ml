(* Hash-consing of state keys.

   The explorer and the solver key their visited sets, memo tables and
   strategy tables by structural [Value.t] encodings of joint states.
   Interning maps each distinct key to a dense [int] id exactly once —
   one full-depth hash per lookup against an id table — after which
   every downstream structure (colors, DP bounds, strategy entries) is
   int-keyed or a plain array indexed by id.

   The arena keeps the id -> value direction so interned keys can be
   decoded again (strategy extraction, debugging). *)

open Wfs_spec

type t = {
  ids : int Value.Tbl.t;
  mutable arena : Value.t array;  (* id -> key, first [size] slots live *)
  mutable size : int;
  mutable lookups : int;
  mutable hits : int;
}

let create ?(size_hint = 4096) () =
  let size_hint = max 16 size_hint in
  {
    ids = Value.Tbl.create size_hint;
    arena = Array.make size_hint Value.unit;
    size = 0;
    lookups = 0;
    hits = 0;
  }

let intern t v =
  t.lookups <- t.lookups + 1;
  match Value.Tbl.find_opt t.ids v with
  | Some id ->
      t.hits <- t.hits + 1;
      id
  | None ->
      let id = t.size in
      if id = Array.length t.arena then begin
        let arena = Array.make (2 * id) Value.unit in
        Array.blit t.arena 0 arena 0 id;
        t.arena <- arena
      end;
      t.arena.(id) <- v;
      t.size <- id + 1;
      Value.Tbl.replace t.ids v id;
      id

let find_opt t v =
  t.lookups <- t.lookups + 1;
  let r = Value.Tbl.find_opt t.ids v in
  if r <> None then t.hits <- t.hits + 1;
  r

let value t id =
  if id < 0 || id >= t.size then
    invalid_arg (Fmt.str "Intern.value: id %d out of bounds (size %d)" id t.size);
  t.arena.(id)

let size t = t.size
let lookups t = t.lookups
let hits t = t.hits

type table_stats = {
  entries : int;
  buckets : int;
  load : float;
  max_bucket : int;
}

let stats_of_hashtbl (s : Hashtbl.statistics) =
  {
    entries = s.Hashtbl.num_bindings;
    buckets = s.Hashtbl.num_buckets;
    load =
      (if s.Hashtbl.num_buckets = 0 then 0.
       else float_of_int s.Hashtbl.num_bindings /. float_of_int s.Hashtbl.num_buckets);
    max_bucket = s.Hashtbl.max_bucket_length;
  }

let stats t = stats_of_hashtbl (Value.Tbl.stats t.ids)

module Ints = struct
  (* Hash-consing of small [int array] keys to dense ids — the same
     contract as the [Value.t] interner above, minus the arena (no
     caller decodes position ids back).  The solver's transposition
     layer keys game positions by flat int encodings; hashing those
     directly skips building a [Value.t] list per node.

     FNV-1a over the elements: the arrays are short (a handful of
     ids/bitmasks), so a simple multiplicative hash beats the generic
     polymorphic hash without seeding concerns. *)

  module Tbl = Hashtbl.Make (struct
    type t = int array

    let equal (a : int array) b =
      let la = Array.length a in
      la = Array.length b
      &&
      let rec eq i = i >= la || (a.(i) = b.(i) && eq (i + 1)) in
      eq 0

    let hash (a : int array) =
      let h = ref 0x811c9dc5 in
      for i = 0 to Array.length a - 1 do
        h := (!h lxor a.(i)) * 0x01000193
      done;
      !h land max_int
  end)

  type t = { ids : int Tbl.t; mutable size : int }

  let create ?(size_hint = 4096) () =
    { ids = Tbl.create (max 16 size_hint); size = 0 }

  let intern t (key : int array) =
    match Tbl.find_opt t.ids key with
    | Some id -> id
    | None ->
        let id = t.size in
        t.size <- id + 1;
        Tbl.replace t.ids key id;
        id

  let size t = t.size
end

module Sharded = struct
  (* Lock-striped interner shared across domains.  Each key hashes to a
     stripe; the stripe's mutex guards one ordinary [Value.Tbl].  Dense
     ids come from a single atomic counter, so ids are unique but their
     order depends on the schedule — parallel consumers must not read
     meaning into id order, only into the claim bit.

     [intern] doubles as the visited-set claim: exactly one domain ever
     sees [fresh = true] for a given key, which is what makes parallel
     exploration count each state exactly once.

     The stripe count is a prime (never a power of two) on purpose:
     OCaml's [Hashtbl] buckets by the low bits of the hash, so striping
     by [hash mod prime] stays independent of the in-stripe bucketing
     and neither index starves the other of entropy. *)

  type stripe = {
    lock : Mutex.t;
    tbl : int Value.Tbl.t;
    mutable s_lookups : int;
    mutable s_hits : int;
    mutable s_contended : int;
    (* live metric flushing, batched so the per-intern cost stays at
       plain field updates: every 1024 lookups the deltas since the
       last flush go to the global [intern.lookups]/[intern.hits]
       counters *)
    mutable s_lookups_flushed : int;
    mutable s_hits_flushed : int;
    s_contention_c : Wfs_obs.Metrics.Counter.t;  (* per-stripe series *)
  }

  module SM = struct
    open Wfs_obs.Metrics

    let lookups = Counter.make "intern.lookups"
    let hits = Counter.make "intern.hits"
    let contention = Counter.make "intern.contention"

    let stripe_contention i =
      Counter.make (labeled "intern.stripe.contention" [ ("stripe", string_of_int i) ])
  end

  (* [try_lock] first: the uncontended path costs the same lock, and
     the fallback both blocks and counts, making stripe contention
     observable ([contention], explorer.intern.contention).  The
     contended path is already paying a blocking lock, so the two
     counter bumps there are free by comparison. *)
  let lock_stripe s =
    if not (Mutex.try_lock s.lock) then begin
      Mutex.lock s.lock;
      s.s_contended <- s.s_contended + 1;
      Wfs_obs.Metrics.Counter.incr SM.contention;
      Wfs_obs.Metrics.Counter.incr s.s_contention_c
    end

  let flush_stripe s =
    Wfs_obs.Metrics.Counter.add SM.lookups (s.s_lookups - s.s_lookups_flushed);
    Wfs_obs.Metrics.Counter.add SM.hits (s.s_hits - s.s_hits_flushed);
    s.s_lookups_flushed <- s.s_lookups;
    s.s_hits_flushed <- s.s_hits

  type nonrec t = { stripes : stripe array; next : int Atomic.t }

  let default_stripes = 61

  let create ?(stripes = default_stripes) ?(size_hint = 4096) () =
    let stripes = max 1 (min stripes 4093) in
    let per = max 16 (size_hint / stripes) in
    {
      stripes =
        Array.init stripes (fun i ->
            {
              lock = Mutex.create ();
              tbl = Value.Tbl.create per;
              s_lookups = 0;
              s_hits = 0;
              s_contended = 0;
              s_lookups_flushed = 0;
              s_hits_flushed = 0;
              s_contention_c = SM.stripe_contention i;
            });
      next = Atomic.make 0;
    }

  let stripe_of t v =
    let h = Value.hash_full v land max_int in
    t.stripes.(h mod Array.length t.stripes)

  let intern t v =
    let s = stripe_of t v in
    lock_stripe s;
    s.s_lookups <- s.s_lookups + 1;
    if s.s_lookups land 1023 = 0 then flush_stripe s;
    let r =
      match Value.Tbl.find_opt s.tbl v with
      | Some id ->
          s.s_hits <- s.s_hits + 1;
          (id, false)
      | None ->
          let id = Atomic.fetch_and_add t.next 1 in
          Value.Tbl.replace s.tbl v id;
          (id, true)
    in
    Mutex.unlock s.lock;
    r

  (* Claim a whole successor batch in one pass: keys are grouped by
     stripe so each stripe's lock is taken at most once per call
     instead of once per key — on a hot parallel exploration the lock
     round-trips are the dominant shared cost, and one expansion's
     successors arrive together anyway.  [out.(i)] corresponds to
     [keys.(i)] with the same (id, fresh) meaning as [intern]; within
     a batch, keys are processed in ascending position per stripe, so
     duplicates resolve exactly as repeated [intern] calls would.  The
     batch is small (one node's successors), so the quadratic
     stripe-grouping scan stays cheaper than sorting. *)
  let intern_batch t keys =
    let m = Array.length keys in
    let out = Array.make m (0, false) in
    let nstripes = Array.length t.stripes in
    let sidx =
      Array.map
        (fun v -> Value.hash_full v land max_int mod nstripes)
        keys
    in
    for i = 0 to m - 1 do
      let si = sidx.(i) in
      if si >= 0 then begin
        let s = t.stripes.(si) in
        lock_stripe s;
        for j = i to m - 1 do
          if sidx.(j) = si then begin
            sidx.(j) <- -1;
            s.s_lookups <- s.s_lookups + 1;
            if s.s_lookups land 1023 = 0 then flush_stripe s;
            match Value.Tbl.find_opt s.tbl keys.(j) with
            | Some id ->
                s.s_hits <- s.s_hits + 1;
                out.(j) <- (id, false)
            | None ->
                let id = Atomic.fetch_and_add t.next 1 in
                Value.Tbl.replace s.tbl keys.(j) id;
                out.(j) <- (id, true)
          end
        done;
        Mutex.unlock s.lock
      end
    done;
    out

  let find_opt t v =
    let s = stripe_of t v in
    lock_stripe s;
    s.s_lookups <- s.s_lookups + 1;
    if s.s_lookups land 1023 = 0 then flush_stripe s;
    let r = Value.Tbl.find_opt s.tbl v in
    if r <> None then s.s_hits <- s.s_hits + 1;
    Mutex.unlock s.lock;
    r

  let size t = Atomic.get t.next

  let fold_stripes t f init =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let acc = f acc s in
        Mutex.unlock s.lock;
        acc)
      init t.stripes

  let lookups t = fold_stripes t (fun acc s -> acc + s.s_lookups) 0
  let hits t = fold_stripes t (fun acc s -> acc + s.s_hits) 0
  let contention t = fold_stripes t (fun acc s -> acc + s.s_contended) 0

  let stats t =
    let zero = { entries = 0; buckets = 0; load = 0.; max_bucket = 0 } in
    let sum =
      fold_stripes t
        (fun acc s ->
          let st = stats_of_hashtbl (Value.Tbl.stats s.tbl) in
          {
            entries = acc.entries + st.entries;
            buckets = acc.buckets + st.buckets;
            load = 0.;
            max_bucket = max acc.max_bucket st.max_bucket;
          })
        zero
    in
    {
      sum with
      load =
        (if sum.buckets = 0 then 0.
         else float_of_int sum.entries /. float_of_int sum.buckets);
    }
end
