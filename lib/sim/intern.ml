(* Hash-consing of state keys.

   The explorer and the solver key their visited sets, memo tables and
   strategy tables by structural [Value.t] encodings of joint states.
   Interning maps each distinct key to a dense [int] id exactly once —
   one full-depth hash per lookup against an id table — after which
   every downstream structure (colors, DP bounds, strategy entries) is
   int-keyed or a plain array indexed by id.

   The arena keeps the id -> value direction so interned keys can be
   decoded again (strategy extraction, debugging). *)

open Wfs_spec

type t = {
  ids : int Value.Tbl.t;
  mutable arena : Value.t array;  (* id -> key, first [size] slots live *)
  mutable size : int;
  mutable lookups : int;
  mutable hits : int;
}

let create ?(size_hint = 4096) () =
  let size_hint = max 16 size_hint in
  {
    ids = Value.Tbl.create size_hint;
    arena = Array.make size_hint Value.unit;
    size = 0;
    lookups = 0;
    hits = 0;
  }

let intern t v =
  t.lookups <- t.lookups + 1;
  match Value.Tbl.find_opt t.ids v with
  | Some id ->
      t.hits <- t.hits + 1;
      id
  | None ->
      let id = t.size in
      if id = Array.length t.arena then begin
        let arena = Array.make (2 * id) Value.unit in
        Array.blit t.arena 0 arena 0 id;
        t.arena <- arena
      end;
      t.arena.(id) <- v;
      t.size <- id + 1;
      Value.Tbl.replace t.ids v id;
      id

let find_opt t v =
  t.lookups <- t.lookups + 1;
  let r = Value.Tbl.find_opt t.ids v in
  if r <> None then t.hits <- t.hits + 1;
  r

let value t id =
  if id < 0 || id >= t.size then
    invalid_arg (Fmt.str "Intern.value: id %d out of bounds (size %d)" id t.size);
  t.arena.(id)

let size t = t.size
let lookups t = t.lookups
let hits t = t.hits
