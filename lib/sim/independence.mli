(** Semantic independence of operations, from sequential specifications.

    Two operations are independent when, from every reachable state
    where both are enabled, the commuting diamond closes: either order
    reaches the same state and each operation returns the same result
    in both orders.  Independent steps of different processes can be
    transposed in a schedule without changing anything any process
    observes — the relation that drives the explorer's sleep-set
    pruning and the solver's scheduler-dominance cutoffs.

    The relation generalizes the commute half of
    [Wfs_hierarchy.Interference] (Theorem 6's analysis of unary
    register functions) to arbitrary {!Object_spec} semantics, checked
    over the object's reachable state space.  All verdicts are computed
    lazily and memoized: the conditional relation ({!independent_at},
    the one the reductions query) one diamond at a time, the universal
    relation ({!independent}, {!verdict}) per object on first use —
    {!of_env} itself only indexes the menus, so building a relation is
    cheap even when it is consulted rarely.  Everything unknown —
    off-menu operations, objects whose state space does not close
    within [state_limit] — is conservatively dependent.  Operations on
    distinct objects always commute (atomic application touches one
    slot of the environment vector). *)

open Wfs_spec

type t

type verdict = {
  objects : int;
  closed_objects : int;
      (** objects whose reachable state space closed within the limit *)
  pairs : int;  (** same-object menu pairs examined *)
  independent_pairs : int;
}

(** [of_env env] prepares the relation for every object of [env]
    (menu indexing only; verdicts are computed on demand).
    [state_limit] (default 512) bounds each object's breadth-first
    state closure; objects that do not close are wholly dependent
    under {!independent}. *)
val of_env : ?state_limit:int -> Env.t -> t

(** [of_spec spec] is {!of_env} on the one-object environment [spec]
    — the solver's shape. *)
val of_spec : ?state_limit:int -> Object_spec.t -> t

(** [independent t obj_a op_a obj_b op_b]: may the two invocations be
    transposed?  Sound to under-approximate; [false] for anything not
    precomputed. *)
val independent : t -> string -> Op.t -> string -> Op.t -> bool

(** [independent_at t state obj_a op_a obj_b op_b]: conditional
    independence — the commuting diamond at one specific environment
    [state] only.  Strictly admits more pairs than {!independent}
    (e.g. two writes of the value already stored) and needs no
    state-space closure; sound for sleep-set reductions because each
    adjacent transposition is checked at the state where the pair
    executes.  Verdicts are memoized per object and state. *)
val independent_at :
  t -> Env.state -> string -> Op.t -> string -> Op.t -> bool

val verdict : t -> verdict
val pp_verdict : verdict Fmt.t
