(** A reusable OCaml 5 domain pool with work-stealing deques and a
    deterministic join.

    The pool owns [size - 1] worker domains plus the calling domain,
    which participates in every batch.  {!parallel_map} partitions the
    jobs block-wise across per-member deques; idle members steal single
    jobs from the top of other members' deques, so an unbalanced batch
    (one giant exploration next to many small ones) still keeps every
    domain busy.  Results are joined {e by job index}, so the output
    order — and, when the jobs themselves are deterministic, the output
    content — is independent of which domain ran what.

    A pool of size 1 spawns no domains at all: {!parallel_map} then
    runs the jobs inline, sequentially, in index order — byte-identical
    to not having a pool.  Likewise a {!parallel_map} issued from
    inside a running job (nested parallelism) executes inline rather
    than deadlocking on the pool's own workers.

    Each batch feeds the default [Wfs_obs.Metrics] registry:
    [pool.batches], [pool.jobs], [pool.steals] and the [pool.domains]
    gauge, plus per-member labelled series ([pool.shard.jobs{shard=i}],
    [pool.shard.steals{shard=i}], [pool.shard.busy_ns{shard=i}],
    [pool.shard.idle_ns{shard=i}], the [pool.shard.job_ns{shard=i}]
    duration histogram and the [pool.shard.states{shard=i}] claimed
    gauge) so a live scrape can attribute imbalance to a specific
    domain. *)

type t

(** [create ?domains ()] spawns [domains - 1] worker domains
    ([Domain.recommended_domain_count ()] by default, clamped to
    [\[1, 128\]]).  The workers idle on a condition variable between
    batches — creating a pool is cheap enough to do once per CLI
    invocation, but pools are reusable and meant to be shared across
    many batches. *)
val create : ?domains:int -> unit -> t

(** Number of domains that execute a batch, including the caller. *)
val size : t -> int

(** Per-member activity totals, accumulated over the pool's lifetime. *)
type member_stats = {
  jobs_run : int;  (** jobs this member executed (own + stolen) *)
  steals : int;  (** jobs taken from another member's deque *)
  steal_failures : int;  (** empty-deque probes while looking for work *)
  busy_ns : int;  (** wall time spent inside jobs *)
  idle_ns : int;
      (** workers: time parked between batches; leader: time blocked in
          the {!parallel_map} join waiting on in-flight jobs *)
}

(** [stats t] is one {!member_stats} per member, index 0 = the leader
    (calling domain).  Each member writes only its own slot, so read
    this between batches for a consistent snapshot.  Batches that run
    inline (pool of size 1, or nested {!parallel_map} from inside a
    job) do not touch the stats. *)
val stats : t -> member_stats array

(** [parallel_map t f arr] computes [Array.map f arr] across the pool.
    Element [i] of the result is always [f arr.(i)] — the join is by
    index, deterministic regardless of scheduling.  If one or more jobs
    raise, the batch still runs to completion and the exception of the
    {e lowest-indexed} failing job is re-raised (again deterministic).
    Safe to call repeatedly; not safe to call concurrently from two
    domains on the same pool (the CLI and bench drive it from one
    leader).  Calls from inside a job run inline. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** List version of {!parallel_map}; same ordering guarantees. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** Terminate and join the worker domains.  Idempotent.  Using the pool
    after [shutdown] raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ?domains f] — create, run [f], always shut down. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a

(** {1 Shard attribution}

    Engines running inside pool jobs (the solver, the explorer) report
    coarse progress through these so per-domain load shows up in live
    telemetry. *)

(** The pool member index of the calling domain: 0 for the leader and
    for domains outside any pool, the worker index otherwise. *)
val self : unit -> int

(** [note_states n] adds [n] to the calling member's
    [pool.shard.states{shard=...}] gauge.  Meant to be called from
    batched flush points (every few thousand states), not per state. *)
val note_states : int -> unit
