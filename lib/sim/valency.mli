(** Valency (bivalence) analysis — the proof technique behind every
    impossibility result in the paper, made executable.

    The valency of a protocol state is the set of decision values
    reachable from it; a critical state is a bivalent state whose
    successors are all univalent.  Only meaningful for wait-free
    protocols (acyclic joint-state graphs). *)

open Wfs_spec

module Vset : Set.S with type elt = Value.t

type valency = Vset.t

val is_bivalent : valency -> bool
val is_univalent : valency -> bool

type critical = {
  state : Explorer.node;
  branches : (int * Explorer.node * valency) list;
}

(** [analyze config] is [(root_valency, valency_fn)]: the valency of the
    initial state, plus a memoized valency function over nodes.

    [crashes] grants the crash-stop adversary a halt budget (see
    {!Explorer.successors}); reachable-decision sets then range over
    crash-extended executions, where a terminal's values are those of
    the surviving deciders. *)
val analyze :
  ?crashes:int -> Explorer.config -> valency * (Explorer.node -> valency)

(** Find a critical state reachable from the initial state, if any.  A
    correct wait-free consensus protocol with a bivalent initial state
    always has one.  [crashes] as in {!analyze}; crash successors count
    as branches, so a state is only critical if even the adversary's
    halts commit the outcome. *)
val find_critical : ?crashes:int -> Explorer.config -> critical option

val pp_valency : valency Fmt.t
