(* Exhaustive interleaving exploration.

   The adversarial scheduler of the wait-free model is universally
   quantified; for protocols with finite reachable state spaces we can
   quantify literally, by depth-first search over "which undecided process
   takes the next atomic step".

   Joint protocol states — local states, decisions, environment state,
   plus the set of processes that have taken at least one step (needed for
   the paper's validity condition) — are encoded as values and memoized.

   Wait-freedom on a finite state graph is exactly acyclicity: an infinite
   execution must revisit a joint state, and every edge is a step of an
   undecided process, so a reachable cycle is precisely a schedule on
   which some process runs forever without deciding.  Conversely in a DAG
   every execution reaches a terminal state, and the longest-path bound
   gives the strong-wait-freedom step bound of §2.4. *)

open Wfs_spec

type config = { procs : Process.t array; env : Env.t }

type node = {
  locals : Value.t array;
  decided : Value.t option array;
  env_state : Env.state;
  stepped : int;  (* bitmask: processes that have taken ≥ 1 step *)
}

type terminal = {
  decisions : Value.t array;
  who_stepped : int;  (* bitmask of processes that took ≥ 1 step *)
}

type truncation = Budget_states | Budget_depth

type stats = {
  states : int;  (** distinct joint states visited *)
  terminals : terminal list;
      (** deduplicated (decision vector, stepped mask) terminal outcomes *)
  cyclic : bool;  (** a reachable cycle exists — not wait-free *)
  stuck : (int * string) option;
      (** a process raised / had no enabled action *)
  truncated : bool;  (** state or depth budget exhausted *)
  truncation : truncation option;
      (** which budget was exhausted first, when truncated *)
  invalid_decisions : (int * Value.t) list;
      (** decide events naming a process that had not yet stepped *)
  step_bounds : int array option;
      (** per-process worst-case step counts (longest path), when the
          graph is acyclic and fully explored *)
}

let initial config =
  {
    locals = Array.map (fun p -> p.Process.init) config.procs;
    decided = Array.make (Array.length config.procs) None;
    env_state = Env.init config.env;
    stepped = 0;
  }

let key node =
  Value.list
    [
      Value.list (Array.to_list node.locals);
      Value.list
        (Array.to_list (Array.map Value.of_option node.decided));
      Env.encode node.env_state;
      Value.int node.stepped;
    ]

let is_terminal node = Array.for_all Option.is_some node.decided

type edge = Decide_edge of Value.t | Op_edge

(* The successors of a node: one per undecided process.  A [Decide]
   transition is itself a step for scheduling purposes (the DECIDE output
   event), but does not touch the environment. *)
let successors_with_edges config node =
  let n = Array.length config.procs in
  let rec go pid acc =
    if pid < 0 then acc
    else if node.decided.(pid) <> None then go (pid - 1) acc
    else
      let proc = config.procs.(pid) in
      let edge, succ =
        match Process.action proc node.locals.(pid) with
        | Process.Decide v ->
            let decided = Array.copy node.decided in
            decided.(pid) <- Some v;
            ( Decide_edge v,
              { node with decided; stepped = node.stepped lor (1 lsl pid) } )
        | Process.Invoke { obj; op; next } ->
            let env_state, res = Env.apply config.env node.env_state obj op in
            let locals = Array.copy node.locals in
            locals.(pid) <- next res;
            ( Op_edge,
              {
                node with
                locals;
                env_state;
                stepped = node.stepped lor (1 lsl pid);
              } )
      in
      go (pid - 1) ((pid, edge, succ) :: acc)
  in
  go (n - 1) []

let successors config node =
  List.map (fun (pid, _, succ) -> (pid, succ)) (successors_with_edges config node)

(* Validity of a decision at the moment it is output (§3, partial
   correctness condition 2, applied to every history prefix): a decision
   naming P_j requires that P_j has already taken a step, or that P_j is
   the decider itself (the decide is then P_j's step). *)
let decision_valid node ~pid v =
  match v with
  | Value.Int j ->
      j = pid || (j >= 0 && node.stepped land (1 lsl j) <> 0)
  | _ -> false

type color = Gray | Black

(* Metric names: ROADMAP's measurement substrate.  Totals accumulate in
   plain refs during the DFS (the explorer is single-threaded) and are
   flushed to the shared registry once per run. *)
module M = struct
  open Wfs_obs.Metrics

  let runs = Counter.make "explorer.runs"
  let states = Counter.make "explorer.states_visited"
  let dedup_hits = Counter.make "explorer.dedup_hits"
  let dedup_lookups = Counter.make "explorer.dedup_lookups"
  let dedup_hit_rate = Fgauge.make "explorer.dedup_hit_rate"
  let max_depth_seen = Gauge.make "explorer.max_depth"
  let truncated_states = Counter.make "explorer.truncated.states"
  let truncated_depth = Counter.make "explorer.truncated.depth"
end

let explore ?(max_states = 2_000_000) ?(max_depth = 10_000) config =
  let colors : (Value.t, color) Hashtbl.t = Hashtbl.create 4096 in
  let terminals : (Value.t, terminal) Hashtbl.t = Hashtbl.create 64 in
  let cyclic = ref false in
  let stuck = ref None in
  let truncation = ref None in
  let invalid_decisions = ref [] in
  let lookups = ref 0 in
  let hits = ref 0 in
  let deepest = ref 0 in
  let rec dfs node depth =
    if depth > !deepest then deepest := depth;
    let k = key node in
    incr lookups;
    match Hashtbl.find_opt colors k with
    | Some Gray ->
        incr hits;
        cyclic := true
    | Some Black -> incr hits
    | None ->
        if Hashtbl.length colors >= max_states then
          (if !truncation = None then truncation := Some Budget_states)
        else if depth >= max_depth then
          (if !truncation = None then truncation := Some Budget_depth)
        else begin
          Hashtbl.replace colors k Gray;
          if is_terminal node then begin
            let decisions = Array.map Option.get node.decided in
            Hashtbl.replace terminals
              (Value.pair
                 (Value.list (Array.to_list decisions))
                 (Value.int node.stepped))
              { decisions; who_stepped = node.stepped }
          end
          else begin
            match successors_with_edges config node with
            | exception Object_spec.Unknown_operation { obj; op } ->
                stuck :=
                  Some (-1, Fmt.str "unknown operation %a on %s" Op.pp op obj)
            | [] ->
                (* undecided processes but no successor: impossible by
                   construction, kept for totality *)
                stuck := Some (-1, "no successor")
            | succs ->
                List.iter
                  (fun (pid, edge, succ) ->
                    (match edge with
                    | Decide_edge v when not (decision_valid node ~pid v) ->
                        if List.length !invalid_decisions < 10 then
                          invalid_decisions := (pid, v) :: !invalid_decisions
                    | Decide_edge _ | Op_edge -> ());
                    dfs succ (depth + 1))
                  succs
          end;
          Hashtbl.replace colors k Black
        end
  in
  dfs (initial config) 0;
  let truncated = !truncation <> None in
  let acyclic = (not !cyclic) && (not truncated) && !stuck = None in
  (* Longest-path DP for per-process step bounds, only on a fully explored
     DAG. *)
  let step_bounds =
    if not acyclic then None
    else begin
      let n = Array.length config.procs in
      let memo : (Value.t, int array) Hashtbl.t = Hashtbl.create 4096 in
      let rec bound node =
        let k = key node in
        match Hashtbl.find_opt memo k with
        | Some b -> b
        | None ->
            let best = Array.make n 0 in
            List.iter
              (fun (pid, succ) ->
                let sub = bound succ in
                Array.iteri
                  (fun p v ->
                    let v = if p = pid then v + 1 else v in
                    if v > best.(p) then best.(p) <- v)
                  sub)
              (successors config node);
            Hashtbl.replace memo k best;
            best
      in
      Some (bound (initial config))
    end
  in
  let states = Hashtbl.length colors in
  let open Wfs_obs.Metrics in
  Counter.incr M.runs;
  Counter.add M.states states;
  Counter.add M.dedup_hits !hits;
  Counter.add M.dedup_lookups !lookups;
  Fgauge.set M.dedup_hit_rate
    (if !lookups = 0 then 0.0
     else float_of_int !hits /. float_of_int !lookups);
  Gauge.set_max M.max_depth_seen !deepest;
  (match !truncation with
  | Some Budget_states -> Counter.incr M.truncated_states
  | Some Budget_depth -> Counter.incr M.truncated_depth
  | None -> ());
  Wfs_obs.Trace.event "explorer.done"
    ~tags:
      [
        ("states", Wfs_obs.Json.int states);
        ("max_depth", Wfs_obs.Json.int !deepest);
        ("cyclic", Wfs_obs.Json.bool !cyclic);
        ("truncated", Wfs_obs.Json.bool truncated);
      ];
  {
    states;
    terminals = Hashtbl.fold (fun _ d acc -> d :: acc) terminals [];
    cyclic = !cyclic;
    stuck = !stuck;
    truncated;
    truncation = !truncation;
    invalid_decisions = !invalid_decisions;
    step_bounds;
  }

let wait_free stats =
  (not stats.cyclic) && (not stats.truncated) && stats.stuck = None
