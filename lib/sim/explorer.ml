(* Exhaustive interleaving exploration.

   The adversarial scheduler of the wait-free model is universally
   quantified; for protocols with finite reachable state spaces we can
   quantify literally, by depth-first search over "which undecided process
   takes the next atomic step".

   Joint protocol states — local states, decisions, environment state,
   plus the set of processes that have taken at least one step (needed for
   the paper's validity condition) — are encoded as values and interned
   to dense int ids (see [Intern]); every structure downstream of the
   interner is an array indexed by id.

   Wait-freedom on a finite state graph is exactly acyclicity: an infinite
   execution must revisit a joint state, and every edge is a step of an
   undecided process, so a reachable cycle is precisely a schedule on
   which some process runs forever without deciding.  Conversely in a DAG
   every execution reaches a terminal state, and the longest-path bound
   gives the strong-wait-freedom step bound of §2.4.

   Two engines live here:

   - [explore] (the default): iterative DFS over interned ids with the
     longest-path DP fused into the same pass — step bounds are combined
     post-order as frames pop, so no edge is ever re-derived and deep
     graphs cannot overflow the OCaml stack;
   - [explore ~legacy:true]: the original recursive two-pass engine
     (generic-hash [Hashtbl] visited set, separate DP walk re-running
     [Env.apply] on every edge), kept verbatim as the reference
     implementation for differential tests and the [PERF] bench
     section's old-vs-new measurement. *)

open Wfs_spec

type config = { procs : Process.t array; env : Env.t }

type node = {
  locals : Value.t array;
  decided : Value.t option array;
  env_state : Env.state;
  stepped : int;  (* bitmask: processes that have taken ≥ 1 step *)
  crashed : int;  (* bitmask: processes halted by the crash adversary *)
}

type terminal = {
  decisions : Value.t option array;
      (* [None] = crashed before deciding *)
  who_stepped : int;  (* bitmask of processes that took ≥ 1 step *)
  who_crashed : int;  (* bitmask of processes crashed in this execution *)
}

type truncation = Budget_states | Budget_depth

type stats = {
  states : int;  (** distinct joint states visited *)
  terminals : terminal list;
      (** deduplicated (decision vector, stepped mask) terminal outcomes *)
  cyclic : bool;  (** a reachable cycle exists — not wait-free *)
  stuck : (int * string) option;
      (** a process raised / had no enabled action *)
  truncated : bool;  (** state or depth budget exhausted *)
  truncation : truncation option;
      (** which budget was exhausted first, when truncated *)
  invalid_decisions : (int * Value.t) list;
      (** decide events naming a process that had not yet stepped *)
  step_bounds : int array option;
      (** per-process worst-case step counts (longest path), when the
          graph is acyclic and fully explored *)
}

let initial config =
  {
    locals = Array.map (fun p -> p.Process.init) config.procs;
    decided = Array.make (Array.length config.procs) None;
    env_state = Env.init config.env;
    stepped = 0;
    crashed = 0;
  }

let key node =
  Value.list
    [
      Value.list (Array.to_list node.locals);
      Value.list
        (Array.to_list (Array.map Value.of_option node.decided));
      Env.encode node.env_state;
      Value.int node.stepped;
      Value.int node.crashed;
    ]

(* Canonical key under full process symmetry: processes are
   interchangeable, so sort the per-process (local, decision, stepped)
   components before encoding.  Sound only when every process runs the
   same pid-independent program over a pid-independent environment —
   then permuting process indices is a graph automorphism and one orbit
   representative stands for all.  Gated behind [explore ~symmetry]. *)
let canonical_key node =
  let n = Array.length node.locals in
  let comps =
    List.init n (fun i ->
        Value.pair node.locals.(i)
          (Value.pair
             (Value.of_option node.decided.(i))
             (Value.pair
                (Value.bool (node.stepped land (1 lsl i) <> 0))
                (Value.bool (node.crashed land (1 lsl i) <> 0)))))
  in
  Value.list
    [
      Value.list (List.sort Value.compare comps); Env.encode node.env_state;
    ]

let popcount =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  fun m -> go 0 m

(* Terminal under the crash-stop adversary: every process has decided or
   been crashed.  With no crashes injected this is the original "all
   decided" condition. *)
let is_terminal node =
  let n = Array.length node.decided in
  let rec go i =
    i >= n
    || ((node.decided.(i) <> None || node.crashed land (1 lsl i) <> 0)
       && go (i + 1))
  in
  go 0

type edge = Decide_edge of Value.t | Op_edge | Crash_edge

(* The successors of a node: one per live undecided process, plus — when
   the crash budget is not exhausted — one [Crash_edge] per live
   undecided process, modelling the adversary halting it at exactly this
   point.  A [Decide] transition is itself a step for scheduling
   purposes (the DECIDE output event), but does not touch the
   environment; a [Crash_edge] is not a step of anyone (the crashed
   process is simply never scheduled again), so it neither sets the
   [stepped] bit nor counts toward step bounds.  Crash edges come first
   so counterexample search surfaces crash-involving schedules early. *)
let successors_with_edges ?(crashes = 0) config node =
  let n = Array.length config.procs in
  let live pid =
    node.decided.(pid) = None && node.crashed land (1 lsl pid) = 0
  in
  let step_edges =
    let rec go pid acc =
      if pid < 0 then acc
      else if not (live pid) then go (pid - 1) acc
      else
        let proc = config.procs.(pid) in
        let edge, succ =
          match Process.action proc node.locals.(pid) with
          | Process.Decide v ->
              let decided = Array.copy node.decided in
              decided.(pid) <- Some v;
              ( Decide_edge v,
                { node with decided; stepped = node.stepped lor (1 lsl pid) } )
          | Process.Invoke { obj; op; next } ->
              let env_state, res = Env.apply config.env node.env_state obj op in
              let locals = Array.copy node.locals in
              locals.(pid) <- next res;
              ( Op_edge,
                {
                  node with
                  locals;
                  env_state;
                  stepped = node.stepped lor (1 lsl pid);
                } )
        in
        go (pid - 1) ((pid, edge, succ) :: acc)
    in
    go (n - 1) []
  in
  if crashes <= popcount node.crashed then step_edges
  else
    let rec crash pid acc =
      if pid < 0 then acc
      else if not (live pid) then crash (pid - 1) acc
      else
        crash (pid - 1)
          (( pid,
             Crash_edge,
             { node with crashed = node.crashed lor (1 lsl pid) } )
          :: acc)
    in
    crash (n - 1) step_edges

let successors ?crashes config node =
  List.map
    (fun (pid, _, succ) -> (pid, succ))
    (successors_with_edges ?crashes config node)

(* Validity of a decision at the moment it is output (§3, partial
   correctness condition 2, applied to every history prefix): a decision
   naming P_j requires that P_j has already taken a step, or that P_j is
   the decider itself (the decide is then P_j's step). *)
let decision_valid node ~pid v =
  match v with
  | Value.Int j ->
      j = pid || (j >= 0 && node.stepped land (1 lsl j) <> 0)
  | _ -> false

(* --- invalid-decision accounting ---

   Deduplicated (pid, value) pairs with an O(1) membership check per
   edge (the old accounting ran [List.length] per edge and recorded
   duplicates), capped at [max_invalid] distinct entries; the report is
   sorted so it is stable across engines and traversal orders. *)

let max_invalid = 10

let invalid_make () : (int * Value.t) Value.Tbl.t = Value.Tbl.create 8

let invalid_note acc pid v =
  if Value.Tbl.length acc < max_invalid then begin
    let k = Value.pair (Value.int pid) v in
    if not (Value.Tbl.mem acc k) then Value.Tbl.replace acc k (pid, v)
  end

let invalid_report acc =
  Value.Tbl.fold (fun _ pv l -> pv :: l) acc []
  |> List.sort (fun (p, v) (q, w) ->
         match Int.compare p q with 0 -> Value.compare v w | c -> c)

(* --- partial-order reduction: sleep sets over pending actions ---

   Each live process has exactly one pending step action (its program is
   deterministic), plus — under a crash budget — a pending crash.  A
   sleep mask travels down the DFS: bit [q] says q's pending step, and
   bit [q + crash_shift] says q's pending crash, were already explored
   at an ancestor node and every move taken since is independent of
   them, so any schedule moving q here is an adjacent-transposition
   rearrangement of an already-explored schedule reaching the same
   states with the same observations.

   Pruning a slept edge must not change any output:

   - [states], [terminals], [stuck]: sleep sets alone (no persistent
     sets) visit every reachable state — only redundant *edges* are
     skipped — so state-derived outputs are untouched.
   - [cyclic]: only *monotone* edges are pruned — decides, crashes, and
     first steps, each of which strictly grows a component of the state
     ([decided] slots, [crashed] mask, [stepped] mask) that no
     transition shrinks.  No cycle can contain a monotone edge, so the
     reduced graph keeps every cycle of the full graph, and a DFS that
     visits all states finds one iff the full graph has one.
   - [step_bounds]: every root-to-terminal path has a surviving
     rearrangement with the same per-process action multiset, so the
     per-process longest-path maxima are unchanged.
   - [invalid_decisions]: noted for every *generated* edge, before the
     pruning decision, so the noted set is the unreduced one.

   Independence is checked conditionally, at the state where the
   transposition would occur ([Independence.independent_at]): when the
   mask bit for q survives the expansion of each node along the path,
   each adjacent swap in the rearrangement chain has been checked at
   exactly the state where that pair executes.  A crash or a decide
   touches only its own process's slot of the joint state and no
   environment, so either commutes with any move of another process;
   Do/Do pairs consult the semantic diamond.

   The slept process has not moved since its branch was explored (a
   move would have cleared the bit), so its pending action — and, for
   invokes, the fact that the operation dispatches without
   [Unknown_operation] — is the one already seen at the ancestor;
   skipping [Env.apply] for it cannot lose a [stuck] verdict.

   Masks are a function of the arrival path; in the parallel engine the
   claiming arrival's mask is the one used, which is race-dependent —
   but every output above is preserved under *any* valid sleep pruning,
   so verdicts stay schedule- and [-j]-independent (the pruned-edge
   counter, like intern contention, is not). *)

let crash_shift = 16

(* Successors of [node] under arrival sleep mask [arrival], in the
   incumbent canonical order (crash edges first, then steps, pid
   ascending), as [(pid_code, successor, child_mask)] with crash edges
   coded [-2 - pid].  Slept monotone edges are skipped entirely — no
   [Env.apply], no interning; [on_pruned] counts them.  [note_invalid]
   fires for every generated decide edge failing validity, pruned or
   not; [on_crash] counts kept crash edges. *)
let successors_with_sleep ~crashes ~ind ~note_invalid ~on_crash ~on_pruned
    config node arrival =
  let n = Array.length config.procs in
  let live pid =
    node.decided.(pid) = None && node.crashed land (1 lsl pid) = 0
  in
  let acts = Array.make n None in
  for pid = 0 to n - 1 do
    if live pid then
      acts.(pid) <- Some (Process.action config.procs.(pid) node.locals.(pid))
  done;
  (* may the pending steps [aq] and [a] be transposed at this state? *)
  let indep_step aq a =
    match (aq, a) with
    | ( Process.Invoke { obj = o1; op = op1; _ },
        Process.Invoke { obj = o2; op = op2; _ } ) ->
        Independence.independent_at ind node.env_state o1 op1 o2 op2
    | _ -> true
  in
  let crash_budget = crashes > popcount node.crashed in
  let earlier_steps = ref 0 and earlier_crashes = ref 0 in
  (* sleep mask for the subtree entered by [pid] doing [a]
     ([None] = crashing): q's pending action sleeps there when its
     branch is covered at this node — slept on arrival or explored as
     an earlier sibling — and it is independent of [a]. *)
  let child_mask pid a =
    let m = ref 0 in
    for q = 0 to n - 1 do
      if q <> pid && live q then begin
        (match acts.(q) with
        | Some aq
          when (arrival land (1 lsl q) <> 0
               || !earlier_steps land (1 lsl q) <> 0)
               && (match a with None -> true | Some a -> indep_step aq a) ->
            m := !m lor (1 lsl q)
        | _ -> ());
        if
          crash_budget
          && (arrival land (1 lsl (q + crash_shift)) <> 0
             || !earlier_crashes land (1 lsl q) <> 0)
        then m := !m lor (1 lsl (q + crash_shift))
      end
    done;
    !m
  in
  let kept = ref [] in
  if crash_budget then
    for pid = 0 to n - 1 do
      if live pid then
        if arrival land (1 lsl (pid + crash_shift)) <> 0 then on_pruned ()
        else begin
          on_crash ();
          let succ = { node with crashed = node.crashed lor (1 lsl pid) } in
          kept := (-2 - pid, succ, child_mask pid None) :: !kept;
          earlier_crashes := !earlier_crashes lor (1 lsl pid)
        end
    done;
  for pid = 0 to n - 1 do
    match acts.(pid) with
    | None -> ()
    | Some a ->
        (match a with
        | Process.Decide v when not (decision_valid node ~pid v) ->
            note_invalid pid v
        | _ -> ());
        let slept = arrival land (1 lsl pid) <> 0 in
        let monotone =
          match a with
          | Process.Decide _ -> true
          | Process.Invoke _ -> node.stepped land (1 lsl pid) = 0
        in
        if slept && monotone then on_pruned ()
        else begin
          let succ =
            match a with
            | Process.Decide v ->
                let decided = Array.copy node.decided in
                decided.(pid) <- Some v;
                { node with decided; stepped = node.stepped lor (1 lsl pid) }
            | Process.Invoke { obj; op; next } ->
                let env_state, res =
                  Env.apply config.env node.env_state obj op
                in
                let locals = Array.copy node.locals in
                locals.(pid) <- next res;
                {
                  node with
                  locals;
                  env_state;
                  stepped = node.stepped lor (1 lsl pid);
                }
          in
          kept := (pid, succ, child_mask pid (Some a)) :: !kept;
          earlier_steps := !earlier_steps lor (1 lsl pid)
        end
  done;
  List.rev !kept

type color = Gray | Black

(* Metric names: ROADMAP's measurement substrate.  Totals accumulate in
   plain refs during the DFS (the explorer is single-threaded) and are
   flushed to the shared registry once per run. *)
module M = struct
  open Wfs_obs.Metrics

  let runs = Counter.make "explorer.runs"

  (* "explorer.states" is the process-wide states-explored counter:
     exposed as wfs_explorer_states_total.  The solver adds its schedule
     nodes here too, so a scrape of any engine shows live progress. *)
  let states = Counter.make "explorer.states"
  let frontier = Gauge.make "explorer.frontier"
  let dedup_hits = Counter.make "explorer.dedup_hits"
  let dedup_lookups = Counter.make "explorer.dedup_lookups"
  let dedup_hit_rate = Fgauge.make "explorer.dedup_hit_rate"
  let max_depth_seen = Gauge.make "explorer.max_depth"
  let truncated_states = Counter.make "explorer.truncated.states"
  let truncated_depth = Counter.make "explorer.truncated.depth"
  let intern_hits = Counter.make "explorer.intern.hits"
  let intern_lookups = Counter.make "explorer.intern.lookups"
  let arena_size = Gauge.make "explorer.intern.arena_size"
  let fused_edges = Counter.make "explorer.fused_dp.edges"
  let crash_edges = Counter.make "explorer.crash_edges"
  let intern_contention = Counter.make "explorer.intern.contention"

  (* edges skipped by the sleep-set reduction: each was a redundant
     interleaving of an already-explored schedule (no [Env.apply], no
     intern lookup spent on it) *)
  let por_pruned = Counter.make "explorer.por.pruned"
end

(* [states_flushed] is what live batched ticks already pushed to
   [M.states] mid-run; only the remainder lands here, so live flushing
   never double-counts. *)
let flush_metrics ?(states_flushed = 0) ~states ~hits ~lookups ~deepest
    ~truncation ~cyclic ~intern () =
  let open Wfs_obs.Metrics in
  Counter.incr M.runs;
  Counter.add M.states (states - states_flushed);
  Counter.add M.dedup_hits hits;
  Counter.add M.dedup_lookups lookups;
  Fgauge.set M.dedup_hit_rate
    (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups);
  Gauge.set_max M.max_depth_seen deepest;
  (match truncation with
  | Some Budget_states -> Counter.incr M.truncated_states
  | Some Budget_depth -> Counter.incr M.truncated_depth
  | None -> ());
  (match intern with
  | Some tbl ->
      Counter.add M.intern_hits (Intern.hits tbl);
      Counter.add M.intern_lookups (Intern.lookups tbl);
      Gauge.set_max M.arena_size (Intern.size tbl)
  | None -> ());
  Wfs_obs.Trace.event "explorer.done"
    ~tags:
      [
        ("states", Wfs_obs.Json.int states);
        ("max_depth", Wfs_obs.Json.int deepest);
        ("cyclic", Wfs_obs.Json.bool cyclic);
        ("truncated", Wfs_obs.Json.bool (truncation <> None));
      ]

(* --- the legacy two-pass engine (reference implementation) --- *)

let explore_legacy ~max_states ~max_depth ~crashes config =
  let colors : (Value.t, color) Hashtbl.t = Hashtbl.create 4096 in
  let terminals : (Value.t, terminal) Hashtbl.t = Hashtbl.create 64 in
  let cyclic = ref false in
  let stuck = ref None in
  let truncation = ref None in
  let invalid = invalid_make () in
  let lookups = ref 0 in
  let hits = ref 0 in
  let deepest = ref 0 in
  let crash_seen = ref 0 in
  let rec dfs node depth =
    if depth > !deepest then deepest := depth;
    let k = key node in
    incr lookups;
    match Hashtbl.find_opt colors k with
    | Some Gray ->
        incr hits;
        cyclic := true
    | Some Black -> incr hits
    | None ->
        if Hashtbl.length colors >= max_states then
          (if !truncation = None then truncation := Some Budget_states)
        else if depth >= max_depth then
          (if !truncation = None then truncation := Some Budget_depth)
        else begin
          Hashtbl.replace colors k Gray;
          if is_terminal node then begin
            let decisions = Array.copy node.decided in
            Hashtbl.replace terminals
              (Value.pair
                 (Value.list
                    (Array.to_list (Array.map Value.of_option decisions)))
                 (Value.pair
                    (Value.int node.stepped)
                    (Value.int node.crashed)))
              {
                decisions;
                who_stepped = node.stepped;
                who_crashed = node.crashed;
              }
          end
          else begin
            match successors_with_edges ~crashes config node with
            | exception Object_spec.Unknown_operation { obj; op } ->
                stuck :=
                  Some (-1, Fmt.str "unknown operation %a on %s" Op.pp op obj)
            | [] ->
                (* undecided processes but no successor: impossible by
                   construction, kept for totality *)
                stuck := Some (-1, "no successor")
            | succs ->
                List.iter
                  (fun (pid, edge, succ) ->
                    (match edge with
                    | Decide_edge v when not (decision_valid node ~pid v) ->
                        invalid_note invalid pid v
                    | Crash_edge -> incr crash_seen
                    | Decide_edge _ | Op_edge -> ());
                    dfs succ (depth + 1))
                  succs
          end;
          Hashtbl.replace colors k Black
        end
  in
  dfs (initial config) 0;
  let truncated = !truncation <> None in
  let acyclic = (not !cyclic) && (not truncated) && !stuck = None in
  (* Longest-path DP for per-process step bounds, only on a fully explored
     DAG: the second pass the fused engine eliminates. *)
  let step_bounds =
    if not acyclic then None
    else begin
      let n = Array.length config.procs in
      let memo : (Value.t, int array) Hashtbl.t = Hashtbl.create 4096 in
      let rec bound node =
        let k = key node in
        match Hashtbl.find_opt memo k with
        | Some b -> b
        | None ->
            let best = Array.make n 0 in
            List.iter
              (fun (pid, edge, succ) ->
                let sub = bound succ in
                (* a crash edge is not a step of anyone: contribute the
                   child's bounds without the +1 *)
                let is_step = edge <> Crash_edge in
                Array.iteri
                  (fun p v ->
                    let v = if is_step && p = pid then v + 1 else v in
                    if v > best.(p) then best.(p) <- v)
                  sub)
              (successors_with_edges ~crashes config node);
            Hashtbl.replace memo k best;
            best
      in
      Some (bound (initial config))
    end
  in
  let states = Hashtbl.length colors in
  flush_metrics ~states ~hits:!hits ~lookups:!lookups ~deepest:!deepest
    ~truncation:!truncation ~cyclic:!cyclic ~intern:None ();
  Pool.note_states states;
  Wfs_obs.Metrics.Counter.add M.crash_edges !crash_seen;
  {
    states;
    terminals = Hashtbl.fold (fun _ d acc -> d :: acc) terminals [];
    cyclic = !cyclic;
    stuck = !stuck;
    truncated;
    truncation = !truncation;
    invalid_decisions = invalid_report invalid;
    step_bounds;
  }

(* --- the fused single-pass engine --- *)

(* One frame per node being expanded.  [f_best] accumulates the
   longest-path DP post-order: when the child explored via [f_pending]
   finishes, its bounds fold into [f_best] — the work the legacy engine
   repeats in a whole second traversal.

   Crash edges are encoded in the pid arrays as [-2 - pid]: [combine]
   adds the +1 step only when its pid argument matches a real process
   index, so a crash edge folds the child's bounds in verbatim —
   crashing is not a step of anyone. *)
type frame = {
  f_id : int;  (* interned id of the node *)
  f_pids : int array;  (* successor pids, in legacy DFS order *)
  f_nodes : node array;  (* successor nodes, computed exactly once *)
  f_masks : int array;  (* per-successor arrival sleep masks ([||] = none) *)
  mutable f_next : int;  (* next successor index to explore *)
  mutable f_pending : int;  (* pid of the in-flight successor *)
  f_best : int array;  (* running per-process longest-path maxima *)
}

let white = '\000'
let gray = '\001'
let black = '\002'

let explore_fast ~max_states ~max_depth ~symmetry ~crashes ~indep config =
  let n = Array.length config.procs in
  let encode = if symmetry then canonical_key else key in
  let size_hint = max 16 (min max_states 8192) in
  let tbl = Intern.create ~size_hint () in
  (* colors and DP bounds are arrays indexed by interned id, grown in
     lockstep with the arena *)
  let colors = ref (Bytes.make size_hint white) in
  let bounds = ref (Array.make size_hint [||]) in
  let ensure id =
    let cap = Bytes.length !colors in
    if id >= cap then begin
      let cap' = max (id + 1) (2 * cap) in
      let c = Bytes.make cap' white in
      Bytes.blit !colors 0 c 0 cap;
      colors := c;
      let b = Array.make cap' [||] in
      Array.blit !bounds 0 b 0 cap;
      bounds := b
    end
  in
  let zeros = Array.make n 0 in
  let terminals : terminal Value.Tbl.t = Value.Tbl.create 64 in
  let cyclic = ref false in
  let stuck = ref None in
  let truncation = ref None in
  let invalid = invalid_make () in
  let lookups = ref 0 in
  let hits = ref 0 in
  let visited = ref 0 in
  let live_flushed = ref 0 in
  let deepest = ref 0 in
  let fused = ref 0 in
  let crash_seen = ref 0 in
  let por_cut = ref 0 in
  let stack : frame Stack.t = Stack.create () in
  let combine f pid child =
    incr fused;
    let best = f.f_best in
    for p = 0 to n - 1 do
      let v = child.(p) + if p = pid then 1 else 0 in
      if v > best.(p) then best.(p) <- v
    done
  in
  (* successors as [(pid_code, succ, child_mask)] with all edge-level
     noting done — the sleep-set path and the unreduced path produce
     the same shape, the latter with empty masks *)
  let expand_node node arrival =
    match indep with
    | Some ind ->
        successors_with_sleep ~crashes ~ind
          ~note_invalid:(invalid_note invalid)
          ~on_crash:(fun () -> incr crash_seen)
          ~on_pruned:(fun () -> incr por_cut)
          config node arrival
    | None ->
        List.map
          (fun (pid, edge, succ) ->
            (match edge with
            | Decide_edge v when not (decision_valid node ~pid v) ->
                invalid_note invalid pid v
            | Crash_edge -> incr crash_seen
            | Decide_edge _ | Op_edge -> ());
            ((match edge with Crash_edge -> -2 - pid | _ -> pid), succ, 0))
          (successors_with_edges ~crashes config node)
  in
  (* Enter [node] (reached from [parent] by a step of [via_pid], with
     arrival sleep mask [arrival]).  Hits on finished nodes fold their
     bounds straight into the parent; fresh nodes either settle
     immediately (terminal / stuck) or push a frame. *)
  let visit parent via_pid node arrival depth =
    if depth > !deepest then deepest := depth;
    incr lookups;
    let id = Intern.intern tbl (encode node) in
    ensure id;
    let finish_leaf () =
      Bytes.set !colors id black;
      !bounds.(id) <- zeros;
      match parent with Some f -> combine f via_pid zeros | None -> ()
    in
    match Bytes.get !colors id with
    | c when c = gray ->
        incr hits;
        cyclic := true
    | c when c = black ->
        incr hits;
        (match parent with
        | Some f -> combine f via_pid !bounds.(id)
        | None -> ())
    | _ ->
        if !visited >= max_states then
          (if !truncation = None then truncation := Some Budget_states)
        else if depth >= max_depth then
          (if !truncation = None then truncation := Some Budget_depth)
        else begin
          incr visited;
          (* masked heartbeat: the batched live flush and the progress
             tick share one modulo test per 1024 states *)
          if !visited land 1023 = 0 then begin
            live_flushed := !live_flushed + 1024;
            Wfs_obs.Metrics.Counter.add M.states 1024;
            Wfs_obs.Metrics.Gauge.set M.frontier (Stack.length stack);
            Pool.note_states 1024;
            if Wfs_obs.Progress.enabled () then
              Wfs_obs.Progress.tick ~states:!visited
                ~frontier:(Stack.length stack)
          end;
          if is_terminal node then begin
            let decisions = Array.copy node.decided in
            Value.Tbl.replace terminals
              (Value.pair
                 (Value.list
                    (Array.to_list (Array.map Value.of_option decisions)))
                 (Value.pair
                    (Value.int node.stepped)
                    (Value.int node.crashed)))
              {
                decisions;
                who_stepped = node.stepped;
                who_crashed = node.crashed;
              };
            finish_leaf ()
          end
          else begin
            let pruned0 = !por_cut in
            match expand_node node arrival with
            | exception Object_spec.Unknown_operation { obj; op } ->
                stuck :=
                  Some (-1, Fmt.str "unknown operation %a on %s" Op.pp op obj);
                finish_leaf ()
            | [] ->
                (* all successors slept away: a legitimate leaf, its
                   outcomes covered through the representative paths *)
                if !por_cut > pruned0 then finish_leaf ()
                else begin
                  stuck := Some (-1, "no successor");
                  finish_leaf ()
                end
            | succs ->
                Bytes.set !colors id gray;
                let m = List.length succs in
                let pids = Array.make m (-1) in
                let nodes = Array.make m node in
                let masks = Array.make m 0 in
                List.iteri
                  (fun i (code, succ, mask) ->
                    pids.(i) <- code;
                    nodes.(i) <- succ;
                    masks.(i) <- mask)
                  succs;
                Stack.push
                  {
                    f_id = id;
                    f_pids = pids;
                    f_nodes = nodes;
                    f_masks = masks;
                    f_next = 0;
                    f_pending = -1;
                    f_best = Array.make n 0;
                  }
                  stack
          end
        end
  in
  visit None (-1) (initial config) 0 0;
  while not (Stack.is_empty stack) do
    let f = Stack.top stack in
    if f.f_next < Array.length f.f_pids then begin
      let i = f.f_next in
      f.f_next <- i + 1;
      f.f_pending <- f.f_pids.(i);
      visit (Some f) f.f_pids.(i) f.f_nodes.(i) f.f_masks.(i)
        (Stack.length stack)
    end
    else begin
      ignore (Stack.pop stack);
      !bounds.(f.f_id) <- f.f_best;
      Bytes.set !colors f.f_id black;
      match Stack.top_opt stack with
      | Some parent -> combine parent parent.f_pending f.f_best
      | None -> ()
    end
  done;
  let truncated = !truncation <> None in
  let acyclic = (not !cyclic) && (not truncated) && !stuck = None in
  let step_bounds =
    if not acyclic then None
    else begin
      let root_id = Intern.intern tbl (encode (initial config)) in
      Some (Array.copy !bounds.(root_id))
    end
  in
  let states = !visited in
  flush_metrics ~states_flushed:!live_flushed ~states ~hits:!hits
    ~lookups:!lookups ~deepest:!deepest ~truncation:!truncation
    ~cyclic:!cyclic ~intern:(Some tbl) ();
  Pool.note_states (states - !live_flushed);
  Wfs_obs.Metrics.Counter.add M.fused_edges !fused;
  Wfs_obs.Metrics.Counter.add M.crash_edges !crash_seen;
  Wfs_obs.Metrics.Counter.add M.por_pruned !por_cut;
  {
    states;
    terminals = Value.Tbl.fold (fun _ d acc -> d :: acc) terminals [];
    cyclic = !cyclic;
    stuck = !stuck;
    truncated;
    truncation = !truncation;
    invalid_decisions = invalid_report invalid;
    step_bounds;
  }

(* --- the parallel engine --- *)

(* Reachability is parallelised; the verdict pass is not.

   Phase 1 (parallel): a short sequential BFS from the root grows a
   frontier of claimed-but-unexpanded nodes — disjoint top-level
   schedule prefixes — which become pool jobs.  Workers share exactly
   one structure, the lock-striped interner ([Intern.Sharded]): its
   claim bit makes each distinct state the property of whichever worker
   interned it first, so every node is expanded exactly once and the
   global state count is exact, schedule-independent, and equal to the
   sequential engine's.  Everything else a worker writes — the int
   adjacency of the nodes it expanded, terminals, invalid decides,
   crash-edge counts — goes into a private record.

   Phase 2 (sequential): cycle detection and the fused longest-path DP
   cannot be split across workers (a cycle, and a longest path, can
   thread through several workers' territories), but by then the
   expensive work — [successors_with_edges], [Env.apply], hashing —
   is already done.  Phase 2 is a DFS over int arrays: a few machine
   operations per edge, a small fraction of phase-1 cost.

   Determinism: on runs that complete within budget, [states],
   [terminals], [cyclic], [stuck = None], validity and [step_bounds]
   are all schedule-independent (terminals are deduped by the same
   value key as the sequential engines and reported sorted).  Budget
   truncation is the one racy edge: which states fall inside a
   just-exceeded budget depends on the schedule, so truncated parallel
   runs may differ marginally from sequential ones — conservatively,
   since a truncated run never claims wait-freedom.  [-j 1] bypasses
   this engine entirely. *)

module MP = struct
  open Wfs_obs.Metrics

  let runs = Counter.make "explorer.par.runs"
  let seeds = Counter.make "explorer.par.seeds"
  let domains = Gauge.make "explorer.par.domains"
end

let terminal_key node =
  Value.pair
    (Value.list (Array.to_list (Array.map Value.of_option node.decided)))
    (Value.pair (Value.int node.stepped) (Value.int node.crashed))

(* Private per-worker record; merged single-threaded after the join. *)
type prec = {
  mutable r_edges : (int * int array * int array) list;
      (* (src id, pid codes, dst ids) — crash edges coded [-2 - pid] *)
  r_terminals : terminal Value.Tbl.t;
  r_invalid : (int * Value.t) Value.Tbl.t;
  mutable r_stuck : (int * string) option;
  mutable r_deepest : int;
  mutable r_crash : int;
  mutable r_truncation : truncation option;
  mutable r_claimed : int;  (* fresh states this worker claimed *)
  mutable r_claimed_flushed : int;  (* ...of which already flushed live *)
  mutable r_pruned : int;  (* edges skipped by the sleep-set reduction *)
}

let prec_make () =
  {
    r_edges = [];
    r_terminals = Value.Tbl.create 16;
    r_invalid = invalid_make ();
    r_stuck = None;
    r_deepest = 0;
    r_crash = 0;
    r_truncation = None;
    r_claimed = 0;
    r_claimed_flushed = 0;
    r_pruned = 0;
  }

(* Push this record's unreported claims to the global states counter and
   the claiming domain's [pool.shard.states] series.  Called at batched
   tick points and once at job end, so the sum over all records equals
   the exact state count with nothing double-counted. *)
let flush_claims rec_ =
  let d = rec_.r_claimed - rec_.r_claimed_flushed in
  if d > 0 then begin
    Wfs_obs.Metrics.Counter.add M.states d;
    Pool.note_states d;
    rec_.r_claimed_flushed <- rec_.r_claimed
  end

let explore_par ~pool ~max_states ~max_depth ~symmetry ~crashes ~indep config
    =
  let n = Array.length config.procs in
  let workers = Pool.size pool in
  let encode = if symmetry then canonical_key else key in
  let stbl =
    Intern.Sharded.create ~stripes:(max 61 (4 * workers))
      ~size_hint:(max 16 (min max_states 65536)) ()
  in
  let visited = Atomic.make 0 in
  (* Claim [node]: on first sight across all domains, count it and
     either record it as a terminal or hand it to [enqueue] for
     expansion.  Always returns the id so the caller can record the
     edge — edges to already-claimed nodes are what phase 2's cycle
     detection feeds on.  [mask] is the arrival sleep mask; the
     claiming arrival's mask is the one the eventual expansion uses
     (any valid mask preserves every verdict — see the sleep-set
     notes above). *)
  let consider_claimed rec_ ~enqueue node mask depth (id, fresh) =
    if depth > rec_.r_deepest then rec_.r_deepest <- depth;
    (if fresh then
       if Atomic.get visited >= max_states then (
         if rec_.r_truncation = None then rec_.r_truncation <- Some Budget_states)
       else if depth >= max_depth then (
         if rec_.r_truncation = None then rec_.r_truncation <- Some Budget_depth)
       else begin
         ignore (Atomic.fetch_and_add visited 1);
         rec_.r_claimed <- rec_.r_claimed + 1;
         if is_terminal node then
           Value.Tbl.replace rec_.r_terminals (terminal_key node)
             {
               decisions = Array.copy node.decided;
               who_stepped = node.stepped;
               who_crashed = node.crashed;
             }
         else enqueue (node, id, mask, depth)
       end);
    id
  in
  let consider rec_ ~enqueue node mask depth =
    consider_claimed rec_ ~enqueue node mask depth
      (Intern.Sharded.intern stbl (encode node))
  in
  let expand rec_ ~enqueue (node, id, mask, depth) =
    let expansion =
      match indep with
      | Some ind ->
          successors_with_sleep ~crashes ~ind
            ~note_invalid:(invalid_note rec_.r_invalid)
            ~on_crash:(fun () -> rec_.r_crash <- rec_.r_crash + 1)
            ~on_pruned:(fun () -> rec_.r_pruned <- rec_.r_pruned + 1)
            config node mask
      | None ->
          List.map
            (fun (pid, edge, succ) ->
              (match edge with
              | Decide_edge v when not (decision_valid node ~pid v) ->
                  invalid_note rec_.r_invalid pid v
              | Crash_edge -> rec_.r_crash <- rec_.r_crash + 1
              | Decide_edge _ | Op_edge -> ());
              ((match edge with Crash_edge -> -2 - pid | _ -> pid), succ, 0))
            (successors_with_edges ~crashes config node)
    in
    match expansion with
    | exception Object_spec.Unknown_operation { obj; op } ->
        if rec_.r_stuck = None then
          rec_.r_stuck <-
            Some (-1, Fmt.str "unknown operation %a on %s" Op.pp op obj)
    | [] ->
        (* with reduction on, an all-pruned node is a covered leaf,
           not a stuck state *)
        (match indep with
        | None ->
            if rec_.r_stuck = None then
              rec_.r_stuck <- Some (-1, "no successor")
        | Some _ -> ())
    | succs ->
        (* claim all successors in one batched pass over the interner's
           stripes — one lock round-trip per stripe instead of one per
           edge *)
        let m = List.length succs in
        let pids = Array.make m (-1) in
        let dsts = Array.make m (-1) in
        let nodes = Array.make m node in
        let masks = Array.make m 0 in
        List.iteri
          (fun i (code, succ, cmask) ->
            pids.(i) <- code;
            nodes.(i) <- succ;
            masks.(i) <- cmask)
          succs;
        let claims = Intern.Sharded.intern_batch stbl (Array.map encode nodes) in
        for i = 0 to m - 1 do
          dsts.(i) <-
            consider_claimed rec_ ~enqueue nodes.(i) masks.(i) (depth + 1)
              claims.(i)
        done;
        rec_.r_edges <- (id, pids, dsts) :: rec_.r_edges
  in
  (* Seed BFS: expand breadth-first until the frontier is wide enough to
     feed every worker a couple of seeds.  Seeds are deliberately few
     and fat — per-seed job overhead (record allocation, profile spans,
     queue churn) was measurable against small explorations at low
     worker counts, and work stealing smooths the residual imbalance
     between fat subtrees.  The expansion cap keeps a stubbornly narrow
     frontier from dragging the whole exploration into this sequential
     phase. *)
  let rec0 = prec_make () in
  let root = initial config in
  let queue : (node * int * int * int) Queue.t = Queue.create () in
  let root_id =
    Wfs_obs.Profile.span ~cat:"explore" "explore.seeds" (fun () ->
        let root_id =
          consider rec0 ~enqueue:(fun x -> Queue.add x queue) root 0 0
        in
        let target = 2 * workers in
        let budget = ref (8 * target) in
        while
          (not (Queue.is_empty queue))
          && Queue.length queue < target
          && !budget > 0
        do
          decr budget;
          expand rec0 ~enqueue:(fun x -> Queue.add x queue) (Queue.pop queue)
        done;
        root_id)
  in
  let seeds = Array.of_seq (Queue.to_seq queue) in
  flush_claims rec0;
  (* Phase 1 proper: one DFS job per seed. *)
  let recs =
    Pool.parallel_map pool
      (fun (si, seed) ->
        Wfs_obs.Profile.span ~cat:"explore"
          ~args:(fun () -> [ ("seed", Wfs_obs.Json.int si) ])
          "explore.shard"
          (fun () ->
            let rec_ = prec_make () in
            let stack = Stack.create () in
            Stack.push seed stack;
            let enqueue x = Stack.push x stack in
            let ticks = ref 0 in
            while not (Stack.is_empty stack) do
              expand rec_ ~enqueue (Stack.pop stack);
              incr ticks;
              if !ticks land 255 = 0 then begin
                flush_claims rec_;
                Wfs_obs.Metrics.Gauge.set M.frontier (Stack.length stack);
                if Wfs_obs.Progress.enabled () then
                  Wfs_obs.Progress.tick
                    ~states:(Atomic.get visited)
                    ~frontier:(Stack.length stack)
              end
            done;
            flush_claims rec_;
            rec_))
      (Array.mapi (fun i s -> (i, s)) seeds)
  in
  let all_recs = rec0 :: Array.to_list recs in
  Wfs_obs.Profile.begin_ ~cat:"explore" "explore.merge";
  (* Merge.  Each expanded node's adjacency was recorded by exactly one
     worker, so the writes below never collide on an index. *)
  let sz = Intern.Sharded.size stbl in
  let adj_pids = Array.make sz [||] in
  let adj_dsts = Array.make sz [||] in
  let terminals : terminal Value.Tbl.t = Value.Tbl.create 64 in
  (* Uncapped merge: workers cap at [max_invalid] each, but which pairs
     a worker sees depends on claim races.  Merging everything and then
     sorting before the cap keeps the report deterministic whenever the
     distinct-pair count fits the cap (and the validity verdict — empty
     or not — is exact regardless). *)
  let invalid : (int * Value.t) Value.Tbl.t = Value.Tbl.create 16 in
  let stuck = ref None in
  let deepest = ref 0 in
  let crash_seen = ref 0 in
  let pruned = ref 0 in
  let states_trunc = ref false in
  let depth_trunc = ref false in
  List.iter
    (fun r ->
      List.iter
        (fun (id, pids, dsts) ->
          adj_pids.(id) <- pids;
          adj_dsts.(id) <- dsts)
        r.r_edges;
      Value.Tbl.iter (Value.Tbl.replace terminals) r.r_terminals;
      Value.Tbl.iter (Value.Tbl.replace invalid) r.r_invalid;
      if !stuck = None then stuck := r.r_stuck;
      if r.r_deepest > !deepest then deepest := r.r_deepest;
      crash_seen := !crash_seen + r.r_crash;
      pruned := !pruned + r.r_pruned;
      (match r.r_truncation with
      | Some Budget_states -> states_trunc := true
      | Some Budget_depth -> depth_trunc := true
      | None -> ()))
    all_recs;
  let truncation =
    if !states_trunc then Some Budget_states
    else if !depth_trunc then Some Budget_depth
    else None
  in
  Wfs_obs.Profile.end_ ();
  Wfs_obs.Profile.begin_ ~cat:"explore" "explore.phase2";
  (* Phase 2: cycle detection + longest-path DP over the int graph.
     Nodes with no recorded adjacency (terminals, and claimed-but-
     dropped nodes of truncated runs) are leaves with zero bounds —
     exactly the sequential engines' treatment. *)
  let cyclic = ref false in
  let fused = ref 0 in
  let colors = Bytes.make sz white in
  let bounds = Array.make sz [||] in
  let zeros = Array.make n 0 in
  let stack : frame Stack.t = Stack.create () in
  let combine f pid child =
    incr fused;
    let best = f.f_best in
    for p = 0 to n - 1 do
      let v = child.(p) + if p = pid then 1 else 0 in
      if v > best.(p) then best.(p) <- v
    done
  in
  let visit parent via_pid id =
    match Bytes.get colors id with
    | c when c = gray -> cyclic := true
    | c when c = black -> (
        match parent with Some f -> combine f via_pid bounds.(id) | None -> ())
    | _ ->
        if Array.length adj_pids.(id) = 0 then begin
          Bytes.set colors id black;
          bounds.(id) <- zeros;
          match parent with Some f -> combine f via_pid zeros | None -> ()
        end
        else begin
          Bytes.set colors id gray;
          Stack.push
            {
              f_id = id;
              f_pids = adj_pids.(id);
              f_nodes = [||];
              f_masks = [||];
              f_next = 0;
              f_pending = -1;
              f_best = Array.make n 0;
            }
            stack
        end
  in
  visit None (-1) root_id;
  while not (Stack.is_empty stack) do
    let f = Stack.top stack in
    if f.f_next < Array.length f.f_pids then begin
      let i = f.f_next in
      f.f_next <- i + 1;
      f.f_pending <- f.f_pids.(i);
      visit (Some f) f.f_pids.(i) adj_dsts.(f.f_id).(i)
    end
    else begin
      ignore (Stack.pop stack);
      bounds.(f.f_id) <- f.f_best;
      Bytes.set colors f.f_id black;
      match Stack.top_opt stack with
      | Some parent -> combine parent parent.f_pending f.f_best
      | None -> ()
    end
  done;
  Wfs_obs.Profile.end_ ();
  let truncated = truncation <> None in
  let acyclic = (not !cyclic) && (not truncated) && !stuck = None in
  let step_bounds = if acyclic then Some (Array.copy bounds.(root_id)) else None in
  let states = Atomic.get visited in
  let hits = Intern.Sharded.hits stbl in
  let lookups = Intern.Sharded.lookups stbl in
  let contended = Intern.Sharded.contention stbl in
  if Wfs_obs.Profile.enabled () then
    Wfs_obs.Profile.counter "explorer.intern.contention"
      [ ("contended", float_of_int contended) ];
  (* every fresh claim went through a record's [flush_claims], so the
     global counter already holds all [states] of this run *)
  flush_metrics ~states_flushed:states ~states ~hits ~lookups
    ~deepest:!deepest ~truncation ~cyclic:!cyclic ~intern:None ();
  let open Wfs_obs.Metrics in
  Counter.add M.intern_contention contended;
  Counter.add M.intern_hits hits;
  Counter.add M.intern_lookups lookups;
  Gauge.set_max M.arena_size sz;
  Counter.add M.fused_edges !fused;
  Counter.add M.crash_edges !crash_seen;
  Counter.add M.por_pruned !pruned;
  Counter.incr MP.runs;
  Counter.add MP.seeds (Array.length seeds);
  Gauge.set_max MP.domains workers;
  let terminal_list =
    Value.Tbl.fold (fun k d acc -> (k, d) :: acc) terminals []
    |> List.sort (fun (k1, _) (k2, _) -> Value.compare k1 k2)
    |> List.map snd
  in
  {
    states;
    terminals = terminal_list;
    cyclic = !cyclic;
    stuck = !stuck;
    truncated;
    truncation;
    invalid_decisions =
      (let all = invalid_report invalid in
       List.filteri (fun i _ -> i < max_invalid) all);
    step_bounds;
  }

let explore ?(max_states = 2_000_000) ?(max_depth = 10_000)
    ?(symmetry = false) ?(legacy = false) ?(crashes = 0) ?(por = true) ?pool
    config =
  if crashes < 0 then invalid_arg "Explorer.explore: crashes < 0";
  (* The reduction composes with crashes and the parallel engine;
     [legacy] is the reference engine and stays unreduced, and
     [symmetry] already collapses orbits whose interaction with
     path-dependent sleep masks is not covered by the soundness
     argument, so each disables it.  Masks pack step and crash bits
     into one int, which caps the process count. *)
  let indep =
    if por && (not legacy) && (not symmetry)
       && Array.length config.procs <= crash_shift
    then
      Some
        (Wfs_obs.Profile.span ~cat:"explore" "explore.independence"
           (fun () -> Independence.of_env config.env))
    else None
  in
  match pool with
  | Some p when (not legacy) && Pool.size p > 1 ->
      Wfs_obs.Profile.span ~cat:"explore" "explore.par" (fun () ->
          explore_par ~pool:p ~max_states ~max_depth ~symmetry ~crashes ~indep
            config)
  | _ ->
      if legacy then
        Wfs_obs.Profile.span ~cat:"explore" "explore.legacy" (fun () ->
            explore_legacy ~max_states ~max_depth ~crashes config)
      else
        Wfs_obs.Profile.span ~cat:"explore" "explore.dfs" (fun () ->
            explore_fast ~max_states ~max_depth ~symmetry ~crashes ~indep
              config)

let wait_free stats =
  (not stats.cyclic) && (not stats.truncated) && stats.stuck = None
