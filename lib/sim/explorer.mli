(** Exhaustive interleaving exploration — the literal universal
    quantification over the adversarial scheduler, for protocols with
    finite reachable joint-state spaces.

    On a finite state graph, wait-freedom is acyclicity: a reachable
    cycle is exactly a schedule on which some undecided process steps
    forever; on a DAG, the longest-path bound is the strong-wait-freedom
    step bound of §2.4. *)

open Wfs_spec

type config = { procs : Process.t array; env : Env.t }

type node = {
  locals : Value.t array;
  decided : Value.t option array;
  env_state : Env.state;
  stepped : int;  (** bitmask of processes that have taken ≥ 1 step *)
  crashed : int;
      (** bitmask of processes halted by the crash-stop adversary; a
          crashed process is never scheduled again *)
}

type terminal = {
  decisions : Value.t option array;
      (** per-process decision; [None] iff the process crashed before
          deciding *)
  who_stepped : int;  (** bitmask of processes that took ≥ 1 step *)
  who_crashed : int;  (** bitmask of processes crashed in the execution *)
}

(** Which budget cut the exploration short. *)
type truncation = Budget_states | Budget_depth

type stats = {
  states : int;
  terminals : terminal list;
      (** deduplicated (decision vector, stepped-mask) terminal
          outcomes *)
  cyclic : bool;
  stuck : (int * string) option;
  truncated : bool;
  truncation : truncation option;
      (** the budget exhausted first, when [truncated]; mirrored into
          the [explorer.truncated.states] / [explorer.truncated.depth]
          metrics *)
  invalid_decisions : (int * Value.t) list;
      (** decide events naming a process that had not yet stepped — the
          paper's validity condition, checked on every history prefix *)
  step_bounds : int array option;
      (** worst-case per-process step counts, when acyclic and fully
          explored *)
}

val initial : config -> node
val key : node -> Value.t

(** Canonical key under full process symmetry: per-process components
    are sorted before encoding, so nodes in the same orbit of the
    process-permutation group intern to one id.  Sound only when every
    process runs the same pid-independent program (see
    [explore ~symmetry]). *)
val canonical_key : node -> Value.t

(** Terminal under the crash-stop adversary: every process has decided
    or crashed.  With [crashed = 0] this is the original "everyone
    decided". *)
val is_terminal : node -> bool

type edge = Decide_edge of Value.t | Op_edge | Crash_edge

(** Successor relation: one edge per live (neither decided nor crashed)
    process; a [Decide] transition counts as that process's step.  With
    [crashes] above the number of crashes already in [node.crashed],
    also one [Crash_edge] per live process — the adversary halting it at
    exactly this point.  Crash edges are listed first, do not set the
    [stepped] bit, and do not count as steps in the longest-path DP. *)
val successors : ?crashes:int -> config -> node -> (int * node) list

val successors_with_edges :
  ?crashes:int -> config -> node -> (int * edge * node) list

(** [decision_valid node ~pid v]: deciding [v] in [node] satisfies the
    paper's validity condition — [v] names the decider or a process that
    has already stepped. *)
val decision_valid : node -> pid:int -> Value.t -> bool

(** Exhaustive DFS.

    The default engine interns joint-state keys to dense ids
    ({!Intern}, full-depth hashing) and computes the longest-path step
    bounds post-order during the single iterative DFS — no second
    traversal, no re-derived successors, no stack-overflow risk at
    large [max_depth].

    [symmetry] (default false) keys the visited set by
    {!canonical_key}, collapsing process-permutation orbits; enable it
    only for systems whose processes all run the same pid-independent
    program over a symmetric environment.  [states] and [terminals]
    then describe the quotient graph (one orbit representative each);
    [step_bounds] are the quotient's longest pid-labelled paths — a
    sound over-approximation of the true per-process bounds, since
    orbit collapsing permutes pid labels along a path.  Cyclicity (and
    hence [wait_free]) is exact either way.

    [legacy] (default false) runs the original recursive two-pass
    engine instead — the reference implementation for differential
    tests and the [PERF] old-vs-new benchmarks; [symmetry] is ignored
    under [legacy].

    [por] (default true) prunes redundant interleavings with sleep
    sets over the semantic independence relation ({!Independence},
    computed once per call from the environment's sequential
    semantics): an edge whose action was already explored at an
    ancestor node, with every move since independent of it, is an
    adjacent-transposition rearrangement of an explored schedule and
    is skipped without deriving its successor.  Only monotone edges —
    decides, crashes, and first steps, which no cycle can contain —
    are pruned, and invalid decides are noted for every generated
    edge before the pruning decision, so [states], [terminals],
    [cyclic], [stuck], [invalid_decisions] and [step_bounds] are all
    exactly those of the unreduced search (the reduction removes
    *edges*, never states); only the per-edge work shrinks.  Skipped
    edges feed [explorer.por.pruned].  The reduction composes with
    [crashes] and [pool]; it is disabled automatically under [legacy]
    (the unreduced reference engine), under [symmetry] (orbit
    collapsing and path-dependent sleep masks are separate
    reductions), and for more than 16 processes.  [por:false]
    reproduces the unreduced edge traversal of previous releases,
    byte for byte.

    [crashes] (default 0) is the crash-stop adversary's budget: the
    exploration additionally quantifies over every point at which up to
    [crashes] processes halt permanently (Herlihy's failure model —
    wait-freedom {e is} tolerance of [n-1] undetected halting
    failures).  Terminals then require every process to have decided or
    crashed; a crashed process's decision slot is [None].  With
    [crashes = 0] the state graph, verdicts, and step bounds are
    exactly those of the crash-free explorer.  Crash edges feed the
    [explorer.crash_edges] counter.

    [pool] (default none) runs the exploration across the pool's
    domains when the pool has size > 1 (and [legacy] is off): a short
    sequential BFS fans the top-level schedule prefixes out as worker
    seeds; workers share the visited set through a lock-striped
    interner whose claim bit assigns each distinct state to exactly one
    expander; cycle detection and the step-bound DP then run as a cheap
    sequential pass over the recorded int adjacency.  On runs that
    finish within budget, every field of {!stats} except the marginal
    truncation details is schedule-independent and equal to the
    sequential engine's ([terminals] as a set — the parallel engine
    reports them sorted).  Omitting [pool], or passing a size-1 pool,
    uses the sequential engine unchanged.

    Each run also feeds the default [Wfs_obs.Metrics] registry:
    [explorer.runs], [explorer.states] (flushed live in batches of
    1024 so a mid-run scrape sees progress, together with the
    [explorer.frontier] depth gauge and the claiming domain's
    [pool.shard.states{shard=i}] series), [explorer.dedup_hits] /
    [explorer.dedup_lookups] / [explorer.dedup_hit_rate],
    [explorer.max_depth], a truncation counter per {!truncation} cause,
    and — fast engine only — [explorer.intern.hits] /
    [explorer.intern.lookups] / [explorer.intern.arena_size] and
    [explorer.fused_dp.edges] (edges whose DP contribution was folded
    in the single pass, i.e. the second traversal saved).  Parallel
    runs add [explorer.par.runs], [explorer.par.seeds] and the
    [explorer.par.domains] gauge. *)
val explore :
  ?max_states:int ->
  ?max_depth:int ->
  ?symmetry:bool ->
  ?legacy:bool ->
  ?crashes:int ->
  ?por:bool ->
  ?pool:Pool.t ->
  config ->
  stats

(** No cycle, nothing stuck, nothing truncated. *)
val wait_free : stats -> bool
