(** Hash-consing of [Value.t] state keys into dense [int] ids.

    One {!Value.hash_full} lookup per {!intern} call; every structure
    downstream of the interner (visited colors, DP bounds, strategy
    tables) becomes int-keyed or array-indexed.  Ids are assigned
    densely from 0 in first-intern order, so they double as array
    indices. *)

open Wfs_spec

type t

(** [create ?size_hint ()] — [size_hint] pre-sizes the id table and
    arena (e.g. from an expected state count). *)
val create : ?size_hint:int -> unit -> t

(** [intern t v] returns the id of [v], allocating the next dense id on
    first sight.  [intern t v = intern t w] iff [Value.equal v w]. *)
val intern : t -> Value.t -> int

(** Id of [v] if already interned, without allocating one. *)
val find_opt : t -> Value.t -> int option

(** [value t id] decodes an id back to its key; raises
    [Invalid_argument] on an id never returned by [intern t]. *)
val value : t -> int -> Value.t

(** Number of distinct keys interned (= the next fresh id). *)
val size : t -> int

(** {1 Instrumentation counters} *)

val lookups : t -> int
val hits : t -> int

(** Occupancy snapshot of an id table, for sizing downstream structures
    (e.g. stripe counts for {!Sharded}) and for rehash diagnostics. *)
type table_stats = {
  entries : int;  (** distinct keys interned *)
  buckets : int;  (** hash-table buckets allocated *)
  load : float;  (** [entries /. buckets] *)
  max_bucket : int;  (** longest collision chain *)
}

val stats : t -> table_stats

(** Hash-consing of small [int array] keys to dense ids — same contract
    as {!intern} ([intern t a = intern t b] iff the arrays are equal
    elementwise), with a dedicated FNV hash over the elements and no
    decode arena.  Used by the solver's transposition table, which keys
    game positions by flat int encodings. *)
module Ints : sig
  type t

  val create : ?size_hint:int -> unit -> t

  (** The array is captured as the table key on first sight: callers
      must not mutate it after interning. *)
  val intern : t -> int array -> int

  (** Number of distinct keys interned (= the next fresh id). *)
  val size : t -> int
end

(** Lock-striped interner shared across domains.

    Ids are dense and unique but {e schedule-dependent} in order —
    unlike {!intern} above, two runs may assign different ids to the
    same key.  What is deterministic is the claim: for each key exactly
    one [intern] call across all domains returns [fresh = true].  The
    parallel explorer uses that claim bit as its visited set, and never
    relies on id order.

    Live telemetry: every 1024 lookups a stripe flushes its deltas to
    the global [intern.lookups]/[intern.hits] counters (amortized cost:
    two atomic adds per thousand interns), and each [try_lock] miss
    bumps [intern.contention] plus the per-stripe
    [intern.stripe.contention{stripe=i}] series — mid-run scrapes can
    pin contention on a specific stripe. *)
module Sharded : sig
  type t

  (** [create ?stripes ?size_hint ()] — [stripes] (default 61, clamped
      to [\[1, 4093\]], prime recommended) sets lock granularity;
      [size_hint] pre-sizes the per-stripe tables from an expected
      total key count. *)
  val create : ?stripes:int -> ?size_hint:int -> unit -> t

  (** [intern t v] returns [(id, fresh)]: [fresh] is [true] on exactly
      the first intern of [v] across all domains. *)
  val intern : t -> Value.t -> int * bool

  (** [intern_batch t keys] claims every key of one expansion in a
      single pass, taking each stripe's lock at most once per call
      instead of once per key; [(intern_batch t keys).(i)] has the same
      (id, fresh) meaning as [intern t keys.(i)], with within-batch
      duplicates resolving exactly as repeated [intern] calls would. *)
  val intern_batch : t -> Value.t array -> (int * bool) array

  val find_opt : t -> Value.t -> int option

  (** Distinct keys interned so far (= the next fresh id). *)
  val size : t -> int

  val lookups : t -> int
  val hits : t -> int

  (** Number of lock acquisitions that found the stripe already held by
      another domain (a [try_lock] miss).  High contention relative to
      {!lookups} says the stripe count is too low for the fan-out. *)
  val contention : t -> int

  val stats : t -> table_stats
end
