(** Hash-consing of [Value.t] state keys into dense [int] ids.

    One {!Value.hash_full} lookup per {!intern} call; every structure
    downstream of the interner (visited colors, DP bounds, strategy
    tables) becomes int-keyed or array-indexed.  Ids are assigned
    densely from 0 in first-intern order, so they double as array
    indices. *)

open Wfs_spec

type t

(** [create ?size_hint ()] — [size_hint] pre-sizes the id table and
    arena (e.g. from an expected state count). *)
val create : ?size_hint:int -> unit -> t

(** [intern t v] returns the id of [v], allocating the next dense id on
    first sight.  [intern t v = intern t w] iff [Value.equal v w]. *)
val intern : t -> Value.t -> int

(** Id of [v] if already interned, without allocating one. *)
val find_opt : t -> Value.t -> int option

(** [value t id] decodes an id back to its key; raises
    [Invalid_argument] on an id never returned by [intern t]. *)
val value : t -> int -> Value.t

(** Number of distinct keys interned (= the next fresh id). *)
val size : t -> int

(** {1 Instrumentation counters} *)

val lookups : t -> int
val hits : t -> int
