(** Processes as pure state machines — the executable counterpart of the
    paper's I/O-automaton processes.

    A process maps its local state (a {!Wfs_spec.Value.t}) to its next
    action: invoke an operation on a named shared object, or decide and
    halt.  Programs must be pure: the explorer re-derives continuations by
    re-running [program] on stored local states, which is what makes
    joint protocol states hashable and exhaustive exploration sound. *)

open Wfs_spec

type action =
  | Invoke of { obj : string; op : Op.t; next : Value.t -> Value.t }
      (** invoke [op] on object [obj]; [next response] is the new local
          state *)
  | Decide of Value.t  (** output a decision and halt *)

type t = { pid : int; init : Value.t; program : Value.t -> action }

val make : pid:int -> init:Value.t -> (Value.t -> action) -> t
val action : t -> Value.t -> action

(** {1 Program-counter helpers}

    Protocol processes are usually written as a numbered sequence of
    steps with auxiliary data: local state [= Pair (Int pc, data)]. *)

val at : ?data:Value.t -> int -> Value.t
val pc : Value.t -> int
val data : Value.t -> Value.t

val invoke : obj:string -> Op.t -> (Value.t -> Value.t) -> action
val decide : Value.t -> action
val pp_action : action Fmt.t
