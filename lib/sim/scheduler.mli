(** Scheduling policies for single-run simulation.

    A policy picks which runnable process takes the next atomic step.  The
    exhaustive explorer quantifies over all policies instead. *)

type t = step:int -> runnable:int list -> int

val round_robin : t

(** Deterministic seeded pseudo-random interleaving. *)
val random : seed:int -> t

(** Always run the lowest-numbered runnable process to completion first —
    the "paused adversary" schedule. *)
val sequential : t

(** Replay an explicit pid list (falling back to round-robin), used for
    counterexample schedules. *)
val of_list : int list -> t
