(* Domain pool with per-member work-stealing deques.

   Batches are published through an epoch counter: the leader installs
   [current <- Some (epoch, batch)] and broadcasts; workers that have
   already drained epoch [e] sleep until they observe an epoch [<> e]
   (or shutdown).  Completion is an atomic countdown — whichever member
   runs the last job clears [current] and wakes the leader.  Workers
   that wake late for a batch simply find the deques empty and go back
   to sleep; correctness never depends on every member participating.

   Determinism: results land in a slot array indexed by job index, and
   exceptions are re-raised lowest-index-first, so the observable
   outcome of [parallel_map] does not depend on the schedule. *)

module M = struct
  open Wfs_obs.Metrics

  let batches = Counter.make "pool.batches"
  let jobs = Counter.make "pool.jobs"
  let steals = Counter.make "pool.steals"
  let steal_failures = Counter.make "pool.steal_failures"

  (* High-water mark of pool sizes created (incl. the caller). *)
  let domains = Gauge.make "pool.domains"
end

(* Per-member ("shard") series, labelled by member index.  These exist
   so a live scrape can attribute load imbalance to a specific domain;
   [stats] keeps serving the same numbers from the mrec slots for
   in-process consumers. *)
type shard_metrics = {
  sm_jobs : Wfs_obs.Metrics.Counter.t;
  sm_steals : Wfs_obs.Metrics.Counter.t;
  sm_steal_failures : Wfs_obs.Metrics.Counter.t;
  sm_busy_ns : Wfs_obs.Metrics.Gauge.t;
  sm_idle_ns : Wfs_obs.Metrics.Gauge.t;
  sm_job_ns : Wfs_obs.Metrics.Histogram.t;
}

let shard_label me = [ ("shard", string_of_int me) ]

let make_shard_metrics me =
  let open Wfs_obs.Metrics in
  let name base = labeled base (shard_label me) in
  {
    sm_jobs = Counter.make (name "pool.shard.jobs");
    sm_steals = Counter.make (name "pool.shard.steals");
    sm_steal_failures = Counter.make (name "pool.shard.steal_failures");
    sm_busy_ns = Gauge.make (name "pool.shard.busy_ns");
    sm_idle_ns = Gauge.make (name "pool.shard.idle_ns");
    sm_job_ns = Histogram.make (name "pool.shard.job_ns");
  }

(* Which pool member the current domain is: 0 for the leader (and for
   any domain outside a pool), the worker index otherwise.  Work done
   inside a job — solver nodes, explored states — attributes itself to
   the right shard through this. *)
let member_key = Domain.DLS.new_key (fun () -> 0)
let self () = Domain.DLS.get member_key

let max_members = 128

(* "States claimed per shard": cumulative count of states/nodes the jobs
   running on each member have processed, fed by [note_states] from the
   engines' batched flush points.  Cached globally because callers
   (solver, explorer) have no pool handle; the unsynchronized
   option-array read/write is a benign race — [Gauge.make] is
   idempotent, so a stale [None] just re-resolves the same gauge. *)
let shard_states_cache : Wfs_obs.Metrics.Gauge.t option array =
  Array.make max_members None

let shard_states_gauge me =
  let me = if me < 0 || me >= max_members then 0 else me in
  match shard_states_cache.(me) with
  | Some g -> g
  | None ->
      let g =
        Wfs_obs.Metrics.Gauge.make
          (Wfs_obs.Metrics.labeled "pool.shard.states" (shard_label me))
      in
      shard_states_cache.(me) <- Some g;
      g

let note_states n =
  if n > 0 then Wfs_obs.Metrics.Gauge.add (shard_states_gauge (self ())) n

(* Single-lock deque of job indices: the owner pushes/pops at the tail
   (LIFO, cache-friendly for its own block), thieves take from the head
   (FIFO, so they grab the work farthest from the owner's hot end).
   A mutex per deque is plenty here: contention is bounded by the batch
   fan-out, and jobs (protocol verifications) dwarf the lock cost. *)
type deque = {
  dq_lock : Mutex.t;
  items : int array;
  mutable head : int; (* next steal slot *)
  mutable tail : int; (* next owner push slot *)
}

let deque_of_block items =
  { dq_lock = Mutex.create (); items; head = 0; tail = Array.length items }

let dq_pop d =
  Mutex.lock d.dq_lock;
  let r =
    if d.tail > d.head then begin
      d.tail <- d.tail - 1;
      Some d.items.(d.tail)
    end
    else None
  in
  Mutex.unlock d.dq_lock;
  r

let dq_steal d =
  Mutex.lock d.dq_lock;
  let r =
    if d.tail > d.head then begin
      let i = d.items.(d.head) in
      d.head <- d.head + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.dq_lock;
  r

type batch = {
  run : int -> unit; (* run job [i]; must not raise *)
  deques : deque array; (* one per member, leader = 0 *)
  remaining : int Atomic.t;
}

type member_stats = {
  jobs_run : int;
  steals : int;
  steal_failures : int;
  busy_ns : int;
  idle_ns : int;
}

(* Per-member accumulators: member [m] writes only slot [m], so the
   record path needs no lock.  [stats] reads between batches. *)
type mrec = {
  mutable m_jobs : int;
  mutable m_steals : int;
  mutable m_steal_failures : int;
  mutable m_busy : int;
  mutable m_idle : int;
}

type t = {
  pool_size : int;
  lock : Mutex.t;
  work_cv : Condition.t; (* leader -> workers: new batch / shutdown *)
  done_cv : Condition.t; (* last finisher -> leader *)
  mutable current : (int * batch) option;
  mutable epoch : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mrecs : mrec array; (* one slot per member, leader = 0 *)
  smetrics : shard_metrics array; (* labelled series, one per member *)
}

let stats t =
  Array.map
    (fun m ->
      {
        jobs_run = m.m_jobs;
        steals = m.m_steals;
        steal_failures = m.m_steal_failures;
        busy_ns = m.m_busy;
        idle_ns = m.m_idle;
      })
    t.mrecs

let size t = t.pool_size

(* True while the current domain is executing a pool job.  A nested
   [parallel_map] from inside a job must not block on the pool's own
   members, so it runs inline instead. *)
let in_job_key = Domain.DLS.new_key (fun () -> false)

let run_job t b me i =
  let m = t.mrecs.(me) in
  let sm = t.smetrics.(me) in
  let prof = Wfs_obs.Profile.enabled () in
  if prof then
    Wfs_obs.Profile.begin_ ~cat:"pool"
      ~args:(fun () -> [ ("job", Wfs_obs.Json.int i) ])
      "pool.job";
  let t0 = Wfs_obs.Clock.now_ns () in
  Domain.DLS.set in_job_key true;
  (try b.run i with _ -> ());
  Domain.DLS.set in_job_key false;
  let dt = Wfs_obs.Clock.now_ns () - t0 in
  m.m_busy <- m.m_busy + dt;
  m.m_jobs <- m.m_jobs + 1;
  (* b.run swallows exceptions, so the span always closes *)
  if prof then Wfs_obs.Profile.end_ ();
  Wfs_obs.Metrics.Counter.incr M.jobs;
  Wfs_obs.Metrics.Counter.incr sm.sm_jobs;
  Wfs_obs.Metrics.Gauge.set sm.sm_busy_ns m.m_busy;
  Wfs_obs.Metrics.Histogram.observe sm.sm_job_ns dt;
  if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
    Mutex.lock t.lock;
    t.current <- None;
    Condition.broadcast t.done_cv;
    Mutex.unlock t.lock
  end

(* Run jobs until neither our deque nor anyone else's has work left.
   Jobs may still be in flight on other members when we return; the
   countdown in [run_job] is what signals true completion. *)
let drain t b me =
  let k = Array.length b.deques in
  let m = t.mrecs.(me) in
  let sm = t.smetrics.(me) in
  let steal_one () =
    let rec go off =
      if off >= k then None
      else
        match dq_steal b.deques.((me + off) mod k) with
        | Some _ as r ->
            m.m_steals <- m.m_steals + 1;
            Wfs_obs.Metrics.Counter.incr M.steals;
            Wfs_obs.Metrics.Counter.incr sm.sm_steals;
            if Wfs_obs.Profile.enabled () then
              Wfs_obs.Profile.instant ~cat:"pool"
                ~args:(fun () ->
                  [ ("victim", Wfs_obs.Json.int ((me + off) mod k)) ])
                "pool.steal";
            r
        | None ->
            m.m_steal_failures <- m.m_steal_failures + 1;
            Wfs_obs.Metrics.Counter.incr M.steal_failures;
            Wfs_obs.Metrics.Counter.incr sm.sm_steal_failures;
            go (off + 1)
    in
    go 1
  in
  let rec loop () =
    match dq_pop b.deques.(me) with
    | Some i ->
        run_job t b me i;
        loop ()
    | None -> (
        match steal_one () with
        | Some i ->
            run_job t b me i;
            loop ()
        | None -> ())
  in
  loop ()

let worker_main t me =
  Domain.DLS.set member_key me;
  (* one event per worker at startup: the trace gets a tid row for
     every member even if this worker never wins a job *)
  if Wfs_obs.Profile.enabled () then
    Wfs_obs.Profile.instant ~cat:"pool" "pool.member";
  let m = t.mrecs.(me) in
  let rec wait_for_batch last_epoch =
    let w0 = Wfs_obs.Clock.now_ns () in
    Mutex.lock t.lock;
    let rec block () =
      if t.stop then begin
        Mutex.unlock t.lock;
        None
      end
      else
        match t.current with
        | Some (e, b) when e <> last_epoch ->
            Mutex.unlock t.lock;
            Some (e, b)
        | _ ->
            Condition.wait t.work_cv t.lock;
            block ()
    in
    match block () with
    | None -> ()
    | Some (e, b) ->
        m.m_idle <- m.m_idle + (Wfs_obs.Clock.now_ns () - w0);
        Wfs_obs.Metrics.Gauge.set t.smetrics.(me).sm_idle_ns m.m_idle;
        if Wfs_obs.Profile.enabled () then
          Wfs_obs.Profile.complete ~cat:"pool" "pool.idle" ~t0_ns:w0;
        drain t b me;
        wait_for_batch e
  in
  wait_for_batch 0

let create ?domains () =
  let requested =
    match domains with None -> Domain.recommended_domain_count () | Some d -> d
  in
  let n = max 1 (min requested 128) in
  let t =
    {
      pool_size = n;
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      epoch = 0;
      stop = false;
      workers = [];
      mrecs =
        Array.init n (fun _ ->
            { m_jobs = 0; m_steals = 0; m_steal_failures = 0; m_busy = 0; m_idle = 0 });
      smetrics = Array.init n make_shard_metrics;
    }
  in
  Wfs_obs.Metrics.Gauge.set_max M.domains n;
  (* register the per-shard states series eagerly so a scrape shows one
     series per member even before any engine claims states *)
  for me = 0 to n - 1 do
    ignore (shard_states_gauge me)
  done;
  t.workers <- List.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_main t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Block-partition [0, n) over [k] deques: member [m] owns
   [m*n/k, (m+1)*n/k).  Members with an empty block steal. *)
let make_deques n k =
  Array.init k (fun m ->
      let lo = m * n / k and hi = (m + 1) * n / k in
      deque_of_block (Array.init (hi - lo) (fun i -> lo + i)))

let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.pool_size = 1 || Domain.DLS.get in_job_key then Array.map f arr
  else begin
    if t.stop then invalid_arg "Wfs_sim.Pool.parallel_map: pool is shut down";
    let slots = Array.make n None in
    let run i = slots.(i) <- Some (try Ok (f arr.(i)) with e -> Error e) in
    let b =
      { run; deques = make_deques n t.pool_size; remaining = Atomic.make n }
    in
    Wfs_obs.Metrics.Counter.incr M.batches;
    let prof = Wfs_obs.Profile.enabled () in
    if prof then
      Wfs_obs.Profile.begin_ ~cat:"pool"
        ~args:(fun () ->
          [
            ("jobs", Wfs_obs.Json.int n);
            ("members", Wfs_obs.Json.int t.pool_size);
          ])
        "pool.batch";
    Mutex.lock t.lock;
    t.epoch <- t.epoch + 1;
    let epoch = t.epoch in
    t.current <- Some (epoch, b);
    Condition.broadcast t.work_cv;
    Mutex.unlock t.lock;
    (* The leader works its own block (and steals) like any member. *)
    drain t b 0;
    let w0 = Wfs_obs.Clock.now_ns () in
    Mutex.lock t.lock;
    while Atomic.get b.remaining > 0 do
      Condition.wait t.done_cv t.lock
    done;
    (match t.current with Some (e, _) when e = epoch -> t.current <- None | _ -> ());
    Mutex.unlock t.lock;
    t.mrecs.(0).m_idle <- t.mrecs.(0).m_idle + (Wfs_obs.Clock.now_ns () - w0);
    Wfs_obs.Metrics.Gauge.set t.smetrics.(0).sm_idle_ns t.mrecs.(0).m_idle;
    if prof then begin
      Wfs_obs.Profile.complete ~cat:"pool" "pool.wait" ~t0_ns:w0;
      Wfs_obs.Profile.end_ ()
    end;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every job decremented [remaining] *))
      slots
  end

let map_list t f l = Array.to_list (parallel_map t f (Array.of_list l))
