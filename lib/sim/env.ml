(* Shared-object environments.

   An environment is a fixed set of named objects, each given by its
   sequential specification.  The environment state is the vector of
   object states, kept in the declaration order so it can be encoded as a
   single [Value.t] and used in hash keys by the explorer.

   Applying an operation is atomic — the linearizable-object reduction
   the paper performs in all its proofs. *)

open Wfs_spec

type t = { specs : (string * Object_spec.t) array }

type state = Value.t array

let make bindings =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg (Fmt.str "Env.make: duplicate object %S" name);
      Hashtbl.replace seen name ())
    bindings;
  { specs = Array.of_list bindings }

let names t = Array.to_list (Array.map fst t.specs)

let specs t = Array.to_list t.specs

let init t : state = Array.map (fun (_, spec) -> spec.Object_spec.init) t.specs

let index t obj =
  let rec go i =
    if i >= Array.length t.specs then
      invalid_arg (Fmt.str "Env: unknown object %S" obj)
    else if String.equal (fst t.specs.(i)) obj then i
    else go (i + 1)
  in
  go 0

let spec t obj = snd t.specs.(index t obj)

let get (state : state) t obj = state.(index t obj)

(* [apply t state obj op] applies [op] atomically, returning the new
   environment state (a fresh array) and the result. *)
let apply t (state : state) obj op =
  let i = index t obj in
  let _, spec = t.specs.(i) in
  let obj_state', result = Object_spec.apply spec state.(i) op in
  let state' = Array.copy state in
  state'.(i) <- obj_state';
  (state', result)

let encode (state : state) = Value.list (Array.to_list state)

let pp_state t ppf (state : state) =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (name, v) -> Fmt.pf ppf "%s = %a" name Value.pp v))
    (List.mapi (fun i (name, _) -> (name, state.(i))) (Array.to_list t.specs))
