(** Single-schedule protocol execution: run processes under a scheduling
    policy, recording trace, event history and decisions. *)

open Wfs_spec

type step = { pid : int; obj : string; op : Op.t; res : Value.t }

type outcome = {
  decisions : (int * Value.t) list;
  trace : step list;
  history : Wfs_history.History.t;
  steps_taken : int array;
  completed : bool;
}

exception Stuck of { pid : int; reason : string }

(** Expand an atomic-step trace into the equivalent INVOKE/RESPOND event
    history. *)
val history_of_trace : step list -> Wfs_history.History.t

val run :
  ?max_steps:int ->
  procs:Process.t array ->
  env:Env.t ->
  schedule:Scheduler.t ->
  unit ->
  outcome

val pp_step : step Fmt.t
val pp_outcome : outcome Fmt.t
