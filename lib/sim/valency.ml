(* Valency analysis (§3, proof technique of Theorems 2, 6, 11, 22).

   The valency of a protocol state is the set of decision values reachable
   from it.  A state is bivalent if more than one value is reachable,
   univalent otherwise; a *critical* state is a bivalent state all of
   whose successors are univalent — the paper's proofs all hinge on
   maneuvering a protocol into such a state and deriving a contradiction
   from what the pending operations can observe.

   This module computes valencies by memoized DP over the joint state
   graph (protocols must be wait-free, hence the graph acyclic) and finds
   critical states, so the objects' behaviour at the heart of each proof
   can be inspected and tested concretely. *)

open Wfs_spec

module Vset = Set.Make (Value)

type valency = Vset.t

let is_bivalent v = Vset.cardinal v > 1
let is_univalent v = Vset.cardinal v = 1

type critical = {
  state : Explorer.node;
  branches : (int * Explorer.node * valency) list;
      (** per undecided process: the successor and its (univalent)
          valency *)
}

(* Decision values appearing in a terminal state. *)
let terminal_values node =
  Array.fold_left
    (fun acc d -> match d with Some v -> Vset.add v acc | None -> acc)
    Vset.empty node.Explorer.decided

module M = struct
  open Wfs_obs.Metrics

  let memo_hits = Counter.make "valency.memo_hits"
  let memo_misses = Counter.make "valency.memo_misses"
  let critical_searches = Counter.make "valency.critical_searches"
  let critical_found = Counter.make "valency.critical_found"
end

let analyze ?crashes (config : Explorer.config) =
  (* full-depth-hash table: joint-state keys collide pathologically
     under the generic hash (see [Value.hash_full]) *)
  let memo : valency Value.Tbl.t = Value.Tbl.create 4096 in
  let rec valency node =
    let k = Explorer.key node in
    match Value.Tbl.find_opt memo k with
    | Some v ->
        Wfs_obs.Metrics.Counter.incr M.memo_hits;
        v
    | None ->
        Wfs_obs.Metrics.Counter.incr M.memo_misses;
        let v =
          if Explorer.is_terminal node then terminal_values node
          else
            List.fold_left
              (fun acc (_, succ) -> Vset.union acc (valency succ))
              Vset.empty
              (Explorer.successors ?crashes config node)
        in
        Value.Tbl.replace memo k v;
        v
  in
  let root = Explorer.initial config in
  let root_valency = valency root in
  (root_valency, valency)

(* Search for a critical state: DFS from the root through bivalent states
   until one is found all of whose successors are univalent.  Returns the
   first found, if any.  (For a correct wait-free consensus protocol one
   always exists: the root is bivalent and every terminal univalent.) *)
let find_critical ?crashes (config : Explorer.config) =
  Wfs_obs.Metrics.Counter.incr M.critical_searches;
  let _, valency = analyze ?crashes config in
  let seen : unit Value.Tbl.t = Value.Tbl.create 4096 in
  let exception Found of critical in
  let rec dfs node =
    let k = Explorer.key node in
    if not (Value.Tbl.mem seen k) then begin
      Value.Tbl.replace seen k ();
      if is_bivalent (valency node) && not (Explorer.is_terminal node) then begin
        let succs = Explorer.successors ?crashes config node in
        let branches =
          List.map (fun (pid, succ) -> (pid, succ, valency succ)) succs
        in
        if List.for_all (fun (_, _, v) -> is_univalent v) branches then
          raise (Found { state = node; branches })
        else
          List.iter
            (fun (_, succ, v) -> if is_bivalent v then dfs succ)
            branches
      end
    end
  in
  match dfs (Explorer.initial config) with
  | () -> None
  | exception Found c ->
      Wfs_obs.Metrics.Counter.incr M.critical_found;
      Some c

let pp_valency ppf v =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Value.pp) (Vset.elements v)
