(* Processes as pure state machines.

   A process is a deterministic function from its local state to its next
   action: either invoke an operation on a named shared object (supplying
   a continuation from the response to the new local state) or decide and
   halt.  Because local states are [Value.t] and the program is pure, a
   joint protocol state is a hashable value and the exhaustive explorer
   can memoize over it — the executable counterpart of the paper's
   I/O-automaton processes.

   The continuation inside [Invoke] must be a pure function of the local
   state it was created from; the explorer re-derives it by re-running
   [program] on the stored local state, so closures never enter the state
   key. *)

open Wfs_spec

type action =
  | Invoke of { obj : string; op : Op.t; next : Value.t -> Value.t }
  | Decide of Value.t

type t = { pid : int; init : Value.t; program : Value.t -> action }

let make ~pid ~init program = { pid; init; program }

let action t local = t.program local

(* Common small-step idiom: a numbered program counter paired with
   auxiliary data.  Helpers for writing protocol processes compactly. *)

let at ?(data = Value.unit) pc = Value.pair (Value.int pc) data
let pc local = Value.as_int (fst (Value.as_pair local))
let data local = snd (Value.as_pair local)

let invoke ~obj op next = Invoke { obj; op; next }
let decide v = Decide v

let pp_action ppf = function
  | Invoke { obj; op; _ } -> Fmt.pf ppf "invoke %s.%a" obj Op.pp op
  | Decide v -> Fmt.pf ppf "decide %a" Value.pp v
