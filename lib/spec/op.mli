(** Operation encoding.

    An operation invocation is a {!Value.t} of the shape
    [Pair (Str name, argument)].  All object specifications in the zoo
    accept and pattern-match this shape. *)

type t = Value.t

(** [make name arg] builds the invocation [name(arg)]. *)
val make : string -> Value.t -> t

(** [nullary name] is [make name Value.unit]. *)
val nullary : string -> t

(** [name op] extracts the operation name; raises on malformed values. *)
val name : t -> string

(** [arg op] extracts the operation argument. *)
val arg : t -> Value.t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val show : t -> string
