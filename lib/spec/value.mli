(** Universal value domain for the simulated world.

    Every object state, operation argument and result in the simulation
    layer ([wfs_sim], [wfs_consensus], [wfs_hierarchy], [wfs_universal])
    is a {!t}.  One closed, comparable, hashable universe lets the generic
    tooling — the exhaustive interleaving explorer, the bounded-protocol
    solver and the linearizability checker — treat protocol and object
    state uniformly. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int

(** OCaml's generic hash: cheap, but samples only a bounded prefix of
    the structure — unsuitable for large joint-state keys. *)
val hash : t -> int

(** Full-depth structural hash (FNV-1a over the whole value): agrees
    with {!equal} and distinguishes values that differ arbitrarily deep.
    Use for hash tables keyed by large encoded states. *)
val hash_full : t -> int

(** Hash table keyed by {!t} using {!hash_full} and {!equal}. *)
module Tbl : Hashtbl.S with type key = t

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

(** {1 Conventional encodings} *)

(** [bottom] is the distinguished "unwritten" value, the paper's ⊥. *)
val bottom : t

val is_bottom : t -> bool

(** Options are encoded as empty/singleton lists. *)

val none : t
val some : t -> t
val to_option : t -> t option
val of_option : t option -> t

(** Process identifiers, as used for consensus-as-election decisions. *)

val pid : int -> t
val as_pid : t -> int

(** {1 Destructors} — raise [Invalid_argument] on tag mismatch. *)

val truth : t -> bool
val as_int : t -> int
val as_str : t -> string
val as_pair : t -> t * t
val as_list : t -> t list

(** {1 Printing} *)

val pp : t Fmt.t
val show : t -> string
