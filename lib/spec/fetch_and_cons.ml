(* The fetch-and-cons list object (§4.1).

   A list whose only destructive operation, fetch-and-cons, atomically
   (1) places an item at the head and (2) returns the list of items that
   followed the new item — i.e. the previous contents.  The universal
   construction threads an operation log through exactly this object.

   Non-destructive list operations (car, cdr, null) are provided for
   completeness, as the paper mentions "the usual operations". *)

let fetch_and_cons x = Op.make "fetch-and-cons" x
let car = Op.nullary "car"
let cdr = Op.nullary "cdr"
let null = Op.nullary "null"

let empty_result = Value.str "empty"

let list_object ?(name = "fetch-and-cons") ?(initial = []) ~items () =
  let apply state op =
    let contents = Value.as_list state in
    match Op.name op with
    | "fetch-and-cons" ->
        (Value.list (Op.arg op :: contents), Value.list contents)
    | "car" -> (
        match contents with
        | [] -> (state, empty_result)
        | x :: _ -> (state, x))
    | "cdr" -> (
        match contents with
        | [] -> (state, empty_result)
        | _ :: rest -> (state, Value.list rest))
    | "null" -> (state, Value.bool (contents = []))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu = car :: null :: List.map fetch_and_cons items in
  Object_spec.make ~name ~init:(Value.list initial) ~apply ~menu
