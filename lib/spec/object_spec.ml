(* Sequential object specifications.

   An object is specified exactly as in §2.2 of the paper: a set of states,
   a distinguished initial state, and total deterministic operations given
   by pre/postconditions — here, by a pure [apply] function from state and
   invocation to new state and result.  Linearizable concurrent objects in
   the simulator are obtained by applying [apply] atomically. *)

exception Unknown_operation of { obj : string; op : Value.t }

type t = {
  name : string;
  init : Value.t;
  apply : Value.t -> Op.t -> Value.t * Value.t;
  menu : Op.t list;
  owner : Op.t -> int option;
}

let make ~name ~init ~apply ~menu =
  { name; init; apply; menu; owner = (fun _ -> None) }

(* Attach per-process ownership to some operations. *)
let with_owner owner t = { t with owner }

(* Menu restricted to what process [pid] may invoke: unowned operations
   plus those owned by [pid] (e.g. a channel endpoint's receive). *)
let menu_for t pid =
  List.filter
    (fun op -> match t.owner op with None -> true | Some p -> p = pid)
    t.menu

let unknown t op = raise (Unknown_operation { obj = t.name; op })

let apply t state op = t.apply state op

(* [eval t ops] is the paper's [eval : OP* -> STATE]: the state reached by
   replaying [ops] from the initial state (§4.1). *)
let eval t ops =
  List.fold_left (fun state op -> fst (t.apply state op)) t.init ops

(* [result t state op] is the paper's [apply : OP x STATE -> RES]. *)
let result t state op = snd (t.apply state op)

(* Check that every menu operation is defined (total) in a given state. *)
let total_in t state =
  List.for_all
    (fun op ->
      match t.apply state op with
      | _ -> true
      | exception Unknown_operation _ -> false)
    t.menu

(* A deterministic bound on the states reachable through menu operations,
   used by tests and by the bounded solver to size its search space.
   Explores breadth-first up to [limit] distinct states. *)
let reachable_states ?(limit = 10_000) t =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen t.init ();
  Queue.add t.init queue;
  let rec loop acc =
    if Queue.is_empty queue || Hashtbl.length seen > limit then List.rev acc
    else begin
      let state = Queue.pop queue in
      List.iter
        (fun op ->
          match t.apply state op with
          | state', _ ->
              if not (Hashtbl.mem seen state') then begin
                Hashtbl.replace seen state' ();
                Queue.add state' queue
              end
          | exception Unknown_operation _ -> ())
        t.menu;
      loop (state :: acc)
    end
  in
  loop []

let pp ppf t =
  Fmt.pf ppf "@[<v 2>object %s:@ init = %a@ menu = %a@]" t.name Value.pp
    t.init
    Fmt.(list ~sep:(any ", ") Op.pp)
    t.menu
