(* Operations are encoded as [Pair (Str name, argument)].  The helpers here
   keep that convention in one place. *)

type t = Value.t

let make name arg : t = Value.Pair (Value.Str name, arg)
let nullary name : t = make name Value.Unit
let name (op : t) = Value.as_str (fst (Value.as_pair op))
let arg (op : t) = snd (Value.as_pair op)

let equal = Value.equal
let compare = Value.compare

let pp ppf (op : t) =
  match op with
  | Value.Pair (Value.Str n, Value.Unit) -> Fmt.string ppf n
  | Value.Pair (Value.Str n, a) -> Fmt.pf ppf "%s(%a)" n Value.pp a
  | v -> Value.pp ppf v

let show op = Fmt.str "%a" pp op
