(* Message channels (§3.1 discussion of Dolev–Dwork–Stockmeyer and §3.3's
   message-passing architectures).

   Two deterministic channel objects:

   - [fifo_point_to_point]: per-(sender, receiver) FIFO delivery; receive
     is total and returns "none" when no message is waiting.  Cannot solve
     2-process consensus (DDS; reproduced by the bounded solver).

   - [ordered_broadcast]: a single global totally-ordered log; every
     process reads the log in the same order via a private cursor.  This
     DOES solve n-process consensus (the paper quotes the DDS result that
     broadcast with ordered delivery solves consensus): everyone
     broadcasts its input and decides on the first message in the log. *)

let send ~target msg = Op.make "send" (Value.pair (Value.int target) msg)
let recv ~me = Op.make "recv" (Value.int me)
let broadcast msg = Op.make "broadcast" msg
let next ~me = Op.make "next" (Value.int me)

let no_message = Value.none

(* State: per-receiver FIFO queues, as a list indexed by receiver id. *)
let fifo_point_to_point ?(name = "fifo-channel") ~processes ~messages () =
  let init = Value.list (List.init processes (fun _ -> Value.list [])) in
  let apply state op =
    let queues = Value.as_list state in
    let check p =
      if p < 0 || p >= processes then
        raise (Object_spec.Unknown_operation { obj = name; op })
    in
    match Op.name op with
    | "send" ->
        let target, msg = Value.as_pair (Op.arg op) in
        let target = Value.as_int target in
        check target;
        let queues' =
          List.mapi
            (fun i q ->
              if i = target then Value.list (Value.as_list q @ [ msg ]) else q)
            queues
        in
        (Value.list queues', Value.unit)
    | "recv" ->
        let me = Value.as_int (Op.arg op) in
        check me;
        let inbox = Value.as_list (List.nth queues me) in
        (match inbox with
        | [] -> (state, no_message)
        | msg :: rest ->
            let queues' =
              List.mapi
                (fun i q -> if i = me then Value.list rest else q)
                queues
            in
            (Value.list queues', Value.some msg))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let targets = List.init processes Fun.id in
  let menu =
    List.map (fun p -> recv ~me:p) targets
    @ List.concat_map
        (fun target -> List.map (fun m -> send ~target m) messages)
        targets
  in
  (* a receive endpoint belongs to its process: "a message, unlike a
     queue item, is addressed to a particular process" *)
  let owner op =
    match Op.name op with
    | "recv" -> Some (Value.as_int (Op.arg op))
    | _ -> None
  in
  Object_spec.with_owner owner (Object_spec.make ~name ~init ~apply ~menu)

(* State: Pair (log, cursors) where [log] is the global totally-ordered
   message sequence and [cursors] records how far each process has read. *)
let ordered_broadcast ?(name = "ordered-broadcast") ~processes ~messages () =
  let init =
    Value.pair (Value.list [])
      (Value.list (List.init processes (fun _ -> Value.int 0)))
  in
  let apply state op =
    let log, cursors = Value.as_pair state in
    let entries = Value.as_list log in
    match Op.name op with
    | "broadcast" ->
        ( Value.pair (Value.list (entries @ [ Op.arg op ])) cursors,
          Value.unit )
    | "next" ->
        let me = Value.as_int (Op.arg op) in
        if me < 0 || me >= processes then
          raise (Object_spec.Unknown_operation { obj = name; op });
        let positions = Value.as_list cursors in
        let pos = Value.as_int (List.nth positions me) in
        if pos >= List.length entries then (state, no_message)
        else
          let msg = List.nth entries pos in
          let positions' =
            List.mapi
              (fun i c -> if i = me then Value.int (pos + 1) else c)
              positions
          in
          (Value.pair log (Value.list positions'), Value.some msg)
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu =
    List.init processes (fun p -> next ~me:p)
    @ List.map broadcast messages
  in
  let owner op =
    match Op.name op with
    | "next" -> Some (Value.as_int (Op.arg op))
    | _ -> None
  in
  Object_spec.with_owner owner (Object_spec.make ~name ~init ~apply ~menu)
