(* The abstract consensus object of §4.2.

   A single-shot agreement object: the first [decide v] "sticks" and every
   decide — including the first — returns the stuck value.  The paper's
   universal construction (Figure 4-5) consumes an unbounded array
   [consensus[k]] of these; [array ~rounds] models a finite prefix of it. *)

let decide v = Op.make "decide" v

let single ?(name = "consensus-object") ~values () =
  let apply state op =
    match Op.name op with
    | "decide" -> (
        match Value.to_option state with
        | Some winner -> (state, winner)
        | None ->
            let v = Op.arg op in
            (Value.some v, v))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu = List.map decide values in
  Object_spec.make ~name ~init:Value.none ~apply ~menu

(* [decide_round k v]: join round [k] with input [v]. *)
let decide_round k v = Op.make "decide" (Value.pair (Value.int k) v)

(* An array of single-shot consensus objects indexed 0..rounds-1, as one
   composite object; state is the list of per-round outcomes. *)
let array ?(name = "consensus-array") ~rounds ~values () =
  let init = Value.list (List.init rounds (fun _ -> Value.none)) in
  let apply state op =
    match Op.name op with
    | "decide" ->
        let kv, v = Value.as_pair (Op.arg op) in
        let k = Value.as_int kv in
        if k < 0 || k >= rounds then
          raise (Object_spec.Unknown_operation { obj = name; op });
        let cells = Value.as_list state in
        let cell = List.nth cells k in
        (match Value.to_option cell with
        | Some winner -> (state, winner)
        | None ->
            let cells' =
              List.mapi (fun i c -> if i = k then Value.some v else c) cells
            in
            (Value.list cells', v))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu =
    List.concat_map
      (fun k -> List.map (fun v -> decide_round k v) values)
      (List.init rounds Fun.id)
  in
  Object_spec.make ~name ~init ~apply ~menu
