(* A single universal value domain shared by the whole simulation layer.

   Every object state, operation argument and operation result in the
   simulated world is a [Value.t].  Using one closed universe keeps the
   generic tooling (exhaustive explorer, solver, linearizability checker)
   monomorphic and hashable; the typed multicore runtime in [wfs_runtime]
   does not use it. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
[@@deriving eq, ord]

let unit = Unit
let bool b = Bool b
let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)
let list vs = List vs

(* Conventional encodings used across the library. *)

let bottom = Str "_|_"
let is_bottom v = equal v bottom

let none = List []
let some v = List [ v ]

let to_option = function
  | List [] -> None
  | List [ v ] -> Some v
  | v -> invalid_arg (Fmt.str "Value.to_option: %d" (Hashtbl.hash v))

let of_option = function None -> none | Some v -> some v

let truth = function
  | Bool b -> b
  | v -> invalid_arg (Fmt.str "Value.truth: not a bool (tag %d)" (Hashtbl.hash v))

let as_int = function
  | Int i -> i
  | _ -> invalid_arg "Value.as_int: not an int"

let as_str = function
  | Str s -> s
  | _ -> invalid_arg "Value.as_str: not a string"

let as_pair = function
  | Pair (a, b) -> (a, b)
  | _ -> invalid_arg "Value.as_pair: not a pair"

let as_list = function
  | List vs -> vs
  | _ -> invalid_arg "Value.as_list: not a list"

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs

let show v = Fmt.str "%a" pp v

let hash (v : t) = Hashtbl.hash v

(* Full-depth structural hash.

   [Hashtbl.hash] samples a bounded prefix of the structure (at most 10
   meaningful nodes by default), so the large joint-state keys built by
   the explorer — n process locals, n decisions, the whole environment
   vector — collide pathologically: states differing only deep in the
   encoding all land in one bucket and every probe degenerates into a
   deep structural comparison.  [hash_full] folds over the entire value
   (FNV-1a over constructor tags and payloads), making hash-table
   lookups on joint states O(size of key) with near-perfect bucket
   spread. *)

let[@inline] fnv_mix h x = ((h lxor x) * 0x01000193) land max_int

let rec hash_fold h = function
  | Unit -> fnv_mix h 1
  | Bool false -> fnv_mix h 2
  | Bool true -> fnv_mix h 3
  | Int i -> fnv_mix (fnv_mix h 4) i
  | Str s ->
      let h = ref (fnv_mix (fnv_mix h 5) (String.length s)) in
      String.iter (fun c -> h := fnv_mix !h (Char.code c)) s;
      !h
  | Pair (a, b) -> hash_fold (hash_fold (fnv_mix h 6) a) b
  | List vs -> List.fold_left hash_fold (fnv_mix h 7) vs

let hash_full v = hash_fold 0x811c9dc5 v

(* Hash table keyed by values with the full-depth hash: equal values
   collide only with genuinely equal values, never by prefix-sampling. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash_full
end)

(* Process identifiers are plain ints in the simulated world; a decision
   value in a consensus protocol is the identifier of the elected process,
   matching the paper's "consensus as election" convention. *)

let pid (p : int) = Int p
let as_pid = as_int
