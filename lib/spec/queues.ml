(* Queue-like objects (§3.3, §3.4): FIFO queue, augmented queue (peek),
   stack, priority queue.  All operations are total: removing from an
   empty container returns the distinguished [empty] error value rather
   than blocking, exactly as the paper requires for total deq. *)

let empty_result = Value.str "empty"

(* Invocation builders shared by the containers. *)
let enq x = Op.make "enq" x
let deq = Op.nullary "deq"
let peek = Op.nullary "peek"
let push x = Op.make "push" x
let pop = Op.nullary "pop"
let insert x = Op.make "insert" x
let extract_min = Op.nullary "extract-min"
let min_op = Op.nullary "min"

(* FIFO queue.  State: List of items, head of the queue first.  [initial]
   pre-loads the queue (the 2-process consensus protocol of Theorem 9
   starts from the queue [first; second]). *)
let fifo ?(name = "fifo-queue") ?(initial = []) ~items () =
  let apply state op =
    let contents = Value.as_list state in
    match Op.name op with
    | "enq" -> (Value.list (contents @ [ Op.arg op ]), Value.unit)
    | "deq" -> (
        match contents with
        | [] -> (state, empty_result)
        | x :: rest -> (Value.list rest, x))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu = deq :: List.map enq items in
  Object_spec.make ~name ~init:(Value.list initial) ~apply ~menu

(* Augmented queue (§3.4): FIFO queue plus [peek], which returns but does
   not remove the head.  Universal (Theorem 12). *)
let augmented ?(name = "augmented-queue") ?(initial = []) ~items () =
  let base = fifo ~name ~initial ~items () in
  let apply state op =
    match Op.name op with
    | "peek" -> (
        match Value.as_list state with
        | [] -> (state, empty_result)
        | x :: _ -> (state, x))
    | _ -> base.Object_spec.apply state op
  in
  Object_spec.make ~name ~init:base.Object_spec.init ~apply
    ~menu:(peek :: base.Object_spec.menu)

(* LIFO stack.  State: List of items, top first. *)
let stack ?(name = "stack") ?(initial = []) ~items () =
  let apply state op =
    let contents = Value.as_list state in
    match Op.name op with
    | "push" -> (Value.list (Op.arg op :: contents), Value.unit)
    | "pop" -> (
        match contents with
        | [] -> (state, empty_result)
        | x :: rest -> (Value.list rest, x))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu = pop :: List.map push items in
  Object_spec.make ~name ~init:(Value.list initial) ~apply ~menu

(* Priority queue over integer keys.  State: sorted List (ascending), so
   equal states are structurally equal regardless of insertion order;
   [extract-min] removes and returns the least element. *)
let priority_queue ?(name = "priority-queue") ?(initial = []) ~keys () =
  let sort vs = List.sort Value.compare vs in
  let apply state op =
    let contents = Value.as_list state in
    match Op.name op with
    | "insert" -> (Value.list (sort (Op.arg op :: contents)), Value.unit)
    | "extract-min" -> (
        match contents with
        | [] -> (state, empty_result)
        | x :: rest -> (Value.list rest, x))
    | "min" -> (
        match contents with
        | [] -> (state, empty_result)
        | x :: _ -> (state, x))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu = extract_min :: List.map (fun k -> insert (Value.int k)) keys in
  Object_spec.make ~name ~init:(Value.list (sort initial)) ~apply ~menu
