(* Memory-to-memory operations (§3.5) and atomic multi-register assignment
   (§3.6).

   The paper treats these as operations over a *collection* of registers;
   we model the collection as a single composite object whose state is the
   vector of register contents.  This is faithful: the operations are
   atomic across the collection, and modelling them on one composite
   object is exactly what "memory-to-memory" means. *)

let read i = Op.make "read" (Value.int i)
let write i v = Op.make "write" (Value.pair (Value.int i) v)

(* move(src, dst): atomically copy the contents of register [src] into
   register [dst] (Theorem 15's protocol relies on exactly this
   direction: Decide_2 does move(r2, r1) then reads r1). *)
let move ~src ~dst = Op.make "move" (Value.pair (Value.int src) (Value.int dst))

(* swap(i, j): atomically exchange the contents of two registers
   (Theorem 16; distinct from the read-modify-write swap, which exchanges
   a register with a private value — see the paper's footnote 3). *)
let swap i j = Op.make "swap" (Value.pair (Value.int i) (Value.int j))

(* assign [(i1,v1); ...]: atomic multi-register assignment (§3.6). *)
let assign bindings =
  Op.make "assign"
    (Value.list
       (List.map (fun (i, v) -> Value.pair (Value.int i) v) bindings))

let get vec i = List.nth vec i

let set vec i v = List.mapi (fun j x -> if j = i then v else x) vec

(* [memory ~size ~init values] builds a register file of [size] registers.
   [init] gives per-register initial contents (padded with ⊥); [values]
   is the write domain used for the menu.  [ops] selects which operation
   families are exposed, so "registers + move" and "registers + swap" are
   distinct object types in the hierarchy. *)
type family = Read | Write | Move | Swap | Assign

let memory ?(name = "memory") ?(ops = [ Read; Write; Move; Swap; Assign ])
    ~size ~init values =
  let initial =
    List.init size (fun i ->
        match List.nth_opt init i with Some v -> v | None -> Value.bottom)
  in
  let has fam = List.mem fam ops in
  let apply state op =
    let vec = Value.as_list state in
    let check i =
      if i < 0 || i >= size then
        raise (Object_spec.Unknown_operation { obj = name; op })
    in
    match Op.name op with
    | "read" when has Read ->
        let i = Value.as_int (Op.arg op) in
        check i;
        (state, get vec i)
    | "write" when has Write ->
        let iv, v = Value.as_pair (Op.arg op) in
        let i = Value.as_int iv in
        check i;
        (Value.list (set vec i v), Value.unit)
    | "move" when has Move ->
        let src, dst = Value.as_pair (Op.arg op) in
        let src = Value.as_int src and dst = Value.as_int dst in
        check src;
        check dst;
        (Value.list (set vec dst (get vec src)), Value.unit)
    | "swap" when has Swap ->
        let i, j = Value.as_pair (Op.arg op) in
        let i = Value.as_int i and j = Value.as_int j in
        check i;
        check j;
        let a = get vec i and b = get vec j in
        (Value.list (set (set vec i b) j a), Value.unit)
    | "assign" when has Assign ->
        let bindings = Value.as_list (Op.arg op) in
        let vec' =
          List.fold_left
            (fun acc binding ->
              let iv, v = Value.as_pair binding in
              let i = Value.as_int iv in
              check i;
              set acc i v)
            vec bindings
        in
        (Value.list vec', Value.unit)
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let indices = List.init size Fun.id in
  let menu_for = function
    | Read -> List.map read indices
    | Write ->
        List.concat_map
          (fun i -> List.map (fun v -> write i v) values)
          indices
    | Move ->
        List.concat_map
          (fun src ->
            List.filter_map
              (fun dst -> if src = dst then None else Some (move ~src ~dst))
              indices)
          indices
    | Swap ->
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j -> if i < j then Some (swap i j) else None)
              indices)
          indices
    | Assign ->
        (* Menu: single- and pairwise assignments of each value; full
           n-way assignments are built by protocols directly. *)
        List.concat_map
          (fun v ->
            List.map (fun i -> assign [ (i, v) ]) indices
            @ List.concat_map
                (fun i ->
                  List.filter_map
                    (fun j ->
                      if i < j then Some (assign [ (i, v); (j, v) ]) else None)
                    indices)
                indices)
          values
  in
  let menu = List.concat_map menu_for ops in
  Object_spec.make ~name ~init:(Value.list initial) ~apply ~menu

let with_move ?(name = "memory+move") ~size ~init values =
  memory ~name ~ops:[ Read; Write; Move ] ~size ~init values

let with_swap ?(name = "memory+swap") ~size ~init values =
  memory ~name ~ops:[ Read; Write; Swap ] ~size ~init values

(* [n_assignment ~registers ~arity] — read/write registers plus atomic
   assignment to up to [arity] registers at once (§3.6: n-register
   assignment solves n-process, indeed (2n-2)-process, consensus). *)
let n_assignment ?(name = "n-assignment") ~size ~init values =
  memory ~name ~ops:[ Read; Write; Assign ] ~size ~init values
