(** Set and counter objects.

    The set's state is kept sorted so equal abstract sets have equal
    representations; its argumentless [remove] is made deterministic by
    removing the least element (the paper's own recipe for implementing a
    non-deterministic operation with a deterministic choice, §4.1). *)

val empty_result : Value.t

(** {1 Invocation builders} *)

val insert : Value.t -> Op.t

(** Remove the least element (deterministic non-specific remove). *)
val remove : Op.t

(** Remove a specific element; result says whether it was present. *)
val remove_elt : Value.t -> Op.t

val member : Value.t -> Op.t
val size : Op.t
val incr : Op.t
val decr : Op.t
val read : Op.t

(** {1 Objects} *)

val set :
  ?name:string -> ?initial:Value.t list -> elements:Value.t list -> unit ->
  Object_spec.t

(** Shared counter whose [incr]/[decr] return the new value. *)
val counter : ?name:string -> ?init:int -> unit -> Object_spec.t

val put : Value.t -> Value.t -> Op.t
val get : Value.t -> Op.t
val del : Value.t -> Op.t

(** Key→value map whose state is a key-sorted association list; [put]
    and [del] return the displaced value (⊥ for an absent key).  The
    third default object of the universal object service. *)
val kv_map :
  ?name:string ->
  ?initial:(Value.t * Value.t) list ->
  ?keys:Value.t list ->
  ?values:Value.t list ->
  unit ->
  Object_spec.t
