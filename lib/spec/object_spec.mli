(** Sequential object specifications (§2.2 of the paper).

    An object type is a set of states plus total, deterministic operations.
    The simulator obtains a linearizable concurrent object from such a
    specification by applying operations atomically; the universal
    construction replays them through {!eval}/{!result}. *)

exception Unknown_operation of { obj : string; op : Value.t }

type t = {
  name : string;  (** human-readable type name, e.g. ["fifo-queue"] *)
  init : Value.t;  (** initial state *)
  apply : Value.t -> Op.t -> Value.t * Value.t;
      (** [apply state op] is [(state', result)].  Must be total on the
          reachable states for every menu operation, and deterministic.
          Raises {!Unknown_operation} on invocations outside the type. *)
  menu : Op.t list;
      (** a finite menu of concrete invocations used by the exhaustive
          tools (bounded solver, reachability); protocols may apply
          operations outside the menu as long as [apply] accepts them. *)
  owner : Op.t -> int option;
      (** per-process operations: [Some p] restricts the invocation to
          process [p] (e.g. a channel endpoint's receive; §3.3 notes a
          message, unlike a queue item, is addressed to one process).
          [None] (the default) means any process may invoke it. *)
}

(** Build an object with no per-process ownership. *)
val make :
  name:string ->
  init:Value.t ->
  apply:(Value.t -> Op.t -> Value.t * Value.t) ->
  menu:Op.t list ->
  t

(** Attach per-process ownership to some operations. *)
val with_owner : (Op.t -> int option) -> t -> t

(** The menu restricted to what process [pid] may invoke. *)
val menu_for : t -> int -> Op.t list

(** [unknown t op] raises {!Unknown_operation} for object [t]. *)
val unknown : t -> Op.t -> 'a

val apply : t -> Value.t -> Op.t -> Value.t * Value.t

(** [eval t ops] is the paper's [eval : OP* → STATE]: the state reached by
    replaying [ops] left-to-right from [t.init] (§4.1). *)
val eval : t -> Op.t list -> Value.t

(** [result t state op] is the paper's [apply : OP × STATE → RES]. *)
val result : t -> Value.t -> Op.t -> Value.t

(** [total_in t state] checks every menu operation is defined in [state]. *)
val total_in : t -> Value.t -> bool

(** [reachable_states t] enumerates states reachable from [t.init] through
    menu operations, breadth-first, stopping after [limit] distinct states
    (default 10000). *)
val reachable_states : ?limit:int -> t -> Value.t list

val pp : t Fmt.t
