(** Message channels (§3.1, §3.3).

    Deterministic models of the two ends of the Dolev–Dwork–Stockmeyer
    spectrum discussed in the paper:

    - point-to-point FIFO channels, which cannot solve 2-process
      consensus;
    - broadcast with totally-ordered delivery, which solves n-process
      consensus.

    Receives are total: they return {!no_message} instead of blocking. *)

(** Result of a receive with nothing to deliver. *)
val no_message : Value.t

(** {1 Invocation builders} *)

val send : target:int -> Value.t -> Op.t
val recv : me:int -> Op.t
val broadcast : Value.t -> Op.t

(** [next ~me] reads the next log entry not yet seen by process [me]. *)
val next : me:int -> Op.t

(** {1 Objects} *)

(** Per-(sender, receiver) FIFO delivery; a message is addressed to one
    receiver, unlike a queue item (the distinction the paper draws after
    Theorem 11). *)
val fifo_point_to_point :
  ?name:string -> processes:int -> messages:Value.t list -> unit ->
  Object_spec.t

(** Single global totally-ordered broadcast log with per-process read
    cursors. *)
val ordered_broadcast :
  ?name:string -> processes:int -> messages:Value.t list -> unit ->
  Object_spec.t
