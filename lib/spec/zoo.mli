(** Canonical small instances of every object type in Figure 1-1, with the
    value domains the hierarchy tools explore. *)

(** [pids n] is the list of process-id values [0 .. n-1]. *)
val pids : int -> Value.t list

(** The default small value domain: ⊥ and three process ids. *)
val small_values : Value.t list

(** Small integer domain, for objects whose operations need arithmetic. *)
val int_values : Value.t list

val register : unit -> Object_spec.t
val test_and_set : unit -> Object_spec.t
val swap_register : unit -> Object_spec.t
val fetch_and_add : unit -> Object_spec.t
val compare_and_swap : unit -> Object_spec.t

(** All of read/write/test-and-set/swap/fetch-and-add on one register
    (Corollary 8's "classical" combination). *)
val classical : unit -> Object_spec.t

val queue : unit -> Object_spec.t
val augmented_queue : unit -> Object_spec.t
val stack : unit -> Object_spec.t
val priority_queue : unit -> Object_spec.t
val set : unit -> Object_spec.t
val counter : unit -> Object_spec.t
val memory_move : unit -> Object_spec.t
val memory_swap : unit -> Object_spec.t
val n_assignment : unit -> Object_spec.t
val fifo_channel : unit -> Object_spec.t
val ordered_broadcast : unit -> Object_spec.t
val fetch_and_cons : unit -> Object_spec.t
val consensus : unit -> Object_spec.t

(** Every zoo inhabitant, in roughly the order of Figure 1-1. *)
val all : unit -> Object_spec.t list

(** Look an object up by its [name]; raises [Invalid_argument] if
    unknown. *)
val find : string -> Object_spec.t
