(* Register objects: plain atomic read/write registers and registers
   augmented with read-modify-write operations (§3.1, §3.2).

   A read-modify-write operation RMW(r, f) atomically replaces the
   register's contents by [f] of the old contents and returns the old
   contents.  The classical primitives — test-and-set, swap,
   compare-and-swap, fetch-and-add — are all instances.

   A plain write is the one exception: it must NOT return the old
   contents.  A write that reported the previous value would be an atomic
   swap, which solves 2-process consensus — it would silently break the
   Theorem 2 impossibility that the solver and tests reproduce. *)

(* A named read-modify-write operation family: [f ~arg state] gives the new
   register contents.  [returns_old] says whether the caller observes the
   old contents (true for genuine RMWs and reads) or nothing (writes).
   [args] lists the concrete arguments included in the menu. *)
type rmw_op = {
  rmw_name : string;
  args : Value.t list;
  f : arg:Value.t -> Value.t -> Value.t;
  returns_old : bool;
}

let read_op =
  { rmw_name = "read"; args = [ Value.unit ]; f = (fun ~arg:_ s -> s);
    returns_old = true }

let write_ops values =
  { rmw_name = "write"; args = values; f = (fun ~arg _ -> arg);
    returns_old = false }

let test_and_set_op =
  { rmw_name = "test-and-set"; args = [ Value.unit ];
    f = (fun ~arg:_ _ -> Value.int 1); returns_old = true }

let swap_op values =
  { rmw_name = "swap"; args = values; f = (fun ~arg _ -> arg);
    returns_old = true }

let fetch_and_add_op increments =
  {
    rmw_name = "fetch-and-add";
    args = List.map Value.int increments;
    f = (fun ~arg s -> Value.int (Value.as_int s + Value.as_int arg));
    returns_old = true;
  }

(* compare-and-swap(v, v'): if the current contents equal v they are
   replaced by v'; the old contents are returned either way (§3.2). *)
let compare_and_swap_op values =
  let args =
    List.concat_map (fun v -> List.map (fun v' -> Value.pair v v') values) values
  in
  {
    rmw_name = "compare-and-swap";
    args;
    f =
      (fun ~arg s ->
        let expected, replacement = Value.as_pair arg in
        if Value.equal s expected then replacement else s);
    returns_old = true;
  }

(* Build a register object supporting the given RMW families.  The menu is
   the cartesian product of each family with its argument list. *)
let rmw_register ~name ~init ops =
  let apply state op =
    let opname = Op.name op and arg = Op.arg op in
    match List.find_opt (fun r -> String.equal r.rmw_name opname) ops with
    | Some r ->
        let state' = r.f ~arg state in
        let result = if r.returns_old then state else Value.unit in
        (state', result)
    | None -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu =
    List.concat_map (fun r -> List.map (fun a -> Op.make r.rmw_name a) r.args) ops
  in
  Object_spec.make ~name ~init ~apply ~menu

(* Plain atomic read/write register over the given value domain. *)
let atomic ?(name = "atomic-register") ~init values =
  rmw_register ~name ~init [ read_op; write_ops values ]

let test_and_set ?(name = "test-and-set") () =
  rmw_register ~name ~init:(Value.int 0) [ read_op; test_and_set_op ]

let swap_register ?(name = "swap-register") ~init values =
  rmw_register ~name ~init [ read_op; swap_op values ]

let fetch_and_add ?(name = "fetch-and-add") ?(increments = [ 1 ]) ~init () =
  rmw_register ~name ~init:(Value.int init) [ read_op; fetch_and_add_op increments ]

let compare_and_swap ?(name = "compare-and-swap") ~init values =
  rmw_register ~name ~init [ read_op; compare_and_swap_op values ]

(* A register bundling all the "classically weak" primitives of
   Corollary 8: read, write, test-and-set, swap, fetch-and-add. *)
let classical ?(name = "classical-rmw") ~init values =
  rmw_register ~name ~init
    [ read_op; write_ops values; test_and_set_op; swap_op values;
      fetch_and_add_op [ 1 ] ]

(* Convenience builders for the operations themselves. *)
let read = Op.nullary "read"
let write v = Op.make "write" v
let tas = Op.nullary "test-and-set"
let swap v = Op.make "swap" v
let faa k = Op.make "fetch-and-add" (Value.int k)
let cas ~expected ~replacement =
  Op.make "compare-and-swap" (Value.pair expected replacement)
