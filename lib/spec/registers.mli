(** Register objects: atomic read/write registers and read-modify-write
    registers (§3.1–§3.2 of the paper).

    Every register operation here is expressed as a read-modify-write
    family [RMW(r, f)] — atomically replace the contents by [f](old) and
    return the old contents — following Kruskal, Rudolph and Snir.  Plain
    reads and writes are the instances with [f] the identity and a
    constant function respectively.  Keeping everything in RMW form is
    what lets {!Wfs_hierarchy.Interference} run the commute/overwrite
    analysis of Theorem 6 directly on the operation semantics. *)

(** A named RMW family.  [f ~arg state] is the new register contents; the
    caller receives the old contents iff [returns_old] (true for genuine
    RMWs and reads; false for plain writes, which must not observe the
    register — a value-returning write would be a swap and would break
    Theorem 2).  [args] are the concrete arguments to include in
    exhaustive menus. *)
type rmw_op = {
  rmw_name : string;
  args : Value.t list;
  f : arg:Value.t -> Value.t -> Value.t;
  returns_old : bool;
}

val read_op : rmw_op
val write_ops : Value.t list -> rmw_op
val test_and_set_op : rmw_op
val swap_op : Value.t list -> rmw_op
val fetch_and_add_op : int list -> rmw_op
val compare_and_swap_op : Value.t list -> rmw_op

(** [rmw_register ~name ~init ops] builds a register object supporting the
    given RMW families; its menu is each family paired with each of its
    listed arguments. *)
val rmw_register : name:string -> init:Value.t -> rmw_op list -> Object_spec.t

(** Atomic read/write register over the given writable values. *)
val atomic : ?name:string -> init:Value.t -> Value.t list -> Object_spec.t

(** Test-and-set register, initial contents [0]; [test-and-set] sets it to
    [1] and returns the old contents. *)
val test_and_set : ?name:string -> unit -> Object_spec.t

(** Register with an atomic swap (exchange) operation. *)
val swap_register : ?name:string -> init:Value.t -> Value.t list -> Object_spec.t

(** Fetch-and-add register over integers. *)
val fetch_and_add :
  ?name:string -> ?increments:int list -> init:int -> unit -> Object_spec.t

(** Compare-and-swap register: [cas(v, v')] replaces contents equal to [v]
    by [v'] and returns the old contents (Theorem 7). *)
val compare_and_swap : ?name:string -> init:Value.t -> Value.t list -> Object_spec.t

(** A register with all of Corollary 8's weak primitives: read, write,
    test-and-set, swap, fetch-and-add. *)
val classical : ?name:string -> init:Value.t -> Value.t list -> Object_spec.t

(** {1 Invocation builders} *)

val read : Op.t
val write : Value.t -> Op.t
val tas : Op.t
val swap : Value.t -> Op.t
val faa : int -> Op.t
val cas : expected:Value.t -> replacement:Value.t -> Op.t
