(** Queue-like objects (§3.3–§3.4): FIFO queue, augmented queue with
    [peek], LIFO stack, and an integer priority queue.

    All removal operations are total — on an empty container they return
    {!empty_result} instead of blocking, as the paper requires for
    wait-free interpretation of partial operations. *)

(** Error result returned by [deq]/[pop]/[extract-min]/[peek] on an empty
    container. *)
val empty_result : Value.t

(** {1 Invocation builders} *)

val enq : Value.t -> Op.t
val deq : Op.t
val peek : Op.t
val push : Value.t -> Op.t
val pop : Op.t
val insert : Value.t -> Op.t
val extract_min : Op.t
val min_op : Op.t

(** {1 Objects} *)

(** FIFO queue over the given item domain.  [initial] pre-loads the queue
    front-first, as used by the Theorem 9 consensus protocol. *)
val fifo :
  ?name:string -> ?initial:Value.t list -> items:Value.t list -> unit ->
  Object_spec.t

(** FIFO queue augmented with [peek] (returns but does not remove the
    head) — universal for any number of processes (Theorem 12). *)
val augmented :
  ?name:string -> ?initial:Value.t list -> items:Value.t list -> unit ->
  Object_spec.t

(** LIFO stack; [initial] is top-first. *)
val stack :
  ?name:string -> ?initial:Value.t list -> items:Value.t list -> unit ->
  Object_spec.t

(** Priority queue over integer keys with [insert], [extract-min] and a
    non-destructive [min]. *)
val priority_queue :
  ?name:string -> ?initial:Value.t list -> keys:int list -> unit ->
  Object_spec.t
