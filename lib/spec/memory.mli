(** Memory-to-memory operations (§3.5) and atomic multi-register
    assignment (§3.6), modelled as one composite register-file object
    whose state is the vector of register contents.

    Operation families can be selected per object, so "registers + move",
    "registers + memory-to-memory swap" and "registers + n-assignment"
    are distinct object types in the hierarchy of Figure 1-1. *)

type family = Read | Write | Move | Swap | Assign

(** {1 Invocation builders} *)

val read : int -> Op.t
val write : int -> Value.t -> Op.t

(** [move ~src ~dst] atomically copies register [src] into [dst]
    (Theorem 15). *)
val move : src:int -> dst:int -> Op.t

(** [swap i j] atomically exchanges registers [i] and [j] (Theorem 16 —
    distinct from the RMW swap, cf. the paper's footnote 3). *)
val swap : int -> int -> Op.t

(** [assign bindings] atomically writes every [(register, value)] pair
    (§3.6 multi-register assignment). *)
val assign : (int * Value.t) list -> Op.t

(** {1 Objects} *)

(** [memory ~size ~init values] is a register file of [size] registers
    with initial contents [init] (padded with ⊥) and write domain
    [values], exposing the listed operation families. *)
val memory :
  ?name:string -> ?ops:family list -> size:int -> init:Value.t list ->
  Value.t list -> Object_spec.t

val with_move :
  ?name:string -> size:int -> init:Value.t list -> Value.t list ->
  Object_spec.t

val with_swap :
  ?name:string -> size:int -> init:Value.t list -> Value.t list ->
  Object_spec.t

val n_assignment :
  ?name:string -> size:int -> init:Value.t list -> Value.t list ->
  Object_spec.t
