(* The object zoo: one canonical small instance of every object type in
   Figure 1-1, with the value domains the hierarchy tools explore. *)

let pids n = List.init n Value.pid

(* Small canonical domains.  Hierarchy experiments run with 2-3 processes,
   so domains of process ids {0,1,2} plus ⊥ suffice. *)
let small_values = [ Value.bottom; Value.pid 0; Value.pid 1; Value.pid 2 ]

let register () = Registers.atomic ~init:Value.bottom small_values
let test_and_set () = Registers.test_and_set ()
let swap_register () = Registers.swap_register ~init:Value.bottom small_values
let fetch_and_add () = Registers.fetch_and_add ~init:0 ()
let compare_and_swap () = Registers.compare_and_swap ~init:Value.bottom small_values
(* The classical combination includes fetch-and-add, so its domain must
   be integers. *)
let int_values = [ Value.int 0; Value.int 1; Value.int 2 ]
let classical () = Registers.classical ~init:(Value.int 0) int_values

let queue () = Queues.fifo ~items:(pids 3) ()
let augmented_queue () = Queues.augmented ~items:(pids 3) ()
let stack () = Queues.stack ~items:(pids 3) ()
let priority_queue () = Queues.priority_queue ~keys:[ 0; 1; 2 ] ()
let set () = Collections.set ~elements:(pids 3) ()
let counter () = Collections.counter ()

let memory_move () =
  Memory.with_move ~size:2 ~init:[ Value.bottom; Value.bottom ] small_values

let memory_swap () =
  Memory.with_swap ~size:2 ~init:[ Value.bottom; Value.bottom ] small_values

let n_assignment () =
  Memory.n_assignment ~size:3
    ~init:[ Value.bottom; Value.bottom; Value.bottom ]
    small_values

let fifo_channel () =
  Channels.fifo_point_to_point ~processes:2 ~messages:(pids 2) ()

let ordered_broadcast () =
  Channels.ordered_broadcast ~processes:2 ~messages:(pids 2) ()

let fetch_and_cons () = Fetch_and_cons.list_object ~items:(pids 3) ()
let consensus () = Consensus_object.single ~values:(pids 3) ()

(* Every zoo inhabitant, in roughly the order of Figure 1-1. *)
let all () =
  [
    register ();
    test_and_set ();
    swap_register ();
    fetch_and_add ();
    classical ();
    queue ();
    stack ();
    priority_queue ();
    set ();
    counter ();
    fifo_channel ();
    n_assignment ();
    memory_move ();
    memory_swap ();
    augmented_queue ();
    compare_and_swap ();
    fetch_and_cons ();
    ordered_broadcast ();
    consensus ();
  ]

let find name =
  match List.find_opt (fun o -> String.equal o.Object_spec.name name) (all ()) with
  | Some o -> o
  | None -> invalid_arg (Fmt.str "Zoo.find: unknown object %S" name)
