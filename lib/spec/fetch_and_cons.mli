(** The fetch-and-cons list object (§4.1).

    [fetch-and-cons x] atomically threads [x] onto the head of the list
    and returns the items that follow it — the heart of the paper's first
    universal construction.  The read-only list operations [car], [cdr]
    and [null] are also provided. *)

val fetch_and_cons : Value.t -> Op.t
val car : Op.t
val cdr : Op.t
val null : Op.t
val empty_result : Value.t

val list_object :
  ?name:string -> ?initial:Value.t list -> items:Value.t list -> unit ->
  Object_spec.t
