(** Abstract single-shot consensus objects (§4.2).

    The first [decide v] sticks; every decide returns the stuck value.
    {!array} models a finite prefix of the unbounded [consensus[k]] array
    consumed by the Figure 4-5 universal construction. *)

val decide : Value.t -> Op.t

(** [decide_round k v] joins round [k] of a consensus {!array} with input
    [v]. *)
val decide_round : int -> Value.t -> Op.t

val single : ?name:string -> values:Value.t list -> unit -> Object_spec.t

val array :
  ?name:string -> rounds:int -> values:Value.t list -> unit -> Object_spec.t
