(* Set and list objects (§3.3 mentions sets and lists among the types that
   solve 2-process consensus but not 3).  The set keeps its elements
   sorted so states are canonical; remove is made deterministic by always
   removing the least element, the paper's own suggestion (§4.1: implement
   a non-deterministic remove by a deterministic choice). *)

let insert x = Op.make "insert" x
let remove = Op.nullary "remove"
let remove_elt x = Op.make "remove-elt" x
let member x = Op.make "member" x
let size = Op.nullary "size"

let empty_result = Value.str "empty"

let set ?(name = "set") ?(initial = []) ~elements () =
  let canonical vs = List.sort_uniq Value.compare vs in
  let apply state op =
    let contents = Value.as_list state in
    match Op.name op with
    | "insert" ->
        let x = Op.arg op in
        let present = List.exists (Value.equal x) contents in
        (Value.list (canonical (x :: contents)), Value.bool (not present))
    | "remove" -> (
        (* Deterministic choice: remove the least element. *)
        match contents with
        | [] -> (state, empty_result)
        | x :: rest -> (Value.list rest, x))
    | "remove-elt" ->
        let x = Op.arg op in
        let present = List.exists (Value.equal x) contents in
        let rest = List.filter (fun y -> not (Value.equal x y)) contents in
        (Value.list rest, Value.bool present)
    | "member" ->
        (state, Value.bool (List.exists (Value.equal (Op.arg op)) contents))
    | "size" -> (state, Value.int (List.length contents))
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu =
    remove :: List.concat_map (fun x -> [ insert x; member x ]) elements
  in
  Object_spec.make ~name ~init:(Value.list (canonical initial)) ~apply ~menu

(* A shared counter: increment/decrement/read.  Increment returns the new
   value, making concurrent increments observably ordered. *)
let counter ?(name = "counter") ?(init = 0) () =
  let apply state op =
    let n = Value.as_int state in
    match Op.name op with
    | "incr" -> (Value.int (n + 1), Value.int (n + 1))
    | "decr" -> (Value.int (n - 1), Value.int (n - 1))
    | "read" -> (state, state)
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu = [ Op.nullary "incr"; Op.nullary "decr"; Op.nullary "read" ] in
  Object_spec.make ~name ~init:(Value.int init) ~apply ~menu

let incr = Op.nullary "incr"
let decr = Op.nullary "decr"
let read = Op.nullary "read"

(* A key→value map — the "map" shape of the universal object service
   (registers generalized to a keyed store; Corollary 10 still applies:
   registers alone cannot implement it wait-free for n ≥ 2 because it
   embeds the counter via put/get on one key).  The state is an
   association list kept sorted by key so equal abstract maps have
   equal representations.  [put]/[del] return the displaced value (⊥
   when the key was absent) so concurrent writers are observably
   ordered. *)

let put k v = Op.make "put" (Value.pair k v)
let get k = Op.make "get" k
let del k = Op.make "del" k

let kv_map ?(name = "kv-map") ?(initial = [])
    ?(keys = [ Value.str "a"; Value.str "b" ])
    ?(values = [ Value.int 0; Value.int 1; Value.int 2 ]) () =
  let canonical kvs =
    List.sort (fun (a, _) (b, _) -> Value.compare a b) kvs
  in
  let encode kvs = Value.list (List.map (fun (k, v) -> Value.pair k v) kvs) in
  let decode state = List.map Value.as_pair (Value.as_list state) in
  let apply state op =
    let kvs = decode state in
    let lookup k = List.assoc_opt k kvs |> Value.of_option in
    match Op.name op with
    | "put" ->
        let k, v = Value.as_pair (Op.arg op) in
        let displaced = lookup k in
        let kvs = canonical ((k, v) :: List.remove_assoc k kvs) in
        (encode kvs, displaced)
    | "get" -> (state, lookup (Op.arg op))
    | "del" ->
        let k = Op.arg op in
        (encode (List.remove_assoc k kvs), lookup k)
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  let menu =
    List.concat_map
      (fun k -> get k :: del k :: List.map (fun v -> put k v) values)
      keys
  in
  Object_spec.make ~name ~init:(encode (canonical initial)) ~apply ~menu
