(* The wait-free universal construction of §4.1 (Figures 4-1 / 4-2).

   The representation object is a fetch-and-cons list.  A front-end
   executes an abstract operation in two steps:

   1. fetch-and-cons the (tagged) invocation onto the log — this is
      where the operation "really happens": its position in the log is
      its linearization point;
   2. locally replay the returned predecessor log through the sequential
      specification to compute the response.

   Step 2 is pure local computation, so each abstract operation costs
   exactly ONE shared-memory operation: the construction is trivially
   wait-free (but not strongly wait-free — the k-th operation replays
   k-1 log entries; see [Truncating_universal]).

   [verify] exhaustively explores all interleavings of the front-ends
   and checks, at every terminal state, that every process's responses
   equal those dictated by replaying the final log in order — i.e. that
   the construction is linearizable with the fetch-and-cons order as the
   linearization order. *)

open Wfs_spec
open Wfs_sim

let log_name = "log"

(* Front-end for process [pid] applying the fixed [script] of abstract
   operations.  Local state: (next-op index, accumulated responses).
   When the script is exhausted the process decides its response list. *)
let front_end ~(target : Object_spec.t) ~pid ~script =
  let script = Array.of_list script in
  let encode idx acc = Value.pair (Value.int idx) (Value.list acc) in
  Process.make ~pid ~init:(encode 0 []) (fun local ->
      let idx_v, acc_v = Value.as_pair local in
      let idx = Value.as_int idx_v in
      let acc = Value.as_list acc_v in
      if idx >= Array.length script then Process.decide (Value.list (List.rev acc))
      else
        let op = script.(idx) in
        Process.invoke ~obj:log_name
          (Fetch_and_cons.fetch_and_cons (Replay.op_entry ~pid ~seq:idx op))
          (fun prior ->
            let result, _state, _cost =
              Replay.response target (Value.as_list prior) op
            in
            encode (idx + 1) (result :: acc)))

let config ~target ~scripts =
  let n = Array.length scripts in
  let procs =
    Array.init n (fun pid -> front_end ~target ~pid ~script:scripts.(pid))
  in
  let env =
    Env.make [ (log_name, Fetch_and_cons.list_object ~name:log_name ~items:[] ()) ]
  in
  { Explorer.procs; env }

(* Expected responses per process, by replaying a final log (newest
   first) in chronological order. *)
let expected_responses ~(target : Object_spec.t) ~n (final_log : Value.t list) =
  let chronological = List.rev final_log in
  let results = Array.make n [] in
  let state = ref target.Object_spec.init in
  List.iter
    (fun entry ->
      match Replay.decode_entry entry with
      | Replay.Op { pid; op; _ } ->
          let state', res = Object_spec.apply target !state op in
          state := state';
          results.(pid) <- res :: results.(pid)
      | Replay.State _ -> ())
    chronological;
  Array.map List.rev results

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  wait_free : bool;
  failure : string option;
}

(* Verification telemetry: states flushed live in batches of 1024 (plus
   the remainder at the end), mirroring the explorer, so `wfs top` sees
   a long-running verify move; [log_length] is the operational signal
   of the log-based construction — the replay cost of the next op. *)
module M = struct
  open Wfs_obs.Metrics

  let verify_runs = Counter.make "log_universal.verify.runs"
  let states = Counter.make "log_universal.states"
  let terminals = Counter.make "log_universal.terminals"
  let log_length = Gauge.make "log_universal.log_length"
end

let verify ?(max_states = 2_000_000) ~target ~scripts () =
  let cfg = config ~target ~scripts in
  let n = Array.length scripts in
  let seen : (Value.t, unit) Hashtbl.t = Hashtbl.create 4096 in
  let on_stack : (Value.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let terminals = ref 0 in
  let states_flushed = ref 0 in
  let failure = ref None in
  let cyclic = ref false in
  let truncated = ref false in
  let check_terminal (node : Explorer.node) =
    incr terminals;
    let final_log = Value.as_list (Env.get node.Explorer.env_state cfg.Explorer.env log_name) in
    Wfs_obs.Metrics.Gauge.set_max M.log_length (List.length final_log);
    let expected = expected_responses ~target ~n final_log in
    Array.iteri
      (fun pid decided ->
        match decided with
        | Some (Value.List results) ->
            if not (List.equal Value.equal results expected.(pid)) then
              failure :=
                Some
                  (Fmt.str
                     "P%d responded %a but the log order dictates %a" pid
                     Fmt.(list ~sep:comma Value.pp)
                     results
                     Fmt.(list ~sep:comma Value.pp)
                     expected.(pid))
        | Some v ->
            failure := Some (Fmt.str "P%d decided non-list %a" pid Value.pp v)
        | None -> failure := Some (Fmt.str "P%d undecided at terminal" pid))
      node.Explorer.decided
  in
  let rec dfs node =
    let k = Explorer.key node in
    if Hashtbl.mem on_stack k then cyclic := true
    else if not (Hashtbl.mem seen k) then begin
      if Hashtbl.length seen >= max_states then truncated := true
      else begin
        Hashtbl.replace seen k ();
        if Hashtbl.length seen land 1023 = 0 then begin
          Wfs_obs.Metrics.Counter.add M.states 1024;
          states_flushed := !states_flushed + 1024;
          Wfs_sim.Pool.note_states 1024
        end;
        Hashtbl.replace on_stack k ();
        if Explorer.is_terminal node then check_terminal node
        else
          List.iter (fun (_, succ) -> dfs succ) (Explorer.successors cfg node);
        Hashtbl.remove on_stack k
      end
    end
  in
  dfs (Explorer.initial cfg);
  let states = Hashtbl.length seen in
  Wfs_obs.Metrics.Counter.incr M.verify_runs;
  Wfs_obs.Metrics.Counter.add M.states (states - !states_flushed);
  Wfs_sim.Pool.note_states (states - !states_flushed);
  Wfs_obs.Metrics.Counter.add M.terminals !terminals;
  {
    ok = !failure = None && (not !cyclic) && not !truncated;
    states;
    terminals = !terminals;
    wait_free = (not !cyclic) && not !truncated;
    failure = !failure;
  }

(* Single-schedule execution, plus the induced *abstract* history of
   target-object operations (each spanning exactly its fetch-and-cons
   step), for linearizability cross-checks.  When causal tracing is
   enabled the decoded fetch-and-cons order is recorded as
   invoke/complete events (own_steps = 1 — the construction's whole
   point: one shared-memory step per abstract operation). *)
let run ?(max_steps = 100_000) ~target ~scripts ~schedule () =
  let cfg = config ~target ~scripts in
  let outcome =
    Runner.run ~max_steps ~procs:cfg.Explorer.procs ~env:cfg.Explorer.env
      ~schedule ()
  in
  let causal = Wfs_obs.Causal.enabled () in
  let causal_obj = "sim.log/" ^ target.Object_spec.name in
  if causal then
    Wfs_obs.Causal.meta ~obj:causal_obj ~n:(Array.length scripts) ~bound:1;
  let pos = ref 0 in
  let abstract =
    List.concat_map
      (fun (step : Runner.step) ->
        match Replay.decode_entry (Op.arg step.Runner.op) with
        | Replay.Op { pid; op; _ } ->
            let result, _, _ =
              Replay.response target (Value.as_list step.Runner.res) op
            in
            if causal then begin
              (* sample on the op counter, issue ids only for traced
                 ops — mirrors the runtime's ticket-gated discipline *)
              if Wfs_obs.Causal.sampled !pos then begin
                let tr = Wfs_obs.Causal.issue () in
                Wfs_obs.Causal.invoke ~obj:causal_obj ~trace:tr ~pid;
                Wfs_obs.Causal.complete ~obj:causal_obj ~trace:tr ~pos:!pos
                  ~own_steps:1 ~help_rounds:0
              end;
              incr pos
            end;
            [
              Wfs_history.Event.invoke ~pid ~obj:target.Object_spec.name op;
              Wfs_history.Event.respond ~pid ~obj:target.Object_spec.name result;
            ]
        | Replay.State _ -> [])
      outcome.Runner.trace
  in
  (outcome, abstract)
