(** The strongly-wait-free universal construction (§4.1): log entries are
    operations or states; each front-end truncates its own entry's cdr
    with the reconstructed state, bounding every replay by n. *)

open Wfs_spec
open Wfs_sim

val log_name : string

(** The representation object: fetch-and-cons plus destructive
    [truncate], carrying a ghost (never-truncated) audit log used only
    for verification. *)
val log_object : ?name:string -> unit -> Object_spec.t

val fac : Value.t -> Op.t
val truncate : key:Value.t -> Value.t -> Op.t

val front_end : target:Object_spec.t -> pid:int -> script:Op.t list -> Process.t
val config : target:Object_spec.t -> scripts:Op.t list array -> Explorer.config

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  wait_free : bool;
  max_replay : int;
  max_visible_ops : int;
  failure : string option;
}

(** Exhaustive check over all interleavings: responses match the ghost
    log's dictation and every replay stays within the n-operation
    bound. *)
val verify :
  ?max_states:int -> target:Object_spec.t -> scripts:Op.t list array -> unit ->
  verification

val run :
  ?max_steps:int ->
  target:Object_spec.t ->
  scripts:Op.t list array ->
  schedule:Scheduler.t ->
  unit ->
  Runner.outcome
