(** Tagged log entries and deterministic replay (§4.1). *)

open Wfs_spec

type entry = Op of { pid : int; seq : int; op : Op.t } | State of Value.t

val op_entry : pid:int -> seq:int -> Op.t -> Value.t
val state_entry : Value.t -> Value.t
val decode_entry : Value.t -> entry
val entry_op : Value.t -> Op.t option

(** [reconstruct spec log] replays the log (most recent first), starting
    from the newest state entry (or the initial state).  Returns the
    state and the number of operations replayed. *)
val reconstruct : Object_spec.t -> Value.t list -> Value.t * int

(** [response spec log op] is [(result, post_state, replayed)]: the
    response [op] receives when the log of its predecessors is [log]. *)
val response : Object_spec.t -> Value.t list -> Op.t -> Value.t * Value.t * int
