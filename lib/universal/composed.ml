(* Theorem 26, end to end: an object that solves n-process consensus is
   universal.

   The proof is a two-step reduction, and this module composes the two
   executable steps:

     consensus object  --(Figure 4-5)-->  fetch-and-cons
     fetch-and-cons    --(§4.1 log)--->   any sequential object

   Front-ends run the Figure 4-5 protocol to thread their TAGGED
   INVOCATION onto the shared list; the view returned by fetch-and-cons
   is exactly the log of predecessors, which the front-end replays
   through the sequential specification to compute its response — no
   shared state beyond registers and consensus objects is ever used.

   [verify] explores every interleaving: the longest view defines the
   linearization order (coherence makes it well-defined), and every
   process's responses must match replaying that order. *)

open Wfs_spec
open Wfs_sim

(* The shared-memory behaviour is exactly the Figure 4-5 protocol over
   tagged invocations; the response computation is deterministic local
   replay of the returned view, performed at verification time (where it
   happens cannot affect any other process). *)
let config ~scripts = Consensus_fac.config ~scripts

(* Derive (pid, op, response) triples from a terminal's decisions: each
   decided (item, view) yields response = apply(op, eval(reverse view)). *)
let responses_of_decisions ~(target : Object_spec.t)
    (decided : Value.t option array) =
  Array.to_list decided
  |> List.concat_map (fun d ->
         match d with
         | Some (Value.List entries) ->
             List.map
               (fun e ->
                 let item, view = Value.as_pair e in
                 match Replay.decode_entry item with
                 | Replay.Op { pid; seq; op } ->
                     let result, _, _ =
                       Replay.response target (Value.as_list view) op
                     in
                     Ok (pid, seq, op, result)
                 | Replay.State _ -> Error "state entry as item"
                 | exception Invalid_argument m -> Error m)
               entries
         | Some v -> [ Error (Fmt.str "bad decision %a" Value.pp v) ]
         | None -> [ Error "undecided at terminal" ])

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  failure : string option;
}

let check_terminal ~target ~n (node : Explorer.node) =
  (* views must be coherent (this repeats the Consensus_fac check and
     additionally pins responses) *)
  let decisions = node.Explorer.decided in
  let triples = responses_of_decisions ~target decisions in
  match List.find_opt (function Error _ -> true | Ok _ -> false) triples with
  | Some (Error e) -> Some e
  | Some (Ok _) -> None (* unreachable *)
  | None ->
      let triples =
        List.filter_map (function Ok t -> Some t | Error _ -> None) triples
      in
      (* the longest full view is the linearization order *)
      let views =
        Array.to_list decisions
        |> List.concat_map (fun d ->
               match d with
               | Some (Value.List entries) ->
                   List.map
                     (fun e ->
                       let item, view = Value.as_pair e in
                       item :: Value.as_list view)
                     entries
               | Some _ | None -> [])
      in
      if not (Merge.coherent views) then Some "views not coherent"
      else begin
        let longest =
          List.fold_left
            (fun acc v -> if List.length v > List.length acc then v else acc)
            [] views
        in
        (* replay the linearization chronologically *)
        let expected = Hashtbl.create 16 in
        let state = ref target.Object_spec.init in
        List.iter
          (fun item ->
            match Replay.decode_entry item with
            | Replay.Op { pid; seq; op } ->
                let state', res = Object_spec.apply target !state op in
                state := state';
                Hashtbl.replace expected (pid, seq) res
            | Replay.State _ -> ())
          (List.rev longest);
        let mismatch =
          List.find_opt
            (fun (pid, seq, _op, result) ->
              match Hashtbl.find_opt expected (pid, seq) with
              | Some want -> not (Value.equal want result)
              | None -> true)
            triples
        in
        match mismatch with
        | Some (pid, seq, op, result) ->
            Some
              (Fmt.str "P%d op %d (%a) responded %a, linearization dictates %a"
                 pid seq Op.pp op Value.pp result Value.pp
                 (Option.value
                    ~default:(Value.str "<missing>")
                    (Hashtbl.find_opt expected (pid, seq))))
        | None ->
            (* each process's items must all appear in the longest view *)
            let missing =
              List.exists
                (fun (pid, seq, _, _) ->
                  not (Hashtbl.mem expected (pid, seq)))
                triples
            in
            if missing then Some "an operation is missing from the longest view"
            else begin
              ignore n;
              None
            end
      end

let verify ?(max_states = 5_000_000) ~target ~scripts () =
  let cfg = config ~scripts in
  let n = Array.length scripts in
  let seen : (Value.t, unit) Hashtbl.t = Hashtbl.create 4096 in
  let terminals = ref 0 in
  let failure = ref None in
  let truncated = ref false in
  let rec dfs node =
    let k = Explorer.key node in
    if not (Hashtbl.mem seen k) then begin
      if Hashtbl.length seen >= max_states then truncated := true
      else begin
        Hashtbl.replace seen k ();
        if Explorer.is_terminal node then begin
          incr terminals;
          match check_terminal ~target ~n node with
          | Some e -> if !failure = None then failure := Some e
          | None -> ()
        end
        else List.iter (fun (_, succ) -> dfs succ) (Explorer.successors cfg node)
      end
    end
  in
  dfs (Explorer.initial cfg);
  {
    ok = !failure = None && not !truncated;
    states = Hashtbl.length seen;
    terminals = !terminals;
    failure = !failure;
  }

(* Single-schedule run returning the abstract (pid, op, result) list in
   linearization order, for demos. *)
let run ?(max_steps = 1_000_000) ~target ~scripts ~schedule () =
  let cfg = config ~scripts in
  let outcome =
    Runner.run ~max_steps ~procs:cfg.Explorer.procs ~env:cfg.Explorer.env
      ~schedule ()
  in
  let triples =
    responses_of_decisions ~target
      (Array.of_list
         (List.map (fun (_, d) -> Some d) outcome.Runner.decisions))
  in
  ( outcome,
    List.filter_map (function Ok t -> Some t | Error _ -> None) triples )
