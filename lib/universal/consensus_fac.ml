(* Fetch-and-cons from n-process consensus (§4.2, Figure 4-5) — the
   construction behind Theorem 26: any object that solves n-process
   consensus is universal.

   Shared state:
   - announce[i] : process i's most recently announced item (register);
   - round[i]    : the last consensus round process i completed;
   - prefer[i]   : process i's preference list from its latest round;
   - consensus[] : an array of single-shot consensus objects.

   A fetch-and-cons(x) by process i:
   1. announce[i] := x;
   2. scan all processes, building a goal list of announced items and
      the maximum completed round (lastRound);
   3. if lastRound is ahead of i's own round, join consensus[lastRound]
      to learn that round's winner (catch-up);
   4. for up to n further rounds: merge the goal into the winner's
      preference ("prefer[i] := goal \ prefer[winner]"), join the next
      consensus round, adopt the new winner's preference, publish the
      completed round — and return as soon as i itself wins (or after n
      losses, by which point Lemma 24 guarantees x is in the winner's
      preference).
   5. The view returned is trim(prefer[winner], x): the items that
      followed x onto the list.

   [verify] exhaustively checks Lemma 24's coherence (any two views are
   suffix-related) and that every process's item enters the list exactly
   once, over every interleaving. *)

open Wfs_spec
open Wfs_sim

let regs = "regs"
let cons = "cons"

(* register layout in the [regs] memory object *)
let announce_reg ~n:_ p = p
let round_reg ~n p = n + p
let prefer_reg ~n p = (2 * n) + p

(* local-state record, encoded as a fixed-shape list *)
type local = {
  phase : int;
  idx : int;  (* script position *)
  acc : Value.t list;  (* (item, view) decisions so far, newest first *)
  x : Value.t;  (* current tagged item *)
  p : int;  (* scan index *)
  goal : Value.t list;
  last_round : int;
  my_round : int;  (* last round this process completed (mirror of round[i]) *)
  winner : int;
  round_no : int;
  iter : int;
  view : Value.t list;  (* last read of prefer[winner] *)
}

let encode l =
  Value.list
    [
      Value.int l.phase; Value.int l.idx; Value.list l.acc; l.x;
      Value.int l.p; Value.list l.goal; Value.int l.last_round;
      Value.int l.my_round; Value.int l.winner; Value.int l.round_no;
      Value.int l.iter; Value.list l.view;
    ]

let decode v =
  match Value.as_list v with
  | [ phase; idx; acc; x; p; goal; last_round; my_round; winner; round_no;
      iter; view ] ->
      {
        phase = Value.as_int phase;
        idx = Value.as_int idx;
        acc = Value.as_list acc;
        x;
        p = Value.as_int p;
        goal = Value.as_list goal;
        last_round = Value.as_int last_round;
        my_round = Value.as_int my_round;
        winner = Value.as_int winner;
        round_no = Value.as_int round_no;
        iter = Value.as_int iter;
        view = Value.as_list view;
      }
  | _ -> invalid_arg "Consensus_fac.decode: malformed local state"

let ph_announce = 0
let ph_scan_announce = 1
let ph_scan_round = 2
let ph_merge = 3 (* read prefer[winner], then write merged prefer[i] *)
let ph_write_pref1 = 4
let ph_decide = 5
let ph_adopt = 6 (* read prefer[winner] after the round *)
let ph_write_pref2 = 7
let ph_publish = 8 (* write round[i] *)

let missing_marker = Value.str "ITEM-MISSING-FROM-VIEW"

(* The front-end for process [pid] performing one fetch-and-cons per
   script item.  Items are tagged (pid, seq) so list entries are
   unique. *)
let front_end ~n ~pid ~script =
  let script = Array.of_list script in
  let item idx = Replay.op_entry ~pid ~seq:idx script.(idx) in
  let start_op l idx =
    if idx >= Array.length script then { l with idx }
    else { l with phase = ph_announce; idx; x = item idx; p = 0; goal = [] }
  in
  let init =
    encode
      (start_op
         {
           phase = ph_announce; idx = 0; acc = []; x = Value.unit; p = 0;
           goal = []; last_round = 0; my_round = 0; winner = pid;
           round_no = 0; iter = 0; view = [];
         }
         0)
  in
  Process.make ~pid ~init (fun local_v ->
      let l = decode local_v in
      if l.idx >= Array.length script then
        Process.decide (Value.list (List.rev l.acc))
      else if l.phase = ph_announce then
        Process.invoke ~obj:regs
          (Memory.write (announce_reg ~n pid) l.x)
          (fun _ -> encode { l with phase = ph_scan_announce; p = 0; goal = [] })
      else if l.phase = ph_scan_announce then
        Process.invoke ~obj:regs
          (Memory.read (announce_reg ~n l.p))
          (fun v ->
            let goal = if Value.is_bottom v then l.goal else v :: l.goal in
            encode { l with phase = ph_scan_round; goal })
      else if l.phase = ph_scan_round then
        Process.invoke ~obj:regs
          (Memory.read (round_reg ~n l.p))
          (fun v ->
            let last_round = max l.last_round (Value.as_int v) in
            if l.p + 1 < n then
              encode { l with phase = ph_scan_announce; p = l.p + 1; last_round }
            else encode { l with phase = ph_merge; last_round; iter = 0 })
      else if l.phase = ph_merge then begin
        (* iter = 0: this operation's loop has not started yet.  If the
           scan saw a round ahead of ours, join it to learn its winner
           (catch-up); otherwise our remembered winner (or ourselves, if
           no round has ever completed) holds the latest preference. *)
        if l.iter = 0 && l.last_round > l.my_round then
          Process.invoke ~obj:cons
            (Consensus_object.decide_round l.last_round (Value.pid pid))
            (fun w ->
              encode
                {
                  l with
                  winner = Value.as_pid w;
                  round_no = l.last_round;
                  iter = 1;
                })
        else
          let l =
            if l.iter = 0 then
              {
                l with
                winner = (if l.my_round = 0 then pid else l.winner);
                round_no = l.my_round;
                iter = 1;
              }
            else l
          in
          Process.invoke ~obj:regs
            (Memory.read (prefer_reg ~n l.winner))
            (fun v ->
              let merged =
                Merge.merge ~prefix:l.goal ~suffix:(Value.as_list v)
              in
              encode { l with phase = ph_write_pref1; view = merged })
      end
      else if l.phase = ph_write_pref1 then
        Process.invoke ~obj:regs
          (Memory.write (prefer_reg ~n pid) (Value.list l.view))
          (fun _ ->
            encode
              {
                l with
                phase = ph_decide;
                round_no = max l.last_round l.round_no + 1;
              })
      else if l.phase = ph_decide then
        Process.invoke ~obj:cons
          (Consensus_object.decide_round l.round_no (Value.pid pid))
          (fun w -> encode { l with phase = ph_adopt; winner = Value.as_pid w })
      else if l.phase = ph_adopt then
        Process.invoke ~obj:regs
          (Memory.read (prefer_reg ~n l.winner))
          (fun v -> encode { l with phase = ph_write_pref2; view = Value.as_list v })
      else if l.phase = ph_write_pref2 then
        Process.invoke ~obj:regs
          (Memory.write (prefer_reg ~n pid) (Value.list l.view))
          (fun _ -> encode { l with phase = ph_publish })
      else if l.phase = ph_publish then
        Process.invoke ~obj:regs
          (Memory.write (round_reg ~n pid) (Value.int l.round_no))
          (fun _ ->
            let l = { l with my_round = l.round_no; last_round = l.round_no } in
            if l.winner = pid || l.iter >= n then begin
              (* return trim(prefer[winner], x) *)
              let view =
                match Merge.trim l.view l.x with
                | Some tail -> Value.list tail
                | None -> missing_marker
              in
              let acc = Value.pair l.x view :: l.acc in
              encode (start_op { l with acc } (l.idx + 1))
            end
            else encode { l with phase = ph_merge; iter = l.iter + 1 })
      else invalid_arg (Fmt.str "consensus-fac P%d: phase %d" pid l.phase))

(* how many consensus rounds the array must provide *)
let rounds_needed ~n ~scripts =
  let total_ops = Array.fold_left (fun acc s -> acc + List.length s) 0 scripts in
  ((n + 1) * total_ops) + 2

let config ~scripts =
  let n = Array.length scripts in
  let size = 3 * n in
  let init =
    List.init size (fun i ->
        if i < n then Value.bottom (* announce *)
        else if i < 2 * n then Value.int 0 (* round *)
        else Value.list [] (* prefer *))
  in
  let memory =
    Memory.memory ~name:regs ~ops:[ Memory.Read; Memory.Write ] ~size ~init []
  in
  let consensus_array =
    Consensus_object.array ~name:cons
      ~rounds:(rounds_needed ~n ~scripts)
      ~values:(Zoo.pids n) ()
  in
  let procs =
    Array.init n (fun pid -> front_end ~n ~pid ~script:scripts.(pid))
  in
  { Explorer.procs; env = Env.make [ (regs, memory); (cons, consensus_array) ] }

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  wait_free : bool;
  failure : string option;
}

(* Decisions are lists of (item, view) pairs; the full view of an
   operation is its item prepended to its returned view. *)
let full_views_of_terminal (node : Explorer.node) =
  Array.to_list node.Explorer.decided
  |> List.concat_map (fun d ->
         match d with
         | Some (Value.List entries) ->
             List.map
               (fun e ->
                 let x, view = Value.as_pair e in
                 match view with
                 | Value.List tail -> Ok (x :: tail)
                 | v -> Error (Fmt.str "bad view %a" Value.pp v))
               entries
         | Some v -> [ Error (Fmt.str "bad decision %a" Value.pp v) ]
         | None -> [ Error "undecided at terminal" ])

let check_terminal node =
  let views = full_views_of_terminal node in
  let errors =
    List.filter_map (function Error e -> Some e | Ok _ -> None) views
  in
  match errors with
  | e :: _ -> Some e
  | [] ->
      let views = List.filter_map (function Ok v -> Some v | Error _ -> None) views in
      if not (Merge.coherent views) then
        Some
          (Fmt.str "views not coherent: %a"
             Fmt.(list ~sep:semi (brackets (list ~sep:comma Value.pp)))
             views)
      else begin
        (* no duplicates within any view *)
        let dup view =
          let sorted = List.sort Value.compare view in
          let rec adjacent = function
            | a :: (b :: _ as rest) ->
                Value.equal a b || adjacent rest
            | [ _ ] | [] -> false
          in
          adjacent sorted
        in
        if List.exists dup views then Some "duplicate entry in a view"
        else None
      end

let verify ?(max_states = 5_000_000) ~scripts () =
  let cfg = config ~scripts in
  let seen : (Value.t, unit) Hashtbl.t = Hashtbl.create 4096 in
  let on_stack : (Value.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let terminals = ref 0 in
  let failure = ref None in
  let cyclic = ref false in
  let truncated = ref false in
  let rec dfs node =
    let k = Explorer.key node in
    if Hashtbl.mem on_stack k then cyclic := true
    else if not (Hashtbl.mem seen k) then begin
      if Hashtbl.length seen >= max_states then truncated := true
      else begin
        Hashtbl.replace seen k ();
        Hashtbl.replace on_stack k ();
        if Explorer.is_terminal node then begin
          incr terminals;
          match check_terminal node with
          | Some e -> if !failure = None then failure := Some e
          | None -> ()
        end
        else List.iter (fun (_, succ) -> dfs succ) (Explorer.successors cfg node);
        Hashtbl.remove on_stack k
      end
    end
  in
  dfs (Explorer.initial cfg);
  {
    ok = !failure = None && (not !cyclic) && not !truncated;
    states = Hashtbl.length seen;
    terminals = !terminals;
    wait_free = (not !cyclic) && not !truncated;
    failure = !failure;
  }

(* Single-schedule run for bigger n and for the benchmarks. *)
let run ?(max_steps = 1_000_000) ~scripts ~schedule () =
  let cfg = config ~scripts in
  Runner.run ~max_steps ~procs:cfg.Explorer.procs ~env:cfg.Explorer.env
    ~schedule ()

(* Extract (pid, item, full view) triples from a completed run. *)
let views_of_outcome (outcome : Runner.outcome) =
  List.concat_map
    (fun (pid, d) ->
      match d with
      | Value.List entries ->
          List.map
            (fun e ->
              let x, view = Value.as_pair e in
              (pid, x, x :: Value.as_list view))
            entries
      | _ -> [])
    outcome.Runner.decisions
