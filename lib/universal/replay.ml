(* Log entries and deterministic replay (§4.1).

   The universal construction represents an object's state as the list
   of invocations applied to it, most recent first.  Entries are tagged
   with (process, sequence number) so identical operations by different
   processes — or by the same process at different times — stay
   distinct.  The strongly-wait-free variant also stores reconstructed
   *states* in the list; replay stops at the first state entry. *)

open Wfs_spec

type entry = Op of { pid : int; seq : int; op : Op.t } | State of Value.t

let op_entry ~pid ~seq op : Value.t =
  Value.pair (Value.str "op")
    (Value.pair (Value.pair (Value.int pid) (Value.int seq)) op)

let state_entry state : Value.t = Value.pair (Value.str "state") state

let decode_entry v : entry =
  let tag, payload = Value.as_pair v in
  match Value.as_str tag with
  | "op" ->
      let key, op = Value.as_pair payload in
      let pid, seq = Value.as_pair key in
      Op { pid = Value.as_int pid; seq = Value.as_int seq; op }
  | "state" -> State payload
  | s -> invalid_arg (Fmt.str "Replay.decode_entry: bad tag %S" s)

let entry_op v =
  match decode_entry v with
  | Op { op; _ } -> Some op
  | State _ -> None

(* [reconstruct spec log] walks the log (most recent first) collecting
   operations until it hits a state entry (or the end, where the initial
   state applies), then replays forward.  Returns the reconstructed
   state and the number of operations replayed — the §4.1 replay-cost
   metric measured by the benchmarks. *)
let reconstruct (spec : Object_spec.t) (log : Value.t list) =
  let rec collect acc = function
    | [] -> (spec.Object_spec.init, acc)
    | v :: rest -> (
        match decode_entry v with
        | Op { op; _ } -> collect (op :: acc) rest
        | State s -> (s, acc))
  in
  let base, ops = collect [] log in
  let state =
    List.fold_left (fun st op -> fst (Object_spec.apply spec st op)) base ops
  in
  (state, List.length ops)

(* [response spec log op] — the §4.1 two-step execution: the state before
   [op] is reconstructed from the log of its predecessors, and the
   result read off [apply]. *)
let response spec log op =
  let state, replayed = reconstruct spec log in
  let state', result = Object_spec.apply spec state op in
  (result, state', replayed)
