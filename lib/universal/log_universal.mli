(** The wait-free universal construction of §4.1: any sequential object
    from a fetch-and-cons list, by threading tagged invocations onto a
    shared log and replaying predecessors locally. *)

open Wfs_spec
open Wfs_sim

val log_name : string

(** Front-end process applying a fixed script of abstract operations. *)
val front_end : target:Object_spec.t -> pid:int -> script:Op.t list -> Process.t

(** Explorer configuration: one front-end per script over a shared
    fetch-and-cons log. *)
val config : target:Object_spec.t -> scripts:Op.t list array -> Explorer.config

(** Responses each process must receive if the final log (newest first)
    is the linearization order. *)
val expected_responses :
  target:Object_spec.t -> n:int -> Value.t list -> Value.t list array

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  wait_free : bool;
  failure : string option;
}

(** Exhaustively check, over every interleaving, that every process's
    responses match the final log's dictation — linearizability with the
    fetch-and-cons order as linearization order. *)
val verify :
  ?max_states:int -> target:Object_spec.t -> scripts:Op.t list array -> unit ->
  verification

(** Run one schedule; also returns the induced abstract history of
    target operations for linearizability cross-checks. *)
val run :
  ?max_steps:int ->
  target:Object_spec.t ->
  scripts:Op.t list array ->
  schedule:Scheduler.t ->
  unit ->
  Runner.outcome * Wfs_history.History.t
