(** Fetch-and-cons from rounds of n-process consensus (§4.2, Figure 4-5)
    — the construction behind Theorem 26's universality test. *)

open Wfs_spec
open Wfs_sim

val regs : string
val cons : string

(** Result view marker used when an item unexpectedly fails to appear in
    the winning preference (flagged by verification; never produced in a
    correct run). *)
val missing_marker : Value.t

(** Front-end performing one fetch-and-cons per script item; items are
    tagged (pid, seq).  A process decides the list of (item, returned
    view) pairs. *)
val front_end : n:int -> pid:int -> script:Op.t list -> Process.t

(** Consensus rounds provisioned for the given scripts. *)
val rounds_needed : n:int -> scripts:Op.t list array -> int

val config : scripts:Op.t list array -> Explorer.config

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  wait_free : bool;
  failure : string option;
}

(** Exhaustively check Lemma 24's view coherence (any two views
    suffix-related), uniqueness of entries, and wait-freedom, over all
    interleavings. *)
val verify : ?max_states:int -> scripts:Op.t list array -> unit -> verification

val run :
  ?max_steps:int -> scripts:Op.t list array -> schedule:Scheduler.t -> unit ->
  Runner.outcome

(** (pid, item, full view) triples from a completed run. *)
val views_of_outcome : Runner.outcome -> (int * Value.t * Value.t list) list
