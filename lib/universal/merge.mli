(** The merge operator (the paper's backslash) of §4.2 and the
    view-coherence relations used by Lemmas 23–25. *)

open Wfs_spec

val mem : Value.t -> Value.t list -> bool

(** [merge ~prefix ~suffix] is the paper's [prefix \ suffix]: prepend to
    [suffix] every entry of [prefix] not already in it, preserving
    relative order. *)
val merge : prefix:Value.t list -> suffix:Value.t list -> Value.t list

(** [trim list x] is the suffix strictly after the first occurrence of
    [x], if any. *)
val trim : Value.t list -> Value.t -> Value.t list option

val is_suffix : Value.t list -> Value.t list -> bool

(** Any two views are suffix-related. *)
val coherent : Value.t list list -> bool
