(* The merge operator (the paper's backslash) of §4.2.

     Λ \ h = h
     (p • g) \ h = if p ∈ h then g \ h else p • (g \ h)

   [merge ~prefix ~suffix] prepends to [suffix] all entries of [prefix]
   not already in [suffix], preserving their relative order in [prefix].
   Entries are compared by value, so the universal construction tags
   operations with (process, sequence number) to make them unique. *)

open Wfs_spec

let mem x h = List.exists (Value.equal x) h

let rec merge ~prefix ~suffix =
  match prefix with
  | [] -> suffix
  | p :: g ->
      if mem p suffix then merge ~prefix:g ~suffix
      else p :: merge ~prefix:g ~suffix

(* [trim list x]: the suffix of [list] strictly after the first
   occurrence of [x] — 'the items that follow x'.  [None] if x does not
   occur. *)
let rec trim list x =
  match list with
  | [] -> None
  | y :: rest -> if Value.equal y x then Some rest else trim rest x

(* [is_suffix a b]: [a] is a suffix of [b] — the coherence relation of
   Lemma 24's views. *)
let is_suffix a b =
  let la = List.length a and lb = List.length b in
  la <= lb
  && List.for_all2 Value.equal a
       (List.filteri (fun i _ -> i >= lb - la) b)

(* [coherent views]: any two views are suffix-related (condition (1) of
   the §4.2 linearizability criterion). *)
let coherent views =
  List.for_all
    (fun a -> List.for_all (fun b -> is_suffix a b || is_suffix b a) views)
    views
