(* The strongly-wait-free variant of the universal construction (§4.1).

   Plain log replay makes the k-th operation replay k-1 entries — wait-
   free but not strongly wait-free.  The fix from the paper: list
   elements may be operations OR states.  After computing its response,
   a front-end destructively replaces the cdr of its own entry with the
   state it just reconstructed; replay stops at the first state entry,
   so any later operation replays at most n operations (one in-flight,
   untruncated operation per process).

   The representation object here supports fetch-and-cons plus that
   destructive [truncate].  For verification the object also carries a
   *ghost* audit log — the never-truncated operation history, invisible
   to front-ends — against which every terminal state is checked. *)

open Wfs_spec
open Wfs_sim

let log_name = "log"

let fac entry = Op.make "fetch-and-cons" entry

let truncate ~key state = Op.make "truncate" (Value.pair key (Value.pair (Value.str "state") state))

(* State: Pair (visible log, ghost audit log), both newest first. *)
let log_object ?(name = log_name) () =
  let apply state op =
    let visible, ghost = Value.as_pair state in
    let visible = Value.as_list visible and ghost = Value.as_list ghost in
    match Op.name op with
    | "fetch-and-cons" ->
        let entry = Op.arg op in
        ( Value.pair
            (Value.list (entry :: visible))
            (Value.list (entry :: ghost)),
          Value.list visible )
    | "truncate" ->
        let key, state_entry = Value.as_pair (Op.arg op) in
        (* keep entries newer than (and including) the keyed op; replace
           everything older with the state entry *)
        let rec rewrite = function
          | [] -> [] (* key not found: leave unchanged (unreachable) *)
          | e :: rest -> (
              match Replay.decode_entry e with
              | Replay.Op { pid; seq; _ }
                when Value.equal (Value.pair (Value.int pid) (Value.int seq)) key
                ->
                  [ e; state_entry ]
              | Replay.Op _ | Replay.State _ -> e :: rewrite rest)
        in
        (Value.pair (Value.list (rewrite visible)) (Value.list ghost), Value.unit)
    | _ -> raise (Object_spec.Unknown_operation { obj = name; op })
  in
  Object_spec.make ~name
    ~init:(Value.pair (Value.list []) (Value.list []))
    ~apply ~menu:[]

(* Front-end: per abstract operation, (1) fetch-and-cons the tagged
   invocation, (2) locally reconstruct and respond, (3) truncate own
   entry with the reconstructed pre-state.  Local state:
   (phase, idx, acc) where acc accumulates (response, replay-cost)
   pairs. *)
let front_end ~(target : Object_spec.t) ~pid ~script =
  let script = Array.of_list script in
  let encode phase idx acc =
    Value.pair (Value.int phase) (Value.pair (Value.int idx) (Value.list acc))
  in
  let decode local =
    let phase, rest = Value.as_pair local in
    let idx, acc = Value.as_pair rest in
    (Value.as_int phase, Value.as_int idx, Value.as_list acc)
  in
  let ph_fac = 0 and ph_truncate = 1 in
  Process.make ~pid ~init:(encode ph_fac 0 []) (fun local ->
      let phase, idx, acc = decode local in
      if idx >= Array.length script then
        Process.decide (Value.list (List.rev acc))
      else if phase = ph_fac then
        let op = script.(idx) in
        Process.invoke ~obj:log_name
          (fac (Replay.op_entry ~pid ~seq:idx op))
          (fun prior ->
            let result, _post, cost =
              Replay.response target (Value.as_list prior) op
            in
            let pre_state, _ = Replay.reconstruct target (Value.as_list prior) in
            encode ph_truncate idx
              (Value.pair result (Value.pair (Value.int cost) pre_state) :: acc))
      else begin
        (* acc head carries the pre-state to truncate with *)
        match acc with
        | [] -> invalid_arg "truncating front-end: missing pre-state"
        | latest :: rest ->
            let result, cost_and_state = Value.as_pair latest in
            let cost, pre_state = Value.as_pair cost_and_state in
            let key = Value.pair (Value.int pid) (Value.int idx) in
            Process.invoke ~obj:log_name
              (truncate ~key pre_state)
              (fun _ ->
                encode ph_fac (idx + 1)
                  (Value.pair result cost :: rest))
      end)

let config ~target ~scripts =
  let n = Array.length scripts in
  let procs =
    Array.init n (fun pid -> front_end ~target ~pid ~script:scripts.(pid))
  in
  let env = Env.make [ (log_name, log_object ()) ] in
  { Explorer.procs; env }

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  wait_free : bool;
  max_replay : int;  (** worst replay cost observed at any terminal *)
  max_visible_ops : int;
      (** most un-truncated operations in the visible log at a terminal *)
  failure : string option;
}

let verify ?(max_states = 2_000_000) ~target ~scripts () =
  let cfg = config ~target ~scripts in
  let n = Array.length scripts in
  let seen : (Value.t, unit) Hashtbl.t = Hashtbl.create 4096 in
  let on_stack : (Value.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let terminals = ref 0 in
  let failure = ref None in
  let cyclic = ref false in
  let truncated_search = ref false in
  let max_replay = ref 0 in
  let max_visible_ops = ref 0 in
  let check_terminal (node : Explorer.node) =
    incr terminals;
    let visible, ghost =
      Value.as_pair (Env.get node.Explorer.env_state cfg.Explorer.env log_name)
    in
    let ghost = Value.as_list ghost in
    let visible_ops =
      List.length
        (List.filter
           (fun e ->
             match Replay.decode_entry e with
             | Replay.Op _ -> true
             | Replay.State _ -> false)
           (Value.as_list visible))
    in
    if visible_ops > !max_visible_ops then max_visible_ops := visible_ops;
    let expected = Log_universal.expected_responses ~target ~n ghost in
    Array.iteri
      (fun pid decided ->
        match decided with
        | Some (Value.List entries) ->
            let results =
              List.map (fun e -> fst (Value.as_pair e)) entries
            in
            let costs =
              List.map (fun e -> Value.as_int (snd (Value.as_pair e))) entries
            in
            List.iter
              (fun c ->
                if c > !max_replay then max_replay := c;
                if c > n then
                  failure :=
                    Some
                      (Fmt.str "P%d replayed %d ops (> n = %d)" pid c n))
              costs;
            if not (List.equal Value.equal results expected.(pid)) then
              failure :=
                Some
                  (Fmt.str "P%d responded %a but the ghost log dictates %a"
                     pid
                     Fmt.(list ~sep:comma Value.pp)
                     results
                     Fmt.(list ~sep:comma Value.pp)
                     expected.(pid))
        | Some v ->
            failure := Some (Fmt.str "P%d decided non-list %a" pid Value.pp v)
        | None -> failure := Some (Fmt.str "P%d undecided at terminal" pid))
      node.Explorer.decided
  in
  let rec dfs node =
    let k = Explorer.key node in
    if Hashtbl.mem on_stack k then cyclic := true
    else if not (Hashtbl.mem seen k) then begin
      if Hashtbl.length seen >= max_states then truncated_search := true
      else begin
        Hashtbl.replace seen k ();
        Hashtbl.replace on_stack k ();
        if Explorer.is_terminal node then check_terminal node
        else
          List.iter (fun (_, succ) -> dfs succ) (Explorer.successors cfg node);
        Hashtbl.remove on_stack k
      end
    end
  in
  dfs (Explorer.initial cfg);
  {
    ok = !failure = None && (not !cyclic) && not !truncated_search;
    states = Hashtbl.length seen;
    terminals = !terminals;
    wait_free = (not !cyclic) && not !truncated_search;
    max_replay = !max_replay;
    max_visible_ops = !max_visible_ops;
    failure = !failure;
  }

(* Single-schedule run (for benchmarks): returns per-process responses
   and replay costs.  When causal tracing is enabled, each decoded
   fetch-and-cons is recorded as an invoke/complete pair with
   own_steps = 2 (fetch-and-cons + the destructive truncate — both
   shared-memory steps belong to the same abstract operation). *)
let run ?(max_steps = 1_000_000) ~target ~scripts ~schedule () =
  let cfg = config ~target ~scripts in
  let outcome =
    Runner.run ~max_steps ~procs:cfg.Explorer.procs ~env:cfg.Explorer.env
      ~schedule ()
  in
  if Wfs_obs.Causal.enabled () then begin
    let causal_obj = "sim.trunc/" ^ target.Object_spec.name in
    Wfs_obs.Causal.meta ~obj:causal_obj ~n:(Array.length scripts) ~bound:2;
    let pos = ref 0 in
    List.iter
      (fun (step : Runner.step) ->
        if Op.name step.Runner.op = "fetch-and-cons" then begin
          match Replay.decode_entry (Op.arg step.Runner.op) with
          | Replay.Op { pid; _ } ->
              (* sample on the op counter, issue ids only for traced
                 ops — mirrors the runtime's ticket-gated discipline *)
              if Wfs_obs.Causal.sampled !pos then begin
                let tr = Wfs_obs.Causal.issue () in
                Wfs_obs.Causal.invoke ~obj:causal_obj ~trace:tr ~pid;
                Wfs_obs.Causal.complete ~obj:causal_obj ~trace:tr ~pos:!pos
                  ~own_steps:2 ~help_rounds:0
              end;
              incr pos
          | Replay.State _ -> ()
        end)
      outcome.Runner.trace
  end;
  outcome
