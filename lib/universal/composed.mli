(** Theorem 26 end to end: consensus object → fetch-and-cons
    (Figure 4-5) → any sequential object (§4.1 log replay), composed and
    exhaustively verified. *)

open Wfs_spec
open Wfs_sim

(** The Figure 4-5 configuration over tagged invocations. *)
val config : scripts:Op.t list array -> Explorer.config

type verification = {
  ok : bool;
  states : int;
  terminals : int;
  failure : string option;
}

(** Explore every interleaving; the longest coherent view defines the
    linearization, and every process's replay-derived responses must
    match it. *)
val verify :
  ?max_states:int -> target:Object_spec.t -> scripts:Op.t list array -> unit ->
  verification

(** One schedule; returns the outcome plus (pid, seq, op, result)
    tuples. *)
val run :
  ?max_steps:int ->
  target:Object_spec.t ->
  scripts:Op.t list array ->
  schedule:Scheduler.t ->
  unit ->
  Runner.outcome * (int * int * Op.t * Value.t) list
