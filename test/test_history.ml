(* Histories, well-formedness and the linearizability checker. *)

open Wfs_spec
open Wfs_history

let inv pid obj op = Event.invoke ~pid ~obj op
let rsp pid obj res = Event.respond ~pid ~obj res

let reg_env =
  [ ("r", Registers.atomic ~name:"r" ~init:(Value.int 0)
            [ Value.int 0; Value.int 1; Value.int 2 ]) ]

let q_env = [ ("q", Queues.fifo ~name:"q" ~items:[ Value.int 1; Value.int 2 ] ()) ]

let test_well_formed () =
  let h =
    [
      inv 0 "r" Registers.read;
      inv 1 "r" (Registers.write (Value.int 1));
      rsp 0 "r" (Value.int 0);
      rsp 1 "r" Value.unit;
    ]
  in
  Alcotest.(check bool) "interleaved ok" true (History.well_formed h);
  let bad = [ inv 0 "r" Registers.read; inv 0 "r" Registers.read ] in
  Alcotest.(check bool) "double invoke" false (History.well_formed bad);
  let bad2 = [ rsp 0 "r" (Value.int 0) ] in
  Alcotest.(check bool) "response first" false (History.well_formed bad2)

let test_operations_extraction () =
  let h =
    [
      inv 0 "r" Registers.read;
      inv 1 "r" (Registers.write (Value.int 1));
      rsp 1 "r" Value.unit;
      rsp 0 "r" (Value.int 1);
      inv 1 "r" Registers.read;
    ]
  in
  let ops = History.operations h in
  Alcotest.(check int) "three operations" 3 (List.length ops);
  let pending = List.filter History.is_pending ops in
  Alcotest.(check int) "one pending" 1 (List.length pending)

let test_precedes () =
  let h =
    [
      inv 0 "r" Registers.read;
      rsp 0 "r" (Value.int 0);
      inv 1 "r" Registers.read;
      rsp 1 "r" (Value.int 0);
    ]
  in
  match History.operations h with
  | [ a; b ] ->
      Alcotest.(check bool) "a precedes b" true (History.precedes a b);
      Alcotest.(check bool) "b not precedes a" false (History.precedes b a)
  | _ -> Alcotest.fail "expected two operations"

(* A sequential history is linearizable iff responses match the spec. *)
let test_sequential_good () =
  let h =
    [
      inv 0 "r" (Registers.write (Value.int 1));
      rsp 0 "r" Value.unit;
      inv 0 "r" Registers.read;
      rsp 0 "r" (Value.int 1);
    ]
  in
  Alcotest.(check bool) "good" true (Linearizability.is_linearizable reg_env h)

let test_sequential_bad () =
  let h =
    [
      inv 0 "r" (Registers.write (Value.int 1));
      rsp 0 "r" Value.unit;
      inv 0 "r" Registers.read;
      rsp 0 "r" (Value.int 2);
    ]
  in
  Alcotest.(check bool) "bad read" false (Linearizability.is_linearizable reg_env h)

(* Overlapping operations may linearize in either order. *)
let test_overlap_reorders () =
  let h =
    [
      inv 0 "r" Registers.read;
      inv 1 "r" (Registers.write (Value.int 1));
      rsp 1 "r" Value.unit;
      rsp 0 "r" (Value.int 1);
    ]
  in
  Alcotest.(check bool)
    "read sees concurrent write" true
    (Linearizability.is_linearizable reg_env h);
  let h' =
    [
      inv 0 "r" Registers.read;
      inv 1 "r" (Registers.write (Value.int 1));
      rsp 1 "r" Value.unit;
      rsp 0 "r" (Value.int 0);
    ]
  in
  Alcotest.(check bool)
    "or misses it" true
    (Linearizability.is_linearizable reg_env h')

(* Real-time order must be respected: a read that starts after a write
   completed cannot miss it. *)
let test_realtime_respected () =
  let h =
    [
      inv 1 "r" (Registers.write (Value.int 1));
      rsp 1 "r" Value.unit;
      inv 0 "r" Registers.read;
      rsp 0 "r" (Value.int 0);
    ]
  in
  Alcotest.(check bool)
    "stale read rejected" false
    (Linearizability.is_linearizable reg_env h)

(* The paper's linearizability example shape: two concurrent deqs on a
   pre-loaded queue must take distinct items. *)
let test_queue_concurrent_deqs () =
  let preloaded =
    [
      ("q", Queues.fifo ~name:"q"
              ~initial:[ Value.int 1; Value.int 2 ]
              ~items:[ Value.int 1; Value.int 2 ] ());
    ]
  in
  let h which0 which1 =
    [
      inv 0 "q" Queues.deq;
      inv 1 "q" Queues.deq;
      rsp 0 "q" (Value.int which0);
      rsp 1 "q" (Value.int which1);
    ]
  in
  Alcotest.(check bool) "1/2 ok" true
    (Linearizability.is_linearizable preloaded (h 1 2));
  Alcotest.(check bool) "2/1 ok" true
    (Linearizability.is_linearizable preloaded (h 2 1));
  Alcotest.(check bool) "1/1 duplicates item" false
    (Linearizability.is_linearizable preloaded (h 1 1))

let test_pending_can_be_dropped () =
  let h = [ inv 0 "q" (Queues.enq (Value.int 1)) ] in
  Alcotest.(check bool) "pending enq ok" true
    (Linearizability.is_linearizable q_env h)

let test_pending_can_take_effect () =
  (* P0's enq never responds, but P1 dequeues the item: the pending enq
     must be linearized for the history to make sense. *)
  let h =
    [
      inv 0 "q" (Queues.enq (Value.int 1));
      inv 1 "q" Queues.deq;
      rsp 1 "q" (Value.int 1);
    ]
  in
  Alcotest.(check bool) "pending enq observed" true
    (Linearizability.is_linearizable q_env h)

let test_locality () =
  (* multi-object history: each object independently linearizable *)
  let env = reg_env @ q_env in
  let h =
    [
      inv 0 "r" (Registers.write (Value.int 1));
      inv 1 "q" (Queues.enq (Value.int 2));
      rsp 0 "r" Value.unit;
      rsp 1 "q" Value.unit;
      inv 0 "q" Queues.deq;
      rsp 0 "q" (Value.int 2);
      inv 1 "r" Registers.read;
      rsp 1 "r" (Value.int 1);
    ]
  in
  Alcotest.(check bool) "local check passes" true
    (Linearizability.is_linearizable env h)

let test_witness_is_legal () =
  let preloaded =
    Queues.fifo ~name:"q"
      ~initial:[ Value.int 1; Value.int 2 ]
      ~items:[ Value.int 1; Value.int 2 ] ()
  in
  let h =
    [
      inv 0 "q" Queues.deq;
      inv 1 "q" Queues.deq;
      rsp 0 "q" (Value.int 2);
      rsp 1 "q" (Value.int 1);
    ]
  in
  let verdict = Linearizability.check_object preloaded h in
  Alcotest.(check bool) "linearizable" true verdict.Linearizability.linearizable;
  match verdict.Linearizability.witness with
  | Some ops ->
      Alcotest.(check bool)
        "witness is a legal sequential history" true
        (History.check_sequential preloaded ops);
      Alcotest.(check (list int))
        "P1's deq linearizes first" [ 1; 0 ]
        (List.map (fun (o : History.operation) -> o.History.pid) ops)
  | None -> Alcotest.fail "expected witness"

(* qcheck: histories generated from random sequential executions are
   always linearizable, no matter how invocations/responses interleave. *)
let prop_sequential_executions_linearizable =
  QCheck2.Test.make
    ~name:"random sequential executions are linearizable" ~count:200
    QCheck2.Gen.(list_size (int_range 0 10) (int_range 0 100))
    (fun choices ->
      let spec =
        Queues.fifo ~name:"q" ~items:[ Value.int 1; Value.int 2 ] ()
      in
      let menu = Array.of_list spec.Object_spec.menu in
      (* run ops sequentially, attributing them alternately to 2 pids *)
      let _, events =
        List.fold_left
          (fun (state, events) c ->
            let op = menu.(c mod Array.length menu) in
            let pid = c mod 2 in
            let state', res = Object_spec.apply spec state op in
            ( state',
              rsp pid "q" res :: inv pid "q" op :: events ))
          (spec.Object_spec.init, [])
          choices
      in
      Linearizability.is_linearizable [ ("q", spec) ] (List.rev events))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sequential_executions_linearizable ]

let suite =
  [
    ( "history",
      [
        Alcotest.test_case "well-formedness" `Quick test_well_formed;
        Alcotest.test_case "operation extraction" `Quick
          test_operations_extraction;
        Alcotest.test_case "precedes" `Quick test_precedes;
      ] );
    ( "linearizability",
      [
        Alcotest.test_case "sequential good" `Quick test_sequential_good;
        Alcotest.test_case "sequential bad" `Quick test_sequential_bad;
        Alcotest.test_case "overlap reorders" `Quick test_overlap_reorders;
        Alcotest.test_case "real-time respected" `Quick test_realtime_respected;
        Alcotest.test_case "concurrent deqs" `Quick test_queue_concurrent_deqs;
        Alcotest.test_case "pending dropped" `Quick test_pending_can_be_dropped;
        Alcotest.test_case "pending observed" `Quick
          test_pending_can_take_effect;
        Alcotest.test_case "locality" `Quick test_locality;
        Alcotest.test_case "witness legality" `Quick test_witness_is_legal;
      ] );
    ("linearizability.properties", qsuite);
  ]

(* --- brute force cross-validation of the linearizability checker ---

   For tiny histories, linearizability can be decided by trying every
   permutation of the (completed) operations.  The search-based checker
   must agree with the brute force on randomly generated histories —
   both linearizable and non-linearizable ones. *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let brute_force_linearizable spec (h : Wfs_history.History.t) =
  let ops = Wfs_history.History.operations h in
  if List.exists Wfs_history.History.is_pending ops then
    invalid_arg "brute force handles complete histories only";
  let respects_realtime perm =
    (* in the permutation, if a really-precedes b then a comes first *)
    let arr = Array.of_list perm in
    let n = Array.length arr in
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        (* arr.(j) is before arr.(i); violated if arr.(i) precedes arr.(j) *)
        if Wfs_history.History.precedes arr.(i) arr.(j) then ok := false
      done
    done;
    !ok
  in
  List.exists
    (fun perm ->
      respects_realtime perm
      && Wfs_history.History.check_sequential spec perm)
    (permutations ops)

(* random complete histories over a 2-item queue: pick random intervals
   and random (possibly wrong) results *)
let gen_history =
  let open QCheck2.Gen in
  let spec () = Queues.fifo ~name:"q" ~items:[ Value.int 1; Value.int 2 ] () in
  let event_choices =
    list_size (int_range 0 5)
      (triple (int_range 0 1) (int_range 0 2) (int_range 0 3))
  in
  map
    (fun choices ->
      let spec = spec () in
      let menu = Array.of_list spec.Object_spec.menu in
      (* build per-process op lists, then interleave with random results *)
      let events = ref [] in
      let pending = [| None; None |] in
      let results =
        [| Value.int 1; Value.int 2; Queues.empty_result; Value.unit |]
      in
      List.iter
        (fun (pid, opi, resi) ->
          match pending.(pid) with
          | None ->
              let op = menu.(opi mod Array.length menu) in
              pending.(pid) <- Some op;
              events := inv pid "q" op :: !events
          | Some _ ->
              pending.(pid) <- None;
              events := rsp pid "q" results.(resi) :: !events)
        choices;
      (* close any dangling invocations so the history is complete *)
      Array.iteri
        (fun pid p ->
          match p with
          | Some _ -> events := rsp pid "q" (Value.unit) :: !events
          | None -> ())
        pending;
      List.rev !events)
    event_choices

let prop_checker_matches_brute_force =
  QCheck2.Test.make ~name:"checker agrees with brute force" ~count:300
    gen_history (fun h ->
      let spec = Queues.fifo ~name:"q" ~items:[ Value.int 1; Value.int 2 ] () in
      (not (Wfs_history.History.well_formed h))
      || Linearizability.is_linearizable [ ("q", spec) ] h
         = brute_force_linearizable spec h)

let brute_suite =
  ("linearizability.brute-force",
   List.map QCheck_alcotest.to_alcotest [ prop_checker_matches_brute_force ])

let suite = suite @ [ brute_suite ]
