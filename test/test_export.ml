(* Tests for the OpenMetrics exposition (Wfs_obs.Export), the sampler
   ring (Wfs_obs.Sampler), and the humanized units (Wfs_obs.Units).

   Everything runs against private registries so the process-wide
   default registry (exercised concurrently by other suites) never
   perturbs a value under test. *)

module Metrics = Wfs_obs.Metrics
module Export = Wfs_obs.Export
module Sampler = Wfs_obs.Sampler
module Units = Wfs_obs.Units

(* --- name and label encoding --- *)

let test_name_mapping () =
  Alcotest.(check string)
    "dots become underscores" "wfs_explorer_states"
    (Export.family_of_registry_name "explorer.states");
  Alcotest.(check string)
    "hostile characters sanitized" "wfs_pool_shard_job_ns_p99"
    (Export.family_of_registry_name "pool.shard/job-ns p99");
  Alcotest.(check string)
    "colons survive (OpenMetrics allows them)" "wfs_a:b"
    (Export.family_of_registry_name "a:b")

let test_label_escaping () =
  let cases =
    [ "plain"; "with \"quotes\""; "back\\slash"; "new\nline"; "\\"; "a\\" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "round trip %S" s)
        s
        (Export.unescape_label_value (Export.escape_label_value s)))
    cases;
  Alcotest.(check string)
    "escape is exposition-safe" "a\\\\b\\\"c\\nd"
    (Export.escape_label_value "a\\b\"c\nd")

let test_split_labels () =
  Alcotest.(check (pair string (list (pair string string))))
    "labeled name splits" ("pool.shard.states", [ ("shard", "3") ])
    (Export.split_labels "pool.shard.states{shard=3}");
  Alcotest.(check (pair string (list (pair string string))))
    "multiple labels" ("x", [ ("a", "1"); ("b", "2") ])
    (Export.split_labels "x{a=1,b=2}");
  Alcotest.(check (pair string (list (pair string string))))
    "unlabeled name untouched" ("explorer.states", [])
    (Export.split_labels "explorer.states")

(* --- exposition shape --- *)

let test_counter_total_suffix_and_eof () =
  let r = Metrics.create () in
  Metrics.Counter.add (Metrics.Counter.make ~registry:r "a.count") 7;
  Metrics.Gauge.set (Metrics.Gauge.make ~registry:r "a.level") 3;
  let text = Export.to_openmetrics ~registry:r () in
  let has needle =
    let n = String.length text and m = String.length needle in
    let rec go i =
      i + m <= n && (String.sub text i m = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "TYPE counter line" true
    (has "# TYPE wfs_a_count counter\n");
  Alcotest.(check bool) "counter sample gets _total" true
    (has "wfs_a_count_total 7\n");
  Alcotest.(check bool) "gauge sample has no suffix" true
    (has "wfs_a_level 3\n");
  Alcotest.(check bool) "ends with # EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n")

let test_deterministic_ordering () =
  (* same instruments registered in opposite orders must serialize
     identically: the dump is name-sorted, families appear in sorted
     first-appearance order *)
  let build names =
    let r = Metrics.create () in
    List.iter
      (fun n -> Metrics.Counter.add (Metrics.Counter.make ~registry:r n) 1)
      names;
    Export.to_openmetrics ~registry:r ()
  in
  let names = [ "z.last"; "a.first"; "m.mid{shard=1}"; "m.mid{shard=0}" ] in
  Alcotest.(check string)
    "registration order invisible"
    (build names)
    (build (List.rev names))

let test_kind_clash_dropped () =
  (* "a.b" and "a_b" collide on the family name; the first kind wins and
     the stray entry is dropped so the exposition stays parseable *)
  let r = Metrics.create () in
  Metrics.Counter.add (Metrics.Counter.make ~registry:r "a.b") 5;
  Metrics.Gauge.set (Metrics.Gauge.make ~registry:r "a_b") 9;
  let text = Export.to_openmetrics ~registry:r () in
  let samples = Export.parse text in
  Alcotest.(check (option (float 0.0)))
    "winning kind present" (Some 5.0)
    (Export.find samples "wfs_a_b_total" []);
  Alcotest.(check int) "stray entry dropped" 1 (List.length samples)

(* --- histogram expansion --- *)

let test_histogram_cumulative_buckets () =
  let r = Metrics.create () in
  let h = Metrics.Histogram.make ~registry:r "lat" in
  List.iter (Metrics.Histogram.observe h) [ 1; 1; 3; 100; 5_000 ];
  let samples = Export.parse (Export.to_openmetrics ~registry:r ()) in
  let buckets =
    List.filter_map
      (fun s ->
        if s.Export.s_name = "wfs_lat_bucket" then
          match List.assoc_opt "le" s.Export.s_labels with
          | Some "+Inf" -> Some (infinity, s.Export.s_value)
          | Some le -> Some (float_of_string le, s.Export.s_value)
          | None -> None
        else None)
      samples
  in
  Alcotest.(check bool) "has buckets" true (List.length buckets >= 2);
  (* le strictly increasing, cumulative counts non-decreasing *)
  let rec monotone = function
    | (le1, c1) :: ((le2, c2) :: _ as rest) ->
        le1 < le2 && c1 <= c2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "le and counts monotone" true (monotone buckets);
  let count = Export.find samples "wfs_lat_count" [] in
  let inf = List.assoc_opt infinity (List.map (fun (a, b) -> (a, b)) buckets) in
  Alcotest.(check (option (float 0.0))) "+Inf bucket equals _count" count inf;
  Alcotest.(check (option (float 0.0)))
    "count is the number of observations" (Some 5.0) count;
  Alcotest.(check (option (float 0.0)))
    "sum matches" (Some (float_of_int (1 + 1 + 3 + 100 + 5_000)))
    (Export.find samples "wfs_lat_sum" [])

let test_empty_histogram () =
  let r = Metrics.create () in
  ignore (Metrics.Histogram.make ~registry:r "lat");
  let samples = Export.parse (Export.to_openmetrics ~registry:r ()) in
  Alcotest.(check (option (float 0.0)))
    "+Inf bucket present at zero" (Some 0.0)
    (Export.find samples "wfs_lat_bucket" [ ("le", "+Inf") ]);
  Alcotest.(check (option (float 0.0)))
    "zero count" (Some 0.0)
    (Export.find samples "wfs_lat_count" [])

(* --- round trip vs the JSON snapshot --- *)

let test_round_trip_matches_snapshot () =
  let r = Metrics.create () in
  Metrics.Counter.add (Metrics.Counter.make ~registry:r "c.plain") 42;
  Metrics.Counter.add
    (Metrics.Counter.make ~registry:r
       (Metrics.labeled "c.sharded" [ ("shard", "7") ]))
    13;
  Metrics.Gauge.set (Metrics.Gauge.make ~registry:r "g") (-4);
  Metrics.Fgauge.set (Metrics.Fgauge.make ~registry:r "f") 0.375;
  let h = Metrics.Histogram.make ~registry:r "h" in
  List.iter (Metrics.Histogram.observe h) [ 2; 9 ];
  let samples = Export.parse (Export.to_openmetrics ~registry:r ()) in
  (* every dumped value is recoverable from the parsed exposition *)
  List.iter
    (fun (name, dumped) ->
      let base, labels = Export.split_labels name in
      let fam = Export.family_of_registry_name base in
      match dumped with
      | Metrics.D_counter n ->
          Alcotest.(check (option (float 0.0)))
            name
            (Some (float_of_int n))
            (Export.find samples (fam ^ "_total") labels)
      | Metrics.D_gauge n ->
          Alcotest.(check (option (float 0.0)))
            name
            (Some (float_of_int n))
            (Export.find samples fam labels)
      | Metrics.D_fgauge f ->
          Alcotest.(check (option (float 1e-12)))
            name (Some f)
            (Export.find samples fam labels)
      | Metrics.D_histogram { d_count; d_sum; _ } ->
          Alcotest.(check (option (float 0.0)))
            (name ^ " count")
            (Some (float_of_int d_count))
            (Export.find samples (fam ^ "_count") labels);
          Alcotest.(check (option (float 0.0)))
            (name ^ " sum")
            (Some (float_of_int d_sum))
            (Export.find samples (fam ^ "_sum") labels))
    (Metrics.dump ~registry:r ())

let prop_label_value_survives_exposition =
  QCheck2.Test.make ~name:"arbitrary label values survive render+parse"
    ~count:200
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 20))
    (fun s ->
      (* values are arbitrary bytes; newline leans on the \n escape,
         everything else must pass through the quoted value untouched *)
      let text =
        "# TYPE wfs_m counter\nwfs_m_total{k=\""
        ^ Export.escape_label_value s
        ^ "\"} 3\n# EOF\n"
      in
      Export.find (Export.parse text) "wfs_m_total" [ ("k", s) ] = Some 3.0)

let prop_counter_value_round_trips =
  QCheck2.Test.make ~name:"counter values round-trip exactly" ~count:200
    QCheck2.Gen.(int_range 0 max_int)
    (fun n ->
      let r = Metrics.create () in
      Metrics.Counter.add (Metrics.Counter.make ~registry:r "n") n;
      let samples = Export.parse (Export.to_openmetrics ~registry:r ()) in
      match Export.find samples "wfs_n_total" [] with
      | Some f -> Float.to_int f = n || float_of_int n = f
      | None -> false)

(* --- sampler ring --- *)

let test_sampler_ring_and_file_sink () =
  let r = Metrics.create () in
  let c = Metrics.Counter.make ~registry:r "ticks" in
  let out = Filename.temp_file "wfs_metrics" ".prom" in
  let s =
    Sampler.start ~registry:r ~interval_ms:5 ~capacity:3 ~out_file:out ()
  in
  for _ = 1 to 10 do
    Metrics.Counter.add c 10;
    Unix.sleepf 0.005
  done;
  Sampler.stop s;
  let ring = Sampler.ring s in
  Alcotest.(check bool) "ring non-empty" true (ring <> []);
  Alcotest.(check bool) "capacity respected" true (List.length ring <= 3);
  let rec newest_first = function
    | a :: (b :: _ as rest) ->
        a.Sampler.at_ns >= b.Sampler.at_ns && newest_first rest
    | _ -> true
  in
  Alcotest.(check bool) "newest first" true (newest_first ring);
  (* stop takes a final sample, so the newest snap has the final value *)
  (match Sampler.latest s with
  | Some snap ->
      Alcotest.(check bool) "final value sampled" true
        (List.assoc_opt "ticks" snap.Sampler.values
        = Some (Metrics.D_counter 100))
  | None -> Alcotest.fail "no snapshot");
  (* the file sink holds a complete, parseable exposition of the end *)
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  Alcotest.(check (option (float 0.0)))
    "file sink has final value" (Some 100.0)
    (Export.find (Export.parse text) "wfs_ticks_total" [])

(* --- HTTP response framing ---

   Scrapers hang on /metrics for exactly two reasons: no Content-Length
   (the reader waits for EOF that keep-alive never sends) or a response
   fired before the request finished arriving (the close can turn into
   a RST that discards the body).  The framing is a pure function, so
   check it byte-for-byte. *)

let test_http_response_framing () =
  let body = "# TYPE wfs_ops counter\nwfs_ops_total 42\n# EOF\n" in
  let resp = Sampler.http_response_of_body body in
  Alcotest.(check bool)
    "status line" true
    (String.length resp > 17 && String.sub resp 0 17 = "HTTP/1.1 200 OK\r\n");
  let header_end =
    let rec find i =
      if i + 4 > String.length resp then Alcotest.fail "no CRLFCRLF"
      else if String.sub resp i 4 = "\r\n\r\n" then i
      else find (i + 1)
    in
    find 0
  in
  let headers = String.sub resp 0 header_end in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "explicit Content-Length" true
    (contains headers
       (Printf.sprintf "Content-Length: %d" (String.length body)));
  Alcotest.(check bool)
    "Connection: close" true
    (contains headers "Connection: close");
  Alcotest.(check string) "body verbatim after the blank line" body
    (String.sub resp (header_end + 4) (String.length resp - header_end - 4))

let test_http_request_complete () =
  Alcotest.(check bool)
    "bare GET line incomplete" false
    (Sampler.request_complete "GET /metrics HTTP/1.1\r\n");
  Alcotest.(check bool)
    "split terminator incomplete" false
    (Sampler.request_complete "GET /metrics HTTP/1.1\r\nHost: x\r\n\r");
  Alcotest.(check bool)
    "terminated request complete" true
    (Sampler.request_complete "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  Alcotest.(check bool)
    "terminator anywhere suffices" true
    (Sampler.request_complete "GET / HTTP/1.1\r\n\r\ntrailing");
  Alcotest.(check bool) "empty incomplete" false (Sampler.request_complete "")

(* and end-to-end once over a real socket: curl-style GET, one read to
   EOF, body length must equal the advertised Content-Length *)
let test_http_endpoint_round_trip () =
  let r = Metrics.create () in
  Metrics.Counter.add (Metrics.Counter.make ~registry:r "served") 7;
  let port = 18080 + (Unix.getpid () mod 1000) in
  match Sampler.start ~registry:r ~interval_ms:1000 ~port () with
  | exception Unix.Unix_error _ ->
      (* port collision on a busy CI box: framing is covered above *)
      ()
  | s ->
      Fun.protect
        ~finally:(fun () -> Sampler.stop s)
        (fun () ->
          let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close sock with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect sock
                (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              let req = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n" in
              ignore (Unix.write_substring sock req 0 (String.length req));
              let buf = Bytes.create 65536 in
              let got = Buffer.create 1024 in
              let rec drain () =
                match Unix.read sock buf 0 (Bytes.length buf) with
                | 0 -> ()
                | n ->
                    Buffer.add_subbytes got buf 0 n;
                    drain ()
              in
              drain ();
              let resp = Buffer.contents got in
              let body =
                let rec find i =
                  if i + 4 > String.length resp then
                    Alcotest.fail "no header terminator in response"
                  else if String.sub resp i 4 = "\r\n\r\n" then
                    String.sub resp (i + 4) (String.length resp - i - 4)
                  else find (i + 1)
                in
                find 0
              in
              Alcotest.(check string)
                "response framing matches the pure function"
                (Sampler.http_response_of_body body)
                resp;
              Alcotest.(check (option (float 0.0)))
                "body is the exposition" (Some 7.0)
                (Export.find (Export.parse body) "wfs_served_total" [])))

(* --- humanized units --- *)

let test_units () =
  Alcotest.(check string) "millions" "12.3M" (Units.si 12_300_000.);
  Alcotest.(check string) "hundreds of k" "123k" (Units.si 123_400.);
  Alcotest.(check string) "small integers bare" "999" (Units.si 999.);
  Alcotest.(check string) "giga" "1.2G" (Units.si 1_200_000_000.);
  Alcotest.(check string) "rate suffix" "2.5k/s" (Units.rate 2_500.);
  Alcotest.(check string) "nanoseconds" "842ns" (Units.ns 842);
  Alcotest.(check string) "microseconds" "1.5us" (Units.ns 1_500);
  Alcotest.(check string) "milliseconds" "12.0ms" (Units.ns 12_000_000);
  Alcotest.(check string) "seconds" "1.25s" (Units.ns 1_250_000_000);
  Alcotest.(check string) "percent" "12.3%" (Units.percent 0.123)

let suite =
  [
    ( "obs.export",
      [
        Alcotest.test_case "registry name -> family mapping" `Quick
          test_name_mapping;
        Alcotest.test_case "label value escaping round trip" `Quick
          test_label_escaping;
        Alcotest.test_case "labeled registry names split" `Quick
          test_split_labels;
        Alcotest.test_case "counter _total suffix and # EOF" `Quick
          test_counter_total_suffix_and_eof;
        Alcotest.test_case "deterministic ordering" `Quick
          test_deterministic_ordering;
        Alcotest.test_case "family kind clash drops the stray" `Quick
          test_kind_clash_dropped;
        Alcotest.test_case "histogram buckets cumulative, +Inf = count"
          `Quick test_histogram_cumulative_buckets;
        Alcotest.test_case "empty histogram still well-formed" `Quick
          test_empty_histogram;
        Alcotest.test_case "parse recovers every dumped value" `Quick
          test_round_trip_matches_snapshot;
        QCheck_alcotest.to_alcotest prop_label_value_survives_exposition;
        QCheck_alcotest.to_alcotest prop_counter_value_round_trips;
      ] );
    ( "obs.sampler",
      [
        Alcotest.test_case "ring capacity, order, final sample, file sink"
          `Quick test_sampler_ring_and_file_sink;
        Alcotest.test_case "HTTP response framing" `Quick
          test_http_response_framing;
        Alcotest.test_case "HTTP request termination" `Quick
          test_http_request_complete;
        Alcotest.test_case "HTTP endpoint round trip" `Quick
          test_http_endpoint_round_trip;
      ] );
    ( "obs.units",
      [ Alcotest.test_case "humanized magnitudes" `Quick test_units ] );
  ]
