(* Differential tests for the engine overhaul: the interned fused-DP
   explorer and the interned solver strategy table must be
   observationally identical to their legacy reference paths, on every
   protocol in the registry and on the canonical solver instances.
   Also: the symmetry quotient agrees with the full graph on every
   verdict, and the interner's properties hold under qcheck. *)

open Wfs_spec
open Wfs_sim
open Wfs_consensus
open Wfs_hierarchy

let value = Alcotest.testable Value.pp Value.equal

(* --- explorer: fast engine vs legacy reference --- *)

(* Terminals are reported as a set; compare them order-insensitively
   through their canonical encodings. *)
let terminal_encodings (stats : Explorer.stats) =
  List.sort Value.compare
    (List.map
       (fun (t : Explorer.terminal) ->
         Value.pair
           (Value.list
              (Array.to_list (Array.map Value.of_option t.Explorer.decisions)))
           (Value.pair
              (Value.int t.Explorer.who_stepped)
              (Value.int t.Explorer.who_crashed)))
       stats.Explorer.terminals)

let truncation_str = function
  | None -> "none"
  | Some Explorer.Budget_states -> "states"
  | Some Explorer.Budget_depth -> "depth"

let check_stats_equal name (a : Explorer.stats) (b : Explorer.stats) =
  Alcotest.(check int)
    (name ^ ": states") a.Explorer.states b.Explorer.states;
  Alcotest.(check bool)
    (name ^ ": cyclic") a.Explorer.cyclic b.Explorer.cyclic;
  Alcotest.(check (option (pair int string)))
    (name ^ ": stuck") a.Explorer.stuck b.Explorer.stuck;
  Alcotest.(check bool)
    (name ^ ": truncated") a.Explorer.truncated b.Explorer.truncated;
  Alcotest.(check string)
    (name ^ ": truncation cause")
    (truncation_str a.Explorer.truncation)
    (truncation_str b.Explorer.truncation);
  Alcotest.(check bool)
    (name ^ ": wait_free")
    (Explorer.wait_free a) (Explorer.wait_free b);
  Alcotest.(check (option (array int)))
    (name ^ ": step_bounds") a.Explorer.step_bounds b.Explorer.step_bounds;
  Alcotest.(check (list value))
    (name ^ ": terminals")
    (terminal_encodings a) (terminal_encodings b);
  Alcotest.(check (list (pair int value)))
    (name ^ ": invalid_decisions")
    a.Explorer.invalid_decisions b.Explorer.invalid_decisions

(* Every sound registry protocol, at every size it supports in {2, 3},
   fully explored and under each budget kind: the budgets exercise the
   engines' truncation-order agreement, not just the happy path. *)
let registry_protocols () =
  List.concat_map
    (fun (e : Registry.entry) ->
      List.filter_map
        (fun n ->
          Option.map
            (fun p -> (Fmt.str "%s n=%d" e.Registry.key n, p))
            (e.Registry.build ~n))
        [ 2; 3 ])
    Registry.entries

let test_explorer_differential () =
  List.iter
    (fun (name, (p : Protocol.t)) ->
      let run ?max_states ?max_depth legacy =
        Explorer.explore ?max_states ?max_depth ~legacy p.Protocol.config
      in
      check_stats_equal name (run true) (run false);
      check_stats_equal
        (name ^ " [max_states=40]")
        (run ~max_states:40 true) (run ~max_states:40 false);
      check_stats_equal
        (name ^ " [max_depth=3]")
        (run ~max_depth:3 true) (run ~max_depth:3 false))
    (registry_protocols ())

let test_verify_differential () =
  List.iter
    (fun (name, p) ->
      let a = Protocol.verify ~legacy:true p in
      let b = Protocol.verify p in
      Alcotest.(check bool)
        (name ^ ": agreement") a.Protocol.agreement b.Protocol.agreement;
      Alcotest.(check bool)
        (name ^ ": validity") a.Protocol.validity b.Protocol.validity;
      Alcotest.(check bool)
        (name ^ ": wait_free") a.Protocol.wait_free b.Protocol.wait_free;
      Alcotest.(check int) (name ^ ": states") a.Protocol.states b.Protocol.states;
      Alcotest.(check (list value))
        (name ^ ": decisions_seen")
        a.Protocol.decisions_seen b.Protocol.decisions_seen)
    (registry_protocols ())

(* --- symmetry quotient vs full graph ---

   Only legal for identical pid-independent programs; verdicts must
   agree while the quotient explores no more states than the full
   graph. *)

(* Everybody races a test-and-set and decides from the response alone. *)
let symmetric_tas_config n =
  let proc pid =
    Process.make ~pid ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:"t" Registers.tas (fun res ->
                Process.at 1 ~data:res)
        | 1 ->
            Process.decide
              (if Value.equal (Process.data local) (Value.int 0) then
                 Value.int 0
               else Value.int 1)
        | _ -> assert false)
  in
  {
    Explorer.procs = Array.init n proc;
    env = Env.make [ ("t", Zoo.test_and_set ()) ];
  }

(* Everybody spins on a register nobody writes: a symmetric cycle. *)
let symmetric_spin_config n =
  let proc pid =
    Process.make ~pid ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:"r" Registers.read (fun res ->
                if Value.is_bottom res then Process.at 0
                else Process.at 1 ~data:res)
        | 1 -> Process.decide (Process.data local)
        | _ -> assert false)
  in
  {
    Explorer.procs = Array.init n proc;
    env =
      Env.make
        [ ("r", Registers.atomic ~name:"r" ~init:Value.bottom [ Value.int 1 ]) ];
  }

let check_symmetry_agrees name config =
  let full = Explorer.explore config in
  let quot = Explorer.explore ~symmetry:true config in
  Alcotest.(check bool)
    (name ^ ": cyclic agrees") full.Explorer.cyclic quot.Explorer.cyclic;
  Alcotest.(check bool)
    (name ^ ": wait_free agrees")
    (Explorer.wait_free full) (Explorer.wait_free quot);
  (* Orbit collapsing permutes pid labels along quotient paths, so the
     per-process bounds are a sound over-approximation, not an exact
     match: both must exist (or not) together, and the quotient's worst
     case must dominate the true worst case. *)
  (match (full.Explorer.step_bounds, quot.Explorer.step_bounds) with
  | None, None -> ()
  | Some fb, Some qb ->
      let max_of = Array.fold_left max 0 in
      Alcotest.(check bool)
        (name ^ ": quotient bounds dominate")
        true
        (max_of qb >= max_of fb)
  | Some _, None | None, Some _ ->
      Alcotest.fail (name ^ ": step_bounds presence disagrees"));
  Alcotest.(check bool)
    (name ^ ": quotient no larger") true
    (quot.Explorer.states <= full.Explorer.states);
  (full.Explorer.states, quot.Explorer.states)

let test_symmetry () =
  List.iter
    (fun n ->
      let full, quot =
        check_symmetry_agrees
          (Fmt.str "sym-tas n=%d" n)
          (symmetric_tas_config n)
      in
      if n >= 3 then
        Alcotest.(check bool)
          (Fmt.str "sym-tas n=%d: quotient strictly smaller" n)
          true (quot < full);
      ignore
        (check_symmetry_agrees
           (Fmt.str "sym-spin n=%d" n)
           (symmetric_spin_config n)))
    [ 2; 3 ]

(* --- symmetry quotient combined with a crash budget ---

   Crash transitions are symmetric too (any orbit member may crash), so
   the quotient remains sound under fault injection.  The legacy engine
   has no symmetry support (the flag is documented as ignored), so the
   reference comparison is two-legged: fast = legacy exactly on the
   full crash-augmented graph, and the crash-augmented quotient agrees
   with that reference graph on every verdict. *)

let test_symmetry_with_crashes () =
  List.iter
    (fun n ->
      List.iter
        (fun (cname, config) ->
          let name = Fmt.str "%s n=%d crashes=1" cname n in
          let full = Explorer.explore ~crashes:1 config in
          (* fast vs legacy on the full crash-augmented graph *)
          check_stats_equal
            (name ^ " [full]")
            (Explorer.explore ~legacy:true ~crashes:1 config)
            full;
          (* crash-augmented quotient vs the full graph *)
          let quot = Explorer.explore ~symmetry:true ~crashes:1 config in
          Alcotest.(check bool)
            (name ^ ": cyclic agrees") full.Explorer.cyclic
            quot.Explorer.cyclic;
          Alcotest.(check bool)
            (name ^ ": wait_free agrees")
            (Explorer.wait_free full) (Explorer.wait_free quot);
          Alcotest.(check bool)
            (name ^ ": quotient no larger") true
            (quot.Explorer.states <= full.Explorer.states);
          (match (full.Explorer.step_bounds, quot.Explorer.step_bounds) with
          | None, None -> ()
          | Some fb, Some qb ->
              let max_of = Array.fold_left max 0 in
              Alcotest.(check bool)
                (name ^ ": quotient bounds dominate")
                true
                (max_of qb >= max_of fb)
          | Some _, None | None, Some _ ->
              Alcotest.fail (name ^ ": step_bounds presence disagrees"));
          if n >= 3 then
            Alcotest.(check bool)
              (name ^ ": quotient strictly smaller") true
              (quot.Explorer.states < full.Explorer.states))
        [
          ("sym-tas", symmetric_tas_config n);
          ("sym-spin", symmetric_spin_config n);
        ])
    [ 2; 3 ]

(* --- solver: interned view table vs raw (pid, view) keys --- *)

let action_str a = Fmt.str "%a" Solver.pp_action a

let assignment_sig (a : Solver.assignment) =
  Fmt.str "P%d @ %a -> %s" a.Solver.pid Value.pp a.Solver.view
    (action_str a.Solver.chosen)

let verdict_sig = function
  | Solver.Unsolvable -> [ "UNSOLVABLE" ]
  | Solver.Out_of_budget { nodes } -> [ Fmt.str "BUDGET %d" nodes ]
  | Solver.Solvable assignments ->
      "SOLVABLE" :: List.sort String.compare (List.map assignment_sig assignments)

let check_solver_differential name inst =
  let v_legacy, n_legacy =
    Solver.solve_with_stats ~intern_views:false inst
  in
  let v_interned, n_interned = Solver.solve_with_stats inst in
  Alcotest.(check (list string))
    (name ^ ": verdict + strategy")
    (verdict_sig v_legacy) (verdict_sig v_interned);
  Alcotest.(check int) (name ^ ": nodes") n_legacy n_interned

let test_solver_differential () =
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  let queue ?(initial = []) () =
    Queues.fifo ~name:"q" ~initial ~items:[ Value.str "a"; Value.str "b" ] ()
  in
  (* Theorem 2: registers cannot solve 2-consensus. *)
  check_solver_differential "T2 register n=2 d=2"
    (Solver.of_spec ~n:2 ~depth:2 reg);
  (* Theorem 9: a pre-loaded queue solves 2-consensus. *)
  check_solver_differential "T9 queue n=2 d=2"
    (Solver.of_spec ~n:2 ~depth:2
       (queue ~initial:[ Value.str "a"; Value.str "b" ] ()));
  (* Theorem 11: queues cannot solve 3-consensus. *)
  check_solver_differential "T11 queue n=3 d=1"
    (Solver.of_spec ~n:3 ~depth:1
       (queue ~initial:[ Value.str "a"; Value.str "b" ] ()))

(* --- interner and full-depth hash properties --- *)

let rec deep_copy = function
  | Value.Unit -> Value.unit
  | Value.Bool b -> Value.bool b
  | Value.Int i -> Value.int i
  | Value.Str s -> Value.str (String.init (String.length s) (String.get s))
  | Value.Pair (a, b) -> Value.pair (deep_copy a) (deep_copy b)
  | Value.List vs -> Value.list (List.map deep_copy vs)

let prop_intern_iff_equal =
  QCheck2.Test.make ~name:"intern ids coincide iff Value.equal" ~count:300
    (QCheck2.Gen.pair Test_value.value_gen Test_value.value_gen)
    (fun (a, b) ->
      let t = Intern.create () in
      (Intern.intern t a = Intern.intern t b) = Value.equal a b)

let prop_intern_copy_stable =
  QCheck2.Test.make ~name:"structural copies intern to the same id"
    ~count:300 Test_value.value_gen (fun v ->
      let t = Intern.create () in
      Intern.intern t v = Intern.intern t (deep_copy v))

let prop_intern_roundtrip =
  QCheck2.Test.make ~name:"Intern.value inverts intern" ~count:300
    Test_value.value_gen (fun v ->
      let t = Intern.create () in
      Value.equal (Intern.value t (Intern.intern t v)) v)

let prop_hash_full_respects_equal =
  QCheck2.Test.make ~name:"hash_full agrees on structural copies"
    ~count:500 Test_value.value_gen (fun v ->
      Value.hash_full v = Value.hash_full (deep_copy v))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_intern_iff_equal;
      prop_intern_copy_stable;
      prop_intern_roundtrip;
      prop_hash_full_respects_equal;
    ]

let suite =
  [
    ( "engine.differential",
      [
        Alcotest.test_case "explorer: legacy = fast on registry" `Quick
          test_explorer_differential;
        Alcotest.test_case "verify: legacy = fast reports" `Quick
          test_verify_differential;
        Alcotest.test_case "symmetry quotient agrees" `Quick test_symmetry;
        Alcotest.test_case "symmetry quotient under crash faults" `Quick
          test_symmetry_with_crashes;
        Alcotest.test_case "solver: raw = interned views" `Quick
          test_solver_differential;
      ] );
    ("engine.intern", qsuite);
  ]
