(* Tests for the observability layer (Wfs_obs): JSON, metrics, tracing,
   counterexample export/replay, and the explorer's metric feed. *)

open Wfs_spec
open Wfs_sim
open Wfs_consensus
module Json = Wfs_obs.Json
module Metrics = Wfs_obs.Metrics
module Trace = Wfs_obs.Trace
module Counterexample = Wfs_obs.Counterexample

let value = Alcotest.testable Value.pp Value.equal

let json =
  Alcotest.testable
    (fun ppf j -> Fmt.string ppf (Json.to_string j))
    (fun a b -> String.equal (Json.to_string a) (Json.to_string b))

(* --- JSON --- *)

let test_json_round_trip () =
  let j =
    Json.obj
      [
        ("null", Json.null);
        ("bools", Json.list [ Json.bool true; Json.bool false ]);
        ("int", Json.int (-42));
        ("float", Json.float 1.5);
        ("str", Json.str "hello");
        ("nested", Json.obj [ ("empty", Json.list []) ]);
      ]
  in
  Alcotest.check json "round trip" j (Json.of_string (Json.to_string j));
  Alcotest.check json "pretty round trip" j
    (Json.of_string (Json.to_string_pretty j))

let test_json_escaping () =
  let s = "quote\" backslash\\ newline\n tab\t ctrl\x01 unicode\xc3\xa9" in
  let j = Json.str s in
  (match Json.of_string (Json.to_string j) with
  | Json.Str s' -> Alcotest.(check string) "escaped string survives" s s'
  | _ -> Alcotest.fail "expected string");
  Alcotest.(check bool)
    "control char escaped" true
    (let rendered = Json.to_string j in
     not (String.contains rendered '\x01'))

let test_json_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.float Float.nan));
  Alcotest.(check string)
    "infinity is null" "null"
    (Json.to_string (Json.float Float.infinity));
  (* a float that happens to be integral still reads back as a number *)
  (match Json.of_string (Json.to_string (Json.float 3.0)) with
  | Json.Float f -> Alcotest.(check (float 0.0)) "3.0" 3.0 f
  | Json.Int i -> Alcotest.(check int) "3" 3 i
  | _ -> Alcotest.fail "expected number");
  match Json.of_string "1e3" with
  | Json.Float f -> Alcotest.(check (float 0.0)) "1e3" 1000.0 f
  | _ -> Alcotest.fail "expected float"

let test_json_parse_errors () =
  let raises s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.fail (Fmt.str "expected Parse_error on %S" s)
  in
  raises "";
  raises "{";
  raises "[1,]";
  raises "{\"a\":1} trailing";
  raises "'single'"

let test_json_accessors () =
  let j = Json.of_string {|{"a": 1, "b": [2.5], "c": "s"}|} in
  Alcotest.(check (option int)) "member a" (Some 1)
    (Option.bind (Json.member "a" j) Json.to_int);
  Alcotest.(check (option (float 0.0)))
    "number of int" (Some 1.0)
    (Option.bind (Json.member "a" j) Json.to_number);
  Alcotest.(check (option string))
    "member c" (Some "s")
    (Option.bind (Json.member "c" j) Json.to_str);
  Alcotest.(check bool)
    "missing member" true
    (Json.member "zzz" j = None)

(* --- metrics --- *)

let test_metrics_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.Counter.make ~registry:r "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.Counter.value c);
  let g = Metrics.Gauge.make ~registry:r "g" in
  Metrics.Gauge.set g 7;
  Metrics.Gauge.set_max g 3;
  Alcotest.(check int) "set_max keeps high water" 7 (Metrics.Gauge.value g);
  Metrics.Gauge.set_max g 11;
  Alcotest.(check int) "set_max raises" 11 (Metrics.Gauge.value g);
  (* make is idempotent per name *)
  let c' = Metrics.Counter.make ~registry:r "c" in
  Metrics.Counter.incr c';
  Alcotest.(check int) "same underlying counter" 6 (Metrics.Counter.value c);
  (* a name cannot change kind *)
  (match Metrics.Gauge.make ~registry:r "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch");
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.Counter.value c);
  Alcotest.(check (option int))
    "lookup by name" (Some 0)
    (Metrics.counter_value ~registry:r "c")

let test_metrics_histogram_snapshot () =
  let r = Metrics.create () in
  let h = Metrics.Histogram.make ~registry:r "lat" in
  List.iter (Metrics.Histogram.observe h) [ 1; 2; 3; 100 ];
  Alcotest.(check int) "count" 4 (Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 106 (Metrics.Histogram.sum h);
  Alcotest.(check int) "max" 100 (Metrics.Histogram.max_value h);
  let snap = Metrics.snapshot ~registry:r () in
  let field k =
    Option.bind (Json.member "lat" snap) (fun l -> Json.member k l)
  in
  Alcotest.(check (option int)) "snapshot count" (Some 4)
    (Option.bind (field "count") Json.to_int);
  Alcotest.(check (option int)) "snapshot sum" (Some 106)
    (Option.bind (field "sum") Json.to_int);
  Alcotest.(check bool) "snapshot has buckets" true (field "buckets" <> None);
  (* the whole snapshot is parseable JSON *)
  let reparsed = Json.of_string (Metrics.snapshot_string ~registry:r ()) in
  Alcotest.check json "snapshot string parses" snap reparsed

let test_metrics_snapshot_sorted () =
  (* registration order must not leak into the snapshot: sorted keys
     keep BENCH_results.json diffs stable across runs *)
  let r = Metrics.create () in
  ignore (Metrics.Counter.make ~registry:r "zebra");
  ignore (Metrics.Gauge.make ~registry:r "alpha");
  ignore (Metrics.Counter.make ~registry:r "middle");
  match Metrics.snapshot ~registry:r () with
  | Json.Obj fields ->
      let keys = List.map fst fields in
      Alcotest.(check (list string))
        "snapshot keys sorted by name"
        (List.sort String.compare keys)
        keys;
      Alcotest.(check (list string))
        "all registered names present"
        [ "alpha"; "middle"; "zebra" ]
        (List.sort String.compare keys)
  | _ -> Alcotest.fail "snapshot should be an object"

let test_metrics_hot_flag () =
  Alcotest.(check bool) "off by default" false (Metrics.hot ());
  let inside = Metrics.with_hot (fun () -> Metrics.hot ()) in
  Alcotest.(check bool) "on inside with_hot" true inside;
  Alcotest.(check bool) "restored after" false (Metrics.hot ())

(* --- tracing --- *)

let test_trace_buffer_sink () =
  let sink, lines = Trace.buffer () in
  Trace.set_sink sink;
  Alcotest.(check bool) "enabled" true (Trace.enabled ());
  Trace.event ~pid:3 ~tags:[ ("k", Json.int 9) ] "tick";
  let result = Trace.with_span "work" (fun () -> 40 + 2) in
  Alcotest.(check int) "span passes result through" 42 result;
  Trace.close ();
  Alcotest.(check bool) "closed" false (Trace.enabled ());
  match lines () with
  | [ l1; l2 ] ->
      let j1 = Json.of_string l1 and j2 = Json.of_string l2 in
      let str_field k j = Option.bind (Json.member k j) Json.to_str in
      Alcotest.(check (option string)) "event kind" (Some "event")
        (str_field "kind" j1);
      Alcotest.(check (option string)) "event name" (Some "tick")
        (str_field "name" j1);
      Alcotest.(check (option int)) "event pid" (Some 3)
        (Option.bind (Json.member "pid" j1) Json.to_int);
      Alcotest.(check (option int)) "event tag" (Some 9)
        (Option.bind (Json.member "k" j1) Json.to_int);
      Alcotest.(check (option string)) "span kind" (Some "span")
        (str_field "kind" j2);
      Alcotest.(check bool) "span has dur_ns" true
        (Json.member "dur_ns" j2 <> None);
      Alcotest.(check bool) "timestamps present" true
        (Json.member "ts" j1 <> None && Json.member "ts" j2 <> None)
  | ls -> Alcotest.fail (Fmt.str "expected 2 trace lines, got %d" (List.length ls))

let test_trace_null_sink_is_noop () =
  (* default sink: nothing recorded, nothing raised *)
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Trace.event "ignored";
  Alcotest.(check int) "span still runs" 7 (Trace.with_span "s" (fun () -> 7))

(* --- counterexamples --- *)

let step = Alcotest.testable Counterexample.pp_step Stdlib.( = )

let sample_ce =
  {
    Counterexample.protocol = "register-naive";
    n = 2;
    kind = Counterexample.Disagreement;
    schedule = List.map (fun p -> Counterexample.Step p) [ 0; 0; 0; 1; 1; 1 ];
    decisions = [ (0, Value.pid 0); (1, Value.pid 1) ];
  }

let test_counterexample_round_trip () =
  let ce' = Counterexample.of_json (Counterexample.to_json sample_ce) in
  Alcotest.(check string) "protocol" sample_ce.Counterexample.protocol
    ce'.Counterexample.protocol;
  Alcotest.(check int) "n" 2 ce'.Counterexample.n;
  Alcotest.(check (list step)) "schedule" sample_ce.Counterexample.schedule
    ce'.Counterexample.schedule;
  Alcotest.(check (list (pair int value)))
    "decisions" sample_ce.Counterexample.decisions
    ce'.Counterexample.decisions;
  Alcotest.(check bool) "kind" true
    (ce'.Counterexample.kind = Counterexample.Disagreement)

let test_counterexample_value_encoding () =
  let values =
    [
      Value.unit;
      Value.bool true;
      Value.int (-3);
      Value.str "x\"y";
      Value.pair (Value.int 1) (Value.str "a");
      Value.list [ Value.int 1; Value.list [ Value.unit ] ];
    ]
  in
  List.iter
    (fun v ->
      Alcotest.check value "value round trip" v
        (Counterexample.value_of_json (Counterexample.value_to_json v)))
    values;
  match Counterexample.value_of_json (Json.list [ Json.str "zzz" ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on unknown tag"

let test_counterexample_save_load () =
  let path = Filename.temp_file "wfs-ce" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Counterexample.save path sample_ce;
      let ce' = Counterexample.load path in
      Alcotest.(check (list step))
        "schedule survives disk" sample_ce.Counterexample.schedule
        ce'.Counterexample.schedule;
      (* the file is plain JSON with the schema marker *)
      let ic = open_in path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      Alcotest.(check (option string))
        "schema" (Some "wfs-counterexample/1")
        (Option.bind (Json.member "schema" (Json.of_string raw)) Json.to_str))

let test_counterexample_rejects_bad_schema () =
  let bad = Json.obj [ ("schema", Json.str "nope/9") ] in
  match Counterexample.of_json bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on wrong schema"

(* --- export → replay end to end (Theorem 2's naive protocol) --- *)

let test_violation_export_and_replay () =
  let entry = Registry.find "register-naive" in
  let t = Option.get (entry.Registry.build ~n:2) in
  match Protocol.find_violation t with
  | None -> Alcotest.fail "naive register protocol should violate agreement"
  | Some v ->
      let ce =
        Protocol.violation_to_counterexample ~protocol:"register-naive" ~n:2 v
      in
      (* the exported schedule reproduces the same violation *)
      (match Protocol.replay_counterexample t ce with
      | Ok v' ->
          Alcotest.(check bool) "same kind" true (v'.Protocol.kind = v.Protocol.kind)
      | Error e -> Alcotest.fail ("replay diverged: " ^ e));
      (* serialization does not perturb the replay *)
      let ce' = Counterexample.of_json (Counterexample.to_json ce) in
      (match Protocol.replay_counterexample t ce' with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("replay after round trip diverged: " ^ e))

let test_replay_rejects_impossible_schedule () =
  let entry = Registry.find "register-naive" in
  let t = Option.get (entry.Registry.build ~n:2) in
  match Protocol.replay t ~schedule:[ Counterexample.Step 9 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for a pid that cannot step"

(* --- explorer metric feed --- *)

let tas_config () =
  (Rmw_consensus.test_and_set ()).Protocol.config

let counter name = Option.value ~default:0 (Metrics.counter_value name)

(* [por:false]: the dedup-hit assertions below need the unreduced edge
   traversal — with the sleep-set reduction on, this small protocol's
   redundant interleavings are pruned before they ever hit the dedup
   table. *)
let test_explorer_metrics_feed () =
  Metrics.reset ();
  let stats = Explorer.explore ~por:false (tas_config ()) in
  Alcotest.(check int)
    "states matches stats" stats.Explorer.states
    (counter "explorer.states");
  Alcotest.(check int) "one run recorded" 1 (counter "explorer.runs");
  Alcotest.(check bool) "dedup hits seen" true (counter "explorer.dedup_hits" > 0);
  Alcotest.(check bool)
    "lookups >= hits" true
    (counter "explorer.dedup_lookups" >= counter "explorer.dedup_hits");
  let rate = Option.value ~default:(-1.0) (Metrics.fgauge_value "explorer.dedup_hit_rate") in
  Alcotest.(check bool) "hit rate in (0,1)" true (rate > 0.0 && rate < 1.0);
  Alcotest.(check bool)
    "max depth recorded" true
    (Option.value ~default:0 (Metrics.gauge_value "explorer.max_depth") > 0);
  Alcotest.(check int) "no truncation" 0
    (counter "explorer.truncated.states" + counter "explorer.truncated.depth")

let test_explorer_truncation_metrics_distinguish_causes () =
  Metrics.reset ();
  let stats = Explorer.explore ~max_states:3 (tas_config ()) in
  Alcotest.(check bool) "truncated" true stats.Explorer.truncated;
  Alcotest.(check int) "states budget counted" 1 (counter "explorer.truncated.states");
  Alcotest.(check int) "depth budget not counted" 0 (counter "explorer.truncated.depth");
  Metrics.reset ();
  let stats = Explorer.explore ~max_depth:2 (tas_config ()) in
  Alcotest.(check bool) "truncated" true stats.Explorer.truncated;
  Alcotest.(check int) "depth budget counted" 1 (counter "explorer.truncated.depth");
  Alcotest.(check int) "states budget not counted" 0 (counter "explorer.truncated.states")

(* --- clock --- *)

let test_clock_precision () =
  let module Clock = Wfs_obs.Clock in
  (* exact on representable inputs *)
  Alcotest.(check int) "1.5 s" 1_500_000_000 (Clock.of_gettimeofday 1.5);
  Alcotest.(check int) "whole seconds exact"
    1_754_000_000_000_000_000
    (Clock.of_gettimeofday 1.754e9);
  (* the regression: at current-epoch magnitude, nanoseconds exceed the
     53-bit double mantissa, so a single [*. 1e9] would quantize to
     ~256 ns steps; adjacent representable doubles (~238 ns apart) must
     map to distinct, properly spaced integers *)
  let s1 = 1.754e9 +. 0.123456 in
  let s2 = Float.succ s1 in
  let n1 = Clock.of_gettimeofday s1 and n2 = Clock.of_gettimeofday s2 in
  Alcotest.(check bool) "adjacent doubles distinguished" true (n2 > n1);
  Alcotest.(check bool)
    "spacing below the naive 256 ns quantum" true
    (n2 - n1 < 256)

let test_clock_monotone () =
  let module Clock = Wfs_obs.Clock in
  let ok = ref true in
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then ok := false;
    prev := t
  done;
  Alcotest.(check bool) "never goes backwards" true !ok;
  let (), dt = Clock.elapsed_ns (fun () -> ignore (Sys.opaque_identity 1)) in
  Alcotest.(check bool) "elapsed non-negative" true (dt >= 0)

let suite =
  [
    ( "obs.clock",
      [
        Alcotest.test_case "sub-microsecond precision at epoch scale" `Quick
          test_clock_precision;
        Alcotest.test_case "monotone across 10k reads" `Quick
          test_clock_monotone;
      ] );
    ( "obs.json",
      [
        Alcotest.test_case "round trip" `Quick test_json_round_trip;
        Alcotest.test_case "escaping" `Quick test_json_escaping;
        Alcotest.test_case "floats" `Quick test_json_floats;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter/gauge" `Quick test_metrics_counter_gauge;
        Alcotest.test_case "histogram + snapshot" `Quick
          test_metrics_histogram_snapshot;
        Alcotest.test_case "snapshot sorted by name" `Quick
          test_metrics_snapshot_sorted;
        Alcotest.test_case "hot flag" `Quick test_metrics_hot_flag;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "buffer sink JSONL" `Quick test_trace_buffer_sink;
        Alcotest.test_case "null sink no-op" `Quick
          test_trace_null_sink_is_noop;
      ] );
    ( "obs.counterexample",
      [
        Alcotest.test_case "json round trip" `Quick
          test_counterexample_round_trip;
        Alcotest.test_case "value encoding" `Quick
          test_counterexample_value_encoding;
        Alcotest.test_case "save/load" `Quick test_counterexample_save_load;
        Alcotest.test_case "rejects bad schema" `Quick
          test_counterexample_rejects_bad_schema;
      ] );
    ( "obs.replay",
      [
        Alcotest.test_case "export then replay (Thm 2)" `Quick
          test_violation_export_and_replay;
        Alcotest.test_case "impossible schedule rejected" `Quick
          test_replay_rejects_impossible_schedule;
      ] );
    ( "obs.explorer-metrics",
      [
        Alcotest.test_case "states/dedup feed" `Quick
          test_explorer_metrics_feed;
        Alcotest.test_case "truncation causes distinguished" `Quick
          test_explorer_truncation_metrics_distinguish_causes;
      ] );
  ]
