(* Simulation substrate: runner, explorer, valency analysis. *)

open Wfs_spec
open Wfs_sim

let value = Alcotest.testable Value.pp Value.equal

(* A trivial one-step process that reads a register and decides the pid
   it finds (or its own on ⊥). *)
let reader ~pid ~obj =
  Process.make ~pid ~init:(Process.at 0) (fun local ->
      match Process.pc local with
      | 0 -> Process.invoke ~obj Registers.read (fun res -> Process.at 1 ~data:res)
      | 1 ->
          let v = Process.data local in
          Process.decide (if Value.is_bottom v then Value.pid pid else v)
      | _ -> assert false)

let tas_env () = Env.make [ ("r", Zoo.test_and_set ()) ]

(* The Theorem 4 test-and-set election, written directly. *)
let tas_proc ~pid ~rival =
  Process.make ~pid ~init:(Process.at 0) (fun local ->
      match Process.pc local with
      | 0 -> Process.invoke ~obj:"r" Registers.tas (fun res -> Process.at 1 ~data:res)
      | 1 ->
          Process.decide
            (if Value.equal (Process.data local) (Value.int 0) then Value.pid pid
             else Value.pid rival)
      | _ -> assert false)

let tas_config () =
  { Explorer.procs = [| tas_proc ~pid:0 ~rival:1; tas_proc ~pid:1 ~rival:0 |];
    env = tas_env () }

(* A deliberately non-wait-free protocol: P0 spins reading until the
   register is non-⊥, which never happens if P1 is never scheduled. *)
let spinning_config () =
  let spin =
    Process.make ~pid:0 ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:"r" Registers.read (fun res ->
                if Value.is_bottom res then Process.at 0 else Process.at 1 ~data:res)
        | 1 -> Process.decide (Process.data local)
        | _ -> assert false)
  in
  let writer =
    Process.make ~pid:1 ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:"r" (Registers.write (Value.pid 1)) (fun _ ->
                Process.at 1)
        | 1 -> Process.decide (Value.pid 1)
        | _ -> assert false)
  in
  {
    Explorer.procs = [| spin; writer |];
    env = Env.make [ ("r", Registers.atomic ~name:"r" ~init:Value.bottom
                            [ Value.pid 1 ]) ];
  }

(* --- runner --- *)

let test_runner_round_robin () =
  let outcome =
    Runner.run
      ~procs:[| reader ~pid:0 ~obj:"r"; reader ~pid:1 ~obj:"r" |]
      ~env:(Env.make [ ("r", Registers.atomic ~name:"r" ~init:(Value.pid 1)
                              [ Value.pid 0; Value.pid 1 ]) ])
      ~schedule:Scheduler.round_robin ()
  in
  Alcotest.(check bool) "completed" true outcome.Runner.completed;
  Alcotest.(check int) "two decisions" 2 (List.length outcome.Runner.decisions);
  List.iter
    (fun (_, d) -> Alcotest.check value "decision" (Value.pid 1) d)
    outcome.Runner.decisions

let test_runner_trace_history_consistent () =
  let outcome =
    Runner.run
      ~procs:[| tas_proc ~pid:0 ~rival:1; tas_proc ~pid:1 ~rival:0 |]
      ~env:(tas_env ()) ~schedule:(Scheduler.random ~seed:42) ()
  in
  Alcotest.(check int)
    "history has 2 events per step"
    (2 * List.length outcome.Runner.trace)
    (List.length outcome.Runner.history);
  Alcotest.(check bool)
    "history well-formed" true
    (Wfs_history.History.well_formed outcome.Runner.history)

let test_runner_deterministic_seed () =
  let run seed =
    Runner.run
      ~procs:[| tas_proc ~pid:0 ~rival:1; tas_proc ~pid:1 ~rival:0 |]
      ~env:(tas_env ()) ~schedule:(Scheduler.random ~seed) ()
  in
  let a = run 7 and b = run 7 in
  Alcotest.(check (list (pair int (testable Value.pp Value.equal))))
    "same seed, same decisions" a.Runner.decisions b.Runner.decisions

let test_runner_sequential_pauses () =
  (* under the sequential scheduler P0 runs to completion first *)
  let outcome =
    Runner.run
      ~procs:[| tas_proc ~pid:0 ~rival:1; tas_proc ~pid:1 ~rival:0 |]
      ~env:(tas_env ()) ~schedule:Scheduler.sequential ()
  in
  (match outcome.Runner.decisions with
  | (pid, v) :: _ ->
      Alcotest.(check int) "P0 decides first" 0 pid;
      Alcotest.check value "P0 elects itself" (Value.pid 0) v
  | [] -> Alcotest.fail "no decisions");
  Alcotest.(check bool) "completed" true outcome.Runner.completed

let test_runner_budget () =
  let outcome =
    Runner.run ~max_steps:3 (* P0 spins forever under sequential *)
      ~procs:(spinning_config ()).Explorer.procs
      ~env:(spinning_config ()).Explorer.env ~schedule:Scheduler.sequential ()
  in
  Alcotest.(check bool) "did not complete" false outcome.Runner.completed

(* --- explorer --- *)

let test_explorer_tas () =
  let stats = Explorer.explore (tas_config ()) in
  Alcotest.(check bool) "wait-free" true (Explorer.wait_free stats);
  Alcotest.(check int) "two terminal outcomes" 2
    (List.length stats.Explorer.terminals);
  List.iter
    (fun (t : Explorer.terminal) ->
      let d0 = Option.get t.Explorer.decisions.(0) in
      Alcotest.(check bool)
        "agreement" true
        (Array.for_all
           (fun d -> Value.equal d0 (Option.get d))
           t.Explorer.decisions))
    stats.Explorer.terminals

let test_explorer_detects_cycle () =
  let stats = Explorer.explore (spinning_config ()) in
  Alcotest.(check bool) "cycle found" true stats.Explorer.cyclic;
  Alcotest.(check bool) "not wait-free" false (Explorer.wait_free stats)

let test_explorer_step_bounds () =
  let stats = Explorer.explore (tas_config ()) in
  match stats.Explorer.step_bounds with
  | Some bounds ->
      (* one TAS + one decide each *)
      Alcotest.(check (array int)) "bounds" [| 2; 2 |] bounds
  | None -> Alcotest.fail "expected step bounds on a DAG"

let test_explorer_counts_interleavings () =
  (* two single-op processes: initial, 2 mid states, ... small graph *)
  let stats = Explorer.explore (tas_config ()) in
  Alcotest.(check bool) "visited a few states" true (stats.Explorer.states >= 4)

(* --- valency --- *)

let test_valency_root_bivalent () =
  let root_valency, _ = Valency.analyze (tas_config ()) in
  Alcotest.(check bool) "root bivalent" true (Valency.is_bivalent root_valency);
  Alcotest.(check int) "two possible outcomes" 2
    (Valency.Vset.cardinal root_valency)

let test_valency_critical_exists () =
  match Valency.find_critical (tas_config ()) with
  | Some crit ->
      (* at a critical state, the two enabled TAS steps force opposite
         outcomes *)
      let valencies =
        List.map (fun (_, _, v) -> Valency.Vset.choose v) crit.Valency.branches
      in
      Alcotest.(check int) "two branches" 2 (List.length valencies);
      Alcotest.(check bool)
        "branches disagree" false
        (List.for_all (Value.equal (List.hd valencies)) valencies)
  | None -> Alcotest.fail "expected a critical state"

let test_valency_univalent_after_winner () =
  let config = tas_config () in
  let _, valency = Valency.analyze config in
  (* after P0's TAS, only P0 can win *)
  let after_p0 =
    match Explorer.successors config (Explorer.initial config) with
    | (0, succ) :: _ -> succ
    | _ -> Alcotest.fail "expected P0 successor first"
  in
  let v = valency after_p0 in
  Alcotest.(check bool) "univalent" true (Valency.is_univalent v);
  Alcotest.check value "P0 wins" (Value.pid 0) (Valency.Vset.choose v)

let suite =
  [
    ( "sim.runner",
      [
        Alcotest.test_case "round robin" `Quick test_runner_round_robin;
        Alcotest.test_case "trace/history consistent" `Quick
          test_runner_trace_history_consistent;
        Alcotest.test_case "seeded determinism" `Quick
          test_runner_deterministic_seed;
        Alcotest.test_case "sequential scheduler" `Quick
          test_runner_sequential_pauses;
        Alcotest.test_case "step budget" `Quick test_runner_budget;
      ] );
    ( "sim.explorer",
      [
        Alcotest.test_case "tas protocol explored" `Quick test_explorer_tas;
        Alcotest.test_case "cycle detection" `Quick test_explorer_detects_cycle;
        Alcotest.test_case "step bounds" `Quick test_explorer_step_bounds;
        Alcotest.test_case "state counting" `Quick
          test_explorer_counts_interleavings;
      ] );
    ( "sim.valency",
      [
        Alcotest.test_case "root bivalent" `Quick test_valency_root_bivalent;
        Alcotest.test_case "critical state exists" `Quick
          test_valency_critical_exists;
        Alcotest.test_case "univalent after winner" `Quick
          test_valency_univalent_after_winner;
      ] );
  ]

(* --- additional coverage: env, schedulers, explorer edges --- *)

let test_env_duplicate_rejected () =
  Alcotest.check_raises "duplicate object name"
    (Invalid_argument "Env.make: duplicate object \"r\"") (fun () ->
      ignore (Env.make [ ("r", Zoo.register ()); ("r", Zoo.register ()) ]))

let test_env_unknown_object () =
  let env = Env.make [ ("r", Zoo.register ()) ] in
  Alcotest.check_raises "unknown object"
    (Invalid_argument "Env: unknown object \"nope\"") (fun () ->
      ignore (Env.apply env (Env.init env) "nope" Registers.read))

let test_env_apply_is_persistent () =
  let env = Env.make [ ("r", Zoo.register ()) ] in
  let s0 = Env.init env in
  let s1, _ = Env.apply env s0 "r" (Registers.write (Value.pid 1)) in
  (* the original state is untouched *)
  Alcotest.check (Alcotest.testable Value.pp Value.equal) "s0 unchanged"
    Value.bottom (Env.get s0 env "r");
  Alcotest.check (Alcotest.testable Value.pp Value.equal) "s1 updated"
    (Value.pid 1) (Env.get s1 env "r")

let test_scheduler_of_list_replays () =
  let outcome =
    Runner.run
      ~procs:[| tas_proc ~pid:0 ~rival:1; tas_proc ~pid:1 ~rival:0 |]
      ~env:(tas_env ())
      ~schedule:(Scheduler.of_list [ 1; 1; 0; 0 ])
      ()
  in
  (* P1 runs first and wins the election *)
  match outcome.Runner.decisions with
  | (pid, v) :: _ ->
      Alcotest.(check int) "P1 first" 1 pid;
      Alcotest.check (Alcotest.testable Value.pp Value.equal) "P1 wins"
        (Value.pid 1) v
  | [] -> Alcotest.fail "no decisions"

let test_explorer_truncation_flag () =
  let stats = Explorer.explore ~max_states:3 (tas_config ()) in
  Alcotest.(check bool) "truncated" true stats.Explorer.truncated;
  Alcotest.(check bool) "not wait-free verdict" false
    (Explorer.wait_free stats)

let test_explorer_truncation_causes () =
  (* the stats record which budget cut the run short *)
  let stats = Explorer.explore ~max_states:3 (tas_config ()) in
  Alcotest.(check bool) "states budget named" true
    (stats.Explorer.truncation = Some Explorer.Budget_states);
  let stats = Explorer.explore ~max_depth:2 (tas_config ()) in
  Alcotest.(check bool) "depth budget named" true
    (stats.Explorer.truncation = Some Explorer.Budget_depth);
  Alcotest.(check bool) "depth run still flagged" true
    stats.Explorer.truncated;
  let stats = Explorer.explore (tas_config ()) in
  Alcotest.(check bool) "complete run has no cause" true
    (stats.Explorer.truncation = None)

let test_menu_for_ownership () =
  let ch =
    Channels.fifo_point_to_point ~name:"ch" ~processes:2
      ~messages:[ Value.pid 0 ] ()
  in
  let m0 = Wfs_spec.Object_spec.menu_for ch 0 in
  let m1 = Wfs_spec.Object_spec.menu_for ch 1 in
  (* each process sees sends to both targets but only its own recv *)
  let recvs menu =
    List.filter (fun op -> String.equal (Op.name op) "recv") menu
  in
  Alcotest.(check int) "P0 sees one recv" 1 (List.length (recvs m0));
  Alcotest.(check int) "P1 sees one recv" 1 (List.length (recvs m1));
  Alcotest.(check bool) "different recvs" false
    (Op.equal (List.hd (recvs m0)) (List.hd (recvs m1)))

let extra_suite =
  ( "sim.extra",
    [
      Alcotest.test_case "env duplicate rejected" `Quick
        test_env_duplicate_rejected;
      Alcotest.test_case "env unknown object" `Quick test_env_unknown_object;
      Alcotest.test_case "env persistence" `Quick test_env_apply_is_persistent;
      Alcotest.test_case "of_list scheduler" `Quick
        test_scheduler_of_list_replays;
      Alcotest.test_case "explorer truncation" `Quick
        test_explorer_truncation_flag;
      Alcotest.test_case "explorer truncation causes" `Quick
        test_explorer_truncation_causes;
      Alcotest.test_case "ownership menus" `Quick test_menu_for_ownership;
    ] )

let suite = suite @ [ extra_suite ]
