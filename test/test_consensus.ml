(* Exhaustive verification of every consensus protocol in the paper:
   agreement, validity and wait-freedom over all schedules. *)

open Wfs_spec
open Wfs_consensus

let check_passes ?max_states name protocol =
  let report = Protocol.verify ?max_states protocol in
  Alcotest.(check bool)
    (Fmt.str "%s: agreement" name)
    true report.Protocol.agreement;
  Alcotest.(check bool)
    (Fmt.str "%s: validity" name)
    true report.Protocol.validity;
  Alcotest.(check bool)
    (Fmt.str "%s: wait-free" name)
    true report.Protocol.wait_free;
  Alcotest.(check bool)
    (Fmt.str "%s: complete exploration" name)
    true
    (not report.Protocol.truncated);
  report

(* --- Theorem 4 --- *)

let test_tas () = ignore (check_passes "tas" (Rmw_consensus.test_and_set ()))
let test_rmw_swap () = ignore (check_passes "swap" (Rmw_consensus.swap ()))

let test_faa () =
  ignore (check_passes "fetch-and-add" (Rmw_consensus.fetch_and_add ()))

let test_rmw_generic_nontrivial () =
  (* any non-identity f admits a protocol: try f(x) = 2x + 1 *)
  let rmw =
    {
      Registers.rmw_name = "weird";
      args = [ Value.unit ];
      f = (fun ~arg:_ v -> Value.int ((2 * Value.as_int v) + 1));
      returns_old = true;
    }
  in
  match Rmw_consensus.protocol ~rmw ~domain:[ Value.int 0 ] () with
  | Some p -> ignore (check_passes "weird rmw" p)
  | None -> Alcotest.fail "non-trivial RMW should give a protocol"

let test_rmw_trivial_rejected () =
  (* the identity (a plain read) gives no witness, hence no protocol *)
  match
    Rmw_consensus.protocol ~rmw:Registers.read_op ~domain:Zoo.small_values ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "read is trivial; no protocol expected"

(* --- Theorem 7 --- *)

let test_cas_n n () =
  let report =
    check_passes
      (Fmt.str "cas n=%d" n)
      (Cas_consensus.protocol ~n ())
  in
  Alcotest.(check int)
    "all n decisions possible" n
    (List.length report.Protocol.decisions_seen)

(* --- Theorem 9 and variations --- *)

let test_queue () = ignore (check_passes "queue" (Queue_consensus.protocol ()))
let test_stack () = ignore (check_passes "stack" (Queue_consensus.stack ()))

let test_pqueue () =
  ignore (check_passes "priority queue" (Queue_consensus.priority_queue ()))

let test_set () = ignore (check_passes "set" (Queue_consensus.set ()))

let test_counter () =
  ignore (check_passes "counter" (Queue_consensus.counter ()))

(* --- Theorem 12 --- *)

let test_aug_queue n () =
  ignore (check_passes (Fmt.str "augmented queue n=%d" n)
            (Aug_queue_consensus.protocol ~n ()))

let test_fetch_and_cons n () =
  ignore (check_passes (Fmt.str "fetch-and-cons n=%d" n)
            (Aug_queue_consensus.fetch_and_cons ~n ()))

(* --- Theorem 15 --- *)

let test_move_2 () =
  ignore (check_passes "move (2 proc)" (Move_consensus.two_proc_protocol ()))

let test_move_n n () =
  ignore (check_passes (Fmt.str "move n=%d" n)
            (Move_consensus.n_proc_protocol ~n ()))

(* --- Theorem 16 --- *)

let test_mem_swap n () =
  ignore (check_passes (Fmt.str "memory swap n=%d" n)
            (Swap_consensus.protocol ~n ()))

(* --- Theorems 19-20 --- *)

let test_assign n () =
  ignore (check_passes (Fmt.str "assignment n=%d" n)
            (Assign_consensus.protocol ~n ()))

let test_assign_two_phase n () =
  ignore (check_passes
            (Fmt.str "two-phase assignment n=%d (%d procs)" n (2 * (n - 1)))
            (Assign_consensus.two_phase ~n ()))

(* --- channels --- *)

let test_broadcast n () =
  ignore (check_passes (Fmt.str "ordered broadcast n=%d" n)
            (Channel_consensus.protocol ~n ()))

(* --- registry coherence --- *)

let test_registry_builds () =
  List.iter
    (fun entry ->
      match entry.Registry.build ~n:2 with
      | Some p ->
          Alcotest.(check int)
            (Fmt.str "%s: two processes" entry.Registry.key)
            2 p.Protocol.processes
      | None -> ())
    Registry.entries

let test_registry_all_pass_n2 () =
  List.iter
    (fun entry ->
      match entry.Registry.build ~n:2 with
      | Some p ->
          ignore (check_passes (Fmt.str "registry %s" entry.Registry.key) p)
      | None -> ())
    Registry.entries

let test_registry_find () =
  let e = Registry.find "cas" in
  Alcotest.(check string) "found" "Theorem 7" e.Registry.theorem;
  Alcotest.(check bool) "keys nonempty" true (List.length (Registry.keys ()) > 10)

(* --- negative control: a broken protocol must FAIL verification ---
   Both processes read the register and decide what they compute locally;
   reads don't interfere, so agreement must be violated somewhere. *)

let test_broken_protocol_caught () =
  let open Wfs_sim in
  let proc ~pid =
    Process.make ~pid ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:"r" Registers.read (fun res ->
                Process.at 1 ~data:res)
        | 1 ->
            let v = Process.data local in
            Process.decide (if Value.is_bottom v then Value.pid pid else v)
        | _ -> assert false)
  in
  let env =
    Env.make
      [ ("r", Registers.atomic ~name:"r" ~init:Value.bottom (Zoo.pids 2)) ]
  in
  let p =
    Protocol.make ~name:"broken-read-consensus" ~theorem:"none"
      ~procs:[| proc ~pid:0; proc ~pid:1 |]
      ~env
  in
  let report = Protocol.verify p in
  Alcotest.(check bool) "agreement fails" false report.Protocol.agreement

(* Trivial protocol that decides without stepping is invalid. *)
let test_trivial_protocol_invalid () =
  let open Wfs_sim in
  let proc ~pid =
    Process.make ~pid ~init:(Process.at 0) (fun _ -> Process.decide (Value.pid 0))
  in
  let env =
    Env.make
      [ ("r", Registers.atomic ~name:"r" ~init:Value.bottom (Zoo.pids 2)) ]
  in
  let p =
    Protocol.make ~name:"predefined-choice" ~theorem:"none"
      ~procs:[| proc ~pid:0; proc ~pid:1 |]
      ~env
  in
  let report = Protocol.verify p in
  (* P1 deciding "P0" when P0 never stepped violates the paper's second
     partial-correctness condition... unless P0 always steps.  Under the
     schedule where only P1 runs, P0 took no step. *)
  Alcotest.(check bool) "validity fails" false report.Protocol.validity

(* Every verified protocol also runs to completion on concrete
   schedules. *)
let test_protocols_run_once () =
  List.iter
    (fun entry ->
      match entry.Registry.build ~n:2 with
      | Some p ->
          List.iter
            (fun schedule ->
              let outcome = Protocol.run_once ~schedule p in
              Alcotest.(check bool)
                (Fmt.str "%s completes" entry.Registry.key)
                true outcome.Wfs_sim.Runner.completed;
              match outcome.Wfs_sim.Runner.decisions with
              | (_, d) :: rest ->
                  List.iter
                    (fun (_, d') ->
                      Alcotest.(check bool)
                        (Fmt.str "%s agrees" entry.Registry.key)
                        true (Value.equal d d'))
                    rest
              | [] -> Alcotest.fail "no decisions")
            [
              Wfs_sim.Scheduler.round_robin;
              Wfs_sim.Scheduler.sequential;
              Wfs_sim.Scheduler.random ~seed:1;
              Wfs_sim.Scheduler.random ~seed:99;
            ]
      | None -> ())
    Registry.entries

let suite =
  [
    ( "consensus.rmw",
      [
        Alcotest.test_case "test-and-set (Thm 4)" `Quick test_tas;
        Alcotest.test_case "swap (Thm 4)" `Quick test_rmw_swap;
        Alcotest.test_case "fetch-and-add (Thm 4)" `Quick test_faa;
        Alcotest.test_case "generic non-trivial RMW" `Quick
          test_rmw_generic_nontrivial;
        Alcotest.test_case "trivial RMW rejected" `Quick
          test_rmw_trivial_rejected;
      ] );
    ( "consensus.cas",
      [
        Alcotest.test_case "n=2 (Thm 7)" `Quick (test_cas_n 2);
        Alcotest.test_case "n=3 (Thm 7)" `Quick (test_cas_n 3);
        Alcotest.test_case "n=4 (Thm 7)" `Quick (test_cas_n 4);
      ] );
    ( "consensus.containers",
      [
        Alcotest.test_case "queue (Thm 9)" `Quick test_queue;
        Alcotest.test_case "stack" `Quick test_stack;
        Alcotest.test_case "priority queue" `Quick test_pqueue;
        Alcotest.test_case "set" `Quick test_set;
        Alcotest.test_case "counter" `Quick test_counter;
      ] );
    ( "consensus.universal-objects",
      [
        Alcotest.test_case "augmented queue n=2 (Thm 12)" `Quick
          (test_aug_queue 2);
        Alcotest.test_case "augmented queue n=3" `Quick (test_aug_queue 3);
        Alcotest.test_case "augmented queue n=4" `Quick (test_aug_queue 4);
        Alcotest.test_case "fetch-and-cons n=2" `Quick (test_fetch_and_cons 2);
        Alcotest.test_case "fetch-and-cons n=3" `Quick (test_fetch_and_cons 3);
      ] );
    ( "consensus.memory",
      [
        Alcotest.test_case "move 2-proc (Thm 15)" `Quick test_move_2;
        Alcotest.test_case "move n=2" `Quick (test_move_n 2);
        Alcotest.test_case "move n=3" `Quick (test_move_n 3);
        Alcotest.test_case "memory swap n=2 (Thm 16)" `Quick (test_mem_swap 2);
        Alcotest.test_case "memory swap n=3" `Quick (test_mem_swap 3);
      ] );
    ( "consensus.assignment",
      [
        Alcotest.test_case "assignment n=2 (Thm 19)" `Quick (test_assign 2);
        Alcotest.test_case "assignment n=3 (Thm 19)" `Slow (test_assign 3);
        Alcotest.test_case "two-phase n=2 (Thm 20)" `Quick
          (test_assign_two_phase 2);
      ] );
    ( "consensus.channels",
      [
        Alcotest.test_case "ordered broadcast n=2" `Quick (test_broadcast 2);
        Alcotest.test_case "ordered broadcast n=3" `Quick (test_broadcast 3);
      ] );
    ( "consensus.registry",
      [
        Alcotest.test_case "builds" `Quick test_registry_builds;
        Alcotest.test_case "all pass at n=2" `Slow test_registry_all_pass_n2;
        Alcotest.test_case "find" `Quick test_registry_find;
        Alcotest.test_case "run once on schedules" `Quick
          test_protocols_run_once;
      ] );
    ( "consensus.negative",
      [
        Alcotest.test_case "broken protocol caught" `Quick
          test_broken_protocol_caught;
        Alcotest.test_case "trivial protocol invalid" `Quick
          test_trivial_protocol_invalid;
      ] );
  ]

(* Theorem 20 at n = 3: four processes from 3-register assignment.  The
   joint state space is too large for exhaustive default-suite checking
   on this hardware, so we sweep many schedules instead: agreement,
   validity and completion on every one. *)
let test_assign_two_phase_n3_schedules () =
  let p = Assign_consensus.two_phase ~n:3 () in
  let schedules =
    Wfs_sim.Scheduler.round_robin :: Wfs_sim.Scheduler.sequential
    :: List.init 60 (fun seed -> Wfs_sim.Scheduler.random ~seed)
  in
  List.iter
    (fun schedule ->
      let outcome = Protocol.run_once ~schedule p in
      Alcotest.(check bool) "completed" true outcome.Wfs_sim.Runner.completed;
      match outcome.Wfs_sim.Runner.decisions with
      | (_, d) :: rest ->
          List.iter
            (fun (_, d') ->
              Alcotest.(check bool) "agreement" true (Value.equal d d'))
            rest;
          Alcotest.(check bool) "validity: decision is a pid" true
            (match d with Value.Int j -> j >= 0 && j < 4 | _ -> false)
      | [] -> Alcotest.fail "no decisions")
    schedules

let thm20_suite =
  ( "consensus.assignment.n3",
    [ Alcotest.test_case "two-phase n=3 (4 procs, 62 schedules)" `Quick
        test_assign_two_phase_n3_schedules ] )

let suite = suite @ [ thm20_suite ]

(* --- counterexample extraction --- *)

let test_violation_found_and_replays () =
  let open Wfs_sim in
  (* the broken read-and-decide protocol again *)
  let proc ~pid =
    Process.make ~pid ~init:(Process.at 0) (fun local ->
        match Process.pc local with
        | 0 ->
            Process.invoke ~obj:"r" Registers.read (fun res ->
                Process.at 1 ~data:res)
        | 1 ->
            let v = Process.data local in
            Process.decide (if Value.is_bottom v then Value.pid pid else v)
        | _ -> assert false)
  in
  let env =
    Env.make
      [ ("r", Registers.atomic ~name:"r" ~init:Value.bottom (Zoo.pids 2)) ]
  in
  let p =
    Protocol.make ~name:"broken" ~theorem:"none"
      ~procs:[| proc ~pid:0; proc ~pid:1 |]
      ~env
  in
  match Protocol.find_violation p with
  | None -> Alcotest.fail "expected a violation"
  | Some v ->
      Alcotest.(check bool) "disagreement" true
        (v.Protocol.kind = `Disagreement);
      (* replaying the extracted schedule reproduces the failure; a
         crash-free search yields only [Step] entries *)
      let pids =
        List.map
          (function Protocol.Step p -> p | Protocol.Crash _ -> assert false)
          v.Protocol.schedule
      in
      let outcome =
        Protocol.run_once ~schedule:(Scheduler.of_list pids) p
      in
      let ds = List.map snd outcome.Runner.decisions in
      (match ds with
      | a :: rest ->
          Alcotest.(check bool) "decisions disagree on replay" true
            (List.exists (fun b -> not (Value.equal a b)) rest)
      | [] -> Alcotest.fail "no decisions on replay")

let test_no_violation_in_correct_protocol () =
  Alcotest.(check bool) "cas clean" true
    (Protocol.find_violation (Cas_consensus.protocol ~n:3 ()) = None)

(* --- multi-object solver instances --- *)

let test_solver_multi_object () =
  let open Wfs_hierarchy in
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  let tas = Registers.test_and_set ~name:"t" () in
  let env = Wfs_sim.Env.make [ ("r", reg); ("t", tas) ] in
  let candidates _pid =
    List.map (fun op -> ("r", op)) reg.Object_spec.menu
    @ List.map (fun op -> ("t", op)) tas.Object_spec.menu
  in
  let inst = { Solver.env; n = 2; depth = 2; candidates } in
  (* registers + test-and-set together: solvable (tas carries it) *)
  match Solver.solve inst with
  | Solver.Solvable _ -> ()
  | v -> Alcotest.failf "expected solvable, got %a" Solver.pp_verdict v

let extra_suite =
  ( "consensus.counterexamples",
    [
      Alcotest.test_case "violation found and replays" `Quick
        test_violation_found_and_replays;
      Alcotest.test_case "correct protocol clean" `Quick
        test_no_violation_in_correct_protocol;
      Alcotest.test_case "multi-object solver" `Quick test_solver_multi_object;
    ] )

let suite = suite @ [ extra_suite ]
