(* Extensions beyond the paper's main line: randomized consensus (§5's
   open problem), Lamport's 1P/1C register queue (§3.3), and sequential
   consistency vs linearizability (§2.3). *)

open Wfs_spec

(* --- randomized consensus (simulated, adversarial coins) --- *)

let test_randomized_safety_exhaustive () =
  let v = Wfs_consensus.Randomized.verify_all_coins ~flips:2 () in
  Alcotest.(check bool) "safe over all schedules and coins" true
    v.Wfs_consensus.Randomized.ok;
  Alcotest.(check int) "4 inputs x 4x4 coin assignments" (4 * 4 * 4)
    v.Wfs_consensus.Randomized.configurations

let test_randomized_safety_flips3 () =
  let v = Wfs_consensus.Randomized.verify_all_coins ~flips:3 () in
  Alcotest.(check bool) "safe at flips=3" true v.Wfs_consensus.Randomized.ok

let test_randomized_same_inputs_never_abort () =
  (* with equal inputs there is never a conflict, hence no coin is
     needed: every schedule decides, even with zero coins *)
  let cfg =
    Wfs_consensus.Randomized.config ~inputs:[| true; true |]
      ~coins:[| []; [] |]
  in
  let stats = Wfs_sim.Explorer.explore cfg in
  Alcotest.(check bool) "wait-free" true (Wfs_sim.Explorer.wait_free stats);
  List.iter
    (fun (t : Wfs_sim.Explorer.terminal) ->
      Array.iter
        (fun d ->
          Alcotest.(check bool)
            "decides true" true
            (match d with
            | Some d -> Value.equal d (Value.bool true)
            | None -> false))
        t.Wfs_sim.Explorer.decisions)
    stats.Wfs_sim.Explorer.terminals

let test_randomized_runs_decide () =
  (* with a long coin budget, seeded runs essentially always decide *)
  let decided = ref 0 in
  for seed = 1 to 50 do
    let outcome =
      Wfs_consensus.Randomized.run ~flips:30 ~inputs:[| false; true |] ~seed ()
    in
    let ds = List.map snd outcome.Wfs_sim.Runner.decisions in
    let real =
      List.filter
        (fun d -> not (Value.equal d Wfs_consensus.Randomized.aborted))
        ds
    in
    if List.length real = 2 then begin
      incr decided;
      match real with
      | [ a; b ] ->
          Alcotest.(check bool) "agree" true (Value.equal a b)
      | _ -> ()
    end
  done;
  Alcotest.(check bool)
    (Fmt.str "most runs decide (%d/50)" !decided)
    true (!decided >= 45)

(* --- randomized consensus (runtime) --- *)

let test_randomized_runtime () =
  for trial = 1 to 300 do
    let t = Wfs_runtime.Randomized_rt.create () in
    let inputs = [| trial mod 2 = 0; trial mod 3 = 0 |] in
    let results =
      Wfs_runtime.Primitives.run_domains 2 (fun pid ->
          let rng = Random.State.make [| trial; pid |] in
          Wfs_runtime.Randomized_rt.decide t ~pid ~rng inputs.(pid))
    in
    match results with
    | [ (d0, _); (d1, _) ] ->
        Alcotest.(check bool) "agreement" d0 d1;
        Alcotest.(check bool) "validity" true
          (d0 = inputs.(0) || d0 = inputs.(1))
    | _ -> Alcotest.fail "expected two decisions"
  done

(* --- Lamport 1P/1C queue --- *)

let test_lamport_sequential () =
  let q = Wfs_runtime.Lamport_queue.create ~capacity:4 in
  Alcotest.(check bool) "empty" true (Wfs_runtime.Lamport_queue.is_empty q);
  Alcotest.(check bool) "enq 1" true (Wfs_runtime.Lamport_queue.enqueue q 1);
  Alcotest.(check bool) "enq 2" true (Wfs_runtime.Lamport_queue.enqueue q 2);
  Alcotest.(check int) "length" 2 (Wfs_runtime.Lamport_queue.length q);
  Alcotest.(check (option int)) "deq 1" (Some 1)
    (Wfs_runtime.Lamport_queue.dequeue q);
  Alcotest.(check (option int)) "deq 2" (Some 2)
    (Wfs_runtime.Lamport_queue.dequeue q);
  Alcotest.(check (option int)) "deq empty" None
    (Wfs_runtime.Lamport_queue.dequeue q)

let test_lamport_full () =
  let q = Wfs_runtime.Lamport_queue.create ~capacity:2 in
  Alcotest.(check int) "rounded capacity" 2 (Wfs_runtime.Lamport_queue.capacity q);
  Alcotest.(check bool) "enq 1" true (Wfs_runtime.Lamport_queue.enqueue q 1);
  Alcotest.(check bool) "enq 2" true (Wfs_runtime.Lamport_queue.enqueue q 2);
  Alcotest.(check bool) "full" true (Wfs_runtime.Lamport_queue.is_full q);
  Alcotest.(check bool) "enq rejected" false
    (Wfs_runtime.Lamport_queue.enqueue q 3)

let test_lamport_concurrent_fifo () =
  (* one producer domain, one consumer domain: items arrive complete and
     in order — wait-free from registers alone (§3.3) *)
  let q = Wfs_runtime.Lamport_queue.create ~capacity:64 in
  let items = 50_000 in
  let results =
    Wfs_runtime.Primitives.run_domains 2 (fun pid ->
        if pid = 0 then begin
          let sent = ref 0 in
          while !sent < items do
            if Wfs_runtime.Lamport_queue.enqueue q !sent then incr sent
            else Domain.cpu_relax ()
          done;
          []
        end
        else begin
          let got = ref [] in
          let count = ref 0 in
          while !count < items do
            match Wfs_runtime.Lamport_queue.dequeue q with
            | Some x ->
                got := x :: !got;
                incr count
            | None -> Domain.cpu_relax ()
          done;
          List.rev !got
        end)
  in
  match results with
  | [ _; received ] ->
      Alcotest.(check int) "all received" items (List.length received);
      Alcotest.(check bool) "in fifo order" true
        (List.for_all2 ( = ) received (List.init items Fun.id))
  | _ -> Alcotest.fail "expected two domains"

(* --- sequential consistency --- *)

let inv pid obj op = Wfs_history.Event.invoke ~pid ~obj op
let rsp pid obj res = Wfs_history.Event.respond ~pid ~obj res

let queue_spec name = Queues.fifo ~name ~items:[ Value.int 1; Value.int 2 ] ()

let test_sc_weaker_than_lin () =
  (* a stale read violates linearizability but not sequential
     consistency: program order alone permits reordering across
     processes *)
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  let h =
    [
      inv 1 "r" (Registers.write (Value.int 1));
      rsp 1 "r" Value.unit;
      inv 0 "r" Registers.read;
      rsp 0 "r" (Value.int 0);
    ]
  in
  Alcotest.(check bool) "not linearizable" false
    (Wfs_history.Linearizability.is_linearizable [ ("r", reg) ] h);
  Alcotest.(check bool) "but sequentially consistent" true
    (Wfs_history.Sequential_consistency.is_sequentially_consistent reg h)

let test_sc_program_order_enforced () =
  (* within one process, order cannot be rewritten *)
  let q = queue_spec "q" in
  let h =
    [
      inv 0 "q" (Queues.enq (Value.int 1));
      rsp 0 "q" Value.unit;
      inv 0 "q" (Queues.enq (Value.int 2));
      rsp 0 "q" Value.unit;
      inv 0 "q" Queues.deq;
      rsp 0 "q" (Value.int 2);
    ]
  in
  Alcotest.(check bool) "deq of 2 first is not SC" false
    (Wfs_history.Sequential_consistency.is_sequentially_consistent q h)

(* The classic locality failure (the paper: "unlike sequential
   consistency ... linearizability is a local property").  Two queues p
   and q; each object's subhistory is SC on its own, but no single
   witness serializes both. *)
let test_sc_not_local () =
  let p = queue_spec "p" and q = queue_spec "q" in
  let h =
    [
      (* process 0: enq p 1; enq q 1; deq p -> 2 *)
      inv 0 "p" (Queues.enq (Value.int 1));
      rsp 0 "p" Value.unit;
      inv 0 "q" (Queues.enq (Value.int 1));
      rsp 0 "q" Value.unit;
      inv 0 "p" Queues.deq;
      rsp 0 "p" (Value.int 2);
      (* process 1: enq q 2; enq p 2; deq q -> 1 *)
      inv 1 "q" (Queues.enq (Value.int 2));
      rsp 1 "q" Value.unit;
      inv 1 "p" (Queues.enq (Value.int 2));
      rsp 1 "p" Value.unit;
      inv 1 "q" Queues.deq;
      rsp 1 "q" (Value.int 1);
    ]
  in
  let sc_p =
    Wfs_history.Sequential_consistency.check_object p
      (Wfs_history.History.project_obj "p" h)
  in
  let sc_q =
    Wfs_history.Sequential_consistency.check_object q
      (Wfs_history.History.project_obj "q" h)
  in
  Alcotest.(check bool) "p alone is SC" true
    sc_p.Wfs_history.Sequential_consistency.consistent;
  Alcotest.(check bool) "q alone is SC" true
    sc_q.Wfs_history.Sequential_consistency.consistent;
  let global =
    Wfs_history.Sequential_consistency.check_global
      [ ("p", p); ("q", q) ]
      h
  in
  Alcotest.(check bool) "but globally NOT SC (locality fails)" false
    global.Wfs_history.Sequential_consistency.consistent

let test_sc_witness_legal () =
  let q = queue_spec "q" in
  let h =
    [
      inv 0 "q" (Queues.enq (Value.int 1));
      rsp 0 "q" Value.unit;
      inv 1 "q" Queues.deq;
      rsp 1 "q" (Value.int 1);
    ]
  in
  match Wfs_history.Sequential_consistency.check_object q h with
  | { Wfs_history.Sequential_consistency.consistent = true; witness = Some w } ->
      Alcotest.(check bool) "witness legal" true
        (Wfs_history.History.check_sequential q w)
  | _ -> Alcotest.fail "expected SC with witness"

(* linearizable implies sequentially consistent (per object) *)
let prop_lin_implies_sc =
  QCheck2.Test.make ~name:"linearizable => sequentially consistent" ~count:100
    QCheck2.Gen.(list_size (int_range 0 8) (pair (int_range 0 1) (int_range 0 3)))
    (fun choices ->
      let spec = queue_spec "q" in
      let menu = Array.of_list spec.Object_spec.menu in
      (* build a sequential (hence linearizable) history *)
      let _, events =
        List.fold_left
          (fun (state, acc) (pid, c) ->
            let op = menu.(c mod Array.length menu) in
            let state', res = Object_spec.apply spec state op in
            (state', rsp pid "q" res :: inv pid "q" op :: acc))
          (spec.Object_spec.init, [])
          choices
      in
      let h = List.rev events in
      (not (Wfs_history.Linearizability.is_linearizable [ ("q", spec) ] h))
      || Wfs_history.Sequential_consistency.is_sequentially_consistent spec h)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_lin_implies_sc ]

let suite =
  [
    ( "ext.randomized",
      [
        Alcotest.test_case "exhaustive safety, flips=2" `Quick
          test_randomized_safety_exhaustive;
        Alcotest.test_case "exhaustive safety, flips=3" `Quick
          test_randomized_safety_flips3;
        Alcotest.test_case "equal inputs never abort" `Quick
          test_randomized_same_inputs_never_abort;
        Alcotest.test_case "seeded runs decide" `Quick
          test_randomized_runs_decide;
        Alcotest.test_case "runtime agreement x300" `Quick
          test_randomized_runtime;
      ] );
    ( "ext.lamport-queue",
      [
        Alcotest.test_case "sequential semantics" `Quick test_lamport_sequential;
        Alcotest.test_case "full queue" `Quick test_lamport_full;
        Alcotest.test_case "concurrent 1P/1C fifo" `Quick
          test_lamport_concurrent_fifo;
      ] );
    ( "ext.sequential-consistency",
      [
        Alcotest.test_case "weaker than linearizability" `Quick
          test_sc_weaker_than_lin;
        Alcotest.test_case "program order enforced" `Quick
          test_sc_program_order_enforced;
        Alcotest.test_case "locality failure" `Quick test_sc_not_local;
        Alcotest.test_case "witness legality" `Quick test_sc_witness_legal;
      ] );
    ("ext.properties", qsuite);
  ]
