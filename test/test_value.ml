(* Unit and property tests for the universal value domain. *)

open Wfs_spec

let value = Alcotest.testable Value.pp Value.equal

(* A sized qcheck generator for values. *)
let value_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self size ->
         let leaf =
           oneof
             [
               return Value.unit;
               map Value.bool bool;
               map Value.int (int_range (-10) 10);
               map Value.str (string_size ~gen:printable (int_range 0 4));
             ]
         in
         if size <= 1 then leaf
         else
           oneof
             [
               leaf;
               map2 Value.pair (self (size / 2)) (self (size / 2));
               map Value.list (list_size (int_range 0 4) (self (size / 4)));
             ])

let test_constructors () =
  Alcotest.check value "unit" Value.Unit Value.unit;
  Alcotest.check value "bool" (Value.Bool true) (Value.bool true);
  Alcotest.check value "int" (Value.Int 3) (Value.int 3);
  Alcotest.check value "pair"
    (Value.Pair (Value.Int 1, Value.Bool false))
    (Value.pair (Value.int 1) (Value.bool false));
  Alcotest.check value "list"
    (Value.List [ Value.Int 1 ])
    (Value.list [ Value.int 1 ])

let test_option_roundtrip () =
  Alcotest.check value "none" Value.none (Value.of_option None);
  Alcotest.check value "some" (Value.some (Value.int 7))
    (Value.of_option (Some (Value.int 7)));
  Alcotest.(check (option value))
    "to_option none" None
    (Value.to_option Value.none);
  Alcotest.(check (option value))
    "to_option some" (Some (Value.int 7))
    (Value.to_option (Value.some (Value.int 7)))

let test_bottom () =
  Alcotest.(check bool) "bottom is bottom" true (Value.is_bottom Value.bottom);
  Alcotest.(check bool) "unit not bottom" false (Value.is_bottom Value.unit);
  Alcotest.(check bool)
    "pid 0 not bottom" false
    (Value.is_bottom (Value.pid 0))

let test_destructors () =
  Alcotest.(check int) "as_int" 5 (Value.as_int (Value.int 5));
  Alcotest.(check string) "as_str" "x" (Value.as_str (Value.str "x"));
  Alcotest.(check bool) "truth" true (Value.truth (Value.bool true));
  Alcotest.(check int) "as_pid" 3 (Value.as_pid (Value.pid 3));
  let a, b = Value.as_pair (Value.pair (Value.int 1) (Value.int 2)) in
  Alcotest.check value "pair fst" (Value.int 1) a;
  Alcotest.check value "pair snd" (Value.int 2) b;
  Alcotest.check_raises "as_int on bool"
    (Invalid_argument "Value.as_int: not an int") (fun () ->
      ignore (Value.as_int (Value.bool true)))

let test_pid_collision () =
  (* pids are plain ints by design *)
  Alcotest.check value "pid = int" (Value.int 2) (Value.pid 2)

let prop_equal_reflexive =
  QCheck2.Test.make ~name:"Value.equal is reflexive" ~count:500 value_gen
    (fun v -> Value.equal v v)

let prop_compare_antisym =
  QCheck2.Test.make ~name:"Value.compare antisymmetric" ~count:500
    (QCheck2.Gen.pair value_gen value_gen) (fun (a, b) ->
      let c = Value.compare a b and c' = Value.compare b a in
      (c = 0 && c' = 0) || (c > 0 && c' < 0) || (c < 0 && c' > 0))

let prop_compare_equal_consistent =
  QCheck2.Test.make ~name:"compare = 0 iff equal" ~count:500
    (QCheck2.Gen.pair value_gen value_gen) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let prop_hash_respects_equal =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:500 value_gen
    (fun v ->
      let copy =
        (* structural copy through a round-trip *)
        match v with
        | Value.List vs -> Value.list (List.map Fun.id vs)
        | other -> other
      in
      Value.hash v = Value.hash copy)

let prop_option_roundtrip =
  QCheck2.Test.make ~name:"of_option/to_option roundtrip" ~count:200 value_gen
    (fun v -> Value.to_option (Value.of_option (Some v)) = Some v)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_equal_reflexive;
      prop_compare_antisym;
      prop_compare_equal_consistent;
      prop_hash_respects_equal;
      prop_option_roundtrip;
    ]

let suite =
  [
    ( "value",
      [
        Alcotest.test_case "constructors" `Quick test_constructors;
        Alcotest.test_case "option roundtrip" `Quick test_option_roundtrip;
        Alcotest.test_case "bottom" `Quick test_bottom;
        Alcotest.test_case "destructors" `Quick test_destructors;
        Alcotest.test_case "pid encoding" `Quick test_pid_collision;
      ] );
    ("value.properties", qsuite);
  ]
