(* Differential tests for the sleep-set partial-order reductions: the
   reduced searches must be observationally identical to the unreduced
   ones.  The explorer's reduction removes redundant interleaving edges,
   never states, so every stats field must match exactly; the solver's
   cutoffs remove dominated game branches, so verdicts and synthesized
   strategies must match while the node count only shrinks.  Both are
   exercised over the whole registry, alone and composed with crash
   budgets, truncation, symmetry and a domain pool. *)

open Wfs_spec
open Wfs_sim
open Wfs_consensus
open Wfs_hierarchy

let value = Alcotest.testable Value.pp Value.equal
let check_stats_equal = Test_perf_engine.check_stats_equal
let registry_protocols = Test_perf_engine.registry_protocols
let verdict_sig = Test_perf_engine.verdict_sig

(* --- explorer: por on = por off on every registry protocol --- *)

let test_explore_differential () =
  List.iter
    (fun (name, (p : Protocol.t)) ->
      let run ?max_states ?max_depth ?crashes por =
        Explorer.explore ?max_states ?max_depth ?crashes ~por p.Protocol.config
      in
      check_stats_equal name (run false) (run true);
      check_stats_equal
        (name ^ " [crashes=1]")
        (run ~crashes:1 false) (run ~crashes:1 true);
      check_stats_equal
        (name ^ " [max_states=40]")
        (run ~max_states:40 false)
        (run ~max_states:40 true);
      check_stats_equal
        (name ^ " [max_depth=3]")
        (run ~max_depth:3 false) (run ~max_depth:3 true))
    (registry_protocols ())

(* por composed with a pool: both polarities at j=2 against the
   sequential reference *)
let test_explore_pool () =
  Pool.with_pool ~domains:2 (fun pool ->
      List.iter
        (fun (name, (p : Protocol.t)) ->
          let seq = Explorer.explore p.Protocol.config in
          check_stats_equal
            (name ^ " [j=2 por]")
            seq
            (Explorer.explore ~pool p.Protocol.config);
          check_stats_equal
            (name ^ " [j=2 no-por]")
            seq
            (Explorer.explore ~por:false ~pool p.Protocol.config))
        (registry_protocols ()))

(* por is auto-disabled under the symmetry quotient: requesting it must
   change nothing there *)
let test_symmetry_guard () =
  List.iter
    (fun n ->
      check_stats_equal
        (Fmt.str "sym-tas n=%d [symmetry]" n)
        (Explorer.explore ~symmetry:true ~por:false
           (Test_perf_engine.symmetric_tas_config n))
        (Explorer.explore ~symmetry:true ~por:true
           (Test_perf_engine.symmetric_tas_config n)))
    [ 2; 3 ]

(* --- verify: reports agree field by field --- *)

let check_reports_equal name (a : Protocol.report) (b : Protocol.report) =
  Alcotest.(check bool)
    (name ^ ": agreement") a.Protocol.agreement b.Protocol.agreement;
  Alcotest.(check bool)
    (name ^ ": validity") a.Protocol.validity b.Protocol.validity;
  Alcotest.(check bool)
    (name ^ ": wait_free") a.Protocol.wait_free b.Protocol.wait_free;
  Alcotest.(check int) (name ^ ": states") a.Protocol.states b.Protocol.states;
  Alcotest.(check (option (array int)))
    (name ^ ": step_bounds") a.Protocol.step_bounds b.Protocol.step_bounds;
  Alcotest.(check (list value))
    (name ^ ": decisions_seen")
    a.Protocol.decisions_seen b.Protocol.decisions_seen;
  Alcotest.(check bool)
    (name ^ ": truncated") a.Protocol.truncated b.Protocol.truncated

let test_verify_differential () =
  List.iter
    (fun (name, p) ->
      check_reports_equal name
        (Protocol.verify ~por:false p)
        (Protocol.verify p))
    (registry_protocols ())

(* --- failing protocols: same verdict, same counterexample schedule ---

   [find_violation] is a separate pruned DFS that the reduction does not
   touch, so the schedule a failing [verify --out] exports is identical
   with por on or off; the broken registry entries prove it end to
   end. *)

let schedule_sig (v : Protocol.violation) =
  List.map
    (function
      | Protocol.Step p -> Fmt.str "S%d" p | Protocol.Crash p -> Fmt.str "C%d" p)
    v.Protocol.schedule

let test_broken_protocols () =
  List.iter
    (fun (e : Registry.entry) ->
      match e.Registry.build ~n:2 with
      | None -> ()
      | Some p ->
          let name = e.Registry.key ^ " n=2" in
          let off = Protocol.verify ~por:false p in
          let on = Protocol.verify p in
          check_reports_equal name off on;
          Alcotest.(check bool)
            (name ^ ": still caught") false (Protocol.passed on);
          let v_off = Protocol.find_violation p in
          let v_on = Protocol.find_violation p in
          Alcotest.(check (option (list string)))
            (name ^ ": counterexample schedule")
            (Option.map schedule_sig v_off)
            (Option.map schedule_sig v_on))
    Registry.broken

(* --- solver: verdict and strategy identical, nodes only shrink --- *)

let check_solver name inst =
  let v_off, n_off = Solver.solve_with_stats ~por:false inst in
  let v_on, n_on = Solver.solve_with_stats inst in
  Alcotest.(check (list string))
    (name ^ ": verdict + strategy")
    (verdict_sig v_off) (verdict_sig v_on);
  Alcotest.(check bool)
    (name ^ ": no more nodes than unreduced")
    true (n_on <= n_off)

let test_solver_differential () =
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  let queue ?(initial = []) () =
    Queues.fifo ~name:"q" ~initial ~items:[ Value.str "a"; Value.str "b" ] ()
  in
  check_solver "T2 register n=2 d=2" (Solver.of_spec ~n:2 ~depth:2 reg);
  check_solver "T9 queue n=2 d=2"
    (Solver.of_spec ~n:2 ~depth:2
       (queue ~initial:[ Value.str "a"; Value.str "b" ] ()));
  check_solver "T11 queue n=3 d=1"
    (Solver.of_spec ~n:3 ~depth:1
       (queue ~initial:[ Value.str "a"; Value.str "b" ] ()));
  check_solver "TAS n=3 d=1"
    (Solver.of_spec ~n:3 ~depth:1 (Zoo.test_and_set ()))

(* census measurements agree on everything except the node counts,
   which the reduction shrinks by design *)
let test_census_measure () =
  List.iter
    (fun spec ->
      let name = spec.Object_spec.name in
      let off = Census.measure ~max_nodes:2_000_000 ~por:false spec in
      let on = Census.measure ~max_nodes:2_000_000 spec in
      Alcotest.(check string)
        (name ^ ": interpretation")
        off.Census.interpretation on.Census.interpretation;
      Alcotest.(check bool)
        (name ^ ": n=2 outcome")
        true
        (fst off.Census.two_proc = fst on.Census.two_proc);
      Alcotest.(check bool)
        (name ^ ": n=3 outcome")
        true
        (fst off.Census.three_proc = fst on.Census.three_proc);
      Alcotest.(check (option value))
        (name ^ ": winning init n=2")
        off.Census.winning_init2 on.Census.winning_init2;
      Alcotest.(check (option value))
        (name ^ ": winning init n=3")
        off.Census.winning_init3 on.Census.winning_init3)
    [ Zoo.test_and_set (); Zoo.fetch_and_add () ]

(* --- non-vacuity: the reductions actually fire --- *)

let counter name =
  Option.value ~default:0 (Wfs_obs.Metrics.counter_value name)

let test_reductions_fire () =
  let e0 = counter "explorer.por.pruned" in
  ignore (Explorer.explore (Test_perf_engine.symmetric_tas_config 3));
  Alcotest.(check bool)
    "explorer pruned edges" true
    (counter "explorer.por.pruned" > e0);
  let s0 = counter "solver.cutoff.sleep" in
  let reg =
    Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]
  in
  ignore (Solver.solve (Solver.of_spec ~n:2 ~depth:2 reg));
  Alcotest.(check bool)
    "solver slept branches" true
    (counter "solver.cutoff.sleep" > s0)

let suite =
  [
    ( "engine.por",
      [
        Alcotest.test_case "explorer: por = no-por on registry" `Quick
          test_explore_differential;
        Alcotest.test_case "explorer: por under a pool (j=2)" `Quick
          test_explore_pool;
        Alcotest.test_case "explorer: symmetry disables por" `Quick
          test_symmetry_guard;
        Alcotest.test_case "verify: por = no-por reports" `Quick
          test_verify_differential;
        Alcotest.test_case "broken protocols: same counterexamples" `Quick
          test_broken_protocols;
        Alcotest.test_case "solver: por = no-por verdicts" `Quick
          test_solver_differential;
        Alcotest.test_case "census: por = no-por measurements" `Quick
          test_census_measure;
        Alcotest.test_case "reductions actually fire" `Quick
          test_reductions_fire;
      ] );
  ]
