let () =
  Alcotest.run "wfs"
    (Test_value.suite @ Test_spec.suite @ Test_history.suite @ Test_sim.suite
   @ Test_consensus.suite @ Test_hierarchy.suite @ Test_universal.suite
   @ Test_runtime.suite @ Test_service.suite @ Test_extensions.suite @ Test_obs.suite
   @ Test_profile.suite @ Test_fault.suite @ Test_perf_engine.suite
   @ Test_por.suite @ Test_tt.suite @ Test_pool.suite @ Test_export.suite
   @ Test_causal.suite)
