(* The domain pool and everything built on it.

   Unit tests pin down the pool's contract (index-ordered deterministic
   join, lowest-index exception, inline nested calls, reuse, shutdown
   discipline) and the sharded interner's claim-bit semantics.  The
   [engine.parallel] differential suite then checks the tentpole
   guarantee end to end: every registry protocol explored, verified and
   searched for violations with a 4-domain pool produces byte-identical
   results to the sequential engine, and the census / hierarchy table
   print identically when sharded. *)

open Wfs_spec
open Wfs_sim
open Wfs_consensus
open Wfs_hierarchy

let value = Alcotest.testable Value.pp Value.equal

(* --- pool unit tests --- *)

let test_map_order () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          Alcotest.(check int)
            (Fmt.str "size clamps to >= 1 (domains=%d)" domains)
            (max 1 domains) (Pool.size pool);
          let input = Array.init 100 Fun.id in
          let out = Pool.parallel_map pool (fun x -> (x * x) + 1) input in
          Alcotest.(check (array int))
            (Fmt.str "parallel_map = Array.map (domains=%d)" domains)
            (Array.map (fun x -> (x * x) + 1) input)
            out;
          Alcotest.(check (array int))
            (Fmt.str "empty batch (domains=%d)" domains)
            [||]
            (Pool.parallel_map pool (fun x -> x) [||])))
    [ 1; 2; 4 ]

let test_map_list () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list string))
        "map_list preserves order"
        [ "0"; "1"; "2"; "3"; "4" ]
        (Pool.map_list pool string_of_int [ 0; 1; 2; 3; 4 ]))

exception Boom of int

let test_exception_lowest_index () =
  Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 64 Fun.id in
      match
        Pool.parallel_map pool
          (fun i -> if i mod 10 = 3 then raise (Boom i) else i)
          input
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "lowest-indexed failure wins" 3 i)

let test_reuse_across_batches () =
  Pool.with_pool ~domains:2 (fun pool ->
      for round = 1 to 5 do
        let out =
          Pool.parallel_map pool (fun x -> x * round) (Array.init 20 Fun.id)
        in
        Alcotest.(check (array int))
          (Fmt.str "round %d" round)
          (Array.init 20 (fun x -> x * round))
          out
      done)

let test_nested_runs_inline () =
  Pool.with_pool ~domains:2 (fun pool ->
      let out =
        Pool.parallel_map pool
          (fun i ->
            (* a job issuing its own batch must not deadlock on the
               pool's workers: it runs inline *)
            Array.fold_left ( + ) 0
              (Pool.parallel_map pool (fun j -> (i * 10) + j)
                 (Array.init 3 Fun.id)))
          (Array.init 8 Fun.id)
      in
      Alcotest.(check (array int))
        "nested parallel_map"
        (Array.init 8 (fun i -> (i * 30) + 3))
        out)

let test_shutdown () =
  let pool = Pool.create ~domains:2 () in
  ignore (Pool.parallel_map pool Fun.id [| 1; 2; 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  match Pool.parallel_map pool Fun.id [| 1 |] with
  | _ -> Alcotest.fail "use after shutdown should raise"
  | exception Invalid_argument _ -> ()

(* --- sharded interner --- *)

let sharded_values k = List.init k (fun i -> Value.pair (Value.int i) (Value.str "s"))

let test_sharded_claim () =
  let t = Intern.Sharded.create ~stripes:7 ~size_hint:16 () in
  let vs = sharded_values 50 in
  let firsts = List.map (fun v -> Intern.Sharded.intern t v) vs in
  List.iter
    (fun (_, fresh) -> Alcotest.(check bool) "first intern is fresh" true fresh)
    firsts;
  (* ids are dense: a permutation of 0 .. k-1 *)
  Alcotest.(check (list int))
    "ids are dense"
    (List.init 50 Fun.id)
    (List.sort compare (List.map fst firsts));
  let seconds = List.map (fun v -> Intern.Sharded.intern t v) vs in
  List.iter2
    (fun (id1, _) (id2, fresh2) ->
      Alcotest.(check int) "stable id on re-intern" id1 id2;
      Alcotest.(check bool) "claim fires exactly once" false fresh2)
    firsts seconds;
  Alcotest.(check int) "size counts distinct values" 50 (Intern.Sharded.size t);
  List.iter2
    (fun v (id, _) ->
      Alcotest.(check (option int))
        "find_opt agrees" (Some id)
        (Intern.Sharded.find_opt t v))
    vs firsts;
  Alcotest.(check (option int))
    "find_opt misses unseen" None
    (Intern.Sharded.find_opt t (Value.str "unseen"));
  let st = Intern.Sharded.stats t in
  Alcotest.(check int) "stats entries" 50 st.Intern.entries;
  Alcotest.(check bool) "stats load positive" true (st.Intern.load > 0.0)

let test_sharded_parallel () =
  (* concurrent interning from 4 domains: each value claimed exactly
     once, every domain agrees on the ids afterwards *)
  let t = Intern.Sharded.create () in
  let vs = Array.of_list (sharded_values 200) in
  Pool.with_pool ~domains:4 (fun pool ->
      let fresh_counts =
        Pool.parallel_map pool
          (fun _ ->
            Array.fold_left
              (fun acc v ->
                let _, fresh = Intern.Sharded.intern t v in
                if fresh then acc + 1 else acc)
              0 vs)
          [| 0; 1; 2; 3 |]
      in
      Alcotest.(check int)
        "each value claimed exactly once across domains" 200
        (Array.fold_left ( + ) 0 fresh_counts));
  Alcotest.(check int) "size after race" 200 (Intern.Sharded.size t);
  Alcotest.(check (list int))
    "dense ids after race"
    (List.init 200 Fun.id)
    (List.sort compare
       (Array.to_list
          (Array.map
             (fun v ->
               match Intern.Sharded.find_opt t v with
               | Some id -> id
               | None -> Alcotest.fail "value lost")
             vs)))

let test_intern_stats () =
  let t = Intern.create ~size_hint:64 () in
  List.iter (fun v -> ignore (Intern.intern t v)) (sharded_values 30);
  let st = Intern.stats t in
  Alcotest.(check int) "entries" 30 st.Intern.entries;
  Alcotest.(check bool) "buckets positive" true (st.Intern.buckets > 0);
  Alcotest.(check bool) "max_bucket sane" true (st.Intern.max_bucket >= 1);
  Alcotest.(check bool) "load sane" true (st.Intern.load > 0.0)

(* --- engine.parallel: the sequential/parallel differential --- *)

let with_pool4 f = Pool.with_pool ~domains:4 f

let test_explore_parallel_differential () =
  with_pool4 (fun pool ->
      List.iter
        (fun (name, (p : Protocol.t)) ->
          let seq = Explorer.explore p.Protocol.config in
          let par = Explorer.explore ~pool p.Protocol.config in
          Test_perf_engine.check_stats_equal (name ^ " [j=4]") seq par)
        (Test_perf_engine.registry_protocols ()))

let test_explore_parallel_crashes () =
  with_pool4 (fun pool ->
      List.iter
        (fun (name, (p : Protocol.t)) ->
          let seq = Explorer.explore ~crashes:1 p.Protocol.config in
          let par = Explorer.explore ~crashes:1 ~pool p.Protocol.config in
          Test_perf_engine.check_stats_equal
            (name ^ " [j=4, crashes=1]")
            seq par)
        (Test_perf_engine.registry_protocols ()))

let test_verify_parallel_differential () =
  with_pool4 (fun pool ->
      List.iter
        (fun (name, p) ->
          let a = Protocol.verify p in
          let b = Protocol.verify ~pool p in
          Alcotest.(check bool)
            (name ^ ": agreement") a.Protocol.agreement b.Protocol.agreement;
          Alcotest.(check bool)
            (name ^ ": validity") a.Protocol.validity b.Protocol.validity;
          Alcotest.(check bool)
            (name ^ ": wait_free") a.Protocol.wait_free b.Protocol.wait_free;
          Alcotest.(check int)
            (name ^ ": states") a.Protocol.states b.Protocol.states;
          Alcotest.(check (list value))
            (name ^ ": decisions_seen")
            a.Protocol.decisions_seen b.Protocol.decisions_seen)
        (Test_perf_engine.registry_protocols ()))

let violation_sig = function
  | None -> [ "no violation" ]
  | Some (v : Protocol.violation) ->
      (match v.Protocol.kind with
      | `Disagreement -> "DISAGREEMENT"
      | `Invalid_decision -> "INVALID")
      :: List.map
           (function
             | Protocol.Step pid -> Fmt.str "step %d" pid
             | Protocol.Crash pid -> Fmt.str "crash %d" pid)
           v.Protocol.schedule
      @ List.map
          (fun (pid, d) -> Fmt.str "P%d=%a" pid Value.pp d)
          v.Protocol.decisions

let test_find_violation_parallel () =
  with_pool4 (fun pool ->
      let naive n =
        match (Registry.find "register-naive").Registry.build ~n with
        | Some p -> p
        | None -> Alcotest.fail "register-naive should build"
      in
      List.iter
        (fun (name, crashes, p) ->
          Alcotest.(check (list string))
            (name ^ ": identical schedule")
            (violation_sig (Protocol.find_violation ~crashes p))
            (violation_sig (Protocol.find_violation ~crashes ~pool p)))
        [
          ("register-naive n=2", 0, naive 2);
          ("register-naive n=3", 0, naive 3);
          ("register-naive n=2 crashes=1", 1, naive 2);
          ("cas n=3 (no violation)", 0, Cas_consensus.protocol ~n:3 ());
          ( "queue n=2 crashes=1 (crash violation)",
            1,
            Queue_consensus.protocol () );
        ])

let test_census_parallel () =
  (* tiny budget: verdicts degrade to Budget identically on both paths,
     and the whole report must print byte-identically *)
  let seq = Fmt.str "%a" Census.pp (Census.run ~max_nodes:50_000 ()) in
  with_pool4 (fun pool ->
      let par = Fmt.str "%a" Census.pp (Census.run ~max_nodes:50_000 ~pool ()) in
      Alcotest.(check string) "census output byte-identical" seq par)

let test_table_parallel () =
  let seq = Fmt.str "%a" Table.pp (Table.generate ()) in
  with_pool4 (fun pool ->
      let par = Fmt.str "%a" Table.pp (Table.generate ~pool ()) in
      Alcotest.(check string) "hierarchy table byte-identical" seq par)

let suite =
  [
    ( "pool",
      [
        Alcotest.test_case "parallel_map order and values" `Quick
          test_map_order;
        Alcotest.test_case "map_list" `Quick test_map_list;
        Alcotest.test_case "lowest-index exception wins" `Quick
          test_exception_lowest_index;
        Alcotest.test_case "reuse across batches" `Quick
          test_reuse_across_batches;
        Alcotest.test_case "nested parallel_map runs inline" `Quick
          test_nested_runs_inline;
        Alcotest.test_case "shutdown is idempotent and final" `Quick
          test_shutdown;
      ] );
    ( "pool.intern",
      [
        Alcotest.test_case "sharded claim-bit semantics" `Quick
          test_sharded_claim;
        Alcotest.test_case "sharded interning under contention" `Quick
          test_sharded_parallel;
        Alcotest.test_case "table stats" `Quick test_intern_stats;
      ] );
    ( "engine.parallel",
      [
        Alcotest.test_case "explore: j=1 = j=4 on registry" `Quick
          test_explore_parallel_differential;
        Alcotest.test_case "explore: j=1 = j=4 with crashes" `Quick
          test_explore_parallel_crashes;
        Alcotest.test_case "verify: j=1 = j=4 reports" `Quick
          test_verify_parallel_differential;
        Alcotest.test_case "find_violation: identical schedules" `Quick
          test_find_violation_parallel;
        Alcotest.test_case "census: sharded output byte-identical" `Quick
          test_census_parallel;
        Alcotest.test_case "hierarchy table: sharded byte-identical" `Quick
          test_table_parallel;
      ] );
  ]
