(* Sequential-semantics tests for the object zoo. *)

open Wfs_spec

let value = Alcotest.testable Value.pp Value.equal

let apply_all spec ops =
  List.fold_left
    (fun (state, results) op ->
      let state', res = Object_spec.apply spec state op in
      (state', res :: results))
    (spec.Object_spec.init, [])
    ops
  |> fun (state, results) -> (state, List.rev results)

(* --- registers --- *)

let test_register_read_write () =
  let r = Zoo.register () in
  let _, results =
    apply_all r [ Registers.read; Registers.write (Value.pid 1); Registers.read ]
  in
  Alcotest.(check (list value))
    "read;write;read"
    [ Value.bottom; Value.unit; Value.pid 1 ]
    results

let test_write_returns_unit () =
  (* a value-returning write would secretly be a swap and would break
     Theorem 2 *)
  let r = Zoo.register () in
  let _, res =
    Object_spec.apply r r.Object_spec.init (Registers.write (Value.pid 0))
  in
  Alcotest.check value "write result" Value.unit res

let test_test_and_set () =
  let r = Zoo.test_and_set () in
  let _, results = apply_all r [ Registers.tas; Registers.tas; Registers.read ] in
  Alcotest.(check (list value))
    "tas;tas;read"
    [ Value.int 0; Value.int 1; Value.int 1 ]
    results

let test_fetch_and_add () =
  let r = Registers.fetch_and_add ~init:10 () in
  let _, results =
    apply_all r [ Registers.faa 1; Registers.faa 1; Registers.read ]
  in
  Alcotest.(check (list value))
    "faa returns old"
    [ Value.int 10; Value.int 11; Value.int 12 ]
    results

let test_swap_register () =
  let r = Registers.swap_register ~init:(Value.int 0) [ Value.int 1 ] in
  let _, results =
    apply_all r [ Registers.swap (Value.int 1); Registers.swap (Value.int 1) ]
  in
  Alcotest.(check (list value))
    "swap returns old"
    [ Value.int 0; Value.int 1 ]
    results

let test_cas_semantics () =
  let r =
    Registers.compare_and_swap ~init:Value.bottom
      [ Value.bottom; Value.pid 0; Value.pid 1 ]
  in
  let _, results =
    apply_all r
      [
        Registers.cas ~expected:Value.bottom ~replacement:(Value.pid 0);
        Registers.cas ~expected:Value.bottom ~replacement:(Value.pid 1);
        Registers.read;
      ]
  in
  Alcotest.(check (list value))
    "first cas wins"
    [ Value.bottom; Value.pid 0; Value.pid 0 ]
    results

let test_unknown_op () =
  let r = Zoo.register () in
  match Object_spec.apply r r.Object_spec.init (Op.nullary "frobnicate") with
  | _ -> Alcotest.fail "expected Unknown_operation"
  | exception Object_spec.Unknown_operation _ -> ()

(* --- queues, stacks --- *)

let test_fifo_order () =
  let q = Queues.fifo ~items:[ Value.int 1; Value.int 2 ] () in
  let _, results =
    apply_all q
      [
        Queues.enq (Value.int 1);
        Queues.enq (Value.int 2);
        Queues.deq;
        Queues.deq;
        Queues.deq;
      ]
  in
  Alcotest.(check (list value))
    "fifo order + empty"
    [ Value.unit; Value.unit; Value.int 1; Value.int 2; Queues.empty_result ]
    results

let test_queue_initial () =
  let q =
    Queues.fifo
      ~initial:[ Value.str "first"; Value.str "second" ]
      ~items:[] ()
  in
  let _, results = apply_all q [ Queues.deq; Queues.deq ] in
  Alcotest.(check (list value))
    "pre-loaded queue"
    [ Value.str "first"; Value.str "second" ]
    results

let test_peek_nondestructive () =
  let q = Queues.augmented ~initial:[ Value.int 7 ] ~items:[ Value.int 7 ] () in
  let _, results = apply_all q [ Queues.peek; Queues.peek; Queues.deq ] in
  Alcotest.(check (list value))
    "peek;peek;deq"
    [ Value.int 7; Value.int 7; Value.int 7 ]
    results

let test_stack_lifo () =
  let s = Queues.stack ~items:[ Value.int 1; Value.int 2 ] () in
  let _, results =
    apply_all s
      [ Queues.push (Value.int 1); Queues.push (Value.int 2); Queues.pop;
        Queues.pop; Queues.pop ]
  in
  Alcotest.(check (list value))
    "lifo order + empty"
    [ Value.unit; Value.unit; Value.int 2; Value.int 1; Queues.empty_result ]
    results

let test_priority_queue () =
  let pq = Queues.priority_queue ~keys:[ 1; 2; 3 ] () in
  let _, results =
    apply_all pq
      [
        Queues.insert (Value.int 3);
        Queues.insert (Value.int 1);
        Queues.insert (Value.int 2);
        Queues.extract_min;
        Queues.min_op;
        Queues.extract_min;
      ]
  in
  Alcotest.(check (list value))
    "min ordering"
    [ Value.unit; Value.unit; Value.unit; Value.int 1; Value.int 2; Value.int 2 ]
    results

let test_pqueue_canonical_state () =
  (* different insertion orders produce identical states *)
  let pq = Queues.priority_queue ~keys:[ 1; 2 ] () in
  let s1, _ =
    apply_all pq [ Queues.insert (Value.int 1); Queues.insert (Value.int 2) ]
  in
  let s2, _ =
    apply_all pq [ Queues.insert (Value.int 2); Queues.insert (Value.int 1) ]
  in
  Alcotest.check value "canonical" s1 s2

(* --- collections --- *)

let test_set_semantics () =
  let s = Collections.set ~elements:[ Value.int 1; Value.int 2 ] () in
  let _, results =
    apply_all s
      [
        Collections.insert (Value.int 2);
        Collections.insert (Value.int 1);
        Collections.insert (Value.int 1);
        Collections.member (Value.int 1);
        Collections.remove;
        Collections.member (Value.int 1);
        Collections.size;
      ]
  in
  Alcotest.(check (list value))
    "set ops"
    [
      Value.bool true;  (* 2 was new *)
      Value.bool true;  (* 1 was new *)
      Value.bool false; (* duplicate *)
      Value.bool true;
      Value.int 1;      (* deterministic remove takes least *)
      Value.bool false;
      Value.int 1;
    ]
    results

let test_counter () =
  let c = Collections.counter () in
  let _, results =
    apply_all c [ Collections.incr; Collections.incr; Collections.decr ]
  in
  Alcotest.(check (list value))
    "counter returns new value"
    [ Value.int 1; Value.int 2; Value.int 1 ]
    results

(* --- memory --- *)

let init2 = [ Value.pid 0; Value.pid 1 ]

let test_memory_move () =
  let m = Memory.with_move ~size:2 ~init:init2 Zoo.small_values in
  let _, results =
    apply_all m [ Memory.move ~src:1 ~dst:0; Memory.read 0; Memory.read 1 ]
  in
  Alcotest.(check (list value))
    "move copies src into dst"
    [ Value.unit; Value.pid 1; Value.pid 1 ]
    results

let test_memory_swap () =
  let m = Memory.with_swap ~size:2 ~init:init2 Zoo.small_values in
  let _, results =
    apply_all m [ Memory.swap 0 1; Memory.read 0; Memory.read 1 ]
  in
  Alcotest.(check (list value))
    "swap exchanges"
    [ Value.unit; Value.pid 1; Value.pid 0 ]
    results

let test_memory_assign () =
  let m =
    Memory.n_assignment ~size:3
      ~init:[ Value.bottom; Value.bottom; Value.bottom ]
      Zoo.small_values
  in
  let _, results =
    apply_all m
      [
        Memory.assign [ (0, Value.pid 1); (2, Value.pid 1) ];
        Memory.read 0;
        Memory.read 1;
        Memory.read 2;
      ]
  in
  Alcotest.(check (list value))
    "multi-assignment atomic"
    [ Value.unit; Value.pid 1; Value.bottom; Value.pid 1 ]
    results

let test_memory_bounds () =
  let m = Memory.with_move ~size:2 ~init:init2 Zoo.small_values in
  match Object_spec.apply m m.Object_spec.init (Memory.read 5) with
  | _ -> Alcotest.fail "expected Unknown_operation for out-of-range register"
  | exception Object_spec.Unknown_operation _ -> ()

(* --- channels --- *)

let test_fifo_channel () =
  let ch = Channels.fifo_point_to_point ~processes:2 ~messages:(Zoo.pids 2) () in
  let _, results =
    apply_all ch
      [
        Channels.send ~target:1 (Value.pid 0);
        Channels.send ~target:1 (Value.pid 1);
        Channels.recv ~me:1;
        Channels.recv ~me:1;
        Channels.recv ~me:1;
        Channels.recv ~me:0;
      ]
  in
  Alcotest.(check (list value))
    "fifo per-receiver delivery"
    [
      Value.unit; Value.unit;
      Value.some (Value.pid 0);
      Value.some (Value.pid 1);
      Channels.no_message;
      Channels.no_message;
    ]
    results

let test_ordered_broadcast () =
  let ch = Channels.ordered_broadcast ~processes:2 ~messages:(Zoo.pids 2) () in
  let _, results =
    apply_all ch
      [
        Channels.broadcast (Value.pid 1);
        Channels.broadcast (Value.pid 0);
        Channels.next ~me:0;
        Channels.next ~me:1;
        Channels.next ~me:0;
      ]
  in
  Alcotest.(check (list value))
    "same global order for all readers"
    [
      Value.unit; Value.unit;
      Value.some (Value.pid 1);
      Value.some (Value.pid 1);
      Value.some (Value.pid 0);
    ]
    results

(* --- fetch-and-cons / consensus object --- *)

let test_fetch_and_cons () =
  let l = Fetch_and_cons.list_object ~items:(Zoo.pids 2) () in
  let _, results =
    apply_all l
      [
        Fetch_and_cons.fetch_and_cons (Value.pid 0);
        Fetch_and_cons.fetch_and_cons (Value.pid 1);
        Fetch_and_cons.car;
        Fetch_and_cons.cdr;
        Fetch_and_cons.null;
      ]
  in
  Alcotest.(check (list value))
    "fetch-and-cons returns the tail"
    [
      Value.list [];
      Value.list [ Value.pid 0 ];
      Value.pid 1;
      Value.list [ Value.pid 0 ];
      Value.bool false;
    ]
    results

let test_consensus_object_sticks () =
  let c = Consensus_object.single ~values:(Zoo.pids 2) () in
  let _, results =
    apply_all c
      [ Consensus_object.decide (Value.pid 1); Consensus_object.decide (Value.pid 0) ]
  in
  Alcotest.(check (list value))
    "first decide sticks"
    [ Value.pid 1; Value.pid 1 ]
    results

let test_consensus_array_rounds_independent () =
  let c = Consensus_object.array ~rounds:2 ~values:(Zoo.pids 2) () in
  let _, results =
    apply_all c
      [
        Consensus_object.decide_round 0 (Value.pid 1);
        Consensus_object.decide_round 1 (Value.pid 0);
        Consensus_object.decide_round 0 (Value.pid 0);
      ]
  in
  Alcotest.(check (list value))
    "rounds independent"
    [ Value.pid 1; Value.pid 0; Value.pid 1 ]
    results

(* --- generic spec machinery --- *)

let test_eval_result () =
  let q = Queues.fifo ~items:[ Value.int 1 ] () in
  let state = Object_spec.eval q [ Queues.enq (Value.int 1) ] in
  Alcotest.check value "eval" (Value.list [ Value.int 1 ]) state;
  Alcotest.check value "result" (Value.int 1)
    (Object_spec.result q state Queues.deq)

let test_reachable_states () =
  let r = Zoo.test_and_set () in
  let states = Object_spec.reachable_states r in
  Alcotest.(check int) "tas register has two reachable states" 2
    (List.length states)

let test_zoo_total_in_init () =
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (Fmt.str "%s total in init" spec.Object_spec.name)
        true
        (Object_spec.total_in spec spec.Object_spec.init))
    (Zoo.all ())

let test_zoo_find () =
  let q = Zoo.find "fifo-queue" in
  Alcotest.(check string) "find by name" "fifo-queue" q.Object_spec.name;
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Zoo.find: unknown object \"nope\"") (fun () ->
      ignore (Zoo.find "nope"))

(* --- qcheck properties --- *)

let ops_gen spec =
  let menu = Array.of_list spec.Object_spec.menu in
  QCheck2.Gen.(
    list_size (int_range 0 12)
      (map (fun i -> menu.(i mod Array.length menu)) (int_range 0 1000)))

let prop_deterministic spec =
  QCheck2.Test.make
    ~name:(Fmt.str "%s: eval is deterministic" spec.Object_spec.name)
    ~count:100 (ops_gen spec) (fun ops ->
      Value.equal (Object_spec.eval spec ops) (Object_spec.eval spec ops))

let prop_total spec =
  QCheck2.Test.make
    ~name:(Fmt.str "%s: menu ops total on reachable states" spec.Object_spec.name)
    ~count:100 (ops_gen spec) (fun ops ->
      let state = Object_spec.eval spec ops in
      Object_spec.total_in spec state)

let prop_queue_fifo =
  QCheck2.Test.make ~name:"queue: deq order = enq order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 5))
    (fun xs ->
      let q = Queues.fifo ~items:(List.map Value.int xs) () in
      let state =
        Object_spec.eval q (List.map (fun x -> Queues.enq (Value.int x)) xs)
      in
      let rec drain state acc =
        let state', res = Object_spec.apply q state Queues.deq in
        if Value.equal res Queues.empty_result then List.rev acc
        else drain state' (res :: acc)
      in
      drain state [] = List.map Value.int xs)

let prop_stack_reverses =
  QCheck2.Test.make ~name:"stack: pop order reverses push order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 5))
    (fun xs ->
      let s = Queues.stack ~items:(List.map Value.int xs) () in
      let state =
        Object_spec.eval s (List.map (fun x -> Queues.push (Value.int x)) xs)
      in
      let rec drain state acc =
        let state', res = Object_spec.apply s state Queues.pop in
        if Value.equal res Queues.empty_result then List.rev acc
        else drain state' (res :: acc)
      in
      drain state [] = List.rev_map Value.int xs)

let prop_pqueue_sorted =
  QCheck2.Test.make ~name:"priority queue drains sorted" ~count:200
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 9))
    (fun xs ->
      let pq = Queues.priority_queue ~keys:xs () in
      let state =
        Object_spec.eval pq (List.map (fun x -> Queues.insert (Value.int x)) xs)
      in
      let rec drain state acc =
        let state', res = Object_spec.apply pq state Queues.extract_min in
        if Value.equal res Queues.empty_result then List.rev acc
        else drain state' (res :: acc)
      in
      drain state [] = List.map Value.int (List.sort compare xs))

let prop_faa_sums =
  QCheck2.Test.make ~name:"fetch-and-add accumulates" ~count:200
    QCheck2.Gen.(list_size (int_range 0 10) (int_range 1 5))
    (fun ks ->
      let r = Registers.fetch_and_add ~increments:ks ~init:0 () in
      let state = Object_spec.eval r (List.map Registers.faa ks) in
      let total = List.fold_left ( + ) 0 ks in
      Value.equal state (Value.int total))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    (List.concat_map
       (fun spec -> [ prop_deterministic spec; prop_total spec ])
       (Zoo.all ())
    @ [ prop_queue_fifo; prop_stack_reverses; prop_pqueue_sorted; prop_faa_sums ])

let suite =
  [
    ( "spec.registers",
      [
        Alcotest.test_case "read/write" `Quick test_register_read_write;
        Alcotest.test_case "write returns unit" `Quick test_write_returns_unit;
        Alcotest.test_case "test-and-set" `Quick test_test_and_set;
        Alcotest.test_case "fetch-and-add" `Quick test_fetch_and_add;
        Alcotest.test_case "swap" `Quick test_swap_register;
        Alcotest.test_case "compare-and-swap" `Quick test_cas_semantics;
        Alcotest.test_case "unknown operation" `Quick test_unknown_op;
      ] );
    ( "spec.containers",
      [
        Alcotest.test_case "fifo order" `Quick test_fifo_order;
        Alcotest.test_case "pre-loaded queue" `Quick test_queue_initial;
        Alcotest.test_case "peek non-destructive" `Quick test_peek_nondestructive;
        Alcotest.test_case "stack lifo" `Quick test_stack_lifo;
        Alcotest.test_case "priority queue" `Quick test_priority_queue;
        Alcotest.test_case "pqueue canonical state" `Quick
          test_pqueue_canonical_state;
        Alcotest.test_case "set" `Quick test_set_semantics;
        Alcotest.test_case "counter" `Quick test_counter;
      ] );
    ( "spec.memory",
      [
        Alcotest.test_case "move" `Quick test_memory_move;
        Alcotest.test_case "swap" `Quick test_memory_swap;
        Alcotest.test_case "assign" `Quick test_memory_assign;
        Alcotest.test_case "bounds" `Quick test_memory_bounds;
      ] );
    ( "spec.channels",
      [
        Alcotest.test_case "fifo channel" `Quick test_fifo_channel;
        Alcotest.test_case "ordered broadcast" `Quick test_ordered_broadcast;
      ] );
    ( "spec.misc",
      [
        Alcotest.test_case "fetch-and-cons" `Quick test_fetch_and_cons;
        Alcotest.test_case "consensus object sticks" `Quick
          test_consensus_object_sticks;
        Alcotest.test_case "consensus array" `Quick
          test_consensus_array_rounds_independent;
        Alcotest.test_case "eval/result" `Quick test_eval_result;
        Alcotest.test_case "reachable states" `Quick test_reachable_states;
        Alcotest.test_case "zoo total in init" `Quick test_zoo_total_in_init;
        Alcotest.test_case "zoo find" `Quick test_zoo_find;
      ] );
    ("spec.properties", qsuite);
  ]
