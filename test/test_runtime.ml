(* Multicore runtime: primitives, consensus objects, fetch-and-cons
   implementations, and the universal construction on real domains. *)

open Wfs_runtime
module P = Primitives

let domains = 4

(* --- primitives --- *)

let test_tas_single_winner () =
  let flag = P.Test_and_set.make () in
  let winners =
    P.run_domains domains (fun _ -> not (P.Test_and_set.test_and_set flag))
  in
  Alcotest.(check int) "exactly one winner" 1
    (List.length (List.filter Fun.id winners))

let test_faa_counts () =
  let counter = P.Fetch_and_add.make 0 in
  let per_domain = 1000 in
  let olds =
    P.run_domains domains (fun _ ->
        List.init per_domain (fun _ -> P.Fetch_and_add.fetch_and_add counter 1))
  in
  Alcotest.(check int) "total" (domains * per_domain)
    (P.Fetch_and_add.read counter);
  (* every observed old value distinct: faa linearizes *)
  let all = List.concat olds in
  Alcotest.(check int) "all distinct" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_swap_token () =
  (* one token travels through the register; everyone else gets None *)
  let reg = P.Swap.make (Some "token") in
  let got = P.run_domains domains (fun _ -> P.Swap.swap reg None) in
  Alcotest.(check int) "one token" 1
    (List.length (List.filter Option.is_some got))

let test_cas_paper_semantics () =
  let r = P.Cas.make 0 in
  let old = P.Cas.compare_and_swap r ~expected:0 ~replacement:5 in
  Alcotest.(check int) "returns old on success" 0 old;
  let old = P.Cas.compare_and_swap r ~expected:0 ~replacement:9 in
  Alcotest.(check int) "returns old on failure" 5 old;
  Alcotest.(check int) "unchanged" 5 (P.Cas.read r)

(* --- consensus --- *)

let test_one_shot_agreement () =
  for _ = 1 to 50 do
    let c = Consensus_rt.One_shot.make () in
    let decisions = P.run_domains domains (fun pid -> Consensus_rt.One_shot.decide c pid) in
    (match decisions with
    | d :: rest ->
        List.iter (fun d' -> Alcotest.(check int) "agreement" d d') rest;
        (* validity: the decision is one of the participants *)
        Alcotest.(check bool) "validity" true (d >= 0 && d < domains)
    | [] -> Alcotest.fail "no decisions");
    (* the winner's own decision is itself *)
    let winner = List.hd decisions in
    Alcotest.(check int) "winner decided itself" winner
      (List.nth decisions winner)
  done

let test_tas_two_agreement () =
  for _ = 1 to 200 do
    let c = Consensus_rt.Tas_two.make () in
    match P.run_domains 2 (fun pid -> Consensus_rt.Tas_two.decide c ~pid (100 + pid)) with
    | [ a; b ] ->
        Alcotest.(check int) "agreement" a b;
        Alcotest.(check bool) "validity" true (a = 100 || a = 101)
    | _ -> Alcotest.fail "expected two decisions"
  done

let test_unbounded_rounds_independent () =
  let c = Consensus_rt.Unbounded.make () in
  Alcotest.(check int) "round 0" 7 (Consensus_rt.Unbounded.decide c ~round:0 7);
  Alcotest.(check int) "round 100 crosses chunks" 9
    (Consensus_rt.Unbounded.decide c ~round:100 9);
  Alcotest.(check int) "round 0 sticks" 7
    (Consensus_rt.Unbounded.decide c ~round:0 8)

(* --- fetch-and-cons --- *)

let check_fac_chain name fac_run =
  (* each caller's returned tail must be exactly the final chain's
     suffix after its own item — i.e. the chain linearizes the calls *)
  let per_domain = 50 in
  let results, final =
    fac_run ~domains ~per_domain
  in
  Alcotest.(check int)
    (name ^ ": chain holds every item")
    (domains * per_domain) (List.length final);
  let rec suffix_after x = function
    | [] -> None
    | y :: rest -> if x = y then Some rest else suffix_after x rest
  in
  List.iter
    (fun (item, tail) ->
      match suffix_after item final with
      | Some expected ->
          Alcotest.(check bool)
            (name ^ ": returned tail matches the chain")
            true (expected = tail)
      | None -> Alcotest.fail (name ^ ": item missing from chain"))
    results

let test_cas_fac () =
  check_fac_chain "cas" (fun ~domains ~per_domain ->
      let t = Fetch_and_cons_rt.Cas_based.make () in
      let results =
        P.run_domains domains (fun pid ->
            List.init per_domain (fun i ->
                let item = (pid, i) in
                (item, Fetch_and_cons_rt.Cas_based.fetch_and_cons t item)))
      in
      (List.concat results, Fetch_and_cons_rt.Cas_based.contents t))

let test_swap_fac () =
  check_fac_chain "swap" (fun ~domains ~per_domain ->
      let t = Fetch_and_cons_rt.Swap_based.make () in
      let results =
        P.run_domains domains (fun pid ->
            List.init per_domain (fun i ->
                let item = (pid, i) in
                (item, Fetch_and_cons_rt.Swap_based.fetch_and_cons t item)))
      in
      (List.concat results, Fetch_and_cons_rt.Swap_based.contents t))

let test_rounds_fac_views_coherent () =
  let n = domains in
  let t = Fetch_and_cons_rt.Rounds.make ~n ~equal:(fun (a, b) (c, d) -> a = c && b = d) in
  let per_domain = 10 in
  let results =
    P.run_domains n (fun pid ->
        let h = Fetch_and_cons_rt.Rounds.handle t ~pid in
        List.init per_domain (fun i ->
            let item = (pid, i) in
            (item, item :: Fetch_and_cons_rt.Rounds.fetch_and_cons h item)))
  in
  let views = List.map snd (List.concat results) in
  (* coherence (Lemma 24): any two full views are suffix-related *)
  let is_suffix a b =
    let la = List.length a and lb = List.length b in
    la <= lb && List.filteri (fun i _ -> i >= lb - la) b = a
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "views coherent" true
            (is_suffix a b || is_suffix b a))
        views)
    views;
  (* all items present in the longest view *)
  let longest =
    List.fold_left (fun acc v -> if List.length v > List.length acc then v else acc)
      [] views
  in
  Alcotest.(check int) "longest view has all items" (n * per_domain)
    (List.length longest)

(* --- universal construction --- *)

module UQ = Universal_rt.Lock_free (Seq_objects.Queue_of_int)
module WQ = Universal_rt.Wait_free (Seq_objects.Queue_of_int)
module LQ = Universal_rt.Locked (Seq_objects.Queue_of_int)
module UC = Universal_rt.Lock_free (Seq_objects.Counter)

let queue_stress name enq deq =
  (* half the domains enqueue tagged items, half dequeue; conservation:
     dequeued ⊎ leftover = enqueued, no duplicates *)
  let per_domain = 200 in
  let producers = domains / 2 in
  let consumed = Atomic.make [] in
  let produced = Atomic.make [] in
  let note atom x =
    let rec go () =
      let old = Atomic.get atom in
      if not (Atomic.compare_and_set atom old (x :: old)) then go ()
    in
    go ()
  in
  let results =
    P.run_domains domains (fun pid ->
        if pid < producers then
          for i = 0 to per_domain - 1 do
            let item = (pid * 1_000_000) + i in
            enq item;
            note produced item
          done
        else
          for _ = 0 to per_domain - 1 do
            match deq () with
            | Some x -> note consumed x
            | None -> ()
          done)
  in
  ignore results;
  (* drain what's left *)
  let rec drain acc = match deq () with Some x -> drain (x :: acc) | None -> acc in
  let leftover = drain [] in
  let consumed = Atomic.get consumed and produced = Atomic.get produced in
  let sort = List.sort compare in
  Alcotest.(check (list int))
    (name ^ ": conservation")
    (sort produced)
    (sort (consumed @ leftover));
  Alcotest.(check int)
    (name ^ ": no duplicates")
    (List.length (consumed @ leftover))
    (List.length (List.sort_uniq compare (consumed @ leftover)))

let test_lock_free_universal_queue () =
  let q = UQ.create () in
  queue_stress "lock-free universal queue"
    (fun x -> ignore (UQ.apply q (Seq_objects.Queue_of_int.Enq x)))
    (fun () ->
      match UQ.apply q Seq_objects.Queue_of_int.Deq with
      | Seq_objects.Queue_of_int.Deqd x -> Some x
      | Seq_objects.Queue_of_int.Empty -> None
      | Seq_objects.Queue_of_int.Enqueued -> None)

let test_wait_free_universal_queue () =
  let q = WQ.create ~n:domains () in
  let pid_key = Domain.DLS.new_key (fun () -> -1) in
  let apply_with pid op =
    ignore pid_key;
    WQ.apply q ~pid op
  in
  (* run with explicit pids via run_domains *)
  let per_domain = 100 in
  let producers = domains / 2 in
  let outputs =
    P.run_domains domains (fun pid ->
        if pid < producers then
          List.init per_domain (fun i ->
              let item = (pid * 1_000_000) + i in
              ignore (apply_with pid (Seq_objects.Queue_of_int.Enq item));
              `Produced item)
        else
          List.filter_map
            (fun _ ->
              match apply_with pid Seq_objects.Queue_of_int.Deq with
              | Seq_objects.Queue_of_int.Deqd x -> Some (`Consumed x)
              | _ -> None)
            (List.init per_domain Fun.id))
  in
  let all = List.concat outputs in
  let produced =
    List.filter_map (function `Produced x -> Some x | _ -> None) all
  in
  let consumed =
    List.filter_map (function `Consumed x -> Some x | _ -> None) all
  in
  (* drain remaining via pid 0 *)
  let rec drain acc =
    match WQ.apply q ~pid:0 Seq_objects.Queue_of_int.Deq with
    | Seq_objects.Queue_of_int.Deqd x -> drain (x :: acc)
    | _ -> acc
  in
  let leftover = drain [] in
  let sort = List.sort compare in
  Alcotest.(check (list int)) "wait-free universal queue: conservation"
    (sort produced)
    (sort (consumed @ leftover))

let test_locked_universal_queue () =
  let q = LQ.create () in
  queue_stress "locked queue baseline"
    (fun x -> ignore (LQ.apply q (Seq_objects.Queue_of_int.Enq x)))
    (fun () ->
      match LQ.apply q Seq_objects.Queue_of_int.Deq with
      | Seq_objects.Queue_of_int.Deqd x -> Some x
      | _ -> None)

let test_universal_counter_exact () =
  let c = UC.create () in
  let per_domain = 500 in
  let _ =
    P.run_domains domains (fun _ ->
        for _ = 1 to per_domain do
          ignore (UC.apply c Seq_objects.Counter.Incr)
        done)
  in
  Alcotest.(check int) "exact count" (domains * per_domain)
    (UC.apply c Seq_objects.Counter.Read)

let test_universal_counter_results_distinct () =
  (* incr returns the new value; linearizability ⇒ all distinct *)
  let c = UC.create () in
  let per_domain = 300 in
  let results =
    P.run_domains domains (fun _ ->
        List.init per_domain (fun _ -> UC.apply c Seq_objects.Counter.Incr))
  in
  let all = List.concat results in
  Alcotest.(check int) "distinct increments" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_ledger_conservation () =
  let module UL = Universal_rt.Lock_free (Seq_objects.Ledger) in
  let l = UL.create () in
  ignore (UL.apply l (Seq_objects.Ledger.Open ("a", 1000)));
  ignore (UL.apply l (Seq_objects.Ledger.Open ("b", 1000)));
  let _ =
    P.run_domains domains (fun pid ->
        for i = 1 to 200 do
          let src, dst = if (pid + i) mod 2 = 0 then ("a", "b") else ("b", "a") in
          ignore (UL.apply l (Seq_objects.Ledger.Transfer { src; dst; amount = 7 }))
        done)
  in
  Alcotest.(check int) "money conserved" 2000
    (Seq_objects.Ledger.total (UL.read l))

(* --- baselines --- *)

let test_treiber_stack () =
  let s = Baselines.Treiber_stack.make () in
  let per_domain = 200 in
  let _ =
    P.run_domains domains (fun pid ->
        for i = 0 to per_domain - 1 do
          Baselines.Treiber_stack.push s ((pid * 1000) + i)
        done)
  in
  let rec drain acc =
    match Baselines.Treiber_stack.pop s with
    | Some x -> drain (x :: acc)
    | None -> acc
  in
  let all = drain [] in
  Alcotest.(check int) "all items present" (domains * per_domain)
    (List.length (List.sort_uniq compare all))

let test_michael_scott_queue () =
  let q = Baselines.Michael_scott_queue.make () in
  let per_domain = 200 in
  let _ =
    P.run_domains domains (fun pid ->
        for i = 0 to per_domain - 1 do
          Baselines.Michael_scott_queue.enqueue q ((pid * 1000) + i)
        done)
  in
  let rec drain acc =
    match Baselines.Michael_scott_queue.dequeue q with
    | Some x -> drain (x :: acc)
    | None -> acc
  in
  let all = List.rev (drain []) in
  Alcotest.(check int) "all items present" (domains * per_domain)
    (List.length (List.sort_uniq compare all));
  (* per-producer FIFO: each producer's items come out in order *)
  for pid = 0 to domains - 1 do
    let mine = List.filter (fun x -> x / 1000 = pid) all in
    Alcotest.(check (list int))
      (Fmt.str "producer %d in order" pid)
      (List.sort compare mine) mine
  done

(* --- recorder + linearizability of runtime histories --- *)

let test_runtime_history_linearizable () =
  let open Wfs_spec in
  let spec = Collections.counter ~name:"c" () in
  let c = UC.create () in
  let recorder = Recorder.create ~capacity:10_000 in
  let per_domain = 5 in
  let _ =
    P.run_domains 3 (fun pid ->
        for _ = 1 to per_domain do
          Recorder.invoke recorder ~pid ~obj:"c" Collections.incr;
          let res = UC.apply c Seq_objects.Counter.Incr in
          Recorder.respond recorder ~pid ~obj:"c" (Value.int res)
        done)
  in
  let history = Recorder.history recorder in
  Alcotest.(check bool) "well-formed" true
    (Wfs_history.History.well_formed history);
  Alcotest.(check bool) "linearizable" true
    (Wfs_history.Linearizability.is_linearizable [ ("c", spec) ] history)

let test_locked_queue_history_linearizable () =
  let open Wfs_spec in
  let spec = Queues.fifo ~name:"q" ~items:[] () in
  let q = LQ.create () in
  let recorder = Recorder.create ~capacity:10_000 in
  let _ =
    P.run_domains 3 (fun pid ->
        for i = 1 to 4 do
          let item = (pid * 100) + i in
          Recorder.invoke recorder ~pid ~obj:"q" (Queues.enq (Value.int item));
          ignore (LQ.apply q (Seq_objects.Queue_of_int.Enq item));
          Recorder.respond recorder ~pid ~obj:"q" Value.unit;
          Recorder.invoke recorder ~pid ~obj:"q" Queues.deq;
          let res =
            match LQ.apply q Seq_objects.Queue_of_int.Deq with
            | Seq_objects.Queue_of_int.Deqd x -> Value.int x
            | _ -> Queues.empty_result
          in
          Recorder.respond recorder ~pid ~obj:"q" res
        done)
  in
  let history = Recorder.history recorder in
  Alcotest.(check bool) "linearizable" true
    (Wfs_history.Linearizability.is_linearizable [ ("q", spec) ] history)

let suite =
  [
    ( "runtime.primitives",
      [
        Alcotest.test_case "tas single winner" `Quick test_tas_single_winner;
        Alcotest.test_case "faa linearizes" `Quick test_faa_counts;
        Alcotest.test_case "swap token" `Quick test_swap_token;
        Alcotest.test_case "cas paper semantics" `Quick test_cas_paper_semantics;
      ] );
    ( "runtime.consensus",
      [
        Alcotest.test_case "one-shot agreement x50" `Quick
          test_one_shot_agreement;
        Alcotest.test_case "tas 2-consensus x200" `Quick test_tas_two_agreement;
        Alcotest.test_case "unbounded rounds" `Quick
          test_unbounded_rounds_independent;
      ] );
    ( "runtime.fetch-and-cons",
      [
        Alcotest.test_case "cas-based chains" `Quick test_cas_fac;
        Alcotest.test_case "swap-based chains (Figs 4-3/4-4)" `Quick
          test_swap_fac;
        Alcotest.test_case "rounds-based coherent (Fig 4-5)" `Quick
          test_rounds_fac_views_coherent;
      ] );
    ( "runtime.universal",
      [
        Alcotest.test_case "lock-free queue stress" `Quick
          test_lock_free_universal_queue;
        Alcotest.test_case "wait-free queue stress" `Quick
          test_wait_free_universal_queue;
        Alcotest.test_case "locked queue baseline" `Quick
          test_locked_universal_queue;
        Alcotest.test_case "counter exact" `Quick test_universal_counter_exact;
        Alcotest.test_case "counter increments distinct" `Quick
          test_universal_counter_results_distinct;
        Alcotest.test_case "ledger conservation" `Quick
          test_ledger_conservation;
      ] );
    ( "runtime.baselines",
      [
        Alcotest.test_case "treiber stack" `Quick test_treiber_stack;
        Alcotest.test_case "michael-scott queue" `Quick
          test_michael_scott_queue;
      ] );
    ( "runtime.linearizability",
      [
        Alcotest.test_case "universal counter history" `Quick
          test_runtime_history_linearizable;
        Alcotest.test_case "locked queue history" `Quick
          test_locked_queue_history_linearizable;
      ] );
  ]

(* --- recorder: ticket order, capacity boundary, around pairing --- *)

let test_recorder_ticket_order_real_time () =
  let open Wfs_spec in
  (* concurrent: every event lands, and each process's own events keep
     program order (INVOKE/RESPOND alternation = well-formedness) *)
  let r = Recorder.create ~capacity:64 in
  let _ =
    P.run_domains 3 (fun pid ->
        for i = 1 to 5 do
          Recorder.invoke r ~pid ~obj:"c" Collections.incr;
          Recorder.respond r ~pid ~obj:"c" (Value.int i)
        done)
  in
  let h = Recorder.history r in
  Alcotest.(check int) "all events present" 30 (List.length h);
  Alcotest.(check bool) "well-formed" true (Wfs_history.History.well_formed h);
  (* sequential: an operation that responded strictly before another was
     invoked takes the earlier ticket — the real-time guarantee *)
  let r = Recorder.create ~capacity:4 in
  Recorder.invoke r ~pid:0 ~obj:"c" Collections.incr;
  Recorder.respond r ~pid:0 ~obj:"c" (Value.int 1);
  Recorder.invoke r ~pid:1 ~obj:"c" Collections.incr;
  match Recorder.history r with
  | [
   Wfs_history.Event.Invoke { pid = p0; _ };
   Wfs_history.Event.Respond _;
   Wfs_history.Event.Invoke { pid = p1; _ };
  ] ->
      Alcotest.(check int) "earlier op first" 0 p0;
      Alcotest.(check int) "later op last" 1 p1
  | h ->
      Alcotest.fail
        (Fmt.str "unexpected ticket order (%d events)" (List.length h))

let test_recorder_capacity_boundary () =
  let open Wfs_spec in
  let r = Recorder.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Recorder.capacity r);
  Alcotest.(check int) "headroom full" 2 (Recorder.headroom r);
  Recorder.invoke r ~pid:0 ~obj:"c" Collections.incr;
  Alcotest.(check int) "headroom after one" 1 (Recorder.headroom r);
  Recorder.respond r ~pid:0 ~obj:"c" Value.unit;
  Alcotest.(check int) "used at capacity" 2 (Recorder.used r);
  Alcotest.(check int) "headroom exhausted" 0 (Recorder.headroom r);
  (match Recorder.invoke r ~pid:1 ~obj:"c" Collections.incr with
  | exception Recorder.Capacity_exceeded -> ()
  | () -> Alcotest.fail "expected Capacity_exceeded past the boundary");
  (* the overflow does not corrupt what was recorded *)
  Alcotest.(check int) "history intact" 2 (List.length (Recorder.history r));
  Alcotest.(check int) "used stays clamped" 2 (Recorder.used r)

let test_recorder_around_pairing () =
  let open Wfs_spec in
  let r = Recorder.create ~capacity:8 in
  let result =
    Recorder.around r ~pid:2 ~obj:"q" ~op:Queues.deq ~encode_res:Value.int
      (fun () -> 41 + 1)
  in
  Alcotest.(check int) "result passes through" 42 result;
  match Recorder.history r with
  | [
   Wfs_history.Event.Invoke { pid = pi; obj = oi; op };
   Wfs_history.Event.Respond { pid = pr; obj = orr; res };
  ] ->
      Alcotest.(check int) "invoke pid" 2 pi;
      Alcotest.(check int) "respond pid" 2 pr;
      Alcotest.(check string) "invoke obj" "q" oi;
      Alcotest.(check string) "respond obj" "q" orr;
      Alcotest.(check bool) "op recorded" true (Op.equal op Queues.deq);
      Alcotest.(check bool) "result encoded" true
        (Value.equal res (Value.int 42))
  | h ->
      Alcotest.fail
        (Fmt.str "expected one INVOKE/RESPOND pair, got %d events"
           (List.length h))

let test_recorder_headroom_gauge () =
  let open Wfs_spec in
  let r = Recorder.create ~capacity:10 in
  Wfs_obs.Metrics.with_hot (fun () ->
      Recorder.invoke r ~pid:0 ~obj:"c" Collections.incr;
      Recorder.respond r ~pid:0 ~obj:"c" Value.unit);
  Alcotest.(check (option int))
    "gauge tracks remaining slots" (Some 8)
    (Wfs_obs.Metrics.gauge_value "recorder.headroom")

let test_recorder_around_exception_path () =
  let open Wfs_spec in
  let r = Recorder.create ~capacity:8 in
  (match
     Recorder.around r ~pid:1 ~obj:"q" ~op:Queues.deq ~encode_res:Value.int
       (fun () -> failwith "boom")
   with
  | exception Failure m -> Alcotest.(check string) "exception re-raised" "boom" m
  | _ -> Alcotest.fail "expected the Failure to propagate");
  let h = Recorder.history r in
  (match h with
  | [ Wfs_history.Event.Invoke _; Wfs_history.Event.Respond { res; _ } ] ->
      Alcotest.(check bool) "crashed response recorded" true
        (Value.equal res Wfs_history.Event.crashed_res)
  | _ ->
      Alcotest.fail
        (Fmt.str "expected INVOKE then crashed RESPOND, got %d events"
           (List.length h)));
  Alcotest.(check bool) "well-formed" true (Wfs_history.History.well_formed h);
  let ops = Wfs_history.History.operations h in
  Alcotest.(check int) "the crashed op is pending, not dangling" 1
    (List.length (List.filter Wfs_history.History.is_pending ops));
  (* a later operation of the same process still records cleanly *)
  Alcotest.(check int) "recorder usable afterwards" 3
    (Recorder.around r ~pid:1 ~obj:"q" ~op:Queues.deq ~encode_res:Value.int
       (fun () -> 3))

let recorder_suite =
  ( "runtime.recorder",
    [
      Alcotest.test_case "ticket order real-time-consistent" `Quick
        test_recorder_ticket_order_real_time;
      Alcotest.test_case "capacity boundary" `Quick
        test_recorder_capacity_boundary;
      Alcotest.test_case "around pairs INVOKE/RESPOND" `Quick
        test_recorder_around_pairing;
      Alcotest.test_case "headroom gauge when hot" `Quick
        test_recorder_headroom_gauge;
      Alcotest.test_case "exception leaves a pending op" `Quick
        test_recorder_around_exception_path;
    ] )

let test_lamport_capacity_edges () =
  List.iter
    (fun capacity ->
      match Lamport_queue.create ~capacity with
      | exception Invalid_argument _ -> ()
      | _ ->
          Alcotest.fail
            (Fmt.str "capacity %d should be rejected" capacity))
    [ 0; -1; Lamport_queue.max_capacity + 1; max_int ];
  (* requests round up to a power of two (allocating the true maximum
     would need gigabytes, so the upper edge is only checked for
     rejection above) *)
  Alcotest.(check int) "5 rounds to 8" 8
    (Lamport_queue.capacity (Lamport_queue.create ~capacity:5));
  Alcotest.(check int) "1 stays 1" 1
    (Lamport_queue.capacity (Lamport_queue.create ~capacity:1));
  Alcotest.(check int) "powers of two kept exactly" 16
    (Lamport_queue.capacity (Lamport_queue.create ~capacity:16))

let lamport_suite =
  ( "runtime.lamport-queue",
    [ Alcotest.test_case "capacity edges" `Quick test_lamport_capacity_edges ]
  )

let suite = suite @ [ recorder_suite; lamport_suite ]

(* --- reference-equivalence properties (single domain) ---

   Applied sequentially, each runtime construction must agree exactly
   with its sequential specification on random operation sequences. *)

let prop_universal_queue_matches_reference =
  QCheck2.Test.make ~name:"universal queue ≡ sequential reference" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 9))
    (fun choices ->
      let module Q = Universal_rt.Lock_free (Seq_objects.Queue_of_int) in
      let q = Q.create () in
      let reference = Queue.create () in
      List.for_all
        (fun c ->
          if c < 6 then begin
            (* enqueue c *)
            Queue.add c reference;
            Q.apply q (Seq_objects.Queue_of_int.Enq c)
            = Seq_objects.Queue_of_int.Enqueued
          end
          else
            let expected =
              match Queue.take_opt reference with
              | Some x -> Seq_objects.Queue_of_int.Deqd x
              | None -> Seq_objects.Queue_of_int.Empty
            in
            Q.apply q Seq_objects.Queue_of_int.Deq = expected)
        choices)

let prop_lamport_queue_matches_reference =
  QCheck2.Test.make ~name:"lamport queue ≡ bounded fifo reference" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 9))
    (fun choices ->
      let q = Lamport_queue.create ~capacity:8 in
      let reference = Queue.create () in
      let capacity = Lamport_queue.capacity q in
      List.for_all
        (fun c ->
          if c < 6 then begin
            let fits = Queue.length reference < capacity in
            if fits then Queue.add c reference;
            Lamport_queue.enqueue q c = fits
          end
          else Lamport_queue.dequeue q = Queue.take_opt reference)
        choices)

let prop_ledger_matches_itself_via_locked =
  QCheck2.Test.make ~name:"lock-free ledger ≡ locked ledger" ~count:150
    QCheck2.Gen.(list_size (int_range 0 25) (pair (int_range 0 4) (int_range 1 30)))
    (fun choices ->
      let module A = Universal_rt.Lock_free (Seq_objects.Ledger) in
      let module B = Universal_rt.Locked (Seq_objects.Ledger) in
      let a = A.create () and b = B.create () in
      let op_of (k, amt) =
        match k with
        | 0 -> Seq_objects.Ledger.Open ("x", amt)
        | 1 -> Seq_objects.Ledger.Deposit ("x", amt)
        | 2 -> Seq_objects.Ledger.Withdraw ("x", amt)
        | 3 -> Seq_objects.Ledger.Balance "x"
        | _ -> Seq_objects.Ledger.Transfer { src = "x"; dst = "x"; amount = amt }
      in
      List.for_all (fun c -> A.apply a (op_of c) = B.apply b (op_of c)) choices)

let ref_qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_universal_queue_matches_reference;
      prop_lamport_queue_matches_reference;
      prop_ledger_matches_itself_via_locked;
    ]

let suite = suite @ [ ("runtime.reference-equivalence", ref_qsuite) ]

(* --- wait-free runtime bugfix regressions --- *)

(* Announce tickets must be per-object state: with a functor-level
   counter, every object minted from one instantiation shared a single
   stream, so a second object's tickets started wherever the first
   left off. *)
let test_tickets_independent_batched () =
  let module W = Universal_rt.Wait_free (Seq_objects.Counter) in
  let a = W.create ~n:2 () and b = W.create ~n:2 () in
  for _ = 1 to 5 do
    ignore (W.apply a ~pid:0 Seq_objects.Counter.Incr)
  done;
  for _ = 1 to 3 do
    ignore (W.apply b ~pid:0 Seq_objects.Counter.Incr)
  done;
  Alcotest.(check int) "first object's tickets" 5 (W.tickets_issued a);
  Alcotest.(check int) "second object's tickets" 3 (W.tickets_issued b)

let test_tickets_independent_unbatched () =
  let module W = Universal_rt.Wait_free_unbatched (Seq_objects.Counter) in
  let a = W.create ~n:2 and b = W.create ~n:2 in
  for _ = 1 to 5 do
    ignore (W.apply a ~pid:0 Seq_objects.Counter.Incr)
  done;
  for _ = 1 to 3 do
    ignore (W.apply b ~pid:0 Seq_objects.Counter.Incr)
  done;
  Alcotest.(check int) "first object's tickets" 5 (W.tickets_issued a);
  Alcotest.(check int) "second object's tickets" 3 (W.tickets_issued b)

(* All the log-length accountings agree on the same quantity: after the
   same k-operation history, every construction reports k, and the
   sim-side replay of a k-operation log counts k replayed operations
   (the operation being answered is not itself part of the replay —
   which is why the §4.1 truncating construction's replay bound is n,
   not n+1). *)
let test_log_length_accounting_agrees () =
  let k = 10 in
  let module LF = Universal_rt.Lock_free (Seq_objects.Counter) in
  let module WF = Universal_rt.Wait_free (Seq_objects.Counter) in
  let module WU = Universal_rt.Wait_free_unbatched (Seq_objects.Counter) in
  let lf = LF.create ()
  and wf = WF.create ~window:4 ~n:1 ()
  and wu = WU.create ~n:1 in
  for _ = 1 to k do
    ignore (LF.apply lf Seq_objects.Counter.Incr);
    ignore (WF.apply wf ~pid:0 Seq_objects.Counter.Incr);
    ignore (WU.apply wu ~pid:0 Seq_objects.Counter.Incr)
  done;
  Alcotest.(check int) "lock-free length" k (LF.length lf);
  Alcotest.(check int) "wait-free (batched) length" k (WF.length wf);
  Alcotest.(check int) "wait-free (unbatched) length" k (WU.length wu);
  Alcotest.(check int) "states agree" (LF.read lf) (WF.read wf);
  let open Wfs_spec in
  let target = Collections.counter () in
  let log =
    List.init k (fun i ->
        Wfs_universal.Replay.op_entry ~pid:0 ~seq:i Collections.incr)
  in
  let state, replayed = Wfs_universal.Replay.reconstruct target log in
  Alcotest.(check int) "replay of a k-op log counts k" k replayed;
  Alcotest.(check bool) "replayed state" true (Value.equal state (Value.int k));
  let v =
    Wfs_universal.Truncating_universal.verify ~target
      ~scripts:[| [ Collections.incr; Collections.incr; Collections.incr ] |]
      ()
  in
  Alcotest.(check bool) "truncating construction verifies" true v.ok;
  Alcotest.(check bool) "truncating replay within n"
    true
    (v.max_replay <= 1)

(* the unbatched baseline stays a correct concurrent queue *)
let test_wait_free_unbatched_queue () =
  let module WU = Universal_rt.Wait_free_unbatched (Seq_objects.Queue_of_int) in
  let q = WU.create ~n:domains in
  let per_domain = 50 in
  let producers = domains / 2 in
  let outputs =
    P.run_domains domains (fun pid ->
        if pid < producers then
          List.init per_domain (fun i ->
              let item = (pid * 1_000_000) + i in
              ignore (WU.apply q ~pid (Seq_objects.Queue_of_int.Enq item));
              `Produced item)
        else
          List.filter_map
            (fun _ ->
              match WU.apply q ~pid Seq_objects.Queue_of_int.Deq with
              | Seq_objects.Queue_of_int.Deqd x -> Some (`Consumed x)
              | _ -> None)
            (List.init per_domain Fun.id))
  in
  let all = List.concat outputs in
  let produced =
    List.filter_map (function `Produced x -> Some x | _ -> None) all
  in
  let consumed =
    List.filter_map (function `Consumed x -> Some x | _ -> None) all
  in
  let rec drain acc =
    match WU.apply q ~pid:0 Seq_objects.Queue_of_int.Deq with
    | Seq_objects.Queue_of_int.Deqd x -> drain (x :: acc)
    | _ -> acc
  in
  let leftover = drain [] in
  let sort = List.sort compare in
  Alcotest.(check (list int))
    "conservation" (sort produced)
    (sort (consumed @ leftover))

(* the truncating log must not grow: under sustained multi-domain load
   the retained window stays within 2*window+1 (the transient factor 2
   covers an in-flight snapshot fill) *)
let test_bounded_log_memory () =
  let module W = Universal_rt.Wait_free (Seq_objects.Counter) in
  let window = 8 in
  let w = W.create ~window ~n:domains () in
  let per_domain = 2000 in
  let maxes =
    P.run_domains domains (fun pid ->
        let worst = ref 0 in
        for i = 1 to per_domain do
          ignore (W.apply w ~pid Seq_objects.Counter.Incr);
          if i mod 64 = 0 then worst := max !worst (W.retained w)
        done;
        !worst)
  in
  let worst = List.fold_left max (W.retained w) maxes in
  Alcotest.(check bool)
    (Printf.sprintf "retained %d <= %d" worst ((2 * window) + 1))
    true
    (worst <= (2 * window) + 1);
  Alcotest.(check int) "no op lost" (domains * per_domain) (W.length w);
  Alcotest.(check int) "counter value" (domains * per_domain) (W.read w);
  Alcotest.(check bool) "watermark advanced" true (W.watermark w > 0)

let bugfix_suite =
  ( "runtime.universal-service-fixes",
    [
      Alcotest.test_case "tickets are per-object (batched)" `Quick
        test_tickets_independent_batched;
      Alcotest.test_case "tickets are per-object (unbatched)" `Quick
        test_tickets_independent_unbatched;
      Alcotest.test_case "log-length accounting agrees" `Quick
        test_log_length_accounting_agrees;
      Alcotest.test_case "unbatched queue stress" `Quick
        test_wait_free_unbatched_queue;
      Alcotest.test_case "bounded log memory" `Quick test_bounded_log_memory;
    ] )

let suite = suite @ [ bugfix_suite ]
