(* Differential and unit tests for the transposition/no-good layer: the
   cached search must be observationally identical to the chronological
   one.  Verdicts and synthesized strategies match across every
   {por, tt, intern_views} combination while node counts only shrink;
   the footprint machinery in [Tt] is exercised directly (validation,
   overflow, taint, mask subsumption, eviction); budget exhaustion still
   flushes the node counters; and the census critical-depth binary
   search agrees with a brute-force linear scan. *)

open Wfs_spec
open Wfs_hierarchy

let verdict_sig = Test_perf_engine.verdict_sig

(* --- solver: tt = no-tt verdicts, across the por/backend grid --- *)

(* The four {por, tt} ablations plus the legacy (raw (pid, view) keyed)
   backend with tt on: same verdict and strategy everywhere; the cached
   searches never explore more nodes than their uncached counterparts;
   and the two σ backends agree node for node (position canonicalization
   is backend-independent). *)
let check_grid name inst =
  let solve ?(intern_views = true) ~por ~tt () =
    Solver.solve_with_stats ~intern_views ~por ~tt inst
  in
  let v_ref, n_ref = solve ~por:false ~tt:false () in
  let sig_ref = verdict_sig v_ref in
  let check_combo combo (v, n) =
    Alcotest.(check (list string))
      (Fmt.str "%s: verdict + strategy (%s)" name combo)
      sig_ref (verdict_sig v);
    n
  in
  let n_tt = check_combo "tt" (solve ~por:false ~tt:true ()) in
  let n_por = check_combo "por" (solve ~por:true ~tt:false ()) in
  let n_both = check_combo "por+tt" (solve ~por:true ~tt:true ()) in
  let n_legacy =
    check_combo "legacy tt" (solve ~intern_views:false ~por:false ~tt:true ())
  in
  Alcotest.(check bool)
    (name ^ ": tt no more nodes than chronological")
    true (n_tt <= n_ref);
  Alcotest.(check bool)
    (name ^ ": por+tt no more nodes than por alone")
    true (n_both <= n_por);
  Alcotest.(check int)
    (name ^ ": legacy and interned tt agree node for node")
    n_tt n_legacy

let register () =
  Registers.atomic ~name:"r" ~init:(Value.int 0) [ Value.int 0; Value.int 1 ]

let queue () =
  Queues.fifo ~name:"q"
    ~initial:[ Value.str "a"; Value.str "b" ]
    ~items:[ Value.str "a"; Value.str "b" ]
    ()

let test_solver_grid () =
  check_grid "T2 register n=2 d=2" (Solver.of_spec ~n:2 ~depth:2 (register ()));
  check_grid "T9 queue n=2 d=2" (Solver.of_spec ~n:2 ~depth:2 (queue ()));
  check_grid "T11 queue n=3 d=1" (Solver.of_spec ~n:3 ~depth:1 (queue ()));
  check_grid "TAS n=3 d=1" (Solver.of_spec ~n:3 ~depth:1 (Zoo.test_and_set ()))

(* A shared context carries verdicts across solves: the second identical
   solve replays from the store and must agree with the first. *)
let test_shared_ctx () =
  let inst = Solver.of_spec ~n:2 ~depth:2 (register ()) in
  let ctx = Solver.Ctx.create ~n:2 () in
  let v1, n1 = Solver.solve_with_stats ~ctx inst in
  Alcotest.(check bool) "first solve populates the store" true
    (Solver.Ctx.tt_entries ctx > 0);
  let v2, n2 = Solver.solve_with_stats ~ctx inst in
  Alcotest.(check (list string))
    "shared ctx: same verdict" (verdict_sig v1) (verdict_sig v2);
  Alcotest.(check bool)
    "shared ctx: replay shrinks the second solve" true (n2 < n1)

(* --- census: tt = no-tt measurements --- *)

let test_census_measure () =
  List.iter
    (fun spec ->
      let name = spec.Object_spec.name in
      let off = Census.measure ~max_nodes:2_000_000 ~tt:false spec in
      let on = Census.measure ~max_nodes:2_000_000 spec in
      Alcotest.(check string)
        (name ^ ": interpretation")
        off.Census.interpretation on.Census.interpretation;
      Alcotest.(check bool)
        (name ^ ": n=2 outcome")
        true
        (fst off.Census.two_proc = fst on.Census.two_proc);
      Alcotest.(check bool)
        (name ^ ": n=3 outcome")
        true
        (fst off.Census.three_proc = fst on.Census.three_proc);
      Alcotest.(check bool)
        (name ^ ": winning init n=2")
        true
        (Option.equal Value.equal off.Census.winning_init2
           on.Census.winning_init2);
      Alcotest.(check bool)
        (name ^ ": winning init n=3")
        true
        (Option.equal Value.equal off.Census.winning_init3
           on.Census.winning_init3))
    [ Zoo.test_and_set (); Zoo.fetch_and_add () ]

(* --- Tt: footprint machinery, directly --- *)

(* σ models for the unit tests: an association list read through [find]. *)
let find_of assoc k = List.assoc_opt k assoc

let fp_testable =
  Alcotest.(option (array (pair int (option string))))

(* footprints are insertion-unordered: compare them sorted by key *)
let sorted =
  Option.map (fun fp ->
      let fp = Array.copy fp in
      Array.sort (fun (a, _) (b, _) -> compare a b) fp;
      fp)

let test_refutation_fp () =
  let fr : (int, string) Tt.frame = Tt.frame () in
  Tt.log_read fr 1 (Some "a");
  Tt.log_read fr 2 None;
  (* an unassigned read: dropped a fortiori *)
  Tt.log_write fr 3;
  Tt.log_read fr 3 (Some "c");
  (* own write: nets out of the refutation support *)
  Alcotest.check fp_testable "assigned external reads only"
    (Some [| (1, Some "a") |])
    (Tt.refutation_fp fr)

let test_success_fp () =
  let fr : (int, string) Tt.frame = Tt.frame () in
  Tt.log_read fr 1 (Some "a");
  Tt.log_read fr 2 None;
  Tt.log_write fr 3;
  (* writes are re-read through [find] at recording time: key 3 was
     since removed by backtracking, so it pins "required unassigned" *)
  let fp = Tt.success_fp ~find:(find_of [ (1, "a") ]) fr in
  Alcotest.check fp_testable "exact footprint, writes re-read"
    (Some [| (1, Some "a"); (2, None); (3, None) |])
    (sorted fp)

let test_taint () =
  let fr : (int, string) Tt.frame = Tt.frame () in
  Tt.log_read fr 1 (Some "a");
  Tt.taint fr;
  Alcotest.check fp_testable "tainted frame yields no refutation footprint"
    None (Tt.refutation_fp fr);
  Alcotest.(check bool)
    "taint leaves successes alone" true
    (Tt.success_fp ~find:(find_of [ (1, "a") ]) fr <> None);
  (* taint propagates through merge, exactly like overflow *)
  let parent : (int, string) Tt.frame = Tt.frame () in
  Tt.log_read parent 2 (Some "b");
  Tt.merge ~child:fr ~parent;
  Alcotest.check fp_testable "merge propagates taint" None
    (Tt.refutation_fp parent)

let test_overflow () =
  let fr : (int, string) Tt.frame = Tt.frame () in
  for k = 0 to Tt.fp_cap do
    Tt.log_read fr k (Some "v")
  done;
  Alcotest.check fp_testable "overflowed refutation" None (Tt.refutation_fp fr);
  Alcotest.check fp_testable "overflowed success" None
    (Tt.success_fp ~find:(fun _ -> Some "v") fr)

let test_fp_valid () =
  let fp = [| (1, Some "a"); (2, None) |] in
  Alcotest.(check bool)
    "agreeing σ validates" true
    (Tt.fp_valid ~find:(find_of [ (1, "a"); (9, "z") ]) fp);
  Alcotest.(check bool)
    "changed value invalidates" false
    (Tt.fp_valid ~find:(find_of [ (1, "b") ]) fp);
  Alcotest.(check bool)
    "required-unassigned now assigned invalidates" false
    (Tt.fp_valid ~find:(find_of [ (1, "a"); (2, "x") ]) fp)

let test_lookup_replay () =
  let store : (int, string) Tt.store = Tt.create () in
  Tt.record store ~pos:7
    { Tt.e_true = false; e_mask = 0; e_fp = [| (1, Some "a") |] };
  (match Tt.lookup store ~find:(find_of [ (1, "a") ]) ~pos:7 ~mask:0 with
  | Tt.Replay e -> Alcotest.(check bool) "refutation replays" false e.Tt.e_true
  | Tt.Miss _ -> Alcotest.fail "expected replay");
  (* σ moved off the footprint: the entry is rejected, and counted *)
  (match Tt.lookup store ~find:(find_of [ (1, "b") ]) ~pos:7 ~mask:0 with
  | Tt.Replay _ -> Alcotest.fail "stale entry must not replay"
  | Tt.Miss rejected ->
      Alcotest.(check int) "reject counted" 1 rejected);
  match Tt.lookup store ~find:(find_of []) ~pos:3 ~mask:0 with
  | Tt.Replay _ -> Alcotest.fail "unknown position must miss"
  | Tt.Miss rejected -> Alcotest.(check int) "clean miss" 0 rejected

let test_mask_subsumption () =
  let store : (int, string) Tt.store = Tt.create () in
  (* a success proved with processes {0} asleep (mask 0b01) *)
  Tt.record store ~pos:1 { Tt.e_true = true; e_mask = 0b01; e_fp = [||] };
  let lookup mask = Tt.lookup store ~find:(find_of []) ~pos:1 ~mask in
  (match lookup 0b11 with
  | Tt.Replay e -> Alcotest.(check bool) "larger mask subsumes" true e.Tt.e_true
  | Tt.Miss _ -> Alcotest.fail "superset sleep mask must replay");
  (match lookup 0b00 with
  | Tt.Replay _ ->
      Alcotest.fail "smaller sleep mask proves less: must not replay"
  | Tt.Miss rejected -> Alcotest.(check int) "mask reject counted" 1 rejected);
  (* refutations ignore the mask entirely *)
  Tt.record store ~pos:2 { Tt.e_true = false; e_mask = 0b01; e_fp = [||] };
  match Tt.lookup store ~find:(find_of []) ~pos:2 ~mask:0b00 with
  | Tt.Replay e ->
      Alcotest.(check bool) "refutation replay is mask-free" false e.Tt.e_true
  | Tt.Miss _ -> Alcotest.fail "refutation must replay under any mask"

let test_entry_cap () =
  let store : (int, string) Tt.store = Tt.create () in
  for i = 0 to Tt.entry_cap + 2 do
    Tt.record store ~pos:1
      { Tt.e_true = false; e_mask = 0; e_fp = [| (i, Some "x") |] }
  done;
  Alcotest.(check int)
    "eviction keeps the newest entry_cap entries" Tt.entry_cap
    (Tt.entries store);
  (* the newest entry survived... *)
  (match
     Tt.lookup store
       ~find:(find_of [ (Tt.entry_cap + 2, "x") ])
       ~pos:1 ~mask:0
   with
  | Tt.Replay _ -> ()
  | Tt.Miss _ -> Alcotest.fail "newest entry must survive eviction");
  (* ...and the oldest was evicted *)
  match Tt.lookup store ~find:(find_of [ (0, "x") ]) ~pos:1 ~mask:0 with
  | Tt.Replay _ -> Alcotest.fail "oldest entry must be evicted"
  | Tt.Miss _ -> ()

(* Footprint soundness as a property: a footprint validates against
   exactly the σs that agree with it pointwise — perturbing any single
   key's value flips [fp_valid], and keys off the footprint never
   matter. *)
let test_fp_soundness_prop () =
  let gen =
    QCheck.make ~print:(fun (fp, extra) ->
      Fmt.str "fp=%a extra=%d"
        Fmt.(Dump.list (Dump.pair int (Dump.option int)))
        fp extra)
      QCheck.Gen.(
        pair
          (list_size (int_range 1 8)
             (pair (int_range 0 7) (opt (int_range 0 3))))
          (int_range 100 200))
  in
  let prop (fp_list, extra) =
    (* dedup keys: a footprint binds each key once *)
    let fp_list =
      List.fold_left
        (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
        [] fp_list
    in
    let fp = Array.of_list fp_list in
    let sigma = List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v)
        fp_list
    in
    let agreeing = Tt.fp_valid ~find:(find_of sigma) fp in
    (* an unrelated extra binding never matters *)
    let padded = Tt.fp_valid ~find:(find_of ((extra, 42) :: sigma)) fp in
    (* perturbing each footprint key in turn always invalidates *)
    let perturbed =
      List.for_all
        (fun (k, v) ->
          let sigma' =
            match v with
            | Some x -> (k, x + 1) :: List.remove_assoc k sigma
            | None -> (k, 0) :: sigma
          in
          not (Tt.fp_valid ~find:(find_of sigma') fp))
        fp_list
    in
    agreeing && padded && perturbed
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"fp_valid is pointwise agreement" gen
       prop)

(* --- budget exhaustion still flushes the metrics (Fun.protect) --- *)

let counter name =
  Option.value ~default:0 (Wfs_obs.Metrics.counter_value name)

let test_budget_flush () =
  let inst = Solver.of_spec ~n:3 ~depth:2 (queue ()) in
  let before = counter "solver.nodes" in
  let runs_before = counter "solver.runs" in
  match Solver.solve_with_stats ~max_nodes:500 inst with
  | Solver.Out_of_budget { nodes }, reported ->
      Alcotest.(check int) "verdict and stats agree" nodes reported;
      Alcotest.(check int)
        "solver.nodes flushed on the budget path" nodes
        (counter "solver.nodes" - before);
      Alcotest.(check int)
        "solver.runs flushed on the budget path" 1
        (counter "solver.runs" - runs_before)
  | v, _ ->
      Alcotest.failf "expected Out_of_budget, got %a" Solver.pp_verdict v

(* --- census: binary-search critical depth = brute-force scan --- *)

let brute_force_critical ~n ~max_depth spec =
  let inits = Census.candidate_inits spec in
  let solvable depth =
    List.exists
      (fun init ->
        match
          Solver.solve (Solver.of_spec ~n ~depth { spec with Object_spec.init })
        with
        | Solver.Solvable _ -> true
        | Solver.Unsolvable -> false
        | Solver.Out_of_budget _ -> Alcotest.fail "brute force hit the budget")
      inits
  in
  let rec scan d =
    if d > max_depth then None else if solvable d then Some d else scan (d + 1)
  in
  scan 1

let test_critical_depth () =
  List.iter
    (fun (name, spec, n, max_depth) ->
      let c = Census.critical_depth ~n ~max_depth spec in
      Alcotest.(check bool) (name ^ ": exact") true c.Census.exact;
      Alcotest.(check (option int))
        (name ^ ": binary search = linear scan")
        (brute_force_critical ~n ~max_depth spec)
        c.Census.critical;
      (* monotonicity of the probes themselves: no probe above a
         solvable depth may come out unsolvable *)
      let solvable_depths =
        List.filter_map
          (fun (p : Census.depth_probe) ->
            if p.Census.probe_outcome = Census.Solvable then
              Some p.Census.probe_depth
            else None)
          c.Census.probes
      in
      match solvable_depths with
      | [] -> ()
      | ds ->
          let least = List.fold_left min max_int ds in
          List.iter
            (fun (p : Census.depth_probe) ->
              if p.Census.probe_depth >= least then
                Alcotest.(check bool)
                  (Fmt.str "%s: probe d=%d monotone" name p.Census.probe_depth)
                  true
                  (p.Census.probe_outcome = Census.Solvable))
            c.Census.probes)
    [
      ("test-and-set n=2", Zoo.test_and_set (), 2, 3);
      ("register n=2", register (), 2, 2);
      ("queue n=3", queue (), 3, 1);
    ]

let suite =
  [
    ( "engine.tt",
      [
        Alcotest.test_case "solver: {por,tt,backend} grid verdicts" `Quick
          test_solver_grid;
        Alcotest.test_case "solver: shared ctx replays" `Quick test_shared_ctx;
        Alcotest.test_case "census: tt = no-tt measurements" `Quick
          test_census_measure;
        Alcotest.test_case "tt: refutation footprint" `Quick test_refutation_fp;
        Alcotest.test_case "tt: success footprint" `Quick test_success_fp;
        Alcotest.test_case "tt: taint blocks refutations" `Quick test_taint;
        Alcotest.test_case "tt: overflow blocks both" `Quick test_overflow;
        Alcotest.test_case "tt: footprint validation" `Quick test_fp_valid;
        Alcotest.test_case "tt: lookup replay and rejects" `Quick
          test_lookup_replay;
        Alcotest.test_case "tt: sleep-mask subsumption" `Quick
          test_mask_subsumption;
        Alcotest.test_case "tt: entry eviction" `Quick test_entry_cap;
        Alcotest.test_case "tt: footprint soundness (qcheck)" `Quick
          test_fp_soundness_prop;
        Alcotest.test_case "budget exhaustion flushes counters" `Quick
          test_budget_flush;
        Alcotest.test_case "census: critical depth = linear scan" `Quick
          test_critical_depth;
      ] );
  ]
