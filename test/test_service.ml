(* The universal object service: registry, closed-loop load harness,
   differential and crash-mode linearizability checks. *)

open Wfs_runtime
open Wfs_spec

let test_registry () =
  let s = Service.create ~n:2 () in
  Alcotest.(check (list string))
    "default objects"
    [ "fifo-queue"; "counter"; "kv-map" ]
    (Service.names s);
  let h = Service.find s "counter" in
  Alcotest.(check bool) "apply works" true
    (Value.equal (h.Service.apply ~pid:0 Collections.incr) (Value.int 1));
  Alcotest.(check int) "length counts" 1 (h.Service.length ());
  (match Service.find s "no-such-object" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  match Service.create ~n:2 ~specs:[ Collections.counter (); Collections.counter () ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate names must be rejected"

let check_load ?spec ?halts ~clients ~ops_per_client ~window () =
  let r =
    Service.Load.run ?spec ?halts ~seed:7 ~window ~clients ~ops_per_client ()
  in
  Alcotest.(check bool)
    (Fmt.str "load run passed: %a" Service.Load.pp_report r)
    true (Service.Load.passed r);
  r

let test_load_queue () =
  let r =
    check_load ~spec:(Zoo.queue ()) ~clients:4 ~ops_per_client:1000
      ~window:16 ()
  in
  Alcotest.(check int) "all ops completed" 4000 r.Service.Load.total_ops;
  Alcotest.(check int) "log length = ops" 4000 r.Service.Load.log_length;
  Alcotest.(check (option bool))
    "differential verdict" (Some true) r.Service.Load.differential_ok

let test_load_counter () =
  ignore
    (check_load ~spec:(Collections.counter ()) ~clients:3 ~ops_per_client:800
       ~window:8 ())

let test_load_kv_map () =
  ignore
    (check_load ~spec:(Collections.kv_map ()) ~clients:3 ~ops_per_client:800
       ~window:8 ())

let test_load_with_crashes () =
  (* halt 2 of 4 clients mid-operation (after the effect): survivors
     finish, and the recorded history — crashed ops pending — must
     linearize *)
  let r =
    check_load ~clients:4 ~ops_per_client:8 ~window:4 ~halts:2 ()
  in
  Alcotest.(check (list int)) "both halted" [ 0; 1 ] r.Service.Load.halted;
  Alcotest.(check (option bool))
    "linearizable" (Some true) r.Service.Load.linearizable;
  (* crashed clients completed fewer ops than survivors *)
  Alcotest.(check bool) "some ops completed" true (r.Service.Load.total_ops > 0)

let test_load_crash_capacity_guard () =
  match
    Service.Load.run ~halts:1 ~clients:4 ~ops_per_client:1000 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized crash workload must be rejected"

let test_serve () =
  let r = Service.serve ~clients:2 ~duration_s:0.2 () in
  Alcotest.(check bool) "ops served" true (r.Service.served_ops > 0);
  let logged =
    List.fold_left (fun acc (_, l) -> acc + l) 0 r.Service.per_object
  in
  Alcotest.(check int) "every op threaded" r.Service.served_ops logged

(* Random scripts through the service agree with the sequential fold —
   the qcheck face of the differential check, across every default
   object and a range of window sizes (including 1: every node a
   snapshot). *)
let prop_service_differential =
  QCheck2.Test.make ~name:"service ≡ sequential fold (random scripts)"
    ~count:40
    QCheck2.Gen.(
      tup4 (int_range 1 4) (int_range 1 60) (int_range 1 12) (int_range 0 2))
    (fun (clients, ops_per_client, window, which) ->
      let spec =
        match which with
        | 0 -> Zoo.queue ()
        | 1 -> Collections.counter ()
        | _ -> Collections.kv_map ()
      in
      let r =
        Service.Load.run ~seed:(clients + ops_per_client) ~window ~spec
          ~clients ~ops_per_client ()
      in
      Service.Load.passed r && r.Service.Load.differential_ok = Some true)

let prop_service_crash_linearizable =
  QCheck2.Test.make ~name:"service linearizes under halt-k-of-n" ~count:15
    QCheck2.Gen.(tup2 (int_range 2 4) (int_range 1 3))
    (fun (clients, halts) ->
      QCheck2.assume (halts < clients);
      let r =
        Service.Load.run ~seed:42 ~window:4 ~halts ~clients ~ops_per_client:6
          ()
      in
      Service.Load.passed r && r.Service.Load.linearizable = Some true)

let suite =
  [
    ( "runtime.service",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "closed-loop load: queue" `Quick test_load_queue;
        Alcotest.test_case "closed-loop load: counter" `Quick
          test_load_counter;
        Alcotest.test_case "closed-loop load: kv-map" `Quick test_load_kv_map;
        Alcotest.test_case "load under crashes linearizes" `Quick
          test_load_with_crashes;
        Alcotest.test_case "crash-mode capacity guard" `Quick
          test_load_crash_capacity_guard;
        Alcotest.test_case "serve drives every object" `Quick test_serve;
      ] );
    ( "runtime.service-differential",
      List.map QCheck_alcotest.to_alcotest
        [ prop_service_differential; prop_service_crash_linearizable ] );
  ]
