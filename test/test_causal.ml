(* Causal invocation tracing, the wait-freedom auditor, and the flight
   recorder: help edges stay a DAG under real concurrent load, audited
   own-step accounting survives the trace-file round trip, tracing is
   observably free (results byte-identical on and off), injected bound
   violations are caught, and the JSONL post-mortem parses. *)

open Wfs_runtime
open Wfs_spec
module Causal = Wfs_obs.Causal

(* Every test leaves the global recorder disabled and empty, whatever
   happens — the rest of the suite runs in the same process. *)
let with_tracing ?(sample = 1) f =
  Causal.enable ~sample ();
  Fun.protect
    ~finally:(fun () ->
      Causal.disable ();
      Causal.reset ())
    f

let audited_load ?(clients = 3) ?(ops = 60) ?(seed = 11) ?(canary = 4) () =
  let r =
    Service.Load.run ~seed ~window:8 ~spec:(Zoo.queue ()) ~canary ~clients
      ~ops_per_client:ops ()
  in
  Alcotest.(check bool)
    (Fmt.str "traced load passed: %a" Service.Load.pp_report r)
    true
    (Service.Load.passed r);
  Causal.Audit.of_recording ()

(* --- help edges form a DAG (qcheck over real runs) --- *)

let prop_help_edges_dag =
  QCheck2.Test.make ~name:"help edges form a DAG under traced load" ~count:6
    QCheck2.Gen.(triple (int_range 2 3) (int_range 20 60) (int_range 1 1000))
    (fun (clients, ops, seed) ->
      with_tracing (fun () ->
          let r = audited_load ~clients ~ops ~seed () in
          r.Causal.Audit.dag_ok && r.Causal.Audit.violations = []))

(* --- own-step accounting: live recording = trace-file round trip --- *)

let test_roundtrip_accounting () =
  with_tracing (fun () ->
      let live = audited_load () in
      Alcotest.(check bool)
        "some invocations completed" true
        (live.Causal.Audit.completed > 0);
      Alcotest.(check bool)
        "canary produced help edges" true
        (live.Causal.Audit.edges_kept > 0);
      Alcotest.(check bool)
        "own steps within the audited bound" true
        (live.Causal.Audit.max_own_steps <= Causal.step_bound ~n:3);
      let path = Filename.temp_file "wfs-causal" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Causal.write path;
          let ic = open_in_bin path in
          let contents =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let parsed =
            Causal.Audit.of_trace_json (Wfs_obs.Json.of_string contents)
          in
          Alcotest.(check int)
            "completed survives the round trip" live.Causal.Audit.completed
            parsed.Causal.Audit.completed;
          Alcotest.(check int)
            "max own steps survives the round trip"
            live.Causal.Audit.max_own_steps parsed.Causal.Audit.max_own_steps;
          Alcotest.(check int)
            "help edges survive the round trip" live.Causal.Audit.edges_kept
            parsed.Causal.Audit.edges_kept;
          Alcotest.(check bool)
            "round-tripped audit still ok" true (Causal.Audit.ok parsed)))

(* --- tracing on/off leaves service results byte-identical --- *)

let result_sequence ~traced () =
  let go () =
    let h = Service.make_handle ~window:8 ~canary:3 ~n:1 (Zoo.queue ()) in
    List.init 60 (fun i ->
        let op =
          if i mod 3 < 2 then Queues.enq (Value.int i) else Queues.deq
        in
        h.Service.apply ~pid:0 op)
  in
  if traced then with_tracing go else go ()

let test_tracing_transparent () =
  let off = result_sequence ~traced:false () in
  let on = result_sequence ~traced:true () in
  Alcotest.(check bool)
    "result sequences identical with tracing on and off" true
    (List.equal Value.equal off on);
  (* and a full checked load passes identically both ways *)
  let run () =
    Service.Load.run ~seed:5 ~window:8 ~spec:(Collections.counter ())
      ~canary:4 ~clients:2 ~ops_per_client:50 ()
  in
  let r_off = run () in
  let r_on = with_tracing run in
  Alcotest.(check bool) "untraced load passed" true (Service.Load.passed r_off);
  Alcotest.(check bool) "traced load passed" true (Service.Load.passed r_on);
  Alcotest.(check int)
    "same ops threaded" r_off.Service.Load.log_length
    r_on.Service.Load.log_length

(* --- injected bound violation is caught --- *)

let test_injected_violation () =
  with_tracing (fun () ->
      Causal.meta ~obj:"toy" ~n:1 ~bound:2;
      let tr = Causal.issue () in
      Causal.invoke ~obj:"toy" ~trace:tr ~pid:0;
      Causal.complete ~obj:"toy" ~trace:tr ~pos:0 ~own_steps:5 ~help_rounds:0;
      let r = Causal.Audit.of_recording () in
      Alcotest.(check bool) "audit fails" false (Causal.Audit.ok r);
      match r.Causal.Audit.violations with
      | [ v ] ->
          Alcotest.(check int) "steps reported" 5 v.Causal.Audit.v_steps;
          Alcotest.(check int) "bound reported" 2 v.Causal.Audit.v_bound
      | vs ->
          Alcotest.failf "expected exactly one violation, got %d"
            (List.length vs))

(* --- flight recorder dump: one parseable JSON object per line --- *)

let test_flight_recorder_dump () =
  with_tracing (fun () ->
      ignore (audited_load ~clients:2 ~ops:30 ());
      let path = Filename.temp_file "wfs-flight" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let written = Causal.dump_jsonl path in
          Alcotest.(check bool) "dump non-empty" true (written > 0);
          let ic = open_in path in
          let lines = ref 0 in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              try
                while true do
                  let line = input_line ic in
                  incr lines;
                  match Wfs_obs.Json.of_string line with
                  | Wfs_obs.Json.Obj _ -> ()
                  | _ -> Alcotest.failf "line %d is not a JSON object" !lines
                done
              with End_of_file -> ());
          Alcotest.(check int) "returned count = lines written" written !lines))

(* --- the audited bound constant --- *)

let test_step_bound () =
  Alcotest.(check int) "2n+8 at n=4" 16 (Causal.step_bound ~n:4);
  Alcotest.(check int) "2n+8 at n=1" 10 (Causal.step_bound ~n:1)

let suite =
  [
    ( "causal",
      [
        Alcotest.test_case "step bound" `Quick test_step_bound;
        Alcotest.test_case "roundtrip accounting" `Quick
          test_roundtrip_accounting;
        Alcotest.test_case "tracing transparent" `Quick
          test_tracing_transparent;
        Alcotest.test_case "injected violation" `Quick test_injected_violation;
        Alcotest.test_case "flight recorder dump" `Quick
          test_flight_recorder_dump;
        QCheck_alcotest.to_alcotest prop_help_edges_dag;
      ] );
  ]
