(* The crash-stop fault layer, both substrates.

   Sim side: a crash budget of 0 must be *observationally identical* to
   the original crash-free semantics (differential check over the whole
   registry), sound protocols must keep passing under any budget up to
   n-1 (wait-freedom checked literally), and the naive register protocol
   must fail with a crash-bearing schedule that replays and round-trips
   through the on-disk counterexample format.  Runtime side: the
   deterministic injector and the halt-k-of-n stress harness. *)

open Wfs_consensus
open Wfs_runtime
module CE = Wfs_obs.Counterexample

(* --- differential: crashes=0 is the crash-free semantics --- *)

let test_crashes_zero_identical () =
  List.iter
    (fun key ->
      let entry = Registry.find key in
      List.iter
        (fun n ->
          match entry.Registry.build ~n with
          | None -> ()
          | Some p ->
              let plain = Protocol.verify p in
              let zero = Protocol.verify ~crashes:0 p in
              Alcotest.(check bool)
                (Fmt.str "%s n=%d: crashes:0 report = plain report" key n)
                true (plain = zero))
        [ 2; 3 ])
    (Registry.keys ())

(* --- sound protocols survive any budget the paper grants --- *)

let test_registry_passes_under_crashes () =
  List.iter
    (fun entry ->
      List.iter
        (fun n ->
          match entry.Registry.build ~n with
          | None -> ()
          | Some p ->
              for crashes = 1 to n - 1 do
                let r = Protocol.verify ~crashes p in
                Alcotest.(check bool)
                  (Fmt.str "%s n=%d crashes=%d passes" entry.Registry.key n
                     crashes)
                  true (Protocol.passed r);
                Alcotest.(check int)
                  (Fmt.str "%s n=%d report echoes budget" entry.Registry.key n)
                  crashes r.Protocol.crashes
              done)
        [ 2; 3 ])
    Registry.entries

let test_crash_budget_grows_state_space () =
  let entry = Registry.find "cas" in
  match entry.Registry.build ~n:2 with
  | None -> Alcotest.fail "cas builds at n=2"
  | Some p ->
      let r0 = Protocol.verify p and r1 = Protocol.verify ~crashes:1 p in
      Alcotest.(check bool)
        "crash edges add reachable states" true
        (r1.Protocol.states > r0.Protocol.states)

let test_explorer_rejects_negative_budget () =
  let entry = Registry.find "cas" in
  match entry.Registry.build ~n:2 with
  | None -> Alcotest.fail "cas builds at n=2"
  | Some p -> (
      match Protocol.verify ~crashes:(-1) p with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument for crashes=-1")

(* --- the naive register protocol fails by crash --- *)

let naive_register_n3 () =
  match (Registry.find "register-naive").Registry.build ~n:3 with
  | Some p -> p
  | None -> Alcotest.fail "register-naive builds at n=3"

let test_naive_register_crash_counterexample () =
  let p = naive_register_n3 () in
  let r = Protocol.verify ~crashes:1 p in
  Alcotest.(check bool) "fails under one crash" false (Protocol.passed r);
  match Protocol.find_violation ~crashes:1 p with
  | None -> Alcotest.fail "expected a violation"
  | Some v ->
      Alcotest.(check bool)
        "schedule exercises a crash" true
        (List.exists
           (function Protocol.Crash _ -> true | Protocol.Step _ -> false)
           v.Protocol.schedule);
      (* the schedule replays deterministically to the same violation *)
      (match Protocol.replay p ~schedule:v.Protocol.schedule with
      | Some v' ->
          Alcotest.(check bool) "same kind" true (v'.Protocol.kind = v.Protocol.kind);
          Alcotest.(check bool)
            "same decisions" true
            (v'.Protocol.decisions = v.Protocol.decisions)
      | None -> Alcotest.fail "replay lost the violation");
      (* ... and round-trips through the on-disk format with its crash *)
      let ce =
        Protocol.violation_to_counterexample ~protocol:"register-naive" ~n:3 v
      in
      Alcotest.(check string) "crash schedule bumps schema" CE.schema_v2
        (CE.schema_of ce);
      let ce' = CE.of_json (CE.to_json ce) in
      Alcotest.(check bool) "json round trip" true (ce'.CE.schedule = ce.CE.schedule);
      match Protocol.replay_counterexample p ce' with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("counterexample replay diverged: " ^ e)

let test_crash_free_counterexample_keeps_schema_v1 () =
  let p = naive_register_n3 () in
  match Protocol.find_violation p with
  | None -> Alcotest.fail "register-naive violates without crashes too"
  | Some v ->
      let ce =
        Protocol.violation_to_counterexample ~protocol:"register-naive" ~n:3 v
      in
      Alcotest.(check string)
        "crash-free files keep the old schema" CE.schema_v1 (CE.schema_of ce)

(* --- the runtime injector --- *)

let test_injector_halts_permanently () =
  let inj = Fault.create ~n:2 [ Fault.Halt { pid = 0; boundary = 2 } ] in
  Alcotest.(check int) "survives first op" 7
    (Fault.protect inj ~pid:0 (fun () -> 7));
  (match Fault.protect inj ~pid:0 (fun () -> Alcotest.fail "effect must not run")
   with
  | exception Fault.Halted 0 -> ()
  | _ -> Alcotest.fail "expected Halted 0 at boundary 2");
  Alcotest.(check bool) "marked down" true (Fault.is_halted inj ~pid:0);
  Alcotest.(check (list int)) "halted list" [ 0 ] (Fault.halted inj);
  (* once down, always down *)
  (match Fault.boundary inj ~pid:0 with
  | exception Fault.Halted 0 -> ()
  | () -> Alcotest.fail "a crashed process took another step");
  (* other processes unaffected *)
  Alcotest.(check int) "pid 1 untouched" 9
    (Fault.protect inj ~pid:1 (fun () -> 9))

let test_injector_stall_is_transparent () =
  let inj =
    Fault.create ~n:1 [ Fault.Stall { pid = 0; boundary = 0; spins = 32 } ]
  in
  Alcotest.(check int) "stalled op still completes" 3
    (Fault.protect inj ~pid:0 (fun () -> 3));
  Alcotest.(check bool) "not down" false (Fault.is_halted inj ~pid:0)

let test_injector_validates_plan () =
  match Fault.create ~n:2 [ Fault.Halt { pid = 2; boundary = 0 } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for out-of-range pid"

let test_wrapped_cas_crash_after_effect () =
  (* halting at the second boundary (odd) crashes *after* the CAS took
     effect: the caller never learns the outcome, but survivors see it *)
  let inj = Fault.create ~n:2 [ Fault.Halt { pid = 0; boundary = 1 } ] in
  let c = Fault.Cas.make inj 0 in
  (match Fault.Cas.compare_and_set c ~pid:0 0 5 with
  | exception Fault.Halted 0 -> ()
  | _ -> Alcotest.fail "expected Halted before the response");
  Alcotest.(check int) "effect visible to a survivor" 5
    (Fault.Cas.read c ~pid:1)

let test_wrapped_register_crash_before_effect () =
  (* boundary 0 is *before* the operation: the write must not happen *)
  let inj = Fault.create ~n:2 [ Fault.Halt { pid = 0; boundary = 0 } ] in
  let r = Fault.Register.make inj 1 in
  (match Fault.Register.write r ~pid:0 99 with
  | exception Fault.Halted 0 -> ()
  | () -> Alcotest.fail "expected Halted before the effect");
  Alcotest.(check int) "effect suppressed" 1 (Fault.Register.read r ~pid:1)

(* --- the stress harness --- *)

let test_stress_queue_survivors_linearize () =
  List.iter
    (fun (n, halts) ->
      let s = Fault.stress_queue ~n ~halts () in
      Alcotest.(check bool)
        (Fmt.str "n=%d halts=%d passes" n halts)
        true (Fault.stress_passed s);
      Alcotest.(check int)
        (Fmt.str "n=%d halts=%d pending ops" n halts)
        halts s.Fault.crashed_ops)
    [ (2, 0); (2, 1); (3, 2); (4, 3) ]

let test_stress_queue_validates_arguments () =
  (match Fault.stress_queue ~n:2 ~halts:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "halts must be < n");
  match Fault.stress_queue ~ops_per_proc:1000 ~n:4 ~halts:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workload must fit the linearizability checker"

let suite =
  [
    ( "fault.sim",
      [
        Alcotest.test_case "crashes=0 ≡ crash-free (registry, n=2,3)" `Quick
          test_crashes_zero_identical;
        Alcotest.test_case "registry passes under crashes ≤ n-1" `Quick
          test_registry_passes_under_crashes;
        Alcotest.test_case "crash budget grows state space" `Quick
          test_crash_budget_grows_state_space;
        Alcotest.test_case "negative budget rejected" `Quick
          test_explorer_rejects_negative_budget;
      ] );
    ( "fault.counterexample",
      [
        Alcotest.test_case "register-naive fails by crash, replays" `Quick
          test_naive_register_crash_counterexample;
        Alcotest.test_case "crash-free files keep schema v1" `Quick
          test_crash_free_counterexample_keeps_schema_v1;
      ] );
    ( "fault.injector",
      [
        Alcotest.test_case "halt is permanent" `Quick
          test_injector_halts_permanently;
        Alcotest.test_case "stall is transparent" `Quick
          test_injector_stall_is_transparent;
        Alcotest.test_case "plan validation" `Quick test_injector_validates_plan;
        Alcotest.test_case "cas crash after effect" `Quick
          test_wrapped_cas_crash_after_effect;
        Alcotest.test_case "register crash before effect" `Quick
          test_wrapped_register_crash_before_effect;
      ] );
    ( "fault.stress",
      [
        Alcotest.test_case "halted domains leave pending ops, history \
                            linearizes"
          `Quick test_stress_queue_survivors_linearize;
        Alcotest.test_case "argument validation" `Quick
          test_stress_queue_validates_arguments;
      ] );
  ]
